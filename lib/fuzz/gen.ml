open Sf_util
open Sf_mesh
open Snowflake

type grid_spec = { gname : string; gshape : Ivec.t; gseed : int }

type spec = {
  label : string;
  seed : int;
  shape : Ivec.t;
  group : Group.t;
  grids : grid_spec list;
  params : (string * float) list;
}

let iv = Ivec.of_list

(* ------------------------------------------------------------ utilities *)

module R = Random.State

let pick st xs = List.nth xs (R.int st (List.length xs))

let weighted st choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let roll = R.int st total in
  let rec go acc = function
    | [] -> assert false
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let range st lo hi = lo + R.int st (hi - lo + 1) (* inclusive *)

(* ------------------------------------------------------- grid environment *)

(* Grids are recorded as they are invented; [readable] tracks the subset
   whose shape equals the iteration shape (the only ones a unit-scale read
   may target). *)
type env = {
  st : R.t;
  shape : Ivec.t;
  mutable recorded : grid_spec list;
  mutable readable : string list;
  mutable fresh : int;
}

let record env ~name ~shape ~seed ~unit_readable =
  if not (List.exists (fun g -> g.gname = name) env.recorded) then
    env.recorded <- { gname = name; gshape = shape; gseed = seed } :: env.recorded;
  if unit_readable && not (List.mem name env.readable) then
    env.readable <- env.readable @ [ name ]

let fresh_name env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "%s%d" prefix env.fresh

(* ----------------------------------------------------------- domains *)

(* Per-axis slack of a domain: how far a unit-scale read may reach without
   escaping an iteration-shaped grid.  Computed on the resolved lattice, so
   face rects (which hug one boundary) get asymmetric slack. *)
let offset_slack ~shape domain =
  let d = Ivec.dims shape in
  let lo_slack = Array.make d 0 and hi_slack = Array.make d 0 in
  let first = ref true in
  List.iter
    (fun (r : Domain.resolved) ->
      if not (Domain.is_empty r) then begin
        let counts = Domain.counts r in
        Array.iteri
          (fun a _ ->
            let minpt = r.Domain.rlo.(a) in
            let maxpt = minpt + ((counts.(a) - 1) * r.Domain.rstride.(a)) in
            let lo = -minpt and hi = shape.(a) - 1 - maxpt in
            if !first then begin
              lo_slack.(a) <- lo;
              hi_slack.(a) <- hi
            end
            else begin
              lo_slack.(a) <- max lo_slack.(a) lo;
              hi_slack.(a) <- min hi_slack.(a) hi
            end)
          counts;
        first := false
      end)
    (Domain.resolve ~shape domain);
  (lo_slack, hi_slack)

let interior_domain env =
  let g = range env.st 1 2 in
  Domain.interior (Ivec.dims env.shape) ~ghost:g

let colored_domain env =
  let d = Ivec.dims env.shape in
  Domain.colored d ~ghost:1 ~color:(R.int env.st 2) ~ncolors:2

let strided_domain env =
  let d = Ivec.dims env.shape in
  let lo = List.init d (fun _ -> range env.st 1 2) in
  let hi = List.map (fun g -> -g) lo in
  let stride = List.init d (fun _ -> range env.st 1 3) in
  Domain.of_rect (Domain.rect ~stride ~lo ~hi ())

(* Two boxes split along one axis at an interior plane — disjoint by
   construction (see the .mli on why unions stay overlap-free). *)
let union_domain env =
  let d = Ivec.dims env.shape in
  let axis = R.int env.st d in
  let extent = env.shape.(axis) in
  let mid = 1 + ((extent - 2) / 2) in
  let lo k = List.init d (fun a -> if a = axis then k else 1) in
  let hi k = List.init d (fun a -> if a = axis then k else -1) in
  let box l h = Domain.rect ~lo:(lo l) ~hi:(hi h) () in
  Domain.union (Domain.of_rect (box 1 mid)) (Domain.of_rect (box mid (-1)))

let face_domain env =
  let d = Ivec.dims env.shape in
  let axis = R.int env.st d in
  let low_side = R.bool env.st in
  let lo = List.init d (fun a -> if a = axis then (if low_side then 0 else -1) else 1) in
  let hi = List.init d (fun a -> if a = axis then (if low_side then 1 else 0) else -1) in
  Domain.of_rect (Domain.rect ~lo ~hi ())

let gen_domain env =
  weighted env.st
    [
      (4, interior_domain);
      (2, colored_domain);
      (2, strided_domain);
      (2, union_domain);
      (1, face_domain);
    ]
    env

(* ------------------------------------------------------- expressions *)

let param_pool = [ "alpha"; "beta" ]

let gen_weight st =
  if R.int st 6 = 0 then Expr.param (pick st param_pool)
  else
    let w = -2. +. R.float st 4. in
    Expr.const (if Float.abs w < 0.05 then 0.25 else w)

let gen_offset st (lo_slack, hi_slack) =
  Array.to_list
    (Array.mapi
       (fun a lo ->
         let lo = max lo (-2) and hi = min hi_slack.(a) 2 in
         range st lo hi)
       lo_slack)

(* A component term: a small sparse weight array gathered over one grid. *)
let gen_component env slack grid =
  let taps = range env.st 1 4 in
  let alist =
    List.init taps (fun _ -> (gen_offset env.st slack, gen_weight env.st))
  in
  Component.to_expr ~grid (Weights.of_alist alist)

let gen_term env slack =
  let tap grid = Expr.read grid (iv (gen_offset env.st slack)) in
  weighted env.st
    [
      (4, fun () -> gen_component env slack (pick env.st env.readable));
      (3, fun () -> tap (pick env.st env.readable));
      (1, fun () -> Expr.param (pick env.st param_pool));
      (1, fun () -> Expr.const (-1. +. R.float env.st 2.));
    ]
    ()

let gen_expr env slack =
  let n = range env.st 1 3 in
  let body =
    List.fold_left
      (fun acc _ ->
        let t = gen_term env slack in
        if R.bool env.st then Expr.(acc +: t) else Expr.(acc -: t))
      (gen_term env slack)
      (List.init (n - 1) Fun.id)
  in
  match R.int env.st 5 with
  | 0 -> Expr.(body *: const (0.25 +. R.float env.st 1.5))
  | 1 -> Expr.(body /: const (0.5 +. R.float env.st 1.5))
  | 2 -> Expr.(body *: param (pick env.st param_pool))
  | 3 -> Expr.neg body
  | _ -> body

(* --------------------------------------------------------- stencil kinds *)

let out_of_place env i =
  let domain = gen_domain env in
  let slack = offset_slack ~shape:env.shape domain in
  let expr = gen_expr env slack in
  let out = fresh_name env "t" in
  let s =
    Stencil.make ~label:(Printf.sprintf "s%d" i) ~output:out ~expr ~domain ()
  in
  record env ~name:out ~shape:env.shape ~seed:(-1) ~unit_readable:true;
  [ s ]

let in_place env i =
  let out = pick env.st env.readable in
  let domain = gen_domain env in
  let slack = offset_slack ~shape:env.shape domain in
  let expr = gen_expr env slack in
  [ Stencil.make ~label:(Printf.sprintf "s%d" i) ~output:out ~expr ~domain () ]

(* A red/black pair over a fresh random-initialised grid — the GSRB
   pattern, in-place but race-free under wave scheduling. *)
let colored_pair env i =
  let m = fresh_name env "m" in
  record env ~name:m ~shape:env.shape ~seed:(R.int env.st 10_000)
    ~unit_readable:true;
  let d = Ivec.dims env.shape in
  let mk color =
    let domain = Domain.colored d ~ghost:1 ~color ~ncolors:2 in
    let slack = offset_slack ~shape:env.shape domain in
    let expr =
      Expr.(
        gen_component env slack m
        +: (gen_term env slack *: const (0.25 +. R.float env.st 0.5)))
    in
    Stencil.make
      ~label:(Printf.sprintf "s%d_c%d" i color)
      ~output:m ~expr ~domain ()
  in
  [ mk 0; mk 1 ]

(* Scale-2 gather from a fresh double-extent input grid — restriction. *)
let restrict env i =
  let d = Ivec.dims env.shape in
  let fine = fresh_name env "fine_f" in
  let fine_shape = Array.map (fun e -> 2 * e) env.shape in
  record env ~name:fine ~shape:fine_shape ~seed:(R.int env.st 10_000)
    ~unit_readable:false;
  let coarse = fresh_name env "t" in
  record env ~name:coarse ~shape:env.shape ~seed:(-1) ~unit_readable:true;
  let hc = List.init d (fun a -> max 2 (env.shape.(a) / 2)) in
  let domain = Domain.of_rect (Domain.rect ~lo:(List.init d (fun _ -> 0)) ~hi:hc ()) in
  let taps = range env.st 1 3 in
  let rd () =
    Expr.read_affine fine
      (Affine.make
         ~scale:(Ivec.make d 2)
         ~offset:(Array.init d (fun _ -> R.int env.st 2)))
  in
  let expr =
    List.fold_left
      (fun acc _ -> Expr.(acc +: rd ()))
      (rd ())
      (List.init (taps - 1) Fun.id)
  in
  let expr = Expr.(expr *: const (1. /. float_of_int (taps + 1))) in
  [ Stencil.make ~label:(Printf.sprintf "s%d" i) ~output:coarse ~expr ~domain () ]

(* Non-identity out_map: iterate the coarse space, write one parity of a
   fresh double-extent grid — interpolation. *)
let interp_out_map env i =
  let d = Ivec.dims env.shape in
  let out = fresh_name env "fine_t" in
  let out_shape = Array.map (fun e -> 2 * e) env.shape in
  record env ~name:out ~shape:out_shape ~seed:(-1) ~unit_readable:false;
  let domain =
    Domain.of_rect
      (Domain.rect
         ~lo:(List.init d (fun _ -> 0))
         ~hi:(Array.to_list env.shape) ())
  in
  (* slack is all-zero over the full rect: centre reads only *)
  let src = pick env.st env.readable in
  let expr =
    Expr.(
      read src (Ivec.zero d)
      *: const (0.5 +. R.float env.st 1.))
  in
  let out_map =
    Affine.make ~scale:(Ivec.make d 2)
      ~offset:(Array.init d (fun _ -> R.int env.st 2))
  in
  [ Stencil.make ~label:(Printf.sprintf "s%d" i) ~output:out ~out_map ~expr ~domain () ]

(* ------------------------------------------------------------ the spec *)

let gen_shape st ~max_dims =
  let d = 1 + R.int st (min max_dims 3) in
  let lo, hi = match d with 1 -> (16, 48) | 2 -> (8, 16) | _ -> (6, 9) in
  Array.init d (fun _ -> range st lo hi)

let gen_once ~seed ~max_dims st =
  let shape = gen_shape st ~max_dims in
  let env = { st; shape; recorded = []; readable = []; fresh = 0 } in
  record env ~name:"u" ~shape ~seed:(R.int st 10_000) ~unit_readable:true;
  if R.int st 10 < 7 then
    record env ~name:"v" ~shape ~seed:(R.int st 10_000) ~unit_readable:true;
  let n_stencils = range st 1 4 in
  let stencils = ref [] in
  let i = ref 0 in
  while List.length !stencils < n_stencils do
    incr i;
    let kind =
      weighted st
        [
          (9, `Out_of_place);
          (3, `In_place);
          (3, `Colored_pair);
          (3, `Restrict);
          (2, `Interp_out_map);
        ]
    in
    let made =
      match kind with
      | `Out_of_place -> out_of_place env !i
      | `In_place -> in_place env !i
      | `Colored_pair -> colored_pair env !i
      | `Restrict -> restrict env !i
      | `Interp_out_map -> interp_out_map env !i
    in
    stencils := !stencils @ made
  done;
  let label = Printf.sprintf "fuzz%d" seed in
  let group = Group.make ~label !stencils in
  let wanted = Group.grids group in
  let grids =
    List.filter (fun g -> List.mem g.gname wanted) (List.rev env.recorded)
  in
  let params =
    List.map (fun p -> (p, 0.5 +. R.float st 1.0)) (Group.params group)
  in
  { label; seed; shape; group; grids; params }

let build_grids ?(fill = 0.) spec =
  Grids.of_list
    (List.map
       (fun g ->
         let m =
           if g.gseed >= 0 then Mesh.random ~seed:g.gseed g.gshape
           else begin
             let m = Mesh.create g.gshape in
             if fill <> 0. then Mesh.fill m fill;
             m
           end
         in
         (g.gname, m))
       spec.grids)

let inputs spec =
  List.filter_map
    (fun g -> if g.gseed >= 0 then Some g.gname else None)
    spec.grids

let validate spec =
  let grids = build_grids spec in
  try
    List.iter
      (fun s -> Sf_backends.Exec.validate_stencil grids ~shape:spec.shape s)
      (Group.stencils spec.group);
    Ok ()
  with Invalid_argument msg -> Error msg

let spec ?(max_dims = 3) ~seed () =
  let rec attempt k =
    if k >= 16 then
      invalid_arg
        (Printf.sprintf "Gen.spec: seed %d produced no valid program" seed)
    else
      let st = R.make [| 0x5f00d; seed; k |] in
      match gen_once ~seed ~max_dims st with
      | s -> ( match validate s with Ok () -> s | Error _ -> attempt (k + 1))
      | exception Invalid_argument _ -> attempt (k + 1)
  in
  attempt 0

let restrict_grids spec =
  let wanted = Group.grids spec.group in
  let params_wanted = Group.params spec.group in
  {
    spec with
    grids = List.filter (fun g -> List.mem g.gname wanted) spec.grids;
    params = List.filter (fun (p, _) -> List.mem p params_wanted) spec.params;
  }

let describe spec =
  let b = Buffer.create 256 in
  Printf.bprintf b "seed %d, shape %s\n" spec.seed (Ivec.to_string spec.shape);
  List.iter
    (fun g ->
      Printf.bprintf b "grid %-8s %s %s\n" g.gname (Ivec.to_string g.gshape)
        (if g.gseed >= 0 then Printf.sprintf "random(seed=%d)" g.gseed
         else "zero"))
    spec.grids;
  List.iter (fun (p, v) -> Printf.bprintf b "param %s = %.17g\n" p v) spec.params;
  Buffer.add_string b (Program_io.group_to_string spec.group);
  Buffer.contents b
