open Sf_util

type options = {
  seed : int;
  count : int;
  max_dims : int;
  ulps : int;
  atol : float;
  only : string list option;
  shrink : bool;
  max_shrink_evals : int;
  corpus_dir : string option;
  oracles : bool;
  inject : Diff.bug option;
  log : string -> unit;
}

let default_options =
  {
    seed = 42;
    count = 100;
    max_dims = 3;
    ulps = 512;
    atol = 1e-11;
    only = None;
    shrink = true;
    max_shrink_evals = 400;
    corpus_dir = None;
    oracles = true;
    inject = None;
    log = ignore;
  }

type failure = {
  original : Gen.spec;
  minimised : Gen.spec;
  detail : string;
  corpus_file : string option;
}

type report = { tested : int; failures : failure list }

let targets opts ~dims =
  let base = Diff.targets_for ~only:opts.only ~dims in
  match opts.inject with
  | None -> base
  | Some bug -> base @ [ Diff.injected_target bug ]

(* The injected backend is re-registered on every [targets] call (shrink
   re-checks included), which clears the JIT cache as a side effect —
   harmless, and it keeps the cache from accumulating one entry per
   generated program over a long campaign. *)

let check_spec opts spec =
  let dims = Ivec.dims spec.Gen.shape in
  Diff.check ~ulps:opts.ulps ~atol:opts.atol ~targets:(targets opts ~dims) spec

let handle_divergence opts spec d =
  let detail = Diff.divergence_to_string d in
  opts.log (Printf.sprintf "DIVERGENCE %s\n%s" detail (Gen.describe spec));
  let minimised =
    if not opts.shrink then spec
    else
      Shrink.shrink ~max_evals:opts.max_shrink_evals
        ~fails:(fun c -> Result.is_error (check_spec opts c))
        spec
  in
  if opts.shrink then
    opts.log
      (Printf.sprintf "shrunk %d -> %d stencils:\n%s"
         (Snowflake.Group.length spec.Gen.group)
         (Snowflake.Group.length minimised.Gen.group)
         (Gen.describe minimised));
  let corpus_file =
    Option.map
      (fun dir ->
        let path = Corpus.save ~dir ~note:detail minimised in
        opts.log (Printf.sprintf "counterexample written to %s" path);
        path)
      opts.corpus_dir
  in
  { original = spec; minimised; detail; corpus_file }

let run opts =
  Sf_backends.Jit.clear_cache ();
  let failures = ref [] in
  for i = 0 to opts.count - 1 do
    let seed = opts.seed + i in
    let spec = Gen.spec ~max_dims:opts.max_dims ~seed () in
    (match check_spec opts spec with
    | Ok () -> ()
    | Error d -> failures := handle_divergence opts spec d :: !failures);
    if opts.oracles then
      List.iter
        (fun detail ->
          opts.log
            (Printf.sprintf "ORACLE FAILURE (seed %d) %s\n%s" seed detail
               (Gen.describe spec));
          failures :=
            { original = spec; minimised = spec; detail; corpus_file = None }
            :: !failures)
        (Oracle.all spec);
    if (i + 1) mod 25 = 0 then
      opts.log
        (Printf.sprintf "%d/%d programs, %d failure(s)" (i + 1) opts.count
           (List.length !failures))
  done;
  { tested = opts.count; failures = List.rev !failures }

let replay_paths ?ulps ?atol ?only ?(log = ignore) paths =
  List.filter_map
    (fun path ->
      match Corpus.replay ?ulps ?atol ?only path with
      | Ok () ->
          log (Printf.sprintf "replayed %s: ok" path);
          None
      | Error e ->
          log (Printf.sprintf "replay FAILED: %s" e);
          Some (path, e))
    paths

let report_exit_code r = if r.failures = [] then 0 else 1
