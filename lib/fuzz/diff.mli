(** Differential execution: one spec, every backend, [interp] as oracle.

    The interpreter walks the expression AST with bounds-checked access
    and is treated as the semantic ground truth; every other backend (and
    every interesting configuration of it — worker counts, explicit
    tiles, multicolor reordering, tall-skinny OpenCL work groups) must
    reproduce its results up to {!Sf_util.Fcmp.close} tolerance.  A
    failure is reported with the target, grid, witness cell and both
    values — everything needed to triage or shrink. *)

type target = {
  backend : Sf_backends.Jit.backend;
  config : Sf_backends.Config.t;
  tname : string;  (** display name, e.g. ["openmp/w4/tile"] *)
  apps : int;
      (** applications per run (usually 1).  A target with [apps = k > 1]
          runs one [Jit.compile_time_tiled ~reps:k] kernel and is compared
          against k interp applications — the temporal-blocking oracle.
          [Custom] backends with [apps > 1] must build the k-application
          kernel themselves. *)
}

val default_targets : dims:int -> target list
(** The standard matrix: [compiled] (default config), [openmp] at 1 and 4
    workers, with explicit dims-matched tiles, with multicolor
    reordering, [opencl] with default and tall-skinny work groups, plus
    the fused openmp/opencl plans and a 3-application time-tiled openmp
    target. *)

val targets_for : only:string list option -> dims:int -> target list
(** {!default_targets} filtered to the given backend names
    (["compiled"], ["openmp"], ["opencl"]); [None] keeps all. *)

type divergence = {
  target : string;
  grid : string;
  point : int list;
  expected : float;  (** interp's value *)
  got : float;
  crashed : string option;
      (** set when the target raised instead of diverging numerically; the
          other fields are placeholders then ([grid] empty, NaN values) *)
}

val divergence_to_string : divergence -> string

val run_reference : ?apps:int -> Gen.spec -> Sf_mesh.Grids.t
(** [apps] (default 1) interp applications over fresh grids. *)

val check :
  ?ulps:int -> ?atol:float -> targets:target list -> Gen.spec ->
  (unit, divergence) result
(** Run the spec on [interp] and on every target over identically
    initialised fresh grids; report the first divergence.  Defaults:
    [ulps = 512], [atol = 1e-11] — roomy enough for the compiled path's
    polynomial reassociation, tight enough to catch real bugs (a dropped
    tap or a skipped cell is wrong by whole values, not ULPs).  A target
    that {e raises} is reported as a divergence with [crashed] set rather
    than aborting the campaign. *)

(** {2 Fault injection}

    For validating the harness itself: a deliberately miscompiled custom
    backend that the differential loop must catch and the shrinker must
    minimise. *)

type bug =
  | Drop_last_stencil
      (** compiles the group without its final stencil (when it has more
          than one) — models a lost wave *)
  | Perturb_first_cell
      (** runs correctly, then nudges one cell of the first stencil's
          output by [1e-3] — models a single-lattice-point miscompile *)
  | Kernel_raise
      (** runs correctly, then raises [Sf_resilience.Fault.Injected] —
          models a crashing backend; the harness must report it as a
          [crashed] divergence, not abort *)
  | Nan_poison_cell
      (** runs correctly, then writes NaN into one cell of the first
          stencil's output — the silent-data-corruption shape
          [Sf_resilience.Guard] scans for *)
  | Mis_skew_tile
      (** a two-application temporal block with its skew forced to 0 —
          models the classic time-tiling bug (stale reads across slab
          seams) that [Schedule_check.certify_timetile_plan] rejects as
          SF024, smuggled past the certifier; groups with no axis-0
          dependence degrade to an honest loop *)

val injected_target : bug -> target
(** Registers (or re-registers) the buggy micro-compiler under the name
    ["sffuzz-buggy"] and returns a target selecting it. *)
