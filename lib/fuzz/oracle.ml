open Sf_util
open Sf_mesh
open Sf_backends

let run ?fill backend config (spec : Gen.spec) =
  let grids = Gen.build_grids ?fill spec in
  let kernel = Jit.compile ~config backend ~shape:spec.Gen.shape spec.Gen.group in
  kernel.Kernel.run ~params:spec.Gen.params grids;
  grids

(* ----------------------------------------------------- pool determinism *)

let pool_determinism ?(workers = 4) (spec : Gen.spec) =
  let config = Config.with_workers workers Config.default in
  let diags =
    Schedule_check.certify config ~shape:spec.Gen.shape ~backend:`Openmp
      spec.Gen.group
  in
  if Sf_analysis.Diagnostics.has_errors diags then Ok ()
  else
    let serial = run Jit.Openmp (Config.with_workers 1 Config.default) spec in
    let parallel = run Jit.Openmp config spec in
    let rec go = function
      | [] -> Ok ()
      | name :: rest -> (
          let a = Grids.find serial name and b = Grids.find parallel name in
          match Mesh.first_mismatch a b with
          | None -> go rest
          | Some (p, x, y) ->
              Error
                (Printf.sprintf
                   "certified race-free plan is nondeterministic: grid %s at \
                    %s: 1 worker %.17g vs %d workers %.17g"
                   name (Ivec.to_string p) x workers y))
    in
    go (Grids.names serial)

(* -------------------------------------------------------- certify gate *)

let certify_clean (spec : Gen.spec) =
  let config = Config.with_workers 4 Config.default in
  let static =
    List.concat_map
      (fun backend ->
        Schedule_check.certify config ~shape:spec.Gen.shape ~backend
          spec.Gen.group)
      [ `Openmp; `Opencl ]
  in
  if Sf_analysis.Diagnostics.has_errors static then
    Error
      (Printf.sprintf
         "generated (race-free) program failed plan certification:\n%s"
         (Sf_analysis.Diagnostics.render static))
  else
    let certified = { config with Config.certify = true } in
    let gate backend =
      match run backend certified spec with
      | (_ : Grids.t) -> Ok ()
      | exception Jit.Certification_failed { backend; diagnostics; _ } ->
          Error
            (Printf.sprintf
               "SF_VALIDATE gate fired on a generated program (backend %s):\n%s"
               backend
               (Sf_analysis.Diagnostics.render diagnostics))
    in
    let ( let* ) = Result.bind in
    let* () = gate Jit.Openmp in
    gate Jit.Opencl

(* --------------------------------------------------- SF011 vs NaN poison *)

let sf011_nan_agreement (spec : Gen.spec) =
  let inputs = Gen.inputs spec in
  let diags =
    Sf_analysis.Lint.uninitialized_reads ~shape:spec.Gen.shape ~inputs
      spec.Gen.group
  in
  if Sf_analysis.Diagnostics.has_errors diags then
    (* The program really does read uninitialised cells; NaN there is
       expected and may or may not survive later overwrites, so the clean
       direction is the only sound assertion. *)
    Ok ()
  else
    let clean = run Jit.Interp Config.default spec in
    let poisoned = run ~fill:Float.nan Jit.Interp Config.default spec in
    let rec go = function
      | [] -> Ok ()
      | name :: rest ->
          let a = Grids.find clean name and b = Grids.find poisoned name in
          let da = Mesh.data a and db = Mesh.data b in
          let n = Float.Array.length da in
          let rec cell i =
            if i >= n then go rest
            else
              let x = Float.Array.get da i and y = Float.Array.get db i in
              if Float.is_nan y then
                if x = 0. || Float.is_nan x then
                  cell (i + 1) (* never written: kept its fill *)
                else
                  Error
                    (Printf.sprintf
                       "SF011-clean program leaked NaN into a written cell: \
                        grid %s flat index %d (clean value %.17g)"
                       name i x)
              else if x = y then cell (i + 1)
              else
                Error
                  (Printf.sprintf
                     "SF011-clean program depends on scratch contents: grid \
                      %s flat index %d: %.17g (zero fill) vs %.17g (NaN fill)"
                     name i x y)
          in
          cell 0
    in
    go (Grids.names clean)

(* --------------------------------------------------- pipelined SPMD *)

(* The pipelined executor's promise mirrors pool_determinism's: when the
   channel certifier passes a plan, running it through the bounded rings
   must be bit-identical to the bulk-synchronous exchange, at any worker
   count.  The subject is a fixed 2-rank GSRB decomposition (generated
   specs are single-rank, so this oracle runs once per campaign, not per
   spec). *)

let mk_spmd () =
  let spmd = Sf_distributed.Spmd.create ~rank_grid:[ 2 ] ~local_n:8 in
  Sf_distributed.Spmd.init_dinv spmd;
  Sf_distributed.Spmd.fill_interior spmd ~base:"u" (fun x ->
      sin (3.0 *. x.(0)));
  Sf_distributed.Spmd.fill_interior spmd ~base:"f" (fun x ->
      cos (2.0 *. x.(0)));
  spmd

let pipeline_agreement ?(workers = 4) () =
  let sweeps = 3 in
  let bulk = mk_spmd () in
  for _ = 1 to sweeps do
    Sf_distributed.Spmd.run_group bulk
      (Sf_distributed.Spmd.gsrb_smooth_group bulk)
  done;
  let oracle_u = Sf_distributed.Spmd.gather bulk ~base:"u" in
  let rec go = function
    | [] -> Ok ()
    | w :: rest -> (
        let spmd = mk_spmd () in
        let config = Config.with_workers w Config.default in
        let pipe =
          Sf_distributed.Pipeline.create ~config spmd
            (Sf_distributed.Spmd.gsrb_smooth_group spmd)
        in
        Sf_distributed.Pipeline.run ~sweeps pipe;
        let got = Sf_distributed.Spmd.gather spmd ~base:"u" in
        match Mesh.first_mismatch ~ulps:0 ~atol:0. oracle_u got with
        | None -> go rest
        | Some (p, x, y) ->
            Error
              (Printf.sprintf
                 "certified pipeline diverges from bulk-synchronous Spmd: \
                  %d worker(s), grid u at %s: bulk %.17g vs pipelined %.17g"
                 w (Ivec.to_string p) x y))
  in
  go [ 1; workers ]

let pipeline_undersize_detected () =
  let spmd = mk_spmd () in
  let pipe =
    Sf_distributed.Pipeline.create spmd
      (Sf_distributed.Spmd.gsrb_smooth_group spmd)
  in
  Sf_distributed.Pipeline.inject_undersize pipe;
  match Sf_distributed.Pipeline.run pipe with
  | () ->
      Error
        "undersized channel ran to completion: the SF034 depth gate did not \
         fire"
  | exception Jit.Certification_failed { backend = "pipeline"; diagnostics; _ }
    when List.exists
           (fun (d : Sf_analysis.Diagnostics.t) ->
             d.Sf_analysis.Diagnostics.code = "SF034")
           diagnostics ->
      Ok ()
  | exception e ->
      Error
        (Printf.sprintf
           "undersized channel raised %s instead of Certification_failed \
            with SF034"
           (Printexc.to_string e))

let all spec =
  List.filter_map
    (fun oracle -> match oracle spec with Ok () -> None | Error m -> Some m)
    [ pool_determinism ?workers:None; certify_clean; sf011_nan_agreement ]
