(** The fuzzing campaign: generate → differentially execute → (metamorphic
    oracles) → shrink → record.

    This is the engine behind [bin/sffuzz.exe] and the bounded [@fuzz]
    test alias; both are thin wrappers so that a campaign is equally
    runnable from the CLI, from CI and from a unit test asserting the
    harness catches an injected bug. *)

type options = {
  seed : int;  (** program [i] of the campaign uses [seed + i] *)
  count : int;
  max_dims : int;
  ulps : int;
  atol : float;
  only : string list option;  (** backend filter, as {!Diff.targets_for} *)
  shrink : bool;
  max_shrink_evals : int;
  corpus_dir : string option;  (** write shrunk counterexamples here *)
  oracles : bool;
  inject : Diff.bug option;  (** add the deliberately buggy backend *)
  log : string -> unit;  (** progress/diagnostic sink *)
}

val default_options : options
(** seed 42, count 100, max_dims 3, ulps 512, atol 1e-11, all backends,
    shrinking on (400 evals), no corpus dir, oracles on, no injection,
    silent log. *)

type failure = {
  original : Gen.spec;  (** as generated *)
  minimised : Gen.spec;  (** after shrinking (== original when off) *)
  detail : string;  (** divergence or oracle message *)
  corpus_file : string option;
}

type report = { tested : int; failures : failure list }

val run : options -> report
(** The campaign.  Deterministic for fixed options (modulo filesystem
    state in [corpus_dir]). *)

val replay_paths :
  ?ulps:int -> ?atol:float -> ?only:string list -> ?log:(string -> unit) ->
  string list -> (string * string) list
(** Replay corpus files; returns [(path, error)] for each failure. *)

val report_exit_code : report -> int
(** 0 when clean, 1 when any failure. *)
