(** The protocol-fuzz campaign driver behind [sffuzz --proto].

    Three layers, sharing {!Proto_gen}'s deterministic mutants:

    - {b frame campaign}: every generated valid frame must round-trip
      byte-for-byte through decode/encode; every mutant may decode or
      be rejected but must never raise out of
      {!Sf_serve.Protocol.decode_request} / [decode_reply]; and the
      self-delimiting mutants are additionally written down a live
      in-process server connection, whose every reply must decode and
      whose server must survive the whole campaign.
    - {b session campaign}: randomized request interleavings across
      three tenants of one live server (quota floods, foreign and
      unknown POLLs, HELLO replays, garbage frames, mid-frame
      disconnects), with invariants checked after every step, a drain +
      leak audit + bitwise-vs-standalone check on the clean tenant, and
      a double-SHUTDOWN race at the end.
    - {b corpus}: failures are shrunk (bytes for frames, step count for
      sessions) and saved as replayable [.pfz] cases.

    Everything is deterministic in the seed. *)

type options = {
  seed : int;
  count : int;  (** mutated frames in the frame campaign *)
  sessions : int;  (** stateful sessions *)
  steps : int;  (** randomized steps per session *)
  corpus_dir : string option;  (** where failures are written as [.pfz] *)
  log : string -> unit;
}

val default_options : options
(** seed 42, 200 frames, 8 sessions of 16 steps, no corpus, silent. *)

type failure = {
  what : string;  (** which layer and seed, e.g. ["decoder:tag-flip seed=57"] *)
  detail : string;
  corpus_file : string option;  (** the saved [.pfz], when a dir was given *)
}

type report = {
  frames_tested : int;
  sessions_tested : int;
  failures : failure list;
}

val run : options -> report

val report_exit_code : report -> int
(** [0] when no failures, [1] otherwise (the sffuzz contract). *)

val run_session :
  seed:int -> steps:int -> log:(string -> unit) -> unit -> (unit, string) result
(** One stateful session against a fresh in-process server; [Error]
    carries the failed invariant plus a step trace. *)

(** {2 Corpus}

    A [.pfz] file is hex frames plus [; sfproto (...)] metadata lines —
    same shape as the [.sfl] fuzz corpus, same triage workflow
    (docs/TESTING.md). *)

type case =
  | Frames of {
      frames : string list;
      expect : string option;
          (** when set, a live replay must produce at least one REJECTED
              with this code *)
    }
  | Session_case of { seed : int; steps : int }

val case_to_string : ?note:string -> case -> string
val case_of_string : string -> (case, string) result

val save : dir:string -> label:string -> ?note:string -> case -> string
(** Write a case under a fresh [label{,-k}.pfz] name; returns the path. *)

val load : string -> (case, string) result

val files : string -> string list
(** The [.pfz] files under a directory, sorted. *)

val replay_paths :
  ?log:(string -> unit) -> string list -> (string * string) list
(** Replay corpus cases; returns the (path, error) pairs that failed.
    Frame cases run the pure decoders over every recorded frame and feed
    the self-delimiting ones to a live server; session cases re-run the
    recorded (seed, steps). *)
