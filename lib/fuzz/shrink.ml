open Snowflake

(* Rebuild a spec around a new stencil list; [None] when the group
   constructor rejects it (e.g. empty). *)
let with_stencils (spec : Gen.spec) stencils =
  match Group.make ~label:spec.group.Group.label stencils with
  | group -> Some (Gen.restrict_grids { spec with group })
  | exception Invalid_argument _ -> None

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

(* ------------------------------------------------------ candidate passes *)

let drop_stencil_candidates spec =
  let ss = Group.stencils spec.Gen.group in
  if List.length ss <= 1 then []
  else
    List.mapi
      (fun i _ -> with_stencils spec (List.filteri (fun j _ -> j <> i) ss))
      ss

let drop_rect_candidates spec =
  let ss = Group.stencils spec.Gen.group in
  List.concat
    (List.mapi
       (fun i (s : Stencil.t) ->
         if List.length s.Stencil.domain <= 1 then []
         else
           List.mapi
             (fun j _ ->
               let domain = List.filteri (fun k _ -> k <> j) s.Stencil.domain in
               match Stencil.with_domain s domain with
               | s' -> with_stencils spec (replace_nth ss i s')
               | exception Invalid_argument _ -> None)
             s.Stencil.domain)
       ss)

(* Halve the extent of one axis of one rect.  Only absolute bounds
   (lo >= 0, hi > 0) are rewritten — relative bounds denote "extent minus
   k" and halving them would grow the rect. *)
let halve_extent_candidates spec =
  let ss = Group.stencils spec.Gen.group in
  List.concat
    (List.mapi
       (fun i (s : Stencil.t) ->
         List.concat
           (List.mapi
              (fun j (r : Domain.rect) ->
                let lo = Array.to_list r.Domain.lo
                and hi = Array.to_list r.Domain.hi
                and stride = Array.to_list r.Domain.stride in
                List.concat
                  (List.mapi
                     (fun a (l, h) ->
                       if l < 0 || h <= 0 || h - l <= 1 then []
                       else
                         let h' = l + max 1 ((h - l) / 2) in
                         if h' >= h then []
                         else
                           let rect' =
                             Domain.rect ~stride ~lo
                               ~hi:(replace_nth hi a h') ()
                           in
                           let domain =
                             replace_nth s.Stencil.domain j rect'
                           in
                           match Stencil.with_domain s domain with
                           | s' ->
                               [ with_stencils spec (replace_nth ss i s') ]
                           | exception Invalid_argument _ -> [])
                     (List.combine lo hi)))
              s.Stencil.domain))
       ss)

(* Replace the [n]-th node (pre-order) of an expression with [Const 0.];
   [None] when that node is already a constant. *)
let zero_nth expr n =
  let counter = ref (-1) in
  let rec go e =
    incr counter;
    if !counter = n then
      match e with Expr.Const _ -> e | _ -> Expr.const 0.
    else
      match e with
      | Expr.Const _ | Expr.Param _ | Expr.Read _ -> e
      | Expr.Neg a -> Expr.Neg (go a)
      | Expr.Add (a, b) ->
          let a = go a in
          Expr.Add (a, go b)
      | Expr.Sub (a, b) ->
          let a = go a in
          Expr.Sub (a, go b)
      | Expr.Mul (a, b) ->
          let a = go a in
          Expr.Mul (a, go b)
      | Expr.Div (a, b) ->
          let a = go a in
          Expr.Div (a, go b)
  in
  let rewritten = go expr in
  if Expr.equal rewritten expr then None else Some rewritten

let rec node_count (e : Expr.t) =
  match e with
  | Const _ | Param _ | Read _ -> 1
  | Neg a -> 1 + node_count a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      1 + node_count a + node_count b

let zero_subterm_candidates spec =
  let ss = Group.stencils spec.Gen.group in
  List.concat
    (List.mapi
       (fun i (s : Stencil.t) ->
         List.filter_map
           (fun n ->
             match zero_nth s.Stencil.expr n with
             | None -> None
             | Some expr -> (
                 match Stencil.with_expr s expr with
                 | s' -> Some (with_stencils spec (replace_nth ss i s'))
                 | exception Invalid_argument _ -> None))
           (List.init (node_count s.Stencil.expr) Fun.id))
       ss)

(* ---------------------------------------------------------- greedy loop *)

let shrink ?(max_evals = 400) ~fails spec0 =
  let evals = ref 0 in
  let passes =
    [
      drop_stencil_candidates;
      drop_rect_candidates;
      halve_extent_candidates;
      zero_subterm_candidates;
    ]
  in
  let try_candidate cand =
    match cand with
    | None -> None
    | Some c ->
        if !evals >= max_evals then None
        else begin
          incr evals;
          if fails c then Some c else None
        end
  in
  let rec improve spec =
    let step =
      List.find_map
        (fun pass -> List.find_map try_candidate (pass spec))
        passes
    in
    match step with
    | Some smaller when !evals < max_evals -> improve smaller
    | Some smaller -> smaller
    | None -> spec
  in
  improve spec0
