open Sf_util
open Snowflake

let magic = "; sffuzz "

(* ------------------------------------------------------------- writing *)

let meta_line parts = magic ^ Sexp.to_string (Sexp.list parts) ^ "\n"

let to_string ?(note = "") (spec : Gen.spec) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "; sffuzz: corpus case -- replayable differential-fuzz program\n";
  Buffer.add_string b
    "; (replay: dune exec bin/sffuzz.exe -- --replay-dir <dir>; docs/TESTING.md)\n";
  String.split_on_char '\n' note
  |> List.iter (fun line ->
         if String.trim line <> "" then
           Buffer.add_string b ("; note: " ^ line ^ "\n"));
  Buffer.add_string b
    (meta_line [ Sexp.atom "v"; Sexp.int 1 ]);
  Buffer.add_string b
    (meta_line [ Sexp.atom "seed"; Sexp.int spec.Gen.seed ]);
  Buffer.add_string b
    (meta_line
       (Sexp.atom "shape"
       :: List.map Sexp.int (Ivec.to_list spec.Gen.shape)));
  List.iter
    (fun (g : Gen.grid_spec) ->
      Buffer.add_string b
        (meta_line
           [
             Sexp.atom "grid";
             Sexp.atom g.Gen.gname;
             Sexp.list (List.map Sexp.int (Ivec.to_list g.Gen.gshape));
             Sexp.int g.Gen.gseed;
           ]))
    spec.Gen.grids;
  List.iter
    (fun (p, v) ->
      Buffer.add_string b
        (meta_line [ Sexp.atom "param"; Sexp.atom p; Sexp.float v ]))
    spec.Gen.params;
  Buffer.add_string b (Program_io.group_to_string spec.Gen.group);
  Buffer.add_char b '\n';
  Buffer.contents b

let save ~dir ?note spec =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let base = Filename.concat dir spec.Gen.label in
  let rec pick k =
    let path =
      if k = 1 then base ^ ".sfl" else Printf.sprintf "%s-%d.sfl" base k
    in
    if Sys.file_exists path then pick (k + 1) else path
  in
  let path = pick 1 in
  let oc = open_out path in
  output_string oc (to_string ?note spec);
  close_out oc;
  path

(* ------------------------------------------------------------- reading *)

let ( let* ) = Result.bind

let parse_meta_line line =
  let payload = String.sub line (String.length magic)
      (String.length line - String.length magic) in
  Sexp.parse (String.trim payload)

let as_ints sexps =
  List.fold_right
    (fun s acc ->
      let* acc = acc in
      let* i = Sexp.as_int s in
      Ok (i :: acc))
    sexps (Ok [])

let of_string ~label text =
  let lines = String.split_on_char '\n' text in
  let metas =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.length line >= String.length magic
           && String.sub line 0 (String.length magic) = magic
        then Some (parse_meta_line line)
        else None)
      lines
  in
  let* metas =
    List.fold_right
      (fun m acc ->
        let* acc = acc in
        let* m = m in
        Ok (m :: acc))
      metas (Ok [])
  in
  let seed = ref 0 in
  let shape = ref None in
  let grids = ref [] in
  let params = ref [] in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        match m with
        | Sexp.List (Sexp.Atom "v" :: _) -> Ok ()
        | Sexp.List [ Sexp.Atom "seed"; s ] ->
            let* v = Sexp.as_int s in
            seed := v;
            Ok ()
        | Sexp.List (Sexp.Atom "shape" :: dims) ->
            let* dims = as_ints dims in
            shape := Some (Ivec.of_list dims);
            Ok ()
        | Sexp.List [ Sexp.Atom "grid"; Sexp.Atom name; Sexp.List dims; s ] ->
            let* dims = as_ints dims in
            let* gseed = Sexp.as_int s in
            grids :=
              !grids
              @ [ { Gen.gname = name; gshape = Ivec.of_list dims; gseed } ];
            Ok ()
        | Sexp.List [ Sexp.Atom "param"; Sexp.Atom name; v ] ->
            let* v = Sexp.as_float v in
            params := !params @ [ (name, v) ];
            Ok ()
        | other ->
            Error
              (Printf.sprintf "unrecognised sffuzz metadata: %s"
                 (Sexp.to_string other)))
      (Ok ()) metas
  in
  let* group = Program_io.group_of_string text in
  let* shape =
    match !shape with
    | Some s -> Ok s
    | None -> Error "corpus file carries no `; sffuzz (shape ...)` line"
  in
  let spec =
    {
      Gen.label;
      seed = !seed;
      shape;
      group;
      grids = !grids;
      params = !params;
    }
  in
  let* () = Gen.validate spec in
  Ok spec

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load path =
  let label = Filename.remove_extension (Filename.basename path) in
  match of_string ~label (read_file path) with
  | Ok spec -> Ok spec
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let replay ?ulps ?atol ?only path =
  let* spec = load path in
  let targets = Diff.targets_for ~only ~dims:(Ivec.dims spec.Gen.shape) in
  match Diff.check ?ulps ?atol ~targets spec with
  | Ok () -> Ok ()
  | Error d ->
      Error (Printf.sprintf "%s: %s" path (Diff.divergence_to_string d))

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sfl")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []
