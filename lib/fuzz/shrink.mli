(** Greedy counterexample minimisation.

    Given a failing spec and a [fails] predicate (re-running the
    differential check), repeatedly apply the cheapest semantics-shrinking
    rewrite that keeps the failure alive, until none applies:

    + drop whole stencils (the big wins come first);
    + drop member rects of a stencil's domain union;
    + halve absolute domain extents axis by axis;
    + replace expression subtrees by [0.] (zeroing weights/taps).

    Every candidate is revalidated through [Stencil.make]/[Group.make];
    candidates the constructors reject are skipped, so the result is
    always a well-formed, replayable spec.  Evaluation count is bounded
    by [max_evals] (the predicate runs the whole backend matrix, so it is
    the expensive part). *)

val shrink :
  ?max_evals:int -> fails:(Gen.spec -> bool) -> Gen.spec -> Gen.spec
(** [max_evals] defaults to 400.  The input spec is assumed to fail;
    the result still fails and is no larger. *)
