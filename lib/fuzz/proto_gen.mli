(** Structure-aware generation and mutation of sfserved wire frames.

    Valid frames are built by {!Sf_serve.Protocol.encode_request} /
    [encode_reply] over randomized messages (boundary u32s, hostile
    strings, non-finite floats), then damaged by exactly one structural
    lie at a time: truncation, length-prefix lies, tag flips, u32
    boundary overwrites, string-length inflation, trailing bytes,
    frame splices, single bit flips.  Deterministic in the seed, which
    is what makes fuzz findings replayable. *)

type rng = Random.State.t

val rng : int -> rng
(** Fresh deterministic stream for one campaign or one corpus case. *)

val gen_request : rng -> Sf_serve.Protocol.request
val gen_reply : rng -> Sf_serve.Protocol.reply

type message = Req of Sf_serve.Protocol.request | Rep of Sf_serve.Protocol.reply

val gen_message : rng -> message
val encode : message -> string

val gen_frame : rng -> string
(** One complete, well-formed frame (random request or reply). *)

type mutation =
  | Truncate  (** cut the tail, prefix re-fixed: EOF lands mid-field *)
  | Length_lie  (** prefix disagrees with the payload actually present *)
  | Tag_flip  (** unknown or mismatched tag byte *)
  | U32_boundary  (** overwrite 4 bytes with a boundary value *)
  | Str_inflate  (** a length field pointing past the end of the frame *)
  | Trailing  (** extra bytes after a complete message, prefix re-fixed *)
  | Splice  (** two frames fused under one prefix *)
  | Bit_flip  (** one random bit, anywhere *)

val mutation_name : mutation -> string

val mutate : rng -> ?other:string -> string -> mutation * string
(** Damage one frame; [other] is spliced in when the [Splice] mutation
    is drawn.  The result may lie about its own length — feed it to the
    pure decoders, not a live socket. *)

val mutate_framed : rng -> ?other:string -> string -> mutation * string
(** Like {!mutate}, but the result always announces exactly the payload
    bytes present, so it can be written to a live server connection
    without desyncing its blocking frame reads.  Never draws
    [Length_lie] or [Bit_flip]. *)
