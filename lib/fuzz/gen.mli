(** Seeded generation of well-formed stencil programs.

    A {!spec} is a complete, self-contained test case: a stencil group
    plus everything needed to run it — the iteration shape, the shape and
    deterministic contents of every grid it touches, and values for its
    scalar parameters.  Two calls with the same seed produce structurally
    equal specs, which is what makes fuzz findings replayable.

    Generated programs draw from the shapes the paper's workloads use:
    weighted components and sparse taps over interiors, colored (red/black)
    in-place sweeps, strided rects, disjoint domain unions, face/boundary
    rects, scale-2 restriction reads and non-identity [out_map]
    interpolation writes, chained so later stencils consume earlier
    outputs.  Every spec is validated against the backends' own
    {!Sf_backends.Exec.validate_stencil} before being returned, so a spec
    that compiles is in-bounds by construction.

    Union rects are always disjoint: overlapping unions are semantically
    fine for out-of-place stencils but trip the (deliberately
    conservative) schedule certifier, and the metamorphic oracles need
    generated programs to certify. *)

open Sf_util
open Snowflake

type grid_spec = {
  gname : string;
  gshape : Ivec.t;
  gseed : int;
      (** [>= 0]: filled by [Mesh.random ~seed:gseed] (a program input);
          [< 0]: zero-initialised (an output/scratch grid). *)
}

type spec = {
  label : string;
  seed : int;
  shape : Ivec.t;  (** iteration shape passed to [Jit.compile] *)
  group : Group.t;
  grids : grid_spec list;
  params : (string * float) list;
}

val spec : ?max_dims:int -> seed:int -> unit -> spec
(** Deterministic in [seed].  [max_dims] (default 3, capped at 3) bounds
    the rank of the iteration space. *)

val build_grids : ?fill:float -> spec -> Sf_mesh.Grids.t
(** Fresh mesh storage for one run of the spec.  Input grids
    ([gseed >= 0]) are deterministic pseudo-random; the rest are filled
    with [fill] (default [0.] — pass [nan] for the poisoning oracle). *)

val inputs : spec -> string list
(** Names of the grids the spec initialises with data ([gseed >= 0]). *)

val restrict_grids : spec -> spec
(** Drop grid and parameter bindings the group no longer touches (used
    after shrinking removes stencils). *)

val validate : spec -> (unit, string) result
(** Re-run the backends' bounds/rank validation over every stencil. *)

val describe : spec -> string
(** Multi-line human summary: seed, shape, grids, params and the printed
    program — what the fuzzer shows on divergence. *)
