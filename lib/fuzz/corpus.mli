(** Replayable counterexample corpus.

    A corpus case is an ordinary [.sfl] stencil program (parsable by every
    tool that reads [Program_io], including [sflint]) whose run metadata —
    iteration shape, grid shapes and contents, parameter values — rides in
    [;]-comment header lines the fuzzer itself understands:

    {v
    ; sffuzz (v 1) (seed 1234)
    ; sffuzz (shape 10 12)
    ; sffuzz (grid u (10 12) 77)      ; random-initialised, Mesh.random seed 77
    ; sffuzz (grid t1 (10 12) -1)     ; zero-initialised output
    ; sffuzz (param alpha 0.75)
    (group fuzz1234 ...)
    v}

    [dune runtest] replays every file in [test/corpus/] through the full
    differential matrix forever after (see docs/TESTING.md for the triage
    and promotion workflow). *)

val save : dir:string -> ?note:string -> Gen.spec -> string
(** Write the spec under [dir] (created if missing) as
    [<label>.sfl] (suffixed [-2], [-3], ... if taken); [note] lines are
    embedded as comments.  Returns the path written. *)

val load : string -> (Gen.spec, string) result
(** Parse a corpus file back into a runnable spec. *)

val to_string : ?note:string -> Gen.spec -> string
val of_string : label:string -> string -> (Gen.spec, string) result

val replay :
  ?ulps:int -> ?atol:float -> ?only:string list -> string ->
  (unit, string) result
(** Load a file and run the differential check over the default target
    matrix ([only] filters backends, as in {!Diff.targets_for}). *)

val files : string -> string list
(** The [.sfl] files under a directory, sorted (empty when the directory
    does not exist). *)
