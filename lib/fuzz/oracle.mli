(** Metamorphic oracles: cross-checks between the static analysis layer
    and observed execution, run over generated programs.

    Differential testing catches backends disagreeing with the
    interpreter; these oracles catch the {e analyzer} disagreeing with
    reality — the two failure modes PR 1 (persistent pool) and PR 2
    (sflint/certifier) could have introduced. *)

val pool_determinism : ?workers:int -> Gen.spec -> (unit, string) result
(** If [Schedule_check.certify] passes the OpenMP plan as race-free at
    [workers] (default 4), executing it with 1 worker and with [workers]
    workers must produce bit-identical grids (0-ULP).  Specs whose plan
    does not certify are skipped ([Ok ()]) — the oracle tests the
    certifier's promise, not the plan. *)

val certify_clean : Gen.spec -> (unit, string) result
(** Generated programs are race-free by construction, so the certifier
    must pass their OpenMP and OpenCL plans, and compiling them under
    [Config.certify] (the [SF_VALIDATE=1] gate) must never raise
    [Jit.Certification_failed].  A failure here means the certification
    gate would reject legitimate user programs. *)

val sf011_nan_agreement : Gen.spec -> (unit, string) result
(** When [Lint.uninitialized_reads] (with the spec's declared inputs)
    reports no SF011 error, every value the program computes is a
    function of declared inputs only — so poisoning all non-input grids
    with NaN before an interp run must leave NaN {e only} in cells the
    program never writes.  A NaN that leaks into a written cell means
    sflint certified an initialization chain that does not exist. *)

val all : Gen.spec -> string list
(** Every per-spec oracle; returns the failure messages (empty = all
    passed). *)

val pipeline_agreement : ?workers:int -> unit -> (unit, string) result
(** The pipelined-SPMD differential target: certify a fixed 2-rank GSRB
    decomposition, run it through {!Sf_distributed.Pipeline} at 1 and
    [workers] (default 4) workers, and require the gathered solution to be
    bit-identical (0-ULP) to the bulk-synchronous [Spmd.run_group] path.
    Runs once per campaign — generated specs are single-rank. *)

val pipeline_undersize_detected : unit -> (unit, string) result
(** The [--inject undersize-channel] fault: shrink one certified ring by a
    slot behind the certificate's back and require the executor's depth
    re-verification to refuse with [Jit.Certification_failed] carrying an
    SF034 diagnostic.  An [Error] means the gate let a lying plan run. *)
