(** Metamorphic oracles: cross-checks between the static analysis layer
    and observed execution, run over generated programs.

    Differential testing catches backends disagreeing with the
    interpreter; these oracles catch the {e analyzer} disagreeing with
    reality — the two failure modes PR 1 (persistent pool) and PR 2
    (sflint/certifier) could have introduced. *)

val pool_determinism : ?workers:int -> Gen.spec -> (unit, string) result
(** If [Schedule_check.certify] passes the OpenMP plan as race-free at
    [workers] (default 4), executing it with 1 worker and with [workers]
    workers must produce bit-identical grids (0-ULP).  Specs whose plan
    does not certify are skipped ([Ok ()]) — the oracle tests the
    certifier's promise, not the plan. *)

val certify_clean : Gen.spec -> (unit, string) result
(** Generated programs are race-free by construction, so the certifier
    must pass their OpenMP and OpenCL plans, and compiling them under
    [Config.certify] (the [SF_VALIDATE=1] gate) must never raise
    [Jit.Certification_failed].  A failure here means the certification
    gate would reject legitimate user programs. *)

val sf011_nan_agreement : Gen.spec -> (unit, string) result
(** When [Lint.uninitialized_reads] (with the spec's declared inputs)
    reports no SF011 error, every value the program computes is a
    function of declared inputs only — so poisoning all non-input grids
    with NaN before an interp run must leave NaN {e only} in cells the
    program never writes.  A NaN that leaks into a written cell means
    sflint certified an initialization chain that does not exist. *)

val all : Gen.spec -> string list
(** Every oracle; returns the failure messages (empty = all passed). *)
