(* Structure-aware generation and mutation of sfserved wire frames.

   Valid frames come from Protocol.encode_* over randomized messages, so
   every mutant starts one edit away from a well-formed frame — the
   decoder's interesting paths (length checks, string bounds, grid
   loops) are all guarded by fields a blind bit-flipper would almost
   never hit coherently.  Mutations then lie about exactly one of those
   guards at a time. *)

module P = Sf_serve.Protocol

type rng = Random.State.t

let rng seed = Random.State.make [| 0x5f70726f; 0x746f5f5f; seed |]

let pick r xs = List.nth xs (Random.State.int r (List.length xs))

(* u32 boundary values: the ones that trip off-by-ones, sign confusion
   and limit checks.  Random small values keep the mix honest. *)
let gen_u32 r =
  pick r
    [
      0;
      1;
      2;
      255;
      256;
      65535;
      0x7FFF_FFFF;
      0x8000_0000;
      0xFFFF_FFFE;
      0xFFFF_FFFF;
      Random.State.int r 10_000;
    ]

let gen_small r n = Random.State.int r n

(* Strings the decoder must survive: empty, plain, embedded NULs and
   newlines, high bytes, and the occasional long run. *)
let gen_string r =
  match gen_small r 6 with
  | 0 -> ""
  | 1 -> "t" ^ string_of_int (gen_small r 100)
  | 2 -> String.make (1 + gen_small r 40) (Char.chr (gen_small r 256))
  | 3 -> "a\x00b\nc"
  | 4 -> String.init (gen_small r 24) (fun _ -> Char.chr (gen_small r 256))
  | _ -> String.make (64 + gen_small r 512) 'x'

let gen_f64 r =
  pick r
    [ 0.; -0.; 1.5; -1e300; 1e-300; infinity; neg_infinity; nan; 123.25 ]

let gen_request r : P.request =
  match gen_small r 5 with
  | 0 ->
      P.Hello
        {
          version = (if gen_small r 4 = 0 then gen_u32 r else P.version);
          tenant = gen_string r;
          caps = gen_u32 r;
        }
  | 1 ->
      P.Submit
        {
          P.program = gen_string r;
          backend = pick r [ ""; "openmp"; "compiled"; "nope"; gen_string r ];
          workers = gen_u32 r;
          reps = gen_u32 r;
          fault = pick r [ ""; "kernel:raise@n=1"; gen_string r ];
        }
  | 2 -> P.Poll { ticket = gen_u32 r }
  | 3 -> P.Stats
  | _ -> P.Shutdown

let gen_grid r =
  let n = gen_small r 5 in
  {
    P.gname = gen_string r;
    gshape = List.init (gen_small r 3) (fun _ -> 1 + gen_small r 4);
    gdata = Array.init n (fun _ -> gen_f64 r);
  }

let gen_reply r : P.reply =
  match gen_small r 8 with
  | 0 -> P.Welcome { version = P.version; caps = gen_u32 r; server = gen_string r }
  | 1 -> P.Accepted { ticket = gen_u32 r }
  | 2 -> P.Busy { queue_depth = gen_u32 r }
  | 3 -> P.Rejected { ticket = gen_u32 r; code = gen_string r; message = gen_string r }
  | 4 -> P.Pending { ticket = gen_u32 r; running = gen_small r 2 = 0 }
  | 5 ->
      P.Result
        {
          ticket = gen_u32 r;
          elapsed_us = gen_f64 r;
          grids = List.init (gen_small r 3) (fun _ -> gen_grid r);
        }
  | 6 -> P.Stats_reply { json = gen_string r }
  | _ -> P.Bye

type message = Req of P.request | Rep of P.reply

let gen_message r =
  if gen_small r 2 = 0 then Req (gen_request r) else Rep (gen_reply r)

let encode = function
  | Req q -> P.encode_request q
  | Rep p -> P.encode_reply p

let gen_frame r = encode (gen_message r)

(* ------------------------------------------------------------ mutation *)

type mutation =
  | Truncate  (** cut the tail, prefix re-fixed: EOF lands mid-field *)
  | Length_lie  (** prefix disagrees with the payload actually present *)
  | Tag_flip  (** unknown or mismatched tag byte *)
  | U32_boundary  (** overwrite 4 bytes with a boundary value *)
  | Str_inflate  (** a length field pointing past the end of the frame *)
  | Trailing  (** extra bytes after a complete message, prefix re-fixed *)
  | Splice  (** two frames fused under one prefix *)
  | Bit_flip  (** one random bit, anywhere *)

let mutations =
  [
    Truncate; Length_lie; Tag_flip; U32_boundary; Str_inflate; Trailing;
    Splice; Bit_flip;
  ]

let mutation_name = function
  | Truncate -> "truncate"
  | Length_lie -> "length-lie"
  | Tag_flip -> "tag-flip"
  | U32_boundary -> "u32-boundary"
  | Str_inflate -> "str-inflate"
  | Trailing -> "trailing"
  | Splice -> "splice"
  | Bit_flip -> "bit-flip"

let put_prefix b len =
  Bytes.set_int32_be b 0 (Int32.of_int len)

(* Rewrite the length prefix to match the payload actually present, so
   the mutant is self-delimiting again: open_frame passes the length
   check and the decoder walks into the damaged interior. *)
let refix s =
  let b = Bytes.of_string s in
  put_prefix b (Bytes.length b - 4);
  Bytes.unsafe_to_string b

let payload_len s = String.length s - 4

let mutate_with r m ~other s =
  match m with
  | Truncate ->
      let keep = gen_small r (max 1 (payload_len s)) in
      refix (String.sub s 0 (4 + keep))
  | Length_lie ->
      let b = Bytes.of_string s in
      let lie =
        pick r
          [
            0;
            max 0 (payload_len s - 1);
            payload_len s + 1;
            P.max_frame + 1;
            0xFFFF_FFFF;
          ]
      in
      put_prefix b lie;
      Bytes.unsafe_to_string b
  | Tag_flip ->
      let b = Bytes.of_string s in
      if Bytes.length b > 4 then Bytes.set b 4 (Char.chr (gen_small r 256));
      Bytes.unsafe_to_string b
  | U32_boundary ->
      let b = Bytes.of_string s in
      if Bytes.length b >= 9 then begin
        let off = 5 + gen_small r (max 1 (Bytes.length b - 8)) in
        let off = min off (Bytes.length b - 4) in
        Bytes.set_int32_be b off (Int32.of_int (gen_u32 r))
      end;
      Bytes.unsafe_to_string b
  | Str_inflate ->
      (* a length-looking u32 that points just past, or absurdly past,
         the end of what is actually there *)
      let b = Bytes.of_string s in
      if Bytes.length b >= 9 then begin
        let off = 5 + gen_small r (max 1 (Bytes.length b - 8)) in
        let off = min off (Bytes.length b - 4) in
        let remaining = Bytes.length b - off - 4 in
        let lie =
          pick r [ remaining + 1; remaining + 64; 0x00FF_FFFF; 0xFFFF_FFFF ]
        in
        Bytes.set_int32_be b off (Int32.of_int lie)
      end;
      Bytes.unsafe_to_string b
  | Trailing ->
      let extra = String.init (1 + gen_small r 8) (fun _ -> Char.chr (gen_small r 256)) in
      refix (s ^ extra)
  | Splice -> (
      match other with
      | Some o when String.length o > 4 ->
          (* both payloads under one prefix: a valid message followed by
             another message's bytes where the decoder expects the end *)
          refix (s ^ String.sub o 4 (String.length o - 4))
      | _ -> refix (s ^ String.sub s 4 (String.length s - 4)))
  | Bit_flip ->
      let b = Bytes.of_string s in
      let off = gen_small r (Bytes.length b) in
      Bytes.set b off
        (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl gen_small r 8)));
      Bytes.unsafe_to_string b

let mutate r ?other s =
  let m = pick r mutations in
  (m, mutate_with r m ~other s)

(* A mutant that still announces exactly the bytes present, for feeding
   to a live server without wedging its blocking frame read.  Length
   lies are the one family this excludes (by construction they desync
   the stream); they are exercised against the pure decoders and via
   the mid-frame-disconnect session op instead. *)
let mutate_framed r ?other s =
  let m =
    pick r
      [ Truncate; Tag_flip; U32_boundary; Str_inflate; Trailing; Splice ]
  in
  let s' = mutate_with r m ~other s in
  (m, refix s')
