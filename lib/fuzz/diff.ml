open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

type target = {
  backend : Jit.backend;
  config : Config.t;
  tname : string;
  apps : int;
}

let default_targets ~dims =
  let w n c = Config.with_workers n c in
  let tile = Some (List.init dims (fun _ -> 3)) in
  let t backend config tname = { backend; config; tname; apps = 1 } in
  [
    t Jit.Compiled Config.default "compiled";
    t Jit.Openmp (w 1 Config.default) "openmp/w1";
    t Jit.Openmp (w 4 Config.default) "openmp/w4";
    t Jit.Openmp { (w 2 Config.default) with Config.tile } "openmp/w2/tile";
    t Jit.Openmp
      { (w 4 Config.default) with Config.multicolor = true }
      "openmp/w4/multicolor";
    t Jit.Opencl (w 2 Config.default) "opencl/w2";
    t Jit.Opencl
      { (w 2 Config.default) with Config.tall_skinny = (2, 3) }
      "opencl/w2/ts";
    (* fused plans join the matrix: same one-application semantics, the
       backend is free to fuse cofusible stencils into single sweeps *)
    t Jit.Openmp
      { (w 4 Config.default) with Config.fusion = true }
      "openmp/w4/fused";
    t Jit.Opencl
      { (w 2 Config.default) with Config.fusion = true }
      "opencl/w2/fused";
    (* temporal blocking: three applications as one (possibly skewed
       time-tiled) kernel, vs three interp applications as oracle *)
    {
      backend = Jit.Openmp;
      config = w 4 Config.default;
      tname = "openmp/w4/ttile3";
      apps = 3;
    };
  ]

let targets_for ~only ~dims =
  let all = default_targets ~dims in
  match only with
  | None -> all
  | Some names ->
      List.filter
        (fun t -> List.mem (Jit.backend_name t.backend) names)
        all

type divergence = {
  target : string;
  grid : string;
  point : int list;
  expected : float;
  got : float;
  crashed : string option;
}

let divergence_to_string d =
  match d.crashed with
  | Some err -> Printf.sprintf "%s crashed: %s" d.target err
  | None ->
      Printf.sprintf
        "%s diverges from interp on grid %s at (%s): %.17g vs %.17g (%d ulps)"
        d.target d.grid
        (String.concat ", " (List.map string_of_int d.point))
        d.expected d.got
        (Fcmp.ulp_diff d.expected d.got)

let run_target spec target =
  let grids = Gen.build_grids spec in
  let kernel =
    match target.backend with
    | _ when target.apps <= 1 ->
        Jit.compile ~config:target.config target.backend ~shape:spec.shape
          spec.group
    | Jit.Custom _ ->
        (* an injected multi-application backend builds its own
           [apps]-application kernel — don't wrap it again *)
        Jit.compile ~config:target.config target.backend ~shape:spec.shape
          spec.group
    | _ ->
        Jit.compile_time_tiled ~config:target.config ~reps:target.apps
          target.backend ~shape:spec.shape spec.group
  in
  kernel.Kernel.run ~params:spec.params grids;
  grids

let run_reference ?(apps = 1) spec =
  let grids = Gen.build_grids spec in
  let kernel = Jit.compile Jit.Interp ~shape:spec.shape spec.group in
  for _ = 1 to apps do
    kernel.Kernel.run ~params:spec.params grids
  done;
  grids

let compare_grids ~ulps ~atol ~target reference got =
  let rec go = function
    | [] -> Ok ()
    | name :: rest -> (
        let a = Grids.find reference name and b = Grids.find got name in
        match Mesh.first_mismatch ~ulps ~atol a b with
        | None -> go rest
        | Some (point, expected, got) ->
            Error
              {
                target;
                grid = name;
                point = Array.to_list point;
                expected;
                got;
                crashed = None;
              })
  in
  go (Grids.names reference)

let check ?(ulps = 512) ?(atol = 1e-11) ~targets spec =
  (* one oracle per application count: a time-tiled target doing k
     applications compares against k interp applications *)
  let references = Hashtbl.create 4 in
  let reference_for apps =
    match Hashtbl.find_opt references apps with
    | Some g -> g
    | None ->
        let g = run_reference ~apps spec in
        Hashtbl.add references apps g;
        g
  in
  let rec go = function
    | [] -> Ok ()
    | t :: rest -> (
        (* a crashing target is a finding too — an exception must not
           abort the campaign, it must become a divergence of its own *)
        match run_target spec t with
        | exception e ->
            Error
              {
                target = t.tname;
                grid = "";
                point = [];
                expected = Float.nan;
                got = Float.nan;
                crashed = Some (Printexc.to_string e);
              }
        | got -> (
            match
              compare_grids ~ulps ~atol ~target:t.tname
                (reference_for (max 1 t.apps))
                got
            with
            | Ok () -> go rest
            | Error d -> Error d))
  in
  go targets

(* ------------------------------------------------------ fault injection *)

type bug =
  | Drop_last_stencil
  | Perturb_first_cell
  | Kernel_raise
  | Nan_poison_cell
  | Mis_skew_tile

let buggy_name = "sffuzz-buggy"

let injected_target bug =
  Jit.register_backend ~name:buggy_name (fun config ~shape group ->
      match bug with
      | Drop_last_stencil ->
          let ss = Group.stencils group in
          let n = List.length ss in
          let group' =
            if n > 1 then
              Group.make ~label:group.Group.label
                (List.filteri (fun i _ -> i < n - 1) ss)
            else group
          in
          Serial_backend.compile_compiled config ~shape group'
      | Perturb_first_cell ->
          let k = Serial_backend.compile_compiled config ~shape group in
          let out = (List.hd (Group.stencils group)).Stencil.output in
          Kernel.make ~name:k.Kernel.name ~backend:buggy_name
            ~description:"compiled + one perturbed cell"
            (fun ?params grids ->
              k.Kernel.run ?params grids;
              let m = Grids.find grids out in
              Mesh.set_flat m 0 (Mesh.get_flat m 0 +. 1e-3))
      | Kernel_raise ->
          let k = Serial_backend.compile_compiled config ~shape group in
          Kernel.make ~name:k.Kernel.name ~backend:buggy_name
            ~description:"compiled, then raises"
            (fun ?params grids ->
              k.Kernel.run ?params grids;
              raise
                (Sf_resilience.Fault.Injected
                   {
                     site = "kernel";
                     kind = Sf_resilience.Fault.Raise;
                     detail = buggy_name ^ ":" ^ group.Group.label;
                   }))
      | Nan_poison_cell ->
          let k = Serial_backend.compile_compiled config ~shape group in
          let out = (List.hd (Group.stencils group)).Stencil.output in
          Kernel.make ~name:k.Kernel.name ~backend:buggy_name
            ~description:"compiled + one NaN-poisoned cell"
            (fun ?params grids ->
              k.Kernel.run ?params grids;
              Mesh.set_flat (Grids.find grids out) 0 Float.nan)
      | Mis_skew_tile -> (
          (* a two-application temporal block whose skew is forced to 0:
             whenever the group actually carries an axis-0 dependence
             (required skew >= 1) and the slab is narrower than the axis,
             sub-step 2 reads stale neighbours across slab seams — exactly
             the bug [Schedule_check.certify_timetile_plan] flags as SF024,
             here smuggled past the certifier for the oracle to catch *)
          match
            if Timetile.required_skew group > 0 then
              Timetile.plan ~skew:0 ~block:2 config ~shape ~reps:2 group
            else None
          with
          | Some p -> Timetile.compile config ~shape p
          | None ->
              (* not susceptible (no axis-0 dependence, or untileable):
                 degrade to an honest two-application loop so the target
                 stays divergence-free *)
              let k = Serial_backend.compile_compiled config ~shape group in
              Kernel.make ~name:k.Kernel.name ~backend:buggy_name
                ~description:"two plain applications"
                (fun ?params grids ->
                  k.Kernel.run ?params grids;
                  k.Kernel.run ?params grids)));
  {
    backend = Jit.Custom buggy_name;
    config = Config.default;
    tname = buggy_name;
    apps = (match bug with Mis_skew_tile -> 2 | _ -> 1);
  }
