(* Protocol fuzzing for sfserved: the serve layer is the system's trust
   boundary, and this module machine-checks its central property — no
   hostile byte sequence can crash, hang, or cross-contaminate the
   daemon.

   Three layers:

     frame campaign    Proto_gen mutants against the pure decoders
                       (total: Ok/Error, never an exception) and, framed,
                       against a live in-process server over a socketpair
                       (every reply decodes; the server survives).

     session campaign  a stateful fuzzer driving randomized request
                       interleavings across three tenants — quota floods,
                       foreign/unknown/claimed POLLs, HELLO replays,
                       garbage frames, mid-frame disconnects — with
                       invariants checked after every step and a
                       bitwise-vs-standalone check on the clean tenant.

     corpus            every failure is shrunk (bytes for frames, step
                       count for sessions) and written as a replayable
                       .pfz case, mirroring the .sfl triage workflow. *)

open Snowflake
module P = Sf_serve.Protocol
module Server = Sf_serve.Server
module Session = Sf_serve.Session
module Gen = Sf_fuzz.Gen
module Corpus = Sf_fuzz.Corpus
module Jit = Sf_backends.Jit
module Config = Sf_backends.Config
module Json = Sf_trace.Json

(* ---------------------------------------------------------------- hex *)

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex line"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with Failure _ -> Error "non-hex byte"

(* ---------------------------------------------------- decoder totality *)

(* The decoders' contract: any byte string yields Ok or Error — an
   exception escaping either is exactly the crash class this fuzzer
   exists to find. *)
let decoder_crash s =
  let one name f =
    match f s with
    | Ok _ | Error _ -> None
    | exception e -> Some (Printf.sprintf "%s raised %s" name (Printexc.to_string e))
  in
  match one "decode_request" P.decode_request with
  | Some _ as c -> c
  | None -> one "decode_reply" P.decode_reply

(* Greedy byte-span removal, ddmin style: halve the span size whenever a
   full scan removes nothing.  The predicate is "still crashes". *)
let shrink_frame ~crashes s =
  let budget = ref 300 in
  let try_keep s' = !budget > 0 && (decr budget; crashes s') in
  let cur = ref s in
  let progress = ref true in
  while !progress do
    progress := false;
    let chunk = ref (max 1 (String.length !cur / 2)) in
    while !chunk >= 1 do
      let pos = ref 0 in
      while !pos < String.length !cur do
        let c = !cur in
        let len = String.length c in
        let k = min !chunk (len - !pos) in
        let candidate =
          String.sub c 0 !pos ^ String.sub c (!pos + k) (len - !pos - k)
        in
        if String.length candidate < len && try_keep candidate then begin
          cur := candidate;
          progress := true
        end
        else pos := !pos + k
      done;
      chunk := !chunk / 2
    done
  done;
  !cur

(* ------------------------------------------------------------- timed I/O *)

let rec wait_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd timeout

let read_reply_timeout ?(timeout = 10.) fd =
  if wait_readable fd timeout then P.read_reply fd
  else Error "timeout waiting for reply"

(* ------------------------------------------------------- live frame feed *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let fuzz_config =
  {
    Server.default_config with
    Server.threads = 2;
    queue_cap = 8;
    quota =
      {
        Session.max_inflight = 4;
        max_cells = Session.default_quota.Session.max_cells;
        cell_budget = max_int;
      };
    workers = 1;
    max_workers = 8;
    max_reps = 64;
    allow_faults = false;
    allow_shutdown = true;
  }

let feed_caps = P.cap_submit lor P.cap_poll lor P.cap_stats

(* Write [frames] down one authenticated connection, half-close, and
   require: the connection thread returns, every reply decodes, and the
   first reply is the WELCOME.  Returns the replies after the WELCOME.
   A frame here must announce exactly the bytes present (mutate_framed /
   self-delimiting corpus lines), or the server's blocking frame read
   would wait for bytes that never come. *)
let feed_live t ~tenant frames =
  let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> try Server.serve_fd t s_fd with _ -> ()) () in
  let result =
    try
      P.write_request c_fd
        (P.Hello { version = P.version; tenant; caps = feed_caps });
      List.iter (fun f -> P.write_frame c_fd f) frames;
      (try Unix.shutdown c_fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      Thread.join th;
      close_quiet s_fd;
      let rec drain acc =
        match read_reply_timeout c_fd with
        | Ok None -> Ok (List.rev acc)
        | Ok (Some r) -> drain (r :: acc)
        | Error m -> Error ("reply stream: " ^ m)
      in
      match drain [] with
      | Error _ as e -> e
      | Ok (P.Welcome _ :: replies) -> Ok replies
      | Ok [] -> Error "no WELCOME before EOF"
      | Ok (_ :: _) -> Error "first reply was not WELCOME"
    with P.Closed -> Error "server hung up mid-feed"
  in
  close_quiet c_fd;
  close_quiet s_fd;
  result

(* ------------------------------------------------------ session fuzzing *)

(* Fixed well-formed programs for the stateful phase: the point here is
   protocol state, not stencil diversity, and a small pool keeps the JIT
   cache hot across sessions. *)
let session_specs =
  lazy (List.map (fun seed -> Gen.spec ~seed ()) [ 46; 47 ])

let session_programs = lazy (List.map Corpus.to_string (Lazy.force session_specs))

let reference_cache : (int * int, Sf_mesh.Grids.t) Hashtbl.t = Hashtbl.create 8

(* Standalone run of spec [idx] at [workers], for the bitwise oracle.
   Cached: the reference for a (spec, workers) pair never changes. *)
let reference idx workers =
  match Hashtbl.find_opt reference_cache (idx, workers) with
  | Some g -> g
  | None ->
      let spec = List.nth (Lazy.force session_specs) idx in
      let config = { Config.default with Config.workers } in
      let kernel =
        Jit.compile ~config Jit.Openmp ~shape:spec.Gen.shape spec.Gen.group
      in
      let grids = Gen.build_grids spec in
      kernel.Sf_backends.Kernel.run ~params:spec.Gen.params grids;
      Hashtbl.replace reference_cache (idx, workers) grids;
      grids

let bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

let check_bitwise ~what (idx, workers) (grids : P.grid list) =
  let reference = reference idx workers in
  let names = Sf_mesh.Grids.names reference in
  if List.length grids <> List.length names then
    Error
      (Printf.sprintf "%s: server returned %d grids, standalone has %d" what
         (List.length grids) (List.length names))
  else
    List.fold_left
      (fun acc (g : P.grid) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let m = Sf_mesh.Grids.find reference g.P.gname in
            let fa = Sf_mesh.Mesh.data m in
            let local =
              Array.init (Float.Array.length fa) (Float.Array.get fa)
            in
            if bits_equal local g.P.gdata then Ok ()
            else
              Error
                (Printf.sprintf
                   "%s: grid %s differs bitwise from the standalone run" what
                   g.P.gname))
      (Ok ()) grids

type conn = {
  tenant : string;
  caps : int;
  mutable fd : Unix.file_descr option;
  mutable sfd : Unix.file_descr option;
  mutable thread : Thread.t option;
  (* outstanding tickets; [Some (spec_idx, workers)] when the submit was
     a known clean program whose result the bitwise oracle can check *)
  mutable tickets : (int * (int * int) option) list;
}

let fresh_conn ~tenant ~caps =
  { tenant; caps; fd = None; sfd = None; thread = None; tickets = [] }

let disconnect conn =
  Option.iter close_quiet conn.fd;
  conn.fd <- None;
  Option.iter Thread.join conn.thread;
  conn.thread <- None;
  Option.iter close_quiet conn.sfd;
  conn.sfd <- None;
  conn.tickets <- []

let connect t conn =
  let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> try Server.serve_fd t s_fd with _ -> ()) () in
  P.write_request c_fd
    (P.Hello { version = P.version; tenant = conn.tenant; caps = conn.caps });
  match read_reply_timeout c_fd with
  | Ok (Some (P.Welcome _)) ->
      conn.fd <- Some c_fd;
      conn.sfd <- Some s_fd;
      conn.thread <- Some th;
      Ok ()
  | other ->
      close_quiet c_fd;
      close_quiet s_fd;
      Error
        (Printf.sprintf "handshake for %s failed: %s" conn.tenant
           (match other with
           | Ok None -> "EOF"
           | Error m -> m
           | _ -> "unexpected reply"))

let ensure_connected t conn =
  match conn.fd with Some fd -> Ok fd | None -> (
    match connect t conn with
    | Ok () -> Ok (Option.get conn.fd)
    | Error _ as e -> e)

let ( let* ) = Result.bind

let roundtrip fd req =
  match P.write_request fd req with
  | () -> (
      match read_reply_timeout fd with
      | Ok (Some r) -> Ok r
      | Ok None -> Error "server closed the connection"
      | Error m -> Error m)
  | exception P.Closed -> Error "connection closed by server"

let is_quota code =
  String.length code >= 5 && String.sub code 0 5 = "quota"

(* One randomized step against one tenant's connection.  Every arm ends
   by asserting the reply the protocol contract promises. *)
type step_kind =
  | Submit_ok
  | Submit_bad
  | Submit_huge
  | Poll_own
  | Poll_foreign
  | Poll_unknown
  | Hello_replay
  | Garbage
  | Midframe_disconnect
  | Stats_check

let hostile_steps =
  [
    Submit_ok; Submit_ok; Poll_own; Poll_own; Submit_bad; Submit_huge;
    Poll_foreign; Poll_unknown; Hello_replay; Garbage; Garbage;
    Midframe_disconnect; Stats_check;
  ]

let victim_steps = [ Submit_ok; Submit_ok; Poll_own; Poll_own; Stats_check ]

let step_name = function
  | Submit_ok -> "submit-ok"
  | Submit_bad -> "submit-bad"
  | Submit_huge -> "submit-huge"
  | Poll_own -> "poll-own"
  | Poll_foreign -> "poll-foreign"
  | Poll_unknown -> "poll-unknown"
  | Hello_replay -> "hello-replay"
  | Garbage -> "garbage"
  | Midframe_disconnect -> "midframe-disconnect"
  | Stats_check -> "stats"

let clean_submit ?(workers = 1) program =
  { P.program; backend = ""; workers; reps = 1; fault = "" }

let parse_stats json =
  match Json.of_string json with
  | Error m -> Error ("STATS unparseable: " ^ m)
  | Ok doc -> Ok doc

let stats_num path doc =
  match
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some doc) path
  with
  | Some (Json.Num v) -> Some v
  | _ -> None

let do_poll conn fd ticket known ~claim =
  match roundtrip fd (P.Poll { ticket }) with
  | Error m -> Error (Printf.sprintf "poll %d: %s" ticket m)
  | Ok (P.Pending _) -> Ok ()
  | Ok (P.Result { ticket = tk; grids; _ }) when tk = ticket ->
      if claim then
        conn.tickets <- List.remove_assoc ticket conn.tickets;
      (match known with
      | Some key -> check_bitwise ~what:(conn.tenant) key grids
      | None -> Ok ())
  | Ok (P.Rejected { code; message; _ }) ->
      (* a clean in-session solve must never fail; garbage-born tickets
         (unknown spec) may end any way the server likes *)
      if claim then conn.tickets <- List.remove_assoc ticket conn.tickets;
      if known = None then Ok ()
      else
        Error
          (Printf.sprintf "clean ticket %d rejected %s: %s" ticket code message)
  | Ok _ -> Error (Printf.sprintf "poll %d: unexpected reply" ticket)

let run_step t r conns i kind =
  let conn = conns.(i) in
  let programs = Lazy.force session_programs in
  match kind with
  | Submit_ok ->
      let* fd = ensure_connected t conn in
      if List.length conn.tickets >= 6 then Ok ()
      else
        let idx = Random.State.int r (List.length programs) in
        let workers = 1 + Random.State.int r 2 in
        let program = List.nth programs idx in
        let* reply = roundtrip fd (P.Submit (clean_submit ~workers program)) in
        (match reply with
        | P.Accepted { ticket } ->
            conn.tickets <- (ticket, Some (idx, workers)) :: conn.tickets;
            Ok ()
        | P.Busy _ -> Ok ()
        | P.Rejected { code; _ } when is_quota code -> Ok ()
        | P.Rejected { code; message; _ } ->
            Error (Printf.sprintf "clean submit rejected %s: %s" code message)
        | _ -> Error "clean submit: unexpected reply")
  | Submit_bad ->
      let* fd = ensure_connected t conn in
      let* reply =
        roundtrip fd
          (P.Submit
             { P.program = "this is not a program"; backend = ""; workers = 1;
               reps = 1; fault = "" })
      in
      (match reply with
      | P.Rejected { code; _ } when code = P.err_parse -> Ok ()
      | P.Rejected { code; _ } ->
          Error (Printf.sprintf "bad program rejected with %s, want parse" code)
      | _ -> Error "bad program was not rejected")
  | Submit_huge ->
      let* fd = ensure_connected t conn in
      let program = List.nth programs 0 in
      let huge =
        if Random.State.bool r then
          { (clean_submit program) with P.workers = 0xFFFF_FFFF }
        else { (clean_submit program) with P.reps = 0xFFFF_FFFF }
      in
      let* reply = roundtrip fd (P.Submit huge) in
      (match reply with
      | P.Rejected { code; _ } when code = P.err_parse -> Ok ()
      | P.Rejected { code; _ } ->
          Error
            (Printf.sprintf "4-billion-unit submit rejected with %s, want parse"
               code)
      | P.Accepted _ -> Error "4-billion-unit submit was admitted"
      | _ -> Error "huge submit: unexpected reply")
  | Poll_own -> (
      match conn.tickets with
      | [] -> Ok ()
      | tickets ->
          let* fd = ensure_connected t conn in
          let ticket, known =
            List.nth tickets (Random.State.int r (List.length tickets))
          in
          do_poll conn fd ticket known ~claim:true)
  | Poll_foreign -> (
      (* a ticket that provably belongs to someone else must be REJECTED
         and must stay claimable by its owner *)
      let foreign =
        Array.to_list conns
        |> List.concat_map (fun c ->
               if c.tenant = conn.tenant then []
               else List.map (fun (tk, _) -> tk) c.tickets)
      in
      match foreign with
      | [] -> Ok ()
      | tks ->
          let* fd = ensure_connected t conn in
          let ticket = List.nth tks (Random.State.int r (List.length tks)) in
          let* reply = roundtrip fd (P.Poll { ticket }) in
          (match reply with
          | P.Rejected { code; _ } when code = P.err_proto -> Ok ()
          | P.Rejected { code; _ } ->
              Error (Printf.sprintf "foreign poll rejected with %s, want proto" code)
          | P.Result _ -> Error "cross-tenant leak: got another tenant's result"
          | P.Pending _ -> Error "cross-tenant leak: got another tenant's status"
          | _ -> Error "foreign poll: unexpected reply"))
  | Poll_unknown ->
      let* fd = ensure_connected t conn in
      let ticket = 10_000_000 + Random.State.int r 1000 in
      let* reply = roundtrip fd (P.Poll { ticket }) in
      (match reply with
      | P.Rejected { code; _ } when code = P.err_proto -> Ok ()
      | _ -> Error "unknown ticket was not proto-rejected")
  | Hello_replay ->
      let* fd = ensure_connected t conn in
      let* reply =
        roundtrip fd
          (P.Hello { version = P.version; tenant = conn.tenant; caps = conn.caps })
      in
      (match reply with
      | P.Rejected { code; _ } when code = P.err_proto -> Ok ()
      | _ -> Error "HELLO replay was not proto-rejected")
  | Garbage ->
      let* fd = ensure_connected t conn in
      let base = Proto_gen.encode (Proto_gen.Req (Proto_gen.gen_request r)) in
      let m, mutant = Proto_gen.mutate_framed r ~other:(Proto_gen.gen_frame r) base in
      (match P.write_frame fd mutant with
      | exception P.Closed -> Error "server hung up on a garbage frame"
      | () -> (
          match read_reply_timeout fd with
          | Ok (Some _) ->
              (* the server answers every frame, but an undecodable one
                 is connection-level: the reply arrives and the
                 connection closes (and its tickets are reaped).  Model
                 that by dropping the connection ourselves — whichever
                 side of the ambiguity the mutant landed on, a
                 disconnect is legal and keeps client and server ticket
                 views consistent. *)
              disconnect conn;
              Ok ()
          | Ok None ->
              Error
                (Printf.sprintf "no reply to %s garbage before close"
                   (Proto_gen.mutation_name m))
          | Error msg ->
              Error
                (Printf.sprintf "%s garbage: %s" (Proto_gen.mutation_name m) msg)))
  | Midframe_disconnect -> (
      match ensure_connected t conn with
      | Error _ as e -> e
      | Ok fd ->
          let frame = Proto_gen.encode (Proto_gen.Req (Proto_gen.gen_request r)) in
          (* cut inside the length prefix sometimes, inside the payload
             otherwise: both server-side EOF paths get exercised *)
          let cut =
            if Random.State.bool r then 1 + Random.State.int r 3
            else 4 + Random.State.int r (max 1 (String.length frame - 4))
          in
          let cut = min cut (String.length frame - 1) in
          (try P.write_frame fd (String.sub frame 0 cut) with P.Closed -> ());
          disconnect conn;
          Ok ())
  | Stats_check ->
      let* fd = ensure_connected t conn in
      let* reply = roundtrip fd P.Stats in
      (match reply with
      | P.Stats_reply { json } ->
          let* doc = parse_stats json in
          (match stats_num [ "queue"; "tickets" ] doc with
          | Some v when v >= 0. -> Ok ()
          | Some _ -> Error "STATS queue.tickets negative"
          | None -> Error "STATS missing queue.tickets")
      | _ -> Error "STATS did not answer")

(* Claim every outstanding ticket; the per-session deadline turns a
   wedged executor into a failure instead of a hang. *)
let drain_conn t conn ~deadline =
  let rec go () =
    match conn.tickets with
    | [] -> Ok ()
    | (ticket, known) :: _ ->
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "ticket %d never reached a terminal state" ticket)
        else
          let* fd = ensure_connected t conn in
          let* () = do_poll conn fd ticket known ~claim:true in
          if List.mem_assoc ticket conn.tickets then Thread.delay 0.002;
          go ()
  in
  go ()

(* Tenant names carry a per-invocation generation: the [Session]
   registry is process-global, so replaying a failed session under the
   same names would inherit its quota counters and change behavior. *)
let session_generation = ref 0

let run_session ~seed ~steps ~log () =
  let r = Proto_gen.rng (seed lxor 0x5e55) in
  let t = Server.create ~config:fuzz_config () in
  incr session_generation;
  let gen = !session_generation in
  let caps = P.cap_submit lor P.cap_poll lor P.cap_stats in
  let name i =
    Printf.sprintf "pf%d.%d-%c" seed gen (Char.chr (Char.code 'a' + i))
  in
  let conns =
    [|
      fresh_conn ~tenant:(name 0) ~caps (* the clean tenant *);
      fresh_conn ~tenant:(name 1) ~caps;
      fresh_conn ~tenant:(name 2) ~caps;
    |]
  in
  let trace = ref [] in
  let fail_at step detail =
    let recent =
      !trace |> List.filteri (fun i _ -> i < 12) |> List.rev
      |> String.concat " -> "
    in
    Error
      (Printf.sprintf "session seed=%d step %d: %s (trace: %s)" seed step
         detail recent)
  in
  let result =
    let rec steps_loop i =
      if i >= steps then Ok ()
      else
        let ci = Random.State.int r (Array.length conns) in
        let kind =
          let pool = if ci = 0 then victim_steps else hostile_steps in
          List.nth pool (Random.State.int r (List.length pool))
        in
        trace := Printf.sprintf "%s:%s" conns.(ci).tenant (step_name kind) :: !trace;
        match run_step t r conns ci kind with
        | Error m -> fail_at i m
        | Ok () ->
            if Server.stopped t then fail_at i "server stopped mid-session"
            else steps_loop (i + 1)
    in
    let* () = steps_loop 0 in
    (* drain: every outstanding ticket reaches a terminal state *)
    let deadline = Unix.gettimeofday () +. 30. in
    let* () =
      Array.to_list conns
      |> List.fold_left
           (fun acc c ->
             let* () = acc in
             drain_conn t c ~deadline)
           (Ok ())
    in
    (* the clean tenant is unharmed: one more solve, checked bitwise *)
    let* () =
      let c = conns.(0) in
      let* fd = ensure_connected t c in
      let program = List.nth (Lazy.force session_programs) 0 in
      match roundtrip fd (P.Submit (clean_submit ~workers:1 program)) with
      | Ok (P.Accepted { ticket }) ->
          c.tickets <- (ticket, Some (0, 1)) :: c.tickets;
          drain_conn t c ~deadline:(Unix.gettimeofday () +. 20.)
      | Ok (P.Busy _) -> Ok () (* queue full of nothing? cannot happen post-drain *)
      | Ok (P.Rejected { code; message; _ }) ->
          Error (Printf.sprintf "final clean solve rejected %s: %s" code message)
      | Ok _ -> Error "final clean solve: unexpected reply"
      | Error m -> Error ("final clean solve: " ^ m)
    in
    Array.iter disconnect conns;
    (* audit: with every connection gone, no tickets may survive *)
    let auditor = fresh_conn ~tenant:(name 0 ^ "-audit") ~caps in
    let* fd = ensure_connected t auditor in
    let* reply = roundtrip fd P.Stats in
    let* () =
      match reply with
      | P.Stats_reply { json } ->
          let* doc = parse_stats json in
          (match stats_num [ "queue"; "tickets" ] doc with
          | Some v when v = 0. -> Ok ()
          | Some v ->
              Error
                (Printf.sprintf
                   "%g ticket(s) leaked past disconnect reaping" v)
          | None -> Error "STATS missing queue.tickets")
      | _ -> Error "audit STATS did not answer"
    in
    disconnect auditor;
    (* shutdown race: two capability-bearing connections both demand
       SHUTDOWN; each must get BYE (stop is idempotent), and a tenant
       arriving after must be turned away, not wedged *)
    let shut_caps = caps lor P.cap_shutdown in
    let s1 = fresh_conn ~tenant:(name 1 ^ "-shut") ~caps:shut_caps in
    let s2 = fresh_conn ~tenant:(name 2 ^ "-shut") ~caps:shut_caps in
    let* fd1 = ensure_connected t s1 in
    let* fd2 = ensure_connected t s2 in
    P.write_request fd1 P.Shutdown;
    P.write_request fd2 P.Shutdown;
    let bye what fd =
      match read_reply_timeout fd with
      | Ok (Some P.Bye) -> Ok ()
      | Ok (Some (P.Rejected { message; _ })) ->
          Error (Printf.sprintf "%s: shutdown rejected: %s" what message)
      | Ok (Some _) -> Error (what ^ ": unexpected reply to SHUTDOWN")
      | Ok None -> Error (what ^ ": EOF instead of BYE")
      | Error m -> Error (what ^ ": " ^ m)
    in
    let* () = bye "first shutdown" fd1 in
    let* () = bye "second shutdown" fd2 in
    disconnect s1;
    disconnect s2;
    let late = fresh_conn ~tenant:(name 0 ^ "-late") ~caps in
    let* fd = ensure_connected t late in
    let program = List.nth (Lazy.force session_programs) 0 in
    let* reply = roundtrip fd (P.Submit (clean_submit program)) in
    let* () =
      match reply with
      | P.Rejected { code; _ } when code = P.err_proto -> Ok ()
      | P.Accepted _ -> Error "submit admitted after SHUTDOWN"
      | _ -> Error "post-shutdown submit: unexpected reply"
    in
    disconnect late;
    Ok ()
  in
  Array.iter disconnect conns;
  Server.stop t;
  Server.join t;
  (match result with
  | Ok () -> log (Printf.sprintf "session seed=%d: %d steps clean" seed steps)
  | Error _ -> ());
  result

(* --------------------------------------------------------------- corpus *)

let magic = "; sfproto "

type case =
  | Frames of { frames : string list; expect : string option }
  | Session_case of { seed : int; steps : int }

let case_to_string ?(note = "") case =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "; sfproto: protocol-fuzz corpus case -- replayable against sfserved\n";
  Buffer.add_string b
    "; (replay: dune exec bin/sffuzz.exe -- --proto --replay-dir <dir>; \
     docs/TESTING.md)\n";
  String.split_on_char '\n' note
  |> List.iter (fun line ->
         if String.trim line <> "" then
           Buffer.add_string b ("; note: " ^ line ^ "\n"));
  let meta parts =
    Buffer.add_string b (magic ^ Sexp.to_string (Sexp.list parts) ^ "\n")
  in
  meta [ Sexp.atom "v"; Sexp.int 1 ];
  (match case with
  | Frames { frames; expect } ->
      meta [ Sexp.atom "kind"; Sexp.atom "frame" ];
      Option.iter (fun c -> meta [ Sexp.atom "expect"; Sexp.atom c ]) expect;
      List.iter (fun f -> Buffer.add_string b (hex f ^ "\n")) frames
  | Session_case { seed; steps } ->
      meta [ Sexp.atom "kind"; Sexp.atom "session" ];
      meta [ Sexp.atom "seed"; Sexp.int seed ];
      meta [ Sexp.atom "steps"; Sexp.int steps ]);
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~label ?note case =
  mkdir_p dir;
  let base = Filename.concat dir label in
  let rec pick k =
    let path =
      if k = 1 then base ^ ".pfz" else Printf.sprintf "%s-%d.pfz" base k
    in
    if Sys.file_exists path then pick (k + 1) else path
  in
  let path = pick 1 in
  let oc = open_out path in
  output_string oc (case_to_string ?note case);
  close_out oc;
  path

let ( let* ) = Result.bind

let case_of_string text =
  let lines = String.split_on_char '\n' text in
  let is_meta line =
    String.length line >= String.length magic
    && String.sub line 0 (String.length magic) = magic
  in
  let metas, frames =
    List.fold_left
      (fun (metas, frames) raw ->
        let line = String.trim raw in
        if line = "" || (String.length line > 0 && line.[0] = ';' && not (is_meta line))
        then (metas, frames)
        else if is_meta line then
          ( Sexp.parse
              (String.trim
                 (String.sub line (String.length magic)
                    (String.length line - String.length magic)))
            :: metas,
            frames )
        else (metas, line :: frames))
      ([], []) lines
  in
  let metas = List.rev metas and frames = List.rev frames in
  let* metas =
    List.fold_right
      (fun m acc ->
        let* acc = acc in
        let* m = m in
        Ok (m :: acc))
      metas (Ok [])
  in
  let kind = ref "frame" in
  let seed = ref 0 in
  let steps = ref 0 in
  let expect = ref None in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        match m with
        | Sexp.List (Sexp.Atom "v" :: _) -> Ok ()
        | Sexp.List [ Sexp.Atom "kind"; Sexp.Atom k ] ->
            kind := k;
            Ok ()
        | Sexp.List [ Sexp.Atom "seed"; s ] ->
            let* v = Sexp.as_int s in
            seed := v;
            Ok ()
        | Sexp.List [ Sexp.Atom "steps"; s ] ->
            let* v = Sexp.as_int s in
            steps := v;
            Ok ()
        | Sexp.List [ Sexp.Atom "expect"; Sexp.Atom c ] ->
            expect := Some c;
            Ok ()
        | other ->
            Error
              (Printf.sprintf "unrecognised sfproto metadata: %s"
                 (Sexp.to_string other)))
      (Ok ()) metas
  in
  match !kind with
  | "frame" ->
      let* frames =
        List.fold_right
          (fun line acc ->
            let* acc = acc in
            let* f = unhex line in
            Ok (f :: acc))
          frames (Ok [])
      in
      if frames = [] then Error "frame case carries no hex frames"
      else Ok (Frames { frames; expect = !expect })
  | "session" ->
      if !steps <= 0 then Error "session case carries no step count"
      else Ok (Session_case { seed = !seed; steps = !steps })
  | k -> Error (Printf.sprintf "unknown sfproto case kind %S" k)

let load path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match case_of_string text with
  | Ok c -> Ok c
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pfz")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []

(* A frame announces exactly the bytes present iff its prefix matches;
   only those may be written to a live server (see feed_live). *)
let self_delimiting f =
  String.length f >= 5
  && Int32.to_int (String.get_int32_be f 0) land 0xFFFF_FFFF
     = String.length f - 4

let replay_case ~log path case =
  match case with
  | Session_case { seed; steps } -> (
      match run_session ~seed ~steps ~log () with
      | Ok () -> Ok ()
      | Error m -> Error m)
  | Frames { frames; expect } -> (
      (* layer 1: the pure decoders are total on every recorded frame *)
      let crash =
        List.fold_left
          (fun acc f -> match acc with Some _ -> acc | None -> decoder_crash f)
          None frames
      in
      match crash with
      | Some m -> Error m
      | None -> (
          (* layer 2: a live server survives the self-delimiting ones *)
          let live = List.filter self_delimiting frames in
          if live = [] then Ok ()
          else
            let t = Server.create ~config:fuzz_config () in
            let finish r =
              Server.stop t;
              Server.join t;
              r
            in
            match feed_live t ~tenant:("replay-" ^ Filename.basename path) live with
            | Error m -> finish (Error ("live replay: " ^ m))
            | Ok replies -> (
                let survived =
                  match feed_live t ~tenant:"replay-probe" [] with
                  | Ok _ -> Ok ()
                  | Error m -> Error ("server did not survive replay: " ^ m)
                in
                match (survived, expect) with
                | (Error _ as e), _ -> finish e
                | Ok (), None -> finish (Ok ())
                | Ok (), Some code ->
                    let saw =
                      List.exists
                        (function
                          | P.Rejected { code = c; _ } -> c = code
                          | _ -> false)
                        replies
                    in
                    if saw then finish (Ok ())
                    else
                      finish
                        (Error
                           (Printf.sprintf
                              "no REJECTED with code %S among %d replies" code
                              (List.length replies))))))

let replay_paths ?(log = ignore) paths =
  List.filter_map
    (fun path ->
      let outcome =
        match load path with
        | Error e -> Error e
        | Ok case -> replay_case ~log path case
      in
      match outcome with
      | Ok () ->
          log (Printf.sprintf "replayed %s: ok" path);
          None
      | Error e ->
          log (Printf.sprintf "replay FAILED: %s: %s" path e);
          Some (path, e))
    paths

(* -------------------------------------------------------------- campaign *)

type options = {
  seed : int;
  count : int;
  sessions : int;
  steps : int;
  corpus_dir : string option;
  log : string -> unit;
}

let default_options =
  { seed = 42; count = 200; sessions = 8; steps = 16; corpus_dir = None; log = ignore }

type failure = { what : string; detail : string; corpus_file : string option }

type report = {
  frames_tested : int;
  sessions_tested : int;
  failures : failure list;
}

let report_exit_code r = if r.failures = [] then 0 else 1

let run opts =
  let failures = ref [] in
  let record ?corpus_file what detail =
    opts.log (Printf.sprintf "FAILURE %s: %s" what detail);
    failures := { what; detail; corpus_file } :: !failures
  in
  (* ---- frame campaign: pure decoders + live feed ---- *)
  let t = Server.create ~config:fuzz_config () in
  for i = 0 to opts.count - 1 do
    let r = Proto_gen.rng (opts.seed + i) in
    let msg = Proto_gen.gen_message r in
    let frame = Proto_gen.encode msg in
    (* the unmutated frame must round-trip byte-for-byte *)
    (let reencoded =
       match msg with
       | Proto_gen.Req _ ->
           Result.map P.encode_request (P.decode_request frame)
       | Proto_gen.Rep _ -> Result.map P.encode_reply (P.decode_reply frame)
     in
     match reencoded with
     | Ok bytes when bytes = frame -> ()
     | Ok _ ->
         record
           (Printf.sprintf "roundtrip seed=%d" (opts.seed + i))
           "decode/encode changed the bytes"
     | Error m ->
         record
           (Printf.sprintf "roundtrip seed=%d" (opts.seed + i))
           ("valid frame did not decode: " ^ m));
    (* a mutant may do anything except raise *)
    let mname, mutant = Proto_gen.mutate r ~other:(Proto_gen.gen_frame r) frame in
    (match decoder_crash mutant with
    | None -> ()
    | Some detail ->
        let crashes s = decoder_crash s <> None in
        let minimised = shrink_frame ~crashes mutant in
        let corpus_file =
          Option.map
            (fun dir ->
              save ~dir
                ~label:
                  (Printf.sprintf "decode-%s-%d"
                     (Proto_gen.mutation_name mname) (opts.seed + i))
                ~note:detail
                (Frames { frames = [ minimised ]; expect = None }))
            opts.corpus_dir
        in
        record ?corpus_file
          (Printf.sprintf "decoder:%s seed=%d" (Proto_gen.mutation_name mname)
             (opts.seed + i))
          (Printf.sprintf "%s (shrunk %d -> %d bytes)" detail
             (String.length mutant)
             (String.length minimised)));
    (* framed variant against the live server *)
    let fname, framed = Proto_gen.mutate_framed r ~other:(Proto_gen.gen_frame r) frame in
    (match feed_live t ~tenant:(Printf.sprintf "pframe%d" (opts.seed + i)) [ framed ] with
    | Ok _ -> ()
    | Error detail ->
        let corpus_file =
          Option.map
            (fun dir ->
              save ~dir
                ~label:
                  (Printf.sprintf "live-%s-%d" (Proto_gen.mutation_name fname)
                     (opts.seed + i))
                ~note:detail
                (Frames { frames = [ framed ]; expect = None }))
            opts.corpus_dir
        in
        record ?corpus_file
          (Printf.sprintf "live:%s seed=%d" (Proto_gen.mutation_name fname)
             (opts.seed + i))
          detail);
    if (i + 1) mod 50 = 0 then
      opts.log
        (Printf.sprintf "%d/%d frames, %d failure(s)" (i + 1) opts.count
           (List.length !failures))
  done;
  (* the frame campaign's server must still be standing *)
  (match feed_live t ~tenant:"post-campaign-probe" [] with
  | Ok _ -> ()
  | Error m -> record "frame-campaign" ("server did not survive: " ^ m));
  Server.stop t;
  Server.join t;
  (* ---- stateful sessions ---- *)
  for j = 0 to opts.sessions - 1 do
    let seed = (opts.seed * 1000) + j in
    match run_session ~seed ~steps:opts.steps ~log:opts.log () with
    | Ok () -> ()
    | Error detail ->
        (* shrink by step count: the rng is deterministic in (seed, step
           index), so a shorter prefix replays the same interleaving *)
        let fails n = Result.is_error (run_session ~seed ~steps:n ~log:ignore ()) in
        let rec shrink_steps best candidate =
          if candidate < 1 then best
          else if fails candidate then shrink_steps candidate (candidate / 2)
          else best
        in
        let minimal = shrink_steps opts.steps (opts.steps / 2) in
        let corpus_file =
          Option.map
            (fun dir ->
              save ~dir
                ~label:(Printf.sprintf "session-%d" seed)
                ~note:detail
                (Session_case { seed; steps = minimal }))
            opts.corpus_dir
        in
        record ?corpus_file (Printf.sprintf "session seed=%d" seed) detail
  done;
  opts.log
    (Printf.sprintf "%d frame(s), %d session(s), %d failure(s)" opts.count
       opts.sessions
       (List.length !failures));
  { frames_tested = opts.count; sessions_tested = opts.sessions;
    failures = List.rev !failures }
