(** The geometric multigrid solver, assembled entirely from Snowflake
    stencil groups — the paper's Python/Snowflake HPGMG port (§V).

    Every operator application is a JIT-compiled kernel: GSRB smooths,
    residuals, piecewise-constant restriction, interpolation-and-correct,
    and the interleaved Dirichlet boundary stencils.  The backend (and its
    tuning options) is chosen per solver instance, so the same solver object
    demonstrates single-source portability across micro-compilers. *)

open Sf_backends

type interp_kind = Constant | Linear

(** Smoother selection.  [Gsrb] is the paper's benchmark configuration;
    [Gsrb4] uses the four-colour ordering of Fig. 3b; [Jacobi] and
    [Chebyshev] are constant-coefficient smoothers (use with β ≡ 1). *)
type smoother = Gsrb | Gsrb4 | Jacobi | Chebyshev of int

type config = {
  backend : Jit.backend;
  jit : Config.t;
  smoother : smoother;
  smooths : int;  (** smoother applications pre- and post- (paper uses 2) *)
  coarsest_n : int;  (** stop coarsening at this interior size *)
  coarse_iters : int;  (** smoother applications used as the bottom solve *)
  interp : interp_kind;
}

val default_config : config
(** compiled backend, GSRB smoother, 2 smooths, coarsest 2³, 24 bottom
    smooths, piecewise-constant interpolation. *)

type t = private {
  levels : Level.t array;
  config : config;
  timers : (string, float ref) Hashtbl.t;
      (** per-operation, per-level wall time, keyed e.g. ["smooth L0"] *)
  mutable active_backend : Jit.backend;
      (** the backend kernels currently compile against — starts at
          [config.backend], demoted down [Supervise.chain] by
          {!solve_resilient} when a backend keeps failing *)
}

val create : ?config:config -> n:int -> unit -> t
(** Builds the hierarchy n, n/2, …, [coarsest_n].  [n] must be
    [coarsest_n]·2^k.  Betas default to 1; call {!set_beta} to change, then
    the solver recomputes every level's inverse diagonal. *)

val finest : t -> Level.t

val set_beta : t -> (float -> float -> float -> float) -> unit
(** Evaluate β at every level's face centres (re-discretisation, equivalent
    to HPGMG's coefficient restriction for smooth β) and refresh [dinv]. *)

val init_dinv : t -> unit
(** Recompute the inverse-diagonal mesh on every level (run automatically
    by {!create} and {!set_beta}). *)

val smooth : t -> int -> unit
(** One smoother application (e.g. boundaries/red/boundaries/black for
    GSRB) on level [i]. *)

val smooth_steps : t -> int -> count:int -> unit
(** [count] consecutive smoother applications on level [i], temporally
    blocked when [config.jit.time_tile > 1] and the smoother group is
    [Timetile]-legal: count/k applications run as time-tiled kernels of
    depth k (bitwise identical to plain smooths, ~one memory pass per k
    sweeps), the remainder — and any untileable smoother — as plain
    smooths.  The V-cycle's pre/post-smooth loops and the bottom solve go
    through this. *)

val smoother_plan : t -> string
(** Human summary of the finest-level smoother plan (fusion partition and
    temporal blocking) under the instance's jit config — what
    [hpgmg_run --profile] prints. *)

val compute_residual : t -> int -> unit
(** res ← f − A u on level [i] (boundaries applied first). *)

val vcycle : t -> unit
(** One V(smooths, smooths)-cycle starting at the finest level. *)

val fcycle : t -> unit
(** One full-multigrid F-cycle: restrict the right-hand side to every
    level, solve coarsest, prolong + V-cycle upward (paper §V configures
    HPGMG's default F-cycle; provided for completeness). *)

val residual_norm : t -> float
(** ‖f − A u‖₂ over the finest interior (recomputes the residual). *)

val solve : ?cycles:int -> t -> float array
(** Run V-cycles (default 10, as in the paper's benchmark configuration)
    and return the residual norms: element 0 is the initial norm, element i
    the norm after cycle i. *)

val active_backend : t -> Jit.backend

val demote_backend : t -> bool
(** Demote the active backend one step down [Supervise.chain] (every later
    kernel compiles against the weaker backend); [false] when already at
    the end of the chain.  Recorded as a [Failovers] counter increment and
    a ["failover:mg"] span when tracing is on. *)

val solve_resilient :
  ?cycles:int ->
  ?checkpoint_every:int ->
  ?ring:int ->
  ?divergence_factor:float ->
  ?max_rollbacks:int ->
  t ->
  float array
(** {!solve} under supervision: after every good cycle (finite residual,
    not blown up past [divergence_factor] (default 10) x the last accepted
    norm) the finest-level solution is checkpointed into a
    copy-on-checkpoint ring of [ring] (default 3) reusable buffers, every
    [checkpoint_every] (default 1) cycles.  A bad cycle — divergence, a
    guard trip, or an exception the per-kernel supervisor could not absorb
    — rolls back to the newest checkpoint, demotes the active backend one
    step down the failover chain and re-runs the same cycle, up to
    [max_rollbacks] (default 8) times in total before the failure is
    re-raised.  The finest solution mesh is the {e entire} rollback state:
    a V-cycle recomputes all coarser state and never writes the finest f
    or dinv.  With no faults armed and guards off this is {!solve} plus
    one mesh copy per checkpoint.  Every rollback/failover appears in the
    trace ([Rollbacks]/[Failovers] counters, ["rollback:mg"] /
    ["failover:mg"] markers). *)

val dof : t -> int
(** Unknowns on the finest level. *)

val timed : t -> string -> (unit -> unit) -> unit
(** [timed t key f] runs [f] and adds its wall time to [t]'s profile under
    [key].  Exception-safe: if [f] raises, the elapsed time is still booked
    before the exception propagates.  With tracing on
    ({!Sf_trace.Trace.on}), each sample is also recorded as a [phase]
    span. *)

val profile : t -> (string * float) list
(** Accumulated wall time per (operation, level), sorted descending —
    HPGMG's characteristic timing breakdown.  Keys: ["smooth L<i>"],
    ["residual L<i>"], ["restrict L<i>->L<i+1>"], ["interp L<i+1>->L<i>"],
    ["bottom L<i>"]. *)

val reset_profile : t -> unit
