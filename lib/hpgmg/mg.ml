open Sf_mesh
open Snowflake
open Sf_backends

type interp_kind = Constant | Linear
type smoother = Gsrb | Gsrb4 | Jacobi | Chebyshev of int

type config = {
  backend : Jit.backend;
  jit : Config.t;
  smoother : smoother;
  smooths : int;
  coarsest_n : int;
  coarse_iters : int;
  interp : interp_kind;
}

let default_config =
  {
    backend = Jit.Compiled;
    jit = Config.default;
    smoother = Gsrb;
    smooths = 2;
    coarsest_n = 2;
    coarse_iters = 24;
    interp = Constant;
  }

type t = {
  levels : Level.t array;
  config : config;
  timers : (string, float ref) Hashtbl.t;
}

let finest t = t.levels.(0)
let dof t = Level.dof (finest t)

module Trace = Sf_trace.Trace

(* Wall-time accounting per (operation, level) — the HPGMG breakdown.
   Exception-safe: a raising [f] still books the time it spent (a partial
   bottom solve that dies must not vanish from the profile).  With tracing
   on, each sample is also recorded as a [phase] span. *)
let timed t key f =
  let t0_us = Trace.now_us () in
  Fun.protect
    ~finally:(fun () ->
      let dur_us = Trace.now_us () -. t0_us in
      let dt = dur_us *. 1e-6 in
      (match Hashtbl.find_opt t.timers key with
      | Some r -> r := !r +. dt
      | None -> Hashtbl.replace t.timers key (ref dt));
      if Trace.on () then Trace.record_span Trace.Phase key ~ts_us:t0_us ~dur_us)
    f

let profile t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.timers []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let reset_profile t = Hashtbl.reset t.timers

(* Stencil groups reused across levels; resolution against each level's
   shape happens at JIT time, so one definition serves the whole
   hierarchy — the language property §II.A calls out. *)
let residual_group =
  Group.make ~label:"residual"
    (Operators.boundaries ~grid:"u" @ [ Operators.residual_vc ])

let dinv_group = Group.make ~label:"dinv" [ Operators.dinv_setup ]
let restrict_group = Group.make ~label:"restrict" [ Operators.restriction ]

let interp_group = function
  | Constant -> Group.make ~label:"interp_pc" Operators.interpolation
  | Linear ->
      Group.make ~label:"interp_tl"
        (Operators.boundaries ~grid:"coarse_u" @ Operators.interpolation_linear)

let compile t group ~shape =
  Jit.compile ~config:t.config.jit t.config.backend ~shape group

let create ?(config = default_config) ~n () =
  let rec sizes acc n =
    if n = config.coarsest_n then List.rev (n :: acc)
    else if n < config.coarsest_n || n mod 2 <> 0 then
      invalid_arg
        (Printf.sprintf "Mg.create: n must be coarsest_n (%d) times a power of 2"
           config.coarsest_n)
    else sizes (n :: acc) (n / 2)
  in
  let levels =
    Array.of_list (List.map (fun n -> Level.create ~n) (sizes [] n))
  in
  let t = { levels; config; timers = Hashtbl.create 32 } in
  (* betas default to 1; dinv must still be initialised *)
  let init_dinv_level level =
    let kernel = compile t dinv_group ~shape:level.Level.shape in
    kernel.Kernel.run ~params:(Level.params level) level.Level.grids
  in
  Array.iter init_dinv_level levels;
  t

let init_dinv t =
  Array.iter
    (fun level ->
      let kernel = compile t dinv_group ~shape:level.Level.shape in
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids)
    t.levels

let set_beta t beta =
  Array.iter (fun level -> Level.set_beta level beta) t.levels;
  init_dinv t

let smoother_group = function
  | Gsrb -> Operators.gsrb_smooth
  | Gsrb4 -> Operators.gsrb4_smooth
  | Jacobi -> Operators.jacobi_smooth
  | Chebyshev degree -> Operators.chebyshev_smooth ~degree

let smoother_params config level =
  match config.smoother with
  | Gsrb | Gsrb4 | Jacobi -> Level.params level
  | Chebyshev degree ->
      Operators.chebyshev_params ~level_h:level.Level.h ~lambda_lo_frac:0.1
        ~degree

let smooth_untimed t i =
  let level = t.levels.(i) in
  let kernel =
    compile t (smoother_group t.config.smoother) ~shape:level.Level.shape
  in
  kernel.Kernel.run
    ~params:(smoother_params t.config level)
    level.Level.grids

let smooth t i =
  timed t (Printf.sprintf "smooth L%d" i) (fun () -> smooth_untimed t i)

let compute_residual t i =
  let level = t.levels.(i) in
  let kernel = compile t residual_group ~shape:level.Level.shape in
  timed t
    (Printf.sprintf "residual L%d" i)
    (fun () ->
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids)

(* Restrict a fine-level mesh into the coarse f.  The kernel names its
   grids "fine_res"/"coarse_f"; binding them per call is the Snowflake
   idiom for cross-level operators. *)
let restrict_into t ~fine_mesh ~coarse =
  let kernel = compile t restrict_group ~shape:coarse.Level.shape in
  kernel.Kernel.run
    ~params:(Level.params coarse)
    (Grids.of_list
       [ ("fine_res", fine_mesh); ("coarse_f", Level.f coarse) ])

let interpolate_and_correct t ~coarse ~fine =
  let group = interp_group t.config.interp in
  let kernel = compile t group ~shape:coarse.Level.shape in
  kernel.Kernel.run
    ~params:(Level.params coarse)
    (Grids.of_list [ ("coarse_u", Level.u coarse); ("fine_u", Level.u fine) ])

let rec cycle t i =
  let coarsest = Array.length t.levels - 1 in
  if i = coarsest then
    timed t
      (Printf.sprintf "bottom L%d" i)
      (fun () ->
        for _ = 1 to t.config.coarse_iters do
          smooth_untimed t i
        done)
  else begin
    for _ = 1 to t.config.smooths do
      smooth t i
    done;
    compute_residual t i;
    let fine = t.levels.(i) and coarse = t.levels.(i + 1) in
    timed t
      (Printf.sprintf "restrict L%d->L%d" i (i + 1))
      (fun () -> restrict_into t ~fine_mesh:(Level.res fine) ~coarse);
    Mesh.fill (Level.u coarse) 0.;
    cycle t (i + 1);
    timed t
      (Printf.sprintf "interp L%d->L%d" (i + 1) i)
      (fun () -> interpolate_and_correct t ~coarse ~fine);
    for _ = 1 to t.config.smooths do
      smooth t i
    done
  end

let cycle_args t =
  [
    ("levels", Trace.Int (Array.length t.levels));
    ("dof", Trace.Int (dof t));
  ]

let vcycle t =
  if Trace.on () then
    Trace.span ~args:(cycle_args t) Trace.Vcycle "vcycle" (fun () ->
        cycle t 0)
  else cycle t 0

let fcycle_untraced t =
  let nlevels = Array.length t.levels in
  (* push the right-hand side down the hierarchy *)
  for i = 0 to nlevels - 2 do
    restrict_into t ~fine_mesh:(Level.f t.levels.(i)) ~coarse:t.levels.(i + 1)
  done;
  (* bottom solve *)
  let bottom = nlevels - 1 in
  Mesh.fill (Level.u t.levels.(bottom)) 0.;
  for _ = 1 to t.config.coarse_iters do
    smooth t bottom
  done;
  (* prolong upward, one V-cycle per level *)
  for i = nlevels - 2 downto 0 do
    Mesh.fill (Level.u t.levels.(i)) 0.;
    interpolate_and_correct t ~coarse:t.levels.(i + 1) ~fine:t.levels.(i);
    cycle t i
  done

let fcycle t =
  if Trace.on () then
    Trace.span ~args:(cycle_args t) Trace.Vcycle "fcycle" (fun () ->
        fcycle_untraced t)
  else fcycle_untraced t

let residual_norm t =
  compute_residual t 0;
  let level = finest t in
  Level.interior_norm_l2 level (Level.res level)

let solve ?(cycles = 10) t =
  let norms = Array.make (cycles + 1) 0. in
  norms.(0) <- residual_norm t;
  for c = 1 to cycles do
    vcycle t;
    norms.(c) <- residual_norm t
  done;
  norms
