open Sf_mesh
open Snowflake
open Sf_backends

type interp_kind = Constant | Linear
type smoother = Gsrb | Gsrb4 | Jacobi | Chebyshev of int

type config = {
  backend : Jit.backend;
  jit : Config.t;
  smoother : smoother;
  smooths : int;
  coarsest_n : int;
  coarse_iters : int;
  interp : interp_kind;
}

let default_config =
  {
    backend = Jit.Compiled;
    jit = Config.default;
    smoother = Gsrb;
    smooths = 2;
    coarsest_n = 2;
    coarse_iters = 24;
    interp = Constant;
  }

type t = {
  levels : Level.t array;
  config : config;
  timers : (string, float ref) Hashtbl.t;
  mutable active_backend : Jit.backend;
      (* starts at config.backend; demoted down the failover chain by
         [solve_resilient] when a backend keeps failing *)
}

module Fault = Sf_resilience.Fault
module Checkpoint = Sf_resilience.Checkpoint

let finest t = t.levels.(0)
let dof t = Level.dof (finest t)

module Trace = Sf_trace.Trace

(* Wall-time accounting per (operation, level) — the HPGMG breakdown.
   Exception-safe: a raising [f] still books the time it spent (a partial
   bottom solve that dies must not vanish from the profile).  With tracing
   on, each sample is also recorded as a [phase] span. *)
let timed t key f =
  (* the "mg" fault site: a Raise/Transient aborts the phase before it
     runs (the V-cycle unwinds to solve_resilient's rollback); poison
     kinds corrupt the finest solution *after* the phase completes, so
     the corruption survives into subsequent phases the way real silent
     data corruption does *)
  let fault =
    if Fault.armed () then Fault.fire ~site:"mg" ~detail:key else None
  in
  let t0_us = Trace.now_us () in
  Fun.protect
    ~finally:(fun () ->
      let dur_us = Trace.now_us () -. t0_us in
      let dt = dur_us *. 1e-6 in
      (match Hashtbl.find_opt t.timers key with
      | Some r -> r := !r +. dt
      | None -> Hashtbl.replace t.timers key (ref dt));
      if Trace.on () then Trace.record_span Trace.Phase key ~ts_us:t0_us ~dur_us)
    f;
  match fault with
  | Some Fault.Nan_poison | Some Fault.Inf_poison ->
      let u = Level.u t.levels.(0) in
      let v =
        if fault = Some Fault.Nan_poison then Float.nan else Float.infinity
      in
      (* hit the domain centre — an interior cell; the flat midpoint of a
         ghosted mesh decodes to a boundary ghost that the Dirichlet
         stencils would immediately rewrite *)
      Mesh.set u (Array.map (fun n -> n / 2) (Mesh.shape u)) v
  | _ -> ()

let profile t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.timers []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let reset_profile t = Hashtbl.reset t.timers

(* Stencil groups reused across levels; resolution against each level's
   shape happens at JIT time, so one definition serves the whole
   hierarchy — the language property §II.A calls out. *)
let residual_group =
  Group.make ~label:"residual"
    (Operators.boundaries ~grid:"u" @ [ Operators.residual_vc ])

let dinv_group = Group.make ~label:"dinv" [ Operators.dinv_setup ]
let restrict_group = Group.make ~label:"restrict" [ Operators.restriction ]

let interp_group = function
  | Constant -> Group.make ~label:"interp_pc" Operators.interpolation
  | Linear ->
      Group.make ~label:"interp_tl"
        (Operators.boundaries ~grid:"coarse_u" @ Operators.interpolation_linear)

(* Kernels come from the supervised compiler against the *active*
   backend: on a clean run this is exactly Jit.compile (the supervised
   path engages only under armed faults / active guards), and under a
   chaos campaign each invocation gets per-wave retry, guard scans and
   the backend failover chain. *)
let compile t group ~shape =
  Supervise.compile ~config:t.config.jit t.active_backend ~shape group

let active_backend t = t.active_backend

(* Demote the active backend one step down the failover chain; false when
   already at the chain's end.  Distinct from Supervise's per-invocation
   failover: a demotion is sticky — every later kernel compiles against
   the weaker backend — which is what rollback re-runs want. *)
let demote_backend t =
  match Supervise.chain t.active_backend with
  | _ :: next :: _ ->
      let from = Jit.backend_name t.active_backend in
      t.active_backend <- next;
      if Trace.on () then begin
        Trace.add Trace.Failovers 1;
        Trace.record_span
          ~args:
            [ ("from", Trace.Str from);
              ("to", Trace.Str (Jit.backend_name next)) ]
          Trace.Phase "failover:mg" ~ts_us:(Trace.now_us ()) ~dur_us:0.
      end;
      true
  | _ -> false

let create ?(config = default_config) ~n () =
  let rec sizes acc n =
    if n = config.coarsest_n then List.rev (n :: acc)
    else if n < config.coarsest_n || n mod 2 <> 0 then
      invalid_arg
        (Printf.sprintf "Mg.create: n must be coarsest_n (%d) times a power of 2"
           config.coarsest_n)
    else sizes (n :: acc) (n / 2)
  in
  let levels =
    Array.of_list (List.map (fun n -> Level.create ~n) (sizes [] n))
  in
  let t =
    {
      levels;
      config;
      timers = Hashtbl.create 32;
      active_backend = config.backend;
    }
  in
  (* betas default to 1; dinv must still be initialised *)
  let init_dinv_level level =
    let kernel = compile t dinv_group ~shape:level.Level.shape in
    kernel.Kernel.run ~params:(Level.params level) level.Level.grids
  in
  Array.iter init_dinv_level levels;
  t

let init_dinv t =
  Array.iter
    (fun level ->
      let kernel = compile t dinv_group ~shape:level.Level.shape in
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids)
    t.levels

let set_beta t beta =
  Array.iter (fun level -> Level.set_beta level beta) t.levels;
  init_dinv t

let smoother_group = function
  | Gsrb -> Operators.gsrb_smooth
  | Gsrb4 -> Operators.gsrb4_smooth
  | Jacobi -> Operators.jacobi_smooth
  | Chebyshev degree -> Operators.chebyshev_smooth ~degree

let smoother_params config level =
  match config.smoother with
  | Gsrb | Gsrb4 | Jacobi -> Level.params level
  | Chebyshev degree ->
      Operators.chebyshev_params ~level_h:level.Level.h ~lambda_lo_frac:0.1
        ~degree

let smooth_untimed t i =
  let level = t.levels.(i) in
  let kernel =
    compile t (smoother_group t.config.smoother) ~shape:level.Level.shape
  in
  kernel.Kernel.run
    ~params:(smoother_params t.config level)
    level.Level.grids

let smooth t i =
  timed t (Printf.sprintf "smooth L%d" i) (fun () -> smooth_untimed t i)

(* [count] consecutive smoother applications, temporally blocked when the
   jit config asks for it ([Config.time_tile] = depth k) and the smoother
   group is provably tileable: count/k applications run as one time-tiled
   kernel each (k sweeps for ~one pass of memory traffic, results bitwise
   identical to k plain smooths), the remainder as plain smooths.  An
   untileable smoother silently degrades to plain smooths — the knob is a
   performance request, never a semantics change. *)
let smooth_steps_untimed t i ~count =
  let level = t.levels.(i) in
  let shape = level.Level.shape in
  let group = smoother_group t.config.smoother in
  let k = t.config.jit.Config.time_tile in
  let tiled =
    if k > 1 && count >= k && Timetile.legal ~shape group then k else 1
  in
  if tiled > 1 then begin
    let kernel =
      Jit.compile_time_tiled ~config:t.config.jit ~reps:tiled t.active_backend
        ~shape group
    in
    let params = smoother_params t.config level in
    for _ = 1 to count / tiled do
      kernel.Kernel.run ~params level.Level.grids
    done;
    for _ = 1 to count mod tiled do
      smooth_untimed t i
    done
  end
  else
    for _ = 1 to count do
      smooth_untimed t i
    done

let smooth_steps t i ~count =
  timed t
    (Printf.sprintf "smooth L%d" i)
    (fun () -> smooth_steps_untimed t i ~count)

(* the finest-level smoother plan, for [--profile] reports *)
let smoother_plan t =
  let level = finest t in
  let shape = level.Level.shape in
  let group = smoother_group t.config.smoother in
  let cfg = t.config.jit in
  let fusion =
    if cfg.Config.fusion then
      "fusion " ^ Fusion.describe (Fusion.partition cfg ~shape group)
    else "fusion off"
  in
  let temporal =
    if cfg.Config.time_tile > 1 then
      match Timetile.plan cfg ~shape ~reps:cfg.Config.time_tile group with
      | Some p -> Timetile.describe p
      | None -> Printf.sprintf "time depth %d (illegal: plain loop)" cfg.Config.time_tile
    else "time depth 1"
  in
  Printf.sprintf "%s; %s" fusion temporal

let compute_residual t i =
  let level = t.levels.(i) in
  let kernel = compile t residual_group ~shape:level.Level.shape in
  timed t
    (Printf.sprintf "residual L%d" i)
    (fun () ->
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids)

(* Restrict a fine-level mesh into the coarse f.  The kernel names its
   grids "fine_res"/"coarse_f"; binding them per call is the Snowflake
   idiom for cross-level operators. *)
let restrict_into t ~fine_mesh ~coarse =
  let kernel = compile t restrict_group ~shape:coarse.Level.shape in
  kernel.Kernel.run
    ~params:(Level.params coarse)
    (Grids.of_list
       [ ("fine_res", fine_mesh); ("coarse_f", Level.f coarse) ])

let interpolate_and_correct t ~coarse ~fine =
  let group = interp_group t.config.interp in
  let kernel = compile t group ~shape:coarse.Level.shape in
  kernel.Kernel.run
    ~params:(Level.params coarse)
    (Grids.of_list [ ("coarse_u", Level.u coarse); ("fine_u", Level.u fine) ])

let rec cycle t i =
  let coarsest = Array.length t.levels - 1 in
  if i = coarsest then
    timed t
      (Printf.sprintf "bottom L%d" i)
      (fun () -> smooth_steps_untimed t i ~count:t.config.coarse_iters)
  else begin
    smooth_steps t i ~count:t.config.smooths;
    compute_residual t i;
    let fine = t.levels.(i) and coarse = t.levels.(i + 1) in
    timed t
      (Printf.sprintf "restrict L%d->L%d" i (i + 1))
      (fun () -> restrict_into t ~fine_mesh:(Level.res fine) ~coarse);
    Mesh.fill (Level.u coarse) 0.;
    cycle t (i + 1);
    timed t
      (Printf.sprintf "interp L%d->L%d" (i + 1) i)
      (fun () -> interpolate_and_correct t ~coarse ~fine);
    smooth_steps t i ~count:t.config.smooths
  end

let cycle_args t =
  [
    ("levels", Trace.Int (Array.length t.levels));
    ("dof", Trace.Int (dof t));
  ]

let vcycle t =
  if Trace.on () then
    Trace.span ~args:(cycle_args t) Trace.Vcycle "vcycle" (fun () ->
        cycle t 0)
  else cycle t 0

let fcycle_untraced t =
  let nlevels = Array.length t.levels in
  (* push the right-hand side down the hierarchy *)
  for i = 0 to nlevels - 2 do
    restrict_into t ~fine_mesh:(Level.f t.levels.(i)) ~coarse:t.levels.(i + 1)
  done;
  (* bottom solve *)
  let bottom = nlevels - 1 in
  Mesh.fill (Level.u t.levels.(bottom)) 0.;
  smooth_steps t bottom ~count:t.config.coarse_iters;
  (* prolong upward, one V-cycle per level *)
  for i = nlevels - 2 downto 0 do
    Mesh.fill (Level.u t.levels.(i)) 0.;
    interpolate_and_correct t ~coarse:t.levels.(i + 1) ~fine:t.levels.(i);
    cycle t i
  done

let fcycle t =
  if Trace.on () then
    Trace.span ~args:(cycle_args t) Trace.Vcycle "fcycle" (fun () ->
        fcycle_untraced t)
  else fcycle_untraced t

let residual_norm t =
  compute_residual t 0;
  let level = finest t in
  Level.interior_norm_l2 level (Level.res level)

let solve ?(cycles = 10) t =
  let norms = Array.make (cycles + 1) 0. in
  norms.(0) <- residual_norm t;
  for c = 1 to cycles do
    vcycle t;
    norms.(c) <- residual_norm t
  done;
  norms

(* Checkpointed, self-healing solve.

   Rollback state is the finest-level solution mesh alone: a V-cycle
   recomputes every coarser u/f/res from scratch (coarse u is zeroed
   before each descent, coarse f is overwritten by restriction) and the
   finest f and dinv are never written — so restoring u(0) returns the
   solver exactly to the last good cycle boundary.

   A cycle is "good" when its residual norm is finite and has not blown
   up past [divergence_factor] x the last accepted norm.  A bad cycle —
   divergence, a guard trip, or an exception the per-kernel supervisor
   could not absorb — rolls the solution back to the newest checkpoint,
   demotes the active backend one step down the failover chain, and
   re-runs the same cycle.  [max_rollbacks] bounds the total healing
   budget; runtime-fatal exceptions are never absorbed. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ -> true
  | _ -> false

let solve_resilient ?(cycles = 10) ?(checkpoint_every = 1) ?(ring = 3)
    ?(divergence_factor = 10.) ?(max_rollbacks = 8) t =
  if checkpoint_every < 1 then
    invalid_arg "Mg.solve_resilient: checkpoint_every < 1";
  let u0 = Level.u (finest t) in
  let ck =
    Checkpoint.create ~capacity:ring ~label:"mg"
      ~alloc:(fun () -> Mesh.create (finest t).Level.shape)
      ~save:(fun buf -> Mesh.blit ~src:u0 ~dst:buf)
      ~restore:(fun buf -> Mesh.blit ~src:buf ~dst:u0)
      ()
  in
  let norms = Array.make (cycles + 1) 0. in
  norms.(0) <- residual_norm t;
  (* tag 0: even a failure in the very first cycle has somewhere to go *)
  Checkpoint.checkpoint ck ~tag:0;
  let last_good = ref norms.(0) in
  let rollbacks = ref 0 in
  let c = ref 1 in
  while !c <= cycles do
    let outcome =
      try
        vcycle t;
        let r = residual_norm t in
        if Float.is_finite r && r <= divergence_factor *. Float.max !last_good epsilon_float
        then Ok r
        else
          Error
            (Failure
               (Printf.sprintf
                  "Mg.solve_resilient: cycle %d diverged (residual %g, last \
                   good %g)"
                  !c r !last_good))
      with e when not (fatal e) -> Error e
    in
    match outcome with
    | Ok r ->
        norms.(!c) <- r;
        last_good := r;
        if !c mod checkpoint_every = 0 then Checkpoint.checkpoint ck ~tag:!c;
        incr c
    | Error e ->
        incr rollbacks;
        if !rollbacks > max_rollbacks then raise e;
        ignore (Checkpoint.rollback ck : int option);
        (* chain exhausted: keep re-running on the weakest backend; the
           rollback budget still bounds the attempts *)
        ignore (demote_backend t : bool)
  done;
  norms
