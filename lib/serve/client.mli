(** A blocking sfserved client: handshake, submit/poll, stats, shutdown.

    Thin sugar over [Protocol] for the tests, the replay harness and
    [sfsc].  One client owns one connection; it is not thread-safe (use
    one client per thread — sessions are shared server-side by tenant
    name, so that still exercises multi-connection tenancy). *)

type t

val caps : t -> int
(** The capability mask the server granted in WELCOME. *)

val of_fds :
  ?caps:int ->
  tenant:string ->
  Unix.file_descr ->
  Unix.file_descr ->
  (t, string) result
(** Handshake over an (input, output) pair — input carries the server's
    replies.  [caps] (default [Protocol.cap_all]) is the requested set. *)

val connect_unix :
  ?caps:int -> tenant:string -> string -> (t, string) result
(** Connect to a Unix-domain socket path and handshake. *)

val close : t -> unit

type outcome =
  | Solved of { elapsed_us : float; grids : Protocol.grid list }
  | Failed of { code : string; message : string }

val submit : t -> Protocol.submit -> (Protocol.reply, string) result
(** One SUBMIT round trip; the reply is [Accepted], [Busy] or
    [Rejected].  [Error] means the transport broke. *)

val poll : t -> int -> (Protocol.reply, string) result
(** One POLL round trip ([Pending], [Result] or [Rejected]). *)

val wait : ?poll_interval_s:float -> t -> int -> (outcome, string) result
(** Poll a ticket (default every 2ms) until it resolves. *)

val solve :
  ?poll_interval_s:float ->
  t ->
  Protocol.submit ->
  (outcome, string) result
(** {!submit} then {!wait}.  A BUSY reply retries the submit after the
    poll interval; admission rejections come back as [Failed]. *)

val stats : t -> (string, string) result
(** The STATS JSON document. *)

val shutdown : t -> (unit, string) result
(** SHUTDOWN and wait for BYE. *)
