(** Per-tenant sessions: quotas, admission and usage accounting.

    A session is keyed by the tenant name a connection announces in
    [Hello]; reconnecting — or opening several connections — under the
    same name shares one session, so quotas bound the {e tenant}, not the
    socket.  Admission is checked at SUBMIT time against three limits:
    concurrent in-flight requests, cells per single request, and a
    cumulative lifetime cell budget.  Cells are iteration-shape points
    times applications — the same unit the cost models use.

    All operations take the registry's internal lock; callers (connection
    threads, executors) need no external synchronisation. *)

type quota = {
  max_inflight : int;  (** concurrent admitted-but-unfinished requests *)
  max_cells : int;  (** cells in one request *)
  cell_budget : int;  (** lifetime cumulative cells; [max_int] = unmetered *)
}

val default_quota : quota
(** 8 in flight, 16M cells per request, unmetered lifetime budget. *)

type t

val tenant : t -> string
val quota : t -> quota

val find_or_create : quota:quota -> string -> t
(** The session for this tenant, creating it with [quota] on first
    contact (an existing session keeps its original quota). *)

val admit : t -> cells:int -> (unit, string * string) result
(** Admit a request of [cells] cells: on [Ok] the in-flight count and the
    budget are charged; on [Error (code, message)] nothing is, and [code]
    is the protocol quota code ([Protocol.err_quota_*]).  The rejection
    is also counted in the session's stats. *)

val finish : t -> unit
(** Release one in-flight slot (request completed or failed after
    admission).  The budget charge is kept — it is cumulative. *)

val note_completed : t -> unit
val note_errored : t -> unit

type stats = {
  s_tenant : string;
  s_inflight : int;
  s_submitted : int;  (** admitted requests *)
  s_completed : int;
  s_errored : int;  (** admitted, then failed in execution *)
  s_rejected : int;  (** refused at admission *)
  s_cells_used : int;
}

val stats : t -> stats
val all_stats : unit -> stats list
(** Every known session, sorted by tenant name. *)

val reset_all : unit -> unit
(** Drop every session (tests). *)
