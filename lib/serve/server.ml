(* The solve server.  Three lock domains, never held together except in
   the stated order:

     sched  — tenant queues, tickets, stop flag, coalesce table
     xmx    — the clean/faulted execution phase (reader-writer style)
     Session's internal lock (leaf; taken under sched in submit)

   Connection threads only touch sched + sessions; executor threads
   touch all three but take xmx only after releasing sched. *)

open Sf_util
module Jit = Sf_backends.Jit
module Config = Sf_backends.Config
module Supervise = Sf_backends.Supervise
module Fault = Sf_resilience.Fault
module Guard = Sf_resilience.Guard
module Supervisor = Sf_resilience.Supervisor
module Gen = Sf_fuzz.Gen
module Corpus = Sf_fuzz.Corpus
module Trace = Sf_trace.Trace
module Slo = Sf_trace.Slo
module Json = Sf_trace.Json
module P = Protocol

type config = {
  threads : int;
  queue_cap : int;
  quota : Session.quota;
  backend : Jit.backend;
  workers : int;
  max_workers : int;
  max_reps : int;
  max_program_bytes : int;
  allow_faults : bool;
  allow_shutdown : bool;
}

let default_config =
  {
    threads = 2;
    queue_cap = 64;
    quota = Session.default_quota;
    backend = Jit.Openmp;
    workers = 1;
    (* the pool itself tops out at ~120 helper domains; anything above
       this is a hostile or broken client, not a plausible solve *)
    max_workers = 128;
    max_reps = 4096;
    max_program_bytes = 1024 * 1024;
    allow_faults = true;
    allow_shutdown = true;
  }

type job = {
  ticket : int;
  session : Session.t;
  spec : Gen.spec;
  jbackend : Jit.backend;
  jconfig : Config.t;
  reps : int;
  fault : string; (* "" = clean *)
  enqueued_us : float;
}

type ticket_state =
  | Queued of job
  | Running of job
  | Done of string * P.reply  (* owner tenant, final reply *)

type t = {
  cfg : config;
  (* --- sched domain --- *)
  sched : Mutex.t;
  work : Condition.t;
  queues : (string, job Queue.t) Hashtbl.t;
  mutable rr : string list; (* round-robin tenant rotation *)
  tickets : (int, ticket_state) Hashtbl.t;
  orphaned : (int, unit) Hashtbl.t; (* running, but the submitter is gone *)
  mutable next_ticket : int;
  mutable queued : int;
  mutable stop_flag : bool;
  compiling : (string, unit) Hashtbl.t; (* in-flight compile keys *)
  compile_done : Condition.t;
  mutable listen_fd : Unix.file_descr option;
  (* --- execution-phase domain --- *)
  xmx : Mutex.t;
  xcv : Condition.t;
  mutable clean_active : int;
  mutable fault_active : bool;
  mutable fault_waiting : int;
  (* --- counters (sched) --- *)
  mutable n_busy : int;
  mutable n_coalesced : int;
  mutable executors : Thread.t list;
  started_us : float;
  (* --- SLO instruments --- *)
  lat_series : Slo.series; (* admission -> reply ready, µs *)
  solve_series : Slo.series; (* kernel run only, µs *)
  depth_gauge : Slo.gauge;
}

let config t = t.cfg
let stopped t = Mutex.protect t.sched (fun () -> t.stop_flag)

(* ------------------------------------------------- verdict classifiers *)

let classifiers_registered = Atomic.make false

let register_classifiers () =
  if not (Atomic.exchange classifiers_registered true) then
    Supervisor.register_classifier (function
      | Jit.Certification_failed { backend; group; diagnostics } ->
          Some
            {
              Supervisor.code = P.err_certification;
              message =
                Printf.sprintf "%s/%s: %d diagnostic(s)" backend group
                  (List.length diagnostics);
              fatal = false;
            }
      | Fault.Injected { site; kind; detail } ->
          Some
            {
              Supervisor.code = P.err_fault;
              message =
                Printf.sprintf "injected %s at %s (%s)"
                  (Fault.kind_name kind) site detail;
              fatal = false;
            }
      | Guard.Tripped { grid; index; value } ->
          Some
            {
              Supervisor.code = P.err_guard;
              message =
                Printf.sprintf "non-finite %h in %s at flat index %d" value
                  grid index;
              fatal = false;
            }
      | _ -> None)

(* ------------------------------------------------------------ executors *)

(* Pick the next job in round-robin tenant order; caller holds sched. *)
let pick_job t =
  let rec go seen = function
    | [] -> None
    | tenant :: rest -> (
        match Hashtbl.find_opt t.queues tenant with
        | Some q when not (Queue.is_empty q) ->
            let job = Queue.pop q in
            t.rr <- List.rev_append seen (rest @ [ tenant ]);
            Some job
        | _ -> go (tenant :: seen) rest)
  in
  go [] t.rr

let grids_payload grids =
  List.map
    (fun name ->
      let m = Sf_mesh.Grids.find grids name in
      let fa = Sf_mesh.Mesh.data m in
      {
        P.gname = name;
        gshape = Ivec.to_list (Sf_mesh.Mesh.shape m);
        gdata = Array.init (Float.Array.length fa) (Float.Array.get fa);
      })
    (List.sort String.compare (Sf_mesh.Grids.names grids))

(* Coalescing front: at most one in-flight lowering per structural cache
   key; latecomers wait, then take the Jit cache hit. *)
let coalesced_compile t ~key compile =
  let wait_or_claim () =
    Mutex.protect t.sched (fun () ->
        if Hashtbl.mem t.compiling key then begin
          t.n_coalesced <- t.n_coalesced + 1;
          while Hashtbl.mem t.compiling key do
            Condition.wait t.compile_done t.sched
          done
        end;
        Hashtbl.replace t.compiling key ())
  in
  wait_or_claim ();
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.sched (fun () ->
          Hashtbl.remove t.compiling key;
          Condition.broadcast t.compile_done))
    compile

(* Clean entry also yields to *waiting* faulted jobs, not just the
   active one: without that, continuous clean traffic keeps
   clean_active > 0 forever and a faulted job starves (classic
   reader-writer writer starvation). *)
let enter_clean t =
  Mutex.lock t.xmx;
  while t.fault_active || t.fault_waiting > 0 do
    Condition.wait t.xcv t.xmx
  done;
  t.clean_active <- t.clean_active + 1;
  Mutex.unlock t.xmx

let leave_clean t =
  Mutex.lock t.xmx;
  t.clean_active <- t.clean_active - 1;
  Condition.broadcast t.xcv;
  Mutex.unlock t.xmx

let enter_faulted t =
  Mutex.lock t.xmx;
  t.fault_waiting <- t.fault_waiting + 1;
  while t.fault_active || t.clean_active > 0 do
    Condition.wait t.xcv t.xmx
  done;
  t.fault_waiting <- t.fault_waiting - 1;
  t.fault_active <- true;
  Mutex.unlock t.xmx

let leave_faulted t =
  Mutex.lock t.xmx;
  t.fault_active <- false;
  Condition.broadcast t.xcv;
  Mutex.unlock t.xmx

let solve t job =
  let { spec; jbackend; jconfig; reps; _ } = job in
  let key =
    Jit.cache_key_hex ~config:jconfig ~reps jbackend ~shape:spec.Gen.shape
      spec.Gen.group
  in
  let kernel =
    coalesced_compile t ~key (fun () ->
        if job.fault <> "" then
          (* Unsupervised on purpose: an injected fault must reach the
             request boundary as an ERROR, not heal by failover. *)
          Jit.compile_time_tiled ~config:jconfig ~reps jbackend
            ~shape:spec.Gen.shape spec.Gen.group
        else if reps = 1 then
          Supervise.compile ~config:jconfig jbackend ~shape:spec.Gen.shape
            spec.Gen.group
        else
          Jit.compile_time_tiled ~config:jconfig ~reps jbackend
            ~shape:spec.Gen.shape spec.Gen.group)
  in
  let grids = Gen.build_grids spec in
  Slo.time t.solve_series (fun () ->
      kernel.Sf_backends.Kernel.run ~params:spec.Gen.params grids);
  Guard.scan_grids ~mode:Guard.Sample grids (Sf_mesh.Grids.names grids);
  grids

let execute t job =
  let enter, leave =
    if job.fault = "" then (enter_clean, leave_clean)
    else (enter_faulted, leave_faulted)
  in
  enter t;
  Fun.protect
    ~finally:(fun () -> leave t)
    (fun () ->
      Supervisor.protect
        ~label:(Printf.sprintf "req%d" job.ticket)
        (fun () ->
          if job.fault <> "" then begin
            Fault.arm_exn job.fault;
            Fun.protect
              ~finally:(fun () -> Fault.disarm ())
              (fun () -> solve t job)
          end
          else solve t job))

let run_job t job =
  let outcome = execute t job in
  let elapsed = Trace.now_us () -. job.enqueued_us in
  Slo.observe t.lat_series elapsed;
  Session.finish job.session;
  let reply =
    match outcome with
    | Ok grids ->
        Session.note_completed job.session;
        P.Result
          { ticket = job.ticket; elapsed_us = elapsed;
            grids = grids_payload grids }
    | Error (v : Supervisor.verdict) ->
        Session.note_errored job.session;
        P.Rejected { ticket = job.ticket; code = v.code; message = v.message }
  in
  Mutex.protect t.sched (fun () ->
      if Hashtbl.mem t.orphaned job.ticket then begin
        (* the submitting connection died mid-solve; nobody can ever
           poll this reply — drop it instead of holding the grids *)
        Hashtbl.remove t.orphaned job.ticket;
        Hashtbl.remove t.tickets job.ticket
      end
      else
        Hashtbl.replace t.tickets job.ticket
          (Done (Session.tenant job.session, reply)))

(* A connection died with tickets outstanding: free what nobody will
   ever poll.  Done replies are dropped now, queued jobs are cancelled
   before they waste an executor, running jobs are marked so [run_job]
   drops their reply on completion. *)
let release_tickets t tickets =
  if Hashtbl.length tickets > 0 then
    Mutex.protect t.sched (fun () ->
        Hashtbl.iter
          (fun ticket () ->
            match Hashtbl.find_opt t.tickets ticket with
            | None -> ()
            | Some (Done _) -> Hashtbl.remove t.tickets ticket
            | Some (Running _) -> Hashtbl.replace t.orphaned ticket ()
            | Some (Queued job) ->
                (match
                   Hashtbl.find_opt t.queues (Session.tenant job.session)
                 with
                | None -> ()
                | Some q ->
                    let keep =
                      Queue.fold
                        (fun acc j ->
                          if j.ticket = ticket then acc else j :: acc)
                        [] q
                    in
                    Queue.clear q;
                    List.iter (fun j -> Queue.push j q) (List.rev keep));
                t.queued <- t.queued - 1;
                Slo.gauge_set t.depth_gauge t.queued;
                Session.finish job.session;
                Hashtbl.remove t.tickets ticket)
          tickets)

let pick_is_empty t =
  List.for_all
    (fun tenant ->
      match Hashtbl.find_opt t.queues tenant with
      | Some q -> Queue.is_empty q
      | None -> true)
    t.rr

let executor t () =
  let rec loop () =
    Mutex.lock t.sched;
    while (not t.stop_flag) && pick_is_empty t do
      Condition.wait t.work t.sched
    done;
    if t.stop_flag then Mutex.unlock t.sched
    else
      match pick_job t with
      | None ->
          Mutex.unlock t.sched;
          loop ()
      | Some job ->
          t.queued <- t.queued - 1;
          Slo.gauge_set t.depth_gauge t.queued;
          Hashtbl.replace t.tickets job.ticket (Running job);
          Mutex.unlock t.sched;
          run_job t job;
          loop ()
  in
  loop ()

(* ------------------------------------------------------------- creation *)

let create ?(config = default_config) () =
  register_classifiers ();
  (* a reply racing a client hang-up must surface as EPIPE
     (-> Protocol.Closed, connection death), never as a SIGPIPE that
     takes the whole daemon down *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      cfg = config;
      sched = Mutex.create ();
      work = Condition.create ();
      queues = Hashtbl.create 8;
      rr = [];
      tickets = Hashtbl.create 64;
      orphaned = Hashtbl.create 8;
      next_ticket = 1;
      queued = 0;
      stop_flag = false;
      compiling = Hashtbl.create 8;
      compile_done = Condition.create ();
      listen_fd = None;
      xmx = Mutex.create ();
      xcv = Condition.create ();
      clean_active = 0;
      fault_active = false;
      fault_waiting = 0;
      n_busy = 0;
      n_coalesced = 0;
      executors = [];
      started_us = Trace.now_us ();
      lat_series = Slo.series "serve.request_us";
      solve_series = Slo.series "serve.solve_us";
      depth_gauge = Slo.gauge "serve.queue_depth";
    }
  in
  let n = max 1 config.threads in
  t.executors <- List.init n (fun _ -> Thread.create (executor t) ());
  t

let stop t =
  let fd =
    Mutex.protect t.sched (fun () ->
        t.stop_flag <- true;
        (* executors will never pick these up once stop_flag is set:
           give every queued ticket a terminal reply instead of
           silently dropping work that was already Accepted *)
        Hashtbl.iter
          (fun _ q ->
            Queue.iter
              (fun job ->
                Session.finish job.session;
                Hashtbl.replace t.tickets job.ticket
                  (Done
                     ( Session.tenant job.session,
                       P.Rejected
                         {
                           ticket = job.ticket;
                           code = P.err_proto;
                           message = "server shutting down";
                         } )))
              q;
            Queue.clear q)
          t.queues;
        t.queued <- 0;
        Slo.gauge_set t.depth_gauge 0;
        Condition.broadcast t.work;
        Condition.broadcast t.compile_done;
        let fd = t.listen_fd in
        t.listen_fd <- None;
        fd)
  in
  Mutex.protect t.xmx (fun () -> Condition.broadcast t.xcv);
  (* shutdown() (not just close) — a thread blocked in accept() on this
     socket only wakes when the socket itself is shut down. *)
  Option.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    fd

let join t = List.iter Thread.join t.executors

(* ------------------------------------------------------------ admission *)

let resolve_backend t = function
  | "" -> Ok t.cfg.backend
  | name -> (
      match Jit.backend_of_string name with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "unknown backend %S" name))

let reject ?(ticket = 0) code message = P.Rejected { ticket; code; message }

let handle_submit t session (s : P.submit) =
  (* workers/reps arrive as raw u32s (up to 0xFFFFFFFF) and flow toward
     the pool and the time-tiled JIT: bound them *before* anything is
     parsed, compiled or charged against a quota.  0 means "server
     default" for both. *)
  if s.P.workers > t.cfg.max_workers then
    reject P.err_parse
      (Printf.sprintf "SUBMIT.workers: %d exceeds limit %d" s.P.workers
         t.cfg.max_workers)
  else if s.P.reps > t.cfg.max_reps then
    reject P.err_parse
      (Printf.sprintf "SUBMIT.reps: %d exceeds limit %d" s.P.reps
         t.cfg.max_reps)
  else if String.length s.P.program > t.cfg.max_program_bytes then
    reject P.err_too_large
      (Printf.sprintf "program of %d bytes exceeds limit %d"
         (String.length s.P.program) t.cfg.max_program_bytes)
  else
    match Corpus.of_string ~label:"served" s.P.program with
    | Error m -> reject P.err_parse m
    | Ok spec -> (
        match resolve_backend t s.P.backend with
        | Error m -> reject P.err_parse m
        | Ok jbackend -> (
            let fault_check =
              if s.P.fault = "" then Ok ()
              else
                match Fault.parse s.P.fault with
                | Ok _ -> Ok ()
                | Error m -> Error m
            in
            match fault_check with
            | Error m -> reject P.err_parse ("fault spec: " ^ m)
            | Ok () ->
                let reps = max 1 s.P.reps in
                let workers =
                  if s.P.workers > 0 then s.P.workers else t.cfg.workers
                in
                let jconfig = { Config.default with Config.workers } in
                let cells = Ivec.product spec.Gen.shape * reps in
                let tenant = Session.tenant session in
                Mutex.protect t.sched (fun () ->
                    if t.stop_flag then
                      reject P.err_proto "server shutting down"
                    else if t.queued >= t.cfg.queue_cap then begin
                      t.n_busy <- t.n_busy + 1;
                      P.Busy { queue_depth = t.queued }
                    end
                    else
                      match Session.admit session ~cells with
                      | Error (code, m) -> reject code m
                      | Ok () ->
                          let ticket = t.next_ticket in
                          t.next_ticket <- ticket + 1;
                          let job =
                            {
                              ticket;
                              session;
                              spec;
                              jbackend;
                              jconfig;
                              reps;
                              fault = s.P.fault;
                              enqueued_us = Trace.now_us ();
                            }
                          in
                          let q =
                            match Hashtbl.find_opt t.queues tenant with
                            | Some q -> q
                            | None ->
                                let q = Queue.create () in
                                Hashtbl.add t.queues tenant q;
                                t.rr <- t.rr @ [ tenant ];
                                q
                          in
                          Queue.push job q;
                          t.queued <- t.queued + 1;
                          Slo.gauge_set t.depth_gauge t.queued;
                          Hashtbl.replace t.tickets ticket (Queued job);
                          Condition.signal t.work;
                          P.Accepted { ticket })))

let handle_poll t tenant ticket =
  Mutex.protect t.sched (fun () ->
      match Hashtbl.find_opt t.tickets ticket with
      | None -> reject P.err_proto (Printf.sprintf "unknown ticket %d" ticket)
      | Some st -> (
          let owner =
            match st with
            | Queued j | Running j -> Session.tenant j.session
            | Done (owner, _) -> owner
          in
          if owner <> tenant then
            reject P.err_proto (Printf.sprintf "ticket %d is not yours" ticket)
          else
            match st with
            | Queued _ -> P.Pending { ticket; running = false }
            | Running _ -> P.Pending { ticket; running = true }
            | Done (_, reply) ->
                Hashtbl.remove t.tickets ticket;
                reply))

(* ---------------------------------------------------------------- stats *)

let stats_json t =
  let num i = Json.Num (float_of_int i) in
  let hits, misses = Jit.cache_stats () in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let busy, coalesced, depth, tickets =
    Mutex.protect t.sched (fun () ->
        (t.n_busy, t.n_coalesced, t.queued, Hashtbl.length t.tickets))
  in
  let series =
    List.map
      (fun (s : Slo.summary) ->
        Json.Obj
          [
            ("name", Json.Str s.Slo.sname);
            ("n", num s.Slo.n);
            ("p50_us", Json.Num s.Slo.p50);
            ("p90_us", Json.Num s.Slo.p90);
            ("p99_us", Json.Num s.Slo.p99);
            ("max_us", Json.Num s.Slo.smax);
            ("mean_us", Json.Num s.Slo.smean);
          ])
      (Slo.all ())
  in
  let tenants =
    List.map
      (fun (s : Session.stats) ->
        Json.Obj
          [
            ("tenant", Json.Str s.Session.s_tenant);
            ("inflight", num s.Session.s_inflight);
            ("submitted", num s.Session.s_submitted);
            ("completed", num s.Session.s_completed);
            ("errored", num s.Session.s_errored);
            ("rejected", num s.Session.s_rejected);
            ("cells_used", num s.Session.s_cells_used);
          ])
      (Session.all_stats ())
  in
  Json.to_string
    (Json.Obj
       [
         ("server", Json.Str "sfserved");
         ("protocol", num P.version);
         ("uptime_us", Json.Num (Trace.now_us () -. t.started_us));
         ("busy_rejections", num busy);
         ("coalesced_compiles", num coalesced);
         ( "jit",
           Json.Obj
             [
               ("hits", num hits);
               ("misses", num misses);
               ("hit_rate", Json.Num hit_rate);
             ] );
         ( "queue",
           Json.Obj
             [
               ("depth", num depth);
               ("hwm", num (Slo.gauge_hwm t.depth_gauge));
               ("tickets", num tickets);
             ] );
         ("series", Json.Arr series);
         ("tenants", Json.Arr tenants);
       ])

(* ----------------------------------------------------------- connections *)

let granted_caps t requested =
  let mask = ref (P.cap_submit lor P.cap_poll lor P.cap_stats lor P.cap_coalesce) in
  if t.cfg.allow_faults then mask := !mask lor P.cap_faults;
  if t.cfg.allow_shutdown then mask := !mask lor P.cap_shutdown;
  requested land !mask

let serve_pair t in_fd out_fd =
  let send r = P.write_reply out_fd r in
  (* tickets this connection created and has not yet claimed; reaped on
     disconnect so an abandoned Done reply (holding full result grids)
     cannot accumulate in a long-lived daemon *)
  let conn_tickets = Hashtbl.create 8 in
  let serve () =
    match P.read_request in_fd with
    | Ok (Some (P.Hello { version; tenant; caps }))
      when version = P.version && tenant <> "" ->
        let granted = granted_caps t caps in
        send
          (P.Welcome
             { version = P.version; caps = granted; server = "sfserved/1" });
        let session = Session.find_or_create ~quota:t.cfg.quota tenant in
        let has c = granted land c <> 0 in
        let rec loop () =
          match P.read_request in_fd with
          | Ok None -> ()
          | Error m -> send (reject P.err_proto m)
          | Ok (Some req) -> (
              match req with
              | P.Hello _ ->
                  send (reject P.err_proto "duplicate HELLO");
                  loop ()
              | P.Submit _ when not (has P.cap_submit) ->
                  send (reject P.err_proto "submit capability not granted");
                  loop ()
              | P.Submit s when s.P.fault <> "" && not (has P.cap_faults) ->
                  send (reject P.err_proto "faults capability not granted");
                  loop ()
              | P.Submit s ->
                  let r = handle_submit t session s in
                  (match r with
                  | P.Accepted { ticket } ->
                      Hashtbl.replace conn_tickets ticket ()
                  | _ -> ());
                  send r;
                  loop ()
              | P.Poll { ticket } when has P.cap_poll ->
                  let r = handle_poll t tenant ticket in
                  (match r with
                  | (P.Result { ticket = tk; _ } | P.Rejected { ticket = tk; _ })
                    when tk = ticket ->
                      Hashtbl.remove conn_tickets ticket
                  | _ -> ());
                  send r;
                  loop ()
              | P.Poll _ ->
                  send (reject P.err_proto "poll capability not granted");
                  loop ()
              | P.Stats when has P.cap_stats ->
                  send (P.Stats_reply { json = stats_json t });
                  loop ()
              | P.Stats ->
                  send (reject P.err_proto "stats capability not granted");
                  loop ()
              | P.Shutdown when has P.cap_shutdown ->
                  send P.Bye;
                  stop t
              | P.Shutdown ->
                  send (reject P.err_proto "shutdown capability not granted");
                  loop ())
        in
        loop ()
    | Ok (Some (P.Hello { version; _ })) when version <> P.version ->
        send
          (reject P.err_proto
             (Printf.sprintf "protocol version %d, server speaks %d" version
                P.version))
    | Ok (Some (P.Hello _)) -> send (reject P.err_proto "empty tenant name")
    | Ok (Some _) -> send (reject P.err_proto "first message must be HELLO")
    | Ok None -> ()
    | Error m -> ( try send (reject P.err_proto m) with _ -> ())
  in
  Fun.protect
    ~finally:(fun () -> release_tickets t conn_tickets)
    (fun () -> try serve () with P.Closed -> ())

let serve_fd t fd = serve_pair t fd fd

let listen_unix t ~path =
  (match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      (* unlink only a *stale* socket: clobbering a live one would
         silently sever a running daemon's listener *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        Fun.protect
          ~finally:(fun () ->
            try Unix.close probe with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () -> true
            | exception
                Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
                false)
      in
      if live then
        failwith
          (Printf.sprintf "socket %s: a server is already listening" path)
      else Unix.unlink path
  | _ -> failwith (Printf.sprintf "refusing to unlink %s: not a socket" path));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  Mutex.protect t.sched (fun () -> t.listen_fd <- Some fd);
  let rec accept_loop () =
    match Unix.accept fd with
    | conn, _ ->
        ignore
          (Thread.create
             (fun () ->
               Fun.protect
                 ~finally:(fun () ->
                   try Unix.close conn with Unix.Unix_error _ -> ())
                 (fun () -> try serve_fd t conn with _ -> ()))
             ());
        if not (stopped t) then accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ ->
        (* stop() closed the listening socket under us *)
        ()
  in
  accept_loop ();
  Mutex.protect t.sched (fun () ->
      match t.listen_fd with
      | Some fd ->
          t.listen_fd <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
  if Sys.file_exists path then try Unix.unlink path with Sys_error _ -> ()
