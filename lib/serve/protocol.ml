(* Wire protocol: u32-BE length prefix, tag byte, binary fields.  The
   encoders build into Buffer; the decoders walk a cursor over the frame
   and fail with a positioned message instead of raising, so a malformed
   frame from a hostile client is an ERROR reply, never an exception
   escaping the connection thread. *)

let version = 1
let max_frame = 64 * 1024 * 1024

let cap_submit = 1
let cap_poll = 2
let cap_stats = 4
let cap_coalesce = 8
let cap_faults = 16
let cap_shutdown = 32

let cap_all =
  cap_submit lor cap_poll lor cap_stats lor cap_coalesce lor cap_faults
  lor cap_shutdown

let cap_names mask =
  List.filter_map
    (fun (bit, name) -> if mask land bit <> 0 then Some name else None)
    [
      (cap_submit, "submit");
      (cap_poll, "poll");
      (cap_stats, "stats");
      (cap_coalesce, "coalesce");
      (cap_faults, "faults");
      (cap_shutdown, "shutdown");
    ]

let err_proto = "proto"
let err_parse = "parse"
let err_quota_inflight = "quota-inflight"
let err_quota_cells = "quota-cells"
let err_quota_budget = "quota-budget"
let err_too_large = "too-large"
let err_certification = "certification"
let err_fault = "fault"
let err_guard = "guard"
let err_internal = "internal"

type submit = {
  program : string;
  backend : string;
  workers : int;
  reps : int;
  fault : string;
}

type request =
  | Hello of { version : int; tenant : string; caps : int }
  | Submit of submit
  | Poll of { ticket : int }
  | Stats
  | Shutdown

type grid = { gname : string; gshape : int list; gdata : float array }

type reply =
  | Welcome of { version : int; caps : int; server : string }
  | Accepted of { ticket : int }
  | Busy of { queue_depth : int }
  | Rejected of { ticket : int; code : string; message : string }
  | Pending of { ticket : int; running : bool }
  | Result of { ticket : int; elapsed_us : float; grids : grid list }
  | Stats_reply of { json : string }
  | Bye

(* ------------------------------------------------------------ encoding *)

let tag_hello = 0x01
let tag_submit = 0x02
let tag_poll = 0x03
let tag_stats = 0x04
let tag_shutdown = 0x05
let tag_welcome = 0x81
let tag_accepted = 0x82
let tag_busy = 0x83
let tag_rejected = 0x84
let tag_pending = 0x85
let tag_result = 0x86
let tag_stats_reply = 0x87
let tag_bye = 0x88

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)

let put_u32 b v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "protocol: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let put_u64 b v = Buffer.add_int64_be b v
let put_f64 b v = put_u64 b (Int64.bits_of_float v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let frame tag fill =
  let b = Buffer.create 64 in
  put_u8 b tag;
  fill b;
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 4) in
  put_u32 out (String.length payload);
  Buffer.add_string out payload;
  Buffer.contents out

let encode_request = function
  | Hello { version; tenant; caps } ->
      frame tag_hello (fun b ->
          put_u32 b version;
          put_str b tenant;
          put_u32 b caps)
  | Submit { program; backend; workers; reps; fault } ->
      frame tag_submit (fun b ->
          put_str b program;
          put_str b backend;
          put_u32 b workers;
          put_u32 b reps;
          put_str b fault)
  | Poll { ticket } -> frame tag_poll (fun b -> put_u32 b ticket)
  | Stats -> frame tag_stats (fun _ -> ())
  | Shutdown -> frame tag_shutdown (fun _ -> ())

let encode_reply = function
  | Welcome { version; caps; server } ->
      frame tag_welcome (fun b ->
          put_u32 b version;
          put_u32 b caps;
          put_str b server)
  | Accepted { ticket } -> frame tag_accepted (fun b -> put_u32 b ticket)
  | Busy { queue_depth } -> frame tag_busy (fun b -> put_u32 b queue_depth)
  | Rejected { ticket; code; message } ->
      frame tag_rejected (fun b ->
          put_u32 b ticket;
          put_str b code;
          put_str b message)
  | Pending { ticket; running } ->
      frame tag_pending (fun b ->
          put_u32 b ticket;
          put_u8 b (if running then 1 else 0))
  | Result { ticket; elapsed_us; grids } ->
      frame tag_result (fun b ->
          put_u32 b ticket;
          put_f64 b elapsed_us;
          put_u32 b (List.length grids);
          List.iter
            (fun g ->
              put_str b g.gname;
              put_u32 b (List.length g.gshape);
              List.iter (put_u32 b) g.gshape;
              put_u32 b (Array.length g.gdata);
              Array.iter (put_f64 b) g.gdata)
            grids)
  | Stats_reply { json } -> frame tag_stats_reply (fun b -> put_str b json)
  | Bye -> frame tag_bye (fun _ -> ())

(* ------------------------------------------------------------ decoding *)

exception Bad of string

type cursor = { buf : string; mutable pos : int; stop : int }

let need c n what =
  if c.pos + n > c.stop then
    raise (Bad (Printf.sprintf "truncated %s at byte %d" what c.pos))

let get_u8 c what =
  need c 1 what;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) land 0xFFFF_FFFF in
  c.pos <- c.pos + 4;
  v

let get_u64 c what =
  need c 8 what;
  let v = String.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_f64 c what = Int64.float_of_bits (get_u64 c what)

let get_str c what =
  let n = get_u32 c what in
  need c n what;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let open_frame kind s =
  if String.length s < 5 then raise (Bad (kind ^ ": frame shorter than header"));
  let len = Int32.to_int (String.get_int32_be s 0) land 0xFFFF_FFFF in
  if len > max_frame then
    raise (Bad (Printf.sprintf "%s: frame of %d bytes exceeds max" kind len));
  if String.length s <> 4 + len then
    raise
      (Bad
         (Printf.sprintf "%s: length prefix %d but %d payload bytes" kind len
            (String.length s - 4)));
  let c = { buf = s; pos = 4; stop = String.length s } in
  let tag = get_u8 c "tag" in
  (tag, c)

let finish c v =
  if c.pos <> c.stop then
    raise (Bad (Printf.sprintf "%d trailing bytes after message" (c.stop - c.pos)));
  v

let decode_request s =
  match
    let tag, c = open_frame "request" s in
    if tag = tag_hello then
      let version = get_u32 c "version" in
      let tenant = get_str c "tenant" in
      let caps = get_u32 c "caps" in
      finish c (Hello { version; tenant; caps })
    else if tag = tag_submit then begin
      let program = get_str c "program" in
      let backend = get_str c "backend" in
      let workers = get_u32 c "workers" in
      let reps = get_u32 c "reps" in
      let fault = get_str c "fault" in
      finish c (Submit { program; backend; workers; reps; fault })
    end
    else if tag = tag_poll then finish c (Poll { ticket = get_u32 c "ticket" })
    else if tag = tag_stats then finish c Stats
    else if tag = tag_shutdown then finish c Shutdown
    else raise (Bad (Printf.sprintf "unknown request tag 0x%02x" tag))
  with
  | v -> Ok v
  | exception Bad m -> Error m

let decode_reply s =
  match
    let tag, c = open_frame "reply" s in
    if tag = tag_welcome then
      let version = get_u32 c "version" in
      let caps = get_u32 c "caps" in
      let server = get_str c "server" in
      finish c (Welcome { version; caps; server })
    else if tag = tag_accepted then
      finish c (Accepted { ticket = get_u32 c "ticket" })
    else if tag = tag_busy then
      finish c (Busy { queue_depth = get_u32 c "queue_depth" })
    else if tag = tag_rejected then begin
      let ticket = get_u32 c "ticket" in
      let code = get_str c "code" in
      let message = get_str c "message" in
      finish c (Rejected { ticket; code; message })
    end
    else if tag = tag_pending then begin
      let ticket = get_u32 c "ticket" in
      let running = get_u8 c "running" <> 0 in
      finish c (Pending { ticket; running })
    end
    else if tag = tag_result then begin
      let ticket = get_u32 c "ticket" in
      let elapsed_us = get_f64 c "elapsed_us" in
      let ngrids = get_u32 c "ngrids" in
      if ngrids > 4096 then raise (Bad "implausible grid count");
      (* Explicit in-order loops, not Array.init/List.init: the reads
         side-effect the cursor, and init's argument-evaluation order is
         unspecified before OCaml 5.1 — on older stdlibs an init-based
         read can scramble shapes and cell data.  The byte-for-byte
         golden in test_serve pins this ordering. *)
      let grids = ref [] in
      for _ = 1 to ngrids do
        let gname = get_str c "grid name" in
        let rank = get_u32 c "rank" in
        if rank > 16 then raise (Bad "implausible grid rank");
        let rshape = ref [] in
        for _ = 1 to rank do
          rshape := get_u32 c "extent" :: !rshape
        done;
        let n = get_u32 c "grid size" in
        need c (8 * n) "grid data";
        let gdata = Array.make n 0. in
        for i = 0 to n - 1 do
          gdata.(i) <- get_f64 c "cell"
        done;
        grids := { gname; gshape = List.rev !rshape; gdata } :: !grids
      done;
      finish c (Result { ticket; elapsed_us; grids = List.rev !grids })
    end
    else if tag = tag_stats_reply then
      finish c (Stats_reply { json = get_str c "json" })
    else if tag = tag_bye then finish c Bye
    else raise (Bad (Printf.sprintf "unknown reply tag 0x%02x" tag))
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* ------------------------------------------------------------ frame I/O *)

let rec retry_read fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd buf off len

(* [what] names where a short read landed: an EOF inside the 4-byte
   length prefix and an EOF inside the announced payload are different
   failures (the first is a peer dying between frames mid-header, the
   second a peer dying mid-message), and the fuzzer asserts they stay
   distinguishable. *)
let read_exact fd n ~what =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      match retry_read fd buf off (n - off) with
      | 0 -> if off = 0 then None else raise (Bad ("EOF inside " ^ what))
      | k -> go (off + k)
  in
  go 0

let read_frame fd =
  try
    match read_exact fd 4 ~what:"length prefix" with
    | None -> Ok None
    | Some prefix -> (
        let len =
          Int32.to_int (String.get_int32_be prefix 0) land 0xFFFF_FFFF
        in
        if len > max_frame then
          Error (Printf.sprintf "incoming frame of %d bytes exceeds max" len)
        else
          match read_exact fd len ~what:"frame payload" with
          | None -> Error "EOF inside frame payload"
          | Some payload -> Ok (Some (prefix ^ payload)))
  with
  | Bad m -> Error m
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

exception Closed

let write_frame fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let wait_writable () =
    try ignore (Unix.select [] [ fd ] [] 1.0)
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec go off =
    if off < n then
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* the contract is a blocking fd, but tolerate one handed to us
             in non-blocking mode: park until writable, then retry *)
          wait_writable ();
          go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise Closed
  in
  go 0

let read_request fd =
  match read_frame fd with
  | Ok None -> Ok None
  | Ok (Some s) -> Result.map Option.some (decode_request s)
  | Error _ as e -> e

let read_reply fd =
  match read_frame fd with
  | Ok None -> Ok None
  | Ok (Some s) -> Result.map Option.some (decode_reply s)
  | Error _ as e -> e

let write_request fd r = write_frame fd (encode_request r)
let write_reply fd r = write_frame fd (encode_reply r)
