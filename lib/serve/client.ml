module P = Protocol

type t = {
  in_fd : Unix.file_descr;
  out_fd : Unix.file_descr;
  granted : int;
  mutable closed : bool;
  owns_socket : bool;
}

let caps c = c.granted

let of_fds ?(caps = P.cap_all) ~tenant in_fd out_fd =
  P.write_request out_fd (P.Hello { version = P.version; tenant; caps });
  match P.read_reply in_fd with
  | Ok (Some (P.Welcome { caps = granted; _ })) ->
      Ok { in_fd; out_fd; granted; closed = false; owns_socket = false }
  | Ok (Some (P.Rejected { message; _ })) -> Error ("handshake refused: " ^ message)
  | Ok (Some _) -> Error "handshake: unexpected reply"
  | Ok None -> Error "handshake: server closed the connection"
  | Error m -> Error ("handshake: " ^ m)

let connect_unix ?caps ~tenant path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> (
      match of_fds ?caps ~tenant fd fd with
      | Ok c -> Ok { c with owns_socket = true }
      | Error _ as e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          e)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let close c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.in_fd with Unix.Unix_error _ -> ());
    if c.out_fd <> c.in_fd then
      try Unix.close c.out_fd with Unix.Unix_error _ -> ()
  end

type outcome =
  | Solved of { elapsed_us : float; grids : P.grid list }
  | Failed of { code : string; message : string }

let roundtrip c req =
  P.write_request c.out_fd req;
  match P.read_reply c.in_fd with
  | Ok (Some r) -> Ok r
  | Ok None -> Error "server closed the connection"
  | Error m -> Error m

let submit c s = roundtrip c (P.Submit s)
let poll c ticket = roundtrip c (P.Poll { ticket })

let rec wait ?(poll_interval_s = 0.002) c ticket =
  match roundtrip c (P.Poll { ticket }) with
  | Error _ as e -> e
  | Ok (P.Pending _) ->
      Unix.sleepf poll_interval_s;
      wait ~poll_interval_s c ticket
  | Ok (P.Result { elapsed_us; grids; _ }) -> Ok (Solved { elapsed_us; grids })
  | Ok (P.Rejected { code; message; _ }) -> Ok (Failed { code; message })
  | Ok _ -> Error "poll: unexpected reply"

let rec solve ?(poll_interval_s = 0.002) c s =
  match submit c s with
  | Error _ as e -> e
  | Ok (P.Accepted { ticket }) -> wait ~poll_interval_s c ticket
  | Ok (P.Busy _) ->
      Unix.sleepf poll_interval_s;
      solve ~poll_interval_s c s
  | Ok (P.Rejected { code; message; _ }) -> Ok (Failed { code; message })
  | Ok _ -> Error "submit: unexpected reply"

let stats c =
  match roundtrip c P.Stats with
  | Ok (P.Stats_reply { json }) -> Ok json
  | Ok (P.Rejected { message; _ }) -> Error message
  | Ok _ -> Error "stats: unexpected reply"
  | Error _ as e -> e

let shutdown c =
  match roundtrip c P.Shutdown with
  | Ok P.Bye -> Ok ()
  | Ok (P.Rejected { message; _ }) -> Error message
  | Ok _ -> Error "shutdown: unexpected reply"
  | Error _ as e -> e
