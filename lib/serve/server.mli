(** The multi-tenant solve server.

    One process keeps the [Jit] compile cache and the worker pool warm
    across requests from many tenants.  A connection thread parses and
    admits SUBMITs (quota via [Session], global backpressure via a
    bounded queue answered with BUSY); executor threads drain the queue
    in round-robin tenant order, compile through a coalescing front (two
    identical in-flight compiles share one [Jit] lowering — equality is
    {!Sf_backends.Jit.cache_key_hex}) and run each request under
    {!Sf_resilience.Supervisor.protect}, so one tenant's
    certification failure, injected fault or NaN-poisoned result is an
    ERROR reply to that tenant and nothing else.

    Fault-carrying submissions (capability-gated) arm the {e process
    global} [Fault] clauses, so they run exclusively: an armed request
    waits for in-flight clean solves to drain, and clean solves wait for
    the disarm — isolation by scheduling, pinned by the [@serve] tests.

    Latency, queue depth and coalescing feed [Sf_trace.Slo]; STATS
    renders them (plus [Jit.cache_stats] and per-tenant counters) as one
    JSON document. *)

type config = {
  threads : int;  (** executor threads (>= 1) *)
  queue_cap : int;  (** queued-request ceiling before BUSY *)
  quota : Session.quota;  (** applied to tenants on first contact *)
  backend : Sf_backends.Jit.backend;  (** default when a SUBMIT names none *)
  workers : int;  (** default [Config.workers] for solves *)
  max_workers : int;
      (** admission ceiling on [SUBMIT.workers] — the field is a raw
          u32 on the wire, so a hostile tenant can ask for 4-billion
          worker solves; anything above this is [err_parse]-rejected
          before parse, compile or quota charging *)
  max_reps : int;  (** admission ceiling on [SUBMIT.reps], same story *)
  max_program_bytes : int;
  allow_faults : bool;  (** grant [cap_faults] *)
  allow_shutdown : bool;  (** grant [cap_shutdown] *)
}

val default_config : config
(** 2 executor threads, queue of 64, default quota, [openmp] x 1 worker,
    at most 128 workers / 4096 reps per request, 1 MiB programs, faults
    and shutdown allowed. *)

type t

val create : ?config:config -> unit -> t
(** Start the executor threads.  Also registers the serving verdict
    classifiers ([Certification_failed] / [Fault.Injected] /
    [Guard.Tripped] → protocol error codes) on first use, and ignores
    [SIGPIPE] process-wide: a reply racing a client hang-up must be an
    [EPIPE] ({!Protocol.Closed}) that kills one connection, never a
    signal that kills the daemon. *)

val config : t -> config

val serve_pair : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Run one connection inline over an (input, output) descriptor pair —
    blocking until the peer disconnects, a protocol error closes it, or
    SHUTDOWN stops the server.  This is both the stdio transport and the
    in-process test harness (a socketpair).  On disconnect every ticket
    the connection submitted but never claimed is released: unclaimed
    RESULT/ERROR replies are dropped, still-queued jobs are cancelled,
    and a running job's reply is discarded when it completes — a tenant
    that vanishes leaks nothing. *)

val serve_fd : t -> Unix.file_descr -> unit
(** {!serve_pair} over one bidirectional descriptor. *)

val listen_unix : t -> path:string -> unit
(** Bind a Unix-domain socket at [path], accept connections — one
    thread each — until the server is stopped, then clean up the socket
    file and return.  {!stop} (e.g. from a SHUTDOWN request) interrupts
    the accept loop.  A pre-existing [path] is probed first: a {e
    stale} socket (connect refused) is unlinked and taken over; raises
    [Failure] if a server is still listening there or the path is not a
    socket at all, rather than severing it. *)

val stats_json : t -> string
(** The STATS document (also what [--stats-json] writes at exit). *)

val stop : t -> unit
(** Stop accepting and executing: running solves finish and deliver,
    every still-queued ticket flips to a terminal
    ["server shutting down"] ERROR (a poll never spins on a ticket no
    executor will run), and the accept loop is interrupted.
    Idempotent. *)

val stopped : t -> bool

val join : t -> unit
(** Wait for the executor threads to exit (call after {!stop}). *)
