(* Tenant sessions.  One global registry under one mutex: admission is a
   few integer comparisons, far off any hot path. *)

type quota = { max_inflight : int; max_cells : int; cell_budget : int }

let default_quota =
  { max_inflight = 8; max_cells = 16 * 1024 * 1024; cell_budget = max_int }

type t = {
  tenant : string;
  quota : quota;
  mutable inflight : int;
  mutable submitted : int;
  mutable completed : int;
  mutable errored : int;
  mutable rejected : int;
  mutable cells_used : int;
}

let tenant s = s.tenant
let quota s = s.quota

let mx = Mutex.create ()

let locked f =
  Mutex.lock mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock mx) f

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let find_or_create ~quota name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
          let s =
            {
              tenant = name;
              quota;
              inflight = 0;
              submitted = 0;
              completed = 0;
              errored = 0;
              rejected = 0;
              cells_used = 0;
            }
          in
          Hashtbl.add registry name s;
          s)

let admit s ~cells =
  locked (fun () ->
      let q = s.quota in
      let reject code msg =
        s.rejected <- s.rejected + 1;
        Error (code, msg)
      in
      if s.inflight >= q.max_inflight then
        reject Protocol.err_quota_inflight
          (Printf.sprintf "tenant %S already has %d requests in flight"
             s.tenant s.inflight)
      else if cells > q.max_cells then
        reject Protocol.err_quota_cells
          (Printf.sprintf "request of %d cells exceeds per-request limit %d"
             cells q.max_cells)
      else if
        q.cell_budget <> max_int && s.cells_used + cells > q.cell_budget
      then
        reject Protocol.err_quota_budget
          (Printf.sprintf
             "request of %d cells exceeds remaining budget %d of %d" cells
             (q.cell_budget - s.cells_used)
             q.cell_budget)
      else begin
        s.inflight <- s.inflight + 1;
        s.submitted <- s.submitted + 1;
        s.cells_used <- s.cells_used + cells;
        Ok ()
      end)

let finish s = locked (fun () -> s.inflight <- max 0 (s.inflight - 1))
let note_completed s = locked (fun () -> s.completed <- s.completed + 1)
let note_errored s = locked (fun () -> s.errored <- s.errored + 1)

type stats = {
  s_tenant : string;
  s_inflight : int;
  s_submitted : int;
  s_completed : int;
  s_errored : int;
  s_rejected : int;
  s_cells_used : int;
}

let stats_of s =
  {
    s_tenant = s.tenant;
    s_inflight = s.inflight;
    s_submitted = s.submitted;
    s_completed = s.completed;
    s_errored = s.errored;
    s_rejected = s.rejected;
    s_cells_used = s.cells_used;
  }

let stats s = locked (fun () -> stats_of s)

let all_stats () =
  locked (fun () ->
      Hashtbl.fold (fun _ s acc -> stats_of s :: acc) registry []
      |> List.sort (fun a b -> String.compare a.s_tenant b.s_tenant))

let reset_all () = locked (fun () -> Hashtbl.reset registry)
