(** The sfserved wire protocol: versioned, length-prefixed binary frames.

    Every message is one frame: a big-endian [u32] payload length, a tag
    byte, then tag-specific fields.  Integers are big-endian; strings are
    [u32] length + bytes; floats travel as their IEEE-754 [u64] bit
    pattern, so a solve result is {e bitwise} what the server computed —
    the corpus-replay tests compare server output against a local run
    with [ulps = 0].

    The protocol is deliberately binary: programs and error messages are
    free-form text that the core sexp reader could not safely embed (its
    atoms have no quoting), and grid payloads are bulk float data.

    A connection opens with {!Hello}/{!Welcome} (version check plus a
    capability intersection); everything after is request/reply in lock
    step.  See [docs/SERVING.md] for the full frame tables. *)

val version : int
(** Current protocol version (1).  A [Hello] carrying any other version
    is answered with a connection-level [Error] and the peer closed. *)

val max_frame : int
(** Hard ceiling on one frame's payload (64 MiB).  An incoming length
    prefix above it is a protocol error — the frame is never allocated. *)

(** {2 Capabilities}

    A bitmask.  The client requests a set in [Hello]; [Welcome] answers
    with the intersection the server actually grants, and using a request
    outside the granted set is an [Error] with code {!err_proto}. *)

val cap_submit : int
val cap_poll : int
val cap_stats : int

val cap_coalesce : int
(** Informational: the server coalesces identical in-flight compiles. *)

val cap_faults : int
(** Submissions may carry a fault-injection spec. *)

val cap_shutdown : int
val cap_all : int

val cap_names : int -> string list
(** Decode a mask into names, for logs and [--describe]. *)

(** {2 Error codes} *)

val err_proto : string
(** Framing/tag/version/capability violation. *)

val err_parse : string
(** The submitted program (or its fault spec) failed to parse. *)

val err_quota_inflight : string
val err_quota_cells : string
val err_quota_budget : string
val err_too_large : string

val err_certification : string
(** [Jit.Certification_failed]. *)

val err_fault : string
(** An injected fault escaped the solve. *)

val err_guard : string
(** NaN/Inf tripped the post-solve guard scan. *)

val err_internal : string

(** {2 Messages} *)

type submit = {
  program : string;  (** corpus-format [.sfl] text ([Sf_fuzz.Corpus]) *)
  backend : string;  (** [""] = server default *)
  workers : int;  (** [0] = server default *)
  reps : int;  (** consecutive applications of the group, [>= 1] *)
  fault : string;  (** fault spec armed for this request; [""] = none *)
}

type request =
  | Hello of { version : int; tenant : string; caps : int }
  | Submit of submit
  | Poll of { ticket : int }
  | Stats
  | Shutdown

type grid = { gname : string; gshape : int list; gdata : float array }

type reply =
  | Welcome of { version : int; caps : int; server : string }
  | Accepted of { ticket : int }
  | Busy of { queue_depth : int }
  | Rejected of { ticket : int; code : string; message : string }
      (** [ticket = 0] marks a connection-level error (no request
          admitted); a nonzero ticket reports the failure of that
          admitted request. *)
  | Pending of { ticket : int; running : bool }
  | Result of { ticket : int; elapsed_us : float; grids : grid list }
  | Stats_reply of { json : string }
  | Bye

(** {2 Encoding}

    [encode_*] produce a complete frame (length prefix included);
    [decode_*] consume exactly one such frame.  The golden tests pin the
    hex of both directions. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

(** {2 Frame I/O}

    The contract is a {e blocking} file descriptor, retrying on [EINTR].
    A descriptor left in non-blocking mode is tolerated on the write
    side: [write_frame] parks in [select] on [EAGAIN]/[EWOULDBLOCK] and
    retries, so a frame is always either written whole or fails with a
    real error — never torn by a spurious would-block.

    A short read mid-frame is an error (the peer died mid-message), a
    clean EOF before any byte is [None].  Where the EOF landed stays
    distinguishable: ["EOF inside length prefix"] (died between frames,
    mid-header) vs ["EOF inside frame payload"] (died mid-message) —
    the protocol fuzzer pins both paths. *)

val read_frame : Unix.file_descr -> (string option, string) result
(** One complete frame (prefix included), ready for [decode_*]. *)

exception Closed
(** The peer hung up: a write hit [EPIPE]/[ECONNRESET].  Raised by
    [write_frame] and the [write_*] helpers below.  For the error to
    arrive as an exception rather than a process-killing [SIGPIPE], the
    signal must be ignored — {!Server.create} does this once for the
    process. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame; raises {!Closed} if the peer is gone. *)

val read_request : Unix.file_descr -> (request option, string) result
val read_reply : Unix.file_descr -> (reply option, string) result
val write_request : Unix.file_descr -> request -> unit
val write_reply : Unix.file_descr -> reply -> unit
