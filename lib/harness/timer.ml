module Trace = Sf_trace.Trace

let time_once ?label f =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  (match label with
  | Some name when Trace.on () ->
      Trace.record_span Trace.Phase name
        ~ts_us:(Trace.now_us () -. (dt *. 1e6))
        ~dur_us:(dt *. 1e6)
  | _ -> ());
  dt

let time_all ?label ?(warmup = 1) ?(repeats = 3) f =
  for _ = 1 to warmup do
    f ()
  done;
  Array.init repeats (fun _ -> time_once ?label f)

let time ?label ?warmup ?repeats f =
  Array.fold_left min infinity (time_all ?label ?warmup ?repeats f)
