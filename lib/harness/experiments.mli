(** Experiment drivers: one entry point per evaluation artefact of the
    paper (see DESIGN.md's experiment index and EXPERIMENTS.md for
    paper-vs-measured records).

    Each driver prints a self-contained table to stdout.  Measured numbers
    come from this host; numbers for the paper's machines (Core i7-4765T,
    K20c) are roofline-model projections, labelled as such — the shape of
    the comparison (who wins, by what factor) is the reproduction target,
    not the absolute rates. *)

type opts = {
  size : int;  (** cube edge for fixed-size experiments (paper: 256) *)
  sizes : int list;  (** sweep sizes for Fig. 8 (paper: 32..256) *)
  cycles : int;  (** V-cycles for the solver benchmark (paper: 10) *)
  workers : int;  (** pool degree for the OpenMP backend *)
  repeats : int;  (** timing repeats (best-of) *)
}

val csv_dir : string option ref
(** When set, every printed table is also written as [<name>.csv] into
    this directory — the raw data series behind each figure. *)

val default_opts : opts
(** size 32, sizes [8;16;32;64], cycles 4, workers 1, repeats 3 — sized
    for a single-core container; raise via the CLI for paper-scale
    runs. *)

val run_stream : opts -> unit
(** E1 (Fig. 6): the modified STREAM dot-product bandwidth. *)

val run_fig7 : opts -> unit
(** E2 (Fig. 7): stencils/s for CC 7-pt, CC Jacobi, VC GSRB at a fixed
    size, Snowflake vs hand-written vs roofline, CPU measured + GPU
    modelled. *)

val run_fig8 : opts -> unit
(** E3 (Fig. 8): VC GSRB smoother time across problem sizes. *)

val run_fig9 : opts -> unit
(** E4 (Fig. 9): full GMG solve throughput (DOF/s). *)

val run_tiling : opts -> unit
(** A1: tile-size sweep on the GSRB smoother (OpenMP backend). *)

val run_multicolor : opts -> unit
(** A2: multicolor reordering on/off. *)

val run_waves : opts -> unit
(** A3: analysis-driven wave schedule vs a barrier after every stencil. *)

val run_fusion : opts -> unit
(** A4: the fusion pass on a 2-D unsharp-mask pipeline (point-wise sharpen
    folded into the blur), with result-equality guaranteed by the pass
    tests. *)

val run_autotune : opts -> unit
(** A5: measured tile/multicolor autotuning on the GSRB smoother. *)

val run_distributed : opts -> unit
(** D1: simulated SPMD GSRB (stencil-expressed halo exchange) vs the
    single-domain smoother of the same global size. *)

val run_pool : opts -> unit
(** P0: per-wave dispatch latency of the persistent worker-domain pool vs
    the seed's spawn-per-wave executor, for 1..workers and both empty and
    16³-point waves.  Writes [BENCH_pool.json] into the working directory
    so the orchestration-overhead trajectory is tracked across PRs. *)

val run_fusion_bench : opts -> unit
(** F1: unfused vs fused-config vs temporally-blocked 4-sweep GSRB at
    32³/64³/128³ on the OpenMP backend, with model bytes/cell, measured
    wall-clock and % of STREAM roofline per variant.  Writes
    [BENCH_fusion.json] (headline: bytes/cell and wall-clock ratios of
    4 plain sweeps vs one time-depth-4 pass) into the working directory
    so the traffic trajectory is tracked across PRs. *)

val run_verify : opts -> unit
(** V0: an HPGMG-style correctness gate printed into the benchmark log —
    convergence factor, discretisation error, DSL-vs-hand agreement,
    backend agreement, plan conflict-freedom. *)

val run_codegen : opts -> unit
(** Emit the OpenMP and OpenCL C sources for the GSRB smoother (a sample of
    the micro-compiler output; line counts reported). *)

val run_all : opts -> unit
