(** Wall-clock timing helpers for the experiment harness.

    The paper's methodology — an untimed warmup phase followed by the
    benchmarked phase (§V.A) — is baked in.

    Each helper takes an optional [?label]; when given and tracing is on
    ({!Sf_trace.Trace.on}), every timed sample is also recorded as a
    [phase] span under that name, so harness measurements land in the same
    timeline as the kernel and wave spans they contain. *)

val time_once : ?label:string -> (unit -> unit) -> float
(** Seconds for one invocation. *)

val time : ?label:string -> ?warmup:int -> ?repeats:int ->
  (unit -> unit) -> float
(** Best-of-[repeats] (default 3) wall time after [warmup] (default 1)
    untimed runs.  Best-of is the right estimator for a dedicated machine:
    noise is strictly additive. *)

val time_all : ?label:string -> ?warmup:int -> ?repeats:int ->
  (unit -> unit) -> float array
(** All the timed samples, for dispersion reporting. *)
