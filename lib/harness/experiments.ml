open Sf_util
open Snowflake
open Sf_backends
open Sf_hpgmg
open Sf_roofline

type opts = {
  size : int;
  sizes : int list;
  cycles : int;
  workers : int;
  repeats : int;
}

let default_opts =
  { size = 32;
    sizes = [ 8; 16; 32; 64 ];
    cycles = 4;
    workers = Config.default_workers;
    repeats = 3;
  }

let csv_dir : string option ref = ref None

(* print a table and, when a CSV sink is configured, persist it — the
   data-series form of the figure *)
let emit_table name t =
  Tabular.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (Tabular.render_csv t);
      close_out oc;
      Printf.printf "[csv written to %s]\n" path

let heading title =
  Printf.printf "\n==== %s ====\n%!" title

let rate_fmt v =
  if v >= 1e9 then Printf.sprintf "%.3fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.1f" v

let sec_fmt v =
  if v < 1e-4 then Printf.sprintf "%.3e s" v
  else if v < 1. then Printf.sprintf "%.4f s" v
  else Printf.sprintf "%.3f s" v

(* Shared measured machine handle: STREAM runs once per process. *)
let host_machine =
  lazy
    (let bw = Stream.measure ~n:2_000_000 ~trials:3 () in
     Machine.host ~bandwidth_gbs:bw ())

(* ------------------------------------------------------------------ E1 *)

let run_stream _opts =
  heading "E1 / Fig 6: modified STREAM (dot product) bandwidth";
  let host = Lazy.force host_machine in
  let t = Tabular.create ~headers:[ "machine"; "GB/s"; "source" ] in
  Tabular.add_row t
    [ host.Machine.name; Printf.sprintf "%.2f" host.Machine.bandwidth_gbs;
      "measured (Fig 6 kernel)" ];
  Tabular.add_row t
    [ Machine.i7_4765t.Machine.name; "22.20"; "paper §V.A (STREAM Triad)" ];
  Tabular.add_row t
    [ Machine.k20c.Machine.name; "127.00"; "paper §V.A (ERT)" ];
  emit_table "stream" t

(* --------------------------------------------------- operator plumbing *)

type operator = {
  op_name : string;
  group : Group.t;  (** the Snowflake description, boundaries interleaved *)
  hand : Level.t -> unit;  (** the hand-written comparator *)
  bytes : float;  (** paper §V.B compulsory traffic per stencil *)
  stencils_per_sweep : int -> int;  (** per interior size n *)
}

let cc_7pt_group =
  Group.make ~label:"cc_7pt"
    (Operators.boundaries ~grid:"u"
    @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ])

let operators =
  [
    {
      op_name = "CC 7pt Stencil";
      group = cc_7pt_group;
      hand =
        (fun level ->
          Baseline.laplacian_cc level ~out:(Level.res level)
            ~input:(Level.u level));
      bytes = Bound.bytes_cc_7pt;
      stencils_per_sweep = (fun n -> n * n * n);
    };
    {
      op_name = "CC Jacobi";
      group = Operators.jacobi_smooth;
      hand = Baseline.jacobi_cc;
      bytes = Bound.bytes_cc_jacobi;
      stencils_per_sweep = (fun n -> n * n * n);
    };
    {
      op_name = "VC GSRB";
      group = Operators.gsrb_smooth;
      hand = Baseline.smooth_gsrb;
      bytes = Bound.bytes_vc_gsrb;
      stencils_per_sweep = (fun n -> n * n * n);
    };
  ]

let prepared_level n =
  let level = Level.create ~n in
  Level.set_beta level Problem.beta_smooth;
  Baseline.init_dinv level;
  Level.fill_interior (Level.u level) level (fun x y z ->
      sin (7. *. x) +. cos (5. *. (y +. z)));
  Level.fill_interior (Level.f level) level Problem.rhs_sine;
  level

let time_group opts backend config level group =
  let kernel =
    Jit.compile ~config backend ~shape:level.Level.shape group
  in
  Timer.time ~label:group.Group.label ~warmup:1 ~repeats:opts.repeats
    (fun () ->
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids)

(* ------------------------------------------------------------------ E2 *)

let run_fig7 opts =
  let n = opts.size in
  heading
    (Printf.sprintf
       "E2 / Fig 7: operator throughput at %d^3 (paper: 256^3) — stencils/s"
       n);
  let host = Lazy.force host_machine in
  let omp_cfg = Config.with_workers opts.workers Config.default in
  let t =
    Tabular.create
      ~headers:
        [
          "operator";
          "HPGMG(hand)";
          "Snowflake/OpenMP";
          "Snowflake/OpenCL(sim)";
          "Roofline(host)";
          "K20c CUDA(model)";
          "K20c OpenCL(model)";
          "Roofline(K20c)";
        ]
  in
  List.iter
    (fun op ->
      let level = prepared_level n in
      let stencils = float_of_int (op.stencils_per_sweep n) in
      let t_hand =
        Timer.time ~warmup:1 ~repeats:opts.repeats (fun () -> op.hand level)
      in
      let t_omp = time_group opts Jit.Openmp omp_cfg level op.group in
      let t_ocl = time_group opts Jit.Opencl Config.default level op.group in
      let bound_host =
        Bound.stencils_per_second ~machine:host ~bytes_per_stencil:op.bytes
      in
      let bound_k20 =
        Bound.stencils_per_second ~machine:Machine.k20c
          ~bytes_per_stencil:op.bytes
      in
      Tabular.add_row t
        [
          op.op_name;
          rate_fmt (stencils /. t_hand);
          rate_fmt (stencils /. t_omp);
          rate_fmt (stencils /. t_ocl);
          rate_fmt bound_host;
          rate_fmt bound_k20 (* hand CUDA ≈ roofline on the K20c *);
          rate_fmt (bound_k20 /. 2.) (* paper: OpenCL within 2x *);
          rate_fmt bound_k20;
        ])
    operators;
  emit_table "fig7" t;
  Printf.printf
    "GPU columns are roofline-model projections (no GPU in this container); \
     the paper's observed 2x OpenCL derate is applied.\n"

(* ------------------------------------------------------------------ E3 *)

(* Runtime-orchestration telemetry: how many waves went through the
   persistent pool vs inline (serial cutoff), printed by the experiments
   whose numbers depend on dispatch overhead. *)
let report_pool_stats () =
  Printf.printf "pool: %s\n"
    (Format.asprintf "%a" Pool.pp_stats (Pool.stats ()));
  if Sf_trace.Trace.on () then
    Printf.printf "trace: %s\n" (Sf_trace.Report.counters_line ())

let run_fig8 opts =
  heading "E3 / Fig 8: VC GSRB smoother time vs problem size";
  Pool.reset_stats ();
  let host = Lazy.force host_machine in
  let omp_cfg = Config.with_workers opts.workers Config.default in
  let t =
    Tabular.create
      ~headers:
        [
          "size";
          "Snowflake/OpenMP";
          "HPGMG(hand)";
          "Roofline(host)";
          "K20c CUDA(model)";
          "K20c OpenCL(model)";
        ]
  in
  List.iter
    (fun n ->
      let level = prepared_level n in
      let points = n * n * n in
      let t_omp =
        time_group opts Jit.Openmp omp_cfg level Operators.gsrb_smooth
      in
      let t_hand =
        Timer.time ~warmup:1 ~repeats:opts.repeats (fun () ->
            Baseline.smooth_gsrb level)
      in
      let bound =
        Bound.sweep_time ~machine:host ~bytes_per_stencil:Bound.bytes_vc_gsrb
          ~points
      in
      let k20 d =
        Bound.predict_time ~machine:Machine.k20c ~derate:d
          ~bytes_per_stencil:Bound.bytes_vc_gsrb ~points ()
      in
      Tabular.add_row t
        [
          Printf.sprintf "%d^3" n;
          sec_fmt t_omp;
          sec_fmt t_hand;
          sec_fmt bound;
          sec_fmt (k20 1.);
          sec_fmt (k20 2.);
        ])
    opts.sizes;
  emit_table "fig8" t;
  report_pool_stats ();
  Printf.printf
    "Small sizes can beat the DRAM roofline because they fit in cache \
     (paper notes the same for 32^3).\n"

(* ------------------------------------------------------------------ E4 *)

(* Bytes moved by one V(s,s)-cycle under the paper's traffic accounting:
   used to project GPU solve rates. *)
let model_vcycle_bytes ~n ~smooths ~coarsest_n ~coarse_iters =
  let rec go n acc =
    let pts = float_of_int (n * n * n) in
    if n <= coarsest_n then
      acc +. (float_of_int coarse_iters *. Bound.bytes_vc_gsrb *. pts)
    else begin
      let smooth_bytes =
        float_of_int (2 * smooths) *. Bound.bytes_vc_gsrb *. pts
      in
      let residual_bytes = 56. *. pts in
      let coarse_pts = float_of_int (n * n * n / 8) in
      let restrict_bytes = (8. *. pts) +. (16. *. coarse_pts) in
      let interp_bytes = (8. *. coarse_pts) +. (16. *. pts) in
      go (n / 2)
        (acc +. smooth_bytes +. residual_bytes +. restrict_bytes
       +. interp_bytes)
    end
  in
  go n 0.

let run_fig9 opts =
  let n = opts.size in
  heading
    (Printf.sprintf
       "E4 / Fig 9: GMG solver throughput at %d^3, %d V-cycles (paper: \
        256^3, 10 V-cycles) — DOF/s = unknowns / time-per-V-cycle"
       n opts.cycles);
  let host = Lazy.force host_machine in
  let mg_cfg =
    {
      Mg.default_config with
      backend = Jit.Openmp;
      jit = Config.with_workers opts.workers Config.default;
    }
  in
  let solver = Mg.create ~config:mg_cfg ~n () in
  Mg.set_beta solver Problem.beta_smooth;
  Problem.setup_variable ~seed:1 (Mg.finest solver);
  Mg.set_beta solver Problem.beta_smooth;
  (* warmup phase, as in §V.A *)
  Mg.vcycle solver;
  let t_snowflake =
    Timer.time ~warmup:0 ~repeats:1 (fun () ->
        for _ = 1 to opts.cycles do
          Mg.vcycle solver
        done)
    /. float_of_int opts.cycles
  in
  let base = Baseline.create ~n () in
  Baseline.set_beta base Problem.beta_smooth;
  Problem.setup_variable ~seed:1 (Baseline.finest base);
  Baseline.set_beta base Problem.beta_smooth;
  Baseline.vcycle base;
  let t_hand =
    Timer.time ~warmup:0 ~repeats:1 (fun () ->
        for _ = 1 to opts.cycles do
          Baseline.vcycle base
        done)
    /. float_of_int opts.cycles
  in
  let dof = float_of_int (Mg.dof solver) in
  let cfg = mg_cfg in
  let bytes =
    model_vcycle_bytes ~n ~smooths:cfg.Mg.smooths
      ~coarsest_n:cfg.Mg.coarsest_n ~coarse_iters:cfg.Mg.coarse_iters
  in
  let model machine derate =
    dof /. (derate *. bytes /. (machine.Machine.bandwidth_gbs *. 1e9))
  in
  let t = Tabular.create ~headers:[ "configuration"; "DOF/s"; "source" ] in
  Tabular.add_row t
    [ "Snowflake (OpenMP backend)"; rate_fmt (dof /. t_snowflake); "measured" ];
  Tabular.add_row t
    [ "HPGMG (hand)"; rate_fmt (dof /. t_hand); "measured" ];
  Tabular.add_row t
    [ "roofline bound (host)"; rate_fmt (model host 1.); "model" ];
  Tabular.add_row t
    [ "HPGMG-CUDA on K20c"; rate_fmt (model Machine.k20c 1.); "model" ];
  Tabular.add_row t
    [
      "Snowflake OpenCL on K20c";
      rate_fmt (model Machine.k20c 2.);
      "model (paper's 2x derate)";
    ];
  emit_table "fig9" t;
  Printf.printf "residual after benchmark cycles: %.3e\n"
    (Mg.residual_norm solver)

(* ------------------------------------------------------------- A1..A3 *)

let run_tiling opts =
  let n = opts.size in
  heading (Printf.sprintf "A1: OpenMP tile-size sweep, VC GSRB at %d^3" n);
  Pool.reset_stats ();
  let level = prepared_level n in
  let t = Tabular.create ~headers:[ "tile"; "time"; "stencils/s" ] in
  let points = float_of_int (n * n * n) in
  List.iter
    (fun (label, tile) ->
      let config =
        {
          Config.default with
          workers = opts.workers;
          tile;
        }
      in
      let dt = time_group opts Jit.Openmp config level Operators.gsrb_smooth in
      Tabular.add_row t [ label; sec_fmt dt; rate_fmt (points /. dt) ])
    [
      ("outer chunks (default)", None);
      ("4x4x4", Some [ 4; 4; 4 ]);
      ("8x8x8", Some [ 8; 8; 8 ]);
      ("16x16x16", Some [ 16; 16; 16 ]);
      ("4x8x32", Some [ 4; 8; 32 ]);
      ("2x2x2", Some [ 2; 2; 2 ]);
    ];
  emit_table "tiling" t;
  report_pool_stats ()

let run_multicolor opts =
  let n = opts.size in
  heading (Printf.sprintf "A2: multicolor reordering, VC GSRB at %d^3" n);
  let level = prepared_level n in
  let points = float_of_int (n * n * n) in
  let t = Tabular.create ~headers:[ "multicolor"; "time"; "stencils/s" ] in
  List.iter
    (fun flag ->
      let config =
        { Config.default with workers = opts.workers; multicolor = flag }
      in
      let dt = time_group opts Jit.Openmp config level Operators.gsrb_smooth in
      Tabular.add_row t
        [ (if flag then "on" else "off"); sec_fmt dt; rate_fmt (points /. dt) ])
    [ false; true ];
  emit_table "multicolor" t

let run_waves opts =
  let n = opts.size in
  heading
    (Printf.sprintf
       "A3: dependence-driven wave schedule vs per-stencil barriers (GSRB \
        smooth, %d^3)"
       n);
  let level = prepared_level n in
  let shape = level.Level.shape in
  let group = Operators.gsrb_smooth in
  let waves = Sf_analysis.Schedule.greedy_waves ~shape group in
  Printf.printf "group has %d stencils in %d waves: %s\n" (Group.length group)
    (List.length waves)
    (String.concat " | "
       (List.map
          (fun w -> String.concat "," (List.map string_of_int w))
          waves));
  let config = Config.with_workers (max 2 opts.workers) Config.default in
  let t_waves = time_group opts Jit.Openmp config level group in
  (* a barrier after every stencil: each stencil compiled as its own group *)
  let singleton_kernels =
    List.map
      (fun s ->
        Jit.compile ~config Jit.Openmp ~shape
          (Group.make ~label:("solo_" ^ s.Stencil.label) [ s ]))
      (Group.stencils group)
  in
  let t_serial =
    Timer.time ~warmup:1 ~repeats:opts.repeats (fun () ->
        List.iter
          (fun (k : Kernel.t) ->
            k.Kernel.run ~params:(Level.params level) level.Level.grids)
          singleton_kernels)
  in
  let t = Tabular.create ~headers:[ "schedule"; "barriers"; "time" ] in
  Tabular.add_row t
    [
      "greedy waves (analysis)";
      string_of_int (List.length waves);
      sec_fmt t_waves;
    ];
  Tabular.add_row t
    [
      "barrier per stencil";
      string_of_int (Group.length group);
      sec_fmt t_serial;
    ];
  emit_table "waves" t

let run_fusion opts =
  let n = 8 * opts.size in
  heading
    (Printf.sprintf
       "A4: stencil fusion (2-D unsharp mask: point-wise sharpen folded \
        into the blur pass), %dx%d"
       n n);
  let shape = Ivec.of_list [ n + 4; n + 4 ] in
  let zero = Ivec.zero 2 in
  let off a v =
    let o = Ivec.zero 2 in
    o.(a) <- v;
    o
  in
  let blur_x =
    Stencil.make ~label:"blur_x" ~output:"bx"
      ~expr:
        Expr.(
          const (1. /. 3.)
          *: (read "img" (off 1 (-1)) +: read "img" zero +: read "img" (off 1 1)))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let blur_y =
    Stencil.make ~label:"blur_y" ~output:"blur"
      ~expr:
        Expr.(
          const (1. /. 3.)
          *: (read "bx" (off 0 (-1)) +: read "bx" zero +: read "bx" (off 0 1)))
      ~domain:(Domain.interior 2 ~ghost:2)
      ()
  in
  let sharpen =
    Stencil.make ~label:"sharpen" ~output:"out"
      ~expr:
        Expr.(
          read "img" zero
          +: (const 1.5 *: (read "img" zero -: read "blur" zero)))
      ~domain:(Domain.interior 2 ~ghost:2)
      ()
  in
  let pipeline = Group.make ~label:"unsharp" [ blur_x; blur_y; sharpen ] in
  let grids =
    Sf_mesh.Grids.of_list
      [
        ("img", Sf_mesh.Mesh.random ~seed:3 shape);
        ("bx", Sf_mesh.Mesh.create shape);
        ("blur", Sf_mesh.Mesh.create shape);
        ("out", Sf_mesh.Mesh.create shape);
      ]
  in
  let points = float_of_int (n * n) in
  let t =
    Tabular.create
      ~headers:[ "fusion"; "stencils after opt"; "time"; "points/s" ]
  in
  List.iter
    (fun (label, config) ->
      let optimized = Sf_backends.Passes.optimize config ~shape pipeline in
      let kernel = Jit.compile ~config Jit.Compiled ~shape pipeline in
      let dt =
        Timer.time ~warmup:1 ~repeats:opts.repeats (fun () ->
            kernel.Kernel.run grids)
      in
      Tabular.add_row t
        [
          label;
          string_of_int (Group.length optimized);
          sec_fmt dt;
          rate_fmt (points /. dt);
        ])
    [
      ("off", Config.default);
      ( "on (+DCE, out live)",
        { Config.default with fuse = true; dce = Config.Dce [ "out" ] } );
    ];
  emit_table "fusion" t;
  Printf.printf
    "Fusing the point-wise sharpen into the blur consumer removes one \
     full pass over the image (paper SVII future work, implemented); the \
     blur_x/blur_y pair is correctly NOT fused (offset reads).\n"

let run_autotune opts =
  let n = opts.size in
  heading (Printf.sprintf "A5: autotuner over tile/multicolor, VC GSRB at %d^3" n);
  let level = prepared_level n in
  let results =
    Tune.evaluate ~repeats:opts.repeats ~backend:Jit.Openmp
      ~shape:level.Level.shape ~params:(Level.params level)
      ~grids:level.Level.grids Operators.gsrb_smooth
  in
  let t = Tabular.create ~headers:[ "candidate"; "time"; "stencils/s" ] in
  let points = float_of_int (n * n * n) in
  let describe (c : Config.t) =
    Printf.sprintf "tile=%s mc=%b"
      (match c.Config.tile with
      | None -> "chunks"
      | Some ts -> String.concat "x" (List.map string_of_int ts))
      c.Config.multicolor
  in
  List.iter
    (fun (r : Tune.result) ->
      Tabular.add_row t
        [ describe r.Tune.config; sec_fmt r.Tune.time; rate_fmt (points /. r.Tune.time) ])
    results;
  emit_table "autotune" t;
  let best =
    List.fold_left
      (fun acc (r : Tune.result) ->
        match acc with
        | Some (b : Tune.result) when b.Tune.time <= r.Tune.time -> acc
        | _ -> Some r)
      None results
    |> Option.get
  in
  Printf.printf "winner: %s (%.4f s)\n" (describe best.Tune.config)
    best.Tune.time

let run_distributed opts =
  let n = opts.size in
  let local = max 2 (n / 2) in
  heading
    (Printf.sprintf
       "D1: simulated SPMD (2x2x2 ranks of %d^3) vs single domain %d^3 — \
        GSRB smooth"
       local (2 * local));
  let open Sf_distributed in
  let t = Spmd.create ~rank_grid:[ 2; 2; 2 ] ~local_n:local in
  Spmd.set_beta t (fun c -> Problem.beta_smooth c.(0) c.(1) c.(2));
  Spmd.fill_interior t ~base:"f" (fun c -> Problem.rhs_sine c.(0) c.(1) c.(2));
  let group = Spmd.gsrb_smooth_group t in
  let waves =
    Sf_analysis.Schedule.greedy_waves ~shape:t.Spmd.shape group
  in
  Printf.printf
    "smooth group: %d stencils in %d waves (sizes %s) — halo exchange \
     scheduled as one wave per colour\n"
    (Group.length group) (List.length waves)
    (String.concat ", " (List.map (fun w -> string_of_int (List.length w)) waves));
  let kernel =
    Jit.compile
      ~config:(Config.with_workers opts.workers Config.default)
      Jit.Openmp ~shape:t.Spmd.shape group
  in
  let t_spmd =
    Timer.time ~warmup:1 ~repeats:opts.repeats (fun () ->
        kernel.Kernel.run ~params:(Spmd.params t) t.Spmd.grids)
  in
  let single = prepared_level (2 * local) in
  let t_single =
    time_group opts Jit.Openmp
      (Config.with_workers opts.workers Config.default)
      single Operators.gsrb_smooth
  in
  let tab = Tabular.create ~headers:[ "configuration"; "time"; "overhead" ] in
  Tabular.add_row tab [ "single domain"; sec_fmt t_single; "1.00x" ];
  Tabular.add_row tab
    [
      "8 ranks + stencil halo exchange";
      sec_fmt t_spmd;
      Printf.sprintf "%.2fx" (t_spmd /. t_single);
    ];
  emit_table "distributed" tab

(* ------------------------------------------------------------------ P0 *)

(* The seed executor, reconstructed as the baseline: a fresh round of
   [Domain.spawn]/[Domain.join] for every wave of every kernel invocation —
   what `Sf_backends.Pool` did before it became a persistent pool. *)
let spawn_per_wave workers tasks =
  let n = Array.length tasks in
  if workers <= 1 || n <= 1 then Array.iter (fun f -> f ()) tasks
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          tasks.(i) ();
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init
        (min (workers - 1) (n - 1))
        (fun _ -> Stdlib.Domain.spawn worker)
    in
    worker ();
    Array.iter Stdlib.Domain.join spawned
  end

let run_pool opts =
  heading
    "P0: per-wave dispatch latency — spawn-per-wave (seed) vs persistent \
     pool";
  let max_w = max 1 opts.workers in
  let joins = 200 in
  let mesh_n = 16 in
  let work = Array.make (mesh_n * mesh_n * mesh_n) 1.0 in
  let empty_tasks w = Array.init w (fun _ () -> ()) in
  let work_tasks w =
    (* one wave sweeping 16^3 points, split into w slabs *)
    let total = Array.length work in
    let slab = (total + w - 1) / w in
    Array.init w (fun k () ->
        let lo = k * slab and hi = min total ((k + 1) * slab) in
        for i = lo to hi - 1 do
          work.(i) <- (work.(i) *. 0.999) +. 0.001
        done)
  in
  let per_wave f =
    Timer.time ~warmup:1 ~repeats:opts.repeats (fun () ->
        for _ = 1 to joins do
          f ()
        done)
    /. float_of_int joins
  in
  let us v = Printf.sprintf "%.2f us" (v *. 1e6) in
  let t =
    Tabular.create
      ~headers:[ "workers"; "task"; "spawn/wave"; "pool/wave"; "speedup" ]
  in
  let rows = ref [] in
  for w = 1 to max_w do
    let pool = Pool.create ~workers:w in
    List.iter
      (fun (kind, tasks) ->
        let t_spawn = per_wave (fun () -> spawn_per_wave w tasks) in
        let t_pool = per_wave (fun () -> Pool.run_tasks pool tasks) in
        let speedup = t_spawn /. t_pool in
        rows := (w, kind, t_spawn, t_pool, speedup) :: !rows;
        Tabular.add_row t
          [
            string_of_int w;
            kind;
            us t_spawn;
            us t_pool;
            Printf.sprintf "%.1fx" speedup;
          ])
      [ ("empty", empty_tasks w); ("16^3", work_tasks w) ]
  done;
  let rows = List.rev !rows in
  emit_table "pool" t;
  report_pool_stats ();
  (* persist the dispatch-overhead trajectory for the perf history *)
  let headline =
    List.fold_left
      (fun acc (w, kind, _, _, s) ->
        if w = max_w && kind = "empty" then s else acc)
      1.0 rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"benchmark\": \"pool-dispatch\",\n";
  Printf.bprintf buf "  \"joins_per_sample\": %d,\n" joins;
  Printf.bprintf buf "  \"workers_max\": %d,\n" max_w;
  Printf.bprintf buf "  \"rows\": [\n";
  List.iteri
    (fun i (w, kind, t_spawn, t_pool, speedup) ->
      Printf.bprintf buf
        "    {\"workers\": %d, \"task\": %S, \"spawn_per_wave_us\": %.3f, \
         \"persistent_pool_us\": %.3f, \"speedup\": %.2f}%s\n"
        w kind (t_spawn *. 1e6) (t_pool *. 1e6) speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf
    "  \"dispatch_speedup_empty_at_max_workers\": %.2f\n" headline;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_pool.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf
    "[BENCH_pool.json written: empty-wave dispatch %.1fx faster than \
     spawn-per-wave at %d workers]\n"
    headline max_w

(* F1: the tentpole perf experiment — unfused vs fused-config vs
   temporally-blocked 4-sweep GSRB.  GSRB's colour sweeps are provably
   not cofusible (the fused row documents that the partition stays
   singleton and costs nothing); the memory-traffic win comes from the
   time-tiled variant, which runs all 4 sweeps in one skewed pass.
   Writes BENCH_fusion.json so the bytes/cell trajectory is tracked
   across PRs. *)
let run_fusion_bench opts =
  let sweeps = 4 in
  heading
    (Printf.sprintf
       "F1: cross-wave fusion + temporal blocking, %d-sweep GSRB (openmp, \
        %d workers)"
       sweeps opts.workers);
  let host = Lazy.force host_machine in
  let bw = host.Machine.bandwidth_gbs in
  Printf.printf "STREAM bandwidth: %.2f GB/s (roofline reference)\n" bw;
  let sizes = [ 32; 64; 128 ] in
  let group = Operators.gsrb_smooth in
  let base = Config.with_workers opts.workers Config.default in
  let t =
    Tabular.create
      ~headers:
        [ "n"; "variant"; "plan"; "bytes/cell"; "wall"; "GB/s"; "%roofline" ]
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      let level = prepared_level n in
      let shape = level.Level.shape in
      let params = Level.params level in
      let grids = level.Level.grids in
      let run_variant (variant, plan, bytes, kernel, runs_per_sample) =
        let dt =
          Timer.time ~label:variant ~warmup:1 ~repeats:opts.repeats
            (fun () ->
              for _ = 1 to runs_per_sample do
                kernel.Kernel.run ~params grids
              done)
        in
        let cells = sweeps * n * n * n in
        let bytes_per_cell = float_of_int bytes /. float_of_int cells in
        let gbs = float_of_int bytes /. dt /. 1e9 in
        let pct = 100. *. gbs /. bw in
        rows := (n, variant, plan, bytes_per_cell, dt, gbs, pct) :: !rows;
        Tabular.add_row t
          [
            string_of_int n;
            variant;
            plan;
            Printf.sprintf "%.1f" bytes_per_cell;
            sec_fmt dt;
            Printf.sprintf "%.2f" gbs;
            Printf.sprintf "%.1f%%" pct;
          ]
      in
      let unfused_cfg = { base with Config.fusion = false } in
      let fused_cfg = { base with Config.fusion = true } in
      let app_bytes cfg =
        (Costing.of_clusters ~shape
           (List.map
              (fun (c : Fusion.cluster) -> c.Fusion.members)
              (Fusion.partition cfg ~shape group)))
          .Costing.bytes
      in
      run_variant
        ( "unfused",
          "4 plain sweeps",
          sweeps * app_bytes unfused_cfg,
          Jit.compile ~config:unfused_cfg Jit.Openmp ~shape group,
          sweeps );
      run_variant
        ( "fused",
          "fusion " ^ Fusion.describe (Fusion.partition fused_cfg ~shape group),
          sweeps * app_bytes fused_cfg,
          Jit.compile ~config:fused_cfg Jit.Openmp ~shape group,
          sweeps );
      let tplan =
        match Timetile.plan base ~shape ~reps:sweeps group with
        | Some p -> Timetile.describe p
        | None -> "plain loop"
      in
      run_variant
        ( "ttile4",
          tplan,
          (Costing.of_timetile ~shape ~reps:sweeps group).Costing.bytes,
          Jit.compile_time_tiled ~config:base ~reps:sweeps Jit.Openmp ~shape
            group,
          1 ))
    sizes;
  let rows = List.rev !rows in
  emit_table "fusion_bench" t;
  (* headline at the largest size: model bytes and measured wall, plain
     vs time-tiled *)
  let pick variant =
    List.find (fun (n, v, _, _, _, _, _) -> n = List.fold_left max 0 sizes && v = variant) rows
  in
  let _, _, _, b_plain, w_plain, _, _ = pick "unfused" in
  let _, _, _, b_tile, w_tile, _, _ = pick "ttile4" in
  let bytes_ratio = b_plain /. b_tile in
  let wall_ratio = w_plain /. w_tile in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"benchmark\": \"fusion-timetile-gsrb\",\n";
  Printf.bprintf buf "  \"sweeps\": %d,\n" sweeps;
  Printf.bprintf buf "  \"workers\": %d,\n" opts.workers;
  Printf.bprintf buf "  \"stream_gbs\": %.2f,\n" bw;
  Printf.bprintf buf "  \"rows\": [\n";
  List.iteri
    (fun i (n, variant, plan, bpc, wall, gbs, pct) ->
      Printf.bprintf buf
        "    {\"n\": %d, \"variant\": %S, \"plan\": %S, \"bytes_per_cell\": \
         %.2f, \"wall_s\": %.6f, \"gbs\": %.2f, \"roofline_pct\": %.1f}%s\n"
        n variant plan bpc wall gbs pct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf "  \"bytes_per_cell_ratio_unfused_vs_ttile\": %.2f,\n"
    bytes_ratio;
  Printf.bprintf buf "  \"wallclock_ratio_unfused_vs_ttile\": %.2f\n"
    wall_ratio;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_fusion.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf
    "[BENCH_fusion.json written: time depth %d cuts model traffic %.2fx \
     (wall-clock %.2fx) vs %d plain sweeps at %d^3]\n"
    sweeps bytes_ratio wall_ratio sweeps (List.fold_left max 0 sizes)

(* A correctness gate printed into the benchmark log, in the spirit of
   HPGMG's built-in verification: the numbers above only matter if these
   hold. *)
let run_verify _opts =
  heading "V0: correctness gate (HPGMG-style verification)";
  let t = Tabular.create ~headers:[ "check"; "result"; "detail" ] in
  let check name ok detail =
    Tabular.add_row t [ name; (if ok then "PASS" else "FAIL"); detail ]
  in
  (* 1. multigrid convergence + discretisation error *)
  let solver = Mg.create ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  let norms = Mg.solve ~cycles:6 solver in
  let factor = norms.(6) /. norms.(5) in
  check "V-cycle convergence" (factor < 0.2)
    (Printf.sprintf "asymptotic factor %.3f (expect < 0.2)" factor);
  let err =
    Level.error_vs (Mg.finest solver)
      (Level.u (Mg.finest solver))
      Problem.exact_sine
  in
  check "discretisation error" (err < 5e-3)
    (Printf.sprintf "L-inf error %.2e at n=16 (O(h^2) ~ 3.9e-3)" err);
  (* 2. generated code vs hand-written baseline *)
  let dsl = Mg.create ~n:8 () in
  let hand = Baseline.create ~n:8 () in
  Mg.set_beta dsl Problem.beta_smooth;
  Baseline.set_beta hand Problem.beta_smooth;
  Problem.setup_variable ~seed:5 (Mg.finest dsl);
  Problem.setup_variable ~seed:5 (Baseline.finest hand);
  Mg.set_beta dsl Problem.beta_smooth;
  Baseline.set_beta hand Problem.beta_smooth;
  for _ = 1 to 2 do
    Mg.vcycle dsl;
    Baseline.vcycle hand
  done;
  let d =
    Sf_mesh.Mesh.max_abs_diff
      (Level.u (Mg.finest dsl))
      (Level.u (Baseline.finest hand))
  in
  check "DSL = hand-written" (d < 1e-9) (Printf.sprintf "max diff %.2e" d);
  (* 3. every backend produces the same smoother result *)
  let level_for backend =
    let l = prepared_level 8 in
    let k = Jit.compile backend ~shape:l.Level.shape Operators.gsrb_smooth in
    k.Kernel.run ~params:(Level.params l) l.Level.grids;
    Level.u l
  in
  let reference = level_for Jit.Interp in
  let backend_diff =
    List.fold_left
      (fun acc b ->
        Float.max acc (Sf_mesh.Mesh.max_abs_diff reference (level_for b)))
      0.
      [ Jit.Compiled; Jit.Openmp; Jit.Opencl ]
  in
  check "backends agree" (backend_diff < 1e-11)
    (Printf.sprintf "max backend deviation %.2e" backend_diff);
  (* 4. parallel plans are conflict-free *)
  let plan_ok =
    Sf_backends.Schedule_check.check_waves
      (Sf_backends.Schedule_check.openmp_plan
         (Config.with_workers 4 Config.default)
         ~shape:(Ivec.of_list [ 18; 18; 18 ])
         Operators.gsrb_smooth)
    = Ok ()
  in
  check "plan conflict-freedom" plan_ok "exact lattice check on all waves";
  emit_table "verify" t

let run_codegen opts =
  let n = opts.size in
  heading "Micro-compiler source emission (GSRB smooth)";
  let shape = Ivec.of_list [ n + 2; n + 2; n + 2 ] in
  let grid_shapes _ = shape in
  let seq = Sf_codegen.Seq_emit.emit ~shape ~grid_shapes Operators.gsrb_smooth in
  let omp = Sf_codegen.Omp_emit.emit ~shape ~grid_shapes Operators.gsrb_smooth in
  let ocl = Sf_codegen.Ocl_emit.emit ~shape ~grid_shapes Operators.gsrb_smooth in
  let cuda = Sf_codegen.Cuda_emit.emit ~shape ~grid_shapes Operators.gsrb_smooth in
  let lines s = List.length (String.split_on_char '\n' s) in
  Printf.printf "sequential C translation unit: %d lines\n" (lines seq);
  Printf.printf "OpenMP C translation unit:     %d lines\n" (lines omp);
  Printf.printf "OpenCL translation unit:       %d lines\n" (lines ocl);
  Printf.printf "CUDA translation unit:         %d lines\n" (lines cuda);
  print_endline "--- first 24 lines of the OpenMP source ---";
  String.split_on_char '\n' omp
  |> List.filteri (fun i _ -> i < 24)
  |> List.iter print_endline

let run_all opts =
  run_verify opts;
  run_stream opts;
  run_fig7 opts;
  run_fig8 opts;
  run_fig9 opts;
  run_tiling opts;
  run_multicolor opts;
  run_waves opts;
  run_fusion opts;
  run_autotune opts;
  run_distributed opts;
  run_codegen opts
