open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
module Config = Sf_backends.Config
module Jit = Sf_backends.Jit
module Pool = Sf_backends.Pool
module Trace = Sf_trace.Trace

(* One bounded FIFO of halo planes.  [head]/[tail] are monotone message
   counters (not wrapped): slot of message m is [m mod depth].  Within a
   scheduler batch at most one task sends on a ring and at most one
   receives, they touch distinct slots whenever 0 < tail - head < depth,
   and the batch join publishes both counters before the next readiness
   scan — so plain mutable fields suffice. *)
type ring = {
  chan : Pipeline_check.channel;
  mutable slots : float array array;
  src_mesh : Mesh.t;
  dst_mesh : Mesh.t;
  src_cells : Ivec.t array;  (* producer-grid cells, capture order *)
  dst_cells : Ivec.t array;  (* consumer-grid ghost cells, same order *)
  mutable head : int;  (* messages received *)
  mutable tail : int;  (* messages sent *)
}

type node = { kernel : Sf_backends.Kernel.t option; ins : int list; outs : int list }

type t = {
  spmd : Spmd.t;
  label : string;
  cert : Pipeline_check.certificate;
  rings : ring array;
  nodes : node array array;  (* nodes.(rank_index).(stage) *)
  pool : Pool.t;
}

let certify ?stream_axis ?depth_override ?(config = Config.default) spmd group =
  Pipeline_check.analyze ?stream_axis ?depth_override
    ~budget_bytes:config.Config.pipe_budget ~shape:spmd.Spmd.shape group

let refuse label diagnostics =
  raise
    (Jit.Certification_failed { backend = "pipeline"; group = label; diagnostics })

let cells_of_lattices ghost =
  let acc = ref [] in
  List.iter (fun lat -> Domain.iter lat (fun p -> acc := Array.copy p :: !acc)) ghost;
  Array.of_list (List.rev !acc)

let create ?stream_axis ?depth_override ?(config = Config.default) spmd group =
  let label = group.Group.label in
  let cert, diags = certify ?stream_axis ?depth_override ~config spmd group in
  let cert =
    match cert with
    | Some c -> c
    | None -> refuse label (List.filter Diagnostics.is_error diags)
  in
  let grids = spmd.Spmd.grids in
  let rings =
    Array.of_list
      (List.map
         (fun (c : Pipeline_check.channel) ->
           let dst_cells = cells_of_lattices c.Pipeline_check.ghost in
           let src_cells =
             Array.map
               (fun p -> Array.map2 ( + ) p c.Pipeline_check.offset)
               dst_cells
           in
           {
             chan = c;
             slots =
               Array.init c.Pipeline_check.depth (fun _ ->
                   Array.make (Array.length dst_cells) 0.);
             src_mesh = Grids.find grids c.Pipeline_check.src_grid;
             dst_mesh = Grids.find grids c.Pipeline_check.dst_grid;
             src_cells;
             dst_cells;
             head = 0;
             tail = 0;
           })
         cert.Pipeline_check.channels)
  in
  let stencils = Array.of_list (Group.stencils group) in
  let consumers =
    List.map (fun (c : Pipeline_check.channel) -> c.Pipeline_check.consumer)
      cert.Pipeline_check.channels
  in
  let rank_index r =
    let rec go i = function
      | [] -> invalid_arg "Pipeline.create: unknown rank"
      | r' :: rest -> if r' = r then i else go (i + 1) rest
    in
    go 0 cert.Pipeline_check.ranks
  in
  (* inner kernels run serially: parallelism comes from scheduling many
     (rank, stage) nodes concurrently across the pool *)
  let kconfig = Config.with_workers 1 config in
  let nranks = List.length cert.Pipeline_check.ranks in
  let nodes =
    Array.init nranks (fun ri ->
        Array.init cert.Pipeline_check.stages (fun st ->
            let mine =
              List.filteri
                (fun i _ ->
                  cert.Pipeline_check.stage_of.(i) = st
                  && cert.Pipeline_check.rank_of.(i) <> []
                  && rank_index cert.Pipeline_check.rank_of.(i) = ri
                  && not (List.mem i consumers))
                (Array.to_list stencils)
            in
            let kernel =
              match mine with
              | [] -> None
              | _ ->
                  let g =
                    Group.make
                      ~label:(Printf.sprintf "%s/r%d/s%d" label ri st)
                      mine
                  in
                  Some
                    (Jit.compile ~config:kconfig Jit.Openmp
                       ~shape:spmd.Spmd.shape g)
            in
            let ins = ref [] and outs = ref [] in
            Array.iteri
              (fun k ring ->
                let c = ring.chan in
                if
                  rank_index c.Pipeline_check.dst = ri
                  && c.Pipeline_check.dst_stage = st
                then ins := k :: !ins;
                if
                  rank_index c.Pipeline_check.src = ri
                  && c.Pipeline_check.src_stage = st
                then outs := k :: !outs)
              rings;
            { kernel; ins = List.rev !ins; outs = List.rev !outs }))
  in
  {
    spmd;
    label;
    cert;
    rings;
    nodes;
    pool = Pool.create ~workers:config.Config.workers;
  }

let certificate t = t.cert

let inject_undersize t =
  if Array.length t.rings = 0 then
    invalid_arg "Pipeline.inject_undersize: plan has no channels";
  let r = t.rings.(0) in
  r.slots <- Array.sub r.slots 0 (Array.length r.slots - 1)

let send ring =
  let slot = ring.slots.(ring.tail mod Array.length ring.slots) in
  Array.iteri (fun k p -> slot.(k) <- Mesh.get ring.src_mesh p) ring.src_cells;
  ring.tail <- ring.tail + 1;
  if Trace.on () then Trace.add Trace.Channel_sends 1

let recv ring =
  let slot = ring.slots.(ring.head mod Array.length ring.slots) in
  Array.iteri (fun k p -> Mesh.set ring.dst_mesh p slot.(k)) ring.dst_cells;
  ring.head <- ring.head + 1

let run ?(sweeps = 1) t =
  (match
     Pipeline_check.verify_depths t.cert
       ~depths:(Array.to_list (Array.map (fun r -> Array.length r.slots) t.rings))
   with
  | [] -> ()
  | diags -> refuse t.label diags);
  let stages = t.cert.Pipeline_check.stages in
  let nranks = Array.length t.nodes in
  let params = Spmd.params t.spmd in
  let total = sweeps * stages in
  (* per-rank program counter: pc = wave * stages + stage *)
  let pc = Array.make nranks 0 in
  let exec () =
    (* prologue: delay-d channels carry the pre-sweep planes of their
       first d messages — exactly what the bulk-synchronous exchange of
       wave 0 reads *)
    Array.iter
      (fun r ->
        for _ = 1 to r.chan.Pipeline_check.wave_delay do
          send r
        done)
      t.rings;
    let finished = ref 0 in
    while !finished < nranks do
      let ready = ref [] and stalled = ref false in
      for ri = 0 to nranks - 1 do
        if pc.(ri) < total then begin
          let w = pc.(ri) / stages and st = pc.(ri) mod stages in
          let n = t.nodes.(ri).(st) in
          let ok =
            List.for_all (fun k -> t.rings.(k).tail > t.rings.(k).head) n.ins
            && List.for_all
                 (fun k ->
                   let r = t.rings.(k) in
                   r.tail - r.head < Array.length r.slots)
                 n.outs
          in
          if ok then ready := (ri, w, st, n) :: !ready else stalled := true
        end
      done;
      (match !ready with
      | [] ->
          (* unreachable for a certified plan: the deadlock proof covers
             exactly this scheduler's blocking discipline *)
          failwith ("Pipeline.run: stalled pipeline in " ^ t.label)
      | batch ->
          if !stalled && Trace.on () then Trace.add Trace.Channel_stalls 1;
          let tasks =
            List.map
              (fun (_ri, _w, _st, n) () ->
                List.iter (fun k -> recv t.rings.(k)) n.ins;
                (match n.kernel with
                | Some k -> k.Sf_backends.Kernel.run ~params t.spmd.Spmd.grids
                | None -> ());
                List.iter (fun k -> send t.rings.(k)) n.outs)
              (List.rev batch)
          in
          Pool.run_tasks t.pool (Array.of_list tasks);
          List.iter
            (fun (ri, _, _, _) ->
              pc.(ri) <- pc.(ri) + 1;
              if pc.(ri) = total then incr finished)
            batch)
    done;
    (* drop the planes still in flight (trailing sends of the last wave
       have no consumer); reset so the next [run] re-primes cleanly *)
    Array.iter
      (fun r ->
        r.head <- 0;
        r.tail <- 0)
      t.rings
  in
  if Trace.on () then
    Trace.span
      ~args:
        [
          ("group", Trace.Str t.label);
          ("ranks", Trace.Int nranks);
          ("sweeps", Trace.Int sweeps);
        ]
      Trace.Phase ("pipeline:" ^ t.label) exec
  else exec ()
