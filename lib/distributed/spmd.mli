(** A simulated distributed-memory (SPMD) substrate — the paper's §VII
    future work ("new backends to target distributed-memory systems via
    MPI or UPC++"), realised without a network: ranks are disjoint mesh
    sets in one process, and — the interesting part — *halo exchange is
    expressed as Snowflake stencils*.  A ghost-fill from a neighbour rank
    is a copy stencil with a large constant offset between two grids, so
    the ordinary Diophantine analysis schedules all communication of a
    sweep into one parallel wave and proves it independent of the
    interior computation, exactly the way the paper treats physical
    boundary conditions.

    Decomposition: the global interior (global_n per axis, global_n =
    local_n · ranks-per-axis) is split into equal boxes; every rank owns a
    (local_n+2)^dims mesh per grid.  Rank grids are named
    ["<base>@<i>_<j>_..."]. *)

open Sf_util
open Sf_mesh
open Snowflake

type t = private {
  dims : int;
  rank_grid : Ivec.t;  (** ranks per axis *)
  local_n : int;
  shape : Ivec.t;  (** local iteration shape, (local_n+2)^dims *)
  grids : Grids.t;  (** every rank's meshes, rank-qualified names *)
  dead : (string, Ivec.t) Hashtbl.t;
      (** ranks whose memory is currently lost (see {!kill_rank}) *)
  mutable fills : (string * (float array -> float)) list;
      (** per-base fills recorded by {!fill_interior} — the static data a
          recovered rank re-derives *)
  mutable beta_fn : (float array -> float) option;
}

val create : rank_grid:int list -> local_n:int -> t
(** Allocates u/f/res/tmp/dinv + face betas (β ≡ 1) for every rank.
    [local_n] must be even and ≥ 2; rank counts positive. *)

val ranks : t -> Ivec.t list
(** All rank coordinates, row-major. *)

val rank_name : string -> Ivec.t -> string
(** ["u" ↦ "u@1_0"] etc. *)

val global_n : t -> int
(** Global interior cells per axis ([local_n] · ranks; requires a cubic
    rank grid for a cubic global domain — non-cubic rank grids give a
    rectangular global domain and this returns the axis-0 extent). *)

val exchange_stencils : t -> base:string -> Stencil.t list
(** For every rank: per axis and side, either a halo-copy stencil reading
    the neighbouring rank's owned face (interior faces) or a linear
    Dirichlet boundary stencil (physical faces).  One wave's worth of
    communication+BC, by construction. *)

val gsrb_smooth_group : t -> Group.t
(** exchange/red sweep/exchange/black sweep across every rank — the
    distributed analogue of [Operators.gsrb_smooth], one analysable
    group. *)

val residual_group : t -> Group.t

val init_dinv : t -> unit

val set_beta : t -> (float array -> float) -> unit
(** Evaluate β at global face-centre coordinates on every rank. *)

val fill_interior : t -> base:string -> (float array -> float) -> unit
(** Fill every rank's interior from a function of *global* physical
    cell-centre coordinates. *)

val params : t -> (string * float) list

val gather : t -> base:string -> Mesh.t
(** Assemble the global mesh, (global extents + 2) with a ghost ring, from
    the ranks' owned cells (ghosts zero). *)

val scatter : t -> base:string -> Mesh.t -> unit
(** Distribute a global mesh's interior into the ranks' owned cells. *)

val run_group : t -> Group.t -> unit
(** Compile (supervised, OpenMP-style backend, pool-wide workers) and run
    one group over the rank set.  Under an armed fault campaign the
    invocation additionally consults the ["rank"] site (a [Kill_rank]
    firing loses a rank and aborts the sweep — the now-stale plan is not
    run) and the ["halo"] site, and transient failures are retried with
    supervisor backoff. *)

(** {2 Rank failure and recovery}

    A killed rank models a lost node: its meshes read as NaN until
    recovery.  Groups built while a rank is dead schedule {e around} it —
    no stencils for the dead rank, and its alive neighbours' facing ghost
    planes degrade to zero-gradient one-sided stencils instead of halo
    copies, so sweeps keep running on the survivors. *)

val kill_rank : t -> Ivec.t -> unit
(** Mark the rank dead and poison its meshes with NaN.  Idempotent. *)

val dead_ranks : t -> Ivec.t list

val inject_rank_faults : t -> Ivec.t list
(** Consult the ["rank"] fault site for every alive rank, killing those
    for which a [Kill_rank] clause fires; returns the newly killed ranks
    (empty when faults are disarmed).  Called automatically by
    {!run_group}. *)

val recover : ?sweeps:int -> t -> int
(** Reconstruct every dead rank and return how many were recovered.
    Static data (f, β, dinv) is re-derived from the fills recorded by
    {!fill_interior} and {!set_beta}; the lost solution gets a first guess
    by per-axis linear interpolation between the alive neighbours' nearest
    owned planes (0 at physical boundaries); then [sweeps] (default 4)
    GSRB sweeps over just the recovered ranks — with full-width exchanges
    — smooth the reconstruction back into the global solution.  Each
    recovery is a [Rank_recoveries] counter increment and a
    ["recover:<rank>"] span when tracing is on. *)
