open Sf_util
open Sf_mesh
open Snowflake
open Sf_hpgmg

module Fault = Sf_resilience.Fault
module Supervisor = Sf_resilience.Supervisor

type t = {
  dims : int;
  rank_grid : Ivec.t;
  local_n : int;
  shape : Ivec.t;
  grids : Grids.t;
  dead : (string, Ivec.t) Hashtbl.t;
      (* ranks whose memory is lost, keyed by coordinate suffix *)
  mutable fills : (string * (float array -> float)) list;
      (* per-base interior fills recorded by [fill_interior] (latest per
         base wins) — the static data a recovered rank re-derives *)
  mutable beta_fn : (float array -> float) option;
}

let rank_name base r =
  base ^ "@"
  ^ String.concat "_" (List.map string_of_int (Ivec.to_list r))

let rank_key r = rank_name "" r
let is_dead t r = Hashtbl.mem t.dead (rank_key r)

let ranks t =
  let acc = ref [] in
  let r = Array.make t.dims 0 in
  let rec go axis =
    if axis = t.dims then acc := Array.copy r :: !acc
    else
      for v = 0 to t.rank_grid.(axis) - 1 do
        r.(axis) <- v;
        go (axis + 1)
      done
  in
  go 0;
  List.rev !acc

let mesh_bases dims =
  [ "u"; "f"; "res"; "tmp"; "dinv" ]
  @ List.init dims (fun a -> Nd.beta_name a)

let create ~rank_grid ~local_n =
  let rank_grid = Ivec.of_list rank_grid in
  let dims = Ivec.dims rank_grid in
  if dims < 1 then invalid_arg "Spmd.create: empty rank grid";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Spmd.create: non-positive rank count")
    rank_grid;
  if local_n < 2 || local_n mod 2 <> 0 then
    invalid_arg "Spmd.create: local_n must be even and >= 2";
  let shape = Ivec.make dims (local_n + 2) in
  let t =
    {
      dims;
      rank_grid;
      local_n;
      shape;
      grids = Grids.create ();
      dead = Hashtbl.create 4;
      fills = [];
      beta_fn = None;
    }
  in
  List.iter
    (fun r ->
      List.iter
        (fun base ->
          let m = Mesh.create shape in
          if String.length base >= 5 && String.sub base 0 5 = "beta_" then
            Mesh.fill m 1.;
          Grids.add t.grids (rank_name base r) m)
        (mesh_bases dims))
    (ranks t);
  t

let global_n t = t.local_n * t.rank_grid.(0)
let h t = 1. /. float_of_int (global_n t)
let params t = [ ("inv_h2", 1. /. (h t *. h t)) ]

let off dims a v =
  let o = Ivec.zero dims in
  o.(a) <- v;
  o

(* One face of one rank: a halo copy from the adjacent rank, the physical
   linear-Dirichlet stencil, or — while the neighbour is dead — a
   zero-gradient one-sided stencil copying the rank's own nearest interior
   plane into the ghost, so sweeps can keep running around a lost rank
   without reading its poisoned meshes. *)
let face_stencil t ~base r axis side =
  let dims = t.dims in
  let n = t.local_n in
  let lo = Array.make dims 1 and hi = Array.make dims (-1) in
  let my = rank_name base r in
  let plane_dom () =
    Domain.of_rect (Domain.rect ~lo:(Ivec.to_list lo) ~hi:(Ivec.to_list hi) ())
  in
  match side with
  | `Low ->
      lo.(axis) <- 0;
      hi.(axis) <- 1;
      if r.(axis) = 0 then
        Stencil.make
          ~label:(Printf.sprintf "bc_%s_ax%d_lo" my axis)
          ~output:my
          ~expr:(Expr.neg (Expr.read my (off dims axis 1)))
          ~domain:(plane_dom ()) ()
      else begin
        let neighbour = Array.copy r in
        neighbour.(axis) <- r.(axis) - 1;
        if is_dead t neighbour then
          Stencil.make
            ~label:(Printf.sprintf "dead_%s_ax%d_lo" my axis)
            ~output:my
            ~expr:(Expr.read my (off dims axis 1))
            ~domain:(plane_dom ()) ()
        else
          Stencil.make
            ~label:(Printf.sprintf "halo_%s_ax%d_lo" my axis)
            ~output:my
            ~expr:(Expr.read (rank_name base neighbour) (off dims axis n))
            ~domain:(plane_dom ()) ()
      end
  | `High ->
      lo.(axis) <- -1;
      hi.(axis) <- 0;
      if r.(axis) = t.rank_grid.(axis) - 1 then
        Stencil.make
          ~label:(Printf.sprintf "bc_%s_ax%d_hi" my axis)
          ~output:my
          ~expr:(Expr.neg (Expr.read my (off dims axis (-1))))
          ~domain:(plane_dom ()) ()
      else begin
        let neighbour = Array.copy r in
        neighbour.(axis) <- r.(axis) + 1;
        if is_dead t neighbour then
          Stencil.make
            ~label:(Printf.sprintf "dead_%s_ax%d_hi" my axis)
            ~output:my
            ~expr:(Expr.read my (off dims axis (-1)))
            ~domain:(plane_dom ()) ()
        else
          Stencil.make
            ~label:(Printf.sprintf "halo_%s_ax%d_hi" my axis)
            ~output:my
            ~expr:(Expr.read (rank_name base neighbour) (off dims axis (-n)))
            ~domain:(plane_dom ()) ()
      end

(* Dead ranks are scheduled around: no faces for them, and their alive
   neighbours' facing sides degrade to the one-sided stencils above. *)
let alive t = List.filter (fun r -> not (is_dead t r)) (ranks t)

let exchange_stencils t ~base =
  List.concat_map
    (fun r ->
      List.concat_map
        (fun axis -> [ face_stencil t ~base r axis `Low; face_stencil t ~base r axis `High ])
        (List.init t.dims Fun.id))
    (alive t)

let per_rank_stencil _t stencil r =
  Stencil.rename_grids (fun g -> rank_name g r) stencil
  |> fun s -> Stencil.relabel s (s.Stencil.label ^ rank_name "" r)

let gsrb_smooth_group t =
  let color c =
    List.map (per_rank_stencil t (Nd.gsrb_color ~dims:t.dims ~color:c)) (alive t)
  in
  Group.make ~label:"spmd_gsrb"
    (exchange_stencils t ~base:"u"
    @ color 0
    @ exchange_stencils t ~base:"u"
    @ color 1)

let residual_group t =
  Group.make ~label:"spmd_residual"
    (exchange_stencils t ~base:"u"
    @ List.map (per_rank_stencil t (Nd.residual_vc ~dims:t.dims)) (alive t))

(* The "rank" fault site: consult the armed clauses once per alive rank;
   a Kill_rank firing loses that rank's memory.  Returns the newly killed
   ranks so callers (and [run_group]) know the current sweep plans are
   stale. *)
let kill_rank t r =
  if not (is_dead t r) then begin
    Hashtbl.replace t.dead (rank_key r) (Array.copy r);
    (* the rank's memory is gone: every mesh it owned reads as poison *)
    List.iter
      (fun base ->
        Mesh.fill (Grids.find t.grids (rank_name base r)) Float.nan)
      (mesh_bases t.dims);
    let module Trace = Sf_trace.Trace in
    if Trace.on () then
      Trace.record_span
        ~args:[ ("rank", Trace.Str (rank_key r)) ]
        Trace.Phase
        ("kill:" ^ rank_key r)
        ~ts_us:(Trace.now_us ()) ~dur_us:0.
  end

let inject_rank_faults t =
  if not (Fault.armed ()) then []
  else begin
    let killed =
      List.filter
        (fun r ->
          match Fault.fire ~site:"rank" ~detail:(rank_key r) with
          | Some Fault.Kill_rank -> true
          | _ -> false)
        (alive t)
    in
    List.iter (kill_rank t) killed;
    killed
  end

let run_group t group =
  (* ranks share the process-wide persistent pool (SF_WORKERS): one wave of
     per-rank stencils farms out across all ranks at once, like the OpenMP
     backend the paper layers its SPMD future work on *)
  let config =
    Sf_backends.Config.with_workers
      (Sf_backends.Pool.workers (Sf_backends.Pool.global ()))
      Sf_backends.Config.default
  in
  (* a rank death invalidates the plan we were handed (its halo stencils
     still read the dead rank's meshes): abort this sweep; the caller's
     next group build schedules around the dead rank *)
  if inject_rank_faults t <> [] then ()
  else begin
    let kernel =
      Sf_backends.Supervise.compile ~config Sf_backends.Jit.Openmp
        ~shape:t.shape group
    in
    let label = group.Snowflake.Group.label in
    let invoke () =
      (* the "halo" fault site: one consultation per exchange sweep *)
      if Fault.armed () then
        ignore (Fault.fire ~site:"halo" ~detail:label : Fault.kind option);
      kernel.Sf_backends.Kernel.run ~params:(params t) t.grids
    in
    (* under an armed campaign, transient halo failures are retried with
       the supervisor's backoff; clean runs call the kernel directly *)
    let run () =
      if Fault.armed () then Supervisor.run ~name:("spmd:" ^ label) [ (label, invoke) ]
      else invoke ()
    in
    let module Trace = Sf_trace.Trace in
    if Trace.on () then
      Trace.span
        ~args:
          [
            ("group", Trace.Str label);
            ("ranks", Trace.Int (List.length (alive t)));
          ]
        Trace.Phase ("spmd:" ^ label) run
    else run ()
  end

let init_dinv t =
  run_group t
    (Group.make ~label:"spmd_dinv"
       (List.map (per_rank_stencil t (Nd.dinv_setup ~dims:t.dims)) (alive t)))

(* physical coordinate of local index l on rank r along axis a *)
let coord t r a l = (float_of_int ((r.(a) * t.local_n) + l) -. 0.5) *. h t

let iter_rank_interior t fn =
  let interior =
    Domain.resolve_rect ~shape:t.shape
      (Domain.rect
         ~lo:(List.init t.dims (fun _ -> 1))
         ~hi:(List.init t.dims (fun _ -> -1))
         ())
  in
  List.iter (fun r -> Domain.iter interior (fun p -> fn r p)) (ranks t)

let fill_interior t ~base fn =
  (* remember the fill: it is exactly the static data a recovered rank
     re-derives after losing its memory *)
  t.fills <- (base, fn) :: List.remove_assoc base t.fills;
  iter_rank_interior t (fun r p ->
      let coords = Array.mapi (fun a l -> coord t r a l) p in
      Mesh.set (Grids.find t.grids (rank_name base r)) p (fn coords))

let fill_rank_betas t r beta =
  List.iter
    (fun axis ->
      let m = Grids.find t.grids (rank_name (Nd.beta_name axis) r) in
      Mesh.fill_with m (fun p ->
          let coords =
            Array.mapi
              (fun a l ->
                if a = axis then
                  float_of_int ((r.(a) * t.local_n) + l - 1) *. h t
                else coord t r a l)
              p
          in
          beta coords))
    (List.init t.dims Fun.id)

let set_beta t beta =
  t.beta_fn <- Some beta;
  List.iter (fun r -> fill_rank_betas t r beta) (ranks t);
  init_dinv t

let global_shape t =
  Array.init t.dims (fun a -> (t.local_n * t.rank_grid.(a)) + 2)

let gather t ~base =
  let g = Mesh.create (global_shape t) in
  iter_rank_interior t (fun r p ->
      let gp = Array.mapi (fun a l -> (r.(a) * t.local_n) + l) p in
      Mesh.set g gp (Mesh.get (Grids.find t.grids (rank_name base r)) p));
  g

let scatter t ~base global =
  iter_rank_interior t (fun r p ->
      let gp = Array.mapi (fun a l -> (r.(a) * t.local_n) + l) p in
      Mesh.set (Grids.find t.grids (rank_name base r)) p (Mesh.get global gp))

(* ------------------------------------------------------- rank recovery *)

let dead_ranks t = Hashtbl.fold (fun _ r acc -> r :: acc) t.dead []

let rank_interior t =
  Domain.resolve_rect ~shape:t.shape
    (Domain.rect
       ~lo:(List.init t.dims (fun _ -> 1))
       ~hi:(List.init t.dims (fun _ -> -1))
       ())

let fill_rank_interior t ~base r fn =
  let m = Grids.find t.grids (rank_name base r) in
  Domain.iter (rank_interior t) (fun p ->
      let coords = Array.mapi (fun a l -> coord t r a l) p in
      Mesh.set m p (fn coords))

(* First guess for a lost rank's solution: per axis, linearly interpolate
   between the nearest owned planes of the two neighbours (which sit at
   this rank's local coordinates 0 and local_n+1), then average the axes.
   A physical boundary — or a neighbour that is itself still dead —
   contributes the Dirichlet face value 0. *)
let reconstruct_u t r =
  let n = t.local_n in
  let u = Grids.find t.grids (rank_name "u" r) in
  let sample axis delta p =
    let nb = Array.copy r in
    nb.(axis) <- r.(axis) + delta;
    if
      nb.(axis) < 0
      || nb.(axis) >= t.rank_grid.(axis)
      || is_dead t nb
    then 0.
    else begin
      let q = Array.copy p in
      q.(axis) <- (if delta < 0 then n else 1);
      Mesh.get (Grids.find t.grids (rank_name "u" nb)) q
    end
  in
  Domain.iter (rank_interior t) (fun p ->
      let acc = ref 0. in
      for axis = 0 to t.dims - 1 do
        let lo = sample axis (-1) p and hi = sample axis 1 p in
        let frac = float_of_int p.(axis) /. float_of_int (n + 1) in
        acc := !acc +. lo +. ((hi -. lo) *. frac)
      done;
      Mesh.set u p (!acc /. float_of_int t.dims))

let recover ?(sweeps = 4) t =
  let dead = dead_ranks t in
  let module Trace = Sf_trace.Trace in
  List.iter
    (fun r ->
      (* wipe the poison, then re-derive static data from the recorded
         fills and beta: f and the coefficients are pure functions of the
         rank's coordinates, so nothing about them was actually "lost" *)
      List.iter
        (fun base -> Mesh.fill (Grids.find t.grids (rank_name base r)) 0.)
        (mesh_bases t.dims);
      List.iter
        (fun axis ->
          Mesh.fill (Grids.find t.grids (rank_name (Nd.beta_name axis) r)) 1.)
        (List.init t.dims Fun.id);
      Option.iter (fill_rank_betas t r) t.beta_fn;
      List.iter
        (fun (base, fn) ->
          if base <> "u" then fill_rank_interior t ~base r fn)
        t.fills;
      (* the solution is genuinely lost: rebuild a first guess from the
         alive neighbours' halo-adjacent planes *)
      reconstruct_u t r;
      if Trace.on () then begin
        Trace.add Trace.Rank_recoveries 1;
        Trace.record_span
          ~args:[ ("rank", Trace.Str (rank_key r)) ]
          Trace.Phase
          ("recover:" ^ rank_key r)
          ~ts_us:(Trace.now_us ()) ~dur_us:0.
      end)
    dead;
  Hashtbl.reset t.dead;
  if dead <> [] then begin
    (* every rank is alive again: refresh dinv (the dead ranks' copies
       were poisoned) and smooth the reconstructed region back into the
       global solution — exchanges are full-width again, sweeps touch
       only the recovered ranks *)
    init_dinv t;
    let color c =
      List.map (per_rank_stencil t (Nd.gsrb_color ~dims:t.dims ~color:c)) dead
    in
    let g =
      Group.make ~label:"spmd_recover"
        (exchange_stencils t ~base:"u"
        @ color 0
        @ exchange_stencils t ~base:"u"
        @ color 1)
    in
    for _ = 1 to sweeps do
      run_group t g
    done
  end;
  List.length dead
