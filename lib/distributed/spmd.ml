open Sf_util
open Sf_mesh
open Snowflake
open Sf_hpgmg

type t = {
  dims : int;
  rank_grid : Ivec.t;
  local_n : int;
  shape : Ivec.t;
  grids : Grids.t;
}

let rank_name base r =
  base ^ "@"
  ^ String.concat "_" (List.map string_of_int (Ivec.to_list r))

let ranks t =
  let acc = ref [] in
  let r = Array.make t.dims 0 in
  let rec go axis =
    if axis = t.dims then acc := Array.copy r :: !acc
    else
      for v = 0 to t.rank_grid.(axis) - 1 do
        r.(axis) <- v;
        go (axis + 1)
      done
  in
  go 0;
  List.rev !acc

let mesh_bases dims =
  [ "u"; "f"; "res"; "tmp"; "dinv" ]
  @ List.init dims (fun a -> Nd.beta_name a)

let create ~rank_grid ~local_n =
  let rank_grid = Ivec.of_list rank_grid in
  let dims = Ivec.dims rank_grid in
  if dims < 1 then invalid_arg "Spmd.create: empty rank grid";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Spmd.create: non-positive rank count")
    rank_grid;
  if local_n < 2 || local_n mod 2 <> 0 then
    invalid_arg "Spmd.create: local_n must be even and >= 2";
  let shape = Ivec.make dims (local_n + 2) in
  let t =
    { dims; rank_grid; local_n; shape; grids = Grids.create () }
  in
  List.iter
    (fun r ->
      List.iter
        (fun base ->
          let m = Mesh.create shape in
          if String.length base >= 5 && String.sub base 0 5 = "beta_" then
            Mesh.fill m 1.;
          Grids.add t.grids (rank_name base r) m)
        (mesh_bases dims))
    (ranks t);
  t

let global_n t = t.local_n * t.rank_grid.(0)
let h t = 1. /. float_of_int (global_n t)
let params t = [ ("inv_h2", 1. /. (h t *. h t)) ]

let off dims a v =
  let o = Ivec.zero dims in
  o.(a) <- v;
  o

(* One face of one rank: either a halo copy from the adjacent rank or the
   physical linear-Dirichlet stencil. *)
let face_stencil t ~base r axis side =
  let dims = t.dims in
  let n = t.local_n in
  let lo = Array.make dims 1 and hi = Array.make dims (-1) in
  let my = rank_name base r in
  let plane_dom () =
    Domain.of_rect (Domain.rect ~lo:(Ivec.to_list lo) ~hi:(Ivec.to_list hi) ())
  in
  match side with
  | `Low ->
      lo.(axis) <- 0;
      hi.(axis) <- 1;
      if r.(axis) = 0 then
        Stencil.make
          ~label:(Printf.sprintf "bc_%s_ax%d_lo" my axis)
          ~output:my
          ~expr:(Expr.neg (Expr.read my (off dims axis 1)))
          ~domain:(plane_dom ()) ()
      else begin
        let neighbour = Array.copy r in
        neighbour.(axis) <- r.(axis) - 1;
        Stencil.make
          ~label:(Printf.sprintf "halo_%s_ax%d_lo" my axis)
          ~output:my
          ~expr:(Expr.read (rank_name base neighbour) (off dims axis n))
          ~domain:(plane_dom ()) ()
      end
  | `High ->
      lo.(axis) <- -1;
      hi.(axis) <- 0;
      if r.(axis) = t.rank_grid.(axis) - 1 then
        Stencil.make
          ~label:(Printf.sprintf "bc_%s_ax%d_hi" my axis)
          ~output:my
          ~expr:(Expr.neg (Expr.read my (off dims axis (-1))))
          ~domain:(plane_dom ()) ()
      else begin
        let neighbour = Array.copy r in
        neighbour.(axis) <- r.(axis) + 1;
        Stencil.make
          ~label:(Printf.sprintf "halo_%s_ax%d_hi" my axis)
          ~output:my
          ~expr:(Expr.read (rank_name base neighbour) (off dims axis (-n)))
          ~domain:(plane_dom ()) ()
      end

let exchange_stencils t ~base =
  List.concat_map
    (fun r ->
      List.concat_map
        (fun axis -> [ face_stencil t ~base r axis `Low; face_stencil t ~base r axis `High ])
        (List.init t.dims Fun.id))
    (ranks t)

let per_rank_stencil _t stencil r =
  Stencil.rename_grids (fun g -> rank_name g r) stencil
  |> fun s -> Stencil.relabel s (s.Stencil.label ^ rank_name "" r)

let gsrb_smooth_group t =
  let color c =
    List.map (per_rank_stencil t (Nd.gsrb_color ~dims:t.dims ~color:c)) (ranks t)
  in
  Group.make ~label:"spmd_gsrb"
    (exchange_stencils t ~base:"u"
    @ color 0
    @ exchange_stencils t ~base:"u"
    @ color 1)

let residual_group t =
  Group.make ~label:"spmd_residual"
    (exchange_stencils t ~base:"u"
    @ List.map (per_rank_stencil t (Nd.residual_vc ~dims:t.dims)) (ranks t))

let run_group t group =
  (* ranks share the process-wide persistent pool (SF_WORKERS): one wave of
     per-rank stencils farms out across all ranks at once, like the OpenMP
     backend the paper layers its SPMD future work on *)
  let config =
    Sf_backends.Config.with_workers
      (Sf_backends.Pool.workers (Sf_backends.Pool.global ()))
      Sf_backends.Config.default
  in
  let kernel =
    Sf_backends.Jit.compile ~config Sf_backends.Jit.Openmp ~shape:t.shape
      group
  in
  let invoke () = kernel.Sf_backends.Kernel.run ~params:(params t) t.grids in
  let module Trace = Sf_trace.Trace in
  if Trace.on () then
    Trace.span
      ~args:
        [
          ("group", Trace.Str group.Snowflake.Group.label);
          ("ranks", Trace.Int (List.length (ranks t)));
        ]
      Trace.Phase
      ("spmd:" ^ group.Snowflake.Group.label)
      invoke
  else invoke ()

let init_dinv t =
  run_group t
    (Group.make ~label:"spmd_dinv"
       (List.map (per_rank_stencil t (Nd.dinv_setup ~dims:t.dims)) (ranks t)))

(* physical coordinate of local index l on rank r along axis a *)
let coord t r a l = (float_of_int ((r.(a) * t.local_n) + l) -. 0.5) *. h t

let iter_rank_interior t fn =
  let interior =
    Domain.resolve_rect ~shape:t.shape
      (Domain.rect
         ~lo:(List.init t.dims (fun _ -> 1))
         ~hi:(List.init t.dims (fun _ -> -1))
         ())
  in
  List.iter (fun r -> Domain.iter interior (fun p -> fn r p)) (ranks t)

let fill_interior t ~base fn =
  iter_rank_interior t (fun r p ->
      let coords = Array.mapi (fun a l -> coord t r a l) p in
      Mesh.set (Grids.find t.grids (rank_name base r)) p (fn coords))

let set_beta t beta =
  List.iter
    (fun r ->
      List.iter
        (fun axis ->
          let m = Grids.find t.grids (rank_name (Nd.beta_name axis) r) in
          Mesh.fill_with m (fun p ->
              let coords =
                Array.mapi
                  (fun a l ->
                    if a = axis then
                      float_of_int ((r.(a) * t.local_n) + l - 1) *. h t
                    else coord t r a l)
                  p
              in
              beta coords))
        (List.init t.dims Fun.id))
    (ranks t);
  init_dinv t

let global_shape t =
  Array.init t.dims (fun a -> (t.local_n * t.rank_grid.(a)) + 2)

let gather t ~base =
  let g = Mesh.create (global_shape t) in
  iter_rank_interior t (fun r p ->
      let gp = Array.mapi (fun a l -> (r.(a) * t.local_n) + l) p in
      Mesh.set g gp (Mesh.get (Grids.find t.grids (rank_name base r)) p));
  g

let scatter t ~base global =
  iter_rank_interior t (fun r p ->
      let gp = Array.mapi (fun a l -> (r.(a) * t.local_n) + l) p in
      Mesh.set (Grids.find t.grids (rank_name base r)) p (Mesh.get global gp))
