(** Pipelined SPMD execution over certified bounded channels.

    [Spmd.run_group] is bulk-synchronous: every wave of a sweep ends in a
    global barrier, so rank R's wave N+1 cannot start until every rank has
    finished wave N.  This executor replaces the whole-halo barrier with
    per-plane channel sends à la StencilFlow: each cross-rank halo copy
    becomes a bounded ring buffer sized by the
    {!Sf_analysis.Pipeline_check} certifier, compute is split into
    per-(rank, stage) kernels, and a greedy scheduler runs every rank
    whose next stage has both its input planes and its output ring space
    available — so neighbouring ranks overlap by up to a full sweep.

    The certifier gates execution exactly the way [Schedule_check.certify]
    gates [Jit.compile]: {!create} refuses to build an executor for any
    group the analysis does not certify (raising
    [Sf_backends.Jit.Certification_failed] with the SF031/SF032
    diagnostics), and {!run} re-verifies the ring depths it is about to
    use against the certificate ({!Sf_analysis.Pipeline_check.verify_depths}),
    raising with SF034 diagnostics on any disagreement — which is how the
    [--inject undersize-channel] fault is caught.

    Results are bitwise identical to the bulk-synchronous path at any
    worker count: per-stencil kernels evaluate the same expressions over
    the same data, ring slots are captured exactly when the producing
    stage completes, and concurrent tasks touch disjoint meshes/slots. *)

open Sf_analysis

type t

val certify :
  ?stream_axis:int ->
  ?depth_override:int ->
  ?config:Sf_backends.Config.t ->
  Spmd.t ->
  Snowflake.Group.t ->
  Pipeline_check.certificate option * Diagnostics.t list
(** Run the static analysis for this Spmd instance's shape and the
    config's channel-memory budget ([Config.pipe_budget]) without building
    anything.  [depth_override] forces every channel depth (the knob that
    makes SF031 deadlock witnesses reproducible: [~depth_override:0]). *)

val create :
  ?stream_axis:int ->
  ?depth_override:int ->
  ?config:Sf_backends.Config.t ->
  Spmd.t ->
  Snowflake.Group.t ->
  t
(** Certify the group and build the pipelined executor: ring buffers at
    the certified depths, per-(rank, stage) kernels with channel-consumer
    halo stencils removed.  Raises [Sf_backends.Jit.Certification_failed]
    (backend ["pipeline"]) when certification fails — a plan lacking a
    certificate never runs. *)

val certificate : t -> Pipeline_check.certificate

val run : ?sweeps:int -> t -> unit
(** Execute [sweeps] (default 1) pipelined applications of the group.
    First re-verifies the actual ring depths against the certificate and
    raises [Sf_backends.Jit.Certification_failed] with SF034 diagnostics
    on any disagreement; then primes the delay>0 channels from the current
    grid state and drives the greedy scheduler to completion.  Channel
    traffic is visible as [Channel_sends]/[Channel_stalls] trace counters
    and a ["pipeline:<label>"] span when tracing is on. *)

val inject_undersize : t -> unit
(** Shrink the first channel's ring by one slot {e without} updating the
    certificate — the [undersize-channel] fault.  The next {!run} must
    refuse to execute (SF034), so the shrunken ring is never actually
    used.  Raises [Invalid_argument] if the plan has no channels. *)
