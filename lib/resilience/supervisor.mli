(** Supervised execution: bounded-backoff retry within an ordered failover
    chain.

    {!run} executes the first attempt of an ordered chain; on failure it
    retries that attempt up to [policy.retries] times with bounded
    exponential backoff (transient faults heal here), then moves down the
    chain with a fresh retry budget (persistent faults exhaust a backend
    and fail over), and re-raises the last exception only when the whole
    chain is spent.  [Out_of_memory], [Stack_overflow] and
    [Assert_failure] are never absorbed.

    Every decision is observable: a retry bumps the [Retries] trace
    counter and records a zero-duration ["retry:<name>"] phase marker; a
    failover bumps [Failovers] and records ["failover:<name>"] with
    from/to arguments — so [--profile] shows exactly how a degraded run
    degraded.  The Jit-specific chain (recompiling a stencil group on the
    next backend) is assembled by [Sf_backends.Supervise]. *)

type policy = {
  retries : int;  (** per-attempt retry budget *)
  backoff_us : float;  (** first backoff sleep *)
  backoff_factor : float;
  max_backoff_us : float;
}

val default_policy : policy
(** 2 retries, 200µs initial backoff, ×4 growth, 20ms cap. *)

val run : ?policy:policy -> name:string -> (string * (unit -> 'a)) list -> 'a
(** [run ~name attempts] — [attempts] is the ordered [(label, thunk)]
    chain.  Raises [Invalid_argument] on an empty chain; otherwise returns
    the first successful thunk's value or re-raises the last failure. *)

val retries_total : unit -> int
(** Retries since the last {!reset_counts} (counted even with tracing
    off). *)

val failovers_total : unit -> int
val reset_counts : unit -> unit

(** {2 Per-request failure boundary}

    A long-lived host (the solve server) runs each request under
    {!protect}: any non-fatal exception becomes a structured {!verdict}
    the host can report to that one client, instead of a raised exception
    that would take the whole process down.  Hosts teach the boundary
    their domain-specific exceptions with {!register_classifier}. *)

type verdict = {
  code : string;  (** stable machine-readable class, e.g. ["fault"] *)
  message : string;
  fatal : bool;  (** must not be absorbed — the process is suspect *)
}

val register_classifier : (exn -> verdict option) -> unit
(** Classifiers are consulted newest-first before the built-in fallback
    ([Out_of_memory]/[Stack_overflow]/[Assert_failure] → fatal,
    anything else → ["internal"]). *)

val verdict_of_exn : exn -> verdict

val protect : label:string -> (unit -> 'a) -> ('a, verdict) result
(** Runs [f], turning a non-fatal exception into [Error verdict] (and,
    with tracing on, a ["fault-boundary:<label>"] marker carrying the
    code).  Fatal verdicts re-raise. *)
