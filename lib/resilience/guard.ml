(* Post-wave NaN/Inf guard scans.

   A NaN born in one smoother sweep silently poisons a whole V-cycle; the
   guard catches it at the kernel boundary instead.  Sampling mode checks
   ~1024 strided points per mesh — cheap enough to leave on during a fault
   campaign; SF_GUARD=full scans every point. *)

open Sf_mesh
module Trace = Sf_trace.Trace

type mode = Off | Sample | Full

let mode_name = function Off -> "off" | Sample -> "sample" | Full -> "full"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" | "none" -> Some Off
  | "sample" | "1" | "on" -> Some Sample
  | "full" -> Some Full
  | _ -> None

exception Tripped of { grid : string; index : int; value : float }

let () =
  Printexc.register_printer (function
    | Tripped { grid; index; value } ->
        Some
          (Printf.sprintf
             "Guard.Tripped: non-finite value %h in grid %s at flat index %d"
             value grid index)
    | _ -> None)

let env_mode =
  match Sys.getenv_opt "SF_GUARD" with
  | Some s -> (
      match mode_of_string s with
      | Some m -> Some m
      | None ->
          invalid_arg
            (Printf.sprintf "SF_GUARD=%S: expected off|sample|full" s))
  | None -> None

(* 0 = unset, 1 = Off, 2 = Sample, 3 = Full — one atomic for lock-free
   reads from worker domains *)
let forced = Atomic.make 0

let encode = function Off -> 1 | Sample -> 2 | Full -> 3

let set_mode m = Atomic.set forced (encode m)
let clear_mode () = Atomic.set forced 0

(* Explicit {!set_mode} wins, then SF_GUARD; otherwise sampling is implied
   whenever faults are armed (a chaos run wants its guards up) and scans
   are off entirely on clean runs. *)
let effective () =
  match Atomic.get forced with
  | 1 -> Off
  | 2 -> Sample
  | 3 -> Full
  | _ -> (
      match env_mode with
      | Some m -> m
      | None -> if Fault.armed () then Sample else Off)

let active () = effective () <> Off

let trips_c = Atomic.make 0
let trips_total () = Atomic.get trips_c
let reset_counts () = Atomic.set trips_c 0

let trip ~name i v =
  Atomic.incr trips_c;
  if Trace.on () then begin
    Trace.add Trace.Guard_trips 1;
    Trace.record_span
      ~args:[ ("grid", Trace.Str name); ("index", Trace.Int i) ]
      Trace.Phase ("guard:" ^ name) ~ts_us:(Trace.now_us ()) ~dur_us:0.
  end;
  raise (Tripped { grid = name; index = i; value = v })

let target_samples = 1024

let scan_mesh ?mode ~name m =
  let mode = match mode with Some m -> m | None -> effective () in
  match mode with
  | Off -> ()
  | Full ->
      let n = Mesh.size m in
      for i = 0 to n - 1 do
        let v = Mesh.get_flat m i in
        if not (Float.is_finite v) then trip ~name i v
      done
  | Sample ->
      let n = Mesh.size m in
      if n > 0 then begin
        let stride = max 1 (n / target_samples) in
        let i = ref 0 in
        while !i < n do
          let v = Mesh.get_flat m !i in
          if not (Float.is_finite v) then trip ~name !i v;
          i := !i + stride
        done;
        let v = Mesh.get_flat m (n - 1) in
        if not (Float.is_finite v) then trip ~name (n - 1) v
      end

let scan_grids ?mode grids names =
  let mode = match mode with Some m -> m | None -> effective () in
  if mode <> Off then
    List.iter
      (fun name ->
        match Grids.find_opt grids name with
        | Some m -> scan_mesh ~mode ~name m
        | None -> ())
      names
