(** Faultpoint: the fault-injection substrate of [sf_resilience].

    Production stencil systems treat failure as a first-class input; this
    module lets every subsystem misbehave on purpose.  The execution layer
    registers named fault {e sites} at its choke points:

    - ["kernel"] — [Jit]'s per-invocation kernel wrapper (detail:
      ["<backend>:<group>"])
    - ["chunk"] — pool chunk execution (detail: chunk index)
    - ["wave"] — one backend wave / enqueue (detail: ["<group>/wave<i>"])
    - ["halo"] — an [Spmd] exchange sweep (detail: group label)
    - ["mg"] — a multigrid phase (detail: the profile key, e.g.
      ["smooth L0"])
    - ["rank"] — [Spmd] rank death (detail: rank name)

    A {e clause} arms one (site, kind) pair with optional occurrence and
    probability triggers.  Specs come from [SF_FAULTS] (parsed at load
    time), [Config.faults], the [--faults] CLI flags, or {!arm} directly.

    {b Zero overhead when disarmed:} every site guards with {!armed} —
    one atomic load and a branch — before touching clause state, the same
    discipline [Sf_trace] uses. *)

type kind =
  | Raise  (** persistent exception at the site (every matching occurrence) *)
  | Transient
      (** exception that heals after the clause's firing budget (default 3)
          — what supervised retry is designed to absorb *)
  | Nan_poison  (** the caller poisons freshly written data with NaN *)
  | Inf_poison
  | Kill_rank  (** [Spmd]: mark the rank dead and poison its meshes *)
  | Delay of float  (** sleep this many seconds (slow-chunk injection) *)

val kind_name : kind -> string

exception Injected of { site : string; kind : kind; detail : string }
(** Raised by {!fire} for [Raise]/[Transient] clauses; the supervisor
    treats it like any kernel failure (retry, then failover). *)

type clause = {
  site : string;
  kind : kind;
  prob : float option;  (** [@p=] per-occurrence probability *)
  nth : int option;  (** [@n=] fire exactly on the n-th occurrence *)
  count : int;  (** [@count=] max firings; [-1] = unlimited *)
  matches : string option;  (** [@match=] substring the detail must contain *)
  seed : int;  (** [@seed=] for the probability draw *)
  occ : int Atomic.t;
  fired : int Atomic.t;
}

(** {2 Spec grammar}

    {[
      spec   ::= clause (',' clause)*
      clause ::= site ':' kind ('@' key '=' value)*
      kind   ::= raise | transient | nan | inf | kill | delay=SECONDS
      key    ::= p | n | count | seed | match     -- count accepts "inf"
    ]}

    Example: [SF_FAULTS="kernel:raise@match=openmp,wave:transient@n=2"]
    persistently fails every OpenMP kernel invocation (exercising backend
    failover) and raises a healing transient at the second wave.  [count]
    defaults: [raise] unlimited, [transient] 3, everything else 1.  The
    probability draw is a pure function of (seed, occurrence) — splitmix64
    — so campaigns replay deterministically. *)

val parse : string -> (clause list, string) result
val to_string : clause list -> string

(** {2 Arming} *)

val armed : unit -> bool
(** One [Atomic.get] — the guard every fault site uses. *)

val arm : clause list -> unit
(** Replace the armed clause set ([[]] disarms). *)

val arm_string : string -> (unit, string) result
val arm_exn : string -> unit
(** Raises [Invalid_argument] on a malformed spec.  Run at module load for
    [SF_FAULTS]. *)

val disarm : unit -> unit

val spec : unit -> string
(** Re-render the armed clause set. *)

(** {2 Triggering} *)

val check : site:string -> detail:string -> kind option
(** Consult the armed clauses for [site]: each matching clause counts one
    occurrence and fires per its triggers and budget.  Firing bumps the
    [Faults_injected] trace counter and records a zero-duration
    ["fault:<site>:<kind>"] phase marker (when tracing is on).  Returns the
    kind the caller must act on; [None] when nothing fires. *)

val fire : site:string -> detail:string -> kind option
(** {!check}, then: [Raise]/[Transient] raise {!Injected}; [Delay] sleeps
    before returning.  Poison/kill kinds are returned for the caller to
    apply — only the site knows which meshes to corrupt. *)

val injected_total : unit -> int
(** Faults injected since the last {!reset_counts} (process-wide, counted
    even with tracing off). *)

val reset_counts : unit -> unit
