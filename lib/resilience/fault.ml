(* Faultpoint: named, seeded, probability/occurrence-triggered fault sites.

   The execution layer registers a handful of choke points — "kernel"
   (Jit's kernel wrapper), "chunk" (pool chunk execution), "wave" (backend
   waves), "halo" (Spmd exchange sweeps), "mg" (multigrid phases), "rank"
   (Spmd rank death) — and consults the armed clause set on each pass.
   When nothing is armed, every site costs one atomic load and a branch,
   mirroring the sf_trace discipline. *)

module Trace = Sf_trace.Trace

type kind =
  | Raise
  | Transient
  | Nan_poison
  | Inf_poison
  | Kill_rank
  | Delay of float

let kind_name = function
  | Raise -> "raise"
  | Transient -> "transient"
  | Nan_poison -> "nan"
  | Inf_poison -> "inf"
  | Kill_rank -> "kill"
  | Delay s -> Printf.sprintf "delay=%g" s

exception Injected of { site : string; kind : kind; detail : string }

let () =
  Printexc.register_printer (function
    | Injected { site; kind; detail } ->
        Some
          (Printf.sprintf "Fault.Injected: %s fault at site %s (%s)"
             (kind_name kind) site detail)
    | _ -> None)

type clause = {
  site : string;
  kind : kind;
  prob : float option;  (* @p= per-occurrence probability *)
  nth : int option;  (* @n= fire exactly on the n-th occurrence *)
  count : int;  (* @count= max firings; -1 = unlimited *)
  matches : string option;  (* @match= substring the detail must contain *)
  seed : int;  (* @seed= for the probability draw *)
  occ : int Atomic.t;
  fired : int Atomic.t;
}

(* -------------------------------------------------------------- parsing *)

(* spec   ::= clause (',' clause)*
   clause ::= site ':' kind ('@' key '=' value)*
   kind   ::= raise | transient | nan | inf | kill | delay=SECONDS
   key    ::= p | n | count | seed | match          (count accepts "inf") *)

let default_count = function
  | Raise -> -1 (* persistent: every matching occurrence faults *)
  | Transient -> 3 (* heals after three firings — what retry absorbs *)
  | _ -> 1

let parse_kind s =
  match s with
  | "raise" -> Ok Raise
  | "transient" -> Ok Transient
  | "nan" -> Ok Nan_poison
  | "inf" -> Ok Inf_poison
  | "kill" -> Ok Kill_rank
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "delay" -> (
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt v with
          | Some f when f >= 0. -> Ok (Delay f)
          | _ -> Error (Printf.sprintf "bad delay %S" v))
      | _ ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (raise|transient|nan|inf|kill|delay=S)" s))

let parse_clause text =
  match String.split_on_char '@' (String.trim text) with
  | [] | [ "" ] -> Error "empty clause"
  | head :: params -> (
      match String.index_opt head ':' with
      | None -> Error (Printf.sprintf "clause %S lacks site:kind" head)
      | Some i -> (
          let site = String.trim (String.sub head 0 i) in
          let kind_s =
            String.trim (String.sub head (i + 1) (String.length head - i - 1))
          in
          if site = "" then Error (Printf.sprintf "clause %S lacks a site" text)
          else
            match parse_kind kind_s with
            | Error e -> Error e
            | Ok kind -> (
                let init =
                  {
                    site;
                    kind;
                    prob = None;
                    nth = None;
                    count = default_count kind;
                    matches = None;
                    seed = 1;
                    occ = Atomic.make 0;
                    fired = Atomic.make 0;
                  }
                in
                let apply acc p =
                  match acc with
                  | Error _ -> acc
                  | Ok c -> (
                      match String.index_opt p '=' with
                      | None -> Error (Printf.sprintf "bad parameter %S" p)
                      | Some j -> (
                          let key = String.sub p 0 j in
                          let v =
                            String.sub p (j + 1) (String.length p - j - 1)
                          in
                          match key with
                          | "p" -> (
                              match float_of_string_opt v with
                              | Some f when f >= 0. && f <= 1. ->
                                  Ok { c with prob = Some f }
                              | _ -> Error (Printf.sprintf "bad p=%S" v))
                          | "n" -> (
                              match int_of_string_opt v with
                              | Some n when n >= 1 -> Ok { c with nth = Some n }
                              | _ -> Error (Printf.sprintf "bad n=%S" v))
                          | "count" -> (
                              if v = "inf" then Ok { c with count = -1 }
                              else
                                match int_of_string_opt v with
                                | Some n when n >= 0 -> Ok { c with count = n }
                                | _ -> Error (Printf.sprintf "bad count=%S" v))
                          | "seed" -> (
                              match int_of_string_opt v with
                              | Some n -> Ok { c with seed = n }
                              | _ -> Error (Printf.sprintf "bad seed=%S" v))
                          | "match" ->
                              if v = "" then Error "empty match="
                              else Ok { c with matches = Some v }
                          | _ ->
                              Error
                                (Printf.sprintf
                                   "unknown parameter %S (p|n|count|seed|match)"
                                   key)))
                in
                List.fold_left apply (Ok init) params)))

let parse spec =
  let parts =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  if parts = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match parse_clause p with
          | Ok c -> go (c :: acc) rest
          | Error e -> Error (Printf.sprintf "clause %S: %s" p e))
    in
    go [] parts

let clause_to_string c =
  let b = Buffer.create 32 in
  Buffer.add_string b (c.site ^ ":" ^ kind_name c.kind);
  Option.iter (fun p -> Buffer.add_string b (Printf.sprintf "@p=%g" p)) c.prob;
  Option.iter (fun n -> Buffer.add_string b (Printf.sprintf "@n=%d" n)) c.nth;
  if c.count <> default_count c.kind then
    Buffer.add_string b
      (if c.count < 0 then "@count=inf" else Printf.sprintf "@count=%d" c.count);
  Option.iter (fun m -> Buffer.add_string b ("@match=" ^ m)) c.matches;
  if c.seed <> 1 then Buffer.add_string b (Printf.sprintf "@seed=%d" c.seed);
  Buffer.contents b

let to_string clauses = String.concat "," (List.map clause_to_string clauses)

(* ------------------------------------------------------------- arming *)

let armed_flag = Atomic.make false
let clauses : clause list Atomic.t = Atomic.make []
let injected_c = Atomic.make 0

let armed () = Atomic.get armed_flag

let arm cs =
  Atomic.set clauses cs;
  Atomic.set armed_flag (cs <> [])

let disarm () = arm []
let spec () = to_string (Atomic.get clauses)

let arm_string s =
  match parse s with
  | Ok cs ->
      arm cs;
      Ok ()
  | Error e -> Error e

let arm_exn s =
  match arm_string s with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Fault.arm: bad SF_FAULTS spec: %s" e)

let () =
  match Sys.getenv_opt "SF_FAULTS" with
  | Some s when String.trim s <> "" -> arm_exn s
  | _ -> ()

let injected_total () = Atomic.get injected_c
let reset_counts () = Atomic.set injected_c 0

(* ------------------------------------------------------------ triggering *)

(* splitmix64 finalizer: the probability draw is a pure function of
   (seed, occurrence), so campaigns replay identically regardless of which
   domain reaches the site — only the interleaving of the occurrence
   counter is scheduling-dependent. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let uniform ~seed ~occ =
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int occ))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0

let note_injection c ~site ~detail =
  Atomic.incr injected_c;
  if Trace.on () then begin
    Trace.add Trace.Faults_injected 1;
    Trace.record_span
      ~args:
        [
          ("kind", Trace.Str (kind_name c.kind));
          ("detail", Trace.Str detail);
        ]
      Trace.Phase
      ("fault:" ^ site ^ ":" ^ kind_name c.kind)
      ~ts_us:(Trace.now_us ()) ~dur_us:0.
  end

let check ~site ~detail =
  if not (Atomic.get armed_flag) then None
  else
    let rec go = function
      | [] -> None
      | c :: rest ->
          if
            c.site <> site
            || match c.matches with
               | Some m -> not (contains ~sub:m detail)
               | None -> false
          then go rest
          else
            let occ = 1 + Atomic.fetch_and_add c.occ 1 in
            let triggered =
              (c.count < 0 || Atomic.get c.fired < c.count)
              && (match c.nth with Some n -> occ = n | None -> true)
              && match c.prob with
                 | Some p -> uniform ~seed:c.seed ~occ < p
                 | None -> true
            in
            if triggered then begin
              Atomic.incr c.fired;
              note_injection c ~site ~detail;
              Some c.kind
            end
            else go rest
    in
    go (Atomic.get clauses)

let fire ~site ~detail =
  match check ~site ~detail with
  | None -> None
  | Some ((Raise | Transient) as kind) -> raise (Injected { site; kind; detail })
  | Some (Delay s) ->
      Unix.sleepf s;
      Some (Delay s)
  | Some kind -> Some kind
