(* Copy-on-checkpoint ring of k reusable snapshot buffers.

   The client supplies alloc/save/restore over its own state type, so the
   ring never learns about meshes or levels; Mg checkpoints only the
   level-0 solution mesh (everything coarser is recomputed each V-cycle).
   Buffers are allocated once, lazily, and reused round-robin — a
   checkpoint at capacity overwrites the oldest snapshot in place rather
   than allocating. *)

module Trace = Sf_trace.Trace

type 'a t = {
  label : string;
  capacity : int;
  alloc : unit -> 'a;
  save : 'a -> unit;
  restore : 'a -> unit;
  (* newest-first ring of (tag, buffer); length <= capacity *)
  mutable ring : (int * 'a) list;
  mutable taken : int;
  mutable rollbacks : int;
}

let rollbacks_c = Atomic.make 0
let rollbacks_total () = Atomic.get rollbacks_c
let reset_counts () = Atomic.set rollbacks_c 0

let create ?(capacity = 3) ?(label = "ckpt") ~alloc ~save ~restore () =
  if capacity < 1 then invalid_arg "Checkpoint.create: capacity < 1";
  { label; capacity; alloc; save; restore; ring = []; taken = 0; rollbacks = 0 }

let depth t = List.length t.ring
let taken t = t.taken
let rollbacks t = t.rollbacks

let marker t name ~tag =
  Trace.record_span
    ~args:[ ("tag", Trace.Int tag); ("depth", Trace.Int (depth t)) ]
    Trace.Phase
    (name ^ ":" ^ t.label)
    ~ts_us:(Trace.now_us ()) ~dur_us:0.

(* Reuse the oldest buffer once at capacity; otherwise allocate. *)
let checkpoint t ~tag =
  let buf, rest =
    if depth t >= t.capacity then
      match List.rev t.ring with
      | (_, oldest) :: _ ->
          let rest =
            List.filteri (fun i _ -> i < t.capacity - 1) t.ring
          in
          (oldest, rest)
      | [] -> assert false
    else (t.alloc (), t.ring)
  in
  t.save buf;
  t.ring <- (tag, buf) :: rest;
  t.taken <- t.taken + 1;
  if Trace.on () then marker t "checkpoint" ~tag

let latest t = match t.ring with [] -> None | (tag, _) :: _ -> Some tag

(* Restore the newest snapshot; it stays in the ring so repeated rollbacks
   to the same point are allowed (use discard_latest to roll further). *)
let rollback t =
  match t.ring with
  | [] -> None
  | (tag, buf) :: _ ->
      t.restore buf;
      t.rollbacks <- t.rollbacks + 1;
      Atomic.incr rollbacks_c;
      if Trace.on () then begin
        Trace.add Trace.Rollbacks 1;
        marker t "rollback" ~tag
      end;
      Some tag

let discard_latest t =
  match t.ring with
  | [] -> ()
  | _ :: rest -> t.ring <- rest
