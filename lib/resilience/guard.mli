(** Post-wave NaN/Inf guard scans.

    The supervisor runs a scan over a kernel's output grids after each
    invocation, so a NaN born in one sweep is caught at the kernel
    boundary instead of poisoning a whole V-cycle.  Two intensities:
    [Sample] checks ~1024 strided points per mesh (plus the last point),
    [Full] checks every point ([SF_GUARD=full]).

    Guards are {b off by default} on clean runs: with no explicit mode and
    no armed faults, {!effective} is [Off] and the supervisor adds nothing
    to the hot path.  Arming any fault clause implies [Sample]. *)

open Sf_mesh

type mode = Off | Sample | Full

val mode_name : mode -> string
val mode_of_string : string -> mode option

exception Tripped of { grid : string; index : int; value : float }
(** Raised when a scan finds a non-finite value; a [Guard_trips] trace
    counter increment and a zero-duration ["guard:<grid>"] phase marker
    record the detection. *)

val set_mode : mode -> unit
(** Force the mode (the [--guard] CLI flag); wins over [SF_GUARD]. *)

val clear_mode : unit -> unit

val effective : unit -> mode
(** {!set_mode} if forced, else [SF_GUARD], else [Sample] when
    {!Fault.armed}, else [Off]. *)

val active : unit -> bool
(** [effective () <> Off]. *)

val scan_mesh : ?mode:mode -> name:string -> Mesh.t -> unit
(** Scan one mesh (default mode {!effective}); raises {!Tripped} on the
    first non-finite value. *)

val scan_grids : ?mode:mode -> Grids.t -> string list -> unit
(** Scan the named grids (missing names are skipped — DCE may have removed
    an output). *)

val trips_total : unit -> int
(** Trips since the last {!reset_counts} (counted even with tracing
    off). *)

val reset_counts : unit -> unit
