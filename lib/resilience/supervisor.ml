(* Supervised execution: bounded-backoff retry within an ordered failover
   chain of attempts.  The generic machinery lives here; the Jit-specific
   glue (compiling the same stencil group on the next backend) is
   [Sf_backends.Supervise]. *)

module Trace = Sf_trace.Trace

type policy = {
  retries : int;
  backoff_us : float;
  backoff_factor : float;
  max_backoff_us : float;
}

let default_policy =
  { retries = 2; backoff_us = 200.; backoff_factor = 4.; max_backoff_us = 20_000. }

let retries_c = Atomic.make 0
let failovers_c = Atomic.make 0
let retries_total () = Atomic.get retries_c
let failovers_total () = Atomic.get failovers_c

let reset_counts () =
  Atomic.set retries_c 0;
  Atomic.set failovers_c 0

(* Runtime-state corruption must not be absorbed by the failover chain. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ -> true
  | _ -> false

let marker ~args name =
  Trace.record_span ~args Trace.Phase name ~ts_us:(Trace.now_us ()) ~dur_us:0.

let note_retry ~name ~attempt ~n e =
  Atomic.incr retries_c;
  if Trace.on () then begin
    Trace.add Trace.Retries 1;
    marker
      ~args:
        [
          ("attempt", Trace.Str attempt);
          ("try", Trace.Int n);
          ("error", Trace.Str (Printexc.to_string e));
        ]
      ("retry:" ^ name)
  end

let note_failover ~name ~from ~to_ e =
  Atomic.incr failovers_c;
  if Trace.on () then begin
    Trace.add Trace.Failovers 1;
    marker
      ~args:
        [
          ("from", Trace.Str from);
          ("to", Trace.Str to_);
          ("error", Trace.Str (Printexc.to_string e));
        ]
      ("failover:" ^ name)
  end

(* ------------------------------------------ per-request failure boundary *)

type verdict = { code : string; message : string; fatal : bool }

let classifiers : (exn -> verdict option) list ref = ref []
let register_classifier f = classifiers := f :: !classifiers

let verdict_of_exn e =
  let rec first = function
    | [] -> None
    | f :: rest -> ( match f e with Some v -> Some v | None -> first rest)
  in
  match first !classifiers with
  | Some v -> v
  | None -> (
      match e with
      | Out_of_memory | Stack_overflow | Assert_failure _ ->
          { code = "fatal"; message = Printexc.to_string e; fatal = true }
      | Invalid_argument m | Failure m ->
          { code = "internal"; message = m; fatal = false }
      | e ->
          { code = "internal"; message = Printexc.to_string e; fatal = false })

let protect ~label f =
  match f () with
  | v -> Ok v
  | exception e ->
      let v = verdict_of_exn e in
      if v.fatal then raise e;
      if Trace.on () then
        marker
          ~args:
            [ ("code", Trace.Str v.code); ("error", Trace.Str v.message) ]
          ("fault-boundary:" ^ label);
      Error v

let run ?(policy = default_policy) ~name attempts =
  if attempts = [] then invalid_arg "Supervisor.run: empty attempt chain";
  let rec attempt = function
    | [] -> assert false
    | (aname, thunk) :: rest ->
        let rec tries n backoff =
          try thunk () with
          | e when fatal e -> raise e
          | e ->
              if n < policy.retries then begin
                note_retry ~name ~attempt:aname ~n:(n + 1) e;
                if backoff > 0. then Unix.sleepf (backoff *. 1e-6);
                tries (n + 1)
                  (Float.min (backoff *. policy.backoff_factor)
                     policy.max_backoff_us)
              end
              else
                match rest with
                | [] -> raise e
                | (next, _) :: _ ->
                    note_failover ~name ~from:aname ~to_:next e;
                    attempt rest
        in
        tries 0 policy.backoff_us
  in
  attempt attempts
