(** Copy-on-checkpoint ring of [k] reusable snapshot buffers.

    The client supplies [alloc]/[save]/[restore] over its own state type
    (Mg snapshots the level-0 solution mesh with [Mesh.blit]); the ring
    allocates each buffer once, lazily, and at capacity overwrites the
    oldest snapshot in place — a checkpoint never allocates after the ring
    is warm.

    Every rollback bumps the [Rollbacks] trace counter and records a
    zero-duration ["rollback:<label>"] phase marker, so [--profile] shows
    when and how often a run rewound. *)

type 'a t

val create :
  ?capacity:int ->
  ?label:string ->
  alloc:(unit -> 'a) ->
  save:('a -> unit) ->
  restore:('a -> unit) ->
  unit ->
  'a t
(** [capacity] defaults to 3 snapshots; [label] (default ["ckpt"]) names
    the trace markers.  Raises [Invalid_argument] if [capacity < 1]. *)

val checkpoint : 'a t -> tag:int -> unit
(** Save current state into the ring under [tag] (e.g. the cycle number),
    reusing the oldest buffer when at capacity. *)

val rollback : 'a t -> int option
(** Restore the newest snapshot and return its tag, or [None] if the ring
    is empty.  The snapshot {e stays} in the ring, so a later failure can
    roll back to the same point; use {!discard_latest} to rewind
    further. *)

val discard_latest : 'a t -> unit
(** Drop the newest snapshot (without restoring), exposing the one
    beneath it to {!rollback}. *)

val latest : 'a t -> int option
(** Tag of the newest snapshot. *)

val depth : 'a t -> int
(** Snapshots currently held. *)

val taken : 'a t -> int
(** Checkpoints taken over this ring's lifetime. *)

val rollbacks : 'a t -> int
(** Rollbacks performed on this ring. *)

val rollbacks_total : unit -> int
(** Process-wide rollbacks since the last {!reset_counts} (counted even
    with tracing off). *)

val reset_counts : unit -> unit
