open Sf_util

type t = {
  label : string;
  output : string;
  out_map : Affine.t;
  expr : Expr.t;
  domain : Domain.t;
}

let counter = ref 0

let make ?label ?out_map ~output ~expr ~domain () =
  let expr = Expr.simplify expr in
  let label =
    match label with
    | Some l -> l
    | None ->
        incr counter;
        Printf.sprintf "stencil_%d" !counter
  in
  let rank =
    match Domain.dims domain with
    | None -> invalid_arg "Stencil.make: empty domain union"
    | Some n -> n
  in
  (match Expr.dims expr with
  | Some m when m <> rank ->
      invalid_arg
        (Printf.sprintf
           "Stencil.make(%s): expression rank %d but domain rank %d" label m
           rank)
  | Some _ | None -> ());
  let out_map =
    match out_map with None -> Affine.identity rank | Some m -> m
  in
  if Affine.dims out_map <> rank then
    invalid_arg
      (Printf.sprintf "Stencil.make(%s): out_map rank mismatch" label);
  Array.iter
    (fun s ->
      if s <= 0 then
        invalid_arg
          (Printf.sprintf
             "Stencil.make(%s): out_map scale must be strictly positive" label))
    out_map.Affine.scale;
  { label; output; out_map; expr; domain }

let reads t = Expr.reads t.expr
let grids_read t = Expr.grids t.expr
let grids t = List.sort_uniq String.compare (t.output :: grids_read t)
let is_in_place t = List.mem t.output (grids_read t)

let dims t =
  match Domain.dims t.domain with
  | Some n -> n
  | None -> assert false (* excluded by [make] *)

let radius t =
  List.fold_left
    (fun acc (_, m) ->
      if Affine.is_unit_scale m then max acc (Ivec.linf_norm m.Affine.offset)
      else acc)
    0 (reads t)

let equal a b =
  String.equal a.output b.output
  && Affine.equal a.out_map b.out_map
  && Expr.equal a.expr b.expr
  && Domain.equal a.domain b.domain

let hash t =
  Hashc.combine
    (Hashc.combine3 (Hashc.string t.output) (Expr.hash t.expr)
       (Domain.hash t.domain))
    (Affine.hash t.out_map)

let pp ppf t =
  if Affine.is_identity t.out_map then
    Format.fprintf ppf "@[<hov 2>%s:@ %s <- %a@ over %a@]" t.label t.output
      Expr.pp t.expr Domain.pp t.domain
  else
    Format.fprintf ppf "@[<hov 2>%s:@ %s[%a] <- %a@ over %a@]" t.label
      t.output Affine.pp t.out_map Expr.pp t.expr Domain.pp t.domain

let rename_output t output = { t with output }

let with_expr t expr =
  make ~label:t.label ~out_map:t.out_map ~output:t.output ~expr
    ~domain:t.domain ()

let with_domain t domain =
  make ~label:t.label ~out_map:t.out_map ~output:t.output ~expr:t.expr ~domain
    ()

let rename_grids f t =
  { t with output = f t.output; expr = Expr.rename_grids f t.expr }
let relabel t label = { t with label }
