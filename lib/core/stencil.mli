(** Stencil operators: an expression applied over a domain, writing a grid.

    This is the paper's [Stencil] element: it associates a component
    expression, an output grid (which may also be read — in-place stencils
    such as GSRB are first-class), and a [RectDomain]/[DomainUnion].  The
    write position is an affine image of the iteration point ([out_map],
    identity by default); non-identity maps express interpolation, where the
    iteration runs over the coarse index space but writes the fine grid.
    Compilation to an executable kernel lives in [Sf_backends]; this module
    is the pure description plus the structural queries used by the
    analysis. *)

type t = private {
  label : string;  (** human-readable, used in logs, schedules, codegen *)
  output : string;  (** name of the grid written *)
  out_map : Affine.t;  (** iteration point ↦ output index *)
  expr : Expr.t;
  domain : Domain.t;
}

val make :
  ?label:string ->
  ?out_map:Affine.t ->
  output:string ->
  expr:Expr.t ->
  domain:Domain.t ->
  unit ->
  t
(** Validates rank agreement between the expression's reads, the [out_map]
    and the domain; raises [Invalid_argument] on mismatch or an empty domain
    union.  The expression is simplified.  [out_map] defaults to the
    identity; its scale entries must be strictly positive (every iteration
    point must write a distinct cell). *)

val reads : t -> (string * Affine.t) list
(** Deduplicated (grid, index map) reads of the expression. *)

val grids_read : t -> string list

val grids : t -> string list
(** All grids touched, including the output. *)

val is_in_place : t -> bool
(** True when the output grid is also read. *)

val dims : t -> int
(** Rank of the iteration space. *)

val radius : t -> int
(** Max L∞ offset over unit-scale reads; the halo an ordinary stencil
    needs.  Non-unit-scale reads are ignored (their reach depends on the
    domain, not a fixed halo). *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val rename_output : t -> string -> t
(** Same stencil writing a different grid (used to make in-place stencils
    out-of-place for oracle comparisons). *)

val with_expr : t -> Expr.t -> t
(** Same stencil with a replacement expression, revalidated through
    {!make} (the fuzzer's shrinker rewrites expressions this way). *)

val with_domain : t -> Domain.t -> t
(** Same stencil over a replacement domain, revalidated through
    {!make}. *)

val rename_grids : (string -> string) -> t -> t
(** Apply a grid-name substitution to the output and every read — the
    SPMD idiom: one stencil description instantiated per rank. *)

val relabel : t -> string -> t
