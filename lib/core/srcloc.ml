type part =
  | Whole
  | Output
  | Read of string
  | Domain
  | Param of string

type t = {
  group : string option;
  stencil : string option;
  index : int option;
  part : part;
}

let group g = { group = Some g; stencil = None; index = None; part = Whole }

let stencil ?group ?index ?(part = Whole) label =
  { group; stencil = Some label; index; part }

let part_to_string = function
  | Whole -> ""
  | Output -> "output"
  | Read g -> "read " ^ g
  | Domain -> "domain"
  | Param p -> "param " ^ p

let to_string t =
  let buf = Buffer.create 32 in
  (match t.group with
  | Some g ->
      Buffer.add_string buf g;
      if t.stencil <> None then Buffer.add_char buf '/'
  | None -> ());
  (match t.stencil with
  | Some s -> Buffer.add_string buf s
  | None -> ());
  (match t.part with
  | Whole -> ()
  | p ->
      Buffer.add_char buf '#';
      Buffer.add_string buf (part_to_string p));
  match Buffer.contents buf with "" -> "<program>" | s -> s

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare a b =
  let c =
    Option.compare String.compare a.group b.group
  in
  if c <> 0 then c
  else
    let c = Option.compare Int.compare a.index b.index in
    if c <> 0 then c
    else
      let c = Option.compare String.compare a.stencil b.stencil in
      if c <> 0 then c else Stdlib.compare a.part b.part
