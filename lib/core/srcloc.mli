(** Logical source locations inside a stencil program.

    Snowflake programs have no file/line provenance of their own — a group
    is built either from the embedded OCaml DSL or from an s-expression
    file — so a "location" is the structural path the scientist thinks in:
    group → stencil → part of the stencil (the output write, one read, the
    domain, a parameter).  Every diagnostic the analyzer emits carries one
    of these, and the renderers in [Sf_analysis.Diagnostics] print them as
    [group/stencil#part]. *)

type part =
  | Whole  (** the stencil as a unit *)
  | Output  (** the write through [out_map] *)
  | Read of string  (** a read of the named grid *)
  | Domain  (** the iteration domain / domain union *)
  | Param of string  (** a scalar parameter occurrence *)

type t = {
  group : string option;
  stencil : string option;
  index : int option;  (** position of the stencil within its group *)
  part : part;
}

val group : string -> t
(** The group as a whole (no stencil). *)

val stencil : ?group:string -> ?index:int -> ?part:part -> string -> t
(** A stencil (by label), optionally qualified by group and position. *)

val part_to_string : part -> string
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** [group/stencil#part]; omitted levels are skipped, [Whole] prints no
    [#part] suffix. *)

val compare : t -> t -> int
(** Program order: by stencil index first (groups sort by name). *)
