(** A minimal JSON value type with a renderer and parser.

    Just enough JSON for the Chrome [trace_event] exporter and its
    round-trip tests — no dependency on external JSON packages.  The
    renderer prints floats so that [of_string (to_string v)] reproduces
    [v] exactly; the parser accepts arbitrary well-formed JSON (escapes
    included), decoding [\uXXXX] below 128 to the ASCII character and
    anything above to ['?'] (trace payloads in this repository are
    ASCII). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries the byte
    offset of the first offending character. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare in order, numbers bitwise
    (NaN equals NaN). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)
