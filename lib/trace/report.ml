open Sf_util

let fmt_count v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let fmt_secs us =
  let s = us /. 1e6 in
  if s < 1e-4 then Printf.sprintf "%.1f us" us
  else if s < 1. then Printf.sprintf "%.4f s" s
  else Printf.sprintf "%.3f s" s

let summary_table ?machine () =
  let bw =
    match machine with
    | Some m -> m.Sf_roofline.Machine.bandwidth_gbs
    | None -> Trace.bandwidth_gbs ()
  in
  let t =
    Tabular.create
      ~headers:
        [
          "span"; "kind"; "calls"; "total"; "cells"; "flops"; "bytes";
          "AI"; "GB/s"; "%peak";
        ]
  in
  List.iter
    (fun (a : Trace.agg) ->
      let secs = a.Trace.total_us /. 1e6 in
      let joined = a.Trace.abytes > 0. && secs > 0. in
      let ai =
        if joined && a.Trace.aflops > 0. then
          Printf.sprintf "%.3f" (a.Trace.aflops /. a.Trace.abytes)
        else ""
      in
      let gbs =
        if joined then Printf.sprintf "%.2f" (a.Trace.abytes /. secs /. 1e9)
        else ""
      in
      let peak =
        if joined && bw > 0. then
          Printf.sprintf "%.1f%%"
            (100. *. (a.Trace.abytes /. (bw *. 1e9)) /. secs)
        else ""
      in
      Tabular.add_row t
        [
          a.Trace.aname;
          Trace.kind_name a.Trace.akind;
          string_of_int a.Trace.calls;
          fmt_secs a.Trace.total_us;
          (if a.Trace.acells > 0. then fmt_count a.Trace.acells else "");
          (if a.Trace.aflops > 0. then fmt_count a.Trace.aflops else "");
          (if a.Trace.abytes > 0. then fmt_count a.Trace.abytes else "");
          ai;
          gbs;
          peak;
        ])
    (Trace.summary ());
  Tabular.render t

let counters_line () =
  let c = Trace.counters () in
  let base =
    Printf.sprintf
      "%d cell(s) updated; %d chunk(s) dispatched (%d stolen), %d inline \
       fallback(s); jit cache %d hit(s) / %d miss(es)"
      c.Trace.cells_updated c.Trace.chunks_dispatched c.Trace.chunks_stolen
      c.Trace.inline_fallbacks c.Trace.cache_hits c.Trace.cache_misses
  in
  (* The resilience line only appears when something resilience-related
     actually happened — clean profiles stay byte-identical to before. *)
  if
    c.Trace.faults_injected + c.Trace.retries + c.Trace.failovers
    + c.Trace.rollbacks + c.Trace.guard_trips + c.Trace.tasks_skipped
    + c.Trace.rank_recoveries
    > 0
  then
    base
    ^ Printf.sprintf
        "; resilience: %d fault(s) injected, %d retry(ies), %d failover(s), \
         %d rollback(s), %d guard trip(s), %d task(s) skipped, %d rank \
         recovery(ies)"
        c.Trace.faults_injected c.Trace.retries c.Trace.failovers
        c.Trace.rollbacks c.Trace.guard_trips c.Trace.tasks_skipped
        c.Trace.rank_recoveries
  else base

let counters_line () =
  let c = Trace.counters () in
  let base = counters_line () in
  (* like the resilience segment: only sessions that consulted the tuning
     DB grow the extra segment *)
  if c.Trace.tune_db_hits + c.Trace.tune_db_misses > 0 then
    base
    ^ Printf.sprintf "; tuning db %d hit(s) / %d miss(es)"
        c.Trace.tune_db_hits c.Trace.tune_db_misses
  else base

let counters_line () =
  let c = Trace.counters () in
  let base = counters_line () in
  (* only pipelined-Spmd sessions grow the channel segment *)
  if c.Trace.channel_sends + c.Trace.channel_stalls > 0 then
    base
    ^ Printf.sprintf "; pipeline %d plane send(s) / %d stall(s)"
        c.Trace.channel_sends c.Trace.channel_stalls
  else base

let print_summary ?machine () =
  print_string (summary_table ?machine ());
  print_newline ();
  Printf.printf "counters: %s\n" (counters_line ());
  let d = Trace.dropped () in
  if d > 0 then
    Printf.printf "warning: %d span(s) dropped (event buffer full)\n" d
