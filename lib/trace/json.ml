type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ rendering *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if Float.is_nan v || Float.abs v = Float.infinity then "0"
    (* JSON has no NaN/inf; traces never produce them, but never emit
       an unparseable document either *)
  else
    (* shortest representation that round-trips the float exactly *)
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let to_string v =
  let buf = Buffer.create 4096 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s -> escape_into buf s
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_into buf k;
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   Buffer.add_char buf
                     (if code < 128 then Char.chr code else '?')
               | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
    else Ok v
  with Fail (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

(* -------------------------------------------------------------- queries *)

let num_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> Bool.equal a b
  | Num a, Num b -> num_equal a b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.equal equal a b
  | Obj a, Obj b ->
      List.equal
        (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
        a b
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
