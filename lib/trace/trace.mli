(** sf_trace: a structured tracing and metrics substrate.

    The paper evaluates Snowflake by profiling every (operation, level)
    pair of an HPGMG solve and comparing it against machine limits.  This
    module makes that accounting a property of the runtime rather than of
    hand-inserted timers: the JIT, the backend executors, the domain pool,
    [Spmd] and [Mg] all report spans and counters here, so every kernel
    invocation is attributed to its stencil group, wave and backend without
    user code changes.

    {b Zero overhead when off.}  Tracing is disabled by default; every
    instrumentation site in a hot path is guarded by {!on} — a single load
    of one [Atomic.t] and a branch.  No argument lists are built, no
    closures allocated and no locks taken unless tracing is enabled
    ([SF_TRACE=1] in the environment, [Config.trace], the [--trace] CLI
    flags, or {!set_enabled}).  A dedicated test asserts the disabled-mode
    bound.

    When enabled, completed spans are appended to a process-global buffer
    (mutex-protected; safe from worker domains) and can be exported as a
    Chrome [trace_event] JSON document ([chrome://tracing], Perfetto) or
    aggregated into the roofline-joined summary of {!Report}. *)

(** Span taxonomy — the choke points of the runtime. *)
type kind =
  | Compile  (** one [Jit.compile] cache miss: optimize + certify + lower *)
  | Certify  (** the [Schedule_check] certifier inside a compile *)
  | Wave  (** one barrier-delimited wave (OpenMP), enqueue (OpenCL) or
              stencil pass (serial backends) inside a kernel run *)
  | Kernel  (** one invocation of a compiled kernel, annotated with
                analytic cells/flops/bytes *)
  | Chunk  (** one pool chunk, recorded on the executing domain *)
  | Vcycle  (** one multigrid V- or F-cycle *)
  | Phase  (** everything else: solver phases, harness timings, SPMD *)

val kind_name : kind -> string
(** Lower-case name, used as the Chrome [cat] field. *)

type arg = Int of int | Float of float | Str of string

type event = {
  kind : kind;
  name : string;
  ts_us : float;  (** start, µs since the trace epoch (process start) *)
  dur_us : float;
  tid : int;  (** executing domain id *)
  args : (string * arg) list;
}

(** {2 Enabling} *)

val on : unit -> bool
(** One [Atomic.get] — the guard every hot instrumentation site uses.
    Initially true iff [SF_TRACE] is set to [1]/[true]/[yes]/[on]. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with tracing forced on/off, restoring the previous state (used by
    tests). *)

(** {2 Spans} *)

val now_us : unit -> float
(** Wall clock in µs since the trace epoch — the time base of every
    span. *)

val span : ?args:(string * arg) list -> kind -> string -> (unit -> 'a) -> 'a
(** [span kind name f] runs [f], recording a completed span on the calling
    domain when tracing is enabled.  The span is recorded even when [f]
    raises (and the exception re-raised), so failing phases are never
    silently dropped from the profile.  When tracing is disabled this is
    exactly [f ()]. *)

val record_span :
  ?args:(string * arg) list -> kind -> string -> ts_us:float ->
  dur_us:float -> unit
(** Record an externally timed span (callers that already hold a start
    time, e.g. [Mg.timed]).  No-op when tracing is disabled.

    Kernel spans carrying a [bytes] argument additionally get a
    [pct_roofline_peak] argument when a machine bandwidth has been
    declared with {!set_bandwidth_gbs}: 100 × (bytes / bandwidth) /
    duration — the fraction of the STREAM-predicted peak the invocation
    achieved. *)

(** {2 Counters} *)

type counter =
  | Cells_updated  (** lattice points written by kernel invocations *)
  | Chunks_dispatched  (** pool chunks published to the shared slot *)
  | Chunks_stolen  (** pool chunks executed by helper domains *)
  | Inline_fallbacks  (** batches run inline (cutoff, nesting, 1 worker) *)
  | Cache_hits  (** [Jit.compile] cache hits *)
  | Cache_misses
  | Faults_injected  (** [Fault.fire] firings (sf_resilience) *)
  | Retries  (** supervised kernel retries *)
  | Failovers  (** backend failovers in a supervised chain *)
  | Rollbacks  (** checkpoint-ring restores *)
  | Guard_trips  (** non-finite values caught by guard scans *)
  | Tasks_skipped  (** pool tasks drained unrun after a batch abort *)
  | Rank_recoveries  (** [Spmd] dead-rank reconstructions *)
  | Tune_db_hits  (** autotuner plans served from the persistent DB *)
  | Tune_db_misses  (** autotuner runs that had to measure candidates *)
  | Channel_sends  (** halo planes pushed into pipeline ring buffers *)
  | Channel_stalls
      (** scheduler passes in which a runnable pipeline node waited on
          ring space or data (back-pressure visibility) *)

val add : counter -> int -> unit
(** Atomic increment; no-op when tracing is disabled (callers in hot paths
    guard with {!on} first so not even the argument is evaluated). *)

type counters = {
  cells_updated : int;
  chunks_dispatched : int;
  chunks_stolen : int;
  inline_fallbacks : int;
  cache_hits : int;
  cache_misses : int;
  faults_injected : int;
  retries : int;
  failovers : int;
  rollbacks : int;
  guard_trips : int;
  tasks_skipped : int;
  rank_recoveries : int;
  tune_db_hits : int;
  tune_db_misses : int;
  channel_sends : int;
  channel_stalls : int;
}

val counters : unit -> counters

(** {2 Roofline join} *)

val set_bandwidth_gbs : float -> unit
(** Declare the machine's measured STREAM bandwidth (GB/s); subsequent
    kernel spans are annotated with their % of the roofline-predicted
    peak.  Non-positive clears the annotation. *)

val bandwidth_gbs : unit -> float
(** 0. when unset. *)

(** {2 Inspection and export} *)

val events : unit -> event list
(** Completed spans in recording order. *)

val dropped : unit -> int
(** Spans discarded because the buffer cap (2M events) was reached. *)

val clear : unit -> unit
(** Drop all events and zero all counters; the enabled flag and declared
    bandwidth are kept. *)

type agg = {
  akind : kind;
  aname : string;
  calls : int;
  total_us : float;
  acells : float;  (** summed [cells] args (kernel spans), 0 otherwise *)
  aflops : float;
  abytes : float;
}

val summary : unit -> agg list
(** Events aggregated by (kind, name), sorted by total time descending. *)

val to_chrome_json : unit -> Json.t
(** The Chrome [trace_event] document: an object with a [traceEvents]
    array of complete ("ph":"X") events plus one final counter
    ("ph":"C") sample, and [displayTimeUnit]. *)

val write_chrome_json : string -> unit
(** Export {!to_chrome_json} to a file. *)
