(** Request-scoped span aggregation: SLO series and gauges.

    [Trace] records raw spans for offline analysis; a long-lived server
    additionally needs *online* aggregates — p50/p99 latency of the last N
    requests, a queue-depth high-water mark — cheap enough to keep forever
    and exportable from a STATS endpoint while the process keeps running.
    A {!series} is a named, bounded reservoir of float samples (typically
    span durations in µs): observation is O(1) into a ring of the last
    [capacity] samples, percentiles are computed on demand over that
    window.  A {!gauge} tracks a current integer level and its high-water
    mark.

    All operations are thread-safe (callers include server worker threads
    and pool domains).  {!time} bridges the two worlds: it runs a thunk,
    observes its duration into the series, and — only when tracing is
    enabled — also records an ordinary [Trace] span, so one instrumentation
    site feeds both the Chrome trace and the SLO aggregates. *)

type series

val series : ?capacity:int -> string -> series
(** The series registered under [name], creating it on first use
    ([capacity] — default 4096 — only applies then; later calls return the
    existing series unchanged).  The registry is global, like the trace
    buffer. *)

val observe : series -> float -> unit
(** Append one sample (O(1); evicts the oldest once the window is full). *)

val time : ?kind:Trace.kind -> ?args:(string * Trace.arg) list ->
  series -> (unit -> 'a) -> 'a
(** Run the thunk, observe its wall-clock duration in µs (also when it
    raises), and record a [Trace] span of [kind] (default [Phase]) named
    after the series when tracing is on. *)

val count : series -> int
(** Total samples ever observed (not capped by the window). *)

val percentile : series -> float -> float
(** [percentile s p] with [p] in [0,100] over the current window;
    [nan] when empty. *)

val max_seen : series -> float
(** Largest sample ever observed; [nan] when empty. *)

val mean_window : series -> float
(** Mean of the current window; [nan] when empty. *)

type summary = {
  sname : string;
  n : int;  (** lifetime observation count *)
  p50 : float;
  p90 : float;
  p99 : float;
  smax : float;  (** lifetime max *)
  smean : float;  (** window mean *)
}

val summary : series -> summary
val all : unit -> summary list
(** Every registered series, sorted by name. *)

type gauge

val gauge : string -> gauge
(** The gauge registered under [name] (created at level 0 on first use). *)

val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_get : gauge -> int
val gauge_hwm : gauge -> int
val gauge_name : gauge -> string
(** High-water mark since creation or the last {!reset}. *)

val reset : unit -> unit
(** Zero every registered series and gauge in place (handles held by
    callers stay valid).  Registration itself is kept. *)
