type kind = Compile | Certify | Wave | Kernel | Chunk | Vcycle | Phase

let kind_name = function
  | Compile -> "compile"
  | Certify -> "certify"
  | Wave -> "wave"
  | Kernel -> "kernel"
  | Chunk -> "chunk"
  | Vcycle -> "vcycle"
  | Phase -> "phase"

type arg = Int of int | Float of float | Str of string

type event = {
  kind : kind;
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

(* ------------------------------------------------------------- enabling *)

let env_flag name =
  match Sys.getenv_opt name with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | _ -> false)
  | None -> false

let enabled = Atomic.make (env_flag "SF_TRACE")
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect f ~finally:(fun () -> Atomic.set enabled prev)

(* ------------------------------------------------------------ the clock *)

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* ------------------------------------------------------------- counters *)

type counter =
  | Cells_updated
  | Chunks_dispatched
  | Chunks_stolen
  | Inline_fallbacks
  | Cache_hits
  | Cache_misses
  | Faults_injected
  | Retries
  | Failovers
  | Rollbacks
  | Guard_trips
  | Tasks_skipped
  | Rank_recoveries
  | Tune_db_hits
  | Tune_db_misses
  | Channel_sends
  | Channel_stalls

let cells_c = Atomic.make 0
let chunks_c = Atomic.make 0
let stolen_c = Atomic.make 0
let inline_c = Atomic.make 0
let hits_c = Atomic.make 0
let misses_c = Atomic.make 0
let faults_c = Atomic.make 0
let retries_c = Atomic.make 0
let failovers_c = Atomic.make 0
let rollbacks_c = Atomic.make 0
let guard_trips_c = Atomic.make 0
let skipped_c = Atomic.make 0
let recoveries_c = Atomic.make 0
let tune_hits_c = Atomic.make 0
let tune_misses_c = Atomic.make 0
let chan_sends_c = Atomic.make 0
let chan_stalls_c = Atomic.make 0

let cell_of = function
  | Cells_updated -> cells_c
  | Chunks_dispatched -> chunks_c
  | Chunks_stolen -> stolen_c
  | Inline_fallbacks -> inline_c
  | Cache_hits -> hits_c
  | Cache_misses -> misses_c
  | Faults_injected -> faults_c
  | Retries -> retries_c
  | Failovers -> failovers_c
  | Rollbacks -> rollbacks_c
  | Guard_trips -> guard_trips_c
  | Tasks_skipped -> skipped_c
  | Rank_recoveries -> recoveries_c
  | Tune_db_hits -> tune_hits_c
  | Tune_db_misses -> tune_misses_c
  | Channel_sends -> chan_sends_c
  | Channel_stalls -> chan_stalls_c

let add c n = if on () then ignore (Atomic.fetch_and_add (cell_of c) n)

type counters = {
  cells_updated : int;
  chunks_dispatched : int;
  chunks_stolen : int;
  inline_fallbacks : int;
  cache_hits : int;
  cache_misses : int;
  faults_injected : int;
  retries : int;
  failovers : int;
  rollbacks : int;
  guard_trips : int;
  tasks_skipped : int;
  rank_recoveries : int;
  tune_db_hits : int;
  tune_db_misses : int;
  channel_sends : int;
  channel_stalls : int;
}

let counters () =
  {
    cells_updated = Atomic.get cells_c;
    chunks_dispatched = Atomic.get chunks_c;
    chunks_stolen = Atomic.get stolen_c;
    inline_fallbacks = Atomic.get inline_c;
    cache_hits = Atomic.get hits_c;
    cache_misses = Atomic.get misses_c;
    faults_injected = Atomic.get faults_c;
    retries = Atomic.get retries_c;
    failovers = Atomic.get failovers_c;
    rollbacks = Atomic.get rollbacks_c;
    guard_trips = Atomic.get guard_trips_c;
    tasks_skipped = Atomic.get skipped_c;
    rank_recoveries = Atomic.get recoveries_c;
    tune_db_hits = Atomic.get tune_hits_c;
    tune_db_misses = Atomic.get tune_misses_c;
    channel_sends = Atomic.get chan_sends_c;
    channel_stalls = Atomic.get chan_stalls_c;
  }

(* -------------------------------------------------------- roofline join *)

(* bits-of-float in an Atomic: settable from any domain without a lock *)
let bandwidth_bits = Atomic.make (Int64.bits_of_float 0.)
let set_bandwidth_gbs gbs =
  Atomic.set bandwidth_bits (Int64.bits_of_float (Float.max gbs 0.))
let bandwidth_gbs () = Int64.float_of_bits (Atomic.get bandwidth_bits)

(* --------------------------------------------------------- event buffer *)

let mu = Mutex.create ()
let events_rev : event list ref = ref []
let n_events = ref 0
let dropped_c = ref 0
let max_events = 2_000_000

let float_arg = function
  | Some (Int i) -> Some (float_of_int i)
  | Some (Float f) -> Some f
  | _ -> None

(* Kernel spans that declare their analytic byte traffic are joined
   against the declared machine bandwidth at record time: % of peak =
   roofline-predicted duration / achieved duration. *)
let annotate_roofline ev =
  if ev.kind <> Kernel then ev
  else
    let bw = bandwidth_gbs () in
    match float_arg (List.assoc_opt "bytes" ev.args) with
    | Some bytes when bw > 0. && ev.dur_us > 0. ->
        let predicted_us = bytes /. (bw *. 1e9) *. 1e6 in
        {
          ev with
          args =
            ev.args @ [ ("pct_roofline_peak", Float (100. *. predicted_us /. ev.dur_us)) ];
        }
    | _ -> ev

let record ev =
  let ev = annotate_roofline ev in
  Mutex.lock mu;
  if !n_events >= max_events then incr dropped_c
  else begin
    events_rev := ev :: !events_rev;
    incr n_events
  end;
  Mutex.unlock mu

let record_span ?(args = []) kind name ~ts_us ~dur_us =
  if on () then
    record
      { kind; name; ts_us; dur_us; tid = (Domain.self () :> int); args }

let span ?(args = []) kind name f =
  if not (on ()) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect f ~finally:(fun () ->
        record_span ~args kind name ~ts_us:t0 ~dur_us:(now_us () -. t0))
  end

let events () =
  Mutex.lock mu;
  let evs = List.rev !events_rev in
  Mutex.unlock mu;
  evs

let dropped () =
  Mutex.lock mu;
  let d = !dropped_c in
  Mutex.unlock mu;
  d

let clear () =
  Mutex.lock mu;
  events_rev := [];
  n_events := 0;
  dropped_c := 0;
  Mutex.unlock mu;
  List.iter
    (fun c -> Atomic.set c 0)
    [
      cells_c; chunks_c; stolen_c; inline_c; hits_c; misses_c; faults_c;
      retries_c; failovers_c; rollbacks_c; guard_trips_c; skipped_c;
      recoveries_c; tune_hits_c; tune_misses_c; chan_sends_c; chan_stalls_c;
    ]

(* ---------------------------------------------------------- aggregation *)

type agg = {
  akind : kind;
  aname : string;
  calls : int;
  total_us : float;
  acells : float;
  aflops : float;
  abytes : float;
}

let summary () =
  let table : (kind * string, agg ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      let key = (ev.kind, ev.name) in
      let a =
        match Hashtbl.find_opt table key with
        | Some a -> a
        | None ->
            let a =
              ref
                {
                  akind = ev.kind;
                  aname = ev.name;
                  calls = 0;
                  total_us = 0.;
                  acells = 0.;
                  aflops = 0.;
                  abytes = 0.;
                }
            in
            Hashtbl.replace table key a;
            order := a :: !order;
            a
      in
      let num k = Option.value ~default:0. (float_arg (List.assoc_opt k ev.args)) in
      a :=
        {
          !a with
          calls = !a.calls + 1;
          total_us = !a.total_us +. ev.dur_us;
          acells = !a.acells +. num "cells";
          aflops = !a.aflops +. num "flops";
          abytes = !a.abytes +. num "bytes";
        })
    (events ());
  List.rev_map ( ! ) !order
  |> List.sort (fun a b -> Float.compare b.total_us a.total_us)

(* --------------------------------------------------------- Chrome export *)

let json_of_arg = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let json_of_event ev =
  Json.Obj
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str (kind_name ev.kind));
      ("ph", Json.Str "X");
      ("ts", Json.Num ev.ts_us);
      ("dur", Json.Num ev.dur_us);
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int ev.tid));
      ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) ev.args));
    ]

(* stamped at the end of the last recorded span, not at export time, so
   exporting the same trace twice yields byte-identical documents *)
let counter_event ~ts =
  let c = counters () in
  Json.Obj
    [
      ("name", Json.Str "sf_counters");
      ("cat", Json.Str "counter");
      ("ph", Json.Str "C");
      ("ts", Json.Num ts);
      ("pid", Json.Num 1.);
      ("tid", Json.Num 0.);
      ( "args",
        Json.Obj
          [
            ("cells_updated", Json.Num (float_of_int c.cells_updated));
            ("chunks_dispatched", Json.Num (float_of_int c.chunks_dispatched));
            ("chunks_stolen", Json.Num (float_of_int c.chunks_stolen));
            ("inline_fallbacks", Json.Num (float_of_int c.inline_fallbacks));
            ("cache_hits", Json.Num (float_of_int c.cache_hits));
            ("cache_misses", Json.Num (float_of_int c.cache_misses));
            ("faults_injected", Json.Num (float_of_int c.faults_injected));
            ("retries", Json.Num (float_of_int c.retries));
            ("failovers", Json.Num (float_of_int c.failovers));
            ("rollbacks", Json.Num (float_of_int c.rollbacks));
            ("guard_trips", Json.Num (float_of_int c.guard_trips));
            ("tasks_skipped", Json.Num (float_of_int c.tasks_skipped));
            ("rank_recoveries", Json.Num (float_of_int c.rank_recoveries));
            ("tune_db_hits", Json.Num (float_of_int c.tune_db_hits));
            ("tune_db_misses", Json.Num (float_of_int c.tune_db_misses));
            ("channel_sends", Json.Num (float_of_int c.channel_sends));
            ("channel_stalls", Json.Num (float_of_int c.channel_stalls));
          ] );
    ]

let to_chrome_json () =
  let evs = events () in
  let last_ts =
    List.fold_left (fun acc e -> Float.max acc (e.ts_us +. e.dur_us)) 0. evs
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          (List.map json_of_event evs @ [ counter_event ~ts:last_ts ]) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_json path =
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc (Json.to_string (to_chrome_json ())))
    ~finally:(fun () -> close_out oc)
