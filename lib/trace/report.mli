(** Human sinks for the trace substrate.

    The summary table is the paper's profiling methodology applied to the
    whole runtime: per span (kernel invocations first) it reports call
    count, total time and — for kernel spans, which carry analytic
    cells/flops/bytes annotations — arithmetic intensity, achieved
    bandwidth, and the achieved fraction of the STREAM-predicted roofline
    peak.  This replaces the ad-hoc [Hashtbl] breakdown [Mg.profile] used
    to print. *)

val summary_table : ?machine:Sf_roofline.Machine.t -> unit -> string
(** Render the aggregated spans ({!Trace.summary}) as a fixed-width
    table.  The roofline columns use [machine]'s bandwidth when given,
    else the bandwidth declared via {!Trace.set_bandwidth_gbs}; when
    neither is available the [%peak] column is left blank. *)

val print_summary : ?machine:Sf_roofline.Machine.t -> unit -> unit
(** {!summary_table} to stdout, followed by the counter line and, when
    events were discarded, a dropped-span warning. *)

val counters_line : unit -> string
(** One-line human rendering of {!Trace.counters}. *)
