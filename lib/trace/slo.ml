(* SLO aggregation: bounded reservoirs + gauges over the trace substrate.

   One module-wide mutex guards the registry and every sample write; a
   sample is a handful of field updates, so contention is negligible next
   to the solves being measured.  Percentiles copy the live window under
   the lock and sort outside it. *)

open Sf_util

type series = {
  sname : string;
  cap : int;
  buf : float array;  (* ring of the last [cap] samples *)
  mutable n : int;  (* lifetime observations *)
  mutable maxv : float;
  mutable winsum : float;  (* sum over the current window *)
}

type gauge = { gname : string; mutable cur : int; mutable hwm : int }

let mx = Mutex.create ()

let locked f =
  Mutex.lock mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock mx) f

let registry : (string, series) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let series ?(capacity = 4096) name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
          let cap = max 16 capacity in
          let s =
            {
              sname = name;
              cap;
              buf = Array.make cap 0.;
              n = 0;
              maxv = nan;
              winsum = 0.;
            }
          in
          Hashtbl.add registry name s;
          s)

let observe s v =
  locked (fun () ->
      let slot = s.n mod s.cap in
      if s.n >= s.cap then s.winsum <- s.winsum -. s.buf.(slot);
      s.buf.(slot) <- v;
      s.winsum <- s.winsum +. v;
      s.n <- s.n + 1;
      if not (v <= s.maxv) then s.maxv <- v)

let time ?(kind = Trace.Phase) ?args s f =
  let t0 = Trace.now_us () in
  let record () = observe s (Trace.now_us () -. t0) in
  if Trace.on () then
    Trace.span ?args kind s.sname (fun () ->
        Fun.protect ~finally:record f)
  else Fun.protect ~finally:record f

let count s = locked (fun () -> s.n)
let max_seen s = locked (fun () -> s.maxv)

let window s =
  locked (fun () ->
      let len = min s.n s.cap in
      Array.sub s.buf 0 len)

let percentile s p =
  let w = window s in
  if Array.length w = 0 then nan else Stats.percentile p w

let mean_window s =
  let w = window s in
  if Array.length w = 0 then nan else Stats.mean w

type summary = {
  sname : string;
  n : int;
  p50 : float;
  p90 : float;
  p99 : float;
  smax : float;
  smean : float;
}

let summary s =
  let w = window s in
  let pct p = if Array.length w = 0 then nan else Stats.percentile p w in
  {
    sname = s.sname;
    n = count s;
    p50 = pct 50.;
    p90 = pct 90.;
    p99 = pct 99.;
    smax = max_seen s;
    smean = (if Array.length w = 0 then nan else Stats.mean w);
  }

let all () =
  let ss = locked (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) registry []) in
  List.sort
    (fun (a : series) (b : series) -> String.compare a.sname b.sname)
    ss
  |> List.map summary

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { gname = name; cur = 0; hwm = 0 } in
          Hashtbl.add gauges name g;
          g)

let gauge_set g v =
  locked (fun () ->
      g.cur <- v;
      if v > g.hwm then g.hwm <- v)

let gauge_add g d =
  locked (fun () ->
      g.cur <- g.cur + d;
      if g.cur > g.hwm then g.hwm <- g.cur)

let gauge_get g = locked (fun () -> g.cur)
let gauge_hwm g = locked (fun () -> g.hwm)
let gauge_name g = g.gname

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ (s : series) ->
          s.n <- 0;
          s.maxv <- nan;
          s.winsum <- 0.;
          Array.fill s.buf 0 s.cap 0.)
        registry;
      Hashtbl.iter
        (fun _ g ->
          g.cur <- 0;
          g.hwm <- 0)
        gauges)
