(** Tolerance-aware floating-point comparison.

    Backends are allowed to reassociate the arithmetic of a stencil
    expression (the polynomial normal form evaluates monomial tables in a
    different order than the AST walker), so cross-backend equality is
    "same value up to a few units in the last place", not bitwise.  This
    module is the single definition of that notion, shared by the unit
    tests and the differential fuzzer: a measured distance in ULPs
    ({!ulp_diff}), a combined ULP-or-absolute predicate ({!close}), and
    array forms over the [floatarray] storage meshes use.

    Two NaNs compare equal (the fuzzer's NaN-poisoning oracle relies on
    NaN being a stable value, not a mismatch); a NaN against a number is
    maximally distant. *)

val ulp_diff : float -> float -> int
(** Number of representable doubles strictly between the two arguments
    (0 when equal; [max_int] when exactly one is NaN).  The bit patterns
    are mapped to a monotone integer line, so the distance is meaningful
    across zero and between denormals. *)

val ulp_equal : ?ulps:int -> float -> float -> bool
(** [ulp_equal ~ulps a b] is [ulp_diff a b <= ulps].  [ulps] defaults to
    0 — bitwise equality modulo NaN and [-0. = +0.]. *)

val close : ?ulps:int -> ?atol:float -> float -> float -> bool
(** ULP distance within [ulps] {e or} absolute difference within [atol].
    The absolute escape hatch matters near zero, where cancellation can
    leave two backends picometres apart yet thousands of ULPs away.
    Defaults: [ulps = 0], [atol = 0.]. *)

(** {2 Arrays} *)

val array_max_ulp : floatarray -> floatarray -> int
(** Largest pointwise {!ulp_diff}; raises [Invalid_argument] on length
    mismatch. *)

val array_close : ?ulps:int -> ?atol:float -> floatarray -> floatarray -> bool
(** Pointwise {!close} over same-length arrays. *)

val first_mismatch :
  ?ulps:int -> ?atol:float -> floatarray -> floatarray ->
  (int * float * float) option
(** Index and values of the first pair that fails {!close} — the witness
    the differential executor reports.  [None] when the arrays agree. *)
