(* Comparison is defined on the monotone integer image of the double bit
   pattern: reinterpret the 64 bits, and flip negative values so the line
   is ordered (two's-complement trick).  Distance on that line counts the
   representable doubles between two values — the textbook ULP metric. *)

let monotone_bits x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L < 0 then Int64.sub Int64.min_int b else b

let ulp_diff a b =
  let a_nan = Float.is_nan a and b_nan = Float.is_nan b in
  if a_nan || b_nan then (if a_nan && b_nan then 0 else max_int)
  else if a = b then 0 (* also collapses -0. vs +0. *)
  else
    let d = Int64.abs (Int64.sub (monotone_bits a) (monotone_bits b)) in
    if Int64.compare d (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int d

let ulp_equal ?(ulps = 0) a b = ulp_diff a b <= ulps

let close ?(ulps = 0) ?(atol = 0.) a b =
  ulp_diff a b <= ulps
  || (atol > 0. && Float.abs (a -. b) <= atol)

let check_lengths a b =
  if Float.Array.length a <> Float.Array.length b then
    invalid_arg
      (Printf.sprintf "Fcmp: length mismatch (%d vs %d)"
         (Float.Array.length a) (Float.Array.length b))

let array_max_ulp a b =
  check_lengths a b;
  let worst = ref 0 in
  for i = 0 to Float.Array.length a - 1 do
    let d = ulp_diff (Float.Array.get a i) (Float.Array.get b i) in
    if d > !worst then worst := d
  done;
  !worst

let first_mismatch ?ulps ?atol a b =
  check_lengths a b;
  let n = Float.Array.length a in
  let rec go i =
    if i >= n then None
    else
      let x = Float.Array.get a i and y = Float.Array.get b i in
      if close ?ulps ?atol x y then go (i + 1) else Some (i, x, y)
  in
  go 0

let array_close ?ulps ?atol a b = first_mismatch ?ulps ?atol a b = None
