open Sf_mesh

type t = {
  name : string;
  backend : string;
  run : ?params:(string * float) list -> Grids.t -> unit;
  description : string;
}

let make ~name ~backend ?(description = "") run =
  { name; backend; run; description }

let param_lookup ?loc bindings p =
  match List.assoc_opt p bindings with
  | Some v -> v
  | None ->
      let where =
        match loc with
        | Some l -> " in " ^ Snowflake.Srcloc.to_string l
        | None -> ""
      in
      invalid_arg (Printf.sprintf "kernel: unbound parameter %S%s" p where)
