open Sf_util
open Snowflake

type backend = Interp | Compiled | Openmp | Opencl | Custom of string

exception
  Certification_failed of {
    backend : string;
    group : string;
    diagnostics : Sf_analysis.Diagnostics.t list;
  }

let () =
  Printexc.register_printer (function
    | Certification_failed { backend; group; diagnostics } ->
        Some
          (Printf.sprintf
             "Jit.Certification_failed: %s plan for group %s:\n%s" backend
             group
             (Sf_analysis.Diagnostics.render diagnostics))
    | _ -> None)

let backend_name = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Openmp -> "openmp"
  | Opencl -> "opencl"
  | Custom name -> name

let builtin_names = [ "interp"; "compiled"; "openmp"; "opencl" ]

let registry :
    (string, Config.t -> shape:Ivec.t -> Group.t -> Kernel.t) Hashtbl.t =
  Hashtbl.create 8

(* Kernels may be compiled from worker domains (e.g. a task JIT-compiling a
   sub-kernel), so the registry, the compile cache and its counters must be
   race-free: one mutex around the tables, atomics for the counters. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let backend_of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "openmp" -> Some Openmp
  | "opencl" -> Some Opencl
  | name ->
      if locked (fun () -> Hashtbl.mem registry name) then Some (Custom name)
      else None

let all_backends = [ Interp; Compiled; Openmp; Opencl ]

let registered_backends () =
  locked (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) registry [])
  |> List.sort String.compare

type key = {
  backend : backend;
  shape : int list;
  group_hash : int;
  config : Config.t;
}

let cache : (key, Kernel.t) Hashtbl.t = Hashtbl.create 64
let hits = Atomic.make 0
let misses = Atomic.make 0

module Trace = Sf_trace.Trace
module Fault = Sf_resilience.Fault

(* The "kernel" fault site lives in the instrument wrapper, so every
   backend inherits it.  Raise/Transient abort the invocation before any
   wave runs; poison kinds corrupt the first output grid's center point
   *after* a successful run (poisoning before would be overwritten by the
   kernel itself) — exactly the silent-data-corruption shape the guard
   scans and checkpoint rollback exist to catch. *)
let apply_poison outputs grids v =
  match outputs with
  | [] -> ()
  | name :: _ -> (
      match Sf_mesh.Grids.find_opt grids name with
      | Some m ->
          let n = Sf_mesh.Mesh.size m in
          if n > 0 then Sf_mesh.Mesh.set_flat m (n / 2) v
      | None -> ())

(* Every compiled kernel is wrapped in a trace guard at compile time, so
   each invocation — from user code, [Mg], [Spmd] or the bench harness —
   becomes a [kernel] span attributed to its group and backend and
   annotated with the analytic cells/flops/bytes of one run.  The span
   arguments are computed once per cache entry; when tracing is off the
   wrapper costs one atomic load and a branch. *)
let instrument ?cost ~config ~backend ~shape group (kernel : Kernel.t) =
  let cost =
    match cost with
    | Some c -> c
    | None -> (
        (* with fusion on, the parallel backends execute the fused plan, so
           the span is annotated with the single-pass bytes model — shared
           reads inside a cluster are no longer double-counted *)
        match backend with
        | (Openmp | Opencl) when config.Config.fusion ->
            Costing.of_clusters ~shape
              (List.map
                 (fun (c : Fusion.cluster) -> c.Fusion.members)
                 (Fusion.partition config ~shape group))
        | _ -> Costing.of_group ~shape group)
  in
  let span_args =
    [
      ("backend", Trace.Str (backend_name backend));
      ("group", Trace.Str group.Group.label);
      ("stencils", Trace.Int (Group.length group));
    ]
    @ Costing.args cost
  in
  let fault_detail = backend_name backend ^ ":" ^ group.Group.label in
  let outputs =
    List.map (fun s -> s.Stencil.output) (Group.stencils group)
    |> List.sort_uniq String.compare
  in
  let run ?params grids =
    let poison =
      if Fault.armed () then Fault.fire ~site:"kernel" ~detail:fault_detail
      else None
    in
    (if Trace.on () then begin
       Trace.add Trace.Cells_updated cost.Costing.cells;
       Trace.span ~args:span_args Trace.Kernel group.Group.label (fun () ->
           kernel.Kernel.run ?params grids)
     end
     else kernel.Kernel.run ?params grids);
    match poison with
    | Some Fault.Nan_poison -> apply_poison outputs grids Float.nan
    | Some Fault.Inf_poison -> apply_poison outputs grids Float.infinity
    | _ -> ()
  in
  { kernel with Kernel.run }

let armed_spec = Atomic.make ""

let compile ?(config = Config.default) backend ~shape group =
  if config.Config.trace && not (Trace.on ()) then Trace.set_enabled true;
  (* mirror the trace-arming pattern: a spec in the config arms the global
     fault substrate.  Arming is keyed on the raw spec string so repeated
     compiles under the same config never re-arm (re-arming would reset
     the clauses' occurrence counters mid-campaign); [None] leaves any
     SF_FAULTS arming in force. *)
  (match config.Config.faults with
  | Some spec when Atomic.get armed_spec <> spec ->
      Atomic.set armed_spec spec;
      Fault.arm_exn spec
  | _ -> ());
  let key =
    {
      backend;
      shape = Ivec.to_list shape;
      group_hash = Group.hash group;
      config;
    }
  in
  match locked (fun () -> Hashtbl.find_opt cache key) with
  | Some kernel ->
      Atomic.incr hits;
      if Trace.on () then Trace.add Trace.Cache_hits 1;
      kernel
  | None ->
      Atomic.incr misses;
      if Trace.on () then Trace.add Trace.Cache_misses 1;
      (* compile outside the lock: lowering can be slow and must not stall
         concurrent lookups of unrelated kernels *)
      let kernel =
        Trace.span
          ~args:
            [
              ("backend", Trace.Str (backend_name backend));
              ("group", Trace.Str group.Group.label);
            ]
          Trace.Compile
          ("compile:" ^ group.Group.label)
          (fun () ->
            let group = Passes.optimize config ~shape group in
            (* schedule certification (SF_VALIDATE=1 / Config.certify):
               prove the plan the backend is about to adopt race-free, once
               per cache entry — cache hits pay nothing.  A failed compile
               caches nothing, so a racy plan raises on every attempt. *)
            if config.Config.certify then begin
              let diagnostics =
                Trace.span Trace.Certify
                  ("certify:" ^ group.Group.label)
                  (fun () ->
                    match backend with
                    | Openmp ->
                        Schedule_check.certify config ~shape ~backend:`Openmp
                          group
                    | Opencl ->
                        Schedule_check.certify config ~shape ~backend:`Opencl
                          group
                    | Interp | Compiled | Custom _ -> [])
              in
              if Sf_analysis.Diagnostics.has_errors diagnostics then
                raise
                  (Certification_failed
                     {
                       backend = backend_name backend;
                       group = group.Group.label;
                       diagnostics;
                     })
            end;
            let kernel =
              match backend with
              | Interp -> Serial_backend.compile_interp config ~shape group
              | Compiled -> Serial_backend.compile_compiled config ~shape group
              | Openmp -> Openmp_backend.compile config ~shape group
              | Opencl -> Opencl_backend.compile config ~shape group
              | Custom name -> (
                  match locked (fun () -> Hashtbl.find_opt registry name) with
                  | Some compiler -> compiler config ~shape group
                  | None ->
                      invalid_arg
                        (Printf.sprintf
                           "Jit.compile: unknown custom backend %S" name))
            in
            instrument ~config ~backend ~shape group kernel)
      in
      locked (fun () ->
          match Hashtbl.find_opt cache key with
          | Some existing -> existing (* a racing compile won: keep one *)
          | None ->
              Hashtbl.replace cache key kernel;
              kernel)

(* --------------------------------------------------- temporal blocking

   [compile] is always ONE application of the group; [compile_time_tiled]
   returns a kernel whose single invocation performs [reps] applications —
   skew-blocked into ~one pass of memory traffic when [Timetile.plan]
   accepts the group, or a plain kernel wrapped in a reps-loop otherwise,
   so the semantics are uniform either way (the differential fuzzer
   depends on that).  Time-tiled entries live in the same cache under a
   distinct pseudo-backend name, with [Config.time_tile] carrying [reps]
   into the key. *)

let compile_time_tiled ?(config = Config.default) ~reps backend ~shape group =
  if reps < 1 then
    invalid_arg "Jit.compile_time_tiled: reps must be at least 1";
  if reps = 1 then compile ~config backend ~shape group
  else begin
    let config = { config with Config.time_tile = reps } in
    let plain_loop () =
      let inner = compile ~config backend ~shape group in
      let run ?params grids =
        for _ = 1 to reps do
          inner.Kernel.run ?params grids
        done
      in
      {
        inner with
        Kernel.run;
        Kernel.description =
          Printf.sprintf "%d rep(s) of [%s]" reps inner.Kernel.description;
      }
    in
    let key =
      {
        backend = Custom ("timetile:" ^ backend_name backend);
        shape = Ivec.to_list shape;
        group_hash = Group.hash group;
        config;
      }
    in
    match locked (fun () -> Hashtbl.find_opt cache key) with
    | Some kernel ->
        Atomic.incr hits;
        if Trace.on () then Trace.add Trace.Cache_hits 1;
        kernel
    | None ->
        Atomic.incr misses;
        if Trace.on () then Trace.add Trace.Cache_misses 1;
        let kernel =
          Trace.span
            ~args:
              [
                ("backend", Trace.Str "timetile");
                ("group", Trace.Str group.Group.label);
                ("reps", Trace.Int reps);
              ]
            Trace.Compile
            ("compile:" ^ group.Group.label)
            (fun () ->
              let group = Passes.optimize config ~shape group in
              match Timetile.plan config ~shape ~reps group with
              | Some plan ->
                  if config.Config.certify then begin
                    let diagnostics =
                      Trace.span Trace.Certify
                        ("certify:" ^ group.Group.label)
                        (fun () ->
                          Schedule_check.certify_timetile_plan config ~shape
                            plan)
                    in
                    if Sf_analysis.Diagnostics.has_errors diagnostics then
                      raise
                        (Certification_failed
                           {
                             backend = "timetile";
                             group = group.Group.label;
                             diagnostics;
                           })
                  end;
                  instrument
                    ~cost:(Costing.of_timetile ~shape ~reps group)
                    ~config ~backend:(Custom "timetile") ~shape group
                    (Timetile.compile config ~shape plan)
              | None ->
                  (* the plain fallback's inner kernel is instrumented by
                     [compile] itself: one span per application *)
                  plain_loop ())
        in
        locked (fun () ->
            match Hashtbl.find_opt cache key with
            | Some existing -> existing
            | None ->
                Hashtbl.replace cache key kernel;
                kernel)
  end

let compile_stencil ?config backend ~shape stencil =
  compile ?config backend ~shape
    (Group.make ~label:stencil.Stencil.label [ stencil ])

let register_backend ~name compiler =
  if List.mem name builtin_names then
    invalid_arg
      (Printf.sprintf "Jit.register_backend: %S is a built-in backend" name);
  locked (fun () ->
      if Hashtbl.mem registry name then Hashtbl.reset cache;
      Hashtbl.replace registry name compiler)

(* The structural cache identity, exported so a serving layer can coalesce
   concurrent compiles of the same kernel *before* they race in [compile]
   (two domains racing on one key both pay the lowering; a server funnels
   same-key requests through one compile instead).  Mirrors the key
   construction of [compile] / [compile_time_tiled] exactly: same group
   hash, shape, backend (the time-tiled pseudo-backend when [reps > 1])
   and full config. *)
let cache_key_hex ?(config = Config.default) ?(reps = 1) backend ~shape group
    =
  let backend, config =
    if reps > 1 then
      ( Custom ("timetile:" ^ backend_name backend),
        { config with Config.time_tile = reps } )
    else (backend, config)
  in
  Printf.sprintf "%x-%x" (Group.hash group)
    (Hashtbl.hash (backend_name backend, Ivec.to_list shape, config))

let cache_stats () = (Atomic.get hits, Atomic.get misses)

let clear_cache () =
  locked (fun () -> Hashtbl.reset cache);
  Atomic.set hits 0;
  Atomic.set misses 0
