(** Dynamic-plan conflict checking and schedule certification.

    A backend's parallel plan is a list of waves, each wave a set of tasks
    executed concurrently; a task covers one tile (or, for a stencil the
    analysis could not prove point-parallel, its whole domain run
    sequentially).  {!wave_conflicts} verifies the fundamental safety
    property the Diophantine analysis is supposed to guarantee — no two
    concurrent tasks touch the same cell with at least one write — by exact
    lattice intersection over the *actual tiles* of the plan, and reports
    {e every} conflicting pair, not just the first.  Pairs are pruned by
    bucketing tasks on grid name: a conflict always involves somebody's
    output grid, so only writer×writer and writer×reader pairs of the same
    grid are intersected.

    {!certify} wraps the checker as an [sflint] pass ([SF021]/[SF022]) and
    is what [Jit.compile] runs under [SF_VALIDATE=1] /
    [Config.certify]. *)

open Snowflake

type task = { stencil : Stencil.t; tiles : Domain.resolved list }
(** Lattice points this task iterates; intra-task ordering is sequential,
    so only inter-task overlap is a conflict. *)

type conflict = {
  first : int;  (** task index within the wave, [first < second] *)
  second : int;
  first_label : string;
  second_label : string;
  grid : string;  (** the grid on which the tasks collide *)
  kind : string;  (** ["write/write"], ["write/read"] or ["read/write"] *)
}

val wave_conflicts : task list -> conflict list
(** All conflicting pairs of the wave, deduplicated and sorted by task
    indices; empty iff the wave is race-free. *)

val waves_conflicts : task list list -> (int * conflict list) list
(** Per-wave conflicts over a whole plan; only non-clean waves appear. *)

val conflict_to_string : conflict -> string

val check_wave : task list -> (unit, string) result
(** [Error msg] names the first conflicting pair (and how many more there
    are) — the historical interface, kept for the property tests. *)

val check_waves : task list list -> (unit, string) result

val openmp_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** The exact wave/task decomposition the OpenMP backend executes,
    including [Config.multicolor] tile reordering and
    [Config.force_parallel] overrides. *)

val opencl_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** Work-group decomposition of the OpenCL backend; each enqueue is its
    own wave (in-order queue). *)

val certify :
  Config.t ->
  shape:Sf_util.Ivec.t ->
  backend:[ `Openmp | `Opencl ] ->
  Group.t ->
  Sf_analysis.Diagnostics.t list
(** Build the backend's plan under the given configuration and report
    every intra-wave conflict as an [SF021] error, plus an [SF022] warning
    for each [Config.force_parallel] label that overrides the analysis.
    An empty (or error-free) result certifies the plan race-free. *)
