(** Dynamic-plan conflict checking and schedule certification.

    A backend's parallel plan is a list of waves, each wave a set of tasks
    executed concurrently; a task covers one tile (or, for a stencil the
    analysis could not prove point-parallel, its whole domain run
    sequentially).  {!wave_conflicts} verifies the fundamental safety
    property the Diophantine analysis is supposed to guarantee — no two
    concurrent tasks touch the same cell with at least one write — by exact
    lattice intersection over the *actual tiles* of the plan, and reports
    {e every} conflicting pair, not just the first.  Pairs are pruned by
    bucketing tasks on grid name: a conflict always involves somebody's
    output grid, so only writer×writer and writer×reader pairs of the same
    grid are intersected.

    {!certify} wraps the checker as an [sflint] pass ([SF021]/[SF022]) and
    is what [Jit.compile] runs under [SF_VALIDATE=1] /
    [Config.certify]. *)

open Snowflake

type task = { stencil : Stencil.t; tiles : Domain.resolved list }
(** Lattice points this task iterates; intra-task ordering is sequential,
    so only inter-task overlap is a conflict. *)

type conflict = {
  first : int;  (** task index within the wave, [first < second] *)
  second : int;
  first_label : string;
  second_label : string;
  grid : string;  (** the grid on which the tasks collide *)
  kind : string;  (** ["write/write"], ["write/read"] or ["read/write"] *)
}

val wave_conflicts : task list -> conflict list
(** All conflicting pairs of the wave, deduplicated and sorted by task
    indices; empty iff the wave is race-free. *)

val waves_conflicts : task list list -> (int * conflict list) list
(** Per-wave conflicts over a whole plan; only non-clean waves appear. *)

val conflict_to_string : conflict -> string

val check_wave : task list -> (unit, string) result
(** [Error msg] names the first conflicting pair (and how many more there
    are) — the historical interface, kept for the property tests. *)

val check_waves : task list list -> (unit, string) result

val openmp_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** The exact wave/task decomposition the OpenMP backend executes,
    including [Config.multicolor] tile reordering and
    [Config.force_parallel] overrides. *)

val opencl_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** Work-group decomposition of the OpenCL backend; each enqueue is its
    own wave (in-order queue). *)

(** {2 Fused plans}

    A fused task runs several stencils in program order over shared
    tiles, so it may write several grids.  The conflict core is the same
    bucketed lattice intersection, generalised to per-grid write sets;
    intra-task overlap is never a conflict (members are sequential within
    a task). *)

type fused_task = { members : Stencil.t list; ftiles : Domain.resolved list }

val fused_wave_conflicts : fused_task list -> conflict list
(** Conflicting pairs of concurrent fused tasks; labels are the joined
    member labels (["a+b"]). *)

val fused_waves_conflicts : fused_task list list -> (int * conflict list) list

val fused_openmp_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> fused_task list list
(** The wave/task decomposition the OpenMP backend executes under
    [Config.fusion]: singleton clusters keep the per-stencil plan
    byte-identical to {!openmp_plan}; multi-member clusters become one
    task per shared tile. *)

val fused_opencl_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> fused_task list list

val certify :
  Config.t ->
  shape:Sf_util.Ivec.t ->
  backend:[ `Openmp | `Opencl ] ->
  Group.t ->
  Sf_analysis.Diagnostics.t list
(** Build the backend's plan under the given configuration and report
    every intra-wave conflict as an [SF021] error, plus an [SF022] warning
    for each [Config.force_parallel] label that overrides the analysis.
    When [Config.fusion] is on and the partition actually fused
    something, the fused plan is re-proven at fused-task granularity and
    its conflicts reported as [SF023] errors.  An empty (or error-free)
    result certifies the plan race-free. *)

val certify_timetile :
  Config.t ->
  shape:Sf_util.Ivec.t ->
  Group.t ->
  Sf_analysis.Diagnostics.t list
(** One [SF025] error per property that forbids time-tiling the group
    ({!Timetile.illegalities}); empty iff [Timetile.legal]. *)

val certify_timetile_plan :
  Config.t ->
  shape:Sf_util.Ivec.t ->
  Timetile.plan ->
  Sf_analysis.Diagnostics.t list
(** {!certify_timetile} plus an [SF024] error when the plan's skew is
    below {!Timetile.required_skew} — the mis-skewed plan the fuzzer
    injects is rejected here before any backend sees it. *)
