open Snowflake
open Sf_analysis

type task = { stencil : Stencil.t; tiles : Domain.resolved list }

type conflict = {
  first : int;
  second : int;
  first_label : string;
  second_label : string;
  grid : string;
  kind : string;
}

let writes_of t =
  List.map (Footprint.affine_image t.stencil.Stencil.out_map) t.tiles

(* reads grouped by grid, imaged over every tile of the task; a stencil
   reading the same grid through several maps contributes the union of all
   their images under one key *)
let reads_by_grid t =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (g, m) ->
      let lats = List.map (Footprint.affine_image m) t.tiles in
      (match Hashtbl.find_opt tbl g with
      | None -> order := g :: !order
      | Some _ -> ());
      Hashtbl.replace tbl g
        (Option.value ~default:[] (Hashtbl.find_opt tbl g) @ lats))
    (Stencil.reads t.stencil);
  List.rev_map (fun g -> (g, Hashtbl.find tbl g)) !order

(* Exhaustive conflict collection.  Tasks are bucketed on grid name first:
   every conflict involves some task's *output* grid, so only pairs that
   share a bucket ever reach the (expensive) lattice intersection — the
   all-pairs loop of the old checker is pruned to writer×writer and
   writer×reader pairs per grid. *)
let wave_conflicts tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let writes = Array.map writes_of arr in
  let reads = Array.map reads_by_grid arr in
  let push tbl g i =
    Hashtbl.replace tbl g (i :: Option.value ~default:[] (Hashtbl.find_opt tbl g))
  in
  let writers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let readers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    push writers arr.(i).stencil.Stencil.output i;
    List.iter (fun (g, _) -> push readers g i) reads.(i)
  done;
  let conflicts = ref [] in
  let add i j grid kind =
    conflicts :=
      {
        first = i;
        second = j;
        first_label = arr.(i).stencil.Stencil.label;
        second_label = arr.(j).stencil.Stencil.label;
        grid;
        kind;
      }
      :: !conflicts
  in
  Hashtbl.iter
    (fun g ws ->
      (* write/write inside the bucket *)
      let rec ww = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if Footprint.lattice_lists_intersect writes.(i) writes.(j)
                then add i j g "write/write")
              rest;
            ww rest
      in
      ww ws;
      (* writer against every reader of the same grid *)
      List.iter
        (fun w ->
          match Hashtbl.find_opt readers g with
          | None -> ()
          | Some rs ->
              List.iter
                (fun r ->
                  if r <> w then
                    let rlats = List.assoc g reads.(r) in
                    if Footprint.lattice_lists_intersect writes.(w) rlats
                    then
                      if w < r then add w r g "write/read"
                      else add r w g "read/write")
                rs)
        ws)
    writers;
  List.sort_uniq compare !conflicts

let waves_conflicts waves =
  List.mapi (fun w wave -> (w, wave_conflicts wave)) waves
  |> List.filter (fun (_, cs) -> cs <> [])

let conflict_to_string c =
  Printf.sprintf "tasks %d (%s) and %d (%s) conflict: %s on grid %s" c.first
    c.first_label c.second c.second_label c.kind c.grid

let check_wave tasks =
  match wave_conflicts tasks with
  | [] -> Ok ()
  | c :: rest ->
      Error
        (conflict_to_string c
        ^
        match rest with
        | [] -> ""
        | _ -> Printf.sprintf " (+%d more)" (List.length rest))

let check_waves waves =
  List.fold_left
    (fun acc wave -> match acc with Ok () -> check_wave wave | e -> e)
    (Ok ()) waves

let openmp_plan config ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let plans = Array.map (Openmp_backend.plan_stencil config ~shape) stencils in
  let waves = Openmp_backend.waves_of config ~shape group in
  List.map
    (fun wave ->
      List.concat_map
        (fun idx ->
          let p = plans.(idx) in
          if p.Openmp_backend.parallel_ok then
            List.map
              (fun tile ->
                { stencil = p.Openmp_backend.stencil; tiles = [ tile ] })
              p.Openmp_backend.tiles
          else
            [ { stencil = p.Openmp_backend.stencil; tiles = p.Openmp_backend.tiles } ])
        wave)
    waves

let opencl_plan config ~shape group =
  List.map
    (fun s ->
      let e = Opencl_backend.plan_stencil config ~shape s in
      if e.Opencl_backend.parallel_ok then
        List.map
          (fun wg -> { stencil = s; tiles = [ wg ] })
          e.Opencl_backend.work_groups
      else [ { stencil = s; tiles = e.Opencl_backend.work_groups } ])
    (Group.stencils group)

(* ------------------------------------------------------- certification *)

let backend_name = function `Openmp -> "openmp" | `Opencl -> "opencl"

let stencil_index group label =
  let rec find i = function
    | [] -> None
    | (s : Stencil.t) :: rest ->
        if String.equal s.Stencil.label label then Some i else find (i + 1) rest
  in
  find 0 (Group.stencils group)

let certify config ~shape ~backend group =
  let plan =
    match backend with
    | `Openmp -> openmp_plan config ~shape group
    | `Opencl -> opencl_plan config ~shape group
  in
  let bname = backend_name backend in
  let overrides =
    List.filter_map
      (fun label ->
        match stencil_index group label with
        | None -> None
        | Some index ->
            let s = List.nth (Group.stencils group) index in
            if Dependence.point_parallel ~shape s then None
            else
              Some
                (Diagnostics.make ~code:"SF022"
                   ~severity:Diagnostics.Warning
                   ~loc:
                     (Srcloc.stencil ~group:group.Group.label ~index label)
                   ~hint:
                     "remove the label from Config.force_parallel unless \
                      the race is provably benign"
                   (Printf.sprintf
                      "stencil is forced parallel although the analysis \
                       found loop-carried dependences; the %s plan tiles it \
                       concurrently"
                      bname)))
      (List.sort_uniq String.compare config.Config.force_parallel)
  in
  let races =
    List.concat_map
      (fun (w, cs) ->
        List.map
          (fun c ->
            let loc =
              match stencil_index group c.first_label with
              | Some index ->
                  Srcloc.stencil ~group:group.Group.label ~index c.first_label
              | None -> Srcloc.stencil ~group:group.Group.label c.first_label
            in
            Diagnostics.make ~code:"SF021" ~severity:Diagnostics.Error ~loc
              ~hint:
                "the tasks need a barrier between them; if a \
                 Config.force_parallel override is set, it is wrong"
              (Printf.sprintf "%s plan, wave %d: %s" bname w
                 (conflict_to_string c)))
          cs)
      (waves_conflicts plan)
  in
  overrides @ races
