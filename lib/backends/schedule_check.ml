open Snowflake
open Sf_analysis

type task = { stencil : Stencil.t; tiles : Domain.resolved list }

type conflict = {
  first : int;
  second : int;
  first_label : string;
  second_label : string;
  grid : string;
  kind : string;
}

let writes_of t =
  List.map (Footprint.affine_image t.stencil.Stencil.out_map) t.tiles

(* reads grouped by grid, imaged over every tile of the task; a stencil
   reading the same grid through several maps contributes the union of all
   their images under one key *)
let reads_by_grid t =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (g, m) ->
      let lats = List.map (Footprint.affine_image m) t.tiles in
      (match Hashtbl.find_opt tbl g with
      | None -> order := g :: !order
      | Some _ -> ());
      Hashtbl.replace tbl g
        (Option.value ~default:[] (Hashtbl.find_opt tbl g) @ lats))
    (Stencil.reads t.stencil);
  List.rev_map (fun g -> (g, Hashtbl.find tbl g)) !order

(* Exhaustive conflict collection.  Tasks are bucketed on grid name first:
   every conflict involves some task's *output* grid, so only pairs that
   share a bucket ever reach the (expensive) lattice intersection — the
   all-pairs loop of the old checker is pruned to writer×writer and
   writer×reader pairs per grid. *)
let wave_conflicts tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let writes = Array.map writes_of arr in
  let reads = Array.map reads_by_grid arr in
  let push tbl g i =
    Hashtbl.replace tbl g (i :: Option.value ~default:[] (Hashtbl.find_opt tbl g))
  in
  let writers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let readers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    push writers arr.(i).stencil.Stencil.output i;
    List.iter (fun (g, _) -> push readers g i) reads.(i)
  done;
  let conflicts = ref [] in
  let add i j grid kind =
    conflicts :=
      {
        first = i;
        second = j;
        first_label = arr.(i).stencil.Stencil.label;
        second_label = arr.(j).stencil.Stencil.label;
        grid;
        kind;
      }
      :: !conflicts
  in
  Hashtbl.iter
    (fun g ws ->
      (* write/write inside the bucket *)
      let rec ww = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if Footprint.lattice_lists_intersect writes.(i) writes.(j)
                then add i j g "write/write")
              rest;
            ww rest
      in
      ww ws;
      (* writer against every reader of the same grid *)
      List.iter
        (fun w ->
          match Hashtbl.find_opt readers g with
          | None -> ()
          | Some rs ->
              List.iter
                (fun r ->
                  if r <> w then
                    let rlats = List.assoc g reads.(r) in
                    if Footprint.lattice_lists_intersect writes.(w) rlats
                    then
                      if w < r then add w r g "write/read"
                      else add r w g "read/write")
                rs)
        ws)
    writers;
  List.sort_uniq compare !conflicts

let waves_conflicts waves =
  List.mapi (fun w wave -> (w, wave_conflicts wave)) waves
  |> List.filter (fun (_, cs) -> cs <> [])

let conflict_to_string c =
  Printf.sprintf "tasks %d (%s) and %d (%s) conflict: %s on grid %s" c.first
    c.first_label c.second c.second_label c.kind c.grid

let check_wave tasks =
  match wave_conflicts tasks with
  | [] -> Ok ()
  | c :: rest ->
      Error
        (conflict_to_string c
        ^
        match rest with
        | [] -> ""
        | _ -> Printf.sprintf " (+%d more)" (List.length rest))

let check_waves waves =
  List.fold_left
    (fun acc wave -> match acc with Ok () -> check_wave wave | e -> e)
    (Ok ()) waves

let openmp_plan config ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let plans = Array.map (Openmp_backend.plan_stencil config ~shape) stencils in
  let waves = Openmp_backend.waves_of config ~shape group in
  List.map
    (fun wave ->
      List.concat_map
        (fun idx ->
          let p = plans.(idx) in
          if p.Openmp_backend.parallel_ok then
            List.map
              (fun tile ->
                { stencil = p.Openmp_backend.stencil; tiles = [ tile ] })
              p.Openmp_backend.tiles
          else
            [ { stencil = p.Openmp_backend.stencil; tiles = p.Openmp_backend.tiles } ])
        wave)
    waves

let opencl_plan config ~shape group =
  List.map
    (fun s ->
      let e = Opencl_backend.plan_stencil config ~shape s in
      if e.Opencl_backend.parallel_ok then
        List.map
          (fun wg -> { stencil = s; tiles = [ wg ] })
          e.Opencl_backend.work_groups
      else [ { stencil = s; tiles = e.Opencl_backend.work_groups } ])
    (Group.stencils group)

(* ----------------------------------------------------- fused-plan tasks

   A fused task runs several stencils in program order over the same
   tiles, so it may write several grids; the single-output bucketing
   above does not fit.  The core is the same — bucket on grid name,
   intersect only writer x writer and writer x reader pairs — with writes
   kept per grid.  Intra-task overlap is never a conflict (members run
   sequentially within the task). *)

type fused_task = { members : Stencil.t list; ftiles : Domain.resolved list }

let fused_label f =
  String.concat "+" (List.map (fun (s : Stencil.t) -> s.Stencil.label) f.members)

(* merge duplicate grid keys, preserving first-occurrence order *)
let group_lats assocs =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (g, lats) ->
      (match Hashtbl.find_opt tbl g with
      | None -> order := g :: !order
      | Some _ -> ());
      Hashtbl.replace tbl g
        (Option.value ~default:[] (Hashtbl.find_opt tbl g) @ lats))
    assocs;
  List.rev_map (fun g -> (g, Hashtbl.find tbl g)) !order

let fused_writes f =
  group_lats
    (List.map
       (fun (s : Stencil.t) ->
         ( s.Stencil.output,
           List.map (Footprint.affine_image s.Stencil.out_map) f.ftiles ))
       f.members)

let fused_reads f =
  group_lats
    (List.concat_map
       (fun (s : Stencil.t) ->
         List.map
           (fun (g, m) -> (g, List.map (Footprint.affine_image m) f.ftiles))
           (Stencil.reads s))
       f.members)

let fused_wave_conflicts (tasks : fused_task list) =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let writes = Array.map fused_writes arr in
  let reads = Array.map fused_reads arr in
  let push tbl g i =
    Hashtbl.replace tbl g
      (i :: Option.value ~default:[] (Hashtbl.find_opt tbl g))
  in
  let writers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let readers : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    List.iter (fun (g, _) -> push writers g i) writes.(i);
    List.iter (fun (g, _) -> push readers g i) reads.(i)
  done;
  let conflicts = ref [] in
  let add i j grid kind =
    let i, j, kind =
      if i <= j then (i, j, kind)
      else
        ( j,
          i,
          match kind with
          | "write/read" -> "read/write"
          | "read/write" -> "write/read"
          | k -> k )
    in
    conflicts :=
      {
        first = i;
        second = j;
        first_label = fused_label arr.(i);
        second_label = fused_label arr.(j);
        grid;
        kind;
      }
      :: !conflicts
  in
  Hashtbl.iter
    (fun g ws ->
      let wlats i = List.assoc g writes.(i) in
      let rec ww = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if Footprint.lattice_lists_intersect (wlats i) (wlats j) then
                  add i j g "write/write")
              rest;
            ww rest
      in
      ww ws;
      List.iter
        (fun w ->
          match Hashtbl.find_opt readers g with
          | None -> ()
          | Some rs ->
              List.iter
                (fun r ->
                  if r <> w then
                    let rlats = List.assoc g reads.(r) in
                    if Footprint.lattice_lists_intersect (wlats w) rlats then
                      add w r g "write/read")
                rs)
        ws)
    writers;
  List.sort_uniq compare !conflicts

let fused_waves_conflicts waves =
  List.mapi (fun w wave -> (w, fused_wave_conflicts wave)) waves
  |> List.filter (fun (_, cs) -> cs <> [])

let singleton_openmp_tasks config ~shape s =
  let p = Openmp_backend.plan_stencil config ~shape s in
  if p.Openmp_backend.parallel_ok then
    List.map
      (fun tile -> { members = [ s ]; ftiles = [ tile ] })
      p.Openmp_backend.tiles
  else [ { members = [ s ]; ftiles = p.Openmp_backend.tiles } ]

let fused_openmp_plan config ~shape group =
  let clusters = Array.of_list (Fusion.partition config ~shape group) in
  let waves = Fusion.waves ~shape (Array.to_list clusters) in
  List.map
    (fun wave ->
      List.concat_map
        (fun ci ->
          let c = clusters.(ci) in
          match c.Fusion.members with
          | [ s ] -> singleton_openmp_tasks config ~shape s
          | members ->
              List.map
                (fun tile -> { members; ftiles = [ tile ] })
                (Fusion.cluster_tiles config ~shape c))
        wave)
    waves

let fused_opencl_plan config ~shape group =
  (* in-order queue: every cluster enqueue is its own wave *)
  List.map
    (fun (c : Fusion.cluster) ->
      match c.Fusion.members with
      | [ s ] ->
          let e = Opencl_backend.plan_stencil config ~shape s in
          if e.Opencl_backend.parallel_ok then
            List.map
              (fun wg -> { members = [ s ]; ftiles = [ wg ] })
              e.Opencl_backend.work_groups
          else [ { members = [ s ]; ftiles = e.Opencl_backend.work_groups } ]
      | members ->
          List.map
            (fun wg -> { members; ftiles = [ wg ] })
            (Fusion.cluster_work_groups config ~shape c))
    (Fusion.partition config ~shape group)

(* ------------------------------------------------------- certification *)

let backend_name = function `Openmp -> "openmp" | `Opencl -> "opencl"

let stencil_index group label =
  let rec find i = function
    | [] -> None
    | (s : Stencil.t) :: rest ->
        if String.equal s.Stencil.label label then Some i else find (i + 1) rest
  in
  find 0 (Group.stencils group)

let certify config ~shape ~backend group =
  let plan =
    match backend with
    | `Openmp -> openmp_plan config ~shape group
    | `Opencl -> opencl_plan config ~shape group
  in
  let bname = backend_name backend in
  let overrides =
    List.filter_map
      (fun label ->
        match stencil_index group label with
        | None -> None
        | Some index ->
            let s = List.nth (Group.stencils group) index in
            if Dependence.point_parallel ~shape s then None
            else
              Some
                (Diagnostics.make ~code:"SF022"
                   ~severity:Diagnostics.Warning
                   ~loc:
                     (Srcloc.stencil ~group:group.Group.label ~index label)
                   ~hint:
                     "remove the label from Config.force_parallel unless \
                      the race is provably benign"
                   (Printf.sprintf
                      "stencil is forced parallel although the analysis \
                       found loop-carried dependences; the %s plan tiles it \
                       concurrently"
                      bname)))
      (List.sort_uniq String.compare config.Config.force_parallel)
  in
  let races =
    List.concat_map
      (fun (w, cs) ->
        List.map
          (fun c ->
            let loc =
              match stencil_index group c.first_label with
              | Some index ->
                  Srcloc.stencil ~group:group.Group.label ~index c.first_label
              | None -> Srcloc.stencil ~group:group.Group.label c.first_label
            in
            Diagnostics.make ~code:"SF021" ~severity:Diagnostics.Error ~loc
              ~hint:
                "the tasks need a barrier between them; if a \
                 Config.force_parallel override is set, it is wrong"
              (Printf.sprintf "%s plan, wave %d: %s" bname w
                 (conflict_to_string c)))
          cs)
      (waves_conflicts plan)
  in
  (* with fusion on, the backend executes the fused plan — re-prove it
     race-free at fused-task granularity (only when something actually
     fused: otherwise the fused plan is the base plan already checked) *)
  let fused =
    let clusters = Fusion.partition config ~shape group in
    if not (config.Config.fusion && Fusion.fused_count clusters > 0) then []
    else
      let fplan =
        match backend with
        | `Openmp -> fused_openmp_plan config ~shape group
        | `Opencl -> fused_opencl_plan config ~shape group
      in
      List.concat_map
        (fun (w, cs) ->
          List.map
            (fun c ->
              Diagnostics.make ~code:"SF023" ~severity:Diagnostics.Error
                ~loc:(Srcloc.group group.Group.label)
                ~hint:
                  "the cluster is not cofusible under this configuration; \
                   disable fusion for this group or split the cluster"
                (Printf.sprintf "%s fused plan, wave %d: %s" bname w
                   (conflict_to_string c)))
            cs)
        (fused_waves_conflicts fplan)
  in
  overrides @ races @ fused

(* ------------------------------------------------ time-tile certification *)

let certify_timetile _config ~shape group =
  List.map
    (fun (label, reason) ->
      Diagnostics.make ~code:"SF025" ~severity:Diagnostics.Error
        ~loc:
          (match stencil_index group label with
          | Some index -> Srcloc.stencil ~group:group.Group.label ~index label
          | None -> Srcloc.stencil ~group:group.Group.label label)
        ~hint:
          "time-tiling needs identity writes, point-parallel sub-steps and \
           unit-scale reads of group-written grids; run the smoother \
           untiled (Config.time_tile = 1)"
        (Printf.sprintf "group cannot be time-tiled: stencil %s" reason))
    (Timetile.illegalities ~shape group)

let certify_timetile_plan config ~shape (p : Timetile.plan) =
  let base = certify_timetile config ~shape p.Timetile.group in
  let req = Timetile.required_skew p.Timetile.group in
  if p.Timetile.skew >= req then base
  else
    Diagnostics.make ~code:"SF024" ~severity:Diagnostics.Error
      ~loc:(Srcloc.group p.Timetile.group.Group.label)
      ~hint:
        (Printf.sprintf "raise the skew to at least %d (the maximum axis-0 \
                         dependence distance of the group)" req)
      (Printf.sprintf
         "time-tile skew %d is below the dependence slope %d: slab seams \
          would read stale or future values"
         p.Timetile.skew req)
    :: base
