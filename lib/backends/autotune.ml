(* Persistent roofline-guided autotuning (ROADMAP item 2).

   The plan space is the cross product the backends understand: fusion
   partition on/off x spatial tile sizes x temporal depth/block.  Plans
   are ranked *analytically* first — Costing's single-pass models joined
   with the measured (or assumed) STREAM bandwidth give a predicted time
   per plan — and only the top few predictions are confirmed by timed
   runs through the pool, so a tune costs a handful of kernel
   invocations, not an exhaustive sweep.  Winners persist in a JSON DB
   keyed by (group, shape, backend, workers, reps, machine fingerprint):
   a later run on the same machine replays the winning plan without
   measuring anything, and a run on different hardware or worker count
   misses and re-tunes. *)

open Sf_util
module Trace = Sf_trace.Trace
module Json = Sf_trace.Json

type plan = {
  fusion : bool;
  tile : int list option;
  time_tile : int;  (** 1 = no temporal blocking *)
  time_block : int;  (** axis-0 slab size, 0 = auto *)
}

let plan_of_config (c : Config.t) =
  {
    fusion = c.Config.fusion;
    tile = c.Config.tile;
    time_tile = c.Config.time_tile;
    time_block = c.Config.time_block;
  }

let apply p (c : Config.t) =
  {
    c with
    Config.fusion = p.fusion;
    tile = p.tile;
    time_tile = p.time_tile;
    time_block = p.time_block;
  }

let describe p =
  let tile =
    match p.tile with
    | None -> "auto"
    | Some t -> String.concat "x" (List.map string_of_int t)
  in
  Printf.sprintf "fusion=%b tile=%s time_tile=%d time_block=%d" p.fusion tile
    p.time_tile p.time_block

type source = Db | Measured | Analytic

let source_to_string = function
  | Db -> "db"
  | Measured -> "measured"
  | Analytic -> "analytic"

type result = {
  plan : plan;
  config : Config.t;  (** the caller's config with the plan applied *)
  predicted_s : float;
  measured_s : float option;  (** [None] on a DB hit or analytic-only tune *)
  source : source;
}

(* ------------------------------------------------------------- the key *)

let machine_fingerprint () =
  Printf.sprintf "%s/w%d/d%d" Sys.os_type Sys.word_size
    (Stdlib.Domain.recommended_domain_count ())

let default_db_path () =
  match Sys.getenv_opt "SF_TUNE_DB" with
  | Some p when String.trim p <> "" -> p
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some home when String.trim home <> "" ->
          List.fold_left Filename.concat home
            [ ".cache"; "snowflake"; "tuning.json" ]
      | _ -> Filename.concat "." ".snowflake-tuning.json")

type key = {
  group_hash : int;
  label : string;
  shape : int list;
  backend : string;
  workers : int;
  reps : int;
  machine : string;
}

let key ~config ~backend ~shape ~reps (group : Snowflake.Group.t) =
  {
    group_hash = Snowflake.Group.hash group;
    label = group.Snowflake.Group.label;
    shape = Ivec.to_list shape;
    backend;
    workers = config.Config.workers;
    reps;
    machine = machine_fingerprint ();
  }

(* ---------------------------------------------------------- JSON coding *)

let json_of_key k =
  [
    (* hex string, not Num: group hashes use the full 63-bit range and a
       JSON double only carries 53 bits of integer precision *)
    ("group_hash", Json.Str (Printf.sprintf "%x" k.group_hash));
    ("label", Json.Str k.label);
    ("shape", Json.Arr (List.map (fun d -> Json.Num (float_of_int d)) k.shape));
    ("backend", Json.Str k.backend);
    ("workers", Json.Num (float_of_int k.workers));
    ("reps", Json.Num (float_of_int k.reps));
    ("machine", Json.Str k.machine);
  ]

let json_of_plan p =
  Json.Obj
    [
      ("fusion", Json.Bool p.fusion);
      ( "tile",
        match p.tile with
        | None -> Json.Null
        | Some t -> Json.Arr (List.map (fun d -> Json.Num (float_of_int d)) t)
      );
      ("time_tile", Json.Num (float_of_int p.time_tile));
      ("time_block", Json.Num (float_of_int p.time_block));
    ]

let int_member name obj =
  match Json.member name obj with
  | Some (Json.Num f) -> Some (int_of_float f)
  | _ -> None

let str_member name obj =
  match Json.member name obj with Some (Json.Str s) -> Some s | _ -> None

let plan_of_json j =
  match (Json.member "fusion" j, int_member "time_tile" j) with
  | Some (Json.Bool fusion), Some time_tile ->
      let tile =
        match Json.member "tile" j with
        | Some (Json.Arr ds) ->
            Some
              (List.filter_map
                 (function Json.Num f -> Some (int_of_float f) | _ -> None)
                 ds)
        | _ -> None
      in
      let time_block =
        Option.value ~default:0 (int_member "time_block" j)
      in
      Some { fusion; tile; time_tile; time_block }
  | _ -> None

let key_matches k entry =
  str_member "group_hash" entry = Some (Printf.sprintf "%x" k.group_hash)
  && str_member "label" entry = Some k.label
  && str_member "backend" entry = Some k.backend
  && int_member "workers" entry = Some k.workers
  && int_member "reps" entry = Some k.reps
  && str_member "machine" entry = Some k.machine
  &&
  match Json.member "shape" entry with
  | Some (Json.Arr ds) ->
      List.filter_map
        (function Json.Num f -> Some (int_of_float f) | _ -> None)
        ds
      = k.shape
  | _ -> false

(* -------------------------------------------------------------- the DB *)

let load_entries path =
  if not (Sys.file_exists path) then []
  else
    match
      In_channel.with_open_text path In_channel.input_all |> Json.of_string
    with
    | Ok (Json.Obj fields) -> (
        match List.assoc_opt "entries" fields with
        | Some (Json.Arr entries) -> entries
        | _ -> [])
    | _ -> [] (* a corrupt DB is equivalent to an empty one *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomic publication: write a *unique* temp file in the DB's directory,
   then rename over the DB.  The temp name must be unique per writer — a
   fixed [path ^ ".tmp"] lets two processes sharing one DB (many tenants,
   one tuning cache) interleave writes into the same temp file and rename
   torn bytes into place, or race the rename itself ([Sys_error] when the
   loser's temp vanished).  [Filename.temp_file] creates the file
   exclusively, so concurrent writers each publish a complete document and
   the DB is last-writer-wins but never corrupt. *)
let save_entries path entries =
  mkdir_p (Filename.dirname path);
  let doc =
    Json.Obj [ ("version", Json.Num 1.); ("entries", Json.Arr entries) ]
  in
  let tmp =
    Filename.temp_file ~temp_dir:(Filename.dirname path)
      (Filename.basename path ^ ".") ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          Out_channel.output_string oc (Json.to_string doc);
          Out_channel.output_string oc "\n");
      Sys.rename tmp path)

let db_lookup ~path k =
  List.find_map
    (fun entry ->
      if key_matches k entry then
        Option.bind (Json.member "plan" entry) (fun p -> plan_of_json p)
      else None)
    (load_entries path)

let db_store ~path k plan ~predicted_s ~measured_s =
  let keep =
    List.filter (fun entry -> not (key_matches k entry)) (load_entries path)
  in
  let entry =
    Json.Obj
      (json_of_key k
      @ [
          ("plan", json_of_plan plan);
          ("predicted_s", Json.Num predicted_s);
          ("measured_s", Json.Num measured_s);
        ])
  in
  save_entries path (keep @ [ entry ])

(* ------------------------------------------------- candidates + ranking *)

let tile_options shape =
  let ndims = Array.length shape in
  let cube d = Some (List.init ndims (fun _ -> d)) in
  [ None; cube 8; cube 16 ]

let candidates (config : Config.t) ~shape ~reps group =
  let fusible =
    Fusion.fused_count
      (Fusion.partition { config with Config.fusion = true } ~shape group)
    > 0
  in
  let fusions = if fusible then [ false; true ] else [ false ] in
  let spatial =
    List.concat_map
      (fun fusion ->
        List.map
          (fun tile -> { fusion; tile; time_tile = 1; time_block = 0 })
          (tile_options shape))
      fusions
  in
  let temporal =
    if reps >= 2 && Timetile.legal ~shape group then
      List.map
        (fun time_block ->
          { fusion = false; tile = config.Config.tile; time_tile = reps;
            time_block })
        [ 0; 8; 16 ]
    else []
  in
  spatial @ temporal

(* assumed sustained rates when no STREAM measurement has been joined:
   pessimistic bandwidth, optimistic-enough flops — bytes dominate for
   every stencil in this repository, matching the roofline reports *)
let fallback_bw_gbs = 10.
let flops_per_s = 2e9

let predicted_seconds (config : Config.t) ~shape ~reps group p =
  let cost =
    if p.time_tile > 1 then Costing.of_timetile ~shape ~reps group
    else
      let one =
        if p.fusion then
          Costing.of_clusters ~shape
            (List.map
               (fun (c : Fusion.cluster) -> c.Fusion.members)
               (Fusion.partition (apply p config) ~shape group))
        else Costing.of_group ~shape group
      in
      {
        Costing.cells = reps * one.Costing.cells;
        flops = reps * one.Costing.flops;
        bytes = reps * one.Costing.bytes;
      }
  in
  let bw = Trace.bandwidth_gbs () in
  let bw = if bw > 0. then bw else fallback_bw_gbs in
  (float_of_int cost.Costing.bytes /. (bw *. 1e9))
  +. (float_of_int cost.Costing.flops /. flops_per_s)

let tune ?db ?(top = 3) ?(persist = true) ~config ~backend ~shape ~reps
    ~measure group =
  let path = match db with Some p -> p | None -> default_db_path () in
  let bname = Jit.backend_name backend in
  let k = key ~config ~backend:bname ~shape ~reps group in
  match db_lookup ~path k with
  | Some plan ->
      Trace.add Trace.Tune_db_hits 1;
      {
        plan;
        config = apply plan config;
        predicted_s = predicted_seconds config ~shape ~reps group plan;
        measured_s = None;
        source = Db;
      }
  | None ->
      Trace.add Trace.Tune_db_misses 1;
      let ranked =
        candidates config ~shape ~reps group
        |> List.map (fun p ->
               (p, predicted_seconds config ~shape ~reps group p))
        |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
      in
      let confirm = List.filteri (fun i _ -> i < max 1 top) ranked in
      let winner =
        confirm
        |> List.map (fun (p, predicted_s) ->
               (p, predicted_s, measure (apply p config)))
        |> List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
        |> List.hd
      in
      let plan, predicted_s, measured_s = winner in
      if persist then
        db_store ~path k plan ~predicted_s ~measured_s;
      {
        plan;
        config = apply plan config;
        predicted_s;
        measured_s = Some measured_s;
        source = Measured;
      }

(* ------------------------------------------- direct DB access (served) *)

let db_is_wellformed ~db =
  (not (Sys.file_exists db))
  ||
  match
    In_channel.with_open_text db In_channel.input_all |> Json.of_string
  with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "entries" fields with
      | Some (Json.Arr _) -> true
      | _ -> false)
  | _ -> false

let db_entry_count ~db = List.length (load_entries db)

let db_persist ~db ~config ~backend ~shape ~reps ~plan ?(predicted_s = 0.)
    ?(measured_s = 0.) group =
  let k = key ~config ~backend:(Jit.backend_name backend) ~shape ~reps group in
  db_store ~path:db k plan ~predicted_s ~measured_s

let db_replay ~db ~config ~backend ~shape ~reps group =
  db_lookup ~path:db
    (key ~config ~backend:(Jit.backend_name backend) ~shape ~reps group)
