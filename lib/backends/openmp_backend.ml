(* The OpenMP-style micro-compiler (paper §IV.A).

   Lowering: the group's stencils are partitioned into waves by the greedy
   barrier-placement (or by DAG levels); each point-parallel stencil is
   split into subtasks (explicit tiles, or outer-axis chunks); a wave's
   tasks are farmed to the pool and joined — the join is the OpenMP
   barrier.  Stencils the analysis cannot prove point-parallel run as a
   single sequential task, preserving the in-place sequential semantics
   while still overlapping with independent stencils of the same wave.
   Waves below the configured point-count cutoff run inline on the calling
   domain (coarse multigrid levels are cheaper serial than dispatched). *)

open Snowflake
open Sf_analysis

type stencil_plan = {
  stencil : Stencil.t;
  tiles : Domain.resolved list;  (** independent iff [parallel_ok] *)
  parallel_ok : bool;
}

let plan_stencil (cfg : Config.t) ~shape s =
  let rects = Domain.resolve ~shape s.Stencil.domain in
  let parallel_ok =
    Dependence.point_parallel ~shape s
    || List.mem s.Stencil.label cfg.Config.force_parallel
  in
  let tiles =
    if not parallel_ok then rects
    else
      let tile_rect r =
        match cfg.Config.tile with
        | Some t -> Tiling.split ~tile:t r
        | None -> Tiling.split_outer ~chunks:cfg.Config.chunks r
      in
      let per_rect = List.map tile_rect rects in
      if cfg.Config.multicolor then Multicolor.interleave per_rect
      else List.concat per_rect
  in
  { stencil = s; tiles; parallel_ok }

let waves_of cfg ~shape group =
  match cfg.Config.schedule with
  | Config.Greedy_waves -> Schedule.greedy_waves ~shape group
  | Config.Dag_levels -> Schedule.dag_waves (Schedule.build_dag ~shape group)

(* Fused lowering: waves are placed at cluster granularity, a singleton
   cluster keeps its per-stencil plan (byte-identical tasks to the
   unfused path) and a multi-member cluster becomes one task per shared
   tile, running its members in program order over that tile — a single
   pass over the cluster's grids.  Legality is Fusion.cofusible, and
   Jit re-proves the executed plan race-free (SF023) under
   Config.certify. *)
let compile_fused (cfg : Config.t) ~shape (group : Group.t)
    (clusters : Fusion.cluster list) =
  let shape = Array.copy shape in
  let clusters = Array.of_list clusters in
  let plans =
    Array.map
      (fun (c : Fusion.cluster) ->
        match c.Fusion.members with
        | [ s ] ->
            let p = plan_stencil cfg ~shape s in
            (c.Fusion.members, p.tiles, p.parallel_ok)
        | members -> (members, Fusion.cluster_tiles cfg ~shape c, true))
      clusters
  in
  let plan_points =
    Array.map
      (fun (members, tiles, _) ->
        Domain.npoints_union tiles * List.length members)
      plans
  in
  let waves = Fusion.waves ~shape (Array.to_list clusters) in
  let pool =
    Pool.create ~workers:cfg.Config.workers
    |> Pool.with_serial_cutoff cfg.Config.serial_cutoff
  in
  let description =
    Printf.sprintf
      "openmp+fusion: %d stencil(s) as %d cluster(s) in %d wave(s); %d \
       worker(s); partition %s"
      (Group.length group) (Array.length clusters) (List.length waves)
      (Pool.workers pool)
      (Fusion.describe (Array.to_list clusters))
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    let task_waves =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          if cfg.Config.validate then
            Array.iter
              (fun (members, _, _) ->
                List.iter (Exec.validate_stencil grids ~shape) members)
              plans;
          List.map
            (fun wave ->
              let points =
                List.fold_left (fun acc ci -> acc + plan_points.(ci)) 0 wave
              in
              let tasks =
                List.concat_map
                  (fun ci ->
                    let members, tiles, parallel_ok = plans.(ci) in
                    let instantiates =
                      List.map
                        (fun (s : Stencil.t) ->
                          let lookup =
                            Kernel.param_lookup
                              ~loc:
                                (Srcloc.stencil ~group:group.Group.label
                                   s.Stencil.label)
                              params
                          in
                          Exec.prepare_compiled grids ~params:lookup s)
                        members
                    in
                    let thunks =
                      List.map
                        (fun tile ->
                          match instantiates with
                          | [ inst ] -> inst tile
                          | insts ->
                              let fs = List.map (fun inst -> inst tile) insts in
                              fun () -> List.iter (fun f -> f ()) fs)
                        tiles
                    in
                    if parallel_ok then thunks
                    else [ (fun () -> List.iter (fun f -> f ()) thunks) ])
                  wave
                |> Array.of_list
              in
              (points, tasks))
            waves)
    in
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i (points, tasks) ->
          let module Trace = Sf_trace.Trace in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("points", Trace.Int points);
                ("tasks", Trace.Int (Array.length tasks));
                ("fused", Trace.Int (Fusion.fused_count (Array.to_list clusters)));
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () ->
              Serial_backend.wave_fault group i;
              Pool.run_tasks ~points pool tasks))
        task_waves
    else
      List.iteri
        (fun i (points, tasks) ->
          Serial_backend.wave_fault group i;
          Pool.run_tasks ~points pool tasks)
        task_waves
  in
  Kernel.make ~name:group.Group.label ~backend:"openmp" ~description run

let compile_unfused (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let stencils = Array.of_list (Group.stencils group) in
  let plans = Array.map (plan_stencil cfg ~shape) stencils in
  let plan_points = Array.map (fun p -> Domain.npoints_union p.tiles) plans in
  let waves = waves_of cfg ~shape group in
  (* a view of the process-wide persistent domain pool: every kernel shares
     the same hot workers, capped here at the configured degree *)
  let pool =
    Pool.create ~workers:cfg.Config.workers
    |> Pool.with_serial_cutoff cfg.Config.serial_cutoff
  in
  let description =
    Format.asprintf "openmp: %d stencil(s) in %d wave(s); %d worker(s)@ %a"
      (Array.length stencils) (List.length waves) (Pool.workers pool)
      Schedule.pp_waves waves
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    let task_waves =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          if cfg.Config.validate then
            Array.iter
              (fun p -> Exec.validate_stencil grids ~shape p.stencil)
              plans;
          List.map
            (fun wave ->
              let points =
                List.fold_left (fun acc idx -> acc + plan_points.(idx)) 0 wave
              in
              let tasks =
                List.concat_map
                  (fun idx ->
                    let p = plans.(idx) in
                    let lookup =
                      Kernel.param_lookup
                        ~loc:
                          (Srcloc.stencil ~group:group.Group.label
                             p.stencil.Stencil.label)
                        params
                    in
                    let instantiate =
                      Exec.prepare_compiled grids ~params:lookup p.stencil
                    in
                    let thunks = List.map instantiate p.tiles in
                    if p.parallel_ok then thunks
                    else [ (fun () -> List.iter (fun f -> f ()) thunks) ])
                  wave
                |> Array.of_list
              in
              (points, tasks))
            waves)
    in
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i (points, tasks) ->
          let module Trace = Sf_trace.Trace in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("points", Trace.Int points);
                ("tasks", Trace.Int (Array.length tasks));
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () ->
              Serial_backend.wave_fault group i;
              Pool.run_tasks ~points pool tasks))
        task_waves
    else
      List.iteri
        (fun i (points, tasks) ->
          Serial_backend.wave_fault group i;
          Pool.run_tasks ~points pool tasks)
        task_waves
  in
  Kernel.make ~name:group.Group.label ~backend:"openmp" ~description run

let compile (cfg : Config.t) ~shape (group : Group.t) =
  let clusters = Fusion.partition cfg ~shape group in
  if Fusion.fused_count clusters > 0 then compile_fused cfg ~shape group clusters
  else compile_unfused cfg ~shape group
