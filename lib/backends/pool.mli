(** A persistent work-sharing pool over OCaml domains.

    This is the substrate standing in for the paper's OpenMP runtime.  The
    paper's backend amortises thread startup across the whole run: OpenMP
    keeps its worker threads alive between parallel regions and farms tasks
    to them.  This module does the same with domains — one process-wide set
    of worker domains is spawned lazily on first use, parks on a
    mutex/condition pair while idle, and executes task batches published
    through a single epoch-stamped slot with an atomic work index.  A wave
    join is therefore a fence over the shared slot, not a round of
    [Domain.spawn]/[Domain.join] pairs.

    A {!t} is a cheap *view* of that shared domain set: it only records the
    degree of parallelism (like [OMP_NUM_THREADS]) and the serial cutoff.
    Creating one allocates nothing and spawns nothing; every kernel
    compiled by the OpenMP/OpenCL micro-compilers shares the same hot
    workers.

    Tasks within one batch MUST be independent — that is exactly what the
    Diophantine analysis certifies before a backend enqueues them.

    Re-entrancy: a batch submitted from inside a pool task (same or other
    view) executes inline on the calling domain instead of deadlocking on
    the publication slot.  Exceptions raised by tasks abort the batch (the
    remaining tasks are skipped), the join still completes, the first
    exception is re-raised on the submitter, and the pool stays usable. *)

type t

val create : workers:int -> t
(** A view capped at [workers] (values below 2 mean inline execution).
    Cheap: worker domains are global, spawned lazily on first parallel
    batch, and shared by every view.  The serial cutoff defaults to
    {!Config.default_serial_cutoff}. *)

val with_serial_cutoff : int -> t -> t
(** Set the lattice-point threshold below which a batch carrying a
    [points] hint runs inline — dispatching a handful of points to the
    pool costs more than computing them. *)

val global : unit -> t
(** The default view, sized from [SF_WORKERS] (via {!Config.default}). *)

val workers : t -> int

val sequential : t
(** A view that always runs inline. *)

val run_tasks : ?points:int -> t -> (unit -> unit) array -> unit
(** Execute all tasks and return when every one has finished.  Tasks are
    distributed dynamically (an atomic work counter — task farming, not
    static chunking, matching the paper's OpenMP backend).  [points] is the
    total number of lattice points the batch touches; batches below the
    view's serial cutoff run inline (the adaptive serial fallback that
    keeps coarse multigrid levels cheap).  Exceptions in tasks are
    re-raised on the caller after the join. *)

val parallel_range : ?grain:int -> t -> int -> (int -> int -> unit) -> unit
(** [parallel_range ~grain pool n f] covers [0, n) with disjoint chunks of
    at most [grain] indices and calls [f lo hi] (hi exclusive) for each —
    one closure per *chunk*, not per index.  [grain] defaults to about four
    chunks per worker.  [n] counts as the batch's lattice points: ranges
    below the view's serial cutoff run inline (chunk by chunk, on the
    calling domain) exactly as {!run_tasks} does with a [points] hint. *)

val parallel_for : ?grain:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f 0 .. f (n-1)]; a thin wrapper over
    {!parallel_range} kept for compatibility. *)

val shutdown : unit -> unit
(** Park-then-join every worker domain.  Idempotent; registered [at_exit].
    The pool remains usable afterwards (workers respawn lazily on the next
    parallel batch).  Safe to reach from {e any} domain, including a worker
    itself — e.g. the [at_exit] invocation after user code called [exit]
    from inside a pool chunk: the calling domain is never joined (it stays
    reapable by a later shutdown from another domain), so process exit
    cannot deadlock on a self-join. *)

(** {2 Instrumentation}

    [live_domains] is an instantaneous gauge (worker domains currently
    parked or working); every other field is a session counter covering
    the window since the last {!reset_stats} — including [spawned], so a
    report after a reset never mixes lifetime spawns with per-session
    jobs/chunks.  When tracing is enabled ({!Sf_trace.Trace.on}) the pool
    additionally mirrors dispatch/steal/inline increments into the trace
    counters and emits a [chunk] span per executed chunk; when disabled,
    each instrumentation site costs one atomic load and a branch. *)

type stats = {
  live_domains : int;  (** gauge: worker domains currently alive *)
  spawned : int;  (** domains spawned since the last {!reset_stats} *)
  jobs : int;  (** parallel batches dispatched through the shared slot *)
  chunks : int;  (** total chunks executed by dispatched batches *)
  stolen : int;  (** chunks executed by helper domains (not the submitter) *)
  inline_runs : int;
      (** batches run inline: sequential views, single tasks, nested
          submissions and below-cutoff waves/ranges *)
  skipped : int;
      (** chunks drained {e without running} because their batch had
          already failed — the abort path's footprint.  Mirrored into the
          [Tasks_skipped] trace counter when tracing is on, so an aborted
          batch is distinguishable from a completed one. *)
}

val stats : unit -> stats

val reset_stats : unit -> unit
(** Zero every session counter ([spawned], [jobs], [chunks], [stolen],
    [inline_runs], [skipped]).  [live_domains] is unaffected: helpers stay
    parked. *)

val pp_stats : Format.formatter -> stats -> unit
