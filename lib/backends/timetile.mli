(** Temporal blocking: fold [k] consecutive applications of a group into
    one skewed, slab-blocked sweep costing ~one pass of memory traffic.

    The [k] applications are flattened into [k * Group.length] sub-steps;
    the outermost axis is blocked into slabs of [block] lattice points,
    and sub-step [q]'s slab window is shifted down by [q * skew] — the
    classical skewed (trapezoidal) time tile, with the skew taken from
    the dependence slope (max |axis-0 offset| of any unit-scale read of a
    group-written grid).  Slab columns run sequentially, so results are
    {e bitwise identical} to [k] plain applications at any worker count.

    Legality ([legal]): every stencil writes through an identity
    [out_map], is point-parallel, and reads group-written grids only at
    unit scale.  [plan] returns [None] otherwise, and
    [Schedule_check.certify_timetile] / [certify_timetile_plan] turn
    violations (and under-skewed plans) into stable [SF024]/[SF025]
    diagnostics so an uncertified plan never reaches a backend. *)

open Sf_util
open Snowflake

type plan = {
  group : Group.t;
  reps : int;  (** applications folded into the sweep (k >= 2) *)
  block : int;  (** axis-0 slab size, lattice points *)
  skew : int;  (** per-sub-step window shift *)
}

val required_skew : Group.t -> int
(** Max |axis-0 offset| over unit-scale reads of group-written grids —
    the smallest legal skew. *)

val illegalities : shape:Ivec.t -> Group.t -> (string * string) list
(** [(stencil label, reason)] for every property that forbids time-tiling
    the group; empty iff {!legal}. *)

val legal : shape:Ivec.t -> Group.t -> bool

val plan :
  ?skew:int ->
  ?block:int ->
  Config.t ->
  shape:Ivec.t ->
  reps:int ->
  Group.t ->
  plan option
(** [None] when [reps < 2] or the group is not {!legal}.  [skew] defaults
    to {!required_skew} (overriding it below that is how the fuzzer's
    mis-skew injection builds a provably wrong plan for the certifier and
    the differential oracle to catch); [block] defaults to
    [Config.time_block], or an automatic size when that is 0. *)

val nsubsteps : plan -> int
val nblocks : plan -> shape:Ivec.t -> int

val describe : plan -> string
(** E.g. ["time depth 4 (block 8, skew 1)"] — the [--profile] plan
    line. *)

val compile : Config.t -> shape:Ivec.t -> plan -> Kernel.t
(** The sequential skewed-slab executor.  One invocation performs
    [plan.reps] applications of the group.  Slab thunks are instantiated
    once per (grids, params) binding via [Run_cache]; each slab column is
    recorded as a [Wave] span when tracing is on. *)
