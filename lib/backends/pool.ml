(* Persistent work-sharing domain pool.

   One process-wide set of worker domains stands in for the paper's
   persistent OpenMP thread team.  Batches are published through a single
   epoch-stamped slot:

     submitter                         worker (parked on [work_available])
     ---------                         -----------------------------------
     ensure helpers spawned            wait while epoch = last seen
     slot := job; epoch++ ------------> wake, read (epoch, slot) under lock
     broadcast                          take a ticket (participation cap)
     drain chunks via [job.next]        drain chunks via [job.next]
     wait pending = 0 <---------------- last chunk broadcasts [quiescent]
     slot := None; reraise failure      park again

   The join is a fence on [job.pending], not a [Domain.join]: domains are
   spawned once (lazily) and reused by every kernel in the process. *)

module Trace = Sf_trace.Trace
module Fault = Sf_resilience.Fault

type job = {
  fn : int -> unit;  (* execute chunk [i] *)
  chunks : int;
  next : int Atomic.t;  (* work index: dynamic task farming *)
  pending : int Atomic.t;  (* chunks not yet finished *)
  failed : exn option Atomic.t;  (* first failure aborts the batch *)
  helper_cap : int;  (* max worker domains that may participate *)
  tickets : int Atomic.t;
}

let lock = Mutex.create ()
let work_available = Condition.create ()  (* new epoch, or shutdown *)
let quiescent = Condition.create ()  (* batch finished / slot freed *)
let epoch = ref 0
let slot : job option ref = ref None
let shutting_down = ref false
let helpers : unit Domain.t list ref = ref []

(* The OCaml runtime supports ~128 concurrent domains; stay well below so
   user code can spawn its own. *)
let max_helpers = 120

(* ---------------------------------------------------------------- stats *)

type stats = {
  live_domains : int;
  spawned : int;
  jobs : int;
  chunks : int;
  stolen : int;
  inline_runs : int;
  skipped : int;
}

let spawned_c = Atomic.make 0
let jobs_c = Atomic.make 0
let chunks_c = Atomic.make 0
let stolen_c = Atomic.make 0
let inline_c = Atomic.make 0
let skipped_c = Atomic.make 0

let stats () =
  Mutex.lock lock;
  let live = List.length !helpers in
  Mutex.unlock lock;
  {
    live_domains = live;
    spawned = Atomic.get spawned_c;
    jobs = Atomic.get jobs_c;
    chunks = Atomic.get chunks_c;
    stolen = Atomic.get stolen_c;
    inline_runs = Atomic.get inline_c;
    skipped = Atomic.get skipped_c;
  }

(* Every counter is a session counter: resetting must cover [spawned_c]
   too, or a later [pp_stats] reports lifetime spawns against per-session
   jobs/chunks.  [live_domains] is instantaneous, not a counter. *)
let reset_stats () =
  Atomic.set spawned_c 0;
  Atomic.set jobs_c 0;
  Atomic.set chunks_c 0;
  Atomic.set stolen_c 0;
  Atomic.set inline_c 0;
  Atomic.set skipped_c 0

let pp_stats ppf s =
  Format.fprintf ppf
    "%d domain(s) live; since last reset: %d spawned, %d batch(es) \
     dispatched, %d chunk(s) (%d stolen by helpers, %d skipped by aborts); \
     %d inline run(s)"
    s.live_domains s.spawned s.jobs s.chunks s.stolen s.skipped s.inline_runs

(* ------------------------------------------------------- chunk execution *)

(* Set while a domain executes pool chunks, so a re-entrant submission from
   inside a task degrades to inline execution instead of deadlocking on the
   single publication slot. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let run_chunks ~stolen job =
  let flag = Domain.DLS.get in_task in
  flag := true;
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.chunks then begin
      (match Atomic.get job.failed with
      | Some _ ->
          (* aborting: drain the index without running — but count what we
             skipped, or an aborted batch looks indistinguishable from a
             completed one in the stats *)
          Atomic.incr skipped_c;
          if Trace.on () then Trace.add Trace.Tasks_skipped 1
      | None -> (
          try
            if Fault.armed () then
              ignore (Fault.fire ~site:"chunk" ~detail:(string_of_int i));
            (* disabled-trace hot path: one Atomic.get and a branch *)
            if Trace.on () then
              Trace.span
                ~args:[ ("chunk", Trace.Int i) ]
                Trace.Chunk "chunk"
                (fun () -> job.fn i)
            else job.fn i
          with e -> ignore (Atomic.compare_and_set job.failed None (Some e))));
      Atomic.incr chunks_c;
      if stolen then begin
        Atomic.incr stolen_c;
        if Trace.on () then Trace.add Trace.Chunks_stolen 1
      end;
      (* last finished chunk releases the submitter's fence *)
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        Mutex.lock lock;
        Condition.broadcast quiescent;
        Mutex.unlock lock
      end;
      loop ()
    end
  in
  loop ();
  flag := false

let rec worker_loop seen =
  Mutex.lock lock;
  while (not !shutting_down) && !epoch = seen do
    Condition.wait work_available lock
  done;
  let stop = !shutting_down in
  let now = !epoch in
  let published = !slot in
  Mutex.unlock lock;
  if not stop then begin
    (match published with
    | Some job when Atomic.fetch_and_add job.tickets 1 < job.helper_cap ->
        run_chunks ~stolen:true job
    | _ -> ()  (* over the participation cap, or a stale slot: park again *));
    worker_loop now
  end

let ensure_helpers n =
  let n = min n max_helpers in
  Mutex.lock lock;
  if (not !shutting_down) && List.length !helpers < n then begin
    let seen = !epoch in
    (try
       for _ = List.length !helpers + 1 to n do
         helpers := Domain.spawn (fun () -> worker_loop seen) :: !helpers;
         Atomic.incr spawned_c
       done
     with _ -> () (* out of domains: proceed with however many we got *))
  end;
  Mutex.unlock lock

(* ------------------------------------------------------------ submission *)

let submit ~helper_cap ~chunks fn =
  let job =
    {
      fn;
      chunks;
      next = Atomic.make 0;
      pending = Atomic.make chunks;
      failed = Atomic.make None;
      helper_cap;
      tickets = Atomic.make 0;
    }
  in
  ensure_helpers helper_cap;
  Mutex.lock lock;
  (* one batch in flight at a time: concurrent submitters queue here *)
  while !slot <> None do
    Condition.wait quiescent lock
  done;
  slot := Some job;
  incr epoch;
  Atomic.incr jobs_c;
  if Trace.on () then Trace.add Trace.Chunks_dispatched chunks;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  (* the submitter is a full participant — with no helpers woken yet it
     simply drains the whole batch itself *)
  run_chunks ~stolen:false job;
  Mutex.lock lock;
  while Atomic.get job.pending > 0 do
    Condition.wait quiescent lock
  done;
  slot := None;
  Condition.broadcast quiescent;
  Mutex.unlock lock;
  match Atomic.get job.failed with Some e -> raise e | None -> ()

(* [shutdown] may run ON a worker domain: [at_exit] handlers execute on
   whichever domain called [exit], and user code inside a pool chunk (a
   fault handler, a test harness aborting a range) is entitled to exit.
   Joining the full helper list from a helper self-joins — [Domain.join]
   on the current domain never returns — which surfaced as a rare hang at
   workers=4 (the exiting chunk must happen to be a *stolen* one).  The
   calling domain is therefore excluded from the join set: it stays in
   [helpers] so a later shutdown from another domain still reaps it, and
   the flag/broadcast handshake below is unchanged.  Joins are also
   exception-proof — a worker death must not strand [shutting_down],
   which would pin the pool inline forever. *)
let shutdown () =
  let self = Domain.self () in
  Mutex.lock lock;
  let ds, kept =
    List.partition (fun d -> Domain.get_id d <> self) !helpers
  in
  helpers := kept;
  if ds <> [] then begin
    shutting_down := true;
    Condition.broadcast work_available
  end;
  Mutex.unlock lock;
  if ds <> [] then begin
    List.iter (fun d -> try Domain.join d with _ -> ()) ds;
    Mutex.lock lock;
    (* reusable: the next parallel batch respawns lazily *)
    shutting_down := false;
    Mutex.unlock lock
  end

let () = at_exit shutdown

(* ----------------------------------------------------------------- views *)

type t = { workers : int; serial_cutoff : int }

let create ~workers =
  { workers = max 1 workers; serial_cutoff = Config.default_serial_cutoff }

let with_serial_cutoff serial_cutoff t = { t with serial_cutoff }

let global () = create ~workers:Config.default.Config.workers

let workers t = t.workers
let sequential = { workers = 1; serial_cutoff = Config.default_serial_cutoff }

let run_inline tasks =
  Atomic.incr inline_c;
  if Trace.on () then Trace.add Trace.Inline_fallbacks 1;
  Array.iter (fun task -> task ()) tasks

let run_tasks ?points t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if
    t.workers <= 1 || n = 1
    || !(Domain.DLS.get in_task)
    || (match points with Some p -> p < t.serial_cutoff | None -> false)
  then run_inline tasks
  else
    submit
      ~helper_cap:(min (t.workers - 1) (n - 1))
      ~chunks:n
      (fun i -> tasks.(i) ())

let parallel_range ?grain t n f =
  if n > 0 then begin
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 (n / (t.workers * 4))
    in
    let chunks = (n + grain - 1) / grain in
    (* [n] is the lattice-point count of the range, so the view's serial
       cutoff applies exactly as it does to [run_tasks ~points]: tiny
       ranges run inline instead of paying pool dispatch.  The inline
       path still covers the range chunk by chunk, preserving the
       at-most-[grain] contract of the callback. *)
    if
      t.workers <= 1 || chunks = 1 || n < t.serial_cutoff
      || !(Domain.DLS.get in_task)
    then begin
      Atomic.incr inline_c;
      if Trace.on () then Trace.add Trace.Inline_fallbacks 1;
      if chunks = 1 then f 0 n
      else
        for c = 0 to chunks - 1 do
          let lo = c * grain in
          f lo (min n (lo + grain))
        done
    end
    else
      submit
        ~helper_cap:(min (t.workers - 1) (chunks - 1))
        ~chunks
        (fun c ->
          let lo = c * grain in
          f lo (min n (lo + grain)))
  end

let parallel_for ?grain t n f =
  parallel_range ?grain t n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)
