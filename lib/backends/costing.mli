(** Analytic cost annotations for kernel trace spans.

    Devito-style accounting: every compiled kernel knows, from its own
    intermediate representation, how much arithmetic and memory traffic a
    single invocation performs — no hardware counters involved.

    - [cells]: lattice points written, summed over the group's stencils
      ({!Snowflake.Domain.npoints_union} of each resolved domain — exact
      when write sets are disjoint, which the analysis certifies).
    - [flops]: per-cell arithmetic × cells.  For polynomial bodies
      ({!Polyform.of_expr} with all parameters at 1.0) a degree-d monomial
      costs d multiplies and each monomial beyond the first costs one add;
      non-polynomial bodies fall back to counting expression-tree
      operator nodes.
    - [bytes]: 8 bytes × the read/write footprint sizes
      ({!Sf_analysis.Footprint}), with the write counted twice
      (write-allocate + write-back) when the output grid is not already
      streamed in as a read — the same compulsory-traffic model as
      [Sf_roofline.Bound.bytes_of_stencil], but exact per-grid footprints
      instead of whole-grid estimates. *)

open Sf_util
open Snowflake

type t = { cells : int; flops : int; bytes : int }

val of_stencil : shape:Ivec.t -> Stencil.t -> t

val of_group : shape:Ivec.t -> Group.t -> t
(** Component-wise sum over the group's stencils. *)

val args : t -> (string * Sf_trace.Trace.arg) list
(** The [cells]/[flops]/[bytes] span arguments the trace reporter and the
    Chrome exporter consume. *)
