(** Analytic cost annotations for kernel trace spans.

    Devito-style accounting: every compiled kernel knows, from its own
    intermediate representation, how much arithmetic and memory traffic a
    single invocation performs — no hardware counters involved.

    - [cells]: lattice points written, summed over the group's stencils
      ({!Snowflake.Domain.npoints_union} of each resolved domain — exact
      when write sets are disjoint, which the analysis certifies).
    - [flops]: per-cell arithmetic × cells.  For polynomial bodies
      ({!Polyform.of_expr} with all parameters at 1.0) a degree-d monomial
      costs d multiplies and each monomial beyond the first costs one add;
      non-polynomial bodies fall back to counting expression-tree
      operator nodes.
    - [bytes]: 8 bytes × the read/write footprint sizes
      ({!Sf_analysis.Footprint}), with the write counted twice
      (write-allocate + write-back) when the output grid is not already
      streamed in as a read — the same compulsory-traffic model as
      [Sf_roofline.Bound.bytes_of_stencil], but exact per-grid footprints
      instead of whole-grid estimates. *)

open Sf_util
open Snowflake

type t = { cells : int; flops : int; bytes : int }

val of_stencil : shape:Ivec.t -> Stencil.t -> t

val of_group : shape:Ivec.t -> Group.t -> t
(** Component-wise sum over the group's stencils. *)

val of_fused : shape:Ivec.t -> Stencil.t list -> t
(** Single-pass model for a fused sweep over the member stencils:
    [cells]/[flops] sum as in {!of_group}, but [bytes] counts each
    distinct grid once — the bounding box of every lattice the grid
    contributes (reads and writes, all members), x2 when written
    (write-allocate + write-back) — instead of charging every member its
    full footprint.  This is what stops shared reads from being
    double-counted. *)

val of_clusters : shape:Ivec.t -> Stencil.t list list -> t
(** Sum over a fusion partition: singleton clusters cost {!of_stencil}
    exactly (unfused parity), multi-member clusters cost {!of_fused}. *)

val of_timetile : shape:Ivec.t -> reps:int -> Group.t -> t
(** The time-tiled stack of [reps] group applications: arithmetic and
    cells scale with [reps], bytes are the {e one-pass} fused-sweep
    traffic — k sweeps over a slab column while it stays cache-hot cost
    ~one DRAM pass. *)

val args : t -> (string * Sf_trace.Trace.arg) list
(** The [cells]/[flops]/[bytes] span arguments the trace reporter and the
    Chrome exporter consume. *)
