(** Executable kernels — what a Snowflake micro-compiler produces.

    The paper's [compile] method returns a Python callable wrapping a JIT'd
    shared object; here compilation returns a [Kernel.t] whose [run] binds a
    set of named meshes (and scalar parameter values) and performs the
    stencil group.  Kernels are pure closures over the *plan* (schedule,
    tiles), not over mesh storage, so one kernel can be reused across many
    mesh instances of the same shape. *)

open Sf_mesh

type t = {
  name : string;
  backend : string;
  run : ?params:(string * float) list -> Grids.t -> unit;
  description : string;  (** human-readable plan summary, for logs/tests *)
}

val make :
  name:string ->
  backend:string ->
  ?description:string ->
  (?params:(string * float) list -> Grids.t -> unit) ->
  t

val param_lookup :
  ?loc:Snowflake.Srcloc.t -> (string * float) list -> string -> float
(** Lookup that raises [Invalid_argument] naming the missing parameter —
    and, when [loc] is supplied, the stencil/group it was needed by, e.g.
    [kernel: unbound parameter "dinv" in smooth/gsrb_red]. *)
