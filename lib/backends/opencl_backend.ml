(* The OpenCL-style micro-compiler (paper §IV.B).

   Each stencil becomes one NDRange "kernel enqueue" on an in-order queue:
   a barrier separates consecutive stencils (no cross-stencil overlap,
   matching the backend the paper describes).  The NDRange is decomposed
   with tall-skinny blocking: 2-D tiles of the innermost two axes, each
   tile rolled upward through the full extent of the outer axes; every tile
   is a work-group, farmed to the pool's compute units.  Stencils that are
   not point-parallel degrade to a single sequential work-item. *)

open Snowflake
open Sf_analysis

type enqueue = {
  stencil : Stencil.t;
  work_groups : Domain.resolved list;
  parallel_ok : bool;
}

let plan_stencil (cfg : Config.t) ~shape s =
  let rects = Domain.resolve ~shape s.Stencil.domain in
  let parallel_ok =
    Dependence.point_parallel ~shape s
    || List.mem s.Stencil.label cfg.Config.force_parallel
  in
  let work_groups =
    if not parallel_ok then rects
    else begin
      let per_rect =
        List.map (Tiling.tall_skinny ~tile:cfg.Config.tall_skinny) rects
      in
      if cfg.Config.multicolor then Multicolor.interleave per_rect
      else List.concat per_rect
    end
  in
  { stencil = s; work_groups; parallel_ok }

let compile (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let enqueues =
    List.map (plan_stencil cfg ~shape) (Group.stencils group)
  in
  (* a view of the shared persistent domain pool (compute units) *)
  let pool =
    Pool.create ~workers:cfg.Config.workers
    |> Pool.with_serial_cutoff cfg.Config.serial_cutoff
  in
  let description =
    Printf.sprintf
      "opencl: %d enqueue(s); tall-skinny %dx%d; %d compute unit(s)"
      (List.length enqueues)
      (fst cfg.Config.tall_skinny)
      (snd cfg.Config.tall_skinny)
      (Pool.workers pool)
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    let launches =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          if cfg.Config.validate then
            List.iter
              (fun e -> Exec.validate_stencil grids ~shape e.stencil)
              enqueues;
          List.map
            (fun e ->
              let label = e.stencil.Stencil.label in
              let points = Domain.npoints_union e.work_groups in
              let thunks =
                let lookup =
                  Kernel.param_lookup
                    ~loc:(Srcloc.stencil ~group:group.Group.label label)
                    params
                in
                let instantiate =
                  Exec.prepare_compiled grids ~params:lookup e.stencil
                in
                List.map instantiate e.work_groups
              in
              if e.parallel_ok then
                `Parallel (label, points, Array.of_list thunks)
              else
                `Sequential
                  (label, points, fun () -> List.iter (fun f -> f ()) thunks))
            enqueues)
    in
    let launch = function
      | `Parallel (_, points, tasks) -> Pool.run_tasks ~points pool tasks
      | `Sequential (_, _, f) -> f ()
    in
    (* each enqueue is a wave: the in-order queue barriers between them *)
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i l ->
          let module Trace = Sf_trace.Trace in
          let label, points, tasks =
            match l with
            | `Parallel (label, points, tasks) ->
                (label, points, Array.length tasks)
            | `Sequential (label, points, _) -> (label, points, 1)
          in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("stencil", Trace.Str label);
                ("points", Trace.Int points);
                ("tasks", Trace.Int tasks);
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () ->
              Serial_backend.wave_fault group i;
              launch l))
        launches
    else
      List.iteri
        (fun i l ->
          Serial_backend.wave_fault group i;
          launch l)
        launches
  in
  Kernel.make ~name:group.Group.label ~backend:"opencl" ~description run
