(* The OpenCL-style micro-compiler (paper §IV.B).

   Each stencil becomes one NDRange "kernel enqueue" on an in-order queue:
   a barrier separates consecutive stencils (no cross-stencil overlap,
   matching the backend the paper describes).  The NDRange is decomposed
   with tall-skinny blocking: 2-D tiles of the innermost two axes, each
   tile rolled upward through the full extent of the outer axes; every tile
   is a work-group, farmed to the pool's compute units.  Stencils that are
   not point-parallel degrade to a single sequential work-item. *)

open Snowflake
open Sf_analysis

type enqueue = {
  stencil : Stencil.t;
  work_groups : Domain.resolved list;
  parallel_ok : bool;
}

let plan_stencil (cfg : Config.t) ~shape s =
  let rects = Domain.resolve ~shape s.Stencil.domain in
  let parallel_ok =
    Dependence.point_parallel ~shape s
    || List.mem s.Stencil.label cfg.Config.force_parallel
  in
  let work_groups =
    if not parallel_ok then rects
    else begin
      let per_rect =
        List.map (Tiling.tall_skinny ~tile:cfg.Config.tall_skinny) rects
      in
      if cfg.Config.multicolor then Multicolor.interleave per_rect
      else List.concat per_rect
    end
  in
  { stencil = s; work_groups; parallel_ok }

(* Under Config.fusion, a multi-member cluster becomes ONE enqueue: its
   work-groups each run the members in program order over their tile, a
   "mega-kernel" making a single pass over the cluster's grids.  The
   in-order queue still barriers between cluster enqueues. *)
type launch_plan = {
  label : string;
  members : Stencil.t list;  (** program order *)
  work_groups : Domain.resolved list;
  parallel_ok : bool;
}

let cluster_plans (cfg : Config.t) ~shape clusters =
  List.map
    (fun (c : Fusion.cluster) ->
      match c.Fusion.members with
      | [ s ] ->
          let e = plan_stencil cfg ~shape s in
          {
            label = s.Stencil.label;
            members = [ s ];
            work_groups = e.work_groups;
            parallel_ok = e.parallel_ok;
          }
      | members ->
          {
            label =
              String.concat "+"
                (List.map (fun (s : Stencil.t) -> s.Stencil.label) members);
            members;
            work_groups = Fusion.cluster_work_groups cfg ~shape c;
            parallel_ok = true;
          })
    clusters

let compile (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let clusters = Fusion.partition cfg ~shape group in
  let fused = Fusion.fused_count clusters in
  let plans = cluster_plans cfg ~shape clusters in
  (* a view of the shared persistent domain pool (compute units) *)
  let pool =
    Pool.create ~workers:cfg.Config.workers
    |> Pool.with_serial_cutoff cfg.Config.serial_cutoff
  in
  let description =
    if fused = 0 then
      Printf.sprintf
        "opencl: %d enqueue(s); tall-skinny %dx%d; %d compute unit(s)"
        (List.length plans)
        (fst cfg.Config.tall_skinny)
        (snd cfg.Config.tall_skinny)
        (Pool.workers pool)
    else
      Printf.sprintf
        "opencl+fusion: %d stencil(s) as %d enqueue(s); tall-skinny %dx%d; \
         %d compute unit(s); partition %s"
        (Group.length group) (List.length plans)
        (fst cfg.Config.tall_skinny)
        (snd cfg.Config.tall_skinny)
        (Pool.workers pool) (Fusion.describe clusters)
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    let launches =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          if cfg.Config.validate then
            List.iter
              (fun p ->
                List.iter (Exec.validate_stencil grids ~shape) p.members)
              plans;
          List.map
            (fun p ->
              let label = p.label in
              let points =
                Domain.npoints_union p.work_groups * List.length p.members
              in
              let thunks =
                let instantiates =
                  List.map
                    (fun (s : Stencil.t) ->
                      let lookup =
                        Kernel.param_lookup
                          ~loc:
                            (Srcloc.stencil ~group:group.Group.label
                               s.Stencil.label)
                          params
                      in
                      Exec.prepare_compiled grids ~params:lookup s)
                    p.members
                in
                List.map
                  (fun wg ->
                    match instantiates with
                    | [ inst ] -> inst wg
                    | insts ->
                        let fs = List.map (fun inst -> inst wg) insts in
                        fun () -> List.iter (fun f -> f ()) fs)
                  p.work_groups
              in
              if p.parallel_ok then
                `Parallel (label, points, Array.of_list thunks)
              else
                `Sequential
                  (label, points, fun () -> List.iter (fun f -> f ()) thunks))
            plans)
    in
    let launch = function
      | `Parallel (_, points, tasks) -> Pool.run_tasks ~points pool tasks
      | `Sequential (_, _, f) -> f ()
    in
    (* each enqueue is a wave: the in-order queue barriers between them *)
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i l ->
          let module Trace = Sf_trace.Trace in
          let label, points, tasks =
            match l with
            | `Parallel (label, points, tasks) ->
                (label, points, Array.length tasks)
            | `Sequential (label, points, _) -> (label, points, 1)
          in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("stencil", Trace.Str label);
                ("points", Trace.Int points);
                ("tasks", Trace.Int tasks);
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () ->
              Serial_backend.wave_fault group i;
              launch l))
        launches
    else
      List.iteri
        (fun i l ->
          Serial_backend.wave_fault group i;
          launch l)
        launches
  in
  Kernel.make ~name:group.Group.label ~backend:"opencl" ~description run
