(** Supervised compilation: {!Jit.compile} plus per-invocation retry,
    guard scans and an ordered backend failover chain.

    A kernel compiled here behaves exactly like the bare jitted kernel on
    a clean run (the supervised path engages only while
    [Sf_resilience.Fault] is armed or a guard mode is active — two atomic
    loads and a branch otherwise).  Under faults, each invocation runs
    under [Sf_resilience.Supervisor.run]: transient failures are retried
    with bounded backoff on the same backend; persistent ones recompile
    the same group on the next backend of {!chain} and replay the
    invocation there; after every successful run the group's output grids
    are guard-scanned so NaN/Inf corruption fails over too.  Every
    retry/failover is a trace counter increment and span marker. *)

open Sf_util
open Snowflake

val chain : Jit.backend -> Jit.backend list
(** The failover order, starting with the argument:
    [opencl -> openmp -> compiled -> interp]; serial backends degrade to
    the interpreter; custom backends fail over to [compiled].  The last
    element has no fallback — its failure is re-raised. *)

val compile :
  ?policy:Sf_resilience.Supervisor.policy ->
  ?config:Config.t ->
  Jit.backend ->
  shape:Ivec.t ->
  Group.t ->
  Kernel.t
(** Like {!Jit.compile} (same cache, same instrumentation) with the
    supervised [run] described above.  Failover compiles go through the
    Jit cache, so after the first failover the fallback kernel is a cache
    hit. *)
