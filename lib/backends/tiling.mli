(** Tiling of resolved iteration lattices (paper §IV.A).

    Tiling is an arbitrary-dimension blocking of the lattice *points* (tile
    sizes count lattice points, not raw coordinates, so strided domains tile
    uniformly).  The OpenMP backend uses {!split} / {!split_outer} to create
    subtasks; the OpenCL backend uses {!tall_skinny}. *)

open Snowflake

val split : tile:int list -> Domain.resolved -> Domain.resolved list
(** Block every axis with the given tile sizes (points per tile; must be
    positive; a size larger than the axis yields one tile).  Tiles are
    returned in row-major order of their origin and partition the input
    exactly.  Rank mismatch raises [Invalid_argument].  An empty lattice
    yields []. *)

val split_axis :
  axis:int -> tile:int -> Domain.resolved -> Domain.resolved list
(** Block only one axis. *)

val split_outer : chunks:int -> Domain.resolved -> Domain.resolved list
(** Split the outermost non-degenerate axis into at most [chunks]
    near-equal pieces — the OpenMP backend's subtask decomposition. *)

val tall_skinny :
  tile:int * int -> Domain.resolved -> Domain.resolved list
(** The OpenCL backend's blocking: 2-D tiles of the *innermost two* axes,
    each tile spanning the full extent of every remaining (outer) axis —
    the work-group then "rolls upward" through those.  In 1-D, tiles only
    the single axis with the second component. *)

val clip_axis :
  axis:int -> lo:int -> hi:int -> Domain.resolved -> Domain.resolved option
(** Intersect the lattice with the coordinate window [[lo, hi)] on [axis],
    preserving the stride congruence class (the clipped lattice starts at
    the first original lattice point [>= lo]).  [None] when the
    intersection is empty.  Clips over consecutive windows partition the
    lattice exactly — the invariant the skewed time-tile slabs of
    [Timetile] are built on. *)

val npoints_total : Domain.resolved list -> int
(** Sum of points over tiles (equals the input's point count for any
    partition produced here). *)
