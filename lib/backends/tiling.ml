open Sf_util
open Snowflake

(* Sub-lattice of [r] covering point indices [first, first+count) along one
   axis (indices count lattice points, not coordinates). *)
let slice_axis (r : Domain.resolved) axis ~first ~count =
  let rlo = Array.copy r.Domain.rlo
  and rhi = Array.copy r.Domain.rhi
  and rstride = Array.copy r.Domain.rstride in
  let s = rstride.(axis) in
  rlo.(axis) <- r.Domain.rlo.(axis) + (first * s);
  rhi.(axis) <- rlo.(axis) + (((count - 1) * s) + 1);
  Domain.{ rlo; rhi; rstride }

let axis_blocks total tile =
  if tile <= 0 then invalid_arg "Tiling: non-positive tile size";
  let nblocks = (total + tile - 1) / tile in
  List.init nblocks (fun b ->
      let first = b * tile in
      (first, min tile (total - first)))

let split ~tile r =
  let cnt = Domain.counts r in
  let n = Ivec.dims cnt in
  if List.length tile <> n then invalid_arg "Tiling.split: rank mismatch";
  if Domain.is_empty r then []
  else
    let tile = Array.of_list tile in
    let rec go axis acc =
      if axis >= n then [ acc ]
      else
        axis_blocks cnt.(axis) tile.(axis)
        |> List.concat_map (fun (first, count) ->
               go (axis + 1) (slice_axis acc axis ~first ~count))
    in
    go 0 r

let split_axis ~axis ~tile r =
  let cnt = Domain.counts r in
  if axis < 0 || axis >= Ivec.dims cnt then
    invalid_arg "Tiling.split_axis: axis out of range";
  if Domain.is_empty r then []
  else
    axis_blocks cnt.(axis) tile
    |> List.map (fun (first, count) -> slice_axis r axis ~first ~count)

let split_outer ~chunks r =
  if chunks <= 0 then invalid_arg "Tiling.split_outer: non-positive chunks";
  if Domain.is_empty r then []
  else begin
    let cnt = Domain.counts r in
    (* outermost axis with more than one point, if any *)
    let axis =
      let rec find i =
        if i >= Ivec.dims cnt then 0
        else if cnt.(i) > 1 then i
        else find (i + 1)
      in
      find 0
    in
    let tile = max 1 ((cnt.(axis) + chunks - 1) / chunks) in
    split_axis ~axis ~tile r
  end

let tall_skinny ~tile:(trows, tcols) r =
  let cnt = Domain.counts r in
  let n = Ivec.dims cnt in
  if Domain.is_empty r then []
  else if n = 1 then split_axis ~axis:0 ~tile:tcols r
  else
    split_axis ~axis:(n - 2) ~tile:trows r
    |> List.concat_map (split_axis ~axis:(n - 1) ~tile:tcols)

(* Intersect with the coordinate half-open window [lo, hi) on one axis,
   keeping the stride congruence class: the clipped lattice starts at the
   first original lattice point >= lo.  Consecutive windows therefore
   partition the lattice exactly — the property the skewed time-tile
   slabs rely on. *)
let clip_axis ~axis ~lo ~hi (r : Domain.resolved) =
  let s = r.Domain.rstride.(axis) in
  let rlo0 = r.Domain.rlo.(axis) and rhi0 = r.Domain.rhi.(axis) in
  let lo = max lo rlo0 and hi = min hi rhi0 in
  if lo >= hi then None
  else begin
    (* first lattice point >= lo in rlo0's congruence class mod s
       (lo >= rlo0 here, so the division is over non-negatives) *)
    let start = rlo0 + (((lo - rlo0 + s - 1) / s) * s) in
    if start >= hi then None
    else begin
      let rlo = Array.copy r.Domain.rlo and rhi = Array.copy r.Domain.rhi in
      rlo.(axis) <- start;
      rhi.(axis) <- hi;
      Some Domain.{ rlo; rhi; rstride = Array.copy r.Domain.rstride }
    end
  end

let npoints_total rs =
  List.fold_left (fun acc r -> acc + Domain.npoints r) 0 rs
