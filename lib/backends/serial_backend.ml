(* Sequential micro-compilers: the reference interpreter and the
   strength-reduced "C-like" executor.  Both run stencils in program order,
   rects in union order, points row-major — the DSL's sequential
   semantics. *)

open Snowflake
module Fault = Sf_resilience.Fault

(* The "wave" fault site: consulted once per wave per kernel invocation,
   before the wave body runs.  Raise/Transient abort the wave (the
   supervisor's retry/failover absorbs them); Delay sleeps inside fire;
   poison kinds are handled at the "kernel" site, which knows the output
   grids.  Guarded by [armed] so disarmed runs never build the detail. *)
let wave_fault group i =
  if Fault.armed () then
    ignore
      (Fault.fire ~site:"wave"
         ~detail:(Printf.sprintf "%s/wave%d" group.Group.label i))

let compile_interp (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let plans =
    List.map
      (fun s -> (s, Domain.resolve ~shape s.Stencil.domain))
      (Group.stencils group)
  in
  let run ?(params = []) grids =
    let exec i (s, rects) =
      wave_fault group i;
      let params =
        Kernel.param_lookup
          ~loc:(Srcloc.stencil ~group:group.Group.label s.Stencil.label)
          params
      in
      if cfg.Config.validate then Exec.validate_stencil grids ~shape s;
      List.iter (fun r -> Exec.run_rect_interp grids ~params s r) rects
    in
    (* sequential semantics: each stencil is its own wave *)
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i ((s, rects) as plan) ->
          let module Trace = Sf_trace.Trace in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("stencil", Trace.Str s.Stencil.label);
                ("points", Trace.Int (Domain.npoints_union rects));
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () -> exec i plan))
        plans
    else List.iteri exec plans
  in
  Kernel.make ~name:group.Group.label ~backend:"interp"
    ~description:
      (Printf.sprintf "interp: %d stencil(s), sequential" (List.length plans))
    run

let compile_compiled (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let plans =
    List.map
      (fun s -> (s, Domain.resolve ~shape s.Stencil.domain))
      (Group.stencils group)
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    (* runners stay grouped per stencil so each stencil can be traced as
       its own (sequential) wave *)
    let runners =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          List.map
            (fun (s, rects) ->
              let lookup =
                Kernel.param_lookup
                  ~loc:
                    (Srcloc.stencil ~group:group.Group.label s.Stencil.label)
                  params
              in
              if cfg.Config.validate then Exec.validate_stencil grids ~shape s;
              let instantiate = Exec.prepare_compiled grids ~params:lookup s in
              ( s.Stencil.label,
                Domain.npoints_union rects,
                List.map instantiate rects ))
            plans)
    in
    if Sf_trace.Trace.on () then
      List.iteri
        (fun i (label, points, thunks) ->
          let module Trace = Sf_trace.Trace in
          Trace.span
            ~args:
              [
                ("group", Trace.Str group.Group.label);
                ("wave", Trace.Int i);
                ("stencil", Trace.Str label);
                ("points", Trace.Int points);
              ]
            Trace.Wave
            (Printf.sprintf "%s/wave%d" group.Group.label i)
            (fun () ->
              wave_fault group i;
              List.iter (fun thunk -> thunk ()) thunks))
        runners
    else
      List.iteri
        (fun i (_, _, thunks) ->
          wave_fault group i;
          List.iter (fun thunk -> thunk ()) thunks)
        runners
  in
  Kernel.make ~name:group.Group.label ~backend:"compiled"
    ~description:
      (Printf.sprintf "compiled: %d stencil(s), sequential"
         (List.length plans))
    run
