(** The JIT front door: backend selection plus the compile cache.

    [compile] lowers a stencil group for a concrete iteration shape with the
    chosen micro-compiler and memoises the result — the paper's "call-ables
    are cached, for subsequent use".  The cache key is structural (group
    hash × shape × backend × options), so rebuilding an equal group from
    scratch still hits.

    Compilation is thread-safe: the cache, the custom-backend registry and
    the hit/miss counters may be used from any domain (e.g. a pool task
    JIT-compiling a sub-kernel).  Two domains racing to compile the same
    key may both lower it, but exactly one kernel is retained and returned
    to both. *)

open Sf_util
open Snowflake

type backend = Interp | Compiled | Openmp | Opencl | Custom of string
(** [Custom name] selects a user-registered micro-compiler — the paper's
    hybrid model (Fig. 1c): the framework ships four backends and "allows
    new backends to be added by users" through {!register_backend}. *)

exception
  Certification_failed of {
    backend : string;
    group : string;
    diagnostics : Sf_analysis.Diagnostics.t list;
  }
(** Raised by {!compile} instead of returning a kernel when
    [Config.certify] is set (e.g. via [SF_VALIDATE=1]) and
    [Schedule_check.certify] finds an intra-wave race ([SF021]) in the
    plan the chosen backend would execute.  Certification runs once per
    cache entry — hot loops replaying a cached kernel pay nothing.  The
    serial backends and custom backends (whose plans the checker cannot
    see) are never certified. *)

val backend_name : backend -> string

val backend_of_string : string -> backend option
(** Resolves built-ins first, then registered custom backends. *)

val all_backends : backend list
(** The built-ins only. *)

val register_backend :
  name:string ->
  (Config.t -> shape:Ivec.t -> Group.t -> Kernel.t) ->
  unit
(** Install a custom micro-compiler under [name].  The function receives
    exactly what the built-in backends receive (options, the iteration
    shape and the analysed group) and must return a kernel; compiled
    results are cached like any other backend.  Re-registering a name
    replaces the previous compiler (and clears the cache, since cached
    kernels may stem from the old one).  Raises [Invalid_argument] if
    [name] collides with a built-in. *)

val registered_backends : unit -> string list

val compile :
  ?config:Config.t -> backend -> shape:Ivec.t -> Group.t -> Kernel.t
(** Always ONE application of the group per kernel invocation
    ([Config.time_tile] only distinguishes cache entries here; the
    temporal depth is consumed by {!compile_time_tiled}).  With
    [Config.fusion] on, the OpenMP/OpenCL kernels execute the fused plan
    and their trace spans carry the single-pass [Costing.of_clusters]
    bytes; certification additionally re-proves the fused plan race-free
    ([SF023]). *)

val compile_time_tiled :
  ?config:Config.t -> reps:int -> backend -> shape:Ivec.t -> Group.t ->
  Kernel.t
(** A kernel whose single invocation performs [reps] consecutive
    applications of the group.  When [Timetile.plan] accepts the group the
    applications are skew-blocked into ~one pass of memory traffic
    (bitwise identical results to [reps] plain invocations, at any worker
    count); otherwise the plain kernel is wrapped in a reps-loop, so the
    observable semantics are uniform either way.  Under [Config.certify] a
    time-tile plan is first vetted by
    [Schedule_check.certify_timetile_plan] and an under-skewed or illegal
    plan raises {!Certification_failed} with [SF024]/[SF025] diagnostics.
    Cached under a distinct pseudo-backend, keyed by [reps] via
    [Config.time_tile].  [reps = 1] is exactly {!compile}. *)

val compile_stencil :
  ?config:Config.t -> backend -> shape:Ivec.t -> Stencil.t -> Kernel.t
(** Wraps the stencil in a singleton group. *)

val cache_key_hex : ?config:Config.t -> ?reps:int -> backend ->
  shape:Sf_util.Ivec.t -> Group.t -> string
(** The structural cache identity {!compile} (or, with [reps > 1],
    {!compile_time_tiled}) would use, as a stable hex token.  Equal tokens
    mean the two compiles share one cache entry — what a serving layer
    needs to coalesce concurrent identical compiles into a single lowering
    instead of letting them race inside {!compile}. *)

val cache_stats : unit -> int * int
(** (hits, misses) since start or last {!clear_cache}. *)

val clear_cache : unit -> unit
