type schedule = Greedy_waves | Dag_levels

type t = {
  workers : int;
  tile : int list option;
  chunks : int;
  tall_skinny : int * int;
  multicolor : bool;
  schedule : schedule;
  validate : bool;
  fuse : bool;
  dce : dce;
  serial_cutoff : int;
  certify : bool;
  force_parallel : string list;
  trace : bool;
  faults : string option;
  fusion : bool;
  time_tile : int;
  time_block : int;
  pipeline : bool;
  pipe_budget : int;
}

and dce = No_dce | Dce of string list

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> default)
  | None -> default

let env_flag name =
  match Sys.getenv_opt name with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | _ -> false)
  | None -> false

let default_workers = env_int "SF_WORKERS" 1
let default_serial_cutoff = env_int "SF_SERIAL_CUTOFF" 1024
let default_certify = env_flag "SF_VALIDATE"
let default_trace = env_flag "SF_TRACE"

let default_faults =
  match Sys.getenv_opt "SF_FAULTS" with
  | Some s when String.trim s <> "" -> Some s
  | _ -> None

let default_fusion = env_flag "SF_FUSION"
let default_pipeline = env_flag "SF_PIPELINE"
let default_pipe_budget = env_int "SF_PIPE_BUDGET" (1 lsl 26)

let default =
  {
    workers = default_workers;
    tile = None;
    chunks = 8;
    tall_skinny = (8, 64);
    multicolor = false;
    schedule = Greedy_waves;
    validate = true;
    fuse = false;
    dce = No_dce;
    serial_cutoff = default_serial_cutoff;
    certify = default_certify;
    force_parallel = [];
    trace = default_trace;
    faults = default_faults;
    fusion = default_fusion;
    time_tile = 1;
    time_block = 0;
    pipeline = default_pipeline;
    pipe_budget = default_pipe_budget;
  }

let with_workers workers t = { t with workers }
