(** Persistent roofline-guided autotuning.

    A {!plan} is one point of the space the backends understand — fusion
    on/off, spatial tile sizes, temporal depth and block.  {!tune} ranks
    the bounded candidate set {e analytically} (the single-pass
    [Costing] models over the measured — or assumed — STREAM bandwidth),
    confirms the top few predictions with timed runs supplied by the
    caller, and persists the winner in a JSON DB keyed by (group, shape,
    backend, workers, reps, machine fingerprint).  A later run with the
    same key replays the stored plan without measuring anything
    ([Tune_db_hits] in the trace counters); any key change — different
    hardware, worker count, group or shape — misses and re-tunes.

    The DB lives at [$SF_TUNE_DB], or [~/.cache/snowflake/tuning.json];
    a corrupt or missing file reads as empty, and writes are atomic
    (temp file + rename).  Stored plans are invalidated implicitly by
    the key: there is nothing to migrate, stale entries simply stop
    matching. *)

open Sf_util
open Snowflake

type plan = {
  fusion : bool;
  tile : int list option;
  time_tile : int;  (** 1 = no temporal blocking *)
  time_block : int;  (** axis-0 slab size, 0 = auto *)
}

val plan_of_config : Config.t -> plan
val apply : plan -> Config.t -> Config.t
val describe : plan -> string

type source =
  | Db  (** replayed from the persistent DB *)
  | Measured  (** ranked analytically, confirmed by timed runs *)
  | Analytic  (** reserved: analytic ranking only *)

val source_to_string : source -> string

type result = {
  plan : plan;
  config : Config.t;  (** the caller's config with the plan applied *)
  predicted_s : float;
  measured_s : float option;  (** [None] on a DB hit *)
  source : source;
}

val machine_fingerprint : unit -> string
val default_db_path : unit -> string

val candidates :
  Config.t -> shape:Ivec.t -> reps:int -> Group.t -> plan list
(** The bounded plan space: fusion x tile options for one-application
    plans, plus temporal candidates when [reps >= 2] and the group is
    [Timetile.legal]. *)

val predicted_seconds :
  Config.t -> shape:Ivec.t -> reps:int -> Group.t -> plan -> float
(** Analytic time for [reps] applications under the plan:
    bytes / bandwidth + a small arithmetic term.  Bandwidth is
    [Trace.bandwidth_gbs] when a STREAM measurement has been joined,
    else a pessimistic default. *)

val tune :
  ?db:string ->
  ?top:int ->
  ?persist:bool ->
  config:Config.t ->
  backend:Jit.backend ->
  shape:Ivec.t ->
  reps:int ->
  measure:(Config.t -> float) ->
  Group.t ->
  result
(** [measure cfg] must time one execution of the workload under [cfg]
    (seconds); it is called only for the [top] (default 3) analytically
    best candidates, and only on a DB miss.  [persist] (default [true])
    writes the winner back to the DB. *)

(** {2 Direct DB access}

    The write path many tenants share: every publication is an exclusive
    unique temp file in the DB's directory followed by an atomic rename,
    so concurrent writers (processes or domains) interleave to
    last-writer-wins — entries may be superseded, the document is never
    torn.  Exposed for the serving layer (one tuning DB across tenants)
    and for the concurrency property tests that pin that guarantee. *)

val db_is_wellformed : db:string -> bool
(** The DB file is absent, or parses as a version-1 document with an
    [entries] array — the invariant concurrent writers must preserve. *)

val db_entry_count : db:string -> int
(** Parsed entries ([0] for a missing — or corrupt — file; use
    {!db_is_wellformed} to tell the two apart). *)

val db_persist :
  db:string ->
  config:Config.t ->
  backend:Jit.backend ->
  shape:Ivec.t ->
  reps:int ->
  plan:plan ->
  ?predicted_s:float ->
  ?measured_s:float ->
  Group.t ->
  unit
(** Store [plan] under the same key {!tune} would use (read-modify-write
    of the whole document, atomically renamed into place). *)

val db_replay :
  db:string ->
  config:Config.t ->
  backend:Jit.backend ->
  shape:Ivec.t ->
  reps:int ->
  Group.t ->
  plan option
(** The stored plan for that key, if any. *)
