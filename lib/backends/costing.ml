open Snowflake

type t = { cells : int; flops : int; bytes : int }

(* operator-node count: the fallback for non-polynomial bodies *)
let rec expr_ops = function
  | Expr.Const _ | Expr.Param _ | Expr.Read _ -> 0
  | Expr.Neg a -> 1 + expr_ops a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      1 + expr_ops a + expr_ops b

(* coeff·r₁·…·r_d is d multiplies; summing m monomials (plus a nonzero
   constant) is m-1 (resp. m) adds *)
let poly_ops (p : Polyform.t) =
  let mults =
    List.fold_left
      (fun acc (m : Polyform.mono) -> acc + List.length m.Polyform.reads)
      0 p.Polyform.monos
  in
  let terms =
    List.length p.Polyform.monos + (if p.Polyform.const <> 0. then 1 else 0)
  in
  mults + max 0 (terms - 1)

let of_stencil ~shape (s : Stencil.t) =
  let cells = Domain.npoints_union (Domain.resolve ~shape s.Stencil.domain) in
  let flops_per_cell =
    match Polyform.of_expr ~params:(fun _ -> 1.0) s.Stencil.expr with
    | Some poly -> poly_ops poly
    | None -> expr_ops s.Stencil.expr
  in
  let read_cells =
    List.fold_left
      (fun acc (_, lattices) -> acc + Domain.npoints_union lattices)
      0
      (Sf_analysis.Footprint.read_footprint ~shape s)
  in
  let out_grid, write_lattices =
    Sf_analysis.Footprint.write_footprint ~shape s
  in
  let write_factor =
    if List.mem out_grid (Stencil.grids_read s) then 1 else 2
  in
  let write_cells = Domain.npoints_union write_lattices in
  {
    cells;
    flops = flops_per_cell * cells;
    bytes = 8 * (read_cells + (write_factor * write_cells));
  }

(* ----------------------------------------------- fused-sweep bytes model

   [of_group] charges every stencil its full footprint, so a fused
   cluster (or a time-tiled stack of sweeps) that streams a grid once
   gets double-charged for every shared read.  The single-pass model
   below counts each distinct grid once: all lattices a grid contributes
   (reads and writes, across every member) are collapsed into their
   bounding box — exactly the contiguous range a streaming pass touches;
   a red/black pair of half-lattices collapses to the one full pass the
   fused sweep makes.  Grids that are only read cost one pass; grids that
   are written cost two (write-allocate + write-back, matching
   [of_stencil]'s write_factor). *)

let bbox_points lattices =
  match List.filter (fun r -> not (Domain.is_empty r)) lattices with
  | [] -> 0
  | first :: rest ->
      let lo = Array.copy first.Domain.rlo
      and hi = Array.copy first.Domain.rhi in
      List.iter
        (fun (r : Domain.resolved) ->
          Array.iteri (fun i v -> lo.(i) <- min lo.(i) v) r.Domain.rlo;
          Array.iteri (fun i v -> hi.(i) <- max hi.(i) v) r.Domain.rhi)
        rest;
      Array.fold_left ( * ) 1 (Array.mapi (fun i l -> max 0 (hi.(i) - l)) lo)

let of_fused ~shape (members : Stencil.t list) =
  let per_member = List.map (of_stencil ~shape) members in
  let cells = List.fold_left (fun acc c -> acc + c.cells) 0 per_member in
  let flops = List.fold_left (fun acc c -> acc + c.flops) 0 per_member in
  (* per distinct grid: every lattice it contributes, plus whether any
     member writes it *)
  let tbl : (string, Domain.resolved list ref * bool ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let entry g =
    match Hashtbl.find_opt tbl g with
    | Some e -> e
    | None ->
        let e = (ref [], ref false) in
        Hashtbl.replace tbl g e;
        e
  in
  List.iter
    (fun s ->
      List.iter
        (fun (g, lattices) ->
          let lats, _ = entry g in
          lats := lattices @ !lats)
        (Sf_analysis.Footprint.read_footprint ~shape s);
      let out_grid, write_lattices =
        Sf_analysis.Footprint.write_footprint ~shape s
      in
      let lats, written = entry out_grid in
      lats := write_lattices @ !lats;
      written := true)
    members;
  let bytes =
    Hashtbl.fold
      (fun _ (lats, written) acc ->
        acc + (bbox_points !lats * if !written then 2 else 1))
      tbl 0
    * 8
  in
  { cells; flops; bytes }

let of_clusters ~shape (clusters : Stencil.t list list) =
  List.fold_left
    (fun acc members ->
      let c =
        match members with
        | [ s ] -> of_stencil ~shape s
        | _ -> of_fused ~shape members
      in
      {
        cells = acc.cells + c.cells;
        flops = acc.flops + c.flops;
        bytes = acc.bytes + c.bytes;
      })
    { cells = 0; flops = 0; bytes = 0 }
    clusters

let of_timetile ~shape ~reps (group : Group.t) =
  (* k skewed sweeps touch each slab column k times while it is hot:
     arithmetic scales with k, compulsory traffic does not *)
  let one = of_fused ~shape (Group.stencils group) in
  { cells = reps * one.cells; flops = reps * one.flops; bytes = one.bytes }

let of_group ~shape (group : Group.t) =
  List.fold_left
    (fun acc s ->
      let c = of_stencil ~shape s in
      {
        cells = acc.cells + c.cells;
        flops = acc.flops + c.flops;
        bytes = acc.bytes + c.bytes;
      })
    { cells = 0; flops = 0; bytes = 0 }
    (Group.stencils group)

let args t =
  [
    ("cells", Sf_trace.Trace.Int t.cells);
    ("flops", Sf_trace.Trace.Int t.flops);
    ("bytes", Sf_trace.Trace.Int t.bytes);
  ]
