open Snowflake

type t = { cells : int; flops : int; bytes : int }

(* operator-node count: the fallback for non-polynomial bodies *)
let rec expr_ops = function
  | Expr.Const _ | Expr.Param _ | Expr.Read _ -> 0
  | Expr.Neg a -> 1 + expr_ops a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      1 + expr_ops a + expr_ops b

(* coeff·r₁·…·r_d is d multiplies; summing m monomials (plus a nonzero
   constant) is m-1 (resp. m) adds *)
let poly_ops (p : Polyform.t) =
  let mults =
    List.fold_left
      (fun acc (m : Polyform.mono) -> acc + List.length m.Polyform.reads)
      0 p.Polyform.monos
  in
  let terms =
    List.length p.Polyform.monos + (if p.Polyform.const <> 0. then 1 else 0)
  in
  mults + max 0 (terms - 1)

let of_stencil ~shape (s : Stencil.t) =
  let cells = Domain.npoints_union (Domain.resolve ~shape s.Stencil.domain) in
  let flops_per_cell =
    match Polyform.of_expr ~params:(fun _ -> 1.0) s.Stencil.expr with
    | Some poly -> poly_ops poly
    | None -> expr_ops s.Stencil.expr
  in
  let read_cells =
    List.fold_left
      (fun acc (_, lattices) -> acc + Domain.npoints_union lattices)
      0
      (Sf_analysis.Footprint.read_footprint ~shape s)
  in
  let out_grid, write_lattices =
    Sf_analysis.Footprint.write_footprint ~shape s
  in
  let write_factor =
    if List.mem out_grid (Stencil.grids_read s) then 1 else 2
  in
  let write_cells = Domain.npoints_union write_lattices in
  {
    cells;
    flops = flops_per_cell * cells;
    bytes = 8 * (read_cells + (write_factor * write_cells));
  }

let of_group ~shape (group : Group.t) =
  List.fold_left
    (fun acc s ->
      let c = of_stencil ~shape s in
      {
        cells = acc.cells + c.cells;
        flops = acc.flops + c.flops;
        bytes = acc.bytes + c.bytes;
      })
    { cells = 0; flops = 0; bytes = 0 }
    (Group.stencils group)

let args t =
  [
    ("cells", Sf_trace.Trace.Int t.cells);
    ("flops", Sf_trace.Trace.Int t.flops);
    ("bytes", Sf_trace.Trace.Int t.bytes);
  ]
