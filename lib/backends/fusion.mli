(** Cross-wave sweep fusion: partition a group into clusters of provably
    cofusible stencils, executed as per-tile multi-stencil tasks.

    The wave scheduler barriers between dependent stencils, so a chain of
    pointwise stencils streams its grids once per stencil.  A fused
    cluster runs every member in program order {e per tile}, making a
    single pass over the cluster's grids; [Costing.of_fused] credits the
    saved traffic and [Schedule_check] re-proves the plan race-free
    ([SF023]) before [Jit.compile] adopts it.

    A multi-member cluster is legal when members share one domain, write
    through identity out_maps, are individually point-parallel, and read
    any cluster-written grid only through the identity map.  Then each
    tile's writes — and its reads of cluster-written grids — are exactly
    the tile's own lattice points, so concurrent tile tasks are disjoint
    and per-tile member order reproduces sequential semantics
    cell-for-cell.  GSRB's colour sweeps are (correctly) never fused;
    pointwise pipeline tails are. *)

open Sf_util
open Snowflake

type cluster = { members : Stencil.t list }  (** program order *)

val partition : Config.t -> shape:Ivec.t -> Group.t -> cluster list
(** Greedy left-to-right clustering; concatenating the clusters' members
    yields the group's stencils in order.  With [Config.fusion] off (or
    nothing cofusible) every cluster is a singleton. *)

val cofusible : Config.t -> shape:Ivec.t -> Stencil.t list -> Stencil.t -> bool
(** [cofusible cfg ~shape members s]: may [s] join a cluster currently
    holding [members] (program order)?  Always true for [members = []]. *)

val waves : shape:Ivec.t -> cluster list -> int list list
(** Greedy barrier placement over clusters (cluster indices), mirroring
    [Schedule.greedy_waves] at cluster granularity. *)

val cluster_tiles :
  Config.t -> shape:Ivec.t -> cluster -> Domain.resolved list
(** Tile decomposition of a (multi-member) cluster's shared domain —
    explicit [Config.tile] sizes or outer-axis chunking, with multicolor
    interleaving when configured; each tile becomes one multi-stencil
    task. *)

val cluster_work_groups :
  Config.t -> shape:Ivec.t -> cluster -> Domain.resolved list
(** The OpenCL analogue of {!cluster_tiles}: tall-skinny work-group
    decomposition of the shared domain. *)

val fused_count : cluster list -> int
(** Number of clusters with more than one member. *)

val describe : cluster list -> string
(** E.g. ["[blur_x][blur_y+sharpen]"] — the fusion-partition summary the
    [--profile] plan report prints. *)
