(* Supervised compilation: the Jit-aware glue over Sf_resilience.

   [compile] wraps a jitted kernel so each invocation runs under
   [Supervisor.run] with an ordered backend failover chain: a transient
   fault is retried on the same backend; a persistent one recompiles the
   same group on the next backend (a cache hit after the first failover)
   and replays the invocation there.  After every successful run the
   guard scans the group's output grids, so silent NaN/Inf corruption is
   promoted to a failure the same machinery can handle.

   The supervised path only engages while faults are armed or a guard
   mode is active: a clean run costs two atomic loads and a branch over
   the bare kernel. *)

open Snowflake
module Fault = Sf_resilience.Fault
module Guard = Sf_resilience.Guard
module Supervisor = Sf_resilience.Supervisor

(* Ordered by how much of the machine each backend needs: parallel plans
   degrade to the strength-reduced serial executor, then to the reference
   interpreter — the backend that is also the fuzzing oracle. *)
let chain = function
  | Jit.Opencl -> [ Jit.Opencl; Jit.Openmp; Jit.Compiled; Jit.Interp ]
  | Jit.Openmp -> [ Jit.Openmp; Jit.Compiled; Jit.Interp ]
  | Jit.Compiled -> [ Jit.Compiled; Jit.Interp ]
  | Jit.Interp -> [ Jit.Interp ]
  | Jit.Custom c -> [ Jit.Custom c; Jit.Compiled; Jit.Interp ]

let compile ?policy ?(config = Config.default) backend ~shape group =
  let primary = Jit.compile ~config backend ~shape group in
  let backends = chain backend in
  let outputs =
    List.map (fun s -> s.Stencil.output) (Group.stencils group)
    |> List.sort_uniq String.compare
  in
  let run ?params grids =
    if not (Fault.armed () || Guard.active ()) then
      primary.Kernel.run ?params grids
    else
      let attempts =
        List.map
          (fun b ->
            ( Jit.backend_name b,
              fun () ->
                let kernel =
                  if b = backend then primary
                  else Jit.compile ~config b ~shape group
                in
                kernel.Kernel.run ?params grids;
                Guard.scan_grids grids outputs ))
          backends
      in
      Supervisor.run ?policy ~name:group.Group.label attempts
  in
  {
    primary with
    Kernel.run;
    description =
      primary.Kernel.description
      ^ "; supervised: "
      ^ String.concat " -> " (List.map Jit.backend_name backends);
  }
