(* Temporal blocking of k consecutive group applications (ROADMAP item 2).

   A multigrid smoother applies the same group k times back-to-back, and
   each application streams the whole level — k passes of memory traffic
   for k sweeps.  This pass flattens the k applications into m = k * len
   *sub-steps* (rep-major program order), blocks the outermost axis into
   slabs of [block] points, and skews sub-step q's slab window down by
   sigma_q = q * skew:

     sub-step q on block b covers axis-0 in [b*block - q*skew,
                                             (b+1)*block - q*skew)

   executed b-ascending outer, q-ascending inner.  With [skew] at least
   the maximum |axis-0 offset| of any unit-scale read of a group-written
   grid, a floor-inequality argument shows that when (b, q) runs, every
   earlier sub-step has already written all cells q reads, and no later
   sub-step has touched them — for ANY block size.  Legality additionally
   requires identity out_maps, unit-scale reads of written grids, and
   per-sub-step point-parallelism (so slab order inside a sub-step is
   unobservable); under those conditions the time-tiled execution is
   bitwise identical to k sequential applications, while the k sweeps
   walk each slab column k times in cache — ~one pass of DRAM traffic
   ([Costing.of_timetile] is the matching analytic model).

   A plan whose skew is *below* the dependence slope reads stale (or
   future) values at slab seams; [Schedule_check.certify_timetile_plan]
   rejects such plans as SF024 before they ever reach a backend. *)

open Snowflake
open Sf_analysis

type plan = { group : Group.t; reps : int; block : int; skew : int }

let written_grids group =
  List.sort_uniq String.compare
    (List.map (fun (s : Stencil.t) -> s.Stencil.output) (Group.stencils group))

let required_skew group =
  let written = written_grids group in
  List.fold_left
    (fun acc (s : Stencil.t) ->
      List.fold_left
        (fun acc (g, (m : Affine.t)) ->
          if List.mem g written && Affine.is_unit_scale m then
            max acc (abs m.Affine.offset.(0))
          else acc)
        acc (Stencil.reads s))
    0 (Group.stencils group)

(* Why each sub-step must be legal: identity writes keep every sub-step's
   write set equal to its slab; unit-scale reads of written grids bound
   the dependence slope by a constant the skew can cover; and
   point-parallelism makes the order of a sub-step's slabs (and of the
   union rects within a slab) unobservable. *)
let illegalities ~shape group =
  let written = written_grids group in
  List.concat_map
    (fun (s : Stencil.t) ->
      let label = s.Stencil.label in
      let errs =
        if Affine.is_identity s.Stencil.out_map then []
        else [ (label, "writes through a non-identity out_map") ]
      in
      let errs =
        if Dependence.point_parallel ~shape s then errs
        else (label, "is not point-parallel") :: errs
      in
      let errs =
        List.fold_left
          (fun errs (g, m) ->
            if List.mem g written && not (Affine.is_unit_scale m) then
              ( label,
                Printf.sprintf "reads group-written grid %s at non-unit scale"
                  g )
              :: errs
            else errs)
          errs (Stencil.reads s)
      in
      List.rev errs)
    (Group.stencils group)

let legal ~shape group = illegalities ~shape group = []

let auto_block ~shape = max 8 (shape.(0) / 4)

let plan ?skew ?block (cfg : Config.t) ~shape ~reps group =
  if reps < 2 || not (legal ~shape group) then None
  else begin
    let skew = match skew with Some s -> s | None -> required_skew group in
    let block =
      match block with
      | Some b -> max 1 b
      | None ->
          if cfg.Config.time_block > 0 then cfg.Config.time_block
          else auto_block ~shape
    in
    Some { group; reps; block; skew }
  end

let nsubsteps p = p.reps * Group.length p.group

let nblocks p ~shape =
  let sigma_max = (nsubsteps p - 1) * p.skew in
  (shape.(0) + sigma_max + p.block - 1) / p.block

let describe p =
  Printf.sprintf "time depth %d (block %d, skew %d)" p.reps p.block p.skew

module Trace = Sf_trace.Trace

let compile (cfg : Config.t) ~shape (p : plan) =
  let shape = Array.copy shape in
  let members = Array.of_list (Group.stencils p.group) in
  let nmem = Array.length members in
  let m = nsubsteps p in
  let rects =
    Array.map (fun s -> Domain.resolve ~shape s.Stencil.domain) members
  in
  let nb = nblocks p ~shape in
  (* slab schedule, fixed per (shape, plan): per block, the non-empty
     (member, clipped rects) sub-steps in ascending sub-step order *)
  let block_clips =
    Array.init nb (fun b ->
        let lo0 = b * p.block in
        let hi0 = lo0 + p.block in
        List.init m (fun q ->
            let j = q mod nmem in
            let sigma = q * p.skew in
            let clips =
              List.filter_map
                (Tiling.clip_axis ~axis:0 ~lo:(lo0 - sigma) ~hi:(hi0 - sigma))
                rects.(j)
            in
            (j, clips))
        |> List.filter (fun (_, clips) -> clips <> []))
  in
  let block_points =
    Array.map
      (List.fold_left (fun acc (_, cs) -> acc + Tiling.npoints_total cs) 0)
      block_clips
  in
  let cache = Run_cache.create () in
  let names = Group.grids p.group in
  let glabel = p.group.Group.label in
  let description =
    Printf.sprintf
      "timetile: %d rep(s) x %d sub-step(s), block %d on axis 0, skew %d, \
       %d slab column(s); sequential"
      p.reps nmem p.block p.skew nb
  in
  let run ?(params = []) grids =
    let blocks =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          if cfg.Config.validate then
            Array.iter (fun s -> Exec.validate_stencil grids ~shape s) members;
          let instantiate =
            Array.map
              (fun (s : Stencil.t) ->
                let lookup =
                  Kernel.param_lookup
                    ~loc:(Srcloc.stencil ~group:glabel s.Stencil.label)
                    params
                in
                Exec.prepare_compiled grids ~params:lookup s)
              members
          in
          Array.map
            (fun steps ->
              List.concat_map
                (fun (j, clips) -> List.map instantiate.(j) clips)
                steps)
            block_clips)
    in
    (* sequential slab columns: determinism (and bitwise agreement with k
       plain applications) holds at any worker count by construction *)
    if Trace.on () then
      Array.iteri
        (fun b thunks ->
          Trace.span
            ~args:
              [
                ("group", Trace.Str glabel);
                ("block", Trace.Int b);
                ("points", Trace.Int block_points.(b));
              ]
            Trace.Wave
            (Printf.sprintf "%s/tblock%d" glabel b)
            (fun () -> List.iter (fun f -> f ()) thunks))
        blocks
    else Array.iter (fun thunks -> List.iter (fun f -> f ()) thunks) blocks
  in
  Kernel.make ~name:glabel ~backend:"timetile" ~description run
