(* Cross-wave sweep fusion (ROADMAP item 2; Devito-style sweep merging).

   The wave scheduler barriers between dependent stencils, so a chain of
   cheap pointwise stencils re-reads its grids once per stencil.  This
   pass partitions a group into *clusters* of provably cofusible stencils;
   a backend executes a cluster as per-tile multi-stencil tasks — each
   tile runs every member in program order — so the cluster makes one
   pass over its grids.

   Legality (cofusibility) of a multi-member cluster: members share one
   domain, every member writes through the identity out_map, every member
   is point-parallel on its own, and every read of a grid that *any*
   member writes is through the identity map.  Under those conditions a
   tile's writes and its reads of cluster-written grids are exactly the
   tile's own lattice points, so distinct tiles touch disjoint cells of
   every cluster-written grid: tile tasks are race-free under any
   interleaving, and per-tile member order reproduces the sequential
   program order cell-for-cell.  GSRB's colour sweeps (reads at +-1 of
   the grid the other colour writes) are correctly rejected; pipelines
   whose members consume upstream grids at offsets but each other only
   pointwise (e.g. blur_y + sharpen of the unsharp pipeline) fuse. *)

open Snowflake
open Sf_analysis

type cluster = { members : Stencil.t list }

let member_ok cfg ~shape (s : Stencil.t) =
  Affine.is_identity s.Stencil.out_map
  && (Dependence.point_parallel ~shape s
     || List.mem s.Stencil.label cfg.Config.force_parallel)

(* every read of a cluster-written grid must be pointwise *)
let identity_reads outputs (s : Stencil.t) =
  List.for_all
    (fun (g, m) -> (not (List.mem g outputs)) || Affine.is_identity m)
    (Stencil.reads s)

let cofusible cfg ~shape (members : Stencil.t list) (s : Stencil.t) =
  match members with
  | [] -> true
  | first :: _ ->
      Domain.equal first.Stencil.domain s.Stencil.domain
      && List.for_all (member_ok cfg ~shape) (s :: members)
      && begin
           let outputs =
             List.sort_uniq String.compare
               (s.Stencil.output
               :: List.map (fun (m : Stencil.t) -> m.Stencil.output) members)
           in
           List.for_all (identity_reads outputs) (s :: members)
         end

let singletons group =
  List.map (fun s -> { members = [ s ] }) (Group.stencils group)

let partition cfg ~shape group =
  if not cfg.Config.fusion then singletons group
  else begin
    (* greedy left-to-right clustering over program order: a stencil joins
       the open cluster when cofusible with every member, else it opens a
       new one — so the partition concatenates back to the group *)
    let flush acc current =
      match current with [] -> acc | ms -> { members = List.rev ms } :: acc
    in
    let acc, current =
      List.fold_left
        (fun (acc, current) s ->
          if cofusible cfg ~shape (List.rev current) s then (acc, s :: current)
          else (flush acc current, [ s ]))
        ([], []) (Group.stencils group)
    in
    List.rev (flush acc current)
  end

(* Greedy barrier placement over clusters, mirroring
   [Schedule.greedy_waves] at cluster granularity: a cluster joins the
   current wave unless some member depends on a member of a cluster
   already in it. *)
let waves ~shape clusters =
  let arr = Array.of_list clusters in
  let depends i j =
    (* does cluster j depend on cluster i (i before j)? *)
    List.exists
      (fun before ->
        List.exists
          (fun after -> Dependence.depends ~shape ~before ~after)
          arr.(j).members)
      arr.(i).members
  in
  let waves = ref [] and current = ref [] in
  for j = 0 to Array.length arr - 1 do
    if List.exists (fun i -> depends i j) !current then begin
      waves := List.rev !current :: !waves;
      current := [ j ]
    end
    else current := j :: !current
  done;
  if !current <> [] then waves := List.rev !current :: !waves;
  List.rev !waves

(* Tile decomposition of a multi-member cluster: the shared domain is
   tiled exactly like a point-parallel stencil's (explicit tile sizes or
   outer-axis chunking); every tile becomes one multi-stencil task.
   Callers use [Openmp_backend.plan_stencil] (or the OpenCL equivalent)
   for singleton clusters, so unfused plans are byte-identical to the
   pre-fusion ones. *)
let cluster_tiles cfg ~shape (c : cluster) =
  match c.members with
  | [] -> []
  | first :: _ ->
      let rects = Domain.resolve ~shape first.Stencil.domain in
      let tile_rect r =
        match cfg.Config.tile with
        | Some t -> Tiling.split ~tile:t r
        | None -> Tiling.split_outer ~chunks:cfg.Config.chunks r
      in
      let per_rect = List.map tile_rect rects in
      if cfg.Config.multicolor then Multicolor.interleave per_rect
      else List.concat per_rect

(* the OpenCL analogue: tall-skinny work-group decomposition *)
let cluster_work_groups cfg ~shape (c : cluster) =
  match c.members with
  | [] -> []
  | first :: _ ->
      let rects = Domain.resolve ~shape first.Stencil.domain in
      let per_rect =
        List.map (Tiling.tall_skinny ~tile:cfg.Config.tall_skinny) rects
      in
      if cfg.Config.multicolor then Multicolor.interleave per_rect
      else List.concat per_rect

let fused_count clusters =
  List.fold_left
    (fun acc c -> if List.length c.members > 1 then acc + 1 else acc)
    0 clusters

let describe clusters =
  clusters
  |> List.map (fun c ->
         "["
         ^ String.concat "+"
             (List.map (fun (s : Stencil.t) -> s.Stencil.label) c.members)
         ^ "]")
  |> String.concat ""
