(** Compilation options shared by the micro-compilers.

    These correspond to the tuning knobs the paper exposes when [compile] is
    called: thread count, tile sizes, multicolor reordering, and the
    barrier-placement strategy. *)

type schedule = Greedy_waves | Dag_levels

type t = {
  workers : int;  (** parallel degree (like OMP_NUM_THREADS / CUs) *)
  tile : int list option;
      (** explicit OpenMP tile sizes (lattice points per axis); [None]
          falls back to outer-axis chunking into [chunks] subtasks *)
  chunks : int;  (** subtasks per stencil when [tile = None] *)
  tall_skinny : int * int;  (** OpenCL 2-D tile (rows, cols) *)
  multicolor : bool;
      (** interleave the tiles of a domain-union (colored) stencil
          spatially instead of color-by-color *)
  schedule : schedule;
  validate : bool;  (** bounds/shape checks at kernel invocation *)
  fuse : bool;
      (** greedily fuse consecutive stencils when the analysis proves it
          legal (producer consumed at offset zero over an identical
          domain) *)
  dce : dce;
      (** dead-stencil elimination before scheduling *)
  serial_cutoff : int;
      (** waves whose total point count falls below this run inline on the
          calling domain instead of being dispatched to the pool — the
          adaptive serial fallback that keeps coarse multigrid levels from
          paying dispatch latency for a handful of points *)
  certify : bool;
      (** run the [Schedule_check] wave-race certifier once per compile
          (cache entry); [Jit.compile] raises [Jit.Certification_failed]
          instead of returning a kernel whose plan it cannot prove
          race-free *)
  force_parallel : string list;
      (** stencil labels asserted safe to tile in parallel even when the
          analysis cannot prove them point-parallel — a user override;
          [certify] is the safety net that catches a wrong assertion *)
  trace : bool;
      (** switch the process-global [Sf_trace] substrate on at
          [Jit.compile] time (equivalent to [SF_TRACE=1]); kernels are
          always *instrumented* — this flag only flips the recording
          gate, which costs one atomic load per site when off *)
  faults : string option;
      (** fault-injection spec armed at [Jit.compile] time (the [--faults]
          CLI flag / [SF_FAULTS]; grammar in [Sf_resilience.Fault]);
          [None] leaves the current arming untouched, so a spec armed via
          the environment at load time stays in force *)
  fusion : bool;
      (** cross-wave sweep fusion ([Fusion]): partition the group into
          clusters of provably cofusible stencils and execute each cluster
          as per-tile multi-stencil tasks, so the cluster makes one pass
          over its grids instead of one pass per stencil.  Off by default;
          legality is re-proved per cluster, so enabling it on an
          unfusible group (e.g. GSRB's colour sweeps) degenerates to the
          unfused plan *)
  time_tile : int;
      (** temporal blocking depth [k] ([Timetile]): [Jit.compile_time_tiled]
          folds [k] consecutive applications of the group into one skewed
          time-tiled sweep costing ~one pass of memory traffic.  [1]
          disables it.  Plain [Jit.compile] (one application) ignores this
          knob except as a cache-key component *)
  time_block : int;
      (** outer-axis block size (lattice points) for the time-tiled sweep;
          [0] picks a size automatically *)
  pipeline : bool;
      (** pipelined SPMD execution ([Sf_distributed.Pipeline]): replace
          the bulk-synchronous whole-halo barrier with per-plane bounded
          channel sends sized by the [Pipeline_check] certifier.  Off by
          default; only certified plans ever run pipelined *)
  pipe_budget : int;
      (** channel-memory budget in bytes for the pipeline certifier
          ([Pipeline_check.analyze ~budget_bytes]); certified depths over
          the budget report SF033 and name the bulk-synchronous
          fallback *)
}

and dce = No_dce | Dce of string list  (** live output grids *)

val default_workers : int
(** [SF_WORKERS] from the environment, else 1. *)

val default_serial_cutoff : int
(** [SF_SERIAL_CUTOFF] from the environment, else 1024 points (an 8^3
    multigrid level stays inline; 16^3 and up go parallel). *)

val default_certify : bool
(** [SF_VALIDATE] from the environment ([1]/[true]/[yes]/[on]), else
    false. *)

val default_trace : bool
(** [SF_TRACE] from the environment ([1]/[true]/[yes]/[on]), else
    false. *)

val default_faults : string option
(** [SF_FAULTS] from the environment when non-empty, else [None]. *)

val default_fusion : bool
(** [SF_FUSION] from the environment ([1]/[true]/[yes]/[on]), else
    false. *)

val default_pipeline : bool
(** [SF_PIPELINE] from the environment ([1]/[true]/[yes]/[on]), else
    false. *)

val default_pipe_budget : int
(** [SF_PIPE_BUDGET] (bytes) from the environment, else 64 MiB. *)

val default : t
(** Sequential-friendly defaults: [workers] = {!default_workers}, no
    explicit tile, [chunks = 8], tall-skinny [8 x 64], multicolor off,
    greedy waves, validation on, no fusion, no DCE,
    [serial_cutoff] = {!default_serial_cutoff},
    [certify] = {!default_certify}, no forced-parallel overrides,
    [trace] = {!default_trace}, [faults] = {!default_faults},
    [fusion] = {!default_fusion}, [time_tile = 1] (off),
    [time_block = 0] (auto). *)

val with_workers : int -> t -> t
