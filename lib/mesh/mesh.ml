open Sf_util

type t = { shape : Ivec.t; strides : Ivec.t; data : floatarray }

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let create shape =
  if Array.length shape = 0 then invalid_arg "Mesh.create: empty shape";
  Array.iter
    (fun e -> if e <= 0 then invalid_arg "Mesh.create: non-positive extent")
    shape;
  let size = Ivec.product shape in
  {
    shape = Array.copy shape;
    strides = compute_strides shape;
    data = Float.Array.make size 0.;
  }

let shape m = Array.copy m.shape
let dims m = Array.length m.shape
let size m = Float.Array.length m.data
let strides m = Array.copy m.strides

let flat_index m p = Ivec.dot m.strides p

let in_bounds m p =
  Array.length p = Array.length m.shape
  && Array.for_all2 (fun x e -> x >= 0 && x < e) p m.shape

let get m p =
  if not (in_bounds m p) then
    invalid_arg
      (Printf.sprintf "Mesh.get: %s out of bounds %s" (Ivec.to_string p)
         (Ivec.to_string m.shape));
  Float.Array.get m.data (flat_index m p)

let set m p v =
  if not (in_bounds m p) then
    invalid_arg
      (Printf.sprintf "Mesh.set: %s out of bounds %s" (Ivec.to_string p)
         (Ivec.to_string m.shape));
  Float.Array.set m.data (flat_index m p) v

let get_flat m i = Float.Array.get m.data i
let set_flat m i v = Float.Array.set m.data i v
let unsafe_get_flat m i = Float.Array.unsafe_get m.data i
let unsafe_set_flat m i v = Float.Array.unsafe_set m.data i v
let data m = m.data

(* Row-major point iteration: advance a mutable multi-index like an odometer. *)
let iteri m f =
  let n = dims m in
  let p = Array.make n 0 in
  let total = size m in
  for flat = 0 to total - 1 do
    f p (Float.Array.unsafe_get m.data flat);
    let rec bump i =
      if i >= 0 then begin
        p.(i) <- p.(i) + 1;
        if p.(i) >= m.shape.(i) then begin
          p.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (n - 1)
  done

let fill_with m f =
  let n = dims m in
  let p = Array.make n 0 in
  let total = size m in
  for flat = 0 to total - 1 do
    Float.Array.unsafe_set m.data flat (f p);
    let rec bump i =
      if i >= 0 then begin
        p.(i) <- p.(i) + 1;
        if p.(i) >= m.shape.(i) then begin
          p.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (n - 1)
  done

let create_init shape f =
  let m = create shape in
  fill_with m f;
  m

let fill m v = Float.Array.fill m.data 0 (size m) v

let random ?(seed = 42) ?(lo = -1.) ?(hi = 1.) shape =
  let st = Random.State.make [| seed |] in
  let m = create shape in
  for i = 0 to size m - 1 do
    Float.Array.unsafe_set m.data i (lo +. Random.State.float st (hi -. lo))
  done;
  m

let copy m =
  {
    shape = Array.copy m.shape;
    strides = Array.copy m.strides;
    data = Float.Array.copy m.data;
  }

let blit ~src ~dst =
  if not (Ivec.equal src.shape dst.shape) then
    invalid_arg "Mesh.blit: shape mismatch";
  Float.Array.blit src.data 0 dst.data 0 (size src)

let map_inplace m f =
  for i = 0 to size m - 1 do
    Float.Array.unsafe_set m.data i (f (Float.Array.unsafe_get m.data i))
  done

let dot a b =
  if not (Ivec.equal a.shape b.shape) then invalid_arg "Mesh.dot: shape mismatch";
  let s = ref 0. in
  for i = 0 to size a - 1 do
    s :=
      !s
      +. (Float.Array.unsafe_get a.data i *. Float.Array.unsafe_get b.data i)
  done;
  !s

let norm_l2 a = sqrt (dot a a)

let norm_linf a =
  let s = ref 0. in
  for i = 0 to size a - 1 do
    s := Float.max !s (Float.abs (Float.Array.unsafe_get a.data i))
  done;
  !s

let sum a =
  let s = ref 0. in
  for i = 0 to size a - 1 do
    s := !s +. Float.Array.unsafe_get a.data i
  done;
  !s

let mean a = sum a /. float_of_int (size a)

let max_abs_diff a b =
  if not (Ivec.equal a.shape b.shape) then
    invalid_arg "Mesh.max_abs_diff: shape mismatch";
  let s = ref 0. in
  for i = 0 to size a - 1 do
    s :=
      Float.max !s
        (Float.abs
           (Float.Array.unsafe_get a.data i -. Float.Array.unsafe_get b.data i))
  done;
  !s

let equal_approx ?(tol = 1e-12) a b =
  Ivec.equal a.shape b.shape && max_abs_diff a b <= tol

let close ?ulps ?atol a b =
  Ivec.equal a.shape b.shape && Fcmp.array_close ?ulps ?atol a.data b.data

let first_mismatch ?ulps ?atol a b =
  if not (Ivec.equal a.shape b.shape) then
    invalid_arg "Mesh.first_mismatch: shape mismatch";
  match Fcmp.first_mismatch ?ulps ?atol a.data b.data with
  | None -> None
  | Some (flat, x, y) ->
      let point = Array.make (dims a) 0 in
      let rem = ref flat in
      let str = strides a in
      for ax = 0 to dims a - 1 do
        point.(ax) <- !rem / str.(ax);
        rem := !rem mod str.(ax)
      done;
      Some (point, x, y)

let axpy ~alpha ~x ~y =
  if not (Ivec.equal x.shape y.shape) then invalid_arg "Mesh.axpy: shape mismatch";
  for i = 0 to size x - 1 do
    Float.Array.unsafe_set y.data i
      ((alpha *. Float.Array.unsafe_get x.data i)
      +. Float.Array.unsafe_get y.data i)
  done

let scale_inplace m alpha =
  for i = 0 to size m - 1 do
    Float.Array.unsafe_set m.data i (alpha *. Float.Array.unsafe_get m.data i)
  done

let pp ppf m =
  let n = min 8 (size m) in
  Format.fprintf ppf "mesh%a[" Ivec.pp m.shape;
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "%g" (get_flat m i)
  done;
  if size m > n then Format.fprintf ppf "; ...";
  Format.fprintf ppf "]"
