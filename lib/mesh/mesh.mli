(** N-dimensional dense meshes of double-precision values.

    A mesh is a row-major flat [floatarray] plus a shape.  Meshes are the
    runtime data that Snowflake stencils read and write; ghost zones are not
    a separate concept — callers allocate the halo as part of the shape and
    use domains to address interior vs. boundary, exactly as the paper's
    language does. *)

open Sf_util

type t

val create : Ivec.t -> t
(** [create shape] is a zero-initialised mesh. Raises [Invalid_argument] on
    empty shapes or non-positive extents. *)

val create_init : Ivec.t -> (Ivec.t -> float) -> t
(** [create_init shape f] fills each point [p] with [f p]. *)

val fill_with : t -> (Ivec.t -> float) -> unit
val fill : t -> float -> unit

val random : ?seed:int -> ?lo:float -> ?hi:float -> Ivec.t -> t
(** Deterministic pseudo-random mesh (default seed 42, range [[-1, 1]]). *)

val shape : t -> Ivec.t
val dims : t -> int
val size : t -> int
(** Total number of points. *)

val strides : t -> Ivec.t
(** Row-major strides: flat index of point [p] is [Ivec.dot (strides m) p]. *)

val flat_index : t -> Ivec.t -> int
val in_bounds : t -> Ivec.t -> bool

val get : t -> Ivec.t -> float
(** Bounds-checked point read; raises [Invalid_argument] out of bounds. *)

val set : t -> Ivec.t -> float -> unit

val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val unsafe_get_flat : t -> int -> float
val unsafe_set_flat : t -> int -> float -> unit

val data : t -> floatarray
(** The underlying storage (shared, not a copy). *)

val copy : t -> t
val blit : src:t -> dst:t -> unit
(** Raises [Invalid_argument] on shape mismatch. *)

val iteri : t -> (Ivec.t -> float -> unit) -> unit
(** Iterate every point in row-major order. *)

val map_inplace : t -> (float -> float) -> unit

(** {2 Reductions} *)

val dot : t -> t -> float
val norm_l2 : t -> float
val norm_linf : t -> float
val sum : t -> float
val mean : t -> float

val max_abs_diff : t -> t -> float
(** L∞ distance between two same-shape meshes. *)

val equal_approx : ?tol:float -> t -> t -> bool
(** Pointwise comparison with absolute tolerance (default 1e-12). *)

val close : ?ulps:int -> ?atol:float -> t -> t -> bool
(** Pointwise {!Sf_util.Fcmp.close}: same shape and every point within
    [ulps] units in the last place or [atol] absolutely.  With the
    defaults ([ulps = 0], [atol = 0.]) this is bitwise equality modulo
    NaN — the determinism check the pool regression tests use. *)

val first_mismatch :
  ?ulps:int -> ?atol:float -> t -> t -> (Ivec.t * float * float) option
(** Witness point (row-major first) where {!close} fails, with both
    values — what the differential fuzzer reports on divergence. *)

val axpy : alpha:float -> x:t -> y:t -> unit
(** [y <- alpha*x + y], shapes must match. *)

val scale_inplace : t -> float -> unit

val pp : Format.formatter -> t -> unit
(** Shape plus a small sample of values; intended for debugging. *)
