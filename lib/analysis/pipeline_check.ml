open Sf_util
open Snowflake

type channel = {
  base : string;
  src : int list;
  dst : int list;
  axis : int;
  src_grid : string;
  dst_grid : string;
  src_stage : int;
  dst_stage : int;
  wave_delay : int;
  consumer : int;
  producer : int;
  ghost : Domain.resolved list;
  offset : Ivec.t;
  slope : int * int;
  depth : int;
  plane_points : int;
}

type certificate = {
  group_label : string;
  group_hash : int;
  stream_axis : int;
  stages : int;
  ranks : int list list;
  stage_of : int array;
  rank_of : int list array;
  channels : channel list;
  bytes : int;
}

(* ------------------------------------------------------- rank parsing *)

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let rank_of_grid name =
  match String.rindex_opt name '@' with
  | None -> None
  | Some i ->
      let base = String.sub name 0 i in
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      let tokens = String.split_on_char '_' suffix in
      if base <> "" && tokens <> [] && List.for_all is_digits tokens then
        Some (base, List.map int_of_string tokens)
      else None

let rank_to_string r = String.concat "_" (List.map string_of_int r)

(* ------------------------------------------------------- small helpers *)

let loc_of group index (s : Stencil.t) =
  Srcloc.stencil ~group:group.Group.label ~index s.Stencil.label

let sf032 group index s msg =
  Diagnostics.make ~code:"SF032" ~severity:Diagnostics.Error
    ~loc:(loc_of group index s)
    ~hint:
      "only neighbour-to-neighbour unit-scale halo copy stencils can become \
       channels; run this group bulk-synchronously (Spmd.run_group)"
    msg

(* Every cross-rank transfer the executor can stream must be a pure halo
   copy: one read, nothing else in the expression, identity write. *)
let is_pure_copy (s : Stencil.t) =
  Affine.is_identity s.Stencil.out_map
  &&
  match s.Stencil.expr with Expr.Read _ -> true | _ -> false

(* ----------------------------------------------------- DAG construction *)

type edge = {
  e_base : string;
  e_src_rank : int list;
  e_axis : int;
  e_src_grid : string;
  e_consumer : int;
  e_producer : int;
  e_delay : int;
  e_offset : Ivec.t;
  e_slope : int * int;
}

let analyze ?(stream_axis = 0) ?depth_override ?(budget_bytes = 1 lsl 26)
    ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let n = Array.length stencils in
  let out_rank =
    Array.map (fun (s : Stencil.t) -> rank_of_grid s.Stencil.output) stencils
  in
  if Array.for_all Option.is_none out_rank then (None, [])
  else begin
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let waves = Schedule.greedy_waves ~shape group in
    let stages = List.length waves in
    let stage_of = Array.make n 0 in
    List.iteri (fun w wave -> List.iter (fun i -> stage_of.(i) <- w) wave)
      waves;
    let rank_of = Array.make n [] in
    let fatal = ref false in
    Array.iteri
      (fun i (s : Stencil.t) ->
        match out_rank.(i) with
        | Some (_, r) -> rank_of.(i) <- r
        | None ->
            fatal := true;
            emit
              (sf032 group i s
                 (Printf.sprintf
                    "stencil writes unqualified grid '%s' in a rank-qualified \
                     group: no home rank to pipeline it on"
                    s.Stencil.output)))
      stencils;
    let ranks =
      Array.to_list rank_of |> List.sort_uniq compare
      |> List.filter (fun r -> r <> [])
    in
    (* ----------------------------------------- cross-rank edge discovery *)
    let resolved_read (s : Stencil.t) m =
      List.map (Footprint.affine_image m)
        (Domain.resolve ~shape s.Stencil.domain)
    in
    let writes_cache = Hashtbl.create 16 in
    let writes_of j =
      match Hashtbl.find_opt writes_cache j with
      | Some w -> w
      | None ->
          let w = snd (Footprint.write_footprint ~shape stencils.(j)) in
          Hashtbl.add writes_cache j w;
          w
    in
    let edges = ref [] in
    Array.iteri
      (fun i (s : Stencil.t) ->
        let home = rank_of.(i) in
        if home <> [] then begin
          let foreign =
            List.filter_map
              (fun (g, m) ->
                match rank_of_grid g with
                | Some (base, r) when r <> home -> Some (g, base, r, m)
                | _ -> None)
              (Stencil.reads s)
          in
          let foreign_ranks =
            List.sort_uniq compare (List.map (fun (_, _, r, _) -> r) foreign)
          in
          if List.length foreign_ranks > 1 then begin
            fatal := true;
            emit
              (sf032 group i s
                 (Printf.sprintf
                    "cross-rank reduction: stencil gathers from %d foreign \
                     ranks (%s)"
                    (List.length foreign_ranks)
                    (String.concat ", "
                       (List.map rank_to_string foreign_ranks))))
          end
          else
            List.iter
              (fun (g, base, r', m) ->
                let delta =
                  List.map2 (fun a b -> a - b) home r'
                in
                let diff_axes =
                  List.filteri (fun _ d -> d <> 0) delta |> List.length
                in
                let axis =
                  match
                    List.mapi (fun a d -> (a, d)) delta
                    |> List.find_opt (fun (_, d) -> d <> 0)
                  with
                  | Some (a, _) -> a
                  | None -> stream_axis
                in
                if
                  diff_axes <> 1
                  || List.exists (fun d -> abs d > 1) delta
                then begin
                  fatal := true;
                  emit
                    (sf032 group i s
                       (Printf.sprintf
                          "cross-rank read of '%s' from non-neighbour rank \
                           %s (home %s): only face-adjacent transfers can be \
                           streamed"
                          g (rank_to_string r') (rank_to_string home)))
                end
                else if not (is_pure_copy s) then begin
                  fatal := true;
                  emit
                    (sf032 group i s
                       (Printf.sprintf
                          "cross-rank read of '%s' is embedded in \
                           computation: a streamable transfer must be a pure \
                           halo copy stencil"
                          g))
                end
                else begin
                  (* producer: latest intersecting writer of g on r' before
                     us (same sweep), else the latest in the whole group
                     (previous sweep). *)
                  let rlats = resolved_read s m in
                  let intersecting j =
                    String.equal stencils.(j).Stencil.output g
                    && Footprint.lattice_lists_intersect (writes_of j) rlats
                  in
                  let latest_before k =
                    let rec go j best =
                      if j >= k then best
                      else go (j + 1) (if intersecting j then Some j else best)
                    in
                    go 0 None
                  in
                  match (latest_before i, latest_before n) with
                  | None, None -> () (* static foreign grid: no channel *)
                  | Some j, _ when stage_of.(j) >= stage_of.(i) ->
                      fatal := true;
                      emit
                        (sf032 group i s
                           (Printf.sprintf
                              "backward dependence along the stream axis: \
                               producer '%s' is not scheduled before this \
                               stage"
                              stencils.(j).Stencil.label))
                  | producer_opt, fallback ->
                      let producer, delay =
                        match producer_opt with
                        | Some j -> (j, 0)
                        | None -> (Option.get fallback, 1)
                      in
                      let slopes =
                        Dependence.read_slopes ~shape ~axis
                          ~before:stencils.(producer) ~after:s
                      in
                      let slope =
                        match slopes with
                        | [] -> (m.Affine.scale.(axis), m.Affine.offset.(axis))
                        | sl ->
                            List.fold_left
                              (fun (bs, bo) (sc, o) ->
                                if abs o > abs bo then (sc, o) else (bs, bo))
                              (List.hd sl) sl
                      in
                      if fst slope <> 1 then begin
                        fatal := true;
                        emit
                          (sf032 group i s
                             (Printf.sprintf
                                "cross-rank read of '%s' at scale %d: \
                                 scale-changing transfers (restriction/\
                                 interpolation across ranks) cannot be \
                                 streamed as fixed-width planes"
                                g (fst slope)))
                      end
                      else
                        edges :=
                          {
                            e_base = base;
                            e_src_rank = r';
                            e_axis = axis;
                            e_src_grid = g;
                            e_consumer = i;
                            e_producer = producer;
                            e_delay = delay;
                            e_offset = m.Affine.offset;
                            e_slope = slope;
                          }
                          :: !edges
                end)
              foreign
        end)
      stencils;
    let edges = List.rev !edges in
    if !fatal then (None, List.rev !diags)
    else begin
      (* --------------------------------------- ASAP schedule (unrolled) *)
      let nranks = List.length ranks in
      let rank_index =
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i r -> Hashtbl.add tbl r i) ranks;
        fun r -> Hashtbl.find tbl r
      in
      let window = nranks + 4 in
      let node w ri st = ((w * nranks) + ri) * stages + st in
      let nnodes = window * nranks * stages in
      let start = Array.make nnodes 0 in
      let finish w ri st = start.(node w ri st) + 1 in
      for w = 0 to window - 1 do
        for st = 0 to stages - 1 do
          for ri = 0 to nranks - 1 do
            let t = ref 0 in
            if st > 0 then t := max !t (finish w ri (st - 1));
            if st = 0 && w > 0 then t := max !t (finish (w - 1) ri (stages - 1));
            List.iter
              (fun e ->
                if
                  rank_index rank_of.(e.e_consumer) = ri
                  && stage_of.(e.e_consumer) = st
                  && w - e.e_delay >= 0
                then
                  t :=
                    max !t
                      (finish (w - e.e_delay)
                         (rank_index e.e_src_rank)
                         stage_of.(e.e_producer)))
              edges;
            start.(node w ri st) <- !t
          done
        done
      done;
      (* ------------------------------------------------- channel sizing *)
      let mk_channel e =
        let cons = stencils.(e.e_consumer) in
        let dst = rank_of.(e.e_consumer) in
        let dst_grid, ghost = Footprint.write_footprint ~shape cons in
        let src_ri = rank_index e.e_src_rank and dst_ri = rank_index dst in
        let src_stage = stage_of.(e.e_producer)
        and dst_stage = stage_of.(e.e_consumer) in
        let send m =
          if m < e.e_delay then 0
          else finish (m - e.e_delay) src_ri src_stage
        in
        let recv m = start.(node m dst_ri dst_stage) in
        let depth = ref 1 in
        for m = 0 to window - 1 do
          let rm = recv m in
          let sent = ref 0 and consumed = ref 0 in
          for m' = 0 to window - 1 do
            if send m' <= rm then incr sent;
            if m' < m && recv m' < rm then incr consumed
          done;
          depth := max !depth (!sent - !consumed)
        done;
        let depth =
          match depth_override with Some d -> d | None -> !depth
        in
        {
          base = e.e_base;
          src = e.e_src_rank;
          dst;
          axis = e.e_axis;
          src_grid = e.e_src_grid;
          dst_grid;
          src_stage;
          dst_stage;
          wave_delay = e.e_delay;
          consumer = e.e_consumer;
          producer = e.e_producer;
          ghost;
          offset = e.e_offset;
          slope = e.e_slope;
          depth;
          plane_points = Domain.npoints_union ghost;
        }
      in
      let channels = List.map mk_channel edges in
      (* ------------------------------------- deadlock proof (liveness) *)
      (* Forward edges plus capacity back-edges (the (m+depth)-th send
         waits on the m-th receive); a cycle in the unrolled graph is a
         deadlock witness. *)
      let adj = Array.make nnodes [] in
      let add_edge a b = adj.(a) <- b :: adj.(a) in
      for w = 0 to window - 1 do
        for ri = 0 to nranks - 1 do
          for st = 0 to stages - 1 do
            if st > 0 then add_edge (node w ri (st - 1)) (node w ri st);
            if st = 0 && w > 0 then
              add_edge (node (w - 1) ri (stages - 1)) (node w ri 0)
          done
        done
      done;
      List.iter
        (fun c ->
          let src_ri = rank_index c.src and dst_ri = rank_index c.dst in
          for m = 0 to window - 1 do
            (* forward: send of message m enables its receive *)
            if m - c.wave_delay >= 0 then
              add_edge
                (node (m - c.wave_delay) src_ri c.src_stage)
                (node m dst_ri c.dst_stage);
            (* back-pressure: message m+depth cannot be sent before
               message m is consumed *)
            let m' = m + c.depth - c.wave_delay in
            if m' >= 0 && m' < window then
              add_edge (node m dst_ri c.dst_stage) (node m' src_ri c.src_stage)
          done)
        channels;
      let label_of id =
        let st = id mod stages in
        let wr = id / stages in
        let ri = wr mod nranks and w = wr / nranks in
        Printf.sprintf "wave %d/rank %s/stage %d" w
          (rank_to_string (List.nth ranks ri))
          st
      in
      let state = Array.make nnodes 0 (* 0 new, 1 on stack, 2 done *) in
      let witness = ref None in
      let rec dfs path id =
        if state.(id) = 1 then begin
          (* [path] holds ancestors, immediate parent first: the cycle is
             [id .. parent] in visit order, closed by [id] again *)
          let rec take acc = function
            | [] -> acc
            | x :: rest -> if x = id then x :: acc else take (x :: acc) rest
          in
          witness := Some (take [] path @ [ id ])
        end
        else if state.(id) = 0 then begin
          state.(id) <- 1;
          List.iter
            (fun nxt -> if !witness = None then dfs (id :: path) nxt)
            adj.(id);
          state.(id) <- 2
        end
      in
      for id = 0 to nnodes - 1 do
        if !witness = None then dfs [] id
      done;
      let bytes =
        List.fold_left
          (fun acc c -> acc + (c.depth * c.plane_points * 8))
          0 channels
      in
      match !witness with
      | Some cycle ->
          let cyc = String.concat " -> " (List.map label_of cycle) in
          emit
            (Diagnostics.make ~code:"SF031" ~severity:Diagnostics.Error
               ~loc:(Srcloc.group group.Group.label)
               ~hint:
                 "grow the named channels' depths (remove the depth \
                  override) or fall back to bulk-synchronous Spmd.run_group"
               (Printf.sprintf
                  "unsatisfiable channel sizing: the capacity-constrained \
                   pipeline graph has a zero-slack cycle: %s"
                  cyc));
          (None, List.rev !diags)
      | None ->
          let cert =
            {
              group_label = group.Group.label;
              group_hash = Group.hash group;
              stream_axis;
              stages;
              ranks;
              stage_of;
              rank_of;
              channels;
              bytes;
            }
          in
          if bytes > budget_bytes then
            emit
              (Diagnostics.make ~code:"SF033" ~severity:Diagnostics.Warning
                 ~loc:(Srcloc.group group.Group.label)
                 ~hint:
                   (Printf.sprintf
                      "raise the budget (SF_PIPE_BUDGET / Config.pipe_budget) \
                       or run bulk-synchronously via Spmd.run_group")
                 (Printf.sprintf
                    "certified channel depths need %d bytes of ring buffers, \
                     over the %d-byte budget; the bulk-synchronous fallback \
                     (Spmd.run_group) uses no channel memory"
                    bytes budget_bytes));
          let dmin, dmax =
            List.fold_left
              (fun (lo, hi) c -> (min lo c.depth, max hi c.depth))
              (max_int, 0) channels
          in
          let dmin = if channels = [] then 0 else dmin in
          emit
            (Diagnostics.make ~code:"SF030" ~severity:Diagnostics.Note
               ~loc:(Srcloc.group group.Group.label)
               ~hint:
                 (String.concat "; "
                    (List.map
                       (fun c ->
                         Printf.sprintf
                           "%s %s->%s ax%d stage %d->%d%s depth %d" c.base
                           (rank_to_string c.src) (rank_to_string c.dst)
                           c.axis c.src_stage c.dst_stage
                           (if c.wave_delay > 0 then
                              Printf.sprintf " (+%d wave)" c.wave_delay
                            else "")
                           c.depth)
                       channels))
               (Printf.sprintf
                  "pipeline certified: %d stage(s) x %d rank(s), %d \
                   channel(s), depths %d..%d, %d bytes buffered"
                  stages nranks (List.length channels) dmin dmax bytes));
          (Some cert, List.rev !diags)
    end
  end

(* ------------------------------------------------------ the SF034 gate *)

let verify_depths cert ~depths =
  let certified = List.map (fun c -> c.depth) cert.channels in
  if List.length depths <> List.length certified then
    [
      Diagnostics.make ~code:"SF034" ~severity:Diagnostics.Error
        ~loc:(Srcloc.group cert.group_label)
        ~hint:"recertify the plan: the executor's channel set was rebuilt"
        (Printf.sprintf
           "executed plan has %d channel(s) but the certificate sized %d"
           (List.length depths) (List.length certified));
    ]
  else
    List.concat
      (List.map2
         (fun c d ->
           if d = c.depth then []
           else
             [
               Diagnostics.make ~code:"SF034" ~severity:Diagnostics.Error
                 ~loc:(Srcloc.group cert.group_label)
                 ~hint:
                   "the executor must allocate exactly the certified ring \
                    depths; rerun certification if the plan changed"
                 (Printf.sprintf
                    "channel %s %s->%s runs at depth %d but was certified at \
                     depth %d"
                    c.base (rank_to_string c.src) (rank_to_string c.dst) d
                    c.depth);
             ])
         cert.channels depths)

let describe cert =
  let dmin, dmax =
    List.fold_left
      (fun (lo, hi) c -> (min lo c.depth, max hi c.depth))
      (max_int, 0) cert.channels
  in
  let dmin = if cert.channels = [] then 0 else dmin in
  Printf.sprintf
    "%d stage(s) x %d rank(s), %d channel(s), depths %d..%d, %d bytes"
    cert.stages
    (List.length cert.ranks)
    (List.length cert.channels)
    dmin dmax cert.bytes
