(** Streaming-pipeline certification for SPMD sweeps (SF030–SF034).

    [Spmd] expresses halo exchange as ordinary copy stencils between
    rank-qualified grids (["u@0_0"], ["u@1_0"], …), so a whole distributed
    sweep is one analysable group.  This pass reproduces StencilFlow's
    pre-execution analysis on that substrate: it lifts the group into a
    cross-rank dependence DAG, sizes one bounded FIFO channel per halo
    transfer from the dependence slopes, and proves the
    capacity-constrained graph deadlock-free — all {e before} anything
    runs, so the pipelined executor in [Sf_distributed.Pipeline] only ever
    executes certified plans.

    The model: the group's greedy waves become per-rank {e stages}; a
    (wave, rank, stage) node is one unit of pipelined work.  Every halo
    copy stencil is a channel from the producing rank's latest
    intersecting writer stage (same sweep when one exists, otherwise the
    previous sweep — [wave_delay = 1]) to the consuming stage.  Channel
    depths are computed by the StencilFlow sizing recurrence: ASAP
    longest-path start times over the unrolled DAG, then per channel the
    maximum number of in-flight messages over the schedule.  Deadlock
    freedom is marked-graph liveness: adding the capacity back-edges
    (the [(m+depth)]-th send waits on the [m]-th receive) must keep the
    unrolled graph acyclic; a cycle is reported as an SF031 witness.

    Diagnostics:
    - [SF030] note — the certified pipeline schedule (stages, channels,
      computed depths, buffer bytes)
    - [SF031] error — unsatisfiable channel sizing: the
      capacity-constrained graph has a zero-slack cycle (witness printed)
    - [SF032] error — non-pipelineable group: cross-rank reduction,
      non-neighbour or non-unit-scale transfer, a cross-rank read buried
      inside arithmetic, or a backward dependence along the stream axis
    - [SF033] warning — certified depths exceed the channel-memory
      budget; the bulk-synchronous fallback ([Spmd.run_group]) is named
    - [SF034] error — certification failure at execution time: the plan
      an executor is about to run disagrees with the certified depths
      (emitted by {!verify_depths}, raised by the executor's gate) *)

open Sf_util
open Snowflake

type channel = {
  base : string;  (** grid base name, e.g. ["u"] *)
  src : int list;  (** producer rank coordinate *)
  dst : int list;  (** consumer rank coordinate *)
  axis : int;  (** the axis on which [src] and [dst] are neighbours *)
  src_grid : string;  (** rank-qualified grid the plane is read from *)
  dst_grid : string;  (** rank-qualified grid the ghost plane lands in *)
  src_stage : int;  (** stage whose completion publishes the plane *)
  dst_stage : int;  (** stage whose start consumes it *)
  wave_delay : int;  (** 0 = produced in the same sweep, 1 = previous *)
  consumer : int;  (** index of the halo copy stencil within the group *)
  producer : int;  (** index of the producing stencil within the group *)
  ghost : Domain.resolved list;
      (** consumer-grid ghost lattice the copy writes (one message) *)
  offset : Ivec.t;  (** ghost cell + [offset] = producer-grid cell *)
  slope : int * int;
      (** (scale, offset) of the transfer along [axis] — the dependence
          slope the sizing recurrence consumed *)
  depth : int;  (** certified ring depth, in messages (planes) *)
  plane_points : int;  (** lattice points per message *)
}

type certificate = {
  group_label : string;
  group_hash : int;  (** [Group.hash] of the certified group *)
  stream_axis : int;
  stages : int;  (** number of greedy waves *)
  ranks : int list list;  (** every rank with at least one stencil *)
  stage_of : int array;  (** stencil index → stage *)
  rank_of : int list array;  (** stencil index → home rank *)
  channels : channel list;
  bytes : int;  (** total certified buffer bytes (8 per point) *)
}

val rank_of_grid : string -> (string * int list) option
(** Parse a rank-qualified grid name: ["u@1_0"] ↦ [Some ("u", [1; 0])];
    [None] for unqualified names. *)

val analyze :
  ?stream_axis:int ->
  ?depth_override:int ->
  ?budget_bytes:int ->
  shape:Ivec.t ->
  Group.t ->
  certificate option * Diagnostics.t list
(** The whole analysis.  Returns [Some certificate] iff the group is
    pipelineable and the (possibly overridden) channel sizing is
    deadlock-free; the diagnostics always tell the full story (an SF030
    note accompanies every certificate; SF031/SF032 errors explain every
    refusal; SF033 warns on budget overrun without withholding the
    certificate).  [depth_override] forces every channel to the given
    depth before the deadlock proof — the expert/fuzzing knob that makes
    undersized plans reproducible.  [budget_bytes] defaults to 64 MiB.
    A group with no rank-qualified grids yields [(None, [])]. *)

val verify_depths : certificate -> depths:int list -> Diagnostics.t list
(** The SF034 runtime gate: compare the depths an executor is about to
    run with (in [certificate.channels] order) against the certified
    ones; every disagreement (including a length mismatch) is an SF034
    error.  Empty iff the executed plan agrees with the certificate. *)

val describe : certificate -> string
(** One line: stages × ranks, channel count, depth range, buffer bytes. *)
