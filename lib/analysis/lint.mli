(** Whole-program dataflow passes — the analyzer behind [sflint].

    [Validate] checks each stencil in isolation; the passes here walk the
    whole group in program order (a topological order of
    {!Schedule.build_dag}, whose edges always point forward) tracking which
    cells of each grid have been written, and report the cross-stencil
    defects that isolation cannot see:

    - {!uninitialized_reads} ([SF011]): a stencil reads cells of a grid
      that no earlier stencil wrote and that the program does not declare
      as an input.  Cell-precise: partial initialization (e.g. writing a
      grid's interior and then reading its ghost ring) is caught, with a
      concrete witness cell.
    - {!dead_stores} ([SF012]): a stencil's entire write lattice is
      overwritten by later stencils before any read observes a single cell
      of it — the store can be deleted outright.
    - {!out_of_bounds} ([SF001]): the witness-carrying form of the bounds
      check, with the halo widening that would fix each escape.

    Cell tracking enumerates lattices exactly up to {!enumeration_cap}
    points per grid; beyond that the passes degrade to pure lattice
    intersection (still sound for what they do report, but they may stay
    silent on partial-coverage defects).

    {!program} is the pass driver the CLI and tests use: every [Validate]
    check plus every pass above, as one sorted diagnostic list. *)

open Sf_util
open Snowflake

val enumeration_cap : int
(** Max cells tracked exactly per grid (2^22). *)

val out_of_bounds :
  shape:Ivec.t -> grid_shape:(string -> Ivec.t) -> Group.t ->
  Diagnostics.t list

val uninitialized_reads :
  shape:Ivec.t -> ?inputs:string list -> Group.t -> Diagnostics.t list
(** [inputs] declares the grids the caller initializes before running the
    group; reads of anything else before a covering write are errors.
    When omitted, inputs are inferred by first touch — a grid whose first
    touching stencil reads it is assumed external — and findings are
    warnings (the inference cannot distinguish "external" from "forgot to
    initialize" for grids the group also writes). *)

val dead_stores : shape:Ivec.t -> Group.t -> Diagnostics.t list

val program :
  shape:Ivec.t ->
  grid_shape:(string -> Ivec.t) ->
  ?params:string list ->
  ?inputs:string list ->
  Group.t ->
  Diagnostics.t list
(** All passes: [SF001] (witness form), [SF002]–[SF004] from {!Validate},
    [SF011], [SF012]; sorted in program order. *)
