(** Dependence queries between stencils (paper §III).

    All queries are finite-domain and exact for the affine (constant-offset,
    strided-domain) stencils the DSL can express: a conflict is reported iff
    two footprint lattices genuinely share a point within the resolved
    bounds.  This is what lets boundary stencils run concurrently with
    interior stencils — an infinite-domain analysis would flag them. *)

open Sf_util
open Snowflake

type kind = Raw | War | Waw

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val self_conflicts : shape:Ivec.t -> Stencil.t -> Ivec.t list
(** For an in-place stencil: the nonzero read offsets [o] on the output grid
    whose translated domain intersects the write domain — the loop-carried
    dependences that forbid applying the stencil in parallel over its own
    domain.  Empty for out-of-place stencils. *)

val point_parallel : shape:Ivec.t -> Stencil.t -> bool
(** The stencil may be applied at all its domain points concurrently:
    no self-conflicts and the domain-union rects are pairwise disjoint.
    A GSRB colour sweep is point-parallel; a full-domain in-place
    Gauss-Seidel is not. *)

val conflicts :
  shape:Ivec.t -> before:Stencil.t -> after:Stencil.t -> kind list
(** Dependences that order [after] after [before]: RAW ([before] writes what
    [after] reads), WAR, WAW.  Sorted, deduplicated. *)

val write_slope : axis:int -> Stencil.t -> int * int
(** The (scale, offset) of the stencil's output map along [axis] — the
    slope at which it scatters writes.  Identity maps yield [(1, 0)];
    an interpolation writing a doubled grid yields [(2, o)]. *)

val read_slopes :
  shape:Ivec.t -> axis:int -> before:Stencil.t -> after:Stencil.t ->
  (int * int) list
(** The (scale, offset) pairs along [axis] of every read in [after] that
    actually touches cells [before] writes (footprint-intersected, so
    reads of the same grid that miss the written lattice are excluded).
    Sorted and deduplicated.  A scale-2 restriction reading a fine grid
    yields slopes like [(2, -1); (2, 0); (2, 1)]; the channel-sizing
    recurrence in {!Pipeline_check} consumes the unit-scale case. *)

val depends : shape:Ivec.t -> before:Stencil.t -> after:Stencil.t -> bool
val independent : shape:Ivec.t -> Stencil.t -> Stencil.t -> bool
(** No dependence in either direction: the two stencils may run
    concurrently. *)
