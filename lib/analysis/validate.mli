(** Whole-group static diagnostics — the "verification" use of the
    analysis the paper calls out in §III ("used for both verification and
    auto-parallelizing").

    [group] runs every check the micro-compilers rely on and returns the
    complete list of findings, so a stencil program can be linted before
    any kernel is built (see also [bin/codegen_dump.exe] which prints
    them). *)

open Sf_util
open Snowflake

type issue =
  | Out_of_bounds of { stencil : string; detail : string }
      (** a read or write escapes its grid *)
  | Overlapping_union of { stencil : string }
      (** the stencil's own domain union writes some cell twice *)
  | Sequential_in_place of { stencil : string; offsets : Ivec.t list }
      (** loop-carried dependence: backends will not parallelise it *)
  | Unbound_param of { stencil : string; param : string }
      (** parameter not in the supplied binding list *)

val pp_issue : Format.formatter -> issue -> unit
val issue_to_string : issue -> string

val to_diagnostic : ?group:string -> ?index:int -> issue -> Diagnostics.t
(** Bridge onto the structured diagnostics engine: [SF001]–[SF004] with
    the matching severity and location.  [group]/[index] qualify the
    location when known. *)

val group :
  shape:Ivec.t ->
  grid_shape:(string -> Ivec.t) ->
  ?params:string list ->
  Group.t ->
  issue list
(** All issues, in stencil order.  [params] (when given) is the list of
    scalar names the caller intends to bind; omitted means "don't check
    parameters".  [Sequential_in_place] is informational — the program is
    still correct, just serial at that stencil. *)

val group_diagnostics :
  shape:Ivec.t ->
  grid_shape:(string -> Ivec.t) ->
  ?params:string list ->
  Group.t ->
  Diagnostics.t list
(** Same checks as {!group}, delivered as structured diagnostics with
    group-qualified locations (the form [Lint.program] aggregates). *)

val is_error : issue -> bool
(** [Out_of_bounds] and [Unbound_param] make a program unrunnable;
    the others are performance/structure warnings. *)
