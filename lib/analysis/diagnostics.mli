(** Structured diagnostics for the whole-program analyzer ([sflint]).

    Every finding any analysis pass produces — the four classic [Validate]
    checks, the dataflow passes in [Lint], and the schedule certifier in
    [Sf_backends.Schedule_check] — is one of these records: a stable code
    (the [SFxxx] catalogue below), a severity, a {!Snowflake.Srcloc.t}
    naming the group/stencil/part it is about, a human message, and an
    optional machine-suggested fix.  Two renderers are provided: a
    compiler-style text form and a line-stable JSON form for tooling.

    {2 Code catalogue}

    - [SF001] error — an access escapes its grid (with a concrete witness
      cell and the halo widening that would fix it)
    - [SF002] warning — a stencil's domain union writes some cell twice
    - [SF003] note — loop-carried dependence: the stencil runs sequentially
    - [SF004] error — a parameter is read but not bound by the caller
    - [SF011] uninitialized read — a grid is read before any stencil or
      declared input writes the cells read (error when the program's inputs
      are declared, warning when they are inferred)
    - [SF012] warning — dead store: a stencil's entire write lattice is
      overwritten before any read observes it
    - [SF021] error — certification failure: two tasks of the same wave of
      a backend plan touch a common cell with at least one write
    - [SF022] warning — the configuration forces a stencil parallel against
      the analysis ([Config.force_parallel]), so certification is the only
      safety net left
    - [SF023] error — illegal fusion: two concurrent tasks of a fused plan
      touch a common cell with at least one write
    - [SF024] error — a temporal-blocking plan's skew is below the group's
      dependence slope, so slab seams would read stale or future values
    - [SF025] error — the group cannot be time-tiled (non-identity write,
      a non-point-parallel stencil, or a non-unit-scale read of a
      group-written grid)
    - [SF030] note — pipeline certified: the streaming-SPMD schedule and
      its channel depths ([Pipeline_check.analyze])
    - [SF031] error — unsatisfiable channel sizing: the
      capacity-constrained pipeline graph has a zero-slack cycle (witness
      printed)
    - [SF032] error — the group is not pipelineable across ranks (impure
      halo copy, cross-rank reduction, non-neighbour exchange, …)
    - [SF033] warning — the certified channel depths exceed
      [Config.pipe_budget]; the bulk-synchronous path is the fallback
    - [SF034] error — the executed plan's ring depths disagree with the
      certificate ([Pipeline_check.verify_depths], the executor's tamper
      gate) *)

open Snowflake

type severity = Error | Warning | Note

type t = {
  code : string;  (** stable [SFxxx] identifier *)
  severity : severity;
  loc : Srcloc.t;
  message : string;
  hint : string option;  (** suggested fix, when the pass can compute one *)
}

val make :
  code:string -> severity:severity -> loc:Srcloc.t -> ?hint:string ->
  string -> t

val severity_to_string : severity -> string

val is_error : t -> bool
val has_errors : t list -> bool

val count : severity -> t list -> int

val sort : t list -> t list
(** Stable order: program order of the location, then code. *)

val catalogue : (string * severity * string) list
(** [(code, default severity, one-line description)] for every code the
    analyzer can emit, in catalogue order ([sflint --codes], docs). *)

val explain : string -> (severity * string * string) option
(** [(default severity, description, fix hint)] for a catalogue code —
    the payload behind [sflint --explain SFxxx].  [None] for codes not in
    the catalogue. *)

val strip_ranks : string -> string
(** Replace every SPMD rank qualifier (["@1_0"] in ["u@1_0"],
    ["halo_u@1_0_ax0_lo"], …) with ["@*"].  Strings without qualifiers
    are returned unchanged. *)

val collapse_ranks : t list -> t list
(** Deduplicate findings that differ only in rank qualification: SPMD
    programs replicate every grid per rank, so one defect reports once
    per rank (["u@0_0"], ["u@1_0"], …).  Diagnostics whose code,
    rank-stripped location, message and hint all agree collapse to one
    diagnostic (rank qualifiers rendered as ["@*"]) with a
    [" [xN ranks]"] suffix on the message.  Unreplicated findings pass
    through untouched; first-occurrence order is preserved. *)

val pp : Format.formatter -> t -> unit
(** [severity[code] loc: message] followed by an indented [hint:] line. *)

val to_string : t -> string

val render : t list -> string
(** All diagnostics, one per line (hints indented), plus a trailing
    [N error(s), M warning(s), K note(s)] summary line when non-empty. *)

val to_json : t -> string
(** One stable JSON object:
    [{"code":…,"severity":…,"group":…,"stencil":…,"part":…,"message":…,
      "hint":…}].  [group]/[stencil] are [null] when absent, [part] is
    [""] for a whole-stencil location, [hint] is [null] when absent. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects (no trailing newline). *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON quotes (exposed for the CLI
    wrapper that adds file-level framing). *)
