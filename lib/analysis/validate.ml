open Sf_util
open Snowflake

module StringSet = Set.Make (String)

type issue =
  | Out_of_bounds of { stencil : string; detail : string }
  | Overlapping_union of { stencil : string }
  | Sequential_in_place of { stencil : string; offsets : Ivec.t list }
  | Unbound_param of { stencil : string; param : string }

let to_diagnostic ?group ?index issue =
  let d ~code ~severity ~part stencil ?hint message =
    Diagnostics.make ~code ~severity
      ~loc:(Srcloc.stencil ?group ?index ~part stencil)
      ?hint message
  in
  match issue with
  | Out_of_bounds { stencil; detail } ->
      d ~code:"SF001" ~severity:Diagnostics.Error ~part:Srcloc.Whole stencil
        detail
  | Overlapping_union { stencil } ->
      d ~code:"SF002" ~severity:Diagnostics.Warning ~part:Srcloc.Domain
        stencil "domain union writes overlapping cells"
        ~hint:"make the union's rects pairwise disjoint (point counts and \
               parallel writes both rely on it)"
  | Sequential_in_place { stencil; offsets } ->
      d ~code:"SF003" ~severity:Diagnostics.Note ~part:Srcloc.Whole stencil
        (Printf.sprintf
           "loop-carried dependence at offsets %s (will run sequentially)"
           (String.concat ", " (List.map Ivec.to_string offsets)))
  | Unbound_param { stencil; param } ->
      d ~code:"SF004" ~severity:Diagnostics.Error
        ~part:(Srcloc.Param param) stencil
        (Printf.sprintf "parameter %S is not bound" param)
        ~hint:
          (Printf.sprintf "pass ~params:[(%S, value)] at kernel invocation"
             param)

let pp_issue ppf issue =
  let d = to_diagnostic issue in
  Format.fprintf ppf "%s[%s] %s: %s"
    (Diagnostics.severity_to_string d.Diagnostics.severity)
    d.Diagnostics.code
    (Option.value ~default:"?" d.Diagnostics.loc.Srcloc.stencil)
    d.Diagnostics.message

let issue_to_string i = Format.asprintf "%a" pp_issue i

let is_error = function
  | Out_of_bounds _ | Unbound_param _ -> true
  | Overlapping_union _ | Sequential_in_place _ -> false

let stencil_issues ~shape ~grid_shape ~params (s : Stencil.t) =
  let acc = ref [] in
  (match Footprint.check_in_bounds ~shape ~grid_shape s with
  | Ok () -> ()
  | Error detail ->
      acc := Out_of_bounds { stencil = s.Stencil.label; detail } :: !acc);
  if not (Footprint.union_self_disjoint ~shape s) then
    acc := Overlapping_union { stencil = s.Stencil.label } :: !acc;
  (match Dependence.self_conflicts ~shape s with
  | [] -> ()
  | offsets ->
      acc :=
        Sequential_in_place { stencil = s.Stencil.label; offsets } :: !acc);
  (match params with
  | None -> ()
  | Some bound ->
      let bound = StringSet.of_list bound in
      let reported = ref StringSet.empty in
      List.iter
        (fun p ->
          if not (StringSet.mem p bound || StringSet.mem p !reported) then begin
            reported := StringSet.add p !reported;
            acc := Unbound_param { stencil = s.Stencil.label; param = p } :: !acc
          end)
        (Expr.params s.Stencil.expr));
  List.rev !acc

let group ~shape ~grid_shape ?params g =
  List.concat_map
    (stencil_issues ~shape ~grid_shape ~params)
    (Group.stencils g)

let group_diagnostics ~shape ~grid_shape ?params g =
  List.concat
    (List.mapi
       (fun index s ->
         List.map
           (to_diagnostic ~group:g.Group.label ~index)
           (stencil_issues ~shape ~grid_shape ~params s))
       (Group.stencils g))
