open Snowflake

type severity = Error | Warning | Note

type t = {
  code : string;
  severity : severity;
  loc : Srcloc.t;
  message : string;
  hint : string option;
}

let make ~code ~severity ~loc ?hint message =
  { code; severity; loc; message; hint }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = Srcloc.compare a.loc b.loc in
      if c <> 0 then c else String.compare a.code b.code)
    ds

let catalogue =
  [
    ("SF001", Error, "access escapes its grid (out of bounds)");
    ("SF002", Warning, "domain union writes a cell more than once");
    ("SF003", Note, "loop-carried dependence; stencil runs sequentially");
    ("SF004", Error, "parameter read but not bound");
    ("SF011", Warning, "grid read before any write or declared input");
    ("SF012", Warning, "entire write lattice overwritten before any read");
    ("SF021", Error, "intra-wave race in a backend plan");
    ("SF022", Warning, "stencil forced parallel against the analysis");
    ("SF023", Error, "illegal fusion: concurrent fused tasks conflict");
    ("SF024", Error, "time-tile skew below the dependence slope");
    ("SF025", Error, "group cannot be time-tiled");
    ("SF030", Note, "pipeline certified: schedule and channel depths");
    ("SF031", Error, "unsatisfiable channel sizing (deadlock cycle)");
    ("SF032", Error, "group is not pipelineable across ranks");
    ("SF033", Warning, "certified channel depths exceed the memory budget");
    ("SF034", Error, "executed plan disagrees with certified channel depths");
  ]

let fix_hints =
  [
    ("SF001", "widen the grid's halo on the named side, or shrink the \
               stencil's domain so every imaged access stays in bounds");
    ("SF002", "split or re-stride the domain union's rects so no cell is \
               written twice");
    ("SF003", "recolour the sweep (e.g. red/black) or write to a separate \
               output grid to expose parallelism");
    ("SF004", "bind the parameter at the call site (--params on the CLIs, \
               ~params in the API)");
    ("SF011", "write the cells first, or declare the grid external with \
               --inputs so the analyzer knows it arrives initialized");
    ("SF012", "delete the store, or move a consumer of it before the \
               overwriting stencil");
    ("SF021", "remove the force_parallel override (or fix the plan) — the \
               certifier proved two concurrent tasks conflict");
    ("SF022", "drop the override unless measurements justify it; SF021 \
               certification is the only remaining safety net");
    ("SF023", "disable fusion (--no-fusion / Config.fusion = false) or drop \
               the force_parallel override that made the cluster legal");
    ("SF024", "use Timetile.plan's computed skew; never pass ?skew below \
               Timetile.required_skew");
    ("SF025", "restructure the group (identity writes, point-parallel \
               stencils, unit-scale reads) or accept plain k-sweep loops");
    ("SF030", "nothing to fix — this note records the certified schedule \
               and ring depths the pipelined executor will allocate");
    ("SF031", "grow the undersized channels (remove any depth override) or \
               fall back to bulk-synchronous Spmd.run_group");
    ("SF032", "restructure cross-rank reads into pure neighbour-to-neighbour \
               halo copy stencils, or run the sweep bulk-synchronously");
    ("SF033", "raise the budget (SF_PIPE_BUDGET / Config.pipe_budget), \
               shrink the plane size, or use the bulk-synchronous fallback");
    ("SF034", "recertify the plan: the executor must allocate exactly the \
               certified ring depths");
  ]

let explain code =
  match
    List.find_opt (fun (c, _, _) -> String.equal c code) catalogue
  with
  | None -> None
  | Some (c, sev, desc) ->
      let hint =
        match List.assoc_opt c fix_hints with Some h -> h | None -> ""
      in
      Some (sev, desc, hint)

(* --------------------------------------------- rank-qualifier collapsing *)

let is_digit c = c >= '0' && c <= '9'

(* Replace every rank qualifier ["@1_0"] with ["@*"]; also return the
   distinct qualifiers found, so callers can count ranks. *)
let scan_ranks s =
  let n = String.length s in
  let buf = Buffer.create n in
  let found = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '@' && !i + 1 < n && is_digit s.[!i + 1] then begin
      let j = ref (!i + 1) in
      let continue = ref true in
      while !continue do
        while !j < n && is_digit s.[!j] do incr j done;
        if !j + 1 < n && s.[!j] = '_' && is_digit s.[!j + 1] then incr j
        else continue := false
      done;
      found := String.sub s (!i + 1) (!j - !i - 1) :: !found;
      Buffer.add_string buf "@*";
      i := !j
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  (Buffer.contents buf, List.rev !found)

let strip_ranks s = fst (scan_ranks s)

let strip_part = function
  | Srcloc.Read g -> Srcloc.Read (strip_ranks g)
  | Srcloc.Param p -> Srcloc.Param (strip_ranks p)
  | p -> p

let strip_loc (loc : Srcloc.t) =
  {
    loc with
    Srcloc.stencil = Option.map strip_ranks loc.Srcloc.stencil;
    part = strip_part loc.Srcloc.part;
  }

let ranks_of d =
  let of_str s = snd (scan_ranks s) in
  List.concat
    [
      (match d.loc.Srcloc.stencil with Some s -> of_str s | None -> []);
      of_str (Srcloc.part_to_string d.loc.Srcloc.part);
      of_str d.message;
    ]
  |> List.sort_uniq compare

let collapse_ranks ds =
  let key d =
    let loc = strip_loc d.loc in
    ( d.code,
      loc.Srcloc.group,
      loc.Srcloc.stencil,
      Srcloc.part_to_string loc.Srcloc.part,
      strip_ranks d.message,
      Option.map strip_ranks d.hint )
  in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      let k = key d in
      match Hashtbl.find_opt tbl k with
      | Some (first, ranks, n) ->
          Hashtbl.replace tbl k (first, ranks_of d @ ranks, n + 1)
      | None ->
          order := k :: !order;
          Hashtbl.add tbl k (d, ranks_of d, 1))
    ds;
  List.rev !order
  |> List.map (fun k ->
         let first, ranks, n = Hashtbl.find tbl k in
         if n <= 1 then first
         else
           let nranks =
             let distinct = List.sort_uniq compare ranks in
             if distinct = [] then n else List.length distinct
           in
           {
             first with
             loc = strip_loc first.loc;
             message =
               Printf.sprintf "%s [x%d ranks]" (strip_ranks first.message)
                 nranks;
             hint = Option.map strip_ranks first.hint;
           })

let pp ppf d =
  Format.fprintf ppf "%s[%s] %a: %s"
    (severity_to_string d.severity)
    d.code Srcloc.pp d.loc d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf "@\n  hint: %s" h
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

let render ds =
  match ds with
  | [] -> ""
  | _ ->
      let body = String.concat "\n" (List.map to_string ds) in
      Printf.sprintf "%s\n%d error(s), %d warning(s), %d note(s)\n" body
        (count Error ds) (count Warning ds) (count Note ds)

(* ------------------------------------------------------------------ JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)
let json_opt = function None -> "null" | Some s -> json_string s

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"group\":%s,\"stencil\":%s,\"part\":%s,\
     \"message\":%s,\"hint\":%s}"
    (json_string d.code)
    (json_string (severity_to_string d.severity))
    (json_opt d.loc.Srcloc.group)
    (json_opt d.loc.Srcloc.stencil)
    (json_string (Srcloc.part_to_string d.loc.Srcloc.part))
    (json_string d.message) (json_opt d.hint)

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))
