open Snowflake

type severity = Error | Warning | Note

type t = {
  code : string;
  severity : severity;
  loc : Srcloc.t;
  message : string;
  hint : string option;
}

let make ~code ~severity ~loc ?hint message =
  { code; severity; loc; message; hint }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = Srcloc.compare a.loc b.loc in
      if c <> 0 then c else String.compare a.code b.code)
    ds

let catalogue =
  [
    ("SF001", Error, "access escapes its grid (out of bounds)");
    ("SF002", Warning, "domain union writes a cell more than once");
    ("SF003", Note, "loop-carried dependence; stencil runs sequentially");
    ("SF004", Error, "parameter read but not bound");
    ("SF011", Warning, "grid read before any write or declared input");
    ("SF012", Warning, "entire write lattice overwritten before any read");
    ("SF021", Error, "intra-wave race in a backend plan");
    ("SF022", Warning, "stencil forced parallel against the analysis");
    ("SF023", Error, "illegal fusion: concurrent fused tasks conflict");
    ("SF024", Error, "time-tile skew below the dependence slope");
    ("SF025", Error, "group cannot be time-tiled");
  ]

let pp ppf d =
  Format.fprintf ppf "%s[%s] %a: %s"
    (severity_to_string d.severity)
    d.code Srcloc.pp d.loc d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf "@\n  hint: %s" h
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

let render ds =
  match ds with
  | [] -> ""
  | _ ->
      let body = String.concat "\n" (List.map to_string ds) in
      Printf.sprintf "%s\n%d error(s), %d warning(s), %d note(s)\n" body
        (count Error ds) (count Warning ds) (count Note ds)

(* ------------------------------------------------------------------ JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)
let json_opt = function None -> "null" | Some s -> json_string s

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"group\":%s,\"stencil\":%s,\"part\":%s,\
     \"message\":%s,\"hint\":%s}"
    (json_string d.code)
    (json_string (severity_to_string d.severity))
    (json_opt d.loc.Srcloc.group)
    (json_opt d.loc.Srcloc.stencil)
    (json_string (Srcloc.part_to_string d.loc.Srcloc.part))
    (json_string d.message) (json_opt d.hint)

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))
