open Sf_util
open Snowflake

module StringSet = Set.Make (String)

let enumeration_cap = 1 lsl 22

(* Cell sets are hashtables keyed by the cell vector; Domain.iter reuses
   its vector, so keys are copied on insertion. *)
type cellset = (int array, unit) Hashtbl.t

let add_lattices (set : cellset) lats =
  List.iter
    (fun lat -> Domain.iter lat (fun c -> Hashtbl.replace set (Array.copy c) ()))
    lats

let loc group index (s : Stencil.t) part =
  Srcloc.stencil ~group:group.Group.label ~index ~part s.Stencil.label

(* ------------------------------------------------------- SF001: bounds *)

let widen_hint grid (e : Footprint.escape) =
  let dims = Ivec.dims e.Footprint.widen_lo in
  let parts = ref [] in
  for i = dims - 1 downto 0 do
    if e.Footprint.widen_hi.(i) > 0 then
      parts :=
        Printf.sprintf "%d cell(s) on the high side of axis %d"
          e.Footprint.widen_hi.(i) i
        :: !parts;
    if e.Footprint.widen_lo.(i) > 0 then
      parts :=
        Printf.sprintf "%d cell(s) on the low side of axis %d"
          e.Footprint.widen_lo.(i) i
        :: !parts
  done;
  Printf.sprintf
    "widen the halo of grid '%s' by %s, or shrink the stencil's domain"
    grid
    (String.concat ", " !parts)

let out_of_bounds ~shape ~grid_shape group =
  List.concat
    (List.mapi
       (fun index s ->
         List.map
           (fun (e : Footprint.escape) ->
             let what, part =
               match e.Footprint.access with
               | `Read -> ("read", Srcloc.Read e.Footprint.grid)
               | `Write -> ("write", Srcloc.Output)
             in
             Diagnostics.make ~code:"SF001" ~severity:Diagnostics.Error
               ~loc:(loc group index s part)
               ~hint:(widen_hint e.Footprint.grid e)
               (Printf.sprintf
                  "%s of %s via map %s reaches cell %s outside the grid's \
                   shape %s"
                  what e.Footprint.grid
                  (Format.asprintf "%a" Affine.pp e.Footprint.map)
                  (Ivec.to_string e.Footprint.cell)
                  (Ivec.to_string (grid_shape e.Footprint.grid))))
           (Footprint.escapes ~shape ~grid_shape s))
       (Group.stencils group))

(* --------------------------------------------- SF011: uninitialized read *)

(* A grid is assumed external when the first stencil touching it reads it
   (an in-place first toucher reads old values, so it counts as a read). *)
let inferred_inputs stencils =
  let first = Hashtbl.create 8 in
  Array.iter
    (fun (s : Stencil.t) ->
      List.iter
        (fun g -> if not (Hashtbl.mem first g) then Hashtbl.add first g `Read)
        (Stencil.grids_read s);
      if not (Hashtbl.mem first s.Stencil.output) then
        Hashtbl.add first s.Stencil.output `Write)
    stencils;
  Hashtbl.fold
    (fun g touch acc -> if touch = `Read then StringSet.add g acc else acc)
    first StringSet.empty

let uninitialized_reads ~shape ?inputs group =
  let stencils = Array.of_list (Group.stencils group) in
  let declared = inputs <> None in
  let assumed =
    match inputs with
    | Some l -> StringSet.of_list l
    | None -> inferred_inputs stencils
  in
  let severity = if declared then Diagnostics.Error else Diagnostics.Warning in
  let hint g =
    if declared then
      Printf.sprintf
        "write '%s' earlier in the group or declare it as an input" g
    else
      Printf.sprintf
        "if '%s' is an external input this is a false alarm; declare the \
         program's inputs to make the check exact" g
  in
  let written_cells : (string, cellset) Hashtbl.t = Hashtbl.create 8 in
  let written_lats : (string, Domain.resolved list) Hashtbl.t =
    Hashtbl.create 8
  in
  let exact : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let is_exact g = Option.value ~default:true (Hashtbl.find_opt exact g) in
  let lats_of g =
    Option.value ~default:[] (Hashtbl.find_opt written_lats g)
  in
  let cells_of g =
    match Hashtbl.find_opt written_cells g with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 64 in
        Hashtbl.add written_cells g t;
        t
  in
  let diags = ref [] in
  Array.iteri
    (fun index (s : Stencil.t) ->
      (* reads observe the state before this stencil's own writes *)
      List.iter
        (fun (g, lats) ->
          if not (StringSet.mem g assumed) then begin
            let read_points =
              List.fold_left (fun a l -> a + Domain.npoints l) 0 lats
            in
            let finding =
              if is_exact g && read_points <= enumeration_cap then begin
                (* cell-exact: witness = first unwritten cell read *)
                let cells = cells_of g in
                let missing = Hashtbl.create 16 in
                let witness = ref None in
                List.iter
                  (fun lat ->
                    Domain.iter lat (fun c ->
                        if not (Hashtbl.mem cells c) then begin
                          let c = Array.copy c in
                          Hashtbl.replace missing c ();
                          if !witness = None then witness := Some c
                        end))
                  lats;
                Option.map
                  (fun w -> (w, Hashtbl.length missing))
                  !witness
              end
              else if not (Footprint.lattice_lists_intersect lats (lats_of g))
              then
                (* beyond the cap: only the definitely-disjoint case *)
                match List.find_opt (fun l -> not (Domain.is_empty l)) lats with
                | Some l -> Some (Array.copy l.Domain.rlo, read_points)
                | None -> None
              else None
            in
            match finding with
            | None -> ()
            | Some (cell, n_cells) ->
                diags :=
                  Diagnostics.make ~code:"SF011" ~severity
                    ~loc:(loc group index s (Srcloc.Read g))
                    ~hint:(hint g)
                    (Printf.sprintf
                       "reads %d cell(s) of '%s' (first witness %s) that no \
                        earlier stencil writes and that are not declared as \
                        input"
                       n_cells g (Ivec.to_string cell))
                  :: !diags
          end)
        (Footprint.read_footprint ~shape s);
      (* then record this stencil's writes *)
      let g, wlats = Footprint.write_footprint ~shape s in
      Hashtbl.replace written_lats g (wlats @ lats_of g);
      if is_exact g then begin
        let pts = Domain.npoints_union wlats in
        if pts + Hashtbl.length (cells_of g) <= enumeration_cap then
          add_lattices (cells_of g) wlats
        else Hashtbl.replace exact g false
      end)
    stencils;
  List.rev !diags

(* ----------------------------------------------------- SF012: dead store *)

let dead_stores ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let n = Array.length stencils in
  let reads = Array.map (Footprint.read_footprint ~shape) stencils in
  let writes = Array.map (Footprint.write_footprint ~shape) stencils in
  let diags = ref [] in
  for i = 0 to n - 2 do
    let g, wlats = writes.(i) in
    let pts = Domain.npoints_union wlats in
    if pts > 0 && pts <= enumeration_cap then begin
      let live : cellset = Hashtbl.create pts in
      add_lattices live wlats;
      let observed = ref false and killer = ref None in
      let j = ref (i + 1) in
      while (not !observed) && !killer = None && !j < n do
        (* a stencil's reads see the state before its own writes *)
        (match List.assoc_opt g reads.(!j) with
        | Some rlats ->
            if
              Hashtbl.fold
                (fun c () acc ->
                  acc || List.exists (fun l -> Domain.mem l c) rlats)
                live false
            then observed := true
        | None -> ());
        if (not !observed) && String.equal (fst writes.(!j)) g then begin
          let wl = snd writes.(!j) in
          let remaining = Hashtbl.fold (fun c () acc -> c :: acc) live [] in
          List.iter
            (fun c ->
              if List.exists (fun l -> Domain.mem l c) wl then
                Hashtbl.remove live c)
            remaining;
          if Hashtbl.length live = 0 then killer := Some !j
        end;
        incr j
      done;
      match !killer with
      | Some k ->
          let s = stencils.(i) in
          diags :=
            Diagnostics.make ~code:"SF012" ~severity:Diagnostics.Warning
              ~loc:(loc group i s Srcloc.Output)
              ~hint:"delete the stencil (or reorder it after its overwriter \
                     if the value is meant to survive)"
              (Printf.sprintf
                 "every cell this stencil writes to '%s' is overwritten by \
                  stencil %d (%s) before any read observes it"
                 g k stencils.(k).Stencil.label)
            :: !diags
      | None -> ()
    end
  done;
  List.rev !diags

(* ----------------------------------------------------------- the driver *)

let program ~shape ~grid_shape ?params ?inputs group =
  let validate =
    List.filter
      (fun (d : Diagnostics.t) -> d.Diagnostics.code <> "SF001")
      (Validate.group_diagnostics ~shape ~grid_shape ?params group)
  in
  Diagnostics.sort
    (out_of_bounds ~shape ~grid_shape group
    @ validate
    @ uninitialized_reads ~shape ?inputs group
    @ dead_stores ~shape group)
