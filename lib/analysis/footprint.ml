open Sf_util
open Snowflake

let affine_image (m : Affine.t) (r : Domain.resolved) =
  let n = Ivec.dims r.Domain.rlo in
  if Affine.dims m <> n then
    invalid_arg "Footprint.affine_image: rank mismatch";
  let cnt = Domain.counts r in
  let rlo = Array.make n 0 and rhi = Array.make n 0 and rstride = Array.make n 1 in
  for i = 0 to n - 1 do
    let s = m.Affine.scale.(i) and o = m.Affine.offset.(i) in
    if s = 0 then begin
      rlo.(i) <- o;
      rstride.(i) <- 1;
      rhi.(i) <- (if cnt.(i) > 0 then o + 1 else o)
    end
    else begin
      rlo.(i) <- (s * r.Domain.rlo.(i)) + o;
      rstride.(i) <- s * r.Domain.rstride.(i);
      rhi.(i) <-
        (if cnt.(i) > 0 then rlo.(i) + ((cnt.(i) - 1) * rstride.(i)) + 1
         else rlo.(i))
    end
  done;
  Domain.{ rlo; rhi; rstride }

let axis_progression (r : Domain.resolved) i =
  let extent = r.Domain.rhi.(i) - r.Domain.rlo.(i) in
  let count =
    if extent <= 0 then 0
    else (extent + r.Domain.rstride.(i) - 1) / r.Domain.rstride.(i)
  in
  Dioph.progression ~start:r.Domain.rlo.(i) ~step:r.Domain.rstride.(i) ~count

let rects_intersect a b =
  let n = Ivec.dims a.Domain.rlo in
  if Ivec.dims b.Domain.rlo <> n then
    invalid_arg "Footprint.rects_intersect: rank mismatch";
  let rec go i =
    i >= n
    || (not (Dioph.disjoint (axis_progression a i) (axis_progression b i)))
       && go (i + 1)
  in
  go 0

let rects_intersection_count a b =
  let n = Ivec.dims a.Domain.rlo in
  if Ivec.dims b.Domain.rlo <> n then
    invalid_arg "Footprint.rects_intersection_count: rank mismatch";
  let rec go i acc =
    if i >= n then acc
    else
      match Dioph.intersect (axis_progression a i) (axis_progression b i) with
      | None -> 0
      | Some p -> go (i + 1) (acc * p.Dioph.count)
  in
  go 0 1

let lattice_lists_intersect xs ys =
  List.exists (fun x -> List.exists (fun y -> rects_intersect x y) ys) xs

let write_footprint ~shape (s : Stencil.t) =
  let base = Domain.resolve ~shape s.Stencil.domain in
  (s.Stencil.output, List.map (affine_image s.Stencil.out_map) base)

module StringMap = Map.Make (String)

let read_footprint ~shape (s : Stencil.t) =
  let base = Domain.resolve ~shape s.Stencil.domain in
  let add acc (grid, m) =
    let imaged = List.map (affine_image m) base in
    StringMap.update grid
      (function None -> Some imaged | Some ls -> Some (imaged @ ls))
      acc
  in
  List.fold_left add StringMap.empty (Stencil.reads s) |> StringMap.bindings

type escape = {
  access : [ `Read | `Write ];
  grid : string;
  map : Affine.t;
  cell : Ivec.t;
  widen_lo : Ivec.t;
  widen_hi : Ivec.t;
}

(* Per axis of one image rect: inclusive bounds of the lattice. *)
let axis_bounds (r : Domain.resolved) i =
  let cnt = (Domain.counts r).(i) in
  let lo = r.Domain.rlo.(i) in
  (lo, lo + ((cnt - 1) * r.Domain.rstride.(i)))

let escapes ~shape ~grid_shape (s : Stencil.t) =
  let base = Domain.resolve ~shape s.Stencil.domain in
  let n = Ivec.dims shape in
  let check_access access grid m =
    let extent = grid_shape grid in
    let widen_lo = Array.make n 0 and widen_hi = Array.make n 0 in
    let cell = ref None in
    List.iter
      (fun r ->
        let img = affine_image m r in
        if not (Domain.is_empty img) then begin
          let out_here = ref false in
          let witness = Array.copy img.Domain.rlo in
          for i = 0 to n - 1 do
            let lo, hi_incl = axis_bounds img i in
            if lo < 0 then begin
              out_here := true;
              widen_lo.(i) <- max widen_lo.(i) (-lo);
              witness.(i) <- lo
            end;
            if hi_incl >= extent.(i) then begin
              out_here := true;
              widen_hi.(i) <- max widen_hi.(i) (hi_incl - extent.(i) + 1);
              (* prefer the low-side witness when both sides escape *)
              if lo >= 0 then witness.(i) <- hi_incl
            end
          done;
          if !out_here && !cell = None then cell := Some witness
        end)
      base;
    match !cell with
    | None -> None
    | Some cell -> Some { access; grid; map = m; cell; widen_lo; widen_hi }
  in
  let reads =
    List.filter_map
      (fun (grid, m) -> check_access `Read grid m)
      (Stencil.reads s)
  in
  let write = check_access `Write s.Stencil.output s.Stencil.out_map in
  reads @ Option.to_list write

let check_in_bounds ~shape ~grid_shape (s : Stencil.t) =
  match escapes ~shape ~grid_shape s with
  | [] -> Ok ()
  | e :: _ ->
      Error
        (Printf.sprintf
           "stencil %s: %s of %s via map %s escapes shape %s at cell %s"
           s.Stencil.label
           (match e.access with `Read -> "read" | `Write -> "write")
           e.grid
           (Format.asprintf "%a" Affine.pp e.map)
           (Ivec.to_string (grid_shape e.grid))
           (Ivec.to_string e.cell))

let union_self_disjoint ~shape (s : Stencil.t) =
  let _, rects = write_footprint ~shape s in
  let rec pairwise = function
    | [] -> true
    | r :: rest ->
        List.for_all (fun r' -> not (rects_intersect r r')) rest
        && pairwise rest
  in
  pairwise rects
