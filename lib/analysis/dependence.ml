open Snowflake

type kind = Raw | War | Waw

let kind_to_string = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"
let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let self_conflicts ~shape (s : Stencil.t) =
  let base = Domain.resolve ~shape s.Stencil.domain in
  let writes = List.map (Footprint.affine_image s.Stencil.out_map) base in
  (* A read through the very map that produces the write index touches only
     the cell being written; under gather semantics (all reads happen before
     the point's write) that is not a loop-carried dependence. *)
  Stencil.reads s
  |> List.filter_map (fun (grid, m) ->
         if
           String.equal grid s.Stencil.output
           && (not (Affine.equal m s.Stencil.out_map))
           && Footprint.lattice_lists_intersect
                (List.map (Footprint.affine_image m) base)
                writes
         then Some m.Affine.offset
         else None)

let point_parallel ~shape s =
  self_conflicts ~shape s = [] && Footprint.union_self_disjoint ~shape s

let conflicts ~shape ~before ~after =
  let w1 = snd (Footprint.write_footprint ~shape before) in
  let w2 = snd (Footprint.write_footprint ~shape after) in
  let reads_of footprint grid =
    match List.assoc_opt grid footprint with Some ls -> ls | None -> []
  in
  let r1 = Footprint.read_footprint ~shape before in
  let r2 = Footprint.read_footprint ~shape after in
  let out1 = before.Stencil.output and out2 = after.Stencil.output in
  let raw = Footprint.lattice_lists_intersect w1 (reads_of r2 out1) in
  let war = Footprint.lattice_lists_intersect (reads_of r1 out2) w2 in
  let waw =
    String.equal out1 out2 && Footprint.lattice_lists_intersect w1 w2
  in
  List.concat
    [
      (if raw then [ Raw ] else []);
      (if war then [ War ] else []);
      (if waw then [ Waw ] else []);
    ]

let write_slope ~axis (s : Stencil.t) =
  (s.Stencil.out_map.Affine.scale.(axis), s.Stencil.out_map.Affine.offset.(axis))

let read_slopes ~shape ~axis ~before ~after =
  let wlats = snd (Footprint.write_footprint ~shape before) in
  let base = Domain.resolve ~shape after.Stencil.domain in
  Stencil.reads after
  |> List.filter_map (fun (grid, m) ->
         if
           String.equal grid before.Stencil.output
           && Footprint.lattice_lists_intersect
                (List.map (Footprint.affine_image m) base)
                wlats
         then Some (m.Affine.scale.(axis), m.Affine.offset.(axis))
         else None)
  |> List.sort_uniq compare

let depends ~shape ~before ~after = conflicts ~shape ~before ~after <> []

let independent ~shape a b =
  (not (depends ~shape ~before:a ~after:b))
  && not (depends ~shape ~before:b ~after:a)
