(** Read/write footprints of stencils as finite strided lattices.

    A footprint is a set of concrete-bound lattices per grid: the write
    footprint of a stencil is the image of its iteration domain under its
    output map; each read contributes the image of the domain under the
    read's affine map.  Affine images of strided rectangles are again
    strided rectangles, so intersection queries are decided exactly, axis by
    axis, with {!Dioph.intersect} — the paper's reduction of dependence
    testing to linear Diophantine systems over finite domains. *)

open Sf_util
open Snowflake

val affine_image : Affine.t -> Domain.resolved -> Domain.resolved
(** Map a lattice through an affine map.  The result may have bounds outside
    any grid (fine for intersection queries; {!check_in_bounds} diagnoses
    escaping accesses).  A zero scale entry collapses that axis to the
    single coordinate [offset]. *)

val axis_progression : Domain.resolved -> int -> Dioph.progression
(** The arithmetic progression of coordinates along one axis. *)

val rects_intersect : Domain.resolved -> Domain.resolved -> bool
(** Exact: the lattices share at least one point.  Raises
    [Invalid_argument] on rank mismatch. *)

val rects_intersection_count : Domain.resolved -> Domain.resolved -> int
(** Number of shared points (product of per-axis intersection counts). *)

val lattice_lists_intersect :
  Domain.resolved list -> Domain.resolved list -> bool

val write_footprint :
  shape:Ivec.t -> Stencil.t -> string * Domain.resolved list
(** [(output_grid, lattices)] — the domain union resolved against the
    iteration shape and mapped through the stencil's output map. *)

val read_footprint :
  shape:Ivec.t -> Stencil.t -> (string * Domain.resolved list) list
(** Per read grid, the union over reads of affine-imaged domains.  Grids
    sorted; one entry per grid. *)

type escape = {
  access : [ `Read | `Write ];
  grid : string;
  map : Affine.t;
  cell : Ivec.t;
      (** a concrete lattice point of the access that falls outside the
          grid — the witness a user can paste into a debugger *)
  widen_lo : Ivec.t;
      (** per axis, how many cells below index 0 the access reaches *)
  widen_hi : Ivec.t;
      (** per axis, how many cells at or beyond the extent it reaches;
          growing the grid by [widen_lo]/[widen_hi] ghost cells (and
          shifting accordingly) would make the access legal *)
}

val escapes :
  shape:Ivec.t -> grid_shape:(string -> Ivec.t) -> Stencil.t -> escape list
(** Every out-of-bounds access of the stencil, one record per (access,
    grid, map), reads first then the write; empty when all accesses fit.
    The widening amounts aggregate over the whole domain union, the
    witness cell comes from the first offending rect. *)

val check_in_bounds :
  shape:Ivec.t -> grid_shape:(string -> Ivec.t) -> Stencil.t ->
  (unit, string) result
(** Every read and write the stencil performs stays inside
    [[0, grid_shape g)) for the grid it touches; the error string names the
    offending access and its witness cell (first entry of {!escapes}). *)

val union_self_disjoint : shape:Ivec.t -> Stencil.t -> bool
(** The write lattices arising from the stencil's domain union are pairwise
    disjoint — required for its points to be writable in parallel and for
    point counts to be exact. *)
