(* The fuzz harness tested against itself: generator determinism and
   validity, the differential loop on clean backends, fault injection
   (the harness must catch a deliberately buggy backend and shrink the
   witness), corpus round-tripping, and the metamorphic oracles. *)

open Sf_fuzz

let check = Alcotest.(check bool)

(* ------------------------------------------------------------ generator *)

let test_gen_deterministic () =
  for seed = 0 to 19 do
    let a = Gen.spec ~seed () and b = Gen.spec ~seed () in
    Alcotest.(check string)
      (Printf.sprintf "seed %d reproduces" seed)
      (Gen.describe a) (Gen.describe b)
  done

let test_gen_valid () =
  for seed = 0 to 49 do
    let spec = Gen.spec ~seed () in
    match Gen.validate spec with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d generated an invalid spec: %s" seed e
  done

let test_gen_seeds_differ () =
  let a = Gen.spec ~seed:1 () and b = Gen.spec ~seed:2 () in
  check "different seeds differ" true (Gen.describe a <> Gen.describe b)

let test_gen_max_dims () =
  for seed = 0 to 29 do
    let spec = Gen.spec ~max_dims:1 ~seed () in
    Alcotest.(check int)
      (Printf.sprintf "seed %d is 1-d" seed)
      1
      (Sf_util.Ivec.dims spec.Gen.shape)
  done

(* ----------------------------------------------------------- diff loop *)

let test_diff_clean () =
  for seed = 100 to 114 do
    let spec = Gen.spec ~seed () in
    let targets = Diff.targets_for ~only:None ~dims:(Sf_util.Ivec.dims spec.Gen.shape) in
    match Diff.check ~targets spec with
    | Ok () -> ()
    | Error d ->
        Alcotest.failf "backends diverge on clean seed %d: %s\n%s" seed
          (Diff.divergence_to_string d)
          (Gen.describe spec)
  done

let find_injected_failure bug =
  let rec go seed =
    if seed > 120 then Alcotest.fail "injected bug never triggered"
    else
      let spec = Gen.spec ~seed () in
      let targets =
        Diff.targets_for ~only:None ~dims:(Sf_util.Ivec.dims spec.Gen.shape)
        @ [ Diff.injected_target bug ]
      in
      match Diff.check ~targets spec with
      | Error d -> (spec, targets, d)
      | Ok () -> go (seed + 1)
  in
  go 42

let test_injected_bug_caught () =
  let _, _, d = find_injected_failure Diff.Drop_last_stencil in
  check "divergence blames the buggy backend" true (d.Diff.target = "sffuzz-buggy")

let test_injected_bug_shrinks () =
  let spec, targets, _ = find_injected_failure Diff.Drop_last_stencil in
  let fails s = Result.is_error (Diff.check ~targets s) in
  let small = Shrink.shrink ~fails spec in
  check "shrunk spec still fails" true (fails small);
  let n0 = Snowflake.Group.length spec.Gen.group in
  let n1 = Snowflake.Group.length small.Gen.group in
  check "shrinking never grows the program" true (n1 <= n0);
  (* drop-last only fires on >1 stencil, so the minimum is exactly two *)
  Alcotest.(check int) "minimal witness has two stencils" 2 n1

let test_perturb_bug_caught () =
  let _, _, d = find_injected_failure Diff.Perturb_first_cell in
  check "perturbation caught" true (d.Diff.target = "sffuzz-buggy");
  (* 1e-3 on one cell: a whole-value bug, far beyond ULP noise *)
  check "witness magnitude is the injected 1e-3" true
    (Float.abs (d.Diff.expected -. d.Diff.got) >= 1e-4)

let test_mis_skew_bug_caught () =
  (* the two-application mis-skewed temporal block must be caught by the
     multi-application oracle (two interp applications as reference) *)
  let _, _, d = find_injected_failure Diff.Mis_skew_tile in
  check "mis-skew caught" true (d.Diff.target = "sffuzz-buggy")

let test_driver_reports_failures () =
  let opts =
    {
      Driver.default_options with
      Driver.seed = 42;
      count = 10;
      oracles = false;
      inject = Some Diff.Drop_last_stencil;
    }
  in
  let report = Driver.run opts in
  check "campaign flags at least one failure" true (report.Driver.failures <> []);
  Alcotest.(check int) "exit code 1" 1 (Driver.report_exit_code report);
  let clean = Driver.run { opts with Driver.inject = None } in
  Alcotest.(check int) "clean campaign exits 0" 0
    (Driver.report_exit_code clean)

(* -------------------------------------------------------------- corpus *)

let test_corpus_roundtrip () =
  for seed = 200 to 214 do
    let spec = Gen.spec ~seed () in
    let text = Corpus.to_string ~note:"roundtrip" spec in
    match Corpus.of_string ~label:spec.Gen.label text with
    | Error e -> Alcotest.failf "corpus parse failed for seed %d: %s" seed e
    | Ok back ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d round-trips" seed)
          (Gen.describe spec) (Gen.describe back)
  done

let test_corpus_save_load () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sffuzz-test-corpus" in
  let spec = Gen.spec ~seed:77 () in
  let path = Corpus.save ~dir ~note:"save/load" spec in
  check "written file is listed" true (List.mem path (Corpus.files dir));
  (match Corpus.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok back ->
      Alcotest.(check string) "load inverts save" (Gen.describe spec)
        (Gen.describe back));
  (match Corpus.replay path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replay of a clean spec failed: %s" e);
  Sys.remove path

(* ------------------------------------------------------------- oracles *)

let test_oracles_clean () =
  for seed = 300 to 314 do
    let spec = Gen.spec ~seed () in
    match Oracle.all spec with
    | [] -> ()
    | msgs ->
        Alcotest.failf "oracle failure on seed %d: %s\n%s" seed
          (String.concat "\n" msgs) (Gen.describe spec)
  done

let test_certify_gate_never_fires () =
  (* satellite: under the SF_VALIDATE-style gate, generated (race-free)
     programs must always pass plan certification on both pool backends *)
  for seed = 400 to 419 do
    let spec = Gen.spec ~seed () in
    match Oracle.certify_clean spec with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s\n%s" seed e (Gen.describe spec)
  done

let test_pipeline_agreement () =
  match Oracle.pipeline_agreement ~workers:4 () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_pipeline_undersize_detected () =
  match Oracle.pipeline_undersize_detected () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "valid" `Quick test_gen_valid;
          Alcotest.test_case "seeds differ" `Quick test_gen_seeds_differ;
          Alcotest.test_case "max-dims respected" `Quick test_gen_max_dims;
        ] );
      ( "diff",
        [
          Alcotest.test_case "clean backends agree" `Quick test_diff_clean;
          Alcotest.test_case "injected drop caught" `Quick
            test_injected_bug_caught;
          Alcotest.test_case "injected drop shrinks" `Quick
            test_injected_bug_shrinks;
          Alcotest.test_case "injected perturb caught" `Quick
            test_perturb_bug_caught;
          Alcotest.test_case "injected mis-skew caught" `Quick
            test_mis_skew_bug_caught;
          Alcotest.test_case "driver reports failures" `Quick
            test_driver_reports_failures;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "save/load/replay" `Quick test_corpus_save_load;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "all clean" `Quick test_oracles_clean;
          Alcotest.test_case "certify gate never fires" `Quick
            test_certify_gate_never_fires;
          Alcotest.test_case "pipeline matches bulk-sync" `Quick
            test_pipeline_agreement;
          Alcotest.test_case "undersize channel refused" `Quick
            test_pipeline_undersize_detected;
        ] );
    ]
