(* @serve: end-to-end check against a live sfserved daemon.

   Spawns the real binary on a temp Unix socket, then:
     1. two tenants concurrently replay every corpus/*.sfl program and
        check each RESULT against the interpreter oracle (Fcmp
        tolerance) AND bitwise against a local same-backend run;
     2. one tenant submits a kernel:raise fault while the other keeps
        solving — the faulted request must come back ERROR "fault", the
        clean tenant must be untouched, and the server must survive;
     3. STATS must show a nonzero JIT cache hit rate (the two tenants
        submit identical programs) and parse as JSON;
     4. SHUTDOWN must answer BYE, the daemon must exit 0, and its
        --stats-json dump must parse.

   A 60s hard watchdog keeps a wedged server from wedging runtest.

   Usage: serve_check.exe SFSERVED_EXE CORPUS_DIR *)

module P = Sf_serve.Protocol
module Client = Sf_serve.Client
module Gen = Sf_fuzz.Gen
module Corpus = Sf_fuzz.Corpus
module Diff = Sf_fuzz.Diff
module Jit = Sf_backends.Jit
module Config = Sf_backends.Config
module Json = Sf_trace.Json
open Sf_util

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_check: FAIL: " ^ m);
      exit 1)
    fmt

let () =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 60.;
         prerr_endline "serve_check: 60s watchdog expired";
         exit 2)
       ())

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let workers = 2

(* Oracle 1: the interpreter, up to cross-backend tolerance. *)
let check_oracle ~file spec (grids : P.grid list) =
  let reference = Diff.run_reference spec in
  List.iter
    (fun (g : P.grid) ->
      let m = Sf_mesh.Grids.find reference g.P.gname in
      let fa = Sf_mesh.Mesh.data m in
      if Float.Array.length fa <> Array.length g.P.gdata then
        die "%s: grid %s: size mismatch vs oracle" file g.P.gname;
      Array.iteri
        (fun i v ->
          let e = Float.Array.get fa i in
          if not (Fcmp.close ~ulps:512 ~atol:1e-11 e v) then
            die "%s: grid %s diverges from interp oracle at %d: %h vs %h"
              file g.P.gname i e v)
        g.P.gdata)
    grids

(* Oracle 2: a local run of the same backend/config, bitwise. *)
let check_bitwise ~file spec (grids : P.grid list) =
  let config = { Config.default with Config.workers } in
  let kernel =
    Jit.compile ~config Jit.Openmp ~shape:spec.Gen.shape spec.Gen.group
  in
  let local = Gen.build_grids spec in
  kernel.Sf_backends.Kernel.run ~params:spec.Gen.params local;
  List.iter
    (fun (g : P.grid) ->
      let m = Sf_mesh.Grids.find local g.P.gname in
      let fa = Sf_mesh.Mesh.data m in
      Array.iteri
        (fun i v ->
          let e = Float.Array.get fa i in
          if not (Fcmp.ulp_equal ~ulps:0 e v) then
            die "%s: grid %s not bitwise identical to local run at %d"
              file g.P.gname i)
        g.P.gdata)
    grids

let replay_tenant ~socket ~tenant cases =
  match Client.connect_unix ~tenant socket with
  | Error m -> die "%s: connect: %s" tenant m
  | Ok c ->
      List.iter
        (fun (file, program, spec) ->
          match
            Client.solve c
              { P.program; backend = "openmp"; workers; reps = 1; fault = "" }
          with
          | Ok (Client.Solved { grids; _ }) ->
              check_oracle ~file spec grids;
              check_bitwise ~file spec grids
          | Ok (Client.Failed { code; message }) ->
              die "%s (%s): %s: %s" file tenant code message
          | Error m -> die "%s (%s): transport: %s" file tenant m)
        cases;
      Client.close c

let () =
  if Array.length Sys.argv < 3 then die "usage: serve_check SFSERVED CORPUS_DIR";
  let sfserved = Sys.argv.(1) in
  let corpus_dir = Sys.argv.(2) in
  let socket = Printf.sprintf "/tmp/sf-serve-%d.sock" (Unix.getpid ()) in
  let stats_path = Filename.temp_file "sfserved" ".stats.json" in
  if Sys.file_exists socket then Sys.remove socket;
  let daemon =
    Unix.create_process sfserved
      [|
        "sfserved"; "--socket"; socket; "--threads"; "2"; "--workers";
        string_of_int workers; "--stats-json"; stats_path;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let kill_daemon () =
    (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] daemon) with Unix.Unix_error _ -> ()
  in
  at_exit (fun () ->
      match Unix.waitpid [ Unix.WNOHANG ] daemon with
      | 0, _ -> kill_daemon ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
  (* wait for the socket to come up *)
  let rec await n =
    if Sys.file_exists socket then ()
    else if n = 0 then die "daemon never bound %s" socket
    else begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 200;

  (* --- 1. concurrent corpus replay from two tenants, both oracles --- *)
  let cases =
    List.map
      (fun file ->
        let text = read_file file in
        match Corpus.of_string ~label:(Filename.basename file) text with
        | Ok spec -> (Filename.basename file, text, spec)
        | Error m -> die "%s: corpus parse: %s" file m)
      (Corpus.files corpus_dir)
  in
  if cases = [] then die "no corpus files under %s" corpus_dir;
  let alice = Thread.create (fun () -> replay_tenant ~socket ~tenant:"alice" cases) () in
  let bob = Thread.create (fun () -> replay_tenant ~socket ~tenant:"bob" cases) () in
  Thread.join alice;
  Thread.join bob;
  Printf.printf "serve_check: %d corpus programs x 2 tenants ok (oracle + bitwise)\n%!"
    (List.length cases);

  (* --- 2. fault isolation: mallory's injected fault, carol unharmed --- *)
  let _, program, _ = List.hd cases in
  let mallory =
    match Client.connect_unix ~tenant:"mallory" socket with
    | Ok c -> c
    | Error m -> die "mallory connect: %s" m
  in
  let carol =
    match Client.connect_unix ~tenant:"carol" socket with
    | Ok c -> c
    | Error m -> die "carol connect: %s" m
  in
  let carol_done = ref 0 in
  let carol_thread =
    Thread.create
      (fun () ->
        for _ = 1 to 5 do
          match
            Client.solve carol
              { P.program; backend = "openmp"; workers; reps = 1; fault = "" }
          with
          | Ok (Client.Solved _) -> incr carol_done
          | Ok (Client.Failed { code; message }) ->
              die "carol collateral damage: %s: %s" code message
          | Error m -> die "carol transport: %s" m
        done)
      ()
  in
  (match
     Client.solve mallory
       {
         P.program;
         backend = "openmp";
         workers;
         reps = 1;
         fault = "kernel:raise@n=1";
       }
   with
  | Ok (Client.Failed { code; _ }) when code = P.err_fault -> ()
  | Ok (Client.Failed { code; message }) ->
      die "fault came back as %s (%s), expected %s" code message P.err_fault
  | Ok (Client.Solved _) -> die "injected fault did not fail the request"
  | Error m -> die "mallory transport: %s" m);
  Thread.join carol_thread;
  if !carol_done <> 5 then die "carol finished %d/5 solves" !carol_done;
  (* and mallory's session still works after its fault *)
  (match
     Client.solve mallory
       { P.program; backend = "openmp"; workers; reps = 1; fault = "" }
   with
  | Ok (Client.Solved _) -> ()
  | _ -> die "server did not survive the injected fault");
  Printf.printf "serve_check: fault isolation ok (ERROR %s to mallory, carol 5/5)\n%!"
    P.err_fault;

  (* --- 3. STATS: parses, and the JIT cache actually got hits --- *)
  let stats =
    match Client.stats carol with Ok s -> s | Error m -> die "stats: %s" m
  in
  let doc =
    match Json.of_string stats with
    | Ok d -> d
    | Error m -> die "STATS did not parse: %s" m
  in
  let jit_hits =
    match Option.bind (Json.member "jit" doc) (Json.member "hits") with
    | Some (Json.Num n) -> int_of_float n
    | _ -> die "STATS has no jit.hits"
  in
  if jit_hits = 0 then die "JIT cache hit rate is zero across tenants";
  (match Json.member "tenants" doc with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> die "STATS has no tenants array");
  Printf.printf "serve_check: STATS ok (jit hits = %d)\n%!" jit_hits;

  (* --- 4. SHUTDOWN: BYE, daemon exit 0, stats dump parses --- *)
  (match Client.shutdown carol with
  | Ok () -> ()
  | Error m -> die "shutdown: %s" m);
  Client.close carol;
  Client.close mallory;
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "daemon exited %d" n
  | _, _ -> die "daemon killed by signal");
  (match Json.of_string (read_file stats_path) with
  | Ok _ -> ()
  | Error m -> die "--stats-json dump did not parse: %s" m);
  Sys.remove stats_path;
  print_endline "serve_check: shutdown ok; all checks passed"
