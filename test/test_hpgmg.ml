open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
open Sf_backends
open Sf_hpgmg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------ operators *)

let test_boundaries_structure () =
  let bcs = Operators.boundaries ~grid:"u" in
  check_int "six faces" 6 (List.length bcs);
  List.iter
    (fun s ->
      check_bool "writes u" true (String.equal s.Stencil.output "u");
      check_bool "in place" true (Stencil.is_in_place s))
    bcs

let test_boundaries_effect () =
  let level = Level.create ~n:4 in
  let u = Level.u level in
  Level.fill_interior u level (fun _ _ _ -> 2.);
  let kernel =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Group.make ~label:"bcs" (Operators.boundaries ~grid:"u"))
  in
  kernel.Kernel.run ~params:(Level.params level) level.Level.grids;
  (* ghost = -interior on all six faces *)
  Alcotest.(check (float 0.)) "x low" (-2.) (Mesh.get u [| 0; 2; 2 |]);
  Alcotest.(check (float 0.)) "x high" (-2.) (Mesh.get u [| 5; 2; 2 |]);
  Alcotest.(check (float 0.)) "y low" (-2.) (Mesh.get u [| 2; 0; 2 |]);
  Alcotest.(check (float 0.)) "z high" (-2.) (Mesh.get u [| 2; 2; 5 |]);
  (* corners of the ghost ring are untouched by face stencils *)
  Alcotest.(check (float 0.)) "corner untouched" 0. (Mesh.get u [| 0; 0; 0 |])

let test_gsrb_smooth_waves () =
  (* boundaries(6) red boundaries(6) black = 14 stencils in 4 waves *)
  let shape = Ivec.of_list [ 10; 10; 10 ] in
  check_int "stencils" 14 (Group.length Operators.gsrb_smooth);
  let waves = Schedule.greedy_waves ~shape Operators.gsrb_smooth in
  check_int "waves" 4 (List.length waves);
  Alcotest.(check (list int)) "first wave = 6 faces" [ 0; 1; 2; 3; 4; 5 ]
    (List.hd waves)

let test_dinv_constant_beta () =
  (* beta = 1: dinv = h^2 / 6 everywhere in the interior *)
  let level = Level.create ~n:8 in
  let kernel =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Group.make ~label:"dinv" [ Operators.dinv_setup ])
  in
  kernel.Kernel.run ~params:(Level.params level) level.Level.grids;
  let h = level.Level.h in
  Alcotest.(check (float 1e-15))
    "dinv value" (h *. h /. 6.)
    (Mesh.get (Level.dinv level) [| 4; 4; 4 |])

let test_cc_laplacian_consistency () =
  (* A_cc applied to the manufactured solution approximates 3π²·u with
     O(h²) accuracy *)
  let errs =
    List.map
      (fun n ->
        let level = Level.create ~n in
        Mesh.fill (Level.u level) 0.;
        Level.fill_interior (Level.u level) level Problem.exact_sine;
        let kernel =
          Jit.compile Jit.Compiled ~shape:level.Level.shape
            (Group.make ~label:"lap"
               (Operators.boundaries ~grid:"u"
               @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ]))
        in
        kernel.Kernel.run ~params:(Level.params level) level.Level.grids;
        let err = ref 0. in
        Level.fill_interior (Grids.find level.Level.grids "tmp") level
          (fun _ _ _ -> 0.);
        (* compare against the analytic rhs at cell centres *)
        let res = Level.res level in
        for i = 1 to n do
          for j = 1 to n do
            for k = 1 to n do
              let p = [| i; j; k |] in
              let x, y, z = Level.cell_center level p in
              err :=
                Float.max !err
                  (Float.abs (Mesh.get res p -. Problem.rhs_sine x y z))
            done
          done
        done;
        !err)
      [ 8; 16 ]
  in
  match errs with
  | [ e8; e16 ] ->
      check_bool
        (Printf.sprintf "O(h^2): ratio %.2f" (e8 /. e16))
        true
        (e8 /. e16 > 3. && e8 /. e16 < 5.)
  | _ -> assert false

let apply_cc_operator level stencil =
  (* fill u (ghosts included) with the exact sine and apply the operator *)
  let u = Level.u level in
  Mesh.fill_with u (fun p ->
      let x, y, z = Level.cell_center level p in
      Problem.exact_sine x y z);
  let kernel =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Group.make ~label:("apply_" ^ stencil.Stencil.label) [ stencil ])
  in
  kernel.Kernel.run ~params:(Level.params level) level.Level.grids;
  let err = ref 0. and interior_margin = 2 in
  let n = level.Level.n in
  for i = 1 + interior_margin to n - interior_margin do
    for j = 1 + interior_margin to n - interior_margin do
      for k = 1 + interior_margin to n - interior_margin do
        let p = [| i; j; k |] in
        let x, y, z = Level.cell_center level p in
        err :=
          Float.max !err
            (Float.abs (Mesh.get (Level.res level) p -. Problem.rhs_sine x y z))
      done
    done
  done;
  !err

let test_laplacian_27pt_consistency () =
  let err n =
    apply_cc_operator (Level.create ~n)
      (Operators.laplacian_27pt ~out:"res" ~input:"u")
  in
  let e8 = err 8 and e16 = err 16 in
  check_bool
    (Printf.sprintf "27pt O(h^2): ratio %.2f" (e8 /. e16))
    true
    (e8 /. e16 > 3. && e8 /. e16 < 5.)

let test_laplacian_4th_order () =
  let err n =
    apply_cc_operator (Level.create ~n)
      (Operators.laplacian_4th ~out:"res" ~input:"u")
  in
  let e8 = err 8 and e16 = err 16 in
  check_bool
    (Printf.sprintf "4th order: ratio %.2f" (e8 /. e16))
    true
    (e8 /. e16 > 10. && e8 /. e16 < 24.)

let test_gsrb4_converges () =
  let level = Level.create ~n:8 in
  Level.set_beta level Problem.beta_smooth;
  let kernel =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Group.make ~label:"dinv" [ Operators.dinv_setup ])
  in
  kernel.Kernel.run ~params:(Level.params level) level.Level.grids;
  Level.fill_interior (Level.f level) level Problem.rhs_sine;
  let residual () =
    let k =
      Jit.compile Jit.Compiled ~shape:level.Level.shape
        (Group.make ~label:"res4"
           (Operators.boundaries ~grid:"u" @ [ Operators.residual_vc ]))
    in
    k.Kernel.run ~params:(Level.params level) level.Level.grids;
    Level.interior_norm_l2 level (Level.res level)
  in
  let smooth =
    Jit.compile Jit.Compiled ~shape:level.Level.shape Operators.gsrb4_smooth
  in
  let r0 = residual () in
  for _ = 1 to 30 do
    smooth.Kernel.run ~params:(Level.params level) level.Level.grids
  done;
  check_bool "4-colour smoothing reduces residual" true (residual () < r0 /. 10.)

let test_gsrb4_colors_parallel () =
  let shape = Ivec.of_list [ 10; 10; 10 ] in
  List.iter
    (fun g ->
      let colors =
        List.filter
          (fun s ->
            String.length s.Stencil.label >= 5
            && String.sub s.Stencil.label 0 5 = "gsrb4")
          (Group.stencils g)
      in
      check_int "four colour sweeps" 4 (List.length colors);
      List.iter
        (fun s ->
          check_bool (s.Stencil.label ^ " parallel") true
            (Dependence.point_parallel ~shape s))
        colors)
    [ Operators.gsrb4_smooth ]

let test_chebyshev_smoother () =
  let level = Level.create ~n:8 in
  Level.fill_interior (Level.f level) level Problem.rhs_sine;
  let params =
    Operators.chebyshev_params ~level_h:level.Level.h ~lambda_lo_frac:0.1
      ~degree:4
  in
  let smooth =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Operators.chebyshev_smooth ~degree:4)
  in
  let residual () =
    let k =
      Jit.compile Jit.Compiled ~shape:level.Level.shape
        (Group.make ~label:"res_cc"
           (Operators.boundaries ~grid:"u" @ [ Operators.residual_cc ]))
    in
    k.Kernel.run ~params:(Level.params level) level.Level.grids;
    Level.interior_norm_l2 level (Level.res level)
  in
  let r0 = residual () in
  for _ = 1 to 8 do
    smooth.Kernel.run ~params level.Level.grids
  done;
  let r1 = residual () in
  check_bool
    (Printf.sprintf "chebyshev reduces residual (%.2e -> %.2e)" r0 r1)
    true (r1 < r0 /. 50.);
  (* odd degree ends with the copy-back and must also converge *)
  let smooth3 =
    Jit.compile Jit.Compiled ~shape:level.Level.shape
      (Operators.chebyshev_smooth ~degree:3)
  in
  let params3 =
    Operators.chebyshev_params ~level_h:level.Level.h ~lambda_lo_frac:0.1
      ~degree:3
  in
  for _ = 1 to 4 do
    smooth3.Kernel.run ~params:params3 level.Level.grids
  done;
  check_bool "odd degree still converges" true (residual () < r1 *. 1.01)

(* --------------------------------------------- baseline vs DSL oracle *)

let prepared_pair n =
  let mk () =
    let level = Level.create ~n in
    Level.set_beta level Problem.beta_smooth;
    Baseline.init_dinv level;
    Level.fill_interior (Level.u level) level (fun x y z ->
        sin (3. *. x) +. cos (2. *. (y +. z)));
    Level.fill_interior (Level.f level) level Problem.rhs_sine;
    level
  in
  (mk (), mk ())

let agree ?(tol = 1e-10) name m1 m2 =
  match Mesh.first_mismatch ~ulps:256 ~atol:tol m1 m2 with
  | None -> ()
  | Some (p, a, b) ->
      Alcotest.failf "%s: baseline and DSL differ at %s: %.17g vs %.17g" name
        (Ivec.to_string p) a b

let run_group level group =
  let kernel = Jit.compile Jit.Compiled ~shape:level.Level.shape group in
  kernel.Kernel.run ~params:(Level.params level) level.Level.grids

let test_baseline_gsrb () =
  let dsl, hand = prepared_pair 8 in
  run_group dsl Operators.gsrb_smooth;
  Baseline.smooth_gsrb hand;
  agree "gsrb u" (Level.u dsl) (Level.u hand)

let test_baseline_residual () =
  let dsl, hand = prepared_pair 8 in
  run_group dsl
    (Group.make ~label:"res"
       (Operators.boundaries ~grid:"u" @ [ Operators.residual_vc ]));
  Baseline.residual_vc hand;
  agree "residual" (Level.res dsl) (Level.res hand)

let test_baseline_jacobi () =
  let dsl, hand = prepared_pair 8 in
  run_group dsl Operators.jacobi_smooth;
  Baseline.jacobi_cc hand;
  agree "jacobi u" (Level.u dsl) (Level.u hand)

let test_baseline_laplacian () =
  let dsl, hand = prepared_pair 8 in
  run_group dsl
    (Group.make ~label:"lap"
       (Operators.boundaries ~grid:"u"
       @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ]));
  Baseline.laplacian_cc hand ~out:(Level.res hand) ~input:(Level.u hand);
  agree "laplacian" (Level.res dsl) (Level.res hand)

let test_baseline_transfer_ops () =
  let fine_dsl, fine_hand = prepared_pair 8 in
  let coarse_dsl = Level.create ~n:4 and coarse_hand = Level.create ~n:4 in
  (* restriction of the residual field *)
  Level.fill_interior (Level.res fine_dsl) fine_dsl (fun x y z ->
      (x *. y) -. z);
  Level.fill_interior (Level.res fine_hand) fine_hand (fun x y z ->
      (x *. y) -. z);
  let kernel =
    Jit.compile Jit.Compiled ~shape:coarse_dsl.Level.shape
      (Group.make ~label:"restrict" [ Operators.restriction ])
  in
  kernel.Kernel.run
    ~params:(Level.params coarse_dsl)
    (Grids.of_list
       [
         ("fine_res", Level.res fine_dsl); ("coarse_f", Level.f coarse_dsl);
       ]);
  Baseline.restrict_pc ~coarse:coarse_hand ~src:(Level.res fine_hand);
  agree "restriction" (Level.f coarse_dsl) (Level.f coarse_hand);
  (* interpolation-and-correct *)
  Level.fill_interior (Level.u coarse_dsl) coarse_dsl (fun x y z ->
      x +. (2. *. y) -. z);
  Level.fill_interior (Level.u coarse_hand) coarse_hand (fun x y z ->
      x +. (2. *. y) -. z);
  let kernel =
    Jit.compile Jit.Compiled ~shape:coarse_dsl.Level.shape
      (Group.make ~label:"interp" Operators.interpolation)
  in
  kernel.Kernel.run
    ~params:(Level.params coarse_dsl)
    (Grids.of_list
       [ ("coarse_u", Level.u coarse_dsl); ("fine_u", Level.u fine_dsl) ]);
  Baseline.interpolate_pc ~coarse:coarse_hand ~fine:fine_hand;
  agree "interpolation" (Level.u fine_dsl) (Level.u fine_hand)

let test_baseline_full_solver () =
  let dsl = Mg.create ~n:8 () in
  let hand = Baseline.create ~n:8 () in
  Mg.set_beta dsl Problem.beta_smooth;
  Baseline.set_beta hand Problem.beta_smooth;
  Problem.setup_variable ~seed:7 (Mg.finest dsl);
  Problem.setup_variable ~seed:7 (Baseline.finest hand);
  Mg.set_beta dsl Problem.beta_smooth;
  Baseline.set_beta hand Problem.beta_smooth;
  for _ = 1 to 3 do
    Mg.vcycle dsl;
    Baseline.vcycle hand
  done;
  agree ~tol:1e-9 "solver u"
    (Level.u (Mg.finest dsl))
    (Level.u (Baseline.finest hand))

(* ------------------------------------------------------------- solver *)

let test_poisson_convergence () =
  let solver = Mg.create ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  let norms = Mg.solve ~cycles:6 solver in
  check_bool "monotone decrease" true
    (Array.for_all2 (fun a b -> b < a) (Array.sub norms 0 6)
       (Array.sub norms 1 6));
  (* asymptotic per-cycle factor typical of GSRB V(2,2) *)
  let factor = norms.(6) /. norms.(5) in
  check_bool (Printf.sprintf "factor %.3f < 0.2" factor) true (factor < 0.2);
  check_bool "overall reduction > 1e6" true (norms.(6) < norms.(0) *. 1e-6)

let test_poisson_discretization_error () =
  let err n =
    let solver = Mg.create ~n () in
    Problem.setup_poisson (Mg.finest solver);
    ignore (Mg.solve ~cycles:8 solver);
    Level.error_vs (Mg.finest solver)
      (Level.u (Mg.finest solver))
      Problem.exact_sine
  in
  let e8 = err 8 and e16 = err 16 in
  check_bool
    (Printf.sprintf "O(h^2): %.2f" (e8 /. e16))
    true
    (e8 /. e16 > 3. && e8 /. e16 < 5.)

let test_variable_coefficient_convergence () =
  let solver = Mg.create ~n:16 () in
  Mg.set_beta solver Problem.beta_smooth;
  Problem.setup_variable ~seed:3 (Mg.finest solver);
  Mg.set_beta solver Problem.beta_smooth;
  let norms = Mg.solve ~cycles:5 solver in
  check_bool "vc converges" true (norms.(5) < norms.(0) *. 1e-5)

let test_linear_interpolation_converges () =
  let config = { Mg.default_config with interp = Mg.Linear } in
  let solver = Mg.create ~config ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  let norms = Mg.solve ~cycles:6 solver in
  check_bool "linear interp converges" true (norms.(6) < norms.(0) *. 1e-5)

let test_fcycle () =
  let solver = Mg.create ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  let r0 = Mg.residual_norm solver in
  Mg.fcycle solver;
  let r1 = Mg.residual_norm solver in
  check_bool "fcycle reduces residual" true (r1 < r0 /. 5.);
  (* an F-cycle should land near discretisation accuracy *)
  let err =
    Level.error_vs (Mg.finest solver)
      (Level.u (Mg.finest solver))
      Problem.exact_sine
  in
  check_bool "fcycle error near h^2" true (err < 0.05)

let test_alternative_smoothers_converge () =
  (* every smoother drives the Poisson V-cycle to convergence; GSRB-family
     are the fastest per cycle *)
  let reduction smoother =
    let config = { Mg.default_config with smoother } in
    let solver = Mg.create ~config ~n:16 () in
    Problem.setup_poisson (Mg.finest solver);
    let norms = Mg.solve ~cycles:5 solver in
    norms.(5) /. norms.(0)
  in
  let gsrb = reduction Mg.Gsrb in
  let gsrb4 = reduction Mg.Gsrb4 in
  let jacobi = reduction Mg.Jacobi in
  let cheb = reduction (Mg.Chebyshev 4) in
  check_bool (Printf.sprintf "gsrb %.2e" gsrb) true (gsrb < 1e-5);
  check_bool (Printf.sprintf "gsrb4 %.2e" gsrb4) true (gsrb4 < 1e-5);
  check_bool (Printf.sprintf "jacobi %.2e" jacobi) true (jacobi < 0.1);
  check_bool (Printf.sprintf "chebyshev %.2e" cheb) true (cheb < 1e-3)

let test_solver_backends_agree () =
  let results =
    List.map
      (fun backend ->
        let config = { Mg.default_config with backend } in
        let solver = Mg.create ~config ~n:8 () in
        Problem.setup_poisson (Mg.finest solver);
        for _ = 1 to 2 do
          Mg.vcycle solver
        done;
        Level.u (Mg.finest solver))
      [ Jit.Interp; Jit.Compiled; Jit.Openmp; Jit.Opencl ]
  in
  match results with
  | reference :: others ->
      List.iteri
        (fun i u ->
          match Mesh.first_mismatch ~ulps:512 ~atol:1e-11 reference u with
          | None -> ()
          | Some (p, a, b) ->
              Alcotest.failf "backend %d differs from interp at %s: %.17g vs \
                              %.17g"
                i (Ivec.to_string p) a b)
        others
  | [] -> assert false

let test_helmholtz_smoother () =
  (* a > 0 adds a positive diagonal shift: relaxation converges at least
     as fast as Poisson, and with b = 1, a = 0 the operator degenerates to
     the VC Poisson one exactly *)
  let level = Level.create ~n:8 in
  Level.set_beta level Problem.beta_smooth;
  let alpha = Mesh.create level.Level.shape in
  Mesh.fill alpha 1.;
  Grids.add level.Level.grids "alpha" alpha;
  Level.fill_interior (Level.f level) level Problem.rhs_sine;
  let params a b = ("a_coef", a) :: ("b_coef", b) :: Level.params level in
  let run_group group ps =
    (Jit.compile Jit.Compiled ~shape:level.Level.shape group).Kernel.run
      ~params:ps level.Level.grids
  in
  (* degenerate case: dinv and residual match the Poisson versions *)
  run_group (Group.make ~label:"dh" [ Operators.dinv_helmholtz_setup ])
    (params 0. 1.);
  let dinv_h = Mesh.copy (Level.dinv level) in
  run_group (Group.make ~label:"dp" [ Operators.dinv_setup ]) (params 0. 1.);
  check_bool "a=0,b=1 diag = poisson diag" true
    (Mesh.equal_approx ~tol:1e-14 dinv_h (Level.dinv level));
  (* now a genuine Helmholtz solve by relaxation *)
  run_group (Group.make ~label:"dh" [ Operators.dinv_helmholtz_setup ])
    (params 0.5 1.);
  let residual () =
    run_group
      (Group.make ~label:"rh"
         (Operators.boundaries ~grid:"u" @ [ Operators.residual_helmholtz ]))
      (params 0.5 1.);
    Level.interior_norm_l2 level (Level.res level)
  in
  let r0 = residual () in
  for _ = 1 to 80 do
    run_group Operators.gsrb_helmholtz_smooth (params 0.5 1.)
  done;
  check_bool "helmholtz relaxation converges" true (residual () < r0 /. 1e3)

let test_profile_breakdown () =
  let solver = Mg.create ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  Alcotest.(check (list string)) "empty before work" []
    (List.map fst (Mg.profile solver));
  ignore (Mg.solve ~cycles:2 solver);
  let prof = Mg.profile solver in
  let time key =
    match List.assoc_opt key prof with Some s -> s | None -> -1.
  in
  check_bool "smooth L0 tracked" true (time "smooth L0" > 0.);
  check_bool "residual L0 tracked" true (time "residual L0" > 0.);
  check_bool "bottom tracked" true (time "bottom L3" > 0.);
  check_bool "transfer ops tracked" true
    (time "restrict L0->L1" > 0. && time "interp L1->L0" > 0.);
  (* the paper's premise: the finest level dominates *)
  check_bool "finest smooth dominates" true
    (time "smooth L0" > time "smooth L1");
  Mg.reset_profile solver;
  Alcotest.(check (list string)) "reset" []
    (List.map fst (Mg.profile solver))

let test_timed_exception_safe () =
  (* regression: a raising body used to vanish from the profile — the
     sample was only booked after [f ()] returned normally *)
  let solver = Mg.create ~n:16 () in
  Mg.reset_profile solver;
  (try
     Mg.timed solver "doomed" (fun () -> failwith "boom")
   with Failure m -> Alcotest.(check string) "re-raised" "boom" m);
  (match List.assoc_opt "doomed" (Mg.profile solver) with
  | Some t -> check_bool "partial time booked" true (t >= 0.)
  | None -> Alcotest.fail "raising phase dropped from the profile");
  (* the sample accumulates with later successful runs under the same key *)
  Mg.timed solver "doomed" (fun () -> ());
  check_int "still one key" 1 (List.length (Mg.profile solver))

let test_create_validation () =
  (try
     ignore (Mg.create ~n:12 ());
     Alcotest.fail "12 is not coarsest*2^k"
   with Invalid_argument _ -> ());
  try
    ignore (Level.create ~n:5);
    Alcotest.fail "odd n accepted"
  with Invalid_argument _ -> ()

(* --------------------------------------------------------------- level *)

let test_level_basics () =
  let level = Level.create ~n:4 in
  check_int "dof" 64 (Level.dof level);
  Alcotest.(check (float 1e-15)) "h" 0.25 level.Level.h;
  let x, y, z = Level.cell_center level [| 1; 2; 4 |] in
  Alcotest.(check (float 1e-15)) "cx" 0.125 x;
  Alcotest.(check (float 1e-15)) "cy" 0.375 y;
  Alcotest.(check (float 1e-15)) "cz" 0.875 z;
  match Level.params level with
  | [ ("inv_h2", v) ] -> Alcotest.(check (float 1e-12)) "inv_h2" 16. v
  | _ -> Alcotest.fail "unexpected params"

let test_level_set_beta_face_positions () =
  let level = Level.create ~n:4 in
  (* beta(x,y,z) = x: beta_x at cell i sits at x = (i-1)h *)
  Level.set_beta level (fun x _ _ -> x);
  let bx = Grids.find level.Level.grids "beta_x" in
  Alcotest.(check (float 1e-15)) "face x of cell 1" 0. (Mesh.get bx [| 1; 2; 2 |]);
  Alcotest.(check (float 1e-15)) "face x of cell 3" 0.5 (Mesh.get bx [| 3; 2; 2 |]);
  (* beta_y of the same function: cell-centred in x *)
  let by = Grids.find level.Level.grids "beta_y" in
  Alcotest.(check (float 1e-15)) "by cell-centred" 0.375 (Mesh.get by [| 2; 1; 2 |])

let test_interior_norms_ignore_ghost () =
  let level = Level.create ~n:4 in
  let m = Level.res level in
  Mesh.fill m 100.;
  Level.fill_interior m level (fun _ _ _ -> 1.);
  Alcotest.(check (float 1e-12)) "l2 counts interior only" 8.
    (Level.interior_norm_l2 level m);
  Alcotest.(check (float 1e-12)) "linf interior" 1.
    (Level.interior_norm_linf level m)

let () =
  Alcotest.run "sf_hpgmg"
    [
      ( "operators",
        [
          Alcotest.test_case "boundaries structure" `Quick
            test_boundaries_structure;
          Alcotest.test_case "boundaries effect" `Quick test_boundaries_effect;
          Alcotest.test_case "gsrb waves" `Quick test_gsrb_smooth_waves;
          Alcotest.test_case "dinv beta=1" `Quick test_dinv_constant_beta;
          Alcotest.test_case "laplacian O(h^2)" `Quick
            test_cc_laplacian_consistency;
          Alcotest.test_case "27pt O(h^2)" `Quick
            test_laplacian_27pt_consistency;
          Alcotest.test_case "13pt O(h^4)" `Quick test_laplacian_4th_order;
          Alcotest.test_case "4-colour converges" `Quick test_gsrb4_converges;
          Alcotest.test_case "4-colour parallel" `Quick
            test_gsrb4_colors_parallel;
          Alcotest.test_case "chebyshev" `Quick test_chebyshev_smoother;
        ] );
      ( "baseline-oracle",
        [
          Alcotest.test_case "gsrb" `Quick test_baseline_gsrb;
          Alcotest.test_case "residual" `Quick test_baseline_residual;
          Alcotest.test_case "jacobi" `Quick test_baseline_jacobi;
          Alcotest.test_case "laplacian" `Quick test_baseline_laplacian;
          Alcotest.test_case "restrict/interp" `Quick
            test_baseline_transfer_ops;
          Alcotest.test_case "full solver" `Quick test_baseline_full_solver;
        ] );
      ( "solver",
        [
          Alcotest.test_case "poisson convergence" `Quick
            test_poisson_convergence;
          Alcotest.test_case "discretisation error" `Quick
            test_poisson_discretization_error;
          Alcotest.test_case "variable coefficients" `Quick
            test_variable_coefficient_convergence;
          Alcotest.test_case "linear interpolation" `Quick
            test_linear_interpolation_converges;
          Alcotest.test_case "fcycle" `Quick test_fcycle;
          Alcotest.test_case "alternative smoothers" `Quick
            test_alternative_smoothers_converge;
          Alcotest.test_case "backends agree" `Quick
            test_solver_backends_agree;
          Alcotest.test_case "creation validation" `Quick
            test_create_validation;
          Alcotest.test_case "profile breakdown" `Quick
            test_profile_breakdown;
          Alcotest.test_case "timed exception-safe" `Quick
            test_timed_exception_safe;
          Alcotest.test_case "helmholtz" `Quick test_helmholtz_smoother;
        ] );
      ( "level",
        [
          Alcotest.test_case "basics" `Quick test_level_basics;
          Alcotest.test_case "beta face positions" `Quick
            test_level_set_beta_face_positions;
          Alcotest.test_case "interior norms" `Quick
            test_interior_norms_ignore_ghost;
        ] );
    ]
