(* Validates an exported Chrome trace_event file (the @trace alias):
   - the file parses as JSON and round-trips exactly through the printer;
   - traceEvents is a non-empty array;
   - every kernel span carries backend + group attribution and the
     analytic cells/flops/bytes cost annotations.
   Exit 0 on success, 1 (with a message) on any violation. *)

open Sf_trace

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("trace_check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: trace_check FILE.json";
        exit 2
  in
  let text = read_file path in
  let doc =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> fail "%s does not parse as JSON: %s" path e
  in
  (* round-trip: print and reparse must reproduce the same document *)
  (match Json.of_string (Json.to_string doc) with
  | Ok j when Json.equal j doc -> ()
  | Ok _ -> fail "%s does not round-trip through the printer" path
  | Error e -> fail "%s: printed form fails to reparse: %s" path e);
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> fail "%s has no traceEvents array" path
  in
  if events = [] then fail "%s has an empty traceEvents array" path;
  let kernels = ref 0 in
  List.iter
    (fun ev ->
      match Json.member "cat" ev with
      | Some (Json.Str "kernel") ->
          incr kernels;
          let args =
            match Json.member "args" ev with
            | Some a -> a
            | None -> fail "kernel event without args: %s" (Json.to_string ev)
          in
          let num key =
            match Json.member key args with
            | Some (Json.Num _) -> ()
            | _ ->
                fail "kernel event missing numeric %S arg: %s" key
                  (Json.to_string ev)
          in
          let str key =
            match Json.member key args with
            | Some (Json.Str _) -> ()
            | _ ->
                fail "kernel event missing string %S arg: %s" key
                  (Json.to_string ev)
          in
          num "cells";
          num "flops";
          num "bytes";
          str "backend";
          str "group"
      | _ -> ())
    events;
  if !kernels = 0 then fail "%s contains no kernel spans" path;
  Printf.printf "trace_check: %s ok (%d events, %d kernel spans)\n" path
    (List.length events) !kernels
