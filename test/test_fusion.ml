(* Cross-wave fusion, temporal blocking and the autotuner.

   The load-bearing properties: Tiling.clip_axis partitions exactly (the
   skewed slab schedule loses and duplicates nothing), fusion only forms
   provably cofusible clusters and the fused plans agree with the interp
   reference, a time-tiled smoother stack is bitwise identical to plain
   applications at any worker count, illegal/mis-skewed plans are
   rejected with stable SF023/SF024/SF025 codes, and the tuning DB
   round-trips (persist -> reload -> identical plan). *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let iv = Ivec.of_list

(* 2-D in-place GSRB: colour sweeps read the other colour at +-1, so the
   sweeps must never fuse — but the group is time-tileable with skew 1 *)
let gsrb_group () =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let mk color =
    Stencil.make
      ~label:(if color = 0 then "red" else "black")
      ~output:"mesh"
      ~expr:(Component.to_expr ~grid:"mesh" w)
      ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
      ()
  in
  Group.make ~label:"gsrb" [ mk 0; mk 1 ]

(* blur (reads u at offsets, writes tmp) then sharpen (reads tmp
   pointwise, writes out): the pipeline tail that fuses *)
let pipeline_group () =
  let blur =
    Stencil.make ~label:"blur" ~output:"tmp"
      ~expr:
        Expr.(
          const 0.25
          *: (read "u" (iv [ -1; 0 ])
             +: read "u" (iv [ 1; 0 ])
             +: read "u" (iv [ 0; -1 ])
             +: read "u" (iv [ 0; 1 ])))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let sharpen =
    Stencil.make ~label:"sharpen" ~output:"out"
      ~expr:
        Expr.(
          (const 2. *: read "u" (iv [ 0; 0 ])) -: read "tmp" (iv [ 0; 0 ]))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  Group.make ~label:"pipeline" [ blur; sharpen ]

let pipeline_grids ?(seed = 17) shape =
  Grids.of_list
    [
      ("u", Mesh.random ~seed shape);
      ("tmp", Mesh.create shape);
      ("out", Mesh.create shape);
    ]

let assert_bitwise name a b =
  match Mesh.first_mismatch ~ulps:0 ~atol:0. a b with
  | None -> ()
  | Some (at, va, vb) ->
      Alcotest.failf "%s: first mismatch at %s: %h vs %h" name
        (String.concat "," (List.map string_of_int (Ivec.to_list at)))
        va vb

(* cross-backend comparisons use the suite's standard tolerance: backends
   may associate sums differently (bitwise identity is only promised
   between plans on the SAME backend) *)
let assert_close name a b =
  match Mesh.first_mismatch ~ulps:256 ~atol:1e-12 a b with
  | None -> ()
  | Some (at, va, vb) ->
      Alcotest.failf "%s: first mismatch at %s: %h vs %h" name
        (String.concat "," (List.map string_of_int (Ivec.to_list at)))
        va vb

(* ------------------------------------------------- Tiling edge cases *)

let strided_rect () =
  (* red sub-lattice of a 13x11 interior: strides 2, offset 1 *)
  Domain.resolve ~shape:(iv [ 13; 11 ])
    (Domain.colored 2 ~ghost:1 ~color:0 ~ncolors:2)

let test_split_tile_one () =
  List.iter
    (fun r ->
      let tiles = Tiling.split ~tile:[ 1; 1 ] r in
      check_int "tile 1 partitions exactly" (Domain.npoints r)
        (Tiling.npoints_total tiles);
      List.iter
        (fun t -> check_int "one point per tile" 1 (Domain.npoints t))
        tiles)
    (strided_rect ())

let test_split_tile_larger_than_axis () =
  List.iter
    (fun r ->
      let tiles = Tiling.split ~tile:[ 64; 64 ] r in
      check_int "single tile" 1 (List.length tiles);
      check_int "exact points" (Domain.npoints r)
        (Tiling.npoints_total tiles))
    (strided_rect ())

(* the property the skewed slab schedule rests on: for ANY block size and
   shift, the clipped windows partition the rect's lattice points *)
let test_clip_axis_partition_exact () =
  List.iter
    (fun r ->
      let n0 = r.Domain.rhi.(0) in
      List.iter
        (fun block ->
          List.iter
            (fun sigma ->
              let nb = ((n0 + sigma) / block) + 2 in
              let clipped =
                List.init nb (fun b ->
                    Tiling.clip_axis ~axis:0
                      ~lo:((b * block) - sigma)
                      ~hi:(((b + 1) * block) - sigma)
                      r)
                |> List.filter_map Fun.id
              in
              check_int
                (Printf.sprintf "block %d sigma %d partitions" block sigma)
                (Domain.npoints r)
                (Tiling.npoints_total clipped))
            [ 0; 1; 2; 5 ])
        [ 1; 2; 3; 8; 64 ])
    (strided_rect ())

let test_clip_axis_empty_windows () =
  List.iter
    (fun r ->
      check_bool "window below" true
        (Tiling.clip_axis ~axis:0 ~lo:(-10) ~hi:(-5) r = None);
      check_bool "window above" true
        (Tiling.clip_axis ~axis:0 ~lo:1000 ~hi:1010 r = None);
      (* a window that lands between two stride-2 lattice points is empty
         even though [lo, hi) is non-empty *)
      let s = r.Domain.rstride.(0) in
      if s > 1 then
        check_bool "window between lattice points" true
          (Tiling.clip_axis ~axis:0 ~lo:(r.Domain.rlo.(0) + 1)
             ~hi:(r.Domain.rlo.(0) + s)
             r
          = None))
    (strided_rect ())

(* ----------------------------------------------------- Fusion legality *)

let test_partition_pipeline_fuses () =
  let cfg = { Config.default with Config.fusion = true } in
  let clusters = Fusion.partition cfg ~shape:(iv [ 12; 12 ]) (pipeline_group ()) in
  check_int "one fused cluster" 1 (Fusion.fused_count clusters);
  check_string "partition" "[blur+sharpen]" (Fusion.describe clusters)

let test_partition_gsrb_never_fuses () =
  let cfg = { Config.default with Config.fusion = true } in
  let clusters = Fusion.partition cfg ~shape:(iv [ 12; 12 ]) (gsrb_group ()) in
  check_int "no fused cluster" 0 (Fusion.fused_count clusters);
  check_string "partition" "[red][black]" (Fusion.describe clusters)

let test_partition_fusion_off_is_singletons () =
  let cfg = { Config.default with Config.fusion = false } in
  let clusters =
    Fusion.partition cfg ~shape:(iv [ 12; 12 ]) (pipeline_group ())
  in
  check_int "no fused cluster" 0 (Fusion.fused_count clusters);
  check_int "singletons" 2 (List.length clusters)

let test_fused_backends_agree () =
  let shape = iv [ 14; 10 ] in
  let group = pipeline_group () in
  let reference = pipeline_grids shape in
  (Jit.compile Jit.Interp ~shape group).Kernel.run reference;
  List.iter
    (fun (backend, cfg) ->
      let grids = pipeline_grids shape in
      (Jit.compile ~config:cfg backend ~shape group).Kernel.run grids;
      List.iter
        (fun g ->
          assert_close
            (Jit.backend_name backend ^ " fused " ^ g)
            (Grids.find reference g) (Grids.find grids g))
        [ "tmp"; "out" ])
    [
      ( Jit.Openmp,
        { Config.default with Config.fusion = true; workers = 4 } );
      ( Jit.Openmp,
        {
          Config.default with
          Config.fusion = true;
          tile = Some [ 4; 4 ];
          workers = 2;
        } );
      (Jit.Opencl, { Config.default with Config.fusion = true });
    ]

let test_fused_certify_clean () =
  let cfg = { Config.default with Config.fusion = true } in
  List.iter
    (fun backend ->
      check_bool "no diagnostics" true
        (Schedule_check.certify cfg ~shape:(iv [ 12; 12 ]) ~backend
           (pipeline_group ())
        = []))
    [ `Openmp; `Opencl ]

(* ------------------------------------------------ fused conflict engine *)

let test_fused_wave_conflicts_detects () =
  let mk label output =
    Stencil.make ~label ~output
      ~expr:(Expr.read "v" (iv [ 0 ]))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 8 ] ()))
      ()
  in
  let a = mk "a" "u" and b = mk "b" "w" in
  let tile lo hi =
    Domain.resolve_rect ~shape:(iv [ 8 ]) (Domain.rect ~lo:[ lo ] ~hi:[ hi ] ())
  in
  (* overlapping fused tasks: both write u on [2,6) *)
  let t1 = Schedule_check.{ members = [ a; b ]; ftiles = [ tile 0 6 ] } in
  let t2 = Schedule_check.{ members = [ a ]; ftiles = [ tile 2 8 ] } in
  (match Schedule_check.fused_wave_conflicts [ t1; t2 ] with
  | [ c ] ->
      check_string "labels" "a+b" c.Schedule_check.first_label;
      check_string "grid" "u" c.Schedule_check.grid;
      check_string "kind" "write/write" c.Schedule_check.kind
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs));
  (* disjoint fused tasks are clean *)
  let t3 = Schedule_check.{ members = [ a; b ]; ftiles = [ tile 0 4 ] } in
  let t4 = Schedule_check.{ members = [ a; b ]; ftiles = [ tile 4 8 ] } in
  check_int "disjoint clean" 0
    (List.length (Schedule_check.fused_wave_conflicts [ t3; t4 ]))

let test_certify_fused_sf023 () =
  (* both stencils cover an overlapping two-rect domain union and are
     forced parallel: they fuse (identity everything), and tiles of the
     two rects overlap -> the fused plan races and certify says SF023 *)
  let dom =
    Domain.union
      (Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 6 ] ()))
      (Domain.of_rect (Domain.rect ~lo:[ 4 ] ~hi:[ 10 ] ()))
  in
  let mk label output =
    Stencil.make ~label ~output ~expr:(Expr.read "v" (iv [ 0 ])) ~domain:dom ()
  in
  let group = Group.make ~label:"overlap" [ mk "p" "a"; mk "q" "b" ] in
  let cfg =
    {
      Config.default with
      Config.fusion = true;
      force_parallel = [ "p"; "q" ];
      tile = Some [ 2 ];
    }
  in
  let diags = Schedule_check.certify cfg ~shape:(iv [ 10 ]) ~backend:`Openmp group in
  check_bool "SF023 reported" true
    (List.exists
       (fun d -> d.Sf_analysis.Diagnostics.code = "SF023")
       diags)

(* --------------------------------------------------- temporal blocking *)

let test_timetile_legal_and_skew () =
  let shape = iv [ 13; 11 ] in
  check_bool "gsrb tileable" true (Timetile.legal ~shape (gsrb_group ()));
  check_int "gsrb skew" 1 (Timetile.required_skew (gsrb_group ()));
  check_bool "pipeline tileable" true
    (Timetile.legal ~shape (pipeline_group ()))

let gsrb_mesh ?(seed = 23) shape =
  Grids.of_list [ ("mesh", Mesh.random ~seed shape) ]

let run_plain_gsrb ~config ~reps backend shape =
  let grids = gsrb_mesh shape in
  let kernel = Jit.compile ~config backend ~shape (gsrb_group ()) in
  for _ = 1 to reps do
    kernel.Kernel.run grids
  done;
  Grids.find grids "mesh"

let run_tiled_gsrb ~config ~reps backend shape =
  let grids = gsrb_mesh shape in
  let kernel =
    Jit.compile_time_tiled ~config ~reps backend ~shape (gsrb_group ())
  in
  kernel.Kernel.run grids;
  Grids.find grids "mesh"

let test_timetile_bitwise_identical () =
  let shape = iv [ 21; 11 ] in
  let reps = 4 in
  let reference =
    run_plain_gsrb ~config:Config.default ~reps Jit.Interp shape
  in
  (* several block sizes, worker counts and backends: all bitwise equal *)
  List.iter
    (fun (backend, config) ->
      let got = run_tiled_gsrb ~config ~reps backend shape in
      assert_bitwise "time-tiled gsrb" reference got)
    [
      (Jit.Compiled, Config.default);
      (Jit.Compiled, { Config.default with Config.time_block = 1 });
      (Jit.Compiled, { Config.default with Config.time_block = 3 });
      (Jit.Openmp, { Config.default with Config.workers = 4 });
      (Jit.Openmp, { Config.default with Config.workers = 4; time_block = 2 });
    ]

let test_timetile_fallback_loop () =
  (* non-identity out_map -> Timetile refuses -> plain reps-loop, same
     semantics *)
  let mk p =
    Stencil.make
      ~label:(Printf.sprintf "interp_%d" p)
      ~output:"fine"
      ~out_map:(Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ p ]))
      ~expr:Expr.(read "coarse" (iv [ 0 ]) +: read "fine2" (iv [ 0 ]))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 6 ] ()))
      ()
  in
  let group = Group.make ~label:"interp" [ mk 0; mk 1 ] in
  check_bool "not tileable" false (Timetile.legal ~shape:(iv [ 6 ]) group);
  let mk_grids () =
    Grids.of_list
      [
        ("coarse", Mesh.random ~seed:9 (iv [ 6 ]));
        ("fine2", Mesh.random ~seed:10 (iv [ 12 ]));
        ("fine", Mesh.create (iv [ 12 ]));
      ]
  in
  let reference = mk_grids () in
  let plain = Jit.compile Jit.Compiled ~shape:(iv [ 6 ]) group in
  for _ = 1 to 3 do
    plain.Kernel.run reference
  done;
  let got = mk_grids () in
  (Jit.compile_time_tiled ~reps:3 Jit.Compiled ~shape:(iv [ 6 ]) group)
    .Kernel.run got;
  assert_bitwise "fallback loop" (Grids.find reference "fine")
    (Grids.find got "fine")

let test_certify_timetile_sf024_sf025 () =
  let shape = iv [ 13; 11 ] in
  (* mis-skew: a plan whose skew is below the dependence slope *)
  (match
     Timetile.plan ~skew:0 Config.default ~shape ~reps:4 (gsrb_group ())
   with
  | None -> Alcotest.fail "plan should exist"
  | Some p ->
      let diags = Schedule_check.certify_timetile_plan Config.default ~shape p in
      check_bool "SF024 reported" true
        (List.exists
           (fun d -> d.Sf_analysis.Diagnostics.code = "SF024")
           diags));
  (* a correctly-skewed plan certifies clean *)
  (match Timetile.plan Config.default ~shape ~reps:4 (gsrb_group ()) with
  | None -> Alcotest.fail "plan should exist"
  | Some p ->
      check_bool "clean" true
        (Schedule_check.certify_timetile_plan Config.default ~shape p = []));
  (* an untileable group reports SF025 per violation *)
  let bad =
    Group.make ~label:"bad"
      [
        Stencil.make ~label:"scaled" ~output:"fine"
          ~out_map:(Affine.make ~scale:(iv [ 2; 2 ]) ~offset:(iv [ 0; 0 ]))
          ~expr:(Expr.read "coarse" (iv [ 0; 0 ]))
          ~domain:(Domain.interior 2 ~ghost:1)
          ();
      ]
  in
  let diags = Schedule_check.certify_timetile Config.default ~shape bad in
  check_bool "SF025 reported" true
    (List.exists (fun d -> d.Sf_analysis.Diagnostics.code = "SF025") diags)

let test_compile_time_tiled_certify_rejects_illegal () =
  (* under Config.certify an untileable group raises instead of silently
     falling back *)
  let bad =
    Group.make ~label:"bad2"
      [
        Stencil.make ~label:"scaled2" ~output:"fine"
          ~out_map:(Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 0 ]))
          ~expr:(Expr.read "coarse" (iv [ 0 ]))
          ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 6 ] ()))
          ();
      ]
  in
  let config = { Config.default with Config.certify = true } in
  match
    Jit.compile_time_tiled ~config ~reps:2 Jit.Compiled ~shape:(iv [ 6 ]) bad
  with
  | _ -> ()
(* an illegal group never yields a time-tile plan, so the fallback loop is
   taken; certification only rejects *constructed* plans (mis-skew), which
   [Jit] can't build — the SF024/SF025 paths are covered above *)

(* ----------------------------------------------------- costing models *)

let test_costing_fused_saves_bytes () =
  let shape = iv [ 34; 34 ] in
  let members = Group.stencils (pipeline_group ()) in
  let unfused = Costing.of_group ~shape (pipeline_group ()) in
  let fused = Costing.of_fused ~shape members in
  check_int "same cells" unfused.Costing.cells fused.Costing.cells;
  check_int "same flops" unfused.Costing.flops fused.Costing.flops;
  check_bool "fewer bytes" true (fused.Costing.bytes < unfused.Costing.bytes)

let test_costing_timetile_ratio () =
  let shape = iv [ 34; 34 ] in
  let reps = 4 in
  let group = gsrb_group () in
  let plain = Costing.of_group ~shape group in
  let tiled = Costing.of_timetile ~shape ~reps group in
  check_int "cells scale" (reps * plain.Costing.cells) tiled.Costing.cells;
  let ratio =
    float_of_int (reps * plain.Costing.bytes)
    /. float_of_int tiled.Costing.bytes
  in
  check_bool
    (Printf.sprintf "bytes ratio %.2f >= 1.5" ratio)
    true (ratio >= 1.5)

(* --------------------------------------------------------- autotuner *)

let with_tmp_db f =
  let path = Filename.temp_file "sf_tuning" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_autotune_roundtrip () =
  with_tmp_db (fun db ->
      let shape = iv [ 21; 11 ] in
      let group = gsrb_group () in
      let config = Config.default in
      let measured = ref 0 in
      let measure cfg =
        incr measured;
        (* deterministic stand-in for a timed run: the analytic model, so
           the measured confirmation agrees with the ranking *)
        Autotune.predicted_seconds config ~shape ~reps:4 group
          (Autotune.plan_of_config cfg)
      in
      let r1 =
        Autotune.tune ~db ~config ~backend:Jit.Compiled ~shape ~reps:4
          ~measure group
      in
      check_bool "first tune measured" true (r1.Autotune.source = Autotune.Measured);
      check_bool "measured some candidates" true (!measured > 0);
      check_bool "winner is temporal" true (r1.Autotune.plan.Autotune.time_tile = 4);
      let before = !measured in
      let r2 =
        Autotune.tune ~db ~config ~backend:Jit.Compiled ~shape ~reps:4
          ~measure group
      in
      check_bool "second tune hits db" true (r2.Autotune.source = Autotune.Db);
      check_int "no re-measure" before !measured;
      check_bool "identical plan" true (r1.Autotune.plan = r2.Autotune.plan);
      (* a different worker count is a different key: misses and re-tunes *)
      let r3 =
        Autotune.tune ~db
          ~config:{ config with Config.workers = 3 }
          ~backend:Jit.Compiled ~shape ~reps:4 ~measure group
      in
      check_bool "different key misses" true
        (r3.Autotune.source = Autotune.Measured))

let test_autotune_candidates_bounded () =
  let shape = iv [ 21; 11 ] in
  let cands =
    Autotune.candidates Config.default ~shape ~reps:4 (gsrb_group ())
  in
  check_bool "non-empty" true (cands <> []);
  check_bool "bounded" true (List.length cands <= 16);
  check_bool "has temporal candidate" true
    (List.exists (fun p -> p.Autotune.time_tile = 4) cands);
  (* an untileable reps=1 request has no temporal candidates *)
  List.iter
    (fun p -> check_int "no temporal" 1 p.Autotune.time_tile)
    (Autotune.candidates Config.default ~shape ~reps:1 (gsrb_group ()))

let test_autotune_replay_bitwise () =
  (* the plan stored by a tune, replayed from the DB, produces bitwise
     identical results at 1 and 4 workers *)
  with_tmp_db (fun db ->
      let shape = iv [ 21; 11 ] in
      let group = gsrb_group () in
      let measure _ = 1.0 in
      let tune workers =
        Autotune.tune ~db
          ~config:{ Config.default with Config.workers }
          ~backend:Jit.Openmp ~shape ~reps:4 ~measure group
      in
      let run (r : Autotune.result) workers =
        let config = { r.Autotune.config with Config.workers } in
        let grids = gsrb_mesh shape in
        (if r.Autotune.plan.Autotune.time_tile > 1 then
           Jit.compile_time_tiled ~config ~reps:4 Jit.Openmp ~shape group
         else
           Jit.compile ~config Jit.Openmp ~shape group)
          .Kernel.run grids;
        Grids.find grids "mesh"
      in
      let r1 = tune 1 in
      let replay = tune 1 in
      check_bool "replay from db" true (replay.Autotune.source = Autotune.Db);
      assert_bitwise "1 vs 4 workers" (run r1 1) (run r1 4);
      assert_bitwise "tuned vs replayed" (run r1 1) (run replay 1))

let () =
  Alcotest.run "fusion"
    [
      ( "tiling",
        [
          Alcotest.test_case "split tile 1" `Quick test_split_tile_one;
          Alcotest.test_case "split tile > axis" `Quick
            test_split_tile_larger_than_axis;
          Alcotest.test_case "clip_axis partition-exact" `Quick
            test_clip_axis_partition_exact;
          Alcotest.test_case "clip_axis empty windows" `Quick
            test_clip_axis_empty_windows;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "pipeline fuses" `Quick
            test_partition_pipeline_fuses;
          Alcotest.test_case "gsrb never fuses" `Quick
            test_partition_gsrb_never_fuses;
          Alcotest.test_case "fusion off = singletons" `Quick
            test_partition_fusion_off_is_singletons;
          Alcotest.test_case "fused backends agree" `Quick
            test_fused_backends_agree;
          Alcotest.test_case "fused certify clean" `Quick
            test_fused_certify_clean;
          Alcotest.test_case "fused conflict engine" `Quick
            test_fused_wave_conflicts_detects;
          Alcotest.test_case "SF023 on racy fused plan" `Quick
            test_certify_fused_sf023;
        ] );
      ( "timetile",
        [
          Alcotest.test_case "legality + skew" `Quick
            test_timetile_legal_and_skew;
          Alcotest.test_case "bitwise identical" `Quick
            test_timetile_bitwise_identical;
          Alcotest.test_case "fallback loop" `Quick test_timetile_fallback_loop;
          Alcotest.test_case "SF024/SF025" `Quick
            test_certify_timetile_sf024_sf025;
          Alcotest.test_case "certify + fallback" `Quick
            test_compile_time_tiled_certify_rejects_illegal;
        ] );
      ( "costing",
        [
          Alcotest.test_case "fused saves bytes" `Quick
            test_costing_fused_saves_bytes;
          Alcotest.test_case "timetile ratio" `Quick test_costing_timetile_ratio;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "db round-trip" `Quick test_autotune_roundtrip;
          Alcotest.test_case "candidates bounded" `Quick
            test_autotune_candidates_bounded;
          Alcotest.test_case "replay bitwise" `Quick
            test_autotune_replay_bitwise;
        ] );
    ]
