(* Regression probe for the Pool at_exit self-join hang.

   at_exit handlers run on whichever domain calls [exit].  When user code
   exits from inside a pool chunk that a helper domain stole, the
   [at_exit Pool.shutdown] handler runs ON that helper — and a shutdown
   that joins every helper would [Domain.join] the current domain: a
   guaranteed deadlock the pre-fix code hit whenever work stealing placed
   the exiting chunk off the main domain.

   Exit status: 3 = the interesting path ran (exit from a stolen chunk on
   a helper domain) and the process still terminated — the fix holds;
   4 = the racy schedule put the chunk on the main domain this time
   (inconclusive, the caller retries); a timeout kill = the hang.  The
   first range call warms the helpers up so chunks really are stolen. *)

let () =
  let pool = Sf_backends.Pool.create ~workers:4 in
  Sf_backends.Pool.parallel_range pool 100000 (fun _ _ -> ());
  Sf_backends.Pool.parallel_range ~grain:100 pool 100000 (fun lo _ ->
      if lo = 300 then
        if (Domain.self () :> int) <> 0 then exit 3 else exit 4);
  exit 4
