(* Regression probe for the Pool at_exit self-join hang.

   at_exit handlers run on whichever domain calls [exit].  When user code
   exits from inside a pool chunk that a helper domain stole, the
   [at_exit Pool.shutdown] handler runs ON that helper — and a shutdown
   that joins every helper would [Domain.join] the current domain: a
   guaranteed deadlock the pre-fix code hit whenever work stealing placed
   the exiting chunk off the main domain.

   Exit status: 3 = the interesting path ran (exit from a stolen chunk on
   a helper domain) and the process still terminated — the fix holds;
   4 = the racy schedule put every chunk on the main domain this time
   (inconclusive, the caller retries); a timeout kill = the hang.  The
   first range call warms the helpers up so chunks really are stolen;
   the exit fires from the first chunk observed on a helper domain (an
   Atomic keeps concurrent chunks from racing into [exit]).  Chunks the
   main domain drains *sleep*: on a single-CPU box the whole range
   otherwise finishes on the main domain before the OS ever schedules a
   helper, and the probe stays inconclusive for many attempts in a row.
   The sleep donates the timeslice, so a helper wakes and steals. *)

let () =
  let pool = Sf_backends.Pool.create ~workers:4 in
  Sf_backends.Pool.parallel_range pool 100000 (fun _ _ -> ());
  let fired = Atomic.make false in
  Sf_backends.Pool.parallel_range ~grain:100 pool 100000 (fun _ _ ->
      if (Domain.self () :> int) <> 0 then begin
        if not (Atomic.exchange fired true) then exit 3
      end
      else Unix.sleepf 0.001);
  exit 4
