(* `dune build @tune`: a bounded autotune of a 16^3 multigrid solve.

   Asserts the contract the tuning DB promises: the first tune measures
   and persists a winner; a second tune with the same key replays it
   from the DB without measuring; and a solve under the replayed plan is
   bitwise identical to a solve under the freshly-tuned plan — at 1 AND
   4 workers.  Everything is bounded: reps = the solver's smooth count,
   only the top-ranked candidates are timed, 4 V-cycles per solve. *)

open Sf_util
open Sf_mesh
open Sf_backends
open Sf_hpgmg

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("tune_check: " ^ m); exit 1) fmt

let check name ok = if not ok then fail "%s" name

let () =
  let db = Filename.temp_file "sf_tune_check" ".json" in
  Sys.remove db;
  Fun.protect ~finally:(fun () -> if Sys.file_exists db then Sys.remove db)
  @@ fun () ->
  let n = 16 in
  let backend = Jit.Openmp in
  let reps = Mg.default_config.Mg.smooths in
  let group = Operators.gsrb_smooth in
  let level = Level.create ~n in
  let shape = level.Level.shape in
  let jit_base = Config.with_workers 1 Config.default in
  let measured = ref 0 in
  let measure cfg =
    incr measured;
    let p = Autotune.plan_of_config cfg in
    let kernel =
      if p.Autotune.time_tile > 1 then
        Jit.compile_time_tiled ~config:cfg ~reps backend ~shape group
      else Jit.compile ~config:cfg backend ~shape group
    in
    let apps = if p.Autotune.time_tile > 1 then 1 else reps in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to apps do
      kernel.Kernel.run ~params:(Level.params level) level.Level.grids
    done;
    Unix.gettimeofday () -. t0
  in
  let tune () =
    Autotune.tune ~db ~config:jit_base ~backend ~shape ~reps ~measure group
  in
  let r1 = tune () in
  check "first tune must measure" (r1.Autotune.source = Autotune.Measured);
  check "first tune timed at least one candidate" (!measured > 0);
  check "winner persisted" (Sys.file_exists db);
  let before = !measured in
  let r2 = tune () in
  check "second tune must replay from the DB" (r2.Autotune.source = Autotune.Db);
  check "a DB hit must not re-measure" (!measured = before);
  check "replayed plan identical to tuned plan" (r1.Autotune.plan = r2.Autotune.plan);

  (* the plan's solve must replay bitwise-identically, at 1 and 4 workers *)
  let solve (r : Autotune.result) ~workers =
    let config =
      {
        Mg.default_config with
        Mg.backend;
        jit = Config.with_workers workers r.Autotune.config;
      }
    in
    let solver = Mg.create ~config ~n () in
    Problem.setup_poisson (Mg.finest solver);
    let norms = Mg.solve ~cycles:4 solver in
    (Level.u (Mg.finest solver), norms)
  in
  let u1, norms1 = solve r1 ~workers:1 in
  let u2, norms2 = solve r2 ~workers:1 in
  let u4, norms4 = solve r2 ~workers:4 in
  check "residual histories identical (tuned vs replayed)" (norms1 = norms2);
  check "residual histories identical (1 vs 4 workers)" (norms1 = norms4);
  (match Mesh.first_mismatch ~ulps:0 ~atol:0. u1 u2 with
  | None -> ()
  | Some (at, a, b) ->
      fail "tuned vs replayed solution differs at %s: %h vs %h"
        (String.concat "," (List.map string_of_int (Ivec.to_list at)))
        a b);
  (match Mesh.first_mismatch ~ulps:0 ~atol:0. u1 u4 with
  | None -> ()
  | Some (at, a, b) ->
      fail "1- vs 4-worker solution differs at %s: %h vs %h"
        (String.concat "," (List.map string_of_int (Ivec.to_list at)))
        a b);
  Printf.printf
    "tune_check: ok — plan [%s] persisted, replayed from DB, solve bitwise \
     identical at 1 and 4 workers (%d candidate(s) timed once)\n"
    (Autotune.describe r1.Autotune.plan)
    before
