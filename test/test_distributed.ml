open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
open Sf_backends
open Sf_hpgmg
open Sf_distributed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_structure () =
  let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:4 in
  check_int "ranks" 4 (List.length (Spmd.ranks t));
  (* per exchange: 4 ranks x 2 axes x 2 sides *)
  check_int "exchange stencils" 16
    (List.length (Spmd.exchange_stencils t ~base:"u"));
  let group = Spmd.gsrb_smooth_group t in
  check_int "smooth group size" ((2 * 16) + (2 * 4)) (Group.length group);
  Alcotest.(check string) "rank naming" "u@1_0"
    (Spmd.rank_name "u" (Ivec.of_list [ 1; 0 ]))

let test_waves () =
  (* all communication of one exchange forms a single wave: halo copies and
     physical BCs are mutually independent; then all red sweeps together,
     then the second exchange, then black *)
  let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:4 in
  let group = Spmd.gsrb_smooth_group t in
  let waves = Schedule.greedy_waves ~shape:t.Spmd.shape group in
  check_int "four waves" 4 (List.length waves);
  Alcotest.(check (list int)) "wave sizes" [ 16; 4; 16; 4 ]
    (List.map List.length waves)

let test_plan_conflict_free () =
  let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:4 in
  let group = Spmd.gsrb_smooth_group t in
  match
    Schedule_check.check_waves
      (Schedule_check.openmp_plan Config.default ~shape:t.Spmd.shape group)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "spmd plan conflict: %s" msg

(* Reference single-domain run of the same (rank-unqualified) groups on a
   possibly non-cubic global box. *)
let single_domain ~dims ~extents =
  let shape = Array.map (fun n -> n + 2) extents in
  let grids = Grids.create () in
  List.iter
    (fun base ->
      let m = Mesh.create shape in
      if String.length base >= 5 && String.sub base 0 5 = "beta_" then
        Mesh.fill m 1.;
      Grids.add grids base m)
    ([ "u"; "f"; "res"; "tmp"; "dinv" ]
    @ List.init dims (fun a -> Nd.beta_name a));
  (shape, grids)

let beta_fn coords =
  1. +. (0.3 *. Array.fold_left (fun acc x -> acc *. sin ((3. *. x) +. 0.5)) 1. coords)

let f_fn coords = Array.fold_left (fun acc x -> acc +. (x *. x)) (-0.7) coords
let u_fn coords = Array.fold_left (fun acc x -> acc +. sin (5. *. x)) 0.2 coords

let setup_pair ~rank_grid ~local_n =
  let t = Spmd.create ~rank_grid ~local_n in
  let dims = List.length rank_grid in
  let extents =
    Array.of_list (List.map (fun r -> r * local_n) rank_grid)
  in
  let shape, grids = single_domain ~dims ~extents in
  (* identical problem data on both sides, via global coordinates *)
  let h = 1. /. float_of_int extents.(0) in
  Spmd.set_beta t beta_fn;
  Spmd.fill_interior t ~base:"f" f_fn;
  Spmd.fill_interior t ~base:"u" u_fn;
  (* single-domain side *)
  let cell p = Array.map (fun i -> (float_of_int i -. 0.5) *. h) p in
  let iter_interior fn =
    Domain.iter
      (Domain.resolve_rect ~shape
         (Domain.rect
            ~lo:(List.init dims (fun _ -> 1))
            ~hi:(List.init dims (fun _ -> -1))
            ()))
      fn
  in
  iter_interior (fun p ->
      Mesh.set (Grids.find grids "f") p (f_fn (cell p));
      Mesh.set (Grids.find grids "u") p (u_fn (cell p)));
  List.iteri
    (fun axis _ ->
      Mesh.fill_with (Grids.find grids (Nd.beta_name axis)) (fun p ->
          let coords =
            Array.mapi
              (fun a i ->
                if a = axis then float_of_int (i - 1) *. h
                else (float_of_int i -. 0.5) *. h)
              p
          in
          beta_fn coords))
    rank_grid;
  let params = Spmd.params t in
  let run_single group =
    (Jit.compile Jit.Compiled ~shape group).Kernel.run ~params grids
  in
  run_single (Group.make ~label:"dinv1" [ Nd.dinv_setup ~dims ]);
  (t, grids, run_single)

let test_smooth_matches_single_domain_2d () =
  let t, grids, run_single = setup_pair ~rank_grid:[ 2; 2 ] ~local_n:8 in
  let dims = 2 in
  for _ = 1 to 3 do
    (Jit.compile Jit.Compiled ~shape:t.Spmd.shape (Spmd.gsrb_smooth_group t)).Kernel.run
      ~params:(Spmd.params t) t.Spmd.grids;
    run_single (Nd.gsrb_smooth ~dims)
  done;
  let gathered = Spmd.gather t ~base:"u" in
  (* compare interiors only: gathered ghosts are zero while the
     single-domain ghosts hold boundary-condition values *)
  let single = Grids.find grids "u" in
  let d = ref 0. in
  Domain.iter
    (Domain.resolve_rect ~shape:(Mesh.shape single)
       (Domain.rect ~lo:[ 1; 1 ] ~hi:[ -1; -1 ] ()))
    (fun p ->
      d := Float.max !d (Float.abs (Mesh.get gathered p -. Mesh.get single p)));
  check_bool (Printf.sprintf "2-d smooth agrees (diff %.2e)" !d) true
    (!d < 1e-12)

let test_residual_matches_single_domain_3d_noncubic () =
  (* a non-cubic 2x1x2 rank grid: global 8x4x8 box *)
  let t, grids, run_single = setup_pair ~rank_grid:[ 2; 1; 2 ] ~local_n:4 in
  let dims = 3 in
  (Jit.compile Jit.Compiled ~shape:t.Spmd.shape (Spmd.residual_group t)).Kernel.run
    ~params:(Spmd.params t) t.Spmd.grids;
  run_single
    (Group.make ~label:"res1"
       (Nd.boundaries ~dims ~grid:"u" @ [ Nd.residual_vc ~dims ]));
  let gathered = Spmd.gather t ~base:"res" in
  let single = Grids.find grids "res" in
  let d = ref 0. in
  Domain.iter
    (Domain.resolve_rect ~shape:(Mesh.shape single)
       (Domain.rect ~lo:[ 1; 1; 1 ] ~hi:[ -1; -1; -1 ] ()))
    (fun p ->
      d := Float.max !d (Float.abs (Mesh.get gathered p -. Mesh.get single p)));
  check_bool (Printf.sprintf "3-d residual agrees (diff %.2e)" !d) true
    (!d < 1e-12)

let test_distributed_relaxation_converges () =
  let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:8 in
  Spmd.set_beta t (fun _ -> 1.);
  Spmd.fill_interior t ~base:"f" (fun c ->
      Nd.rhs_sine ~dims:2 c);
  let smooth =
    Jit.compile Jit.Compiled ~shape:t.Spmd.shape (Spmd.gsrb_smooth_group t)
  in
  let residual =
    Jit.compile Jit.Compiled ~shape:t.Spmd.shape (Spmd.residual_group t)
  in
  let res_norm () =
    residual.Kernel.run ~params:(Spmd.params t) t.Spmd.grids;
    Mesh.norm_l2 (Spmd.gather t ~base:"res")
  in
  let r0 = res_norm () in
  for _ = 1 to 300 do
    smooth.Kernel.run ~params:(Spmd.params t) t.Spmd.grids
  done;
  let r1 = res_norm () in
  check_bool
    (Printf.sprintf "distributed relaxation converged (%.2e -> %.2e)" r0 r1)
    true
    (r1 < r0 /. 1e4)

let test_gather_scatter_roundtrip () =
  let t = Spmd.create ~rank_grid:[ 3; 2 ] ~local_n:4 in
  let global = Mesh.random ~seed:9 [| 14; 10 |] in
  Spmd.scatter t ~base:"u" global;
  let back = Spmd.gather t ~base:"u" in
  let d = ref 0. in
  Domain.iter
    (Domain.resolve_rect ~shape:[| 14; 10 |]
       (Domain.rect ~lo:[ 1; 1 ] ~hi:[ -1; -1 ] ()))
    (fun p -> d := Float.max !d (Float.abs (Mesh.get back p -. Mesh.get global p)));
  check_bool "roundtrip" true (!d = 0.)

(* ------------------------------------------------- pipelined execution *)

let fresh_spmd ~rank_grid ~local_n =
  let t = Spmd.create ~rank_grid ~local_n in
  Spmd.set_beta t beta_fn;
  Spmd.fill_interior t ~base:"f" f_fn;
  Spmd.fill_interior t ~base:"u" u_fn;
  t

let mesh_bitwise_equal a b =
  let d = ref true in
  Mesh.iteri a (fun p v -> if not (Float.equal v (Mesh.get b p)) then d := false);
  !d

let test_pipeline_certificate () =
  let t = Spmd.create ~rank_grid:[ 2 ] ~local_n:8 in
  let group = Spmd.gsrb_smooth_group t in
  let cert, diags = Pipeline.certify t group in
  (match cert with
  | None ->
      Alcotest.failf "2-rank GSRB should certify: %s" (Diagnostics.render diags)
  | Some c ->
      check_int "stages" 4 c.Pipeline_check.stages;
      check_int "ranks" 2 (List.length c.Pipeline_check.ranks);
      (* two halo faces per exchange, two exchanges *)
      check_int "channels" 4 (List.length c.Pipeline_check.channels);
      List.iter
        (fun (ch : Pipeline_check.channel) ->
          check_bool "depth positive" true (ch.Pipeline_check.depth >= 1))
        c.Pipeline_check.channels);
  check_bool "SF030 note present" true
    (List.exists (fun d -> d.Diagnostics.code = "SF030") diags)

let test_pipeline_depth0_is_sf031 () =
  let t = Spmd.create ~rank_grid:[ 2 ] ~local_n:8 in
  let group = Spmd.gsrb_smooth_group t in
  let cert, diags = Pipeline.certify ~depth_override:0 t group in
  check_bool "no certificate at depth 0" true (cert = None);
  match List.find_opt (fun d -> d.Diagnostics.code = "SF031") diags with
  | None -> Alcotest.failf "expected SF031: %s" (Diagnostics.render diags)
  | Some d ->
      check_bool "witness cycle printed" true
        (Diagnostics.is_error d
        &&
        let msg = d.Diagnostics.message in
        (* the witness names unrolled (wave, rank, stage) nodes *)
        String.length msg > 0
        && Option.is_some (String.index_opt msg '>')
        &&
        let has_sub sub =
          let n = String.length msg and m = String.length sub in
          let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
          go 0
        in
        has_sub "zero-slack cycle" && has_sub "wave ")

let pipeline_matches_bulk ~rank_grid ~local_n ~sweeps =
  let tb = fresh_spmd ~rank_grid ~local_n in
  for _ = 1 to sweeps do
    Spmd.run_group tb (Spmd.gsrb_smooth_group tb)
  done;
  let bulk = Spmd.gather tb ~base:"u" in
  List.iter
    (fun workers ->
      let tp = fresh_spmd ~rank_grid ~local_n in
      let config = Config.with_workers workers Config.default in
      let p = Pipeline.create ~config tp (Spmd.gsrb_smooth_group tp) in
      Pipeline.run ~sweeps p;
      let piped = Spmd.gather tp ~base:"u" in
      check_bool
        (Printf.sprintf "pipeline = bulk at %d worker(s)" workers)
        true
        (mesh_bitwise_equal bulk piped))
    [ 1; 4 ]

let test_pipeline_matches_bulk_1d () =
  pipeline_matches_bulk ~rank_grid:[ 2 ] ~local_n:8 ~sweeps:3

let test_pipeline_matches_bulk_2d_noncubic () =
  pipeline_matches_bulk ~rank_grid:[ 2; 1 ] ~local_n:6 ~sweeps:2

let test_pipeline_sf034_gate () =
  let t = fresh_spmd ~rank_grid:[ 2 ] ~local_n:8 in
  let p = Pipeline.create t (Spmd.gsrb_smooth_group t) in
  Pipeline.inject_undersize p;
  match Pipeline.run ~sweeps:1 p with
  | () -> Alcotest.fail "undersized ring executed"
  | exception Jit.Certification_failed { backend; diagnostics; _ } ->
      Alcotest.(check string) "backend" "pipeline" backend;
      check_bool "SF034 reported" true
        (List.exists (fun d -> d.Diagnostics.code = "SF034") diagnostics)

let test_pipeline_refuses_uncertified () =
  (* a cross-rank read buried inside arithmetic is not a streamable halo
     copy: certification fails with SF032 and create must refuse *)
  let dom = Domain.of_rect (Domain.rect ~lo:[ 1 ] ~hi:[ -1 ] ()) in
  let bad =
    Group.make ~label:"bad_pipe"
      [
        Stencil.make ~label:"mix@0" ~output:"a@0"
          ~expr:(Expr.neg (Expr.read "a@1" [| 8 |]))
          ~domain:dom ();
        Stencil.make ~label:"write@1" ~output:"a@1"
          ~expr:(Expr.read "a@1" [| 0 |])
          ~domain:dom ();
      ]
  in
  let t = Spmd.create ~rank_grid:[ 2 ] ~local_n:8 in
  Grids.add t.Spmd.grids "a@0" (Mesh.create t.Spmd.shape);
  Grids.add t.Spmd.grids "a@1" (Mesh.create t.Spmd.shape);
  match Pipeline.create t bad with
  | _ -> Alcotest.fail "uncertified plan accepted"
  | exception Jit.Certification_failed { backend; diagnostics; _ } ->
      Alcotest.(check string) "backend" "pipeline" backend;
      check_bool "SF032 reported" true
        (List.exists (fun d -> d.Diagnostics.code = "SF032") diagnostics)

let test_create_validation () =
  (try
     ignore (Spmd.create ~rank_grid:[ 2; 0 ] ~local_n:4);
     Alcotest.fail "zero rank accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Spmd.create ~rank_grid:[ 2 ] ~local_n:3);
    Alcotest.fail "odd local_n accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "sf_distributed"
    [
      ( "structure",
        [
          Alcotest.test_case "counts and names" `Quick test_structure;
          Alcotest.test_case "communication waves" `Quick test_waves;
          Alcotest.test_case "plan conflict-free" `Quick
            test_plan_conflict_free;
          Alcotest.test_case "gather/scatter" `Quick
            test_gather_scatter_roundtrip;
          Alcotest.test_case "validation" `Quick test_create_validation;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "2-d smooth = single domain" `Quick
            test_smooth_matches_single_domain_2d;
          Alcotest.test_case "3-d residual = single domain" `Quick
            test_residual_matches_single_domain_3d_noncubic;
          Alcotest.test_case "relaxation converges" `Quick
            test_distributed_relaxation_converges;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "certificate shape" `Quick
            test_pipeline_certificate;
          Alcotest.test_case "depth 0 is SF031 with witness" `Quick
            test_pipeline_depth0_is_sf031;
          Alcotest.test_case "1-d pipeline = bulk (1 and 4 workers)" `Quick
            test_pipeline_matches_bulk_1d;
          Alcotest.test_case "2x1 non-cubic pipeline = bulk" `Quick
            test_pipeline_matches_bulk_2d_noncubic;
          Alcotest.test_case "undersized ring trips SF034" `Quick
            test_pipeline_sf034_gate;
          Alcotest.test_case "uncertified plan refused" `Quick
            test_pipeline_refuses_uncertified;
        ] );
    ]
