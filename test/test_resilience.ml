(* sf_resilience unit tests: fault-spec grammar and triggering, guard
   scans, supervised retry/failover, the checkpoint ring, and the two
   end-to-end healing paths (Mg rollback, Spmd rank recovery).

   Every test disarms faults and clears the guard mode on exit — the
   alcotest runner shares process-wide resilience state. *)

open Sf_mesh
open Sf_backends
open Sf_resilience
module Mg = Sf_hpgmg.Mg
module Problem = Sf_hpgmg.Problem
module Spmd = Sf_distributed.Spmd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let clean f =
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Guard.clear_mode ();
      Fault.reset_counts ();
      Guard.reset_counts ();
      Supervisor.reset_counts ();
      Checkpoint.reset_counts ())
    f

(* ----------------------------------------------------------- fault spec *)

let test_fault_parse_roundtrip () =
  let spec = "kernel:raise@match=openmp,wave:transient@n=2@count=2" in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok clauses -> (
      check_int "two clauses" 2 (List.length clauses);
      let rendered = Fault.to_string clauses in
      match Fault.parse rendered with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok again ->
          check_string "round-trips" rendered (Fault.to_string again))

let test_fault_parse_rejects () =
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ "kernel"; "kernel:frobnicate"; "kernel:raise@p=nope"; ":raise"; "a:b:c" ]

let test_fault_nth_and_count () =
  clean (fun () ->
      (* @n= fires exactly on the n-th occurrence *)
      Fault.arm_exn "s:nan@n=3";
      let fired =
        List.init 6 (fun _ -> Fault.check ~site:"s" ~detail:"d" <> None)
      in
      Alcotest.(check (list bool))
        "occurrence 3 only"
        [ false; false; true; false; false; false ]
        fired;
      (* @count= caps total firings *)
      Fault.arm_exn "s:nan@count=2";
      let fired =
        List.init 5 (fun _ -> Fault.check ~site:"s" ~detail:"d" <> None)
      in
      Alcotest.(check (list bool))
        "first two occurrences only"
        [ true; true; false; false; false ]
        fired;
      check_int "injected_total" 3 (Fault.injected_total ()))

let test_fault_match_filter () =
  clean (fun () ->
      Fault.arm_exn "kernel:raise@match=openmp";
      check_bool "wrong detail ignored" true
        (Fault.check ~site:"kernel" ~detail:"compiled:g" = None);
      check_bool "wrong site ignored" true
        (Fault.check ~site:"wave" ~detail:"openmp:g" = None);
      check_bool "matching detail fires" true
        (Fault.check ~site:"kernel" ~detail:"openmp:g" = Some Fault.Raise))

let test_fault_probability_deterministic () =
  let draw () =
    Fault.arm_exn "s:nan@p=0.5@seed=7@count=inf";
    let pat =
      List.init 64 (fun _ -> Fault.check ~site:"s" ~detail:"" <> None)
    in
    Fault.disarm ();
    pat
  in
  clean (fun () ->
      let a = draw () and b = draw () in
      Alcotest.(check (list bool)) "same seed, same campaign" a b;
      check_bool "some fired" true (List.mem true a);
      check_bool "some skipped" true (List.mem false a))

let test_fault_fire_raises () =
  clean (fun () ->
      Fault.arm_exn "s:raise";
      try
        ignore (Fault.fire ~site:"s" ~detail:"d");
        Alcotest.fail "no exception"
      with Fault.Injected { site; detail; _ } ->
        check_string "site" "s" site;
        check_string "detail" "d" detail)

(* ---------------------------------------------------------------- guard *)

let test_guard_scan () =
  clean (fun () ->
      let m = Mesh.create [| 8; 8 |] in
      Guard.scan_mesh ~mode:Guard.Full ~name:"clean" m;
      Mesh.set_flat m 13 Float.nan;
      (try
         Guard.scan_mesh ~mode:Guard.Full ~name:"dirty" m;
         Alcotest.fail "full scan missed the NaN"
       with Guard.Tripped { grid; index; _ } ->
         check_string "grid" "dirty" grid;
         check_int "index" 13 index);
      (* the sampled scan always includes the last point *)
      let m2 = Mesh.create [| 64; 64; 64 |] in
      Mesh.set_flat m2 (Mesh.size m2 - 1) Float.infinity;
      (try
         Guard.scan_mesh ~mode:Guard.Sample ~name:"tail" m2;
         Alcotest.fail "sample scan missed the tail Inf"
       with Guard.Tripped _ -> ());
      check_int "trips counted" 2 (Guard.trips_total ()))

let test_guard_effective_modes () =
  clean (fun () ->
      check_bool "clean run: off" true (Guard.effective () = Guard.Off);
      Fault.arm_exn "s:nan";
      check_bool "armed faults imply Sample" true
        (Guard.effective () = Guard.Sample);
      Guard.set_mode Guard.Full;
      check_bool "forced mode wins" true (Guard.effective () = Guard.Full);
      Guard.clear_mode ();
      Fault.disarm ();
      check_bool "back off" true (Guard.effective () = Guard.Off))

(* ----------------------------------------------------------- supervisor *)

let fast_policy =
  { Supervisor.default_policy with retries = 2; backoff_us = 1. }

let test_supervisor_retry_heals () =
  clean (fun () ->
      let calls = ref 0 in
      let v =
        Supervisor.run ~policy:fast_policy ~name:"t"
          [
            ( "flaky",
              fun () ->
                incr calls;
                if !calls < 3 then failwith "transient" else 42 );
          ]
      in
      check_int "healed on third try" 42 v;
      check_int "two retries recorded" 2 (Supervisor.retries_total ());
      check_int "no failover" 0 (Supervisor.failovers_total ()))

let test_supervisor_failover () =
  clean (fun () ->
      let v =
        Supervisor.run ~policy:fast_policy ~name:"t"
          [
            ("broken", fun () -> failwith "persistent");
            ("backup", fun () -> "ok");
          ]
      in
      check_string "fell over" "ok" v;
      check_int "one failover" 1 (Supervisor.failovers_total ());
      (* chain exhausted: the last failure surfaces *)
      try
        Supervisor.run ~policy:fast_policy ~name:"t"
          [ ("a", fun () -> failwith "first"); ("b", fun () -> failwith "last") ]
      with Failure m -> check_string "last failure re-raised" "last" m)

let test_supervisor_fatal_not_absorbed () =
  clean (fun () ->
      try
        Supervisor.run ~policy:fast_policy ~name:"t"
          [ ("oom", fun () -> raise Out_of_memory); ("never", fun () -> ()) ]
      with Out_of_memory ->
        check_int "no retries on fatal" 0 (Supervisor.retries_total ()))

(* ----------------------------------------------------------- checkpoint *)

let test_checkpoint_ring () =
  clean (fun () ->
      let state = ref 0 in
      let ck =
        Checkpoint.create ~capacity:2 ~label:"t"
          ~alloc:(fun () -> ref 0)
          ~save:(fun buf -> buf := !state)
          ~restore:(fun buf -> state := !buf)
          ()
      in
      check_bool "empty ring: no rollback" true (Checkpoint.rollback ck = None);
      state := 1;
      Checkpoint.checkpoint ck ~tag:1;
      state := 2;
      Checkpoint.checkpoint ck ~tag:2;
      state := 3;
      (* capacity 2: tag 3 reuses tag 1's buffer *)
      Checkpoint.checkpoint ck ~tag:3;
      check_int "depth capped" 2 (Checkpoint.depth ck);
      check_int "taken counts all" 3 (Checkpoint.taken ck);
      state := 99;
      check_bool "rollback to newest" true (Checkpoint.rollback ck = Some 3);
      check_int "state restored" 3 !state;
      (* the snapshot stays: a second failure lands on the same point *)
      state := 99;
      check_bool "rollback again" true (Checkpoint.rollback ck = Some 3);
      check_int "state restored again" 3 !state;
      Checkpoint.discard_latest ck;
      check_bool "older snapshot exposed" true (Checkpoint.rollback ck = Some 2);
      check_int "older state" 2 !state;
      check_int "ring rollbacks" 3 (Checkpoint.rollbacks ck))

(* -------------------------------------------------- kernel error naming *)

let test_param_lookup_names_stencil () =
  let loc = Snowflake.Srcloc.stencil ~group:"gsrb" "red" in
  try
    ignore (Kernel.param_lookup ~loc [ ("a", 1.) ] "h2inv");
    Alcotest.fail "lookup succeeded"
  with Invalid_argument m ->
    check_bool
      (Printf.sprintf "message %S names the stencil" m)
      true
      (let has sub =
         let n = String.length sub and ln = String.length m in
         let rec go i = i + n <= ln && (String.sub m i n = sub || go (i + 1)) in
         go 0
       in
       has "h2inv" && has "gsrb/red")

(* ----------------------------------------------- end-to-end: Mg healing *)

let test_mg_solve_resilient_heals () =
  clean (fun () ->
      Jit.clear_cache ();
      let solve () =
        let solver = Mg.create ~n:16 () in
        Problem.setup_poisson (Mg.finest solver);
        let norms = Mg.solve_resilient ~cycles:4 solver in
        norms.(Array.length norms - 1)
      in
      let clean_r = solve () in
      (* one NaN mid-campaign: divergence detector must roll back and the
         final residual must match a fault-free solve's ballpark *)
      Fault.arm_exn "mg:nan@n=6@count=1";
      let faulted_r = solve () in
      Fault.disarm ();
      check_bool "fault actually injected" true (Fault.injected_total () > 0);
      check_bool "rollback happened" true (Checkpoint.rollbacks_total () > 0);
      check_bool
        (Printf.sprintf "healed: %.3e vs clean %.3e" faulted_r clean_r)
        true
        (Float.is_finite faulted_r && faulted_r <= 2. *. clean_r))

(* -------------------------------------------- end-to-end: rank recovery *)

let test_spmd_kill_and_recover () =
  clean (fun () ->
      Jit.clear_cache ();
      let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:8 in
      Spmd.fill_interior t ~base:"f" (fun x ->
          sin (10. *. x.(0)) +. cos (7. *. x.(1)));
      Spmd.init_dinv t;
      let smooth = Spmd.gsrb_smooth_group t in
      for _ = 1 to 4 do
        Spmd.run_group t smooth
      done;
      let before = Spmd.gather t ~base:"u" in
      Spmd.kill_rank t [| 1; 0 |];
      check_int "one dead rank" 1 (List.length (Spmd.dead_ranks t));
      (* survivors keep sweeping around the hole *)
      Spmd.run_group t (Spmd.gsrb_smooth_group t);
      check_int "recovered" 1 (Spmd.recover t);
      check_int "no dead ranks left" 0 (List.length (Spmd.dead_ranks t));
      let after = Spmd.gather t ~base:"u" in
      let n = Mesh.size after in
      let max_err = ref 0. in
      for i = 0 to n - 1 do
        let v = Mesh.get_flat after i in
        check_bool "finite after recovery" true (Float.is_finite v);
        max_err := Float.max !max_err (Float.abs (v -. Mesh.get_flat before i))
      done;
      (* the reconstruction is an approximation, but it must be in the
         neighbourhood of the lost solution, not garbage *)
      let scale =
        Array.fold_left
          (fun acc i -> Float.max acc (Float.abs (Mesh.get_flat before i)))
          0.
          (Array.init n (fun i -> i))
      in
      check_bool
        (Printf.sprintf "reconstruction close (max err %.3e, scale %.3e)"
           !max_err scale)
        true
        (!max_err <= 0.5 *. Float.max scale 1e-12))

let () =
  Alcotest.run "sf_resilience"
    [
      ( "fault",
        [
          Alcotest.test_case "spec round-trip" `Quick test_fault_parse_roundtrip;
          Alcotest.test_case "malformed specs rejected" `Quick
            test_fault_parse_rejects;
          Alcotest.test_case "nth + count triggers" `Quick
            test_fault_nth_and_count;
          Alcotest.test_case "match filter" `Quick test_fault_match_filter;
          Alcotest.test_case "probability deterministic" `Quick
            test_fault_probability_deterministic;
          Alcotest.test_case "fire raises Injected" `Quick
            test_fault_fire_raises;
        ] );
      ( "guard",
        [
          Alcotest.test_case "scan trips on NaN/Inf" `Quick test_guard_scan;
          Alcotest.test_case "effective mode precedence" `Quick
            test_guard_effective_modes;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "retry heals transient" `Quick
            test_supervisor_retry_heals;
          Alcotest.test_case "failover on persistent" `Quick
            test_supervisor_failover;
          Alcotest.test_case "fatal never absorbed" `Quick
            test_supervisor_fatal_not_absorbed;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "ring semantics" `Quick test_checkpoint_ring ] );
      ( "kernel",
        [
          Alcotest.test_case "param_lookup names stencil" `Quick
            test_param_lookup_names_stencil;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "mg rollback heals" `Quick
            test_mg_solve_resilient_heals;
          Alcotest.test_case "spmd rank recovery" `Quick
            test_spmd_kill_and_recover;
        ] );
    ]
