open Sf_util
open Snowflake

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let iv = Ivec.of_list

(* ---------------------------------------------------------------- sexp *)

let test_sexp_parse () =
  (match Sexp.parse "(a (b 1 -2) c)" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "1"; Sexp.Atom "-2" ]; Sexp.Atom "c" ]) ->
      ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string s)
  | Error e -> Alcotest.fail e);
  (* comments and whitespace *)
  (match Sexp.parse "; header\n( x ; inline\n  y )" with
  | Ok (Sexp.List [ Sexp.Atom "x"; Sexp.Atom "y" ]) -> ()
  | _ -> Alcotest.fail "comment handling");
  (* errors *)
  check_bool "unterminated" true (Result.is_error (Sexp.parse "(a (b"));
  check_bool "trailing" true (Result.is_error (Sexp.parse "(a) (b)"));
  check_bool "stray paren" true (Result.is_error (Sexp.parse ")"));
  match Sexp.parse_many "(a) (b c)" with
  | Ok [ _; _ ] -> ()
  | _ -> Alcotest.fail "parse_many"

let test_sexp_roundtrip_floats () =
  List.iter
    (fun f ->
      match Sexp.as_float (Sexp.float f) with
      | Ok f' -> check_bool (string_of_float f) true (f = f')
      | Error e -> Alcotest.fail e)
    [ 0.; 1.5; -3.25; 1. /. 3.; 1e-17; 6.02e23; 0.1 ]

let test_sexp_printer_parses_back () =
  let s =
    Sexp.list
      [ Sexp.atom "read"; Sexp.atom "beta_x"; Sexp.list [ Sexp.int (-1); Sexp.int 0 ] ]
  in
  match Sexp.parse (Sexp.to_string s) with
  | Ok s' -> check_bool "roundtrip" true (s = s')
  | Error e -> Alcotest.fail e

(* ----------------------------------------------------------- programs *)

let gsrb_2d () =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let mk color =
    Stencil.make
      ~label:(if color = 0 then "red" else "black")
      ~output:"mesh"
      ~expr:
        Expr.(
          Component.to_expr ~grid:"mesh" w *: param "lam"
          +: read "rhs" (iv [ 0; 0 ]))
      ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
      ()
  in
  Group.make ~label:"gsrb2d" [ mk 0; mk 1 ]

let test_group_roundtrip () =
  let g = gsrb_2d () in
  let text = Program_io.group_to_string g in
  match Program_io.group_of_string text with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      check_bool "structural equality" true (Group.equal g g');
      check_string "label" g.Group.label g'.Group.label;
      (* and the rendering is stable *)
      check_string "stable rendering" text (Program_io.group_to_string g')

let test_affine_roundtrip () =
  let s =
    Stencil.make ~label:"interp" ~output:"fine"
      ~out_map:(Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ -1 ]))
      ~expr:
        Expr.(
          read_affine "coarse" (Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 1 ]))
          +: read "fine" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let sexp = Program_io.stencil_to_sexp s in
  match Program_io.stencil_of_sexp sexp with
  | Ok s' -> check_bool "affine stencil roundtrip" true (Stencil.equal s s')
  | Error e -> Alcotest.fail e

let test_handwritten_program () =
  let text =
    {|
; the paper's 5-point smoother, written by hand
(group smooth5
  (stencil five_point
    (output out)
    (domain (rect (lo 1 1) (hi -1 -1)))
    (expr (* (const 0.25)
             (+ (read u (-1 0)) (read u (1 0))
                (read u (0 -1)) (read u (0 1)))))))
|}
  in
  match Program_io.group_of_string text with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "one stencil" 1 (Group.length g);
      let s = List.hd (Group.stencils g) in
      Alcotest.(check int) "four taps" 4 (List.length (Stencil.reads s));
      (* executable end to end *)
      let open Sf_mesh in
      let shape = iv [ 6; 6 ] in
      let grids =
        Grids.of_list
          [ ("u", Mesh.random ~seed:2 shape); ("out", Mesh.create shape) ]
      in
      let kernel =
        Sf_backends.Jit.compile Sf_backends.Jit.Compiled ~shape g
      in
      kernel.Sf_backends.Kernel.run grids;
      let u = Grids.find grids "u" in
      let expect =
        0.25
        *. (Mesh.get u [| 1; 2 |] +. Mesh.get u [| 3; 2 |]
          +. Mesh.get u [| 2; 1 |] +. Mesh.get u [| 2; 3 |])
      in
      Alcotest.(check (float 1e-12))
        "value" expect
        (Mesh.get (Grids.find grids "out") [| 2; 2 |])

let test_decode_errors () =
  let cases =
    [
      "(group g)";
      "(group g (stencil s (output o) (expr (const 1))))";
      (* missing domain *)
      "(group g (stencil s (domain (rect (lo 0) (hi 4))) (expr (const 1))))";
      (* missing output *)
      "(group g (stencil s (output o) (domain (rect (lo 0) (hi 4))) (expr (bogus))))";
      "(group g (stencil s (output o) (domain (rect (lo 0 0) (hi 4))) (expr (const 1))))";
      (* rank mismatch in rect *)
    ]
  in
  List.iter
    (fun text ->
      match Program_io.group_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad program: %s" text)
    cases

(* random expression roundtrip *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        (float_range (-4.) 4. >|= fun c -> Expr.Const c);
        ( pair (oneofl [ "u"; "beta_x" ]) (pair (int_range (-2) 2) (int_range (-2) 2))
        >|= fun (g, (a, b)) -> Expr.read g (iv [ a; b ]) );
        (oneofl [ "lam"; "inv_h2" ] >|= fun p -> Expr.Param p);
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            let* a = go (depth - 1) and* b = go (depth - 1) in
            oneofl Expr.[ a +: b; a -: b; a *: b; a /: b ] );
          (1, go (depth - 1) >|= Expr.neg);
        ]
  in
  go 4

let io_props =
  [
    QCheck.Test.make ~name:"expr sexp roundtrip" ~count:500
      (QCheck.make ~print:Expr.to_string expr_gen)
      (fun e ->
        match Program_io.expr_of_sexp (Program_io.expr_to_sexp e) with
        | Ok e' -> Expr.equal e e'
        | Error _ -> false);
    QCheck.Test.make ~name:"printed program reparses" ~count:200
      (QCheck.make ~print:Expr.to_string expr_gen)
      (fun e ->
        let s =
          Stencil.make ~label:"s" ~output:"out" ~expr:e
            ~domain:(Domain.interior 2 ~ghost:2)
            ()
        in
        let g = Group.make ~label:"g" [ s ] in
        match Program_io.group_of_string (Program_io.group_to_string g) with
        | Ok g' ->
            (* expressions are simplified by Stencil.make on both paths, so
               compare the stored (already simplified) forms *)
            Group.equal g g'
        | Error _ -> false);
  ]

(* the fuzzer's generated programs, which cover much more of the surface
   than the handwritten cases (strided/union/face domains, affine reads
   and out-maps, chained groups), must survive parse ∘ print = id too *)
let test_generated_program_roundtrip () =
  for seed = 0 to 99 do
    let spec = Sf_fuzz.Gen.spec ~seed () in
    let g = spec.Sf_fuzz.Gen.group in
    let text = Program_io.group_to_string g in
    match Program_io.group_of_string text with
    | Error e -> Alcotest.failf "seed %d: reparse failed: %s\n%s" seed e text
    | Ok g' ->
        check_bool
          (Printf.sprintf "seed %d structural roundtrip" seed)
          true (Group.equal g g');
        check_string
          (Printf.sprintf "seed %d stable rendering" seed)
          text
          (Program_io.group_to_string g')
  done

let () =
  Alcotest.run "program_io"
    [
      ( "sexp",
        [
          Alcotest.test_case "parse" `Quick test_sexp_parse;
          Alcotest.test_case "floats" `Quick test_sexp_roundtrip_floats;
          Alcotest.test_case "print/parse" `Quick
            test_sexp_printer_parses_back;
        ] );
      ( "programs",
        [
          Alcotest.test_case "group roundtrip" `Quick test_group_roundtrip;
          Alcotest.test_case "affine roundtrip" `Quick test_affine_roundtrip;
          Alcotest.test_case "handwritten program" `Quick
            test_handwritten_program;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "100 generated programs roundtrip" `Quick
            test_generated_program_roundtrip;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest io_props);
    ]
