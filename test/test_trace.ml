(* Tests for the sf_trace substrate: span nesting and attribution across
   all four backends, counter exactness against the analytic domain size,
   the disabled-mode zero-overhead contract, and the Chrome trace_event
   JSON export. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends
open Sf_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let iv = Ivec.of_list

(* a 2-stencil red/black in-place group with a per-test unique label, so
   events are attributable even though the jit cache is shared *)
let two_stencil_group label =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let mk color =
    Stencil.make
      ~label:(Printf.sprintf "%s_c%d" label color)
      ~output:"mesh"
      ~expr:(Component.to_expr ~grid:"mesh" w)
      ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
      ()
  in
  Group.make ~label [ mk 0; mk 1 ]

let group_cells ~shape group =
  List.fold_left
    (fun acc s ->
      acc + Domain.npoints_union (Domain.resolve ~shape s.Stencil.domain))
    0 (Group.stencils group)

let mk_grids shape = Grids.of_list [ ("mesh", Mesh.random ~seed:7 shape) ]

let arg_str key args =
  match List.assoc_opt key args with
  | Some (Trace.Str s) -> Some s
  | _ -> None

let arg_int key args =
  match List.assoc_opt key args with
  | Some (Trace.Int i) -> Some i
  | _ -> None

let backends =
  [
    (Jit.Interp, Config.default);
    (Jit.Compiled, Config.default);
    (Jit.Openmp, Config.with_workers 2 Config.default);
    (Jit.Opencl, Config.default);
  ]

(* ------------------------------------------------- nesting/attribution *)

let test_span_nesting_all_backends () =
  Jit.clear_cache ();
  let shape = iv [ 12; 12 ] in
  List.iter
    (fun (backend, config) ->
      let bname = Jit.backend_name backend in
      let label = "trace2_" ^ bname in
      let group = two_stencil_group label in
      Trace.with_enabled true (fun () ->
          Trace.clear ();
          let kernel = Jit.compile ~config backend ~shape group in
          kernel.Kernel.run (mk_grids shape);
          let events = Trace.events () in
          let kernels =
            List.filter
              (fun e -> e.Trace.kind = Trace.Kernel && e.Trace.name = label)
              events
          in
          check_int (bname ^ ": one kernel span") 1 (List.length kernels);
          let k = List.hd kernels in
          Alcotest.(check (option string))
            (bname ^ ": backend attributed")
            (Some bname)
            (arg_str "backend" k.Trace.args);
          Alcotest.(check (option string))
            (bname ^ ": group attributed")
            (Some label)
            (arg_str "group" k.Trace.args);
          check_bool
            (bname ^ ": cells/flops/bytes annotated")
            true
            (List.for_all
               (fun key -> arg_int key k.Trace.args <> None)
               [ "cells"; "flops"; "bytes" ]);
          (* two stencils, sequential semantics or colored waves: every
             wave span of this group nests inside the kernel span *)
          let waves =
            List.filter
              (fun e ->
                e.Trace.kind = Trace.Wave
                && arg_str "group" e.Trace.args = Some label)
              events
          in
          check_int (bname ^ ": one wave per stencil") 2 (List.length waves);
          let k_end = k.Trace.ts_us +. k.Trace.dur_us in
          List.iter
            (fun w ->
              check_bool
                (bname ^ ": wave nested in kernel")
                true
                (w.Trace.ts_us >= k.Trace.ts_us -. 1.0
                && w.Trace.ts_us +. w.Trace.dur_us <= k_end +. 1.0))
            waves))
    backends

let test_compile_span_and_cache_counters () =
  Jit.clear_cache ();
  let shape = iv [ 10; 10 ] in
  let group = two_stencil_group "trace_cachectr" in
  Trace.with_enabled true (fun () ->
      Trace.clear ();
      ignore (Jit.compile Jit.Compiled ~shape group);
      let c = Trace.counters () in
      check_int "first compile is a miss" 1 c.Trace.cache_misses;
      check_bool "compile span recorded" true
        (List.exists
           (fun e ->
             e.Trace.kind = Trace.Compile
             && e.Trace.name = "compile:trace_cachectr")
           (Trace.events ()));
      ignore (Jit.compile Jit.Compiled ~shape group);
      let c = Trace.counters () in
      check_int "second compile hits" 1 c.Trace.cache_hits;
      check_int "still one miss" 1 c.Trace.cache_misses)

(* ---------------------------------------------------- counter exactness *)

let test_cells_updated_exact () =
  Jit.clear_cache ();
  let shape = iv [ 14; 11 ] in
  List.iter
    (fun (backend, config) ->
      let bname = Jit.backend_name backend in
      let label = "trace_cells_" ^ bname in
      let group = two_stencil_group label in
      let expected = group_cells ~shape group in
      Trace.with_enabled true (fun () ->
          Trace.clear ();
          let kernel = Jit.compile ~config backend ~shape group in
          let grids = mk_grids shape in
          kernel.Kernel.run grids;
          check_int
            (bname ^ ": cells = domain size")
            expected
            (Trace.counters ()).Trace.cells_updated;
          kernel.Kernel.run grids;
          check_int
            (bname ^ ": cells accumulate per run")
            (2 * expected)
            (Trace.counters ()).Trace.cells_updated))
    backends

let test_pool_counters_mirrored () =
  Jit.clear_cache ();
  let shape = iv [ 48; 48 ] in
  let group = two_stencil_group "trace_poolctr" in
  let config =
    { (Config.with_workers 3 Config.default) with Config.serial_cutoff = 1 }
  in
  Trace.with_enabled true (fun () ->
      Trace.clear ();
      let kernel = Jit.compile ~config Jit.Openmp ~shape group in
      kernel.Kernel.run (mk_grids shape);
      let c = Trace.counters () in
      check_bool "chunks dispatched mirrored" true (c.Trace.chunks_dispatched > 0);
      check_bool "chunk spans recorded" true
        (List.exists (fun e -> e.Trace.kind = Trace.Chunk) (Trace.events ())));
  (* inline fallbacks mirror too: a below-cutoff wave *)
  Trace.with_enabled true (fun () ->
      Trace.clear ();
      let pool = Pool.create ~workers:4 |> Pool.with_serial_cutoff 1_000_000 in
      Pool.run_tasks ~points:10 pool [| (fun () -> ()); (fun () -> ()) |];
      check_bool "inline fallback mirrored" true
        ((Trace.counters ()).Trace.inline_fallbacks > 0))

(* ------------------------------------------------------ disabled mode *)

let test_disabled_records_nothing () =
  Jit.clear_cache ();
  let shape = iv [ 12; 12 ] in
  let group = two_stencil_group "trace_off" in
  Trace.with_enabled true (fun () -> Trace.clear ());
  Trace.with_enabled false (fun () ->
      let kernel =
        Jit.compile ~config:(Config.with_workers 2 Config.default) Jit.Openmp
          ~shape group
      in
      kernel.Kernel.run (mk_grids shape);
      Trace.add Trace.Cells_updated 42;
      Trace.record_span Trace.Phase "ghost" ~ts_us:0. ~dur_us:1.;
      ignore (Trace.span Trace.Phase "ghost2" (fun () -> 1)));
  Trace.with_enabled true (fun () ->
      check_int "no events recorded while off" 0
        (List.length (Trace.events ()));
      let c = Trace.counters () in
      check_int "no cells counted while off" 0 c.Trace.cells_updated;
      check_int "no dispatch counted while off" 0 c.Trace.chunks_dispatched)

let test_disabled_overhead_bound () =
  (* the hot-path guard is one atomic load and a branch: 50M iterations
     must complete in well under a second even on a loaded machine.  This
     is a generous absolute bound, not a flaky relative one — a guard
     that allocates args or takes a lock misses it by orders of
     magnitude. *)
  Trace.with_enabled false (fun () ->
      let t0 = Unix.gettimeofday () in
      let hits = ref 0 in
      for _ = 1 to 50_000_000 do
        if Trace.on () then incr hits
      done;
      let dt = Unix.gettimeofday () -. t0 in
      check_int "guard never fires" 0 !hits;
      check_bool
        (Printf.sprintf "50M disabled checks in %.3fs < 2s" dt)
        true (dt < 2.0))

(* ------------------------------------------------------- chrome export *)

let test_chrome_json_roundtrip () =
  Jit.clear_cache ();
  let shape = iv [ 12; 12 ] in
  let group = two_stencil_group "trace_chrome" in
  Trace.with_enabled true (fun () ->
      Trace.clear ();
      Trace.set_bandwidth_gbs 10.0;
      let kernel = Jit.compile Jit.Compiled ~shape group in
      kernel.Kernel.run (mk_grids shape);
      let doc = Trace.to_chrome_json () in
      (* parseable and exact through print/parse *)
      (match Json.of_string (Json.to_string doc) with
      | Ok j -> check_bool "round-trips exactly" true (Json.equal j doc)
      | Error e -> Alcotest.failf "chrome json does not reparse: %s" e);
      (* kernel spans carry the roofline join once bandwidth is known *)
      (match Json.member "traceEvents" doc with
      | Some (Json.Arr evs) ->
          check_bool "nonempty traceEvents" true (evs <> []);
          let kernel_evs =
            List.filter
              (fun e -> Json.member "cat" e = Some (Json.Str "kernel"))
              evs
          in
          check_bool "has kernel events" true (kernel_evs <> []);
          List.iter
            (fun e ->
              match Json.member "args" e with
              | Some args ->
                  check_bool "pct_roofline_peak annotated" true
                    (match Json.member "pct_roofline_peak" args with
                    | Some (Json.Num _) -> true
                    | _ -> false)
              | None -> Alcotest.fail "kernel event without args")
            kernel_evs
      | _ -> Alcotest.fail "no traceEvents array");
      Trace.set_bandwidth_gbs 0.;
      (* file export parses too *)
      let path = Filename.temp_file "sftrace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.write_chrome_json path;
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Json.of_string text with
          | Ok j -> check_bool "file equals document" true (Json.equal j doc)
          | Error e -> Alcotest.failf "exported file does not parse: %s" e))

(* summary aggregation feeds the report table *)
let test_summary_aggregates () =
  Jit.clear_cache ();
  let shape = iv [ 12; 12 ] in
  let group = two_stencil_group "trace_sum" in
  Trace.with_enabled true (fun () ->
      Trace.clear ();
      let kernel = Jit.compile Jit.Compiled ~shape group in
      let grids = mk_grids shape in
      kernel.Kernel.run grids;
      kernel.Kernel.run grids;
      match
        List.find_opt
          (fun a -> a.Trace.akind = Trace.Kernel && a.Trace.aname = "trace_sum")
          (Trace.summary ())
      with
      | None -> Alcotest.fail "kernel row missing from summary"
      | Some a ->
          check_int "two calls aggregated" 2 a.Trace.calls;
          check_bool "cells summed" true
            (int_of_float a.Trace.acells
            = 2 * group_cells ~shape group);
          check_bool "positive time" true (a.Trace.total_us > 0.))

let () =
  Alcotest.run "sf_trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting + attribution (4 backends)" `Quick
            test_span_nesting_all_backends;
          Alcotest.test_case "compile span + cache counters" `Quick
            test_compile_span_and_cache_counters;
        ] );
      ( "counters",
        [
          Alcotest.test_case "cells = domain size" `Quick
            test_cells_updated_exact;
          Alcotest.test_case "pool counters mirrored" `Quick
            test_pool_counters_mirrored;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "overhead bound" `Quick
            test_disabled_overhead_bound;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json round-trip" `Quick
            test_chrome_json_roundtrip;
          Alcotest.test_case "summary aggregates" `Quick
            test_summary_aggregates;
        ] );
    ]
