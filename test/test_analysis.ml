open Sf_util
open Snowflake
open Sf_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let iv = Ivec.of_list

(* --------------------------------------------------------------- Dioph *)

let test_egcd () =
  let g, x, y = Dioph.egcd 240 46 in
  check_int "gcd" 2 g;
  check_int "bezout" 2 ((240 * x) + (46 * y));
  let g, _, _ = Dioph.egcd 0 0 in
  check_int "egcd 0 0" 0 g;
  check_int "gcd neg" 3 (Dioph.gcd (-9) 6);
  check_int "lcm" 12 (Dioph.lcm 4 6);
  check_int "lcm zero" 0 (Dioph.lcm 0 5)

let test_solve2 () =
  (match Dioph.solve2 ~a:3 ~b:5 ~c:1 with
  | Some (x, y) -> check_int "3x+5y=1" 1 ((3 * x) + (5 * y))
  | None -> Alcotest.fail "solvable reported unsolvable");
  check_bool "unsolvable" true (Dioph.solve2 ~a:2 ~b:4 ~c:3 = None);
  check_bool "degenerate zero" true (Dioph.solve2 ~a:0 ~b:0 ~c:0 <> None);
  check_bool "degenerate nonzero" true (Dioph.solve2 ~a:0 ~b:0 ~c:7 = None)

let test_progression_basic () =
  let p = Dioph.progression ~start:3 ~step:4 ~count:5 in
  check_bool "mem start" true (Dioph.mem p 3);
  check_bool "mem last" true (Dioph.mem p 19);
  check_bool "mem middle" true (Dioph.mem p 11);
  check_bool "not mem off-stride" false (Dioph.mem p 4);
  check_bool "not mem beyond" false (Dioph.mem p 23);
  Alcotest.(check (list int)) "elements" [ 3; 7; 11; 15; 19 ]
    (Dioph.elements p);
  check_bool "last" true (Dioph.last p = Some 19);
  check_bool "empty last" true
    (Dioph.last (Dioph.progression ~start:0 ~step:1 ~count:0) = None)

let test_intersect_examples () =
  let p1 = Dioph.progression ~start:0 ~step:2 ~count:10 (* 0..18 even *) in
  let p2 = Dioph.progression ~start:1 ~step:2 ~count:10 (* 1..19 odd *) in
  check_bool "red/black disjoint" true (Dioph.disjoint p1 p2);
  let p3 = Dioph.progression ~start:3 ~step:3 ~count:6 (* 3..18 by 3 *) in
  (match Dioph.intersect p1 p3 with
  | Some q ->
      Alcotest.(check (list int)) "6 12 18" [ 6; 12; 18 ] (Dioph.elements q)
  | None -> Alcotest.fail "expected intersection");
  (* compatible residues, disjoint ranges: finite analysis must say no *)
  let far = Dioph.progression ~start:100 ~step:2 ~count:5 in
  check_bool "disjoint ranges" true (Dioph.disjoint p1 far)

let brute_intersect p1 p2 =
  let e2 = Dioph.elements p2 in
  List.filter (fun x -> List.mem x e2) (Dioph.elements p1)

let prog_gen =
  QCheck.Gen.(
    map3
      (fun start step count -> Dioph.progression ~start ~step ~count)
      (int_range (-30) 30) (int_range 1 7) (int_range 0 12))

let prog_arb =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "{start=%d;step=%d;count=%d}" p.Dioph.start p.Dioph.step
        p.Dioph.count)
    prog_gen

let dioph_props =
  [
    QCheck.Test.make ~name:"intersect matches brute force" ~count:2000
      (QCheck.pair prog_arb prog_arb) (fun (p1, p2) ->
        let expected = brute_intersect p1 p2 in
        let got =
          match Dioph.intersect p1 p2 with
          | None -> []
          | Some q -> Dioph.elements q
        in
        got = expected);
    QCheck.Test.make ~name:"intersect commutative" ~count:1000
      (QCheck.pair prog_arb prog_arb) (fun (p1, p2) ->
        let norm = function None -> [] | Some q -> Dioph.elements q in
        norm (Dioph.intersect p1 p2) = norm (Dioph.intersect p2 p1));
    QCheck.Test.make ~name:"intersect idempotent" ~count:500 prog_arb
      (fun p ->
        let norm = function None -> [] | Some q -> Dioph.elements q in
        norm (Dioph.intersect p p) = Dioph.elements p);
    QCheck.Test.make ~name:"egcd is a Bezout identity" ~count:2000
      QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
      (fun (a, b) ->
        let g, x, y = Dioph.egcd a b in
        (a * x) + (b * y) = g
        && g >= 0
        && (g = 0 || (a mod g = 0 && b mod g = 0)));
  ]

(* ----------------------------------------------------------- Footprint *)

let test_affine_image () =
  let r =
    Domain.resolve_rect ~shape:(iv [ 10 ])
      (Domain.rect ~stride:[ 2 ] ~lo:[ 1 ] ~hi:[ 8 ] ())
  in
  (* points 1 3 5 7; image under 2x+1 = 3 7 11 15 *)
  let m = Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 1 ]) in
  let img = Footprint.affine_image m r in
  Alcotest.(check (list (list int)))
    "image points"
    [ [ 3 ]; [ 7 ]; [ 11 ]; [ 15 ] ]
    (List.map Ivec.to_list (Domain.to_list img))

let test_affine_image_broadcast () =
  let r =
    Domain.resolve_rect ~shape:(iv [ 5 ]) (Domain.rect ~lo:[ 0 ] ~hi:[ 5 ] ())
  in
  let m = Affine.make ~scale:(iv [ 0 ]) ~offset:(iv [ 2 ]) in
  let img = Footprint.affine_image m r in
  Alcotest.(check (list (list int))) "collapsed" [ [ 2 ] ]
    (List.map Ivec.to_list (Domain.to_list img))

let resolved_rect_gen =
  (* small 2-D strided rect within shape 12x12 *)
  QCheck.Gen.(
    let axis =
      map3
        (fun lo len s -> (lo, min 12 (lo + len), s))
        (int_range 0 5) (int_range 0 8) (int_range 1 3)
    in
    map2
      (fun (lo0, hi0, s0) (lo1, hi1, s1) ->
        Domain.resolve_rect ~shape:(Ivec.of_list [ 12; 12 ])
          (Domain.rect ~stride:[ s0; s1 ] ~lo:[ lo0; lo1 ] ~hi:[ hi0; hi1 ] ()))
      axis axis)

let resolved_arb =
  QCheck.make
    ~print:(fun r ->
      Printf.sprintf "lo=%s hi=%s stride=%s"
        (Ivec.to_string r.Domain.rlo)
        (Ivec.to_string r.Domain.rhi)
        (Ivec.to_string r.Domain.rstride))
    resolved_rect_gen

let brute_rects_intersect a b =
  let pts_b = Domain.to_list b in
  List.exists (fun p -> List.exists (Ivec.equal p) pts_b) (Domain.to_list a)

let affine_map_gen =
  QCheck.Gen.(
    map2
      (fun (s0, s1) (o0, o1) ->
        Affine.make ~scale:(iv [ s0; s1 ]) ~offset:(iv [ o0; o1 ]))
      (pair (int_range 0 3) (int_range 0 3))
      (pair (int_range (-4) 4) (int_range (-4) 4)))

let footprint_props =
  [
    QCheck.Test.make ~name:"affine_image matches point-wise mapping"
      ~count:500
      (QCheck.pair resolved_arb
         (QCheck.make
            ~print:(fun m -> Format.asprintf "%a" Affine.pp m)
            affine_map_gen))
      (fun (r, m) ->
        let brute =
          Domain.to_list r |> List.map (Affine.apply m)
          |> List.sort_uniq Ivec.compare
        in
        let image =
          Domain.to_list (Footprint.affine_image m r)
          |> List.sort_uniq Ivec.compare
        in
        List.length brute = List.length image
        && List.for_all2 Ivec.equal brute image);
    QCheck.Test.make ~name:"rects_intersect matches brute force" ~count:800
      (QCheck.pair resolved_arb resolved_arb) (fun (a, b) ->
        Footprint.rects_intersect a b = brute_rects_intersect a b);
    QCheck.Test.make ~name:"intersection count matches brute force" ~count:400
      (QCheck.pair resolved_arb resolved_arb) (fun (a, b) ->
        let brute =
          let pts_b = Domain.to_list b in
          List.length
            (List.filter
               (fun p -> List.exists (Ivec.equal p) pts_b)
               (Domain.to_list a))
        in
        Footprint.rects_intersection_count a b = brute);
  ]

(* ---------------------------------------------------- Dependence: GSRB *)

let shape2 = iv [ 10; 10 ]

let vc_gsrb_color color =
  (* in-place 5-point stencil over one colour of the checkerboard *)
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let expr = Component.to_expr ~grid:"mesh" w in
  Stencil.make
    ~label:(if color = 0 then "red" else "black")
    ~output:"mesh" ~expr
    ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
    ()

let test_gsrb_color_point_parallel () =
  (* one colour sweep reads only the other colour: point-parallel *)
  check_bool "red parallel" true
    (Dependence.point_parallel ~shape:shape2 (vc_gsrb_color 0));
  check_bool "black parallel" true
    (Dependence.point_parallel ~shape:shape2 (vc_gsrb_color 1))

let test_full_gauss_seidel_not_parallel () =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let s =
    Stencil.make ~label:"gs" ~output:"mesh"
      ~expr:(Component.to_expr ~grid:"mesh" w)
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  check_bool "full GS not parallel" false
    (Dependence.point_parallel ~shape:shape2 s);
  check_int "4 conflicting offsets" 4
    (List.length (Dependence.self_conflicts ~shape:shape2 s))

let test_jacobi_out_of_place_parallel () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  let s =
    Stencil.make ~label:"jacobi" ~output:"out"
      ~expr:(Component.to_expr ~grid:"u" w)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  check_bool "parallel" true (Dependence.point_parallel ~shape:(iv [ 20 ]) s)

let test_red_black_cross_dependence () =
  let red = vc_gsrb_color 0 and black = vc_gsrb_color 1 in
  (* black reads red's writes: RAW; black also writes cells red read: WAR *)
  let ks = Dependence.conflicts ~shape:shape2 ~before:red ~after:black in
  check_bool "raw present" true (List.mem Dependence.Raw ks);
  check_bool "war present" true (List.mem Dependence.War ks);
  check_bool "no waw (disjoint colours)" false (List.mem Dependence.Waw ks)

let test_boundary_interior_independence () =
  (* Two edge stencils on opposite faces touch disjoint finite lattices and
     are independent — the finite-domain property an infinite-interval
     analysis cannot see (paper §III, §VI). *)
  let interior =
    Stencil.make ~label:"interior" ~output:"out"
      ~expr:(Expr.read "mesh" (iv [ 0; 0 ]))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let top_boundary =
    (* writes row 0 from row 1: ghost <- -interior_edge *)
    Stencil.make ~label:"top" ~output:"mesh"
      ~expr:(Expr.neg (Expr.read "mesh" (iv [ 1; 0 ])))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0; 1 ] ~hi:[ 1; -1 ] ()))
      ()
  in
  let bottom_boundary =
    Stencil.make ~label:"bottom" ~output:"mesh"
      ~expr:(Expr.neg (Expr.read "mesh" (iv [ -1; 0 ])))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ -1; 1 ] ~hi:[ 0; -1 ] ()))
      ()
  in
  check_bool "opposite edges independent" true
    (Dependence.independent ~shape:shape2 top_boundary bottom_boundary);
  (* interior stencil reads only the interior: independent of the top edge *)
  check_bool "ghost-only writes vs interior reads" true
    (Dependence.independent ~shape:shape2 top_boundary interior)

let test_restriction_footprint () =
  (* coarse(x) = avg fine(2x + o): non-unit-scale reads analysed exactly *)
  let expr =
    Expr.(
      (read_affine "fine" (Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 0 ]))
      +: read_affine "fine" (Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 1 ]))
      )
      *: const 0.5)
  in
  let s =
    Stencil.make ~label:"restrict" ~output:"coarse" ~expr
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 4 ] ()))
      ()
  in
  let reads = Footprint.read_footprint ~shape:(iv [ 4 ]) s in
  match reads with
  | [ ("fine", lattices) ] ->
      (* coarse iteration 0..3 reads fine 0..7: both even and odd lattices *)
      let all =
        List.concat_map Domain.to_list lattices
        |> List.map (fun p -> p.(0))
        |> List.sort_uniq compare
      in
      Alcotest.(check (list int))
        "fine cells read"
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        all
  | _ -> Alcotest.fail "unexpected read footprint"

let test_check_in_bounds () =
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let grid_shape _ = iv [ 8 ] in
  check_bool "fits" true
    (Footprint.check_in_bounds ~shape:(iv [ 8 ]) ~grid_shape s = Ok ());
  (* same stencil over the full domain escapes *)
  let bad =
    Stencil.make ~label:"lap-bad" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  check_bool "escapes" true
    (match Footprint.check_in_bounds ~shape:(iv [ 8 ]) ~grid_shape bad with
    | Error _ -> true
    | Ok () -> false)

let test_union_self_disjoint () =
  check_bool "red union disjoint" true
    (Footprint.union_self_disjoint ~shape:shape2 (vc_gsrb_color 0));
  let overlapping =
    Stencil.make ~label:"overlap" ~output:"o" ~expr:(Expr.const 1.)
      ~domain:
        Domain.(
          of_rect (rect ~lo:[ 0 ] ~hi:[ 5 ] ())
          ++ of_rect (rect ~lo:[ 3 ] ~hi:[ 8 ] ()))
      ()
  in
  check_bool "overlapping union detected" false
    (Footprint.union_self_disjoint ~shape:(iv [ 10 ]) overlapping)

(* ------------------------------------------------------------ Schedule *)

let dirichlet_boundaries_2d () =
  (* four edge stencils writing the ghost ring *)
  let mk label lo hi off =
    Stencil.make ~label ~output:"mesh"
      ~expr:(Expr.neg (Expr.read "mesh" (iv off)))
      ~domain:(Domain.of_rect (Domain.rect ~lo ~hi ()))
      ()
  in
  [
    mk "top" [ 0; 1 ] [ 1; -1 ] [ 1; 0 ];
    mk "bottom" [ -1; 1 ] [ 0; -1 ] [ -1; 0 ];
    mk "left" [ 1; 0 ] [ -1; 1 ] [ 0; 1 ];
    mk "right" [ 1; -1 ] [ -1; 0 ] [ 0; -1 ];
  ]

let test_waves_boundaries_parallel () =
  (* 4 independent edges + red (depends on edges) + black *)
  let group =
    Group.make ~label:"smooth"
      (dirichlet_boundaries_2d () @ [ vc_gsrb_color 0; vc_gsrb_color 1 ])
  in
  let waves = Schedule.greedy_waves ~shape:shape2 group in
  check_int "three waves" 3 (List.length waves);
  Alcotest.(check (list int)) "edges together" [ 0; 1; 2; 3 ]
    (List.nth waves 0);
  Alcotest.(check (list int)) "red alone" [ 4 ] (List.nth waves 1);
  Alcotest.(check (list int)) "black alone" [ 5 ] (List.nth waves 2)

let test_waves_cover_all () =
  let group =
    Group.make ~label:"smooth"
      (dirichlet_boundaries_2d () @ [ vc_gsrb_color 0; vc_gsrb_color 1 ])
  in
  let waves = Schedule.greedy_waves ~shape:shape2 group in
  Alcotest.(check (list int)) "concat is program order" [ 0; 1; 2; 3; 4; 5 ]
    (List.concat waves)

let test_dag_build () =
  let group = Group.make ~label:"g" [ vc_gsrb_color 0; vc_gsrb_color 1 ] in
  let dag = Schedule.build_dag ~shape:shape2 group in
  check_int "one edge" 1 (List.length dag.Schedule.edges);
  Alcotest.(check (list int)) "preds of black" [ 0 ]
    (Schedule.predecessors dag 1);
  Alcotest.(check (list int)) "succs of red" [ 1 ] (Schedule.successors dag 0);
  let waves = Schedule.dag_waves dag in
  check_int "two levels" 2 (List.length waves)

let test_dead_elimination () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  let dead =
    Stencil.make ~label:"dead" ~output:"scratch"
      ~expr:(Component.to_expr ~grid:"u" w)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let live =
    Stencil.make ~label:"live" ~output:"out"
      ~expr:(Component.to_expr ~grid:"u" w)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let group = Group.make ~label:"g" [ dead; live ] in
  Alcotest.(check (list int)) "dead detected" [ 0 ]
    (Schedule.dead_stencils ~shape:(iv [ 10 ]) ~live:[ "out" ] group);
  let cleaned =
    Schedule.eliminate_dead ~shape:(iv [ 10 ]) ~live:[ "out" ] group
  in
  check_int "one left" 1 (Group.length cleaned);
  (* chain: a feeds b, b unread: both die *)
  let a =
    Stencil.make ~label:"a" ~output:"t1"
      ~expr:(Component.to_expr ~grid:"u" w)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let b =
    Stencil.make ~label:"b" ~output:"t2"
      ~expr:(Component.to_expr ~grid:"t1" w)
      ~domain:(Domain.interior 1 ~ghost:2)
      ()
  in
  let chain = Group.make ~label:"chain" [ a; b; live ] in
  let cleaned =
    Schedule.eliminate_dead ~shape:(iv [ 10 ]) ~live:[ "out" ] chain
  in
  check_int "chain collapsed" 1 (Group.length cleaned)

let test_fusion () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  let dom = Domain.interior 1 ~ghost:1 in
  let s1 =
    Stencil.make ~label:"s1" ~output:"tmp"
      ~expr:(Component.to_expr ~grid:"u" w)
      ~domain:dom ()
  in
  let s2 =
    Stencil.make ~label:"s2" ~output:"out"
      ~expr:Expr.(read "tmp" (iv [ 0 ]) *: const 2.)
      ~domain:dom ()
  in
  check_bool "fusable" true (Schedule.can_fuse ~shape:(iv [ 10 ]) s1 s2);
  let fused = Schedule.fuse s1 s2 in
  Alcotest.(check (list string)) "fused reads u only" [ "u" ]
    (Stencil.grids_read fused);
  (* reading tmp at nonzero offset blocks fusion *)
  let s3 =
    Stencil.make ~label:"s3" ~output:"out"
      ~expr:Expr.(read "tmp" (iv [ 1 ]))
      ~domain:dom ()
  in
  check_bool "offset read blocks" false
    (Schedule.can_fuse ~shape:(iv [ 10 ]) s1 s3)

(* ------------------------------------------------------------ validate *)

let test_validate_clean_group () =
  let group =
    Group.make ~label:"smooth"
      (dirichlet_boundaries_2d () @ [ vc_gsrb_color 0; vc_gsrb_color 1 ])
  in
  let issues =
    Validate.group ~shape:shape2 ~grid_shape:(fun _ -> shape2) group
  in
  Alcotest.(check (list string)) "no findings" []
    (List.map Validate.issue_to_string issues)

let test_validate_findings () =
  let oob =
    Stencil.make ~label:"oob" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1; 0 ]))
      ~domain:(Domain.interior 2 ~ghost:0)
      ()
  in
  let overlap =
    Stencil.make ~label:"overlap" ~output:"out" ~expr:(Expr.const 1.)
      ~domain:
        Domain.(
          of_rect (rect ~lo:[ 0; 0 ] ~hi:[ 5; 5 ] ())
          ++ of_rect (rect ~lo:[ 3; 3 ] ~hi:[ 8; 8 ] ()))
      ()
  in
  let serial =
    Stencil.make ~label:"serial" ~output:"u"
      ~expr:Expr.(read "u" (iv [ 1; 0 ]) *: param "lam")
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let issues =
    Validate.group ~shape:shape2
      ~grid_shape:(fun _ -> shape2)
      ~params:[ "other" ]
      (Group.make ~label:"bad" [ oob; overlap; serial ])
  in
  let has pred = List.exists pred issues in
  check_bool "oob found" true
    (has (function Validate.Out_of_bounds { stencil = "oob"; _ } -> true | _ -> false));
  check_bool "overlap found" true
    (has (function
      | Validate.Overlapping_union { stencil = "overlap" } -> true
      | _ -> false));
  check_bool "serial found (warning)" true
    (has (function
      | Validate.Sequential_in_place { stencil = "serial"; _ } -> true
      | _ -> false));
  check_bool "unbound param found" true
    (has (function
      | Validate.Unbound_param { param = "lam"; _ } -> true
      | _ -> false));
  (* severity split *)
  check_bool "oob is error" true
    (List.for_all
       (fun i ->
         match i with
         | Validate.Out_of_bounds _ | Validate.Unbound_param _ ->
             Validate.is_error i
         | _ -> not (Validate.is_error i))
       issues)

(* --------------------------------------------------------- diagnostics *)

let test_diagnostics_render () =
  let d =
    Diagnostics.make ~code:"SF001" ~severity:Diagnostics.Error
      ~loc:(Srcloc.stencil ~group:"g" ~index:0 ~part:(Srcloc.Read "u") "s")
      ~hint:"widen" "cell escapes"
  in
  Alcotest.(check string) "text form"
    "error[SF001] g/s#read u: cell escapes\n  hint: widen"
    (Diagnostics.to_string d);
  let note =
    Diagnostics.make ~code:"SF003" ~severity:Diagnostics.Note
      ~loc:(Srcloc.stencil "lone") "serial"
  in
  Alcotest.(check string) "no-hint text" "note[SF003] lone: serial"
    (Diagnostics.to_string note);
  check_bool "has_errors" true (Diagnostics.has_errors [ note; d ]);
  check_bool "no errors" false (Diagnostics.has_errors [ note ]);
  check_int "count notes" 1 (Diagnostics.count Diagnostics.Note [ note; d ]);
  (* sort puts program order first: index 0 before index 1, code-stable *)
  let later =
    Diagnostics.make ~code:"SF002" ~severity:Diagnostics.Warning
      ~loc:(Srcloc.stencil ~group:"g" ~index:1 ~part:Srcloc.Domain "t")
      "overlap"
  in
  Alcotest.(check (list string)) "sorted" [ "SF001"; "SF002" ]
    (List.map
       (fun (x : Diagnostics.t) -> x.Diagnostics.code)
       (Diagnostics.sort [ later; d ]));
  (* the summary line counts severities *)
  let rendered = Diagnostics.render [ d; later; note ] in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "summary present" true
    (contains rendered "1 error(s), 1 warning(s), 1 note(s)")

let test_diagnostics_json_golden () =
  let d1 =
    Diagnostics.make ~code:"SF001" ~severity:Diagnostics.Error
      ~loc:(Srcloc.stencil ~group:"g" ~index:0 ~part:(Srcloc.Read "u") "s")
      ~hint:"widen" "cell escapes"
  in
  let d2 =
    Diagnostics.make ~code:"SF003" ~severity:Diagnostics.Note
      ~loc:(Srcloc.stencil "lone") "serial"
  in
  Alcotest.(check string) "stable JSON shape"
    ("[{\"code\":\"SF001\",\"severity\":\"error\",\"group\":\"g\","
   ^ "\"stencil\":\"s\",\"part\":\"read u\",\"message\":\"cell escapes\","
   ^ "\"hint\":\"widen\"},"
   ^ "{\"code\":\"SF003\",\"severity\":\"note\",\"group\":null,"
   ^ "\"stencil\":\"lone\",\"part\":\"\",\"message\":\"serial\","
   ^ "\"hint\":null}]")
    (Diagnostics.list_to_json [ d1; d2 ]);
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\nd"
    (Diagnostics.json_escape "a\"b\\c\nd")

(* --------------------------------------------------- witnessed escapes *)

let test_escape_witnesses () =
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 2 ]))
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let es =
    Footprint.escapes ~shape:(iv [ 8 ]) ~grid_shape:(fun _ -> iv [ 8 ]) s
  in
  check_int "two escaping reads" 2 (List.length es);
  let find pred = List.exists pred es in
  check_bool "low-side witness" true
    (find (fun e ->
         e.Footprint.access = `Read
         && Ivec.equal e.Footprint.cell (iv [ -1 ])
         && Ivec.equal e.Footprint.widen_lo (iv [ 1 ])
         && Ivec.equal e.Footprint.widen_hi (iv [ 0 ])));
  check_bool "high-side witness" true
    (find (fun e ->
         Ivec.equal e.Footprint.cell (iv [ 9 ])
         && Ivec.equal e.Footprint.widen_hi (iv [ 2 ])));
  (* the in-bounds stencil yields none *)
  let ok =
    Stencil.make ~label:"ok" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  check_int "clean" 0
    (List.length
       (Footprint.escapes ~shape:(iv [ 8 ]) ~grid_shape:(fun _ -> iv [ 8 ]) ok))

(* ---------------------------------------------------- dataflow: SF011 *)

let scratch_pipeline () =
  let writer =
    Stencil.make ~label:"writer" ~output:"tmp"
      ~expr:(Expr.read "ext" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let reader =
    Stencil.make ~label:"reader" ~output:"out"
      ~expr:Expr.(read "tmp" (iv [ -1 ]) +: read "tmp" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  Group.make ~label:"pipe" [ writer; reader ]

let test_uninitialized_reads () =
  let g = scratch_pipeline () in
  let shape = iv [ 10 ] in
  (* inferred mode: ext is external (first touch is a read), tmp is group
     scratch whose ghost cells 0 and 9 are read but never written *)
  (match Lint.uninitialized_reads ~shape g with
  | [ d ] ->
      Alcotest.(check string) "code" "SF011" d.Diagnostics.code;
      check_bool "warning when inferred" true
        (d.Diagnostics.severity = Diagnostics.Warning);
      Alcotest.(check (option string)) "stencil" (Some "reader")
        d.Diagnostics.loc.Srcloc.stencil;
      check_bool "counts both ghost cells" true
        (let m = d.Diagnostics.message in
         String.length m > 8 && String.sub m 6 9 = "2 cell(s)")
  | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds));
  (* declared inputs: same finding becomes an error *)
  (match Lint.uninitialized_reads ~shape ~inputs:[ "ext" ] g with
  | [ d ] ->
      check_bool "error when declared" true
        (d.Diagnostics.severity = Diagnostics.Error)
  | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds));
  (* declaring tmp as initialized silences it *)
  check_int "silenced" 0
    (List.length (Lint.uninitialized_reads ~shape ~inputs:[ "ext"; "tmp" ] g));
  (* a covering writer silences it too *)
  let full_writer =
    Stencil.make ~label:"writer" ~output:"tmp"
      ~expr:(Expr.read "ext" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let covered =
    Group.make ~label:"pipe"
      [ full_writer; List.nth (Group.stencils g) 1 ]
  in
  check_int "covered" 0
    (List.length
       (Lint.uninitialized_reads ~shape ~inputs:[ "ext" ] covered))

(* ---------------------------------------------------- dataflow: SF012 *)

let test_dead_stores () =
  let shape = iv [ 10 ] in
  let store =
    Stencil.make ~label:"store" ~output:"d"
      ~expr:(Expr.read "ext" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let overwrite =
    Stencil.make ~label:"overwrite" ~output:"d"
      ~expr:Expr.(read "ext" (iv [ 0 ]) *: const 2.)
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  (match Lint.dead_stores ~shape (Group.make ~label:"g" [ store; overwrite ]) with
  | [ d ] ->
      Alcotest.(check string) "code" "SF012" d.Diagnostics.code;
      Alcotest.(check (option string)) "stencil" (Some "store")
        d.Diagnostics.loc.Srcloc.stencil
  | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds));
  (* an intervening reader keeps the store alive *)
  let observer =
    Stencil.make ~label:"observer" ~output:"out"
      ~expr:(Expr.read "d" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  check_int "observed store kept" 0
    (List.length
       (Lint.dead_stores ~shape
          (Group.make ~label:"g" [ store; observer; overwrite ])));
  (* partial overwrite is not a dead store *)
  let partial =
    Stencil.make ~label:"partial" ~output:"d"
      ~expr:(Expr.read "ext" (iv [ 0 ]))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 1 ] ~hi:[ 5 ] ()))
      ()
  in
  check_int "partial overwrite kept" 0
    (List.length
       (Lint.dead_stores ~shape (Group.make ~label:"g" [ store; partial ])))

(* -------------------------------------------------------- pass driver *)

let test_lint_program_clean () =
  let group =
    Group.make ~label:"smooth"
      (dirichlet_boundaries_2d () @ [ vc_gsrb_color 0; vc_gsrb_color 1 ])
  in
  Alcotest.(check (list string)) "no findings" []
    (List.map Diagnostics.to_string
       (Lint.program ~shape:shape2 ~grid_shape:(fun _ -> shape2) group))

let test_lint_program_collects_all () =
  let g = scratch_pipeline () in
  let oob =
    Stencil.make ~label:"oob" ~output:"out2"
      ~expr:Expr.(read "ext" (iv [ -1 ]) *: param "lam")
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let group = Group.make ~label:"bad" (Group.stencils g @ [ oob ]) in
  let ds =
    Lint.program ~shape:(iv [ 10 ])
      ~grid_shape:(fun _ -> iv [ 10 ])
      ~params:[ "other" ] ~inputs:[ "ext" ] group
  in
  let codes =
    List.sort_uniq String.compare
      (List.map (fun (d : Diagnostics.t) -> d.Diagnostics.code) ds)
  in
  Alcotest.(check (list string)) "codes" [ "SF001"; "SF004"; "SF011" ] codes

let test_validate_param_dedup () =
  (* the same unbound parameter used twice reports once *)
  let s =
    Stencil.make ~label:"p" ~output:"out"
      ~expr:Expr.(param "lam" +: (param "lam" *: read "u" (iv [ 0 ])))
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let issues =
    Validate.group ~shape:(iv [ 8 ])
      ~grid_shape:(fun _ -> iv [ 8 ])
      ~params:[] (Group.make ~label:"g" [ s ])
  in
  check_int "one report" 1
    (List.length
       (List.filter
          (function Validate.Unbound_param _ -> true | _ -> false)
          issues))

(* ------------------------------------------------- scale-2 edge slopes *)

(* Restriction and interpolation couple grids through scale-2 affine maps;
   the per-axis (scale, offset) pairs Dependence extracts are exactly what
   downstream passes (time-tiling skew, pipeline channel sizing) consume. *)
let test_scale2_slopes () =
  let writer =
    Stencil.make ~label:"residual_fine" ~output:"fine_res"
      ~expr:(Expr.const 0.)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let restrict = Sf_hpgmg.Nd.restriction ~dims:1 in
  Alcotest.(check (list (pair int int)))
    "restriction read slopes"
    [ (2, -1); (2, 0) ]
    (Dependence.read_slopes ~shape:(iv [ 10 ]) ~axis:0 ~before:writer
       ~after:restrict);
  (* a writer of an unrelated grid contributes no slopes *)
  let other =
    Stencil.make ~label:"other" ~output:"coarse_u" ~expr:(Expr.const 0.)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  Alcotest.(check (list (pair int int)))
    "unrelated grid" []
    (Dependence.read_slopes ~shape:(iv [ 10 ]) ~axis:0 ~before:other
       ~after:restrict);
  (* interpolation writes fine_u through scale-2 maps, one per parity *)
  let interp = Sf_hpgmg.Nd.interpolation ~dims:1 in
  Alcotest.(check (list (pair int int)))
    "interpolation write slopes"
    [ (2, -1); (2, 0) ]
    (List.sort compare
       (List.map (Dependence.write_slope ~axis:0) interp));
  (* each interpolation stencil also reads coarse_u at identity *)
  List.iter
    (fun s ->
      Alcotest.(check (list (pair int int)))
        "coarse_u read slope"
        [ (1, 0) ]
        (Dependence.read_slopes ~shape:(iv [ 10 ]) ~axis:0 ~before:other
           ~after:s))
    interp;
  check_bool "writer slope identity" true
    (Dependence.write_slope ~axis:0 writer = (1, 0))

(* -------------------------------------------------- pipeline analysis *)

let test_rank_of_grid () =
  let check_ro name expected =
    Alcotest.(check (option (pair string (list int))))
      name expected
      (Pipeline_check.rank_of_grid name)
  in
  check_ro "u@1_0" (Some ("u", [ 1; 0 ]));
  check_ro "u@2" (Some ("u", [ 2 ]));
  check_ro "dinv@0_1_2" (Some ("dinv", [ 0; 1; 2 ]));
  check_ro "u" None;
  check_ro "u@x" None;
  check_ro "u@1_x" None;
  check_ro "@1" None

let test_pipeline_analyze_plain_group () =
  (* a group without rank qualifiers is simply not a pipeline: no
     certificate, no diagnostics (SF030..SF034 stay quiet) *)
  let g =
    Group.make ~label:"plain"
      [
        Stencil.make ~label:"s" ~output:"out"
          ~expr:(Expr.read "inp" (iv [ 0 ]))
          ~domain:(Domain.interior 1 ~ghost:0)
          ();
      ]
  in
  let cert, diags = Pipeline_check.analyze ~shape:(iv [ 10 ]) g in
  check_bool "no certificate" true (cert = None);
  check_int "no diagnostics" 0 (List.length diags)

(* ------------------------------------------------- rank dedup, explain *)

let test_collapse_ranks () =
  let d ?hint stencil msg =
    Diagnostics.make ~code:"SF012" ~severity:Diagnostics.Warning
      ~loc:(Srcloc.stencil ~group:"g" stencil)
      ?hint msg
  in
  (* same finding replicated across two ranks collapses to one *)
  let collapsed =
    Diagnostics.collapse_ranks
      [
        d "halo_u@0_0_ax0_lo" "store to 'u@0_0' is dead";
        d "halo_u@1_0_ax0_lo" "store to 'u@1_0' is dead";
        d "bc_v@0_0" "unrelated";
      ]
  in
  (match collapsed with
  | [ first; second ] ->
      Alcotest.(check (option string))
        "stencil rank-starred"
        (Some "halo_u@*_ax0_lo")
        first.Diagnostics.loc.Srcloc.stencil;
      check_bool "rank-count suffix" true
        (let m = first.Diagnostics.message in
         String.length m >= 11
         && String.sub m (String.length m - 11) 11 = " [x2 ranks]");
      Alcotest.(check (option string))
        "singleton untouched" (Some "bc_v@0_0")
        second.Diagnostics.loc.Srcloc.stencil
  | ds -> Alcotest.failf "expected 2 diagnostics, got %d" (List.length ds));
  (* distinct messages (beyond rank naming) must NOT collapse *)
  check_int "distinct messages preserved" 2
    (List.length
       (Diagnostics.collapse_ranks
          [ d "halo_u@0_0" "first defect"; d "halo_u@1_0" "second defect" ]));
  check_bool "strip_ranks" true
    (Diagnostics.strip_ranks "halo_u@1_0_ax0_lo" = "halo_u@*_ax0_lo")

let test_explain () =
  (* every catalogued code explains itself, with a non-empty fix hint *)
  List.iter
    (fun (code, sev, doc) ->
      match Diagnostics.explain code with
      | Some (sev', doc', hint) ->
          check_bool (code ^ " severity") true (sev = sev');
          check_bool (code ^ " doc") true (doc = doc');
          check_bool (code ^ " hint nonempty") true (String.length hint > 0)
      | None -> Alcotest.failf "%s missing from explain" code)
    Diagnostics.catalogue;
  check_bool "unknown code" true (Diagnostics.explain "SF999" = None)

let () =
  Alcotest.run "sf_analysis"
    [
      ( "dioph",
        [
          Alcotest.test_case "egcd" `Quick test_egcd;
          Alcotest.test_case "solve2" `Quick test_solve2;
          Alcotest.test_case "progression" `Quick test_progression_basic;
          Alcotest.test_case "intersect examples" `Quick
            test_intersect_examples;
        ] );
      ("dioph-props", List.map QCheck_alcotest.to_alcotest dioph_props);
      ( "footprint",
        [
          Alcotest.test_case "affine image" `Quick test_affine_image;
          Alcotest.test_case "broadcast image" `Quick
            test_affine_image_broadcast;
          Alcotest.test_case "restriction reads" `Quick
            test_restriction_footprint;
          Alcotest.test_case "in bounds" `Quick test_check_in_bounds;
          Alcotest.test_case "union self disjoint" `Quick
            test_union_self_disjoint;
        ] );
      ("footprint-props", List.map QCheck_alcotest.to_alcotest footprint_props);
      ( "dependence",
        [
          Alcotest.test_case "gsrb colour parallel" `Quick
            test_gsrb_color_point_parallel;
          Alcotest.test_case "full GS not parallel" `Quick
            test_full_gauss_seidel_not_parallel;
          Alcotest.test_case "jacobi parallel" `Quick
            test_jacobi_out_of_place_parallel;
          Alcotest.test_case "red-black RAW/WAR" `Quick
            test_red_black_cross_dependence;
          Alcotest.test_case "boundary vs interior" `Quick
            test_boundary_interior_independence;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "boundary wave" `Quick
            test_waves_boundaries_parallel;
          Alcotest.test_case "waves cover all" `Quick test_waves_cover_all;
          Alcotest.test_case "dag" `Quick test_dag_build;
          Alcotest.test_case "dead elimination" `Quick test_dead_elimination;
          Alcotest.test_case "fusion" `Quick test_fusion;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean group" `Quick test_validate_clean_group;
          Alcotest.test_case "findings" `Quick test_validate_findings;
          Alcotest.test_case "param dedup" `Quick test_validate_param_dedup;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "render" `Quick test_diagnostics_render;
          Alcotest.test_case "json golden" `Quick
            test_diagnostics_json_golden;
          Alcotest.test_case "collapse ranks" `Quick test_collapse_ranks;
          Alcotest.test_case "explain catalogue" `Quick test_explain;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "rank_of_grid" `Quick test_rank_of_grid;
          Alcotest.test_case "plain group not a pipeline" `Quick
            test_pipeline_analyze_plain_group;
          Alcotest.test_case "scale-2 edge slopes" `Quick test_scale2_slopes;
        ] );
      ( "lint",
        [
          Alcotest.test_case "escape witnesses" `Quick test_escape_witnesses;
          Alcotest.test_case "uninitialized reads" `Quick
            test_uninitialized_reads;
          Alcotest.test_case "dead stores" `Quick test_dead_stores;
          Alcotest.test_case "clean program" `Quick test_lint_program_clean;
          Alcotest.test_case "collects all codes" `Quick
            test_lint_program_collects_all;
        ] );
    ]
