(* sf_serve unit tests: protocol goldens and round-trips, malformed-frame
   behaviour, quotas, BUSY backpressure, standalone-vs-server bitwise
   identity — all against an in-process server over a socketpair — plus
   the two concurrency regressions this PR pins: the Pool at_exit
   self-join hang and torn concurrent Autotune DB writes.

   A hard watchdog makes the suite timeout-proof: every past hang mode
   here (protocol deadlock, pool self-join) presents as "never returns",
   which must fail the build, not wedge it. *)

module P = Sf_serve.Protocol
module Server = Sf_serve.Server
module Session = Sf_serve.Session
module Client = Sf_serve.Client
module Gen = Sf_fuzz.Gen
module Corpus = Sf_fuzz.Corpus
module Jit = Sf_backends.Jit
module Config = Sf_backends.Config
module Autotune = Sf_backends.Autotune
open Sf_util

let () =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 60.;
         prerr_endline "test_serve: 60s watchdog expired — suite hung";
         exit 2)
       ())

let hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (String.to_seq s)))

let unhex s =
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* ------------------------------------------------------------- protocol *)

let golden_requests =
  [
    ( P.Hello { version = 1; tenant = "t"; caps = 63 },
      "0000000e010000000100000001740000003f" );
    (P.Poll { ticket = 7 }, "000000050300000007");
    (P.Stats, "0000000104");
    (P.Shutdown, "0000000105");
  ]

let golden_replies =
  [
    (P.Busy { queue_depth = 3 }, "000000058300000003");
    (P.Bye, "0000000188");
    ( P.Result
        {
          ticket = 2;
          elapsed_us = 1.5;
          grids = [ { P.gname = "u"; gshape = [ 2 ]; gdata = [| 1.0; -0.0 |] } ];
        },
      "0000003286000000023ff8000000000000000000010000000175000000010000000200000002\
       3ff00000000000008000000000000000" );
  ]

let test_goldens () =
  List.iter
    (fun (req, expect) ->
      Alcotest.(check string) "request frame" expect (hex (P.encode_request req));
      match P.decode_request (unhex expect) with
      | Ok got -> Alcotest.(check bool) "request re-decodes" true (got = req)
      | Error m -> Alcotest.failf "golden did not decode: %s" m)
    golden_requests;
  List.iter
    (fun (rep, expect) ->
      Alcotest.(check string) "reply frame" expect (hex (P.encode_reply rep));
      match P.decode_reply (unhex expect) with
      | Ok got -> Alcotest.(check bool) "reply re-decodes" true (got = rep)
      | Error m -> Alcotest.failf "golden did not decode: %s" m)
    golden_replies

let test_roundtrip () =
  let requests =
    [
      P.Hello { version = 1; tenant = "alice"; caps = P.cap_all };
      P.Submit
        {
          P.program = "; sffuzz (v 1)\n(group g)";
          backend = "openmp";
          workers = 4;
          reps = 3;
          fault = "kernel:raise@n=1";
        };
      P.Poll { ticket = 123456 };
      P.Stats;
      P.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok got -> Alcotest.(check bool) "request round-trips" true (got = r)
      | Error m -> Alcotest.failf "round-trip failed: %s" m)
    requests;
  let replies =
    [
      P.Welcome { version = 1; caps = 21; server = "sfserved/1" };
      P.Accepted { ticket = 9 };
      P.Busy { queue_depth = 64 };
      P.Rejected { ticket = 0; code = "proto"; message = "nope" };
      P.Pending { ticket = 5; running = true };
      P.Result
        {
          ticket = 5;
          elapsed_us = 123.25;
          grids =
            [
              { P.gname = "u"; gshape = [ 3; 4 ]; gdata = Array.init 12 float_of_int };
              { P.gname = "rhs"; gshape = [ 2 ]; gdata = [| infinity; 1e-300 |] };
            ];
        };
      P.Stats_reply { json = "{\"a\":1}" };
      P.Bye;
    ]
  in
  List.iter
    (fun r ->
      match P.decode_reply (P.encode_reply r) with
      | Ok got -> Alcotest.(check bool) "reply round-trips" true (got = r)
      | Error m -> Alcotest.failf "round-trip failed: %s" m)
    replies

let test_malformed () =
  let bad name s =
    match P.decode_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s decoded" name
  in
  bad "empty" "";
  bad "short header" "\x00\x00";
  bad "unknown tag" (unhex "00000001ff");
  bad "truncated hello" (unhex "0000000a0100000001000000ff");
  bad "trailing bytes" (unhex "000000020500");
  bad "length lie" (unhex "000000ff0400");
  (match P.decode_reply (unhex "00000001e9") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown reply tag decoded")

(* ------------------------------------------------- in-process harness *)

let with_server ?config f =
  let t = Server.create ?config () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.join t)
    (fun () -> f t)

(* One client connection served by a dedicated thread over a socketpair. *)
let with_conn t ~tenant f =
  let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_thread = Thread.create (fun () -> Server.serve_fd t s_fd) () in
  let finish () =
    (try Unix.close c_fd with Unix.Unix_error _ -> ());
    Thread.join server_thread;
    try Unix.close s_fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      match Client.of_fds ~tenant c_fd c_fd with
      | Ok c -> f c
      | Error m -> Alcotest.failf "handshake: %s" m)

let spec_program seed =
  let spec = Gen.spec ~seed () in
  (spec, Corpus.to_string spec)

let clean_submit ?(backend = "openmp") ?(workers = 1) program =
  { P.program; backend; workers; reps = 1; fault = "" }

let test_malformed_over_wire () =
  with_server (fun t ->
      let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let server_thread = Thread.create (fun () -> Server.serve_fd t s_fd) () in
      P.write_request c_fd (P.Hello { version = P.version; tenant = "m"; caps = P.cap_all });
      (match P.read_reply c_fd with
      | Ok (Some (P.Welcome _)) -> ()
      | _ -> Alcotest.fail "no welcome");
      (* raw garbage: announced length 1, unknown tag *)
      P.write_frame c_fd (unhex "00000001f0");
      (match P.read_reply c_fd with
      | Ok (Some (P.Rejected { ticket = 0; code; _ })) ->
          Alcotest.(check string) "proto error" P.err_proto code
      | r ->
          Alcotest.failf "expected proto error, got %s"
            (match r with Ok None -> "EOF" | Error m -> m | _ -> "other reply"));
      Unix.close c_fd;
      Thread.join server_thread;
      (try Unix.close s_fd with Unix.Unix_error _ -> ());
      (* the server survived: a fresh connection still solves *)
      let _, program = spec_program 42 in
      with_conn t ~tenant:"m2" (fun c ->
          match Client.solve c (clean_submit program) with
          | Ok (Client.Solved _) -> ()
          | Ok (Client.Failed { code; message }) ->
              Alcotest.failf "solve failed %s: %s" code message
          | Error m -> Alcotest.failf "transport: %s" m))

let test_version_mismatch () =
  with_server (fun t ->
      let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let server_thread = Thread.create (fun () -> Server.serve_fd t s_fd) () in
      P.write_request c_fd (P.Hello { version = 99; tenant = "v"; caps = 0 });
      (match P.read_reply c_fd with
      | Ok (Some (P.Rejected { ticket = 0; code; _ })) ->
          Alcotest.(check string) "proto error" P.err_proto code
      | _ -> Alcotest.fail "expected version rejection");
      (* the server side hung up after the rejection... *)
      Thread.join server_thread;
      Unix.close s_fd;
      (* ...so the client sees EOF, not more replies *)
      (match P.read_reply c_fd with
      | Ok None -> ()
      | _ -> Alcotest.fail "connection should be closed");
      Unix.close c_fd)

let test_parse_error () =
  with_server (fun t ->
      with_conn t ~tenant:"p" (fun c ->
          match Client.submit c (clean_submit "this is not a program") with
          | Ok (P.Rejected { code; _ }) ->
              Alcotest.(check string) "parse error" P.err_parse code
          | _ -> Alcotest.fail "expected parse rejection"))

let test_quotas () =
  let spec, program = spec_program 43 in
  let cells = Ivec.product spec.Gen.shape in
  (* per-request cell ceiling *)
  let config =
    {
      Server.default_config with
      Server.quota = { Session.default_quota with Session.max_cells = cells - 1 };
    }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"q-cells" (fun c ->
          match Client.submit c (clean_submit program) with
          | Ok (P.Rejected { code; _ }) ->
              Alcotest.(check string) "cell quota" P.err_quota_cells code
          | _ -> Alcotest.fail "expected quota-cells rejection"));
  (* cumulative budget: two requests fit, the third does not *)
  let config =
    {
      Server.default_config with
      Server.quota =
        { Session.default_quota with Session.cell_budget = (2 * cells) + 1 };
    }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"q-budget" (fun c ->
          for i = 1 to 2 do
            match Client.solve c (clean_submit program) with
            | Ok (Client.Solved _) -> ()
            | _ -> Alcotest.failf "request %d should solve" i
          done;
          match Client.submit c (clean_submit program) with
          | Ok (P.Rejected { code; _ }) ->
              Alcotest.(check string) "budget quota" P.err_quota_budget code
          | _ -> Alcotest.fail "expected quota-budget rejection"))

let test_busy_backpressure () =
  let _, program = spec_program 44 in
  let config =
    { Server.default_config with Server.threads = 1; queue_cap = 1 }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"busy" (fun c ->
          (* occupy the only executor: a delay fault stalls the solve *)
          let slow =
            { (clean_submit program) with P.fault = "kernel:delay=0.7" }
          in
          let slow_ticket =
            match Client.submit c slow with
            | Ok (P.Accepted { ticket }) -> ticket
            | _ -> Alcotest.fail "slow submit not accepted"
          in
          (* wait until it is actually running, i.e. off the queue *)
          let rec await_running () =
            match Client.poll c slow_ticket with
            | Ok (P.Pending { running = true; _ }) -> ()
            | Ok (P.Pending { running = false; _ }) ->
                Thread.delay 0.005;
                await_running ()
            | _ -> Alcotest.fail "unexpected poll reply while waiting"
          in
          await_running ();
          (* fill the queue (capacity 1)... *)
          let queued_ticket =
            match Client.submit c (clean_submit program) with
            | Ok (P.Accepted { ticket }) -> ticket
            | _ -> Alcotest.fail "queued submit not accepted"
          in
          (* ...so the next submit must bounce with BUSY, not block *)
          (match Client.submit c (clean_submit program) with
          | Ok (P.Busy { queue_depth }) ->
              Alcotest.(check int) "reported depth" 1 queue_depth
          | Ok (P.Accepted _) -> Alcotest.fail "expected BUSY, got ACCEPTED"
          | _ -> Alcotest.fail "expected BUSY");
          (* everything admitted still completes *)
          (match Client.wait c slow_ticket with
          | Ok (Client.Solved _) -> ()
          | _ -> Alcotest.fail "delayed request should still solve");
          match Client.wait c queued_ticket with
          | Ok (Client.Solved _) -> ()
          | _ -> Alcotest.fail "queued request should solve"))

(* --------------------------------------------- connection death modes *)

module Json = Sf_trace.Json

let stats_field c path =
  match Client.stats c with
  | Error m -> Alcotest.failf "stats: %s" m
  | Ok s -> (
      match Json.of_string s with
      | Error m -> Alcotest.failf "stats unparseable: %s" m
      | Ok doc -> (
          match
            List.fold_left
              (fun acc k -> Option.bind acc (Json.member k))
              (Some doc) path
          with
          | Some (Json.Num v) -> v
          | _ -> Alcotest.failf "stats missing %s" (String.concat "." path)))

let tenant_completed c tenant =
  match Client.stats c with
  | Error m -> Alcotest.failf "stats: %s" m
  | Ok s -> (
      match Json.of_string s with
      | Error m -> Alcotest.failf "stats unparseable: %s" m
      | Ok doc -> (
          match Json.member "tenants" doc with
          | Some (Json.Arr ts) ->
              List.fold_left
                (fun acc t ->
                  match
                    (Json.member "tenant" t, Json.member "completed" t)
                  with
                  | Some (Json.Str name), Some (Json.Num v) when name = tenant
                    ->
                      v
                  | _ -> acc)
                0. ts
          | _ -> 0.))

(* A client that hangs up before reading its reply: the server's write
   must surface as EPIPE (SIGPIPE is ignored in Server.create), killing
   only that connection — pre-fix, the default SIGPIPE action killed
   this whole test process. *)
let test_dead_client_sigpipe () =
  with_server (fun t ->
      let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      P.write_request c_fd
        (P.Hello { version = P.version; tenant = "gone"; caps = P.cap_all });
      (* hang up before the server even reads the HELLO: the HELLO stays
         readable in the socket buffer, so the Welcome write that
         answers it is then guaranteed to hit EPIPE *)
      Unix.close c_fd;
      let server_thread = Thread.create (fun () -> Server.serve_fd t s_fd) () in
      Thread.join server_thread;
      (try Unix.close s_fd with Unix.Unix_error _ -> ());
      (* the daemon survived; a fresh connection still solves *)
      let _, program = spec_program 51 in
      with_conn t ~tenant:"alive" (fun c ->
          match Client.solve c (clean_submit program) with
          | Ok (Client.Solved _) -> ()
          | _ -> Alcotest.fail "server no longer solves after client EPIPE"))

(* A tenant that disconnects without polling must not leave its Done
   ticket (holding the full result grids) in the server forever. *)
let test_disconnect_reaps_tickets () =
  let _, program = spec_program 52 in
  with_server (fun t ->
      with_conn t ~tenant:"leaker" (fun c ->
          (match Client.submit c (clean_submit program) with
          | Ok (P.Accepted _) -> ()
          | _ -> Alcotest.fail "submit not accepted");
          (* wait for completion *without* polling the ticket — a poll
             would claim the reply and hide the leak *)
          let rec await n =
            if n = 0 then Alcotest.fail "solve never completed"
            else if tenant_completed c "leaker" < 1. then begin
              Thread.delay 0.01;
              await (n - 1)
            end
          in
          await 1000;
          Alcotest.(check (float 0.))
            "one unclaimed ticket held" 1.
            (stats_field c [ "queue"; "tickets" ]));
      (* with_conn joined the connection thread: the reap is done *)
      with_conn t ~tenant:"auditor" (fun c ->
          Alcotest.(check (float 0.))
            "unclaimed ticket reaped on disconnect" 0.
            (stats_field c [ "queue"; "tickets" ])))

(* stop() must leave every Accepted-but-unstarted ticket with a terminal
   reply, not drop it so polls spin forever. *)
let test_stop_rejects_queued () =
  let _, program = spec_program 53 in
  let config =
    { Server.default_config with Server.threads = 1; queue_cap = 4 }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"drain" (fun c ->
          (* park the only executor on a delay fault *)
          let slow =
            { (clean_submit program) with P.fault = "kernel:delay=0.4" }
          in
          let slow_ticket =
            match Client.submit c slow with
            | Ok (P.Accepted { ticket }) -> ticket
            | _ -> Alcotest.fail "slow submit not accepted"
          in
          let rec await_running () =
            match Client.poll c slow_ticket with
            | Ok (P.Pending { running = true; _ }) -> ()
            | Ok (P.Pending { running = false; _ }) ->
                Thread.delay 0.005;
                await_running ()
            | _ -> Alcotest.fail "unexpected poll reply while waiting"
          in
          await_running ();
          let queued_ticket =
            match Client.submit c (clean_submit program) with
            | Ok (P.Accepted { ticket }) -> ticket
            | _ -> Alcotest.fail "queued submit not accepted"
          in
          Server.stop t;
          (match Client.wait c queued_ticket with
          | Ok (Client.Failed { code; message }) ->
              Alcotest.(check string) "error code" P.err_proto code;
              Alcotest.(check string)
                "shutdown message" "server shutting down" message
          | _ -> Alcotest.fail "queued ticket lacks a terminal reply");
          (* the solve that was already running still delivers *)
          match Client.wait c slow_ticket with
          | Ok (Client.Solved _) -> ()
          | _ -> Alcotest.fail "running solve should still deliver"))

(* Starting a second daemon on an in-use socket path must refuse, not
   silently sever the first daemon's listener. *)
let test_listen_refuses_live_socket () =
  let path = Filename.temp_file "sfserved_live" ".sock" in
  Sys.remove path;
  with_server (fun t1 ->
      let listener = Thread.create (fun () -> Server.listen_unix t1 ~path) () in
      let rec await n =
        if n = 0 then Alcotest.fail "first listener never came up"
        else
          match Client.connect_unix ~tenant:"probe" path with
          | Ok c -> Client.close c
          | Error _ ->
              Thread.delay 0.01;
              await (n - 1)
      in
      await 500;
      with_server (fun t2 ->
          match Server.listen_unix t2 ~path with
          | () -> Alcotest.fail "second daemon bound over a live socket"
          | exception Failure _ -> ());
      (* the first daemon is still there, still serving *)
      (match Client.connect_unix ~tenant:"probe2" path with
      | Ok c -> Client.close c
      | Error m -> Alcotest.failf "first daemon was severed: %s" m);
      Server.stop t1;
      Thread.join listener)

(* ------------------------------------- standalone vs server, bitwise *)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Fcmp.ulp_equal ~ulps:0 x y) a b

let local_run spec ~workers =
  let config = { Config.default with Config.workers } in
  let kernel =
    Jit.compile ~config Jit.Openmp ~shape:spec.Gen.shape spec.Gen.group
  in
  let grids = Gen.build_grids spec in
  kernel.Sf_backends.Kernel.run ~params:spec.Gen.params grids;
  grids

let test_bitwise_vs_standalone () =
  with_server (fun t ->
      List.iter
        (fun workers ->
          List.iter
            (fun seed ->
              let spec, program = spec_program seed in
              let reference = local_run spec ~workers in
              with_conn t
                ~tenant:(Printf.sprintf "bitwise-%d" workers)
                (fun c ->
                  match Client.solve c (clean_submit ~workers program) with
                  | Ok (Client.Solved { grids; _ }) ->
                      Alcotest.(check bool)
                        "server returned every grid" true
                        (List.length grids
                        = List.length (Sf_mesh.Grids.names reference));
                      List.iter
                        (fun (g : P.grid) ->
                          let m = Sf_mesh.Grids.find reference g.P.gname in
                          let fa = Sf_mesh.Mesh.data m in
                          let local =
                            Array.init (Float.Array.length fa)
                              (Float.Array.get fa)
                          in
                          if not (bits_equal local g.P.gdata) then
                            Alcotest.failf
                              "grid %s differs from the standalone run \
                               (seed %d, workers %d)"
                              g.P.gname seed workers)
                        grids
                  | Ok (Client.Failed { code; message }) ->
                      Alcotest.failf "solve failed %s: %s" code message
                  | Error m -> Alcotest.failf "transport: %s" m))
            [ 46; 47; 48 ])
        [ 1; 4 ])

(* ------------------------------------- protocol-fuzz satellite pins *)

(* Multi-grid RESULT pinned byte-for-byte.  The decoder used to build
   grids with List.init/Array.init over a side-effecting cursor, whose
   evaluation order is unspecified before OCaml 5.1 — an order flip
   would silently permute shapes and cells.  The golden pins the
   explicit in-order loops. *)
let test_multigrid_result_golden () =
  let reply =
    P.Result
      {
        ticket = 3;
        elapsed_us = 2.5;
        grids =
          [
            {
              P.gname = "u";
              gshape = [ 2; 3 ];
              gdata = [| 0.; 1.; 2.; 3.; 4.; 5. |];
            };
            { P.gname = "rhs"; gshape = [ 2 ]; gdata = [| 7.5; -1. |] };
          ];
      }
  in
  let expect =
    "00000079860000000340040000000000000000000200000001750000000200000002\
     0000000300000006000000000000000\
     03ff000000000000040000000000000004008000000000000\
     4010000000000000401400000000000000000003726873000000010000000200000002\
     401e000000000000bff0000000000000"
  in
  Alcotest.(check string)
    "multi-grid RESULT frame" expect
    (hex (P.encode_reply reply));
  match P.decode_reply (unhex expect) with
  | Ok got ->
      Alcotest.(check bool)
        "decodes to the same grids, shapes and cells in order" true
        (got = reply)
  | Error m -> Alcotest.failf "golden did not decode: %s" m

(* SUBMIT.workers/.reps are raw u32s on the wire; admission must bound
   them before any parse, compile or quota work. *)
let test_admission_limits () =
  let _, program = spec_program 45 in
  let config =
    { Server.default_config with Server.max_workers = 4; max_reps = 8 }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"limits" (fun c ->
          (match
             Client.submit c
               { (clean_submit program) with P.workers = 0xFFFF_FFFF }
           with
          | Ok (P.Rejected { code; message; _ }) ->
              Alcotest.(check string) "workers code" P.err_parse code;
              Alcotest.(check bool)
                "message names the field" true
                (String.length message >= 7
                && String.sub message 0 7 = "SUBMIT.")
          | _ -> Alcotest.fail "4-billion-worker submit admitted");
          (match
             Client.submit c { (clean_submit program) with P.reps = 0xFFFF_FFFF }
           with
          | Ok (P.Rejected { code; _ }) ->
              Alcotest.(check string) "reps code" P.err_parse code
          | _ -> Alcotest.fail "4-billion-rep submit admitted");
          (* at the limit is not over it *)
          match Client.solve c { (clean_submit program) with P.workers = 4 } with
          | Ok (Client.Solved _) -> ()
          | Ok (Client.Failed { code; message }) ->
              Alcotest.failf "at-limit solve failed %s: %s" code message
          | Error m -> Alcotest.failf "transport: %s" m))

(* Where an EOF lands must stay diagnosable: between frames / inside the
   4-byte length prefix vs inside an announced payload are different
   failure stories and carry different error strings. *)
let test_eof_error_paths () =
  let run_case bytes =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let n = Unix.write_substring a bytes 0 (String.length bytes) in
    Alcotest.(check int) "partial frame written" (String.length bytes) n;
    Unix.close a;
    let r = P.read_frame b in
    Unix.close b;
    r
  in
  (match run_case "\x00\x00" with
  | Error m ->
      Alcotest.(check string) "died mid-prefix" "EOF inside length prefix" m
  | Ok _ -> Alcotest.fail "2-byte prefix should not read");
  (match run_case "\x00\x00\x00\x05\x03\x00" with
  | Error m ->
      Alcotest.(check string) "died mid-payload" "EOF inside frame payload" m
  | Ok _ -> Alcotest.fail "truncated payload should not read");
  (* a clean EOF between frames stays None, not an error *)
  match run_case "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "clean EOF should be None"

(* write_frame against a non-blocking descriptor: a frame bigger than
   the socket buffer forces EAGAIN mid-write; the select-park-retry path
   must deliver the frame whole to a slow reader. *)
let test_write_frame_nonblocking () =
  let frame =
    P.encode_reply
      (P.Result
         {
           ticket = 1;
           elapsed_us = 0.;
           grids =
             [
               {
                 P.gname = "big";
                 gshape = [ 300_000 ];
                 gdata = Array.init 300_000 float_of_int;
               };
             ];
         })
  in
  let c_fd, s_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock c_fd;
  let got = ref (Error "reader never ran") in
  let reader =
    Thread.create
      (fun () ->
        (* park long enough that the writer certainly fills the socket
           buffer and hits EAGAIN before any byte is drained *)
        Thread.delay 0.2;
        got := P.read_frame s_fd)
      ()
  in
  P.write_frame c_fd frame;
  Thread.join reader;
  Unix.close c_fd;
  Unix.close s_fd;
  match !got with
  | Ok (Some read_back) ->
      Alcotest.(check bool)
        "frame arrived whole and bitwise intact" true (read_back = frame)
  | Ok None -> Alcotest.fail "reader saw EOF"
  | Error m -> Alcotest.failf "reader failed: %s" m

(* Ticket isolation across tenants, pinned in all three lifecycle
   states: another tenant polling your Queued, Running or Done ticket
   must be REJECTED, and the ticket must stay claimable by you. *)
let test_cross_tenant_isolation () =
  let _, program = spec_program 54 in
  let config =
    { Server.default_config with Server.threads = 1; queue_cap = 4 }
  in
  with_server ~config (fun t ->
      with_conn t ~tenant:"iso-a" (fun ca ->
          with_conn t ~tenant:"iso-b" (fun cb ->
              let foreign_rejected what ticket =
                match Client.poll cb ticket with
                | Ok (P.Rejected { code; _ }) ->
                    Alcotest.(check string)
                      (what ^ " poll rejected") P.err_proto code
                | Ok (P.Result _) ->
                    Alcotest.failf "tenant B claimed A's %s result" what
                | Ok (P.Pending _) ->
                    Alcotest.failf "tenant B saw A's %s status" what
                | _ -> Alcotest.failf "unexpected reply to %s poll" what
              in
              (* Running: a delay fault parks A's solve on the only
                 executor; Queued: the next submit waits behind it *)
              let slow =
                { (clean_submit program) with P.fault = "kernel:delay=0.4" }
              in
              let running_ticket =
                match Client.submit ca slow with
                | Ok (P.Accepted { ticket }) -> ticket
                | _ -> Alcotest.fail "slow submit not accepted"
              in
              let rec await_running () =
                match Client.poll ca running_ticket with
                | Ok (P.Pending { running = true; _ }) -> ()
                | Ok (P.Pending { running = false; _ }) ->
                    Thread.delay 0.005;
                    await_running ()
                | _ -> Alcotest.fail "unexpected poll while waiting"
              in
              await_running ();
              let queued_ticket =
                match Client.submit ca (clean_submit program) with
                | Ok (P.Accepted { ticket }) -> ticket
                | _ -> Alcotest.fail "queued submit not accepted"
              in
              foreign_rejected "running" running_ticket;
              foreign_rejected "queued" queued_ticket;
              (* both still claimable by their owner *)
              (match Client.wait ca running_ticket with
              | Ok (Client.Solved _) -> ()
              | _ -> Alcotest.fail "A lost its running ticket");
              (match Client.wait ca queued_ticket with
              | Ok (Client.Solved _) -> ()
              | _ -> Alcotest.fail "A lost its queued ticket");
              (* Done: solve, let it complete unclaimed, then B tries *)
              let done_ticket =
                match Client.submit ca (clean_submit program) with
                | Ok (P.Accepted { ticket }) -> ticket
                | _ -> Alcotest.fail "third submit not accepted"
              in
              let rec await_done n =
                if n = 0 then Alcotest.fail "third solve never completed"
                else if tenant_completed ca "iso-a" < 3. then begin
                  Thread.delay 0.01;
                  await_done (n - 1)
                end
              in
              await_done 1000;
              foreign_rejected "done" done_ticket;
              match Client.poll ca done_ticket with
              | Ok (P.Result _) -> ()
              | _ ->
                  Alcotest.fail
                    "A's done ticket was not claimable after B's probe")))

(* --------------------------------------------- pool at_exit regression *)

(* pool_exit_check exits 3 when the interesting schedule happened (exit
   from a chunk stolen by a helper domain) and the process still died
   cleanly; 4 when the racy schedule was uninteresting.  The pre-fix
   pool hangs on status-3 schedules, which the per-attempt timeout turns
   into a failure. *)
(* the probe executables live next to this test binary *)
let sibling exe = Filename.concat (Filename.dirname Sys.executable_name) exe

let test_pool_exit_regression () =
  let attempt () =
    let pid =
      Unix.create_process
        (sibling "pool_exit_check.exe")
        [| "pool_exit_check.exe" |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    let deadline = Unix.gettimeofday () +. 10. in
    let rec reap () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid);
            Alcotest.fail
              "pool_exit_check hung: at_exit shutdown self-join regressed"
          end
          else begin
            Thread.delay 0.02;
            reap ()
          end
      | _, Unix.WEXITED n -> n
      | _, _ -> Alcotest.fail "pool_exit_check killed by signal"
    in
    reap ()
  in
  (* retry until the stolen-chunk schedule actually occurs; the pause
     between attempts lets transient whole-machine load (e.g. a build
     that just finished) subside, since a saturated machine can pin
     every chunk to the main domain for many attempts in a row *)
  let rec go n =
    if n = 0 then
      Alcotest.fail "stolen-chunk schedule never occurred in 40 attempts"
    else
      match attempt () with
      | 3 -> ()
      | 4 ->
          Thread.delay 0.05;
          go (n - 1)
      | n -> Alcotest.failf "unexpected pool_exit_check status %d" n
  in
  go 40

(* ------------------------------------------ autotune DB concurrency *)

let test_autotune_db_concurrent () =
  let db = Filename.temp_file "sf_tune_test" ".json" in
  Sys.remove db;
  (* four separate writer processes against one DB path: every writer
     checks the document is well-formed after each of its own writes *)
  let pids =
    List.init 4 (fun child ->
        Unix.create_process
          (sibling "tune_write_check.exe")
          [| "tune_write_check.exe"; db; string_of_int child |]
          Unix.stdin Unix.stdout Unix.stderr)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n ->
          Alcotest.failf "writer observed a torn DB (exit %d)" n
      | _, _ -> Alcotest.fail "writer killed")
    pids;
  Alcotest.(check bool) "final DB well-formed" true (Autotune.db_is_wellformed ~db);
  Alcotest.(check bool)
    "entries survived" true
    (Autotune.db_entry_count ~db >= 1);
  Sys.remove db

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "goldens" `Quick test_goldens;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "malformed frames" `Quick test_malformed;
        ] );
      ( "server",
        [
          Alcotest.test_case "malformed over wire" `Quick
            test_malformed_over_wire;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "quotas" `Quick test_quotas;
          Alcotest.test_case "busy backpressure" `Quick test_busy_backpressure;
          Alcotest.test_case "dead client EPIPE" `Quick
            test_dead_client_sigpipe;
          Alcotest.test_case "disconnect reaps tickets" `Quick
            test_disconnect_reaps_tickets;
          Alcotest.test_case "stop rejects queued" `Quick
            test_stop_rejects_queued;
          Alcotest.test_case "live socket refusal" `Quick
            test_listen_refuses_live_socket;
          Alcotest.test_case "bitwise vs standalone" `Quick
            test_bitwise_vs_standalone;
          Alcotest.test_case "multi-grid RESULT golden" `Quick
            test_multigrid_result_golden;
          Alcotest.test_case "admission limits" `Quick test_admission_limits;
          Alcotest.test_case "EOF error paths" `Quick test_eof_error_paths;
          Alcotest.test_case "non-blocking write_frame" `Quick
            test_write_frame_nonblocking;
          Alcotest.test_case "cross-tenant isolation" `Quick
            test_cross_tenant_isolation;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "pool at_exit self-join" `Quick
            test_pool_exit_regression;
          Alcotest.test_case "autotune db concurrency" `Quick
            test_autotune_db_concurrent;
        ] );
    ]
