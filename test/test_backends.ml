open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))
let iv = Ivec.of_list

(* ---------------------------------------------------------------- Pool *)

let test_pool_runs_all () =
  let hits = Array.make 100 0 in
  let tasks = Array.init 100 (fun i () -> hits.(i) <- hits.(i) + 1) in
  Pool.run_tasks (Pool.create ~workers:4) tasks;
  check_bool "each task exactly once" true (Array.for_all (( = ) 1) hits)

let test_pool_sequential () =
  let order = ref [] in
  let tasks = Array.init 5 (fun i () -> order := i :: !order) in
  Pool.run_tasks Pool.sequential tasks;
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_pool_exception () =
  let tasks = [| (fun () -> ()); (fun () -> failwith "boom") |] in
  (try
     Pool.run_tasks (Pool.create ~workers:3) tasks;
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "msg" "boom" m);
  try
    Pool.run_tasks Pool.sequential tasks;
    Alcotest.fail "exception swallowed (seq)"
  with Failure _ -> ()

let test_parallel_for () =
  let acc = Atomic.make 0 in
  Pool.parallel_for (Pool.create ~workers:3) 50 (fun i ->
      ignore (Atomic.fetch_and_add acc i));
  check_int "sum" (50 * 49 / 2) (Atomic.get acc)

let test_parallel_range_chunks () =
  let seen = Array.make 100 0 in
  Pool.parallel_range ~grain:7 (Pool.create ~workers:4) 100 (fun lo hi ->
      check_bool "grain bound" true (hi - lo <= 7 && lo < hi);
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done);
  check_bool "covers [0,n) exactly once" true (Array.for_all (( = ) 1) seen);
  (* n = 0 is a no-op; grain larger than n gives one inline chunk *)
  Pool.parallel_range (Pool.create ~workers:4) 0 (fun _ _ ->
      Alcotest.fail "called on empty range");
  let calls = ref 0 in
  Pool.parallel_range ~grain:1000 (Pool.create ~workers:4) 5 (fun lo hi ->
      incr calls;
      check_int "whole range" 5 (hi - lo));
  check_int "single chunk" 1 !calls

let test_pool_exception_leaves_pool_reusable () =
  let pool = Pool.create ~workers:4 in
  let tasks = Array.init 16 (fun i () -> if i = 5 then failwith "kaboom") in
  (try
     Pool.run_tasks pool tasks;
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "msg" "kaboom" m);
  (* the join aborted but the worker domains survive: the same pool must
     execute the next batch completely *)
  let hits = Array.make 64 0 in
  Pool.run_tasks pool (Array.init 64 (fun i () -> hits.(i) <- hits.(i) + 1));
  check_bool "reusable after failure" true (Array.for_all (( = ) 1) hits)

let test_pool_nested_runs_inline () =
  (* a task that itself submits a batch must not deadlock on the shared
     publication slot: re-entrant submissions run inline *)
  let pool = Pool.create ~workers:4 in
  let inner = Atomic.make 0 in
  let outer =
    Array.init 4 (fun _ () ->
        Pool.run_tasks pool (Array.init 8 (fun _ () -> Atomic.incr inner)))
  in
  Pool.run_tasks pool outer;
  check_int "nested tasks all ran" 32 (Atomic.get inner)

let test_pool_abort_skips_counted () =
  (* regression: an aborted batch used to look indistinguishable from a
     completed one — the drained tasks must show up in stats as [skipped] *)
  let pool = Pool.create ~workers:4 in
  Pool.reset_stats ();
  let executed = Atomic.make 0 in
  let tasks =
    Array.init 512 (fun i () ->
        if i = 0 then failwith "abort"
        else begin
          (* a little work so the whole batch cannot drain before the
             failure flag is published *)
          for _ = 1 to 200 do
            ignore (Sys.opaque_identity i)
          done;
          Atomic.incr executed
        end)
  in
  (try
     Pool.run_tasks pool tasks;
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "msg" "abort" m);
  let s = Pool.stats () in
  check_bool "abort visibly skipped tasks" true (s.Pool.skipped > 0);
  check_int "skipped + executed accounts for every non-failing task" 511
    (s.Pool.skipped + Atomic.get executed)

let test_pool_reentrant_exception () =
  (* a nested (inline) submission that raises must propagate through both
     joins, and the pool must survive the abort — at every worker count *)
  List.iter
    (fun workers ->
      let pool = Pool.create ~workers in
      let outer =
        Array.init 4 (fun o () ->
            if o = 0 then
              Pool.run_tasks pool
                [| (fun () -> ()); (fun () -> failwith "inner") |])
      in
      (try
         Pool.run_tasks pool outer;
         Alcotest.fail
           (Printf.sprintf "exception swallowed (workers=%d)" workers)
       with Failure m -> Alcotest.(check string) "msg" "inner" m);
      let hits = Array.make 32 0 in
      Pool.run_tasks pool
        (Array.init 32 (fun i () -> hits.(i) <- hits.(i) + 1));
      check_bool
        (Printf.sprintf "usable after abort (workers=%d)" workers)
        true
        (Array.for_all (( = ) 1) hits))
    [ 1; 2; 4 ]

let test_pool_shutdown_idempotent () =
  Pool.shutdown ();
  Pool.shutdown ();
  (* the pool is still usable afterwards: workers respawn lazily *)
  let acc = Atomic.make 0 in
  Pool.parallel_for (Pool.create ~workers:3) 100 (fun i ->
      ignore (Atomic.fetch_and_add acc i));
  check_int "sum after shutdown" (100 * 99 / 2) (Atomic.get acc);
  Pool.shutdown ()

let test_pool_serial_cutoff () =
  let pool = Pool.create ~workers:4 |> Pool.with_serial_cutoff 1000 in
  Pool.reset_stats ();
  let ran = Array.make 4 0 in
  let tasks () = Array.init 4 (fun i () -> ran.(i) <- ran.(i) + 1) in
  Pool.run_tasks ~points:10 pool (tasks ());
  check_int "below cutoff: no dispatch" 0 (Pool.stats ()).Pool.jobs;
  Pool.run_tasks ~points:100_000 pool (tasks ());
  check_int "above cutoff: dispatched" 1 (Pool.stats ()).Pool.jobs;
  (* no hint means no cutoff *)
  Pool.run_tasks pool (tasks ());
  check_int "no hint: dispatched" 2 (Pool.stats ()).Pool.jobs;
  check_bool "every batch ran fully" true (Array.for_all (( = ) 3) ran)

let test_parallel_range_serial_cutoff () =
  (* regression: parallel_range must honour the view's serial cutoff the
     same way run_tasks does with a ~points hint — n counts as the range's
     lattice points.  Before the fix the cutoff was never consulted and a
     100-point range was published to the pool. *)
  let pool = Pool.create ~workers:4 |> Pool.with_serial_cutoff 1000 in
  Pool.reset_stats ();
  let seen = Array.make 100 0 in
  Pool.parallel_range ~grain:7 pool 100 (fun lo hi ->
      check_bool "grain bound" true (hi - lo <= 7 && lo < hi);
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done);
  check_bool "covers [0,n) exactly once" true (Array.for_all (( = ) 1) seen);
  check_int "below cutoff: no dispatch" 0 (Pool.stats ()).Pool.jobs;
  check_int "below cutoff: counted inline" 1 (Pool.stats ()).Pool.inline_runs;
  (* above the cutoff the range still goes to the pool *)
  let acc = Atomic.make 0 in
  Pool.parallel_range pool 5000 (fun lo hi ->
      ignore (Atomic.fetch_and_add acc (hi - lo)));
  check_int "above cutoff: dispatched" 1 (Pool.stats ()).Pool.jobs;
  check_int "above cutoff: covered" 5000 (Atomic.get acc)

let test_reset_stats_resets_spawned () =
  (* regression: reset_stats used to zero every counter except spawned, so
     a post-reset report mixed lifetime spawns with per-session numbers *)
  let pool = Pool.create ~workers:4 in
  (* park-and-join any live workers so the next dispatch must respawn *)
  Pool.shutdown ();
  Pool.reset_stats ();
  Pool.run_tasks pool (Array.init 16 (fun _ () -> ()));
  check_bool "workers were spawned" true ((Pool.stats ()).Pool.spawned > 0);
  Pool.reset_stats ();
  let s = Pool.stats () in
  check_int "spawned reset" 0 s.Pool.spawned;
  check_int "jobs reset" 0 s.Pool.jobs;
  check_int "chunks reset" 0 s.Pool.chunks;
  check_int "stolen reset" 0 s.Pool.stolen;
  check_int "inline reset" 0 s.Pool.inline_runs;
  (* the gauge survives: hot workers stay parked, and the next batch
     reuses them without new spawns *)
  Pool.run_tasks pool (Array.init 16 (fun _ () -> ()));
  check_int "hot workers reused, none spawned" 0 (Pool.stats ()).Pool.spawned

(* -------------------------------------------------------------- Tiling *)

let resolved lo hi stride shape =
  Domain.resolve_rect ~shape:(iv shape)
    (Domain.rect ~stride ~lo ~hi ())

let tiles_partition_exactly original tiles =
  let pts r = List.map Ivec.to_list (Domain.to_list r) in
  let all = List.concat_map pts tiles |> List.sort compare in
  let expected = pts original |> List.sort compare in
  all = expected

let test_split_partitions () =
  let r = resolved [ 1; 1 ] [ -1; -1 ] [ 1; 1 ] [ 10; 13 ] in
  let tiles = Tiling.split ~tile:[ 3; 4 ] r in
  check_bool "partition" true (tiles_partition_exactly r tiles);
  check_int "points preserved" (Domain.npoints r) (Tiling.npoints_total tiles)

let test_split_strided () =
  let r = resolved [ 1; 2 ] [ 9; 9 ] [ 2; 3 ] [ 10; 10 ] in
  let tiles = Tiling.split ~tile:[ 2; 2 ] r in
  check_bool "strided partition" true (tiles_partition_exactly r tiles)

let test_split_outer () =
  let r = resolved [ 0; 0 ] [ 8; 8 ] [ 1; 1 ] [ 8; 8 ] in
  let tiles = Tiling.split_outer ~chunks:3 r in
  check_bool "outer partition" true (tiles_partition_exactly r tiles);
  check_int "three chunks" 3 (List.length tiles)

let test_tall_skinny () =
  let r = resolved [ 0; 0; 0 ] [ 4; 8; 8 ] [ 1; 1; 1 ] [ 4; 8; 8 ] in
  let tiles = Tiling.tall_skinny ~tile:(4, 4) r in
  check_bool "ts partition" true (tiles_partition_exactly r tiles);
  (* each tile must span the full outermost axis: the roll *)
  List.iter
    (fun t ->
      check_int "full z extent" 4 (Domain.counts t).(0))
    tiles;
  check_int "2x2 tiles" 4 (List.length tiles)

let test_split_oversized_tile () =
  let r = resolved [ 0 ] [ 5 ] [ 1 ] [ 5 ] in
  check_int "single tile" 1 (List.length (Tiling.split ~tile:[ 100 ] r))

let test_multicolor_interleave () =
  let shape = [ 9; 9 ] in
  let red0 = resolved [ 1; 1 ] [ -1; -1 ] [ 2; 2 ] shape in
  let red1 = resolved [ 2; 2 ] [ -1; -1 ] [ 2; 2 ] shape in
  let merged = Multicolor.interleave [ [ red0 ]; [ red1 ] ] in
  check_int "both kept" 2 (List.length merged);
  (* sorted by origin: (1,1) before (2,2) *)
  Alcotest.(check (list int)) "first origin" [ 1; 1 ]
    (Ivec.to_list (List.hd merged).Domain.rlo)

(* ------------------------------------------------- backend equivalence *)

let five_point_weights () =
  Weights.of_nested
    (Weights.A
       [
         A [ W 0.; W 1.; W 0. ];
         A [ W 1.; W (-4.); W 1. ];
         A [ W 0.; W 1.; W 0. ];
       ])

let fresh_grids_2d ?(seed = 11) shape =
  Grids.of_list
    [
      ("u", Mesh.random ~seed shape);
      ("v", Mesh.random ~seed:(seed + 1) shape);
      ("out", Mesh.create shape);
      ("mesh", Mesh.random ~seed:(seed + 2) shape);
    ]

let run_on_backend ?config ?params backend ~shape group grids =
  let kernel = Jit.compile ?config backend ~shape group in
  kernel.Kernel.run ?params grids;
  grids

let assert_all_backends_agree ?params ~shape group =
  let reference =
    run_on_backend Jit.Interp ?params ~shape group (fresh_grids_2d shape)
  in
  List.iter
    (fun (backend, config) ->
      let got =
        run_on_backend backend ?params ~config ~shape group
          (fresh_grids_2d shape)
      in
      List.iter
        (fun name ->
          match
            Mesh.first_mismatch ~ulps:256 ~atol:1e-12
              (Grids.find reference name) (Grids.find got name)
          with
          | None -> ()
          | Some (p, expect, got) ->
              Alcotest.failf "%s differs from interp on %s at %s: %.17g vs \
                              %.17g (%d ulps)"
                (Jit.backend_name backend) name (Ivec.to_string p) expect got
                (Fcmp.ulp_diff expect got))
        (Grids.names reference))
    [
      (Jit.Compiled, Config.default);
      (Jit.Openmp, Config.default);
      (Jit.Openmp, Config.(with_workers 3 default));
      (Jit.Openmp, { Config.default with tile = Some [ 3; 5 ]; workers = 2 });
      (Jit.Openmp, { Config.default with multicolor = true });
      (Jit.Openmp, { Config.default with schedule = Config.Dag_levels });
      (Jit.Opencl, Config.default);
      (Jit.Opencl, Config.(with_workers 2 default));
      (Jit.Opencl, { Config.default with tall_skinny = (2, 3) });
    ]

let test_equiv_laplacian () =
  let shape = iv [ 12; 14 ] in
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:(Component.to_expr ~grid:"u" (five_point_weights ()))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  assert_all_backends_agree ~shape (Group.make ~label:"lap" [ s ])

let test_equiv_multi_input () =
  let shape = iv [ 10; 10 ] in
  let expr =
    Expr.(
      (Component.to_expr ~grid:"u" (five_point_weights ()) *: param "alpha")
      +: (read "v" (iv [ 0; 0 ]) *: const 0.5)
      -: read "u" (iv [ 1; -1 ]))
  in
  let s =
    Stencil.make ~label:"multi" ~output:"out" ~expr
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  assert_all_backends_agree ~params:[ ("alpha", 0.7) ] ~shape
    (Group.make ~label:"multi" [ s ])

let gsrb_group () =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let mk color =
    Stencil.make
      ~label:(if color = 0 then "red" else "black")
      ~output:"mesh"
      ~expr:(Component.to_expr ~grid:"mesh" w)
      ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
      ()
  in
  Group.make ~label:"gsrb" [ mk 0; mk 1 ]

let test_equiv_gsrb_in_place () =
  assert_all_backends_agree ~shape:(iv [ 11; 13 ]) (gsrb_group ())

let test_equiv_strided_restriction () =
  (* 2-D full-weighting style restriction using affine reads *)
  let shape_coarse = iv [ 6; 6 ] in
  let rd di dj =
    Expr.read_affine "fine"
      (Affine.make ~scale:(iv [ 2; 2 ]) ~offset:(iv [ di; dj ]))
  in
  let expr =
    Expr.(
      (rd 0 0 +: rd 0 1 +: rd 1 0 +: rd 1 1) *: const 0.25)
  in
  let s =
    Stencil.make ~label:"restrict" ~output:"coarse" ~expr
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0; 0 ] ~hi:[ 6; 6 ] ()))
      ()
  in
  let group = Group.make ~label:"restrict" [ s ] in
  let mk_grids () =
    Grids.of_list
      [
        ("fine", Mesh.random ~seed:5 (iv [ 12; 12 ]));
        ("coarse", Mesh.create shape_coarse);
      ]
  in
  let ref_grids = mk_grids () in
  (Jit.compile Jit.Interp ~shape:shape_coarse group).Kernel.run ref_grids;
  List.iter
    (fun backend ->
      let grids = mk_grids () in
      (Jit.compile backend ~shape:shape_coarse group).Kernel.run grids;
      check_bool
        (Jit.backend_name backend ^ " matches")
        true
        (Mesh.close ~ulps:256 ~atol:1e-12
           (Grids.find ref_grids "coarse")
           (Grids.find grids "coarse")))
    [ Jit.Compiled; Jit.Openmp; Jit.Opencl ];
  (* also spot-check one value by hand *)
  let fine = Grids.find ref_grids "fine" in
  let expect =
    0.25
    *. (Mesh.get fine (iv [ 4; 6 ])
       +. Mesh.get fine (iv [ 4; 7 ])
       +. Mesh.get fine (iv [ 5; 6 ])
       +. Mesh.get fine (iv [ 5; 7 ]))
  in
  check_float "hand value" expect
    (Mesh.get (Grids.find ref_grids "coarse") (iv [ 2; 3 ]))

let test_equiv_interpolation_out_map () =
  (* fine[2y+p] += coarse[y]: one stencil per parity, non-identity out_map *)
  let shape_iter = iv [ 6 ] in
  let mk p =
    Stencil.make
      ~label:(Printf.sprintf "interp_%d" p)
      ~output:"fine"
      ~out_map:(Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ p ]))
      ~expr:(Expr.read "coarse" (iv [ 0 ]))
      ~domain:(Domain.of_rect (Domain.rect ~lo:[ 0 ] ~hi:[ 6 ] ()))
      ()
  in
  let group = Group.make ~label:"interp" [ mk 0; mk 1 ] in
  let mk_grids () =
    Grids.of_list
      [
        ("coarse", Mesh.random ~seed:9 (iv [ 6 ]));
        ("fine", Mesh.create (iv [ 12 ]));
      ]
  in
  let ref_grids = mk_grids () in
  (Jit.compile Jit.Interp ~shape:shape_iter group).Kernel.run ref_grids;
  let coarse = Grids.find ref_grids "coarse" in
  let fine = Grids.find ref_grids "fine" in
  for y = 0 to 5 do
    check_float "even" (Mesh.get coarse (iv [ y ])) (Mesh.get fine (iv [ 2 * y ]));
    check_float "odd" (Mesh.get coarse (iv [ y ]))
      (Mesh.get fine (iv [ (2 * y) + 1 ]))
  done;
  List.iter
    (fun backend ->
      let grids = mk_grids () in
      (Jit.compile backend ~shape:shape_iter group).Kernel.run grids;
      check_bool
        (Jit.backend_name backend ^ " matches")
        true
        (Mesh.close ~ulps:256 ~atol:1e-12 fine (Grids.find grids "fine")))
    [ Jit.Compiled; Jit.Openmp; Jit.Opencl ]

(* random-stencil property: all backends match the interpreter *)

let random_stencil_prop =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 10000 in
      let* ghost = int_range 1 2 in
      let* colored = bool in
      let* coeffs = array_size (return 9) (float_range (-2.) 2.) in
      return (seed, ghost, colored, coeffs))
  in
  let arb =
    QCheck.make
      ~print:(fun (seed, ghost, colored, _) ->
        Printf.sprintf "seed=%d ghost=%d colored=%b" seed ghost colored)
      gen
  in
  QCheck.Test.make ~name:"random stencils: all backends = interp" ~count:40
    arb
    (fun (seed, ghost, colored, coeffs) ->
      let shape = iv [ 9; 11 ] in
      let w =
        Weights.of_alist
          (List.concat_map
             (fun di ->
               List.map
                 (fun dj ->
                   ( [ di; dj ],
                     Expr.const coeffs.(((di + 1) * 3) + dj + 1) ))
                 [ -1; 0; 1 ])
             [ -1; 0; 1 ])
      in
      let domain =
        if colored then Domain.colored 2 ~ghost ~color:0 ~ncolors:2
        else Domain.interior 2 ~ghost
      in
      let s =
        Stencil.make ~label:"rand" ~output:"out"
          ~expr:
            Expr.(
              Component.to_expr ~grid:"u" w
              +: (read "v" (iv [ 0; 0 ]) *: const 0.25))
          ~domain ()
      in
      let group = Group.make ~label:"rand" [ s ] in
      let run backend config =
        let grids = fresh_grids_2d ~seed shape in
        (Jit.compile ~config backend ~shape group).Kernel.run grids;
        Grids.find grids "out"
      in
      let reference = run Jit.Interp Config.default in
      List.for_all
        (fun (b, c) -> Mesh.close ~ulps:256 ~atol:1e-12 reference (run b c))
        [
          (Jit.Compiled, Config.default);
          (Jit.Openmp, Config.with_workers 3 Config.default);
          (Jit.Opencl, { Config.default with tall_skinny = (2, 4) });
        ])

(* ------------------------------------------------------------ polyform *)

(* deterministic pseudo-random value for a (grid, map) read *)
let read_value (g, m) =
  let h = Hashc.combine (Hashc.string g) (Affine.hash m) land 0xffff in
  (float_of_int h /. 65536.) -. 0.5

let test_polyform_laplacian () =
  let e =
    Expr.(
      (read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      -: (const 2. *: read "u" (iv [ 0 ])))
  in
  match Polyform.of_expr ~params:(fun _ -> nan) e with
  | None -> Alcotest.fail "linear expr not recognised"
  | Some p ->
      check_int "three monomials" 3 (List.length p.Polyform.monos);
      check_bool "all degree 1" true
        (List.for_all
           (fun m -> List.length m.Polyform.reads = 1)
           p.Polyform.monos)

let test_polyform_param_resolution () =
  let e = Expr.(param "a" *: (read "u" (iv [ 0 ]) +: param "b")) in
  match Polyform.of_expr ~params:(fun p -> if p = "a" then 2. else 3.) e with
  | None -> Alcotest.fail "not recognised"
  | Some p ->
      check_float "const term = a*b" 6. p.Polyform.const;
      (match p.Polyform.monos with
      | [ { Polyform.coeff; _ } ] -> check_float "coeff = a" 2. coeff
      | _ -> Alcotest.fail "expected one monomial")

let test_polyform_merges_like_terms () =
  let r = Expr.read "u" (iv [ 0 ]) in
  let e = Expr.(r +: r +: (const (-2.) *: r)) in
  match Polyform.of_expr ~params:(fun _ -> nan) e with
  | None -> Alcotest.fail "not recognised"
  | Some p -> check_int "cancelled" 0 (List.length p.Polyform.monos)

let test_polyform_rejects_read_division () =
  let e = Expr.(const 1. /: read "u" (iv [ 0 ])) in
  check_bool "read in denominator" true
    (Polyform.of_expr ~params:(fun _ -> nan) e = None);
  (* constant division is fine *)
  let e2 = Expr.(read "u" (iv [ 0 ]) /: const 4.) in
  check_bool "const division ok" true
    (Polyform.of_expr ~params:(fun _ -> nan) e2 <> None)

let test_polyform_rejects_high_degree () =
  let r = Expr.read "u" (iv [ 0 ]) in
  let rec pow n = if n = 1 then r else Expr.(r *: pow (n - 1)) in
  check_bool "degree 5 rejected" true
    (Polyform.of_expr ~params:(fun _ -> nan) (pow 5) = None);
  check_bool "degree 4 accepted" true
    (Polyform.of_expr ~params:(fun _ -> nan) (pow 4) <> None)

(* random polynomial-friendly expressions *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        (float_range (-3.) 3. >|= fun c -> Expr.Const c);
        ( pair (oneofl [ "u"; "v"; "w" ]) (pair (int_range (-2) 2) (int_range (-2) 2))
        >|= fun (g, (a, b)) -> Expr.read g (iv [ a; b ]) );
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            let* a = go (depth - 1) and* b = go (depth - 1) in
            oneofl Expr.[ a +: b; a -: b ] );
          ( 2,
            let* a = go (depth - 1) and* b = go (depth - 1) in
            return Expr.(a *: b) );
          (1, go (depth - 1) >|= Expr.neg);
        ]
  in
  go 3

let polyform_props =
  [
    QCheck.Test.make ~name:"polyform preserves semantics" ~count:500
      (QCheck.make ~print:Expr.to_string expr_gen)
      (fun e ->
        match Polyform.of_expr ~params:(fun _ -> nan) e with
        | None -> QCheck.assume_fail ()
        | Some p ->
            let reference =
              Expr.eval e ~read:(fun g m -> read_value (g, m))
                ~params:(fun _ -> nan)
            in
            let got = Polyform.eval p ~read_value in
            let scale = Float.max 1. (Float.abs reference) in
            Float.abs (got -. reference) /. scale < 1e-9);
    QCheck.Test.make ~name:"factorize preserves semantics" ~count:500
      (QCheck.make ~print:Expr.to_string expr_gen)
      (fun e ->
        match Polyform.of_expr ~params:(fun _ -> nan) e with
        | None -> QCheck.assume_fail ()
        | Some p ->
            let flat = Polyform.eval p ~read_value in
            let fact =
              Polyform.eval_factored (Polyform.factorize p) ~read_value
            in
            let scale = Float.max 1. (Float.abs flat) in
            Float.abs (fact -. flat) /. scale < 1e-9);
  ]

let test_closure_fallback_division () =
  (* a stencil whose expression reads in a denominator must still execute
     correctly through the closure fallback on every backend *)
  let shape = iv [ 8; 8 ] in
  let s =
    Stencil.make ~label:"recip" ~output:"out"
      ~expr:Expr.(const 1. /: (read "u" (iv [ 0; 0 ]) +: const 3.))
      ~domain:(Domain.interior 2 ~ghost:0)
      ()
  in
  assert_all_backends_agree ~shape (Group.make ~label:"recip" [ s ])

(* ------------------------------------------------------ exec edge cases *)

let test_constant_stencil () =
  (* an expression with no reads at all: polyform is a bare constant *)
  let shape = iv [ 5; 5 ] in
  let s =
    Stencil.make ~label:"fill" ~output:"out"
      ~expr:Expr.(const 2. *: param "k")
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let grids = Grids.of_list [ ("out", Mesh.create shape) ] in
  List.iter
    (fun backend ->
      Mesh.fill (Grids.find grids "out") 0.;
      let kernel =
        Jit.compile backend ~shape (Group.make ~label:"fill" [ s ])
      in
      kernel.Kernel.run ~params:[ ("k", 3.) ] grids;
      check_float
        (Jit.backend_name backend ^ " interior")
        6.
        (Mesh.get (Grids.find grids "out") (iv [ 2; 2 ]));
      check_float (Jit.backend_name backend ^ " ghost") 0.
        (Mesh.get (Grids.find grids "out") (iv [ 0; 0 ])))
    Jit.all_backends

let test_one_dimensional_backends () =
  let shape = iv [ 40 ] in
  let s =
    Stencil.make ~label:"d1" ~output:"out"
      ~expr:
        Expr.(
          (read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
          *: const 0.5)
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let group = Group.make ~label:"d1" [ s ] in
  let run backend config =
    let grids =
      Grids.of_list [ ("u", Mesh.random ~seed:4 shape); ("out", Mesh.create shape) ]
    in
    (Jit.compile ~config backend ~shape group).Kernel.run grids;
    Grids.find grids "out"
  in
  let reference = run Jit.Interp Config.default in
  List.iter
    (fun (b, c) ->
      check_bool (Jit.backend_name b ^ " 1-d") true
        (Mesh.close ~ulps:256 ~atol:1e-12 reference (run b c)))
    [
      (Jit.Compiled, Config.default);
      (Jit.Openmp, Config.with_workers 2 Config.default);
      (Jit.Opencl, { Config.default with tall_skinny = (2, 5) });
    ]

let test_kernel_reuse_across_grids () =
  (* one kernel, two different mesh sets: the run cache must rebuild when
     bindings change and results must be correct on both *)
  let shape = iv [ 8; 8 ] in
  let s =
    Stencil.make ~label:"twice" ~output:"out"
      ~expr:Expr.(const 2. *: read "u" (iv [ 0; 0 ]))
      ~domain:(Domain.interior 2 ~ghost:0)
      ()
  in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make ~label:"t" [ s ]) in
  let mk seed =
    Grids.of_list [ ("u", Mesh.random ~seed shape); ("out", Mesh.create shape) ]
  in
  let ga = mk 1 and gb = mk 2 in
  kernel.Kernel.run ga;
  kernel.Kernel.run gb;
  kernel.Kernel.run ga;
  let check grids =
    check_float "doubled"
      (2. *. Mesh.get (Grids.find grids "u") (iv [ 3; 4 ]))
      (Mesh.get (Grids.find grids "out") (iv [ 3; 4 ]))
  in
  check ga;
  check gb;
  (* rebinding a single mesh invalidates too *)
  let fresh = Mesh.random ~seed:9 shape in
  Grids.add ga "u" fresh;
  kernel.Kernel.run ga;
  check_float "rebound"
    (2. *. Mesh.get fresh (iv [ 5; 5 ]))
    (Mesh.get (Grids.find ga "out") (iv [ 5; 5 ]))

let test_param_change_invalidates () =
  let shape = iv [ 6 ] in
  let s =
    Stencil.make ~label:"scaled" ~output:"out"
      ~expr:Expr.(param "k" *: read "u" (iv [ 0 ]))
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make ~label:"p" [ s ]) in
  let grids =
    Grids.of_list [ ("u", Mesh.random ~seed:3 shape); ("out", Mesh.create shape) ]
  in
  kernel.Kernel.run ~params:[ ("k", 2.) ] grids;
  let v2 = Mesh.get (Grids.find grids "out") (iv [ 2 ]) in
  kernel.Kernel.run ~params:[ ("k", 10.) ] grids;
  let v10 = Mesh.get (Grids.find grids "out") (iv [ 2 ]) in
  check_float "params rebound" (5. *. v2) v10

let test_periodic_faces_all_backends () =
  (* grid-sized offsets (paper: boundary stencils "with (sometimes) large
     offsets") must survive every backend's index strength reduction *)
  let shape = iv [ 10; 10 ] in
  let group =
    Group.make ~label:"periodic"
      (Dsl.periodic_faces ~dims:2 ~interior:8 ~grid:"g")
  in
  let run backend =
    let grids = Grids.of_list [ ("g", Mesh.random ~seed:6 shape) ] in
    (Jit.compile backend ~shape group).Kernel.run grids;
    Grids.find grids "g"
  in
  let reference = run Jit.Interp in
  check_float "wraps" (Mesh.get reference (iv [ 8; 3 ]))
    (Mesh.get reference (iv [ 0; 3 ]));
  List.iter
    (fun b ->
      check_bool (Jit.backend_name b ^ " periodic") true
        (Mesh.close ~ulps:256 ~atol:1e-12 reference (run b)))
    [ Jit.Compiled; Jit.Openmp; Jit.Opencl ]

let test_pool_more_workers_than_tasks () =
  let hits = Array.make 3 0 in
  Pool.run_tasks (Pool.create ~workers:8)
    (Array.init 3 (fun i () -> hits.(i) <- hits.(i) + 1));
  check_bool "all ran once" true (Array.for_all (( = ) 1) hits);
  (* empty task array is a no-op *)
  Pool.run_tasks (Pool.create ~workers:4) [||]

(* ---------------------------------------------------- schedule checker *)

let test_checker_accepts_gsrb_plan () =
  let shape = iv [ 12; 12 ] in
  List.iter
    (fun config ->
      let waves = Schedule_check.openmp_plan config ~shape (gsrb_group ()) in
      match Schedule_check.check_waves waves with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "gsrb plan rejected: %s" msg)
    [
      Config.default;
      { Config.default with tile = Some [ 3; 3 ] };
      { Config.default with multicolor = true };
      { Config.default with schedule = Config.Dag_levels };
    ];
  let ocl = Schedule_check.opencl_plan Config.default ~shape (gsrb_group ()) in
  match Schedule_check.check_waves ocl with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "opencl plan rejected: %s" msg

let test_checker_rejects_bogus_wave () =
  (* two tiles of an in-place full-domain Gauss-Seidel placed in one wave
     must be flagged *)
  let s =
    Stencil.make ~label:"gs" ~output:"u"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let rect =
    Domain.resolve_rect ~shape:(iv [ 20 ])
      (List.hd s.Stencil.domain)
  in
  let tiles = Tiling.split_outer ~chunks:2 rect in
  let wave =
    List.map (fun t -> Schedule_check.{ stencil = s; tiles = [ t ] }) tiles
  in
  match Schedule_check.check_wave wave with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "conflicting wave accepted"

let gs_in_place_1d () =
  Stencil.make ~label:"gs" ~output:"u"
    ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
    ~domain:(Domain.interior 1 ~ghost:1)
    ()

let test_checker_collects_all_conflicts () =
  (* four adjacent tiles of an in-place Gauss-Seidel in one wave: every
     adjacent pair conflicts in both directions, and the checker must
     report all of them, not stop at the first *)
  let s = gs_in_place_1d () in
  let rect = Domain.resolve_rect ~shape:(iv [ 41 ]) (List.hd s.Stencil.domain) in
  let tiles = Tiling.split_outer ~chunks:4 rect in
  let wave =
    List.map (fun t -> Schedule_check.{ stencil = s; tiles = [ t ] }) tiles
  in
  let cs = Schedule_check.wave_conflicts wave in
  check_int "all six conflicts" 6 (List.length cs);
  List.iter
    (fun c ->
      check_bool "ordered pair" true
        Schedule_check.(c.first < c.second);
      Alcotest.(check string) "on grid u" "u" c.Schedule_check.grid)
    cs;
  let kinds =
    List.sort_uniq String.compare
      (List.map (fun c -> c.Schedule_check.kind) cs)
  in
  Alcotest.(check (list string)) "both directions" [ "read/write"; "write/read" ]
    kinds;
  (* the compat interface surfaces the surplus count *)
  (match Schedule_check.check_wave wave with
  | Error msg ->
      let has_more =
        let n = String.length msg in
        let rec go i = i < n && (msg.[i] = '+' || go (i + 1)) in
        go 0
      in
      check_bool "mentions remaining conflicts" true has_more
  | Ok () -> Alcotest.fail "conflicting wave accepted")

let test_checker_buckets_by_grid () =
  (* tasks whose footprints overlap cell-wise but live on different grids
     never reach the lattice intersection *)
  let mk label out src =
    Stencil.make ~label ~output:out
      ~expr:Expr.(read src (iv [ -1 ]) +: read src (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let t s =
    Schedule_check.
      { stencil = s; tiles = [ Domain.resolve_rect ~shape:(iv [ 20 ]) (List.hd s.Stencil.domain) ] }
  in
  check_int "disjoint grids clean" 0
    (List.length
       (Schedule_check.wave_conflicts [ t (mk "a" "x" "p"); t (mk "b" "y" "q") ]))

let test_force_parallel_override () =
  (* force_parallel makes the backend tile a stencil the analysis proved
     sequential; the certifier is the net that catches the bad assertion *)
  let group = Group.make ~label:"racy" [ gs_in_place_1d () ] in
  let shape = iv [ 20 ] in
  let config =
    {
      Config.default with
      Config.force_parallel = [ "gs" ];
      workers = 2;
      (* small work groups so the 1-d domain actually splits on opencl *)
      tall_skinny = (2, 8);
    }
  in
  (match
     Schedule_check.check_waves (Schedule_check.openmp_plan config ~shape group)
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forced racy plan certified");
  let code (d : Sf_analysis.Diagnostics.t) = d.Sf_analysis.Diagnostics.code in
  List.iter
    (fun backend ->
      let diags = Schedule_check.certify config ~shape ~backend group in
      check_bool "SF021 race reported" true
        (List.exists
           (fun d ->
             code d = "SF021"
             && d.Sf_analysis.Diagnostics.severity = Sf_analysis.Diagnostics.Error)
           diags);
      check_bool "SF022 override warned" true
        (List.exists (fun d -> code d = "SF022") diags))
    [ `Openmp; `Opencl ];
  (* without the override the same group plans sequentially and certifies *)
  Alcotest.(check (list string)) "default config clean" []
    (List.map code
       (Schedule_check.certify Config.default ~shape ~backend:`Openmp group));
  (* gsrb certifies clean under every config the plan tests cover *)
  Alcotest.(check (list string)) "gsrb certifies" []
    (List.map code
       (Schedule_check.certify
          { Config.default with multicolor = true }
          ~shape:(iv [ 12; 12 ]) ~backend:`Openmp (gsrb_group ())))

let test_jit_certification_gate () =
  Jit.clear_cache ();
  let shape = iv [ 20 ] in
  let racy = Group.make ~label:"racy_gate" [ gs_in_place_1d () ] in
  let config =
    {
      Config.default with
      Config.certify = true;
      force_parallel = [ "gs" ];
      workers = 2;
    }
  in
  (match Jit.compile ~config Jit.Openmp ~shape racy with
  | exception Jit.Certification_failed { backend; diagnostics; _ } ->
      Alcotest.(check string) "backend named" "openmp" backend;
      check_bool "carries the race" true
        (List.exists
           (fun (d : Sf_analysis.Diagnostics.t) ->
             d.Sf_analysis.Diagnostics.code = "SF021")
           diagnostics)
  | _ -> Alcotest.fail "racy plan compiled under certify");
  (* a clean group under certify compiles and still computes correctly *)
  let shape2 = iv [ 12; 12 ] in
  let group = gsrb_group () in
  let certified = { Config.default with Config.certify = true } in
  let ref_grids = fresh_grids_2d shape2 in
  let grids = fresh_grids_2d shape2 in
  (Jit.compile Jit.Interp ~shape:shape2 group).Kernel.run ref_grids;
  (Jit.compile ~config:certified Jit.Openmp ~shape:shape2 group).Kernel.run
    grids;
  check_float "certified kernel matches interp" 0.
    (Mesh.max_abs_diff (Grids.find ref_grids "mesh") (Grids.find grids "mesh"))

let random_plan_prop =
  (* random small groups: every plan the OpenMP backend would execute is
     conflict-free according to the exact lattice checker *)
  let gen =
    QCheck.Gen.(
      let* n_stencils = int_range 2 5 in
      let* seeds = list_size (return n_stencils) (int_range 0 1000) in
      return seeds)
  in
  let mk_stencil seed =
    let colored = seed mod 3 = 0 in
    let in_place = seed mod 2 = 0 in
    let out = if in_place then "mesh" else "out" in
    let domain =
      if colored then
        Domain.colored 2 ~ghost:1 ~color:(seed mod 2) ~ncolors:2
      else Domain.interior 2 ~ghost:1
    in
    let expr =
      if in_place && not colored then
        (* full-domain in-place: only the centre tap keeps it parallel *)
        Expr.(read "mesh" (iv [ 0; 0 ]) *: const 0.5)
      else
        Expr.(
          Component.to_expr ~grid:"mesh" (five_point_weights ())
          +: read "v" (iv [ 0; 0 ]))
    in
    Stencil.make ~label:(Printf.sprintf "s%d" seed) ~output:out ~expr ~domain
      ()
  in
  QCheck.Test.make ~name:"openmp plans are conflict-free" ~count:60
    (QCheck.make
       ~print:(fun seeds -> String.concat "," (List.map string_of_int seeds))
       gen)
    (fun seeds ->
      let group =
        Group.make ~label:"rand" (List.map mk_stencil seeds)
      in
      let shape = iv [ 11; 13 ] in
      List.for_all
        (fun config ->
          Schedule_check.check_waves
            (Schedule_check.openmp_plan config ~shape group)
          = Ok ())
        [
          Config.default;
          { Config.default with tile = Some [ 2; 5 ] };
          { Config.default with schedule = Config.Dag_levels };
        ])

(* ---------------------------------------------------------- jit passes *)

let test_fuse_pass_same_output () =
  let shape = iv [ 10 ] in
  let dom = Domain.interior 1 ~ghost:1 in
  let s1 =
    Stencil.make ~label:"a" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:dom ()
  in
  let s2 =
    Stencil.make ~label:"b" ~output:"out"
      ~expr:Expr.(read "out" (iv [ 0 ]) *: const 0.5)
      ~domain:dom ()
  in
  let g = Group.make ~label:"g" [ s1; s2 ] in
  let fused = Passes.fuse_pass ~shape ~live:None g in
  check_int "one stencil left" 1 (Group.length fused);
  (* semantics preserved end-to-end through the jit *)
  let run config =
    let grids =
      Grids.of_list
        [ ("u", Mesh.random ~seed:3 shape); ("out", Mesh.create shape) ]
    in
    (Jit.compile ~config Jit.Compiled ~shape g).Kernel.run grids;
    Grids.find grids "out"
  in
  let plain = run Config.default in
  let fused_result = run { Config.default with fuse = true } in
  check_bool "fusion preserves results" true
    (Mesh.close ~ulps:0 plain fused_result)

let test_fuse_pass_respects_liveness () =
  let shape = iv [ 10 ] in
  let dom = Domain.interior 1 ~ghost:1 in
  let producer =
    Stencil.make ~label:"p" ~output:"tmp"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:dom ()
  in
  let consumer =
    Stencil.make ~label:"c" ~output:"out"
      ~expr:Expr.(read "tmp" (iv [ 0 ]) *: const 2.)
      ~domain:dom ()
  in
  let g = Group.make ~label:"g" [ producer; consumer ] in
  (* without liveness info, tmp might be observed: no fusion *)
  check_int "conservative" 2
    (Group.length (Passes.fuse_pass ~shape ~live:None g));
  (* tmp declared dead: fusion happens *)
  check_int "fused" 1
    (Group.length (Passes.fuse_pass ~shape ~live:(Some [ "out" ]) g))

let test_dce_in_jit () =
  let shape = iv [ 10 ] in
  let dom = Domain.interior 1 ~ghost:1 in
  let dead =
    Stencil.make ~label:"dead" ~output:"scratch"
      ~expr:(Expr.read "u" (iv [ 0 ]))
      ~domain:dom ()
  in
  let live =
    Stencil.make ~label:"live" ~output:"out"
      ~expr:(Expr.read "u" (iv [ 0 ]))
      ~domain:dom ()
  in
  let g = Group.make ~label:"g" [ dead; live ] in
  let config = { Config.default with dce = Config.Dce [ "out" ] } in
  let kernel = Jit.compile ~config Jit.Compiled ~shape g in
  (* scratch is eliminated: running without binding it must now succeed *)
  let grids =
    Grids.of_list
      [ ("u", Mesh.random ~seed:1 shape); ("out", Mesh.create shape) ]
  in
  kernel.Kernel.run grids;
  check_bool "ran without the dead grid bound" true true

(* ----------------------------------------------------------------- JIT *)

let test_jit_cache () =
  Jit.clear_cache ();
  let shape = iv [ 8; 8 ] in
  let group = gsrb_group () in
  let k1 = Jit.compile Jit.Compiled ~shape group in
  let k2 = Jit.compile Jit.Compiled ~shape group in
  check_bool "same kernel object" true (k1 == k2);
  let hits, misses = Jit.cache_stats () in
  check_int "hits" 1 hits;
  check_int "misses" 1 misses;
  (* different shape misses *)
  ignore (Jit.compile Jit.Compiled ~shape:(iv [ 10; 10 ]) group);
  let _, misses = Jit.cache_stats () in
  check_int "shape misses" 2 misses;
  (* structurally equal group rebuilt from scratch hits *)
  ignore (Jit.compile Jit.Compiled ~shape (gsrb_group ()));
  let hits, _ = Jit.cache_stats () in
  check_int "structural hit" 2 hits

let test_jit_thread_safety () =
  (* kernels may be compiled from worker domains: racing compiles of the
     same key must agree on one cached kernel and not corrupt counters *)
  Jit.clear_cache ();
  let shape = iv [ 8; 8 ] in
  let group = gsrb_group () in
  let kernels =
    Array.init 4 (fun _ ->
        Stdlib.Domain.spawn (fun () -> Jit.compile Jit.Compiled ~shape group))
    |> Array.map Stdlib.Domain.join
  in
  Array.iter
    (fun k -> check_bool "one kernel retained" true (k == kernels.(0)))
    kernels;
  let hits, misses = Jit.cache_stats () in
  check_int "every compile counted" 4 (hits + misses);
  check_bool "at least one miss" true (misses >= 1);
  (* and the retained kernel is the one later lookups return *)
  check_bool "cache settled" true
    (Jit.compile Jit.Compiled ~shape group == kernels.(0))

let test_custom_backend_registry () =
  let calls = ref 0 in
  Jit.register_backend ~name:"unit-test-backend" (fun config ~shape group ->
      incr calls;
      Serial_backend.compile_compiled config ~shape group);
  check_bool "resolvable" true
    (Jit.backend_of_string "unit-test-backend" = Some (Jit.Custom "unit-test-backend"));
  check_bool "listed" true
    (List.mem "unit-test-backend" (Jit.registered_backends ()));
  let shape = iv [ 8; 8 ] in
  let group = gsrb_group () in
  let kernel = Jit.compile (Jit.Custom "unit-test-backend") ~shape group in
  check_int "compiler invoked once" 1 !calls;
  (* cached: second compile does not re-invoke *)
  ignore (Jit.compile (Jit.Custom "unit-test-backend") ~shape group);
  check_int "cached" 1 !calls;
  (* and it runs correctly *)
  let grids = fresh_grids_2d shape in
  kernel.Kernel.run grids;
  let reference = fresh_grids_2d shape in
  (Jit.compile Jit.Compiled ~shape group).Kernel.run reference;
  check_bool "custom = compiled" true
    (Mesh.close ~ulps:0 (Grids.find grids "mesh") (Grids.find reference "mesh"));
  (* built-in names are protected *)
  (try
     Jit.register_backend ~name:"openmp" (fun c ~shape g ->
         Serial_backend.compile_compiled c ~shape g);
     Alcotest.fail "built-in collision accepted"
   with Invalid_argument _ -> ());
  (* unknown custom name fails at compile *)
  try
    ignore (Jit.compile (Jit.Custom "never-registered") ~shape group);
    Alcotest.fail "unknown backend accepted"
  with Invalid_argument _ -> ()

let test_backend_names () =
  List.iter
    (fun b ->
      check_bool "roundtrip" true
        (Jit.backend_of_string (Jit.backend_name b) = Some b))
    Jit.all_backends;
  check_bool "unknown" true (Jit.backend_of_string "cuda" = None)

let test_validation_missing_grid () =
  let shape = iv [ 8; 8 ] in
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:(Component.to_expr ~grid:"u" (five_point_weights ()))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make ~label:"v" [ s ]) in
  let grids = Grids.of_list [ ("u", Mesh.random shape) ] in
  try
    kernel.Kernel.run grids;
    Alcotest.fail "missing grid accepted"
  with Invalid_argument _ -> ()

let test_validation_out_of_bounds () =
  let shape = iv [ 8; 8 ] in
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:(Component.to_expr ~grid:"u" (five_point_weights ()))
      ~domain:(Domain.interior 2 ~ghost:0)
      ()
  in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make ~label:"b" [ s ]) in
  let grids =
    Grids.of_list [ ("u", Mesh.random shape); ("out", Mesh.create shape) ]
  in
  try
    kernel.Kernel.run grids;
    Alcotest.fail "out-of-bounds accepted"
  with Invalid_argument _ -> ()

let test_missing_param () =
  let shape = iv [ 8; 8 ] in
  let s =
    Stencil.make ~label:"p" ~output:"out"
      ~expr:Expr.(read "u" (iv [ 0; 0 ]) *: param "lambda")
      ~domain:(Domain.interior 2 ~ghost:0)
      ()
  in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make ~label:"p" [ s ]) in
  let grids =
    Grids.of_list [ ("u", Mesh.random shape); ("out", Mesh.create shape) ]
  in
  (try
     kernel.Kernel.run grids;
     Alcotest.fail "missing param accepted"
   with Invalid_argument _ -> ());
  kernel.Kernel.run ~params:[ ("lambda", 2.) ] grids;
  check_float "param applied"
    (2. *. Mesh.get (Grids.find grids "u") (iv [ 3; 3 ]))
    (Mesh.get (Grids.find grids "out") (iv [ 3; 3 ]))

(* --------------------------------------------- degenerate-domain matrix *)

let all_backends = [ Jit.Interp; Jit.Compiled; Jit.Openmp; Jit.Opencl ]

let run_edge backend ~shape ~domain ~expr =
  let s = Stencil.make ~label:"edge" ~output:"out" ~expr ~domain () in
  let group = Group.make ~label:"edge" [ s ] in
  let grids =
    Grids.of_list
      [ ("u", Mesh.random ~seed:11 shape); ("out", Mesh.create shape) ]
  in
  (Jit.compile backend ~shape group).Kernel.run grids;
  Grids.find grids "out"

let test_empty_domain_all_backends () =
  (* lo = hi resolves to zero lattice points: a legal no-op sweep *)
  let shape = iv [ 8; 8 ] in
  let domain = Domain.of_rect (Domain.rect ~lo:[ 3; 3 ] ~hi:[ 3; 3 ] ()) in
  let expr = Expr.(read "u" (iv [ 0; 0 ]) +: const 1.) in
  List.iter
    (fun b ->
      let out = run_edge b ~shape ~domain ~expr in
      check_bool
        (Jit.backend_name b ^ " writes nothing")
        true
        (Mesh.close ~ulps:0 out (Mesh.create shape)))
    all_backends

let test_single_cell_domain_all_backends () =
  let shape = iv [ 8; 8 ] in
  let domain = Domain.of_rect (Domain.rect ~lo:[ 3; 4 ] ~hi:[ 4; 5 ] ()) in
  let expr = Expr.(read "u" (iv [ 0; 0 ]) +: const 1.) in
  let u = Mesh.random ~seed:11 shape in
  List.iter
    (fun b ->
      let out = run_edge b ~shape ~domain ~expr in
      check_float
        (Jit.backend_name b ^ " writes the cell")
        (Mesh.get u (iv [ 3; 4 ]) +. 1.)
        (Mesh.get out (iv [ 3; 4 ]));
      (* and only that cell *)
      Mesh.set out (iv [ 3; 4 ]) 0.;
      check_bool
        (Jit.backend_name b ^ " touches nothing else")
        true
        (Mesh.close ~ulps:0 out (Mesh.create shape)))
    all_backends

let test_stride_exceeds_extent_all_backends () =
  (* stride 50 over an extent of ~8: exactly one lattice point per axis *)
  let shape = iv [ 8; 10 ] in
  let domain =
    Domain.of_rect
      (Domain.rect ~stride:[ 50; 50 ] ~lo:[ 1; 1 ] ~hi:[ -1; -1 ] ())
  in
  let expr = Expr.(read "u" (iv [ 0; 1 ]) *: const 2.) in
  let reference = run_edge Jit.Interp ~shape ~domain ~expr in
  check_bool "interp wrote the single point" true
    (Mesh.get reference (iv [ 1; 1 ]) <> 0.);
  List.iter
    (fun b ->
      check_bool
        (Jit.backend_name b ^ " agrees")
        true
        (Mesh.close ~ulps:0 reference (run_edge b ~shape ~domain ~expr)))
    all_backends

let test_overlapping_union_all_backends () =
  (* overlapping union rects are fine out-of-place: the overlap is written
     twice with the same value, so every schedule lands on the same mesh *)
  let shape = iv [ 10; 10 ] in
  let domain =
    Domain.union
      (Domain.of_rect (Domain.rect ~lo:[ 1; 1 ] ~hi:[ 6; 6 ] ()))
      (Domain.of_rect (Domain.rect ~lo:[ 4; 4 ] ~hi:[ 9; 9 ] ()))
  in
  let expr =
    Expr.(
      (read "u" (iv [ 1; 0 ]) *: const 0.5) +: (read "u" (iv [ -1; 0 ]) *: const 0.5))
  in
  let reference = run_edge Jit.Interp ~shape ~domain ~expr in
  check_bool "overlap region written" true
    (Mesh.get reference (iv [ 5; 5 ]) <> 0.);
  List.iter
    (fun b ->
      check_bool
        (Jit.backend_name b ^ " agrees")
        true
        (Mesh.close ~ulps:256 ~atol:1e-12 reference
           (run_edge b ~shape ~domain ~expr)))
    all_backends

(* ------------------------------------------------------ pool regression *)

let test_pool_worker_count_bitwise () =
  (* a plan the certifier passes as race-free must be bitwise
     deterministic across worker counts (SF_WORKERS=1 vs N) *)
  let shape = iv [ 12; 14 ] in
  let group = gsrb_group () in
  let diags =
    Schedule_check.certify
      (Config.with_workers 4 Config.default)
      ~shape ~backend:`Openmp group
  in
  check_bool "gsrb certifies race-free" false
    (Sf_analysis.Diagnostics.has_errors diags);
  let run workers =
    let grids = fresh_grids_2d shape in
    (Jit.compile
       ~config:(Config.with_workers workers Config.default)
       Jit.Openmp ~shape group)
      .Kernel.run grids;
    Grids.find grids "mesh"
  in
  let serial = run 1 in
  check_bool "1 vs 4 workers bitwise identical" true
    (Mesh.close ~ulps:0 serial (run 4));
  check_bool "1 vs 8 workers bitwise identical" true
    (Mesh.close ~ulps:0 serial (run 8))

let () =
  Alcotest.run "sf_backends"
    [
      ( "pool",
        [
          Alcotest.test_case "runs all" `Quick test_pool_runs_all;
          Alcotest.test_case "sequential order" `Quick test_pool_sequential;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "parallel_range chunks" `Quick
            test_parallel_range_chunks;
          Alcotest.test_case "exception leaves pool reusable" `Quick
            test_pool_exception_leaves_pool_reusable;
          Alcotest.test_case "nested submit runs inline" `Quick
            test_pool_nested_runs_inline;
          Alcotest.test_case "abort skips are counted" `Quick
            test_pool_abort_skips_counted;
          Alcotest.test_case "re-entrant exception re-raised" `Quick
            test_pool_reentrant_exception;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "serial cutoff" `Quick test_pool_serial_cutoff;
          Alcotest.test_case "parallel_range serial cutoff" `Quick
            test_parallel_range_serial_cutoff;
          Alcotest.test_case "reset_stats resets spawned" `Quick
            test_reset_stats_resets_spawned;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "split partitions" `Quick test_split_partitions;
          Alcotest.test_case "split strided" `Quick test_split_strided;
          Alcotest.test_case "split outer" `Quick test_split_outer;
          Alcotest.test_case "tall skinny" `Quick test_tall_skinny;
          Alcotest.test_case "oversized tile" `Quick test_split_oversized_tile;
          Alcotest.test_case "multicolor" `Quick test_multicolor_interleave;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "laplacian" `Quick test_equiv_laplacian;
          Alcotest.test_case "multi-input + params" `Quick
            test_equiv_multi_input;
          Alcotest.test_case "gsrb in-place" `Quick test_equiv_gsrb_in_place;
          Alcotest.test_case "strided restriction" `Quick
            test_equiv_strided_restriction;
          Alcotest.test_case "interpolation out_map" `Quick
            test_equiv_interpolation_out_map;
        ] );
      ( "equivalence-props",
        [ QCheck_alcotest.to_alcotest random_stencil_prop ] );
      ( "polyform",
        [
          Alcotest.test_case "laplacian" `Quick test_polyform_laplacian;
          Alcotest.test_case "param resolution" `Quick
            test_polyform_param_resolution;
          Alcotest.test_case "like terms merge" `Quick
            test_polyform_merges_like_terms;
          Alcotest.test_case "read division rejected" `Quick
            test_polyform_rejects_read_division;
          Alcotest.test_case "degree cap" `Quick
            test_polyform_rejects_high_degree;
          Alcotest.test_case "closure fallback" `Quick
            test_closure_fallback_division;
        ] );
      ("polyform-props", List.map QCheck_alcotest.to_alcotest polyform_props);
      ( "edge-cases",
        [
          Alcotest.test_case "constant stencil" `Quick test_constant_stencil;
          Alcotest.test_case "1-d backends" `Quick
            test_one_dimensional_backends;
          Alcotest.test_case "kernel reuse" `Quick
            test_kernel_reuse_across_grids;
          Alcotest.test_case "param invalidation" `Quick
            test_param_change_invalidates;
          Alcotest.test_case "pool oversubscription" `Quick
            test_pool_more_workers_than_tasks;
          Alcotest.test_case "periodic faces" `Quick
            test_periodic_faces_all_backends;
          Alcotest.test_case "empty domain" `Quick
            test_empty_domain_all_backends;
          Alcotest.test_case "single cell" `Quick
            test_single_cell_domain_all_backends;
          Alcotest.test_case "stride > extent" `Quick
            test_stride_exceeds_extent_all_backends;
          Alcotest.test_case "overlapping union" `Quick
            test_overlapping_union_all_backends;
          Alcotest.test_case "worker-count bitwise" `Quick
            test_pool_worker_count_bitwise;
        ] );
      ( "schedule-check",
        [
          Alcotest.test_case "gsrb plans safe" `Quick
            test_checker_accepts_gsrb_plan;
          Alcotest.test_case "bogus wave rejected" `Quick
            test_checker_rejects_bogus_wave;
          Alcotest.test_case "all conflicts collected" `Quick
            test_checker_collects_all_conflicts;
          Alcotest.test_case "grid bucketing" `Quick
            test_checker_buckets_by_grid;
          Alcotest.test_case "force_parallel certify" `Quick
            test_force_parallel_override;
          QCheck_alcotest.to_alcotest random_plan_prop;
        ] );
      ( "passes",
        [
          Alcotest.test_case "fuse same output" `Quick
            test_fuse_pass_same_output;
          Alcotest.test_case "fuse liveness" `Quick
            test_fuse_pass_respects_liveness;
          Alcotest.test_case "dce in jit" `Quick test_dce_in_jit;
        ] );
      ( "jit",
        [
          Alcotest.test_case "cache" `Quick test_jit_cache;
          Alcotest.test_case "thread safety" `Quick test_jit_thread_safety;
          Alcotest.test_case "backend names" `Quick test_backend_names;
          Alcotest.test_case "custom registry" `Quick
            test_custom_backend_registry;
          Alcotest.test_case "missing grid" `Quick test_validation_missing_grid;
          Alcotest.test_case "out of bounds" `Quick
            test_validation_out_of_bounds;
          Alcotest.test_case "missing param" `Quick test_missing_param;
          Alcotest.test_case "certification gate" `Quick
            test_jit_certification_gate;
        ] );
    ]
