(* @serve-smoke: a short manual soak of the live daemon.

   Spawns sfserved on a temp socket, fires --count requests (default
   200) from --tenants concurrent tenants (default 4) drawn round-robin
   from the corpus, then prints the request-latency p50/p99 the server
   itself measured (STATS), shuts the daemon down and checks it exits 0.
   Any failed request fails the soak.  A 60s hard watchdog bounds the
   whole run regardless of server state.

   Usage: serve_soak.exe SFSERVED_EXE CORPUS_DIR [COUNT] [TENANTS] *)

module P = Sf_serve.Protocol
module Client = Sf_serve.Client
module Corpus = Sf_fuzz.Corpus
module Json = Sf_trace.Json

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_soak: FAIL: " ^ m);
      exit 1)
    fmt

let () =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 60.;
         prerr_endline "serve_soak: 60s watchdog expired";
         exit 2)
       ())

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  if Array.length Sys.argv < 3 then
    die "usage: serve_soak SFSERVED CORPUS_DIR [COUNT] [TENANTS]";
  let sfserved = Sys.argv.(1) in
  let corpus_dir = Sys.argv.(2) in
  let count = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 200 in
  let tenants = if Array.length Sys.argv > 4 then int_of_string Sys.argv.(4) else 4 in
  let programs =
    match Corpus.files corpus_dir with
    | [] -> die "no corpus files under %s" corpus_dir
    | files -> Array.of_list (List.map read_file files)
  in
  let socket = Printf.sprintf "/tmp/sf-soak-%d.sock" (Unix.getpid ()) in
  if Sys.file_exists socket then Sys.remove socket;
  let daemon =
    Unix.create_process sfserved
      [| "sfserved"; "--socket"; socket; "--threads"; "4"; "--workers"; "1" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  at_exit (fun () ->
      match Unix.waitpid [ Unix.WNOHANG ] daemon with
      | 0, _ ->
          (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] daemon) with Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
  let rec await n =
    if Sys.file_exists socket then ()
    else if n = 0 then die "daemon never bound %s" socket
    else begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 200;
  let failures = Atomic.make 0 in
  let per_tenant = count / tenants in
  let clients =
    Array.init tenants (fun i ->
        match
          Client.connect_unix ~tenant:(Printf.sprintf "soak-%d" i) socket
        with
        | Ok c -> c
        | Error m -> die "soak-%d: connect: %s" i m)
  in
  let worker i =
    let c = clients.(i) in
    for j = 0 to per_tenant - 1 do
      let program = programs.((j + (i * 7)) mod Array.length programs) in
      match
        Client.solve c
          { P.program; backend = "openmp"; workers = 1; reps = 1; fault = "" }
      with
      | Ok (Client.Solved _) -> ()
      | Ok (Client.Failed { code; message }) ->
          Printf.eprintf "soak-%d: request %d failed: %s: %s\n" i j code
            message;
          Atomic.incr failures
      | Error m -> die "soak-%d: transport: %s" i m
    done
  in
  let threads = List.init tenants (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let c0 = clients.(0) in
  let stats = match Client.stats c0 with Ok s -> s | Error m -> die "stats: %s" m in
  (match Json.of_string stats with
  | Error m -> die "STATS did not parse: %s" m
  | Ok doc -> (
      match Json.member "series" doc with
      | Some (Json.Arr series) -> (
          let request_series =
            List.find_opt
              (fun s ->
                match Json.member "name" s with
                | Some (Json.Str n) -> n = "serve.request_us"
                | _ -> false)
              series
          in
          match request_series with
          | None -> die "STATS has no serve.request_us series"
          | Some s ->
              let f key =
                match Json.member key s with
                | Some (Json.Num v) -> v
                | _ -> nan
              in
              Printf.printf
                "serve_soak: %d requests, %d tenants, %d failures; latency \
                 n=%.0f p50=%.0f us p99=%.0f us\n%!"
                (per_tenant * tenants) tenants (Atomic.get failures) (f "n")
                (f "p50_us") (f "p99_us"))
      | _ -> die "STATS has no series array"));
  (match Client.shutdown c0 with
  | Ok () -> ()
  | Error m -> die "shutdown: %s" m);
  Array.iter Client.close clients;
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "daemon exited %d" n
  | _, _ -> die "daemon killed by signal");
  if Atomic.get failures > 0 then die "%d failed requests" (Atomic.get failures);
  print_endline "serve_soak: ok"
