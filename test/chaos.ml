(* Chaos campaign: a 16^3 multigrid solve under every fault kind, each
   scenario asserting the supervised solver heals — final residual within
   2x of the fault-free norm.  Run by `dune build @resilience` (wired into
   the default runtest).

   Scenarios are deterministic: every clause is occurrence- or
   seed-triggered, so a failure here replays exactly. *)

open Sf_backends
open Sf_resilience
module Mg = Sf_hpgmg.Mg
module Problem = Sf_hpgmg.Problem
module Spmd = Sf_distributed.Spmd
module Trace = Sf_trace.Trace

let cycles = 4
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.printf "  FAIL: %s\n%!" m)
    fmt

let solve ~backend ~workers () =
  let config =
    {
      Mg.default_config with
      backend;
      jit = Config.with_workers workers Config.default;
    }
  in
  let solver = Mg.create ~config ~n:16 () in
  Problem.setup_poisson (Mg.finest solver);
  let norms = Mg.solve_resilient ~cycles solver in
  (norms.(Array.length norms - 1), solver)

let reset () =
  Fault.disarm ();
  Guard.clear_mode ();
  Fault.reset_counts ();
  Guard.reset_counts ();
  Supervisor.reset_counts ();
  Checkpoint.reset_counts ();
  Jit.clear_cache ()

let scenario name ~spec ~backend ?(workers = 1) ~clean_norm check_extra =
  reset ();
  Fault.arm_exn spec;
  Printf.printf "chaos: %-28s %s\n%!" name spec;
  (match solve ~backend ~workers () with
  | exception e ->
      fail "%s: solver died: %s" name (Printexc.to_string e)
  | r, solver ->
      if not (Float.is_finite r) then fail "%s: non-finite residual" name
      else if r > 2. *. clean_norm then
        fail "%s: residual %.3e exceeds 2x clean norm %.3e" name r clean_norm
      else begin
        Printf.printf
          "  healed: residual %.3e (clean %.3e), %d injected, %d retries, \
           %d failovers, %d rollbacks, %d guard trips, final backend %s\n%!"
          r clean_norm (Fault.injected_total ())
          (Supervisor.retries_total ())
          (Supervisor.failovers_total ())
          (Checkpoint.rollbacks_total ())
          (Guard.trips_total ())
          (Jit.backend_name (Mg.active_backend solver));
        check_extra solver
      end);
  Fault.disarm ()

let require name cond = if not cond then fail "%s" name

let () =
  reset ();
  (* fault-free reference (same supervised code path, nothing armed) *)
  let clean_norm, _ = solve ~backend:Jit.Compiled ~workers:1 () in
  let clean_omp, _ = solve ~backend:Jit.Openmp ~workers:2 () in
  Printf.printf "chaos: clean norms %.3e (compiled) / %.3e (openmp)\n%!"
    clean_norm clean_omp;

  (* 1. persistent kernel raise on the primary backend: every openmp
     kernel invocation dies, the supervisor must fail the whole campaign
     over to the next backend in the chain *)
  scenario "kernel raise -> failover" ~spec:"kernel:raise@match=openmp"
    ~backend:Jit.Openmp ~workers:2 ~clean_norm:clean_omp (fun _ ->
      require "failover happened" (Supervisor.failovers_total () > 0));

  (* 2. transient wave failures: heal inside the retry budget, no
     failover needed *)
  scenario "wave transient -> retry" ~spec:"wave:transient@n=2@count=2"
    ~backend:Jit.Openmp ~workers:2 ~clean_norm:clean_omp (fun _ ->
      require "retries happened" (Supervisor.retries_total () > 0));

  (* 3. NaN poisoning of the finest solution mid-campaign: the divergence
     detector / guard must catch it and roll back to a checkpoint *)
  scenario "mg nan -> rollback" ~spec:"mg:nan@n=6@count=1"
    ~backend:Jit.Compiled ~clean_norm (fun _ ->
      require "rollback happened" (Checkpoint.rollbacks_total () > 0));

  (* 4. Inf poisoning, same healing path *)
  scenario "mg inf -> rollback" ~spec:"mg:inf@n=9@count=1"
    ~backend:Jit.Compiled ~clean_norm (fun _ ->
      require "rollback happened" (Checkpoint.rollbacks_total () > 0));

  (* 5. slow chunks: a delay is absorbed without any recovery action —
     the solve just takes longer *)
  scenario "chunk delay -> absorbed" ~spec:"chunk:delay=0.001@count=4"
    ~backend:Jit.Openmp ~workers:2 ~clean_norm:clean_omp (fun _ -> ());

  (* 6. rank death: kill one rank of a 2x2 SPMD smoother, recover it,
     keep sweeping *)
  reset ();
  Printf.printf "chaos: %-28s %s\n%!" "spmd rank death -> recover"
    "rank:kill@n=3@count=1";
  (try
     let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:8 in
     Spmd.fill_interior t ~base:"f" (fun x ->
         sin (10. *. x.(0)) +. cos (7. *. x.(1)));
     Spmd.init_dinv t;
     Fault.arm_exn "rank:kill@n=3@count=1";
     for _ = 1 to 6 do
       Spmd.run_group t (Spmd.gsrb_smooth_group t)
     done;
     Fault.disarm ();
     require "a rank died" (List.length (Spmd.dead_ranks t) = 1);
     require "recovered one rank" (Spmd.recover t = 1);
     for _ = 1 to 2 do
       Spmd.run_group t (Spmd.gsrb_smooth_group t)
     done;
     let u = Spmd.gather t ~base:"u" in
     let finite = ref true in
     for i = 0 to Sf_mesh.Mesh.size u - 1 do
       if not (Float.is_finite (Sf_mesh.Mesh.get_flat u i)) then finite := false
     done;
     require "solution finite after recovery" !finite;
     Printf.printf "  healed: 1 rank killed, recovered, solution finite\n%!"
   with e -> fail "spmd scenario died: %s" (Printexc.to_string e));

  (* 7. observability: under tracing, the healing decisions must be
     visible as counters (the --profile contract) *)
  reset ();
  Trace.clear ();
  Trace.set_enabled true;
  Fault.arm_exn "kernel:raise@match=openmp";
  ignore (solve ~backend:Jit.Openmp ~workers:2 ());
  Fault.disarm ();
  let c = Trace.counters () in
  Trace.set_enabled false;
  Trace.clear ();
  require "traced faults_injected > 0" (c.Trace.faults_injected > 0);
  require "traced retries > 0" (c.Trace.retries > 0);
  require "traced failovers > 0" (c.Trace.failovers > 0);
  reset ();

  if !failures > 0 then begin
    Printf.printf "chaos: %d scenario failure(s)\n" !failures;
    exit 1
  end;
  print_endline "chaos: all scenarios healed"
