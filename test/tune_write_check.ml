(* Concurrent-writer probe for the Autotune DB: one process hammering
   [db_persist] against a shared path.  test_serve spawns four of these
   at once; every write is a whole-document read-modify-write published
   by atomic rename, so each writer must observe a well-formed document
   after each of its own writes no matter how the others interleave.
   Exit 0 = never saw a torn DB, 1 = corruption observed.

   Usage: tune_write_check.exe DB_PATH CHILD_INDEX *)

module Autotune = Sf_backends.Autotune
module Config = Sf_backends.Config
module Jit = Sf_backends.Jit
module Gen = Sf_fuzz.Gen

let () =
  let db = Sys.argv.(1) in
  let child = int_of_string Sys.argv.(2) in
  let spec = Gen.spec ~seed:45 () in
  let plan =
    { Autotune.fusion = false; tile = None; time_tile = 1; time_block = 0 }
  in
  let ok = ref true in
  for i = 0 to 24 do
    Autotune.db_persist ~db ~config:Config.default ~backend:Jit.Openmp
      ~shape:spec.Gen.shape
      ~reps:((child * 1000) + i + 1)
      ~plan spec.Gen.group;
    if not (Autotune.db_is_wellformed ~db) then ok := false
  done;
  exit (if !ok then 0 else 1)
