(* The benchmark harness: regenerates every evaluation artefact of the
   paper (Figures 6-9) plus the ablations documented in DESIGN.md, and a
   Bechamel microbenchmark suite comparing generated kernels to the
   hand-written baseline per operator.

   Usage:
     main.exe [command] [--size N] [--sizes 8,16,32] [--cycles N]
              [--workers N] [--repeats N] [--csv DIR] [--trace FILE]
   command: all (default) | stream | fig7 | fig8 | fig9 | tiling
            | multicolor | waves | fusion | fusion-bench | autotune
            | distributed | verify | codegen | micro | pool *)

open Sf_harness

let trace_file = ref None

let parse_args () =
  let opts = ref Experiments.default_opts in
  let cmd = ref "all" in
  let rec go = function
    | [] -> ()
    | "--trace" :: path :: rest ->
        trace_file := Some path;
        Sf_trace.Trace.set_enabled true;
        go rest
    | "--size" :: v :: rest ->
        opts := { !opts with Experiments.size = int_of_string v };
        go rest
    | "--sizes" :: v :: rest ->
        let sizes = List.map int_of_string (String.split_on_char ',' v) in
        opts := { !opts with Experiments.sizes };
        go rest
    | "--cycles" :: v :: rest ->
        opts := { !opts with Experiments.cycles = int_of_string v };
        go rest
    | "--workers" :: v :: rest ->
        opts := { !opts with Experiments.workers = int_of_string v };
        go rest
    | "--repeats" :: v :: rest ->
        opts := { !opts with Experiments.repeats = int_of_string v };
        go rest
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Experiments.csv_dir := Some dir;
        go rest
    | c :: rest when c <> "" && c.[0] <> '-' ->
        cmd := c;
        go rest
    | junk :: _ -> failwith ("unknown argument: " ^ junk)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!cmd, !opts)

(* ------------------------------------------------- bechamel micro suite *)

let micro_tests () =
  let open Bechamel in
  let open Sf_backends in
  let open Sf_hpgmg in
  let n = 16 in
  let mk_level () =
    let level = Level.create ~n in
    Level.set_beta level Problem.beta_smooth;
    Baseline.init_dinv level;
    level
  in
  let snowflake_test name group =
    let level = mk_level () in
    let kernel = Jit.compile Jit.Compiled ~shape:level.Level.shape group in
    Test.make ~name
      (Staged.stage (fun () ->
           kernel.Kernel.run ~params:(Level.params level) level.Level.grids))
  in
  let hand_test name f =
    let level = mk_level () in
    Test.make ~name (Staged.stage (fun () -> f level))
  in
  Test.make_grouped ~name:"operators"
    [
      snowflake_test "cc7pt/snowflake"
        (Snowflake.Group.make ~label:"cc7"
           (Operators.boundaries ~grid:"u"
           @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ]));
      hand_test "cc7pt/hand" (fun level ->
          Baseline.laplacian_cc level ~out:(Level.res level)
            ~input:(Level.u level));
      snowflake_test "jacobi/snowflake" Operators.jacobi_smooth;
      hand_test "jacobi/hand" Baseline.jacobi_cc;
      snowflake_test "gsrb/snowflake" Operators.gsrb_smooth;
      hand_test "gsrb/hand" Baseline.smooth_gsrb;
    ]

let run_micro () =
  let open Bechamel in
  print_endline "\n==== Bechamel microbenchmarks (16^3 per operator) ====";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let t = Sf_util.Tabular.create ~headers:[ "kernel"; "time/run" ] in
  List.iter
    (fun (name, ns) ->
      Sf_util.Tabular.add_row t
        [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
    (List.sort compare !rows);
  Sf_util.Tabular.print t

let () =
  let cmd, opts = parse_args () in
  (match cmd with
  | "all" ->
      Experiments.run_all opts;
      run_micro ()
  | "stream" -> Experiments.run_stream opts
  | "fig7" -> Experiments.run_fig7 opts
  | "fig8" -> Experiments.run_fig8 opts
  | "fig9" -> Experiments.run_fig9 opts
  | "tiling" -> Experiments.run_tiling opts
  | "multicolor" -> Experiments.run_multicolor opts
  | "waves" -> Experiments.run_waves opts
  | "fusion" -> Experiments.run_fusion opts
  | "fusion-bench" -> Experiments.run_fusion_bench opts
  | "autotune" -> Experiments.run_autotune opts
  | "distributed" -> Experiments.run_distributed opts
  | "verify" -> Experiments.run_verify opts
  | "codegen" -> Experiments.run_codegen opts
  | "micro" -> run_micro ()
  | "pool" -> Experiments.run_pool opts
  | other ->
      Printf.eprintf "unknown command %S\n" other;
      exit 2);
  (match !trace_file with
  | Some path ->
      Sf_trace.Trace.write_chrome_json path;
      Printf.printf "wrote Chrome trace (%d events) to %s\n"
        (List.length (Sf_trace.Trace.events ()))
        path
  | None -> ());
  print_newline ()
