(* Full geometric multigrid from the library, on two problems:

     dune exec examples/multigrid_demo.exe

   1. constant-coefficient Poisson with a manufactured solution —
      demonstrates per-cycle residual reduction and O(h²) accuracy, and
   2. a variable-coefficient (heterogeneous medium) problem solved with
      the same single-source solver on two different backends, with
      matching answers.

   This is the paper's §V workload end-to-end: GSRB smoothers, residual,
   restriction, interpolation and boundary stencils on every level, all
   generated from the same Snowflake descriptions. *)

open Sf_mesh
open Sf_backends
open Sf_hpgmg

let () =
  (* --- Poisson, accuracy study ------------------------------------- *)
  print_endline "Poisson -Δu = f, u* = sin(πx)sin(πy)sin(πz):";
  let errs =
    List.map
      (fun n ->
        let solver = Mg.create ~n () in
        Problem.setup_poisson (Mg.finest solver);
        let norms = Mg.solve ~cycles:8 solver in
        let err =
          Level.error_vs (Mg.finest solver)
            (Level.u (Mg.finest solver))
            Problem.exact_sine
        in
        Printf.printf
          "  n=%2d: residual %.2e -> %.2e after 8 V-cycles, error vs exact \
           %.3e\n"
          n norms.(0) norms.(8) err;
        err)
      [ 8; 16; 32 ]
  in
  (match errs with
  | [ e8; e16; e32 ] ->
      Printf.printf
        "  error ratios: %.2f (8->16), %.2f (16->32) — second order is 4.0\n"
        (e8 /. e16) (e16 /. e32);
      assert (e8 /. e16 > 2.5 && e16 /. e32 > 2.5)
  | _ -> assert false);

  (* --- variable coefficients, two backends -------------------------- *)
  print_endline
    "\nVariable-coefficient problem, same source on two backends:";
  let solve backend =
    let config =
      { Mg.default_config with backend; jit = Config.with_workers 2 Config.default }
    in
    let solver = Mg.create ~config ~n:16 () in
    Mg.set_beta solver Problem.beta_smooth;
    Problem.setup_variable ~seed:123 (Mg.finest solver);
    Mg.set_beta solver Problem.beta_smooth;
    let norms = Mg.solve ~cycles:6 solver in
    Printf.printf "  %-8s backend: residual %.3e -> %.3e\n"
      (Jit.backend_name backend) norms.(0) norms.(6);
    Level.u (Mg.finest solver)
  in
  let u_omp = solve Jit.Openmp in
  let u_ocl = solve Jit.Opencl in
  let diff = Mesh.max_abs_diff u_omp u_ocl in
  Printf.printf "  max |u_openmp - u_opencl| = %.2e\n" diff;
  assert (diff < 1e-9);
  print_endline "single source, two backends, one answer."
