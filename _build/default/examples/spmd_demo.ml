(* Distributed-memory smoothing, simulated — the paper's §VII future work
   ("backends to target distributed-memory systems via MPI or UPC++").

     dune exec examples/spmd_demo.exe

   The key idea this demo shows: in Snowflake, *halo exchange is just
   another stencil* — a copy between two ranks' meshes with a large
   constant offset — so the same Diophantine analysis that schedules
   boundary conditions schedules communication.  Watch the wave structure:
   all 16 communication stencils (halo copies + physical Dirichlet faces)
   of a 2x2 rank decomposition land in ONE wave, then all four ranks'
   red sweeps run concurrently, and so on. *)

open Sf_analysis
open Sf_backends
open Sf_distributed

let () =
  let t = Spmd.create ~rank_grid:[ 2; 2 ] ~local_n:16 in
  let group = Spmd.gsrb_smooth_group t in
  Printf.printf "2x2 ranks, 16^2 cells each => %d stencils in the smooth group\n"
    (Snowflake.Group.length group);
  let waves = Schedule.greedy_waves ~shape:t.Spmd.shape group in
  Printf.printf "scheduled as %d waves of sizes %s\n" (List.length waves)
    (String.concat ", "
       (List.map (fun w -> string_of_int (List.length w)) waves));
  List.iteri
    (fun i w ->
      let labels =
        List.filteri (fun j _ -> j < 3) w
        |> List.map (fun idx ->
               (List.nth (Snowflake.Group.stencils group) idx)
                 .Snowflake.Stencil.label)
      in
      Printf.printf "  wave %d starts with: %s, ...\n" i
        (String.concat "; " labels))
    waves;

  (* solve a Poisson problem by distributed relaxation and report the
     residual trajectory *)
  Spmd.fill_interior t ~base:"f" (fun c -> Sf_hpgmg.Nd.rhs_sine ~dims:2 c);
  Spmd.set_beta t (fun _ -> 1.);
  let smooth =
    Jit.compile
      ~config:(Config.with_workers 2 Config.default)
      Jit.Openmp ~shape:t.Spmd.shape group
  in
  let residual = Jit.compile Jit.Compiled ~shape:t.Spmd.shape (Spmd.residual_group t) in
  let res_norm () =
    residual.Kernel.run ~params:(Spmd.params t) t.Spmd.grids;
    Sf_mesh.Mesh.norm_l2 (Spmd.gather t ~base:"res")
  in
  Printf.printf "initial residual: %.3e\n" (res_norm ());
  for sweep = 1 to 600 do
    smooth.Kernel.run ~params:(Spmd.params t) t.Spmd.grids;
    if sweep mod 200 = 0 then
      Printf.printf "after %3d sweeps: residual %.3e\n" sweep (res_norm ())
  done;
  let u = Spmd.gather t ~base:"u" in
  let err = ref 0. in
  let h = 1. /. 32. in
  for i = 1 to 32 do
    for j = 1 to 32 do
      let x = (float_of_int i -. 0.5) *. h
      and y = (float_of_int j -. 0.5) *. h in
      err :=
        Float.max !err
          (Float.abs
             (Sf_mesh.Mesh.get u [| i; j |]
             -. Sf_hpgmg.Nd.exact_sine [| x; y |]))
    done
  done;
  Printf.printf "error vs exact solution: %.3e (O(h^2) ~ %.3e)\n" !err
    (h *. h);
  assert (!err < 5. *. h *. h);
  print_endline "distributed relaxation solved the global problem."
