(* A 2-D wave equation with a leapfrog scheme — three meshes (previous,
   current, next) in one stencil group, the "multiple input and output
   meshes" feature of §II.

     dune exec examples/wave_2d.exe

   u_tt = c² Δu on the unit square, fixed (Dirichlet-zero) edges, central
   differences in time:
       next = 2·cur − prev + (c·dt/dx)² · Δcur
   followed by a rotation of the three time levels, all expressed as
   stencils (the rotation is two interior copies — cheap, and it keeps the
   whole timestep inside a single analysed StencilGroup). *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let n = 64
let shape = Ivec.of_list [ n + 2; n + 2 ]
let dx = 1. /. float_of_int n
let courant = 0.5 (* c·dt/dx *)
let zero = Ivec.zero 2

let off a v =
  let o = Ivec.zero 2 in
  o.(a) <- v;
  o

let laplacian grid =
  Expr.sum
    [
      Expr.read grid (off 0 (-1));
      Expr.read grid (off 0 1);
      Expr.read grid (off 1 (-1));
      Expr.read grid (off 1 1);
      Expr.(const (-4.) *: read grid zero);
    ]

let boundaries grid =
  let mk label lo hi o =
    Stencil.make ~label ~output:grid
      ~expr:(Expr.neg (Expr.read grid o))
      ~domain:(Domain.of_rect (Domain.rect ~lo ~hi ()))
      ()
  in
  [
    mk (grid ^ "_top") [ 0; 1 ] [ 1; -1 ] (off 0 1);
    mk (grid ^ "_bottom") [ -1; 1 ] [ 0; -1 ] (off 0 (-1));
    mk (grid ^ "_left") [ 1; 0 ] [ -1; 1 ] (off 1 1);
    mk (grid ^ "_right") [ 1; -1 ] [ -1; 0 ] (off 1 (-1));
  ]

let interior = Domain.interior 2 ~ghost:1

let step =
  Stencil.make ~label:"leapfrog" ~output:"next"
    ~expr:
      Expr.(
        (const 2. *: read "cur" zero)
        -: read "prev" zero
        +: (param "c2" *: laplacian "cur"))
    ~domain:interior ()

let copy ~out ~input =
  Stencil.make
    ~label:(input ^ "_to_" ^ out)
    ~output:out
    ~expr:(Expr.read input zero)
    ~domain:interior ()

let timestep_group =
  Group.make ~label:"wave_step"
    (boundaries "cur"
    @ [ step; copy ~out:"prev" ~input:"cur"; copy ~out:"cur" ~input:"next" ])

let () =
  let kernel = Jit.compile Jit.Openmp ~shape timestep_group in
  let gaussian p =
    let x = (float_of_int p.(0) -. 0.5) *. dx
    and y = (float_of_int p.(1) -. 0.5) *. dx in
    exp (-150. *. (((x -. 0.5) ** 2.) +. ((y -. 0.5) ** 2.)))
  in
  let cur = Mesh.create_init shape gaussian in
  let prev = Mesh.copy cur (* zero initial velocity *) in
  let grids =
    Grids.of_list
      [ ("prev", prev); ("cur", cur); ("next", Mesh.create shape) ]
  in
  let params = [ ("c2", courant *. courant) ] in

  (* approximate discrete energy (kinetic + potential sampled at the same
     time level): the leapfrog scheme keeps it bounded within a few
     percent — an unstable or wrongly-coded scheme diverges in tens of
     steps *)
  let energy () =
    let cur = Grids.find grids "cur" and prev = Grids.find grids "prev" in
    let kin = ref 0. and pot = ref 0. in
    for i = 1 to n do
      for j = 1 to n do
        let v = Mesh.get cur [| i; j |] -. Mesh.get prev [| i; j |] in
        kin := !kin +. (v *. v);
        let gx = Mesh.get cur [| i + 1; j |] -. Mesh.get cur [| i; j |] in
        let gy = Mesh.get cur [| i; j + 1 |] -. Mesh.get cur [| i; j |] in
        pot := !pot +. (courant *. courant *. ((gx *. gx) +. (gy *. gy)))
      done
    done;
    !kin +. !pot
  in
  (* one step to establish the first velocity, then track energy *)
  kernel.Kernel.run ~params grids;
  let e0 = energy () in
  let drift = ref 0. in
  for s = 2 to 400 do
    kernel.Kernel.run ~params grids;
    if s mod 100 = 0 then begin
      let e = energy () in
      drift := Float.max !drift (Float.abs ((e -. e0) /. e0));
      Printf.printf "step %3d: energy %.6e (drift %+.3f%%)\n" s e
        (100. *. ((e -. e0) /. e0))
    end
  done;
  Printf.printf "max energy drift over 400 steps: %.3f%%\n" (100. *. !drift);
  assert (!drift < 0.10);
  print_endline "wave propagated for 400 steps with bounded energy drift."
