examples/wave_2d.ml: Array Domain Expr Float Grids Group Ivec Jit Kernel Mesh Printf Sf_backends Sf_mesh Sf_util Snowflake Stencil
