examples/multigrid_demo.ml: Array Config Jit Level List Mesh Mg Printf Problem Sf_backends Sf_hpgmg Sf_mesh
