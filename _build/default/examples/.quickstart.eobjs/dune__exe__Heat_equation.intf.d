examples/heat_equation.mli:
