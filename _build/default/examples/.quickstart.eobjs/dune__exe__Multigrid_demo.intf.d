examples/multigrid_demo.mli:
