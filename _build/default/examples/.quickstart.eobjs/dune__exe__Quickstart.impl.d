examples/quickstart.ml: Array Component Domain Format Grids Group Ivec Jit Kernel Mesh Printf Sf_backends Sf_mesh Sf_util Snowflake Stencil Weights
