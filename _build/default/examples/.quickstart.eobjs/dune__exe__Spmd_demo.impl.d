examples/spmd_demo.ml: Config Float Jit Kernel List Printf Schedule Sf_analysis Sf_backends Sf_distributed Sf_hpgmg Sf_mesh Snowflake Spmd String
