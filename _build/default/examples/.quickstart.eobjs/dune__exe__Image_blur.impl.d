examples/image_blur.ml: Array Config Domain Expr Float Grids Group Ivec Jit Kernel Mesh Printf Schedule Sf_analysis Sf_backends Sf_mesh Sf_util Snowflake Stencil
