examples/custom_backend.ml: Affine Component Config Domain Dsl Expr Footprint Grids Group Ivec Jit Kernel List Mesh Option Printf Sf_analysis Sf_backends Sf_mesh Sf_util Snowflake Stencil String Unix
