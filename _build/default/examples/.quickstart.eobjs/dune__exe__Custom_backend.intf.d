examples/custom_backend.mli:
