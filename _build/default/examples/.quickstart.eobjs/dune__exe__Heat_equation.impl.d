examples/heat_equation.ml: Array Domain Expr Format Grids Group Ivec Jit Kernel List Mesh Printf Sf_analysis Sf_backends Sf_mesh Sf_util Snowflake Stencil
