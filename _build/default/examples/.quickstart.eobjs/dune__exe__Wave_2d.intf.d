examples/wave_2d.mli:
