examples/quickstart.mli:
