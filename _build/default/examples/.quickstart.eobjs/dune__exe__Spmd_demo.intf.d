examples/spmd_demo.mli:
