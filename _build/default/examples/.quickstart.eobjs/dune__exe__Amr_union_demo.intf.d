examples/amr_union_demo.mli:
