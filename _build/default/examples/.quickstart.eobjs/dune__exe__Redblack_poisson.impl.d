examples/redblack_poisson.ml: Affine Array Dependence Domain Expr Float Format Grids Group Ivec Jit Kernel List Mesh Printf Schedule Sf_analysis Sf_backends Sf_mesh Sf_util Snowflake Stencil
