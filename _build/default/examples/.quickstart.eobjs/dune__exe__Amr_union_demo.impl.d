examples/amr_union_demo.ml: Component Config Dependence Domain Footprint Grids Group Ivec Jit Kernel List Mesh Printf Schedule Sf_analysis Sf_backends Sf_mesh Sf_util Snowflake Stencil Weights
