examples/redblack_poisson.mli:
