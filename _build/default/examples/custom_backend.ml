(* Writing your own micro-compiler — the paper's central architectural
   pitch (Fig. 1c, Fig. 5: the teal "compiler/platform expert" role).

     dune exec examples/custom_backend.exe

   The front end hands a backend exactly three things: the compile
   options, the iteration shape, and the analysed stencil group.  This
   example registers two custom backends in a few dozen lines each:

   - "traced": wraps the stock compiled backend and prints a per-stencil
     execution trace with wall times — a poor man's profiler, built
     without touching framework code;
   - "checked": an interpreter variant that re-validates every write
     against the stencil's declared footprint — a debugging backend. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
open Sf_backends

let traced_backend (config : Config.t) ~shape (group : Group.t) =
  (* compile each stencil separately through the stock backend so we can
     time them individually *)
  let pieces =
    List.map
      (fun s ->
        ( s.Stencil.label,
          Jit.compile ~config Jit.Compiled ~shape
            (Group.make ~label:("traced_" ^ s.Stencil.label) [ s ]) ))
      (Group.stencils group)
  in
  Kernel.make ~name:group.Group.label ~backend:"traced"
    ~description:"per-stencil tracing wrapper over the compiled backend"
    (fun ?params grids ->
      List.iter
        (fun (label, kernel) ->
          let t0 = Unix.gettimeofday () in
          kernel.Kernel.run ?params grids;
          Printf.printf "    [trace] %-12s %8.1f us\n" label
            (1e6 *. (Unix.gettimeofday () -. t0)))
        pieces)

let checked_backend (_config : Config.t) ~shape (group : Group.t) =
  Kernel.make ~name:group.Group.label ~backend:"checked"
    ~description:"write-footprint-checking interpreter"
    (fun ?(params = []) grids ->
      let lookup = Kernel.param_lookup params in
      List.iter
        (fun s ->
          let writes = snd (Footprint.write_footprint ~shape s) in
          Domain.resolve ~shape s.Stencil.domain
          |> List.iter (fun rect ->
                 Domain.iter rect (fun p ->
                     let target = Affine.apply s.Stencil.out_map p in
                     if not (List.exists (fun w -> Domain.mem w target) writes)
                     then
                       failwith
                         (Printf.sprintf "%s writes outside its footprint!"
                            s.Stencil.label);
                     let v =
                       Expr.eval s.Stencil.expr
                         ~read:(fun g m ->
                           Mesh.get (Grids.find grids g) (Affine.apply m p))
                         ~params:lookup
                     in
                     Mesh.set (Grids.find grids s.Stencil.output) target v)))
        (Group.stencils group))

let () =
  Jit.register_backend ~name:"traced" traced_backend;
  Jit.register_backend ~name:"checked" checked_backend;
  Printf.printf "registered custom backends: %s\n"
    (String.concat ", " (Jit.registered_backends ()));

  let shape = Ivec.of_list [ 34; 34 ] in
  let group =
    Group.make ~label:"demo"
      (Dsl.dirichlet_faces ~dims:2 ~grid:"u"
      @ [
          Stencil.make ~label:"smooth" ~output:"out"
            ~expr:
              (Component.to_expr ~grid:"u"
                 (Dsl.star_weights ~dims:2 ~center:0. ~arm:0.25))
            ~domain:(Domain.interior 2 ~ghost:1)
            ();
        ])
  in
  let mk_grids () =
    Grids.of_list
      [ ("u", Mesh.random ~seed:8 shape); ("out", Mesh.create shape) ]
  in
  (* the same single-source program runs on stock and custom backends *)
  let results =
    List.map
      (fun name ->
        let backend = Option.get (Jit.backend_of_string name) in
        let grids = mk_grids () in
        Printf.printf "  backend %s:\n%!" name;
        (Jit.compile backend ~shape group).Kernel.run grids;
        Grids.find grids "out")
      [ "compiled"; "traced"; "checked" ]
  in
  (match results with
  | [ a; b; c ] ->
      assert (Mesh.equal_approx a b);
      assert (Mesh.equal_approx ~tol:1e-12 a c)
  | _ -> assert false);
  print_endline "stock and custom backends agree — extensibility demo OK."
