(* Quickstart: define a 2-D 5-point Jacobi smoother in the Snowflake DSL,
   JIT it, and run it on a mesh.

     dune exec examples/quickstart.exe

   The walk-through mirrors §II of the paper: a WeightArray gives the
   stencil taps, a Component binds it to a grid, a RectDomain (with
   grid-size-relative bounds) gives the iteration space, and compiling the
   Stencil yields a callable kernel. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let () =
  (* 1. Stencil weights: the classic 5-point average.  [of_nested] takes
     the paper's nested-array syntax; the centre element is the middle. *)
  let weights =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in

  (* 2. A Component applies the weights to the grid named "u". *)
  let body = Component.to_expr ~grid:"u" weights in

  (* 3. The iteration domain: every interior point, one ghost cell in from
     each face.  Negative bounds are relative to the grid size, so this
     one domain works for any mesh shape. *)
  let domain = Domain.interior 2 ~ghost:1 in

  (* 4. The stencil writes grid "smooth" (out-of-place). *)
  let stencil =
    Stencil.make ~label:"five_point" ~output:"smooth" ~expr:body ~domain ()
  in
  Format.printf "stencil: %a@." Stencil.pp stencil;

  (* 5. JIT-compile for a concrete shape.  The compile cache means calling
     this again is free. *)
  let shape = Ivec.of_list [ 10; 10 ] in
  let kernel = Jit.compile Jit.Compiled ~shape (Group.make [ stencil ]) in

  (* 6. Bind meshes and run. *)
  let u =
    Mesh.create_init shape (fun p ->
        if p.(0) = 5 && p.(1) = 5 then 16. else 0.)
  in
  let grids = Grids.of_list [ ("u", u); ("smooth", Mesh.create shape) ] in
  kernel.Kernel.run grids;

  let smooth = Grids.find grids "smooth" in
  print_endline "input had a spike of 16.0 at (5,5); after one smoothing:";
  for i = 4 to 6 do
    for j = 4 to 6 do
      Printf.printf "  u(%d,%d) = %5.2f" i j (Mesh.get smooth [| i; j |])
    done;
    print_newline ()
  done;
  (* the spike's mass moved to its four neighbours *)
  assert (Mesh.get smooth [| 5; 5 |] = 0.);
  assert (Mesh.get smooth [| 4; 5 |] = 4.);
  print_endline "quickstart OK"
