(* Variable-coefficient heat flow on a 2-D plate (§II.A item 4 of the
   paper: "applications such as heat flow where the medium may be
   heterogeneous, requiring the stencil to read values such as flow
   coefficients from a separate array").

     dune exec examples/heat_equation.exe

   We integrate ∂u/∂t = ∇·(κ∇u) with explicit Euler steps on a plate made
   of two materials (a poorly conducting inclusion in the middle), with a
   hot left edge held at 1 (Dirichlet via ghost reflection around the
   boundary value) and the flux stencil built from nested components, so
   the conductivity is read at the face each flux term crosses. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let nx = 34 (* interior 32 + 2 ghost *)
let shape = Ivec.of_list [ nx; nx ]
let dx = 1. /. float_of_int (nx - 2)

let zero = Ivec.zero 2
let off a v =
  let o = Ivec.zero 2 in
  o.(a) <- v;
  o

(* kappa_x/kappa_y hold face conductivities: kappa_a at cell i is the face
   between cells i-1 and i along axis a (same convention as HPGMG's
   betas). *)
let flux_divergence =
  let k_lo a = Expr.read (if a = 0 then "kappa_x" else "kappa_y") zero in
  let k_hi a = Expr.read (if a = 0 then "kappa_x" else "kappa_y") (off a 1) in
  let u o = Expr.read "u" o in
  let terms =
    List.concat_map
      (fun a ->
        Expr.
          [
            k_hi a *: (u (off a 1) -: u zero);
            neg (k_lo a *: (u zero -: u (off a (-1))));
          ])
      [ 0; 1 ]
  in
  Expr.(sum terms *: param "dt_over_dx2")

(* Explicit Euler must read a consistent time level: write the new field
   out-of-place, then copy back.  (An in-place version would be a
   Gauss–Seidel-flavoured iteration — expressible too, but not what the
   physics asks for, and the analysis would refuse to parallelise it.) *)
let step_stencil =
  Stencil.make ~label:"heat_step" ~output:"u_next"
    ~expr:Expr.(read "u" zero +: flux_divergence)
    ~domain:(Domain.interior 2 ~ghost:1)
    ()

let copy_back =
  Stencil.make ~label:"copy_back" ~output:"u"
    ~expr:(Expr.read "u_next" zero)
    ~domain:(Domain.interior 2 ~ghost:1)
    ()

(* Boundary stencils: left edge held hot (ghost = 2 - interior makes the
   face value 1), the other three edges insulated (ghost = interior, zero
   flux). *)
let boundaries =
  let mk label lo hi expr =
    Stencil.make ~label ~output:"u" ~expr
      ~domain:(Domain.of_rect (Domain.rect ~lo ~hi ()))
      ()
  in
  [
    mk "hot_left" [ 1; 0 ] [ -1; 1 ]
      Expr.(const 2. -: read "u" (off 1 1));
    mk "cold_right" [ 1; -1 ] [ -1; 0 ] Expr.(neg (read "u" (off 1 (-1))));
    mk "insulated_top" [ 0; 1 ] [ 1; -1 ] (Expr.read "u" (off 0 1));
    mk "insulated_bottom" [ -1; 1 ] [ 0; -1 ] (Expr.read "u" (off 0 (-1)));
  ]

let () =
  let group =
    Group.make ~label:"heat" (boundaries @ [ step_stencil; copy_back ])
  in

  (* The analysis proves the four edge stencils independent, so they form
     one wave; the update waits for all of them. *)
  let waves = Sf_analysis.Schedule.greedy_waves ~shape group in
  Format.printf "schedule: %a@." Sf_analysis.Schedule.pp_waves waves;

  let kernel = Jit.compile Jit.Openmp ~shape group in

  (* two-material plate: a low-conductivity square inclusion *)
  let kappa x y =
    if abs_float (x -. 0.5) < 0.2 && abs_float (y -. 0.5) < 0.2 then 0.05
    else 1.
  in
  let face_mesh axis =
    Mesh.create_init shape (fun p ->
        let c a =
          if a = axis then float_of_int (p.(a) - 1) *. dx
          else (float_of_int p.(a) -. 0.5) *. dx
        in
        kappa (c 0) (c 1))
  in
  let grids =
    Grids.of_list
      [
        ("u", Mesh.create shape);
        ("u_next", Mesh.create shape);
        ("kappa_x", face_mesh 0);
        ("kappa_y", face_mesh 1);
      ]
  in

  let dt = 0.2 *. dx *. dx (* stable for explicit Euler *) in
  let params = [ ("dt_over_dx2", dt /. (dx *. dx)) ] in
  let steps = 2000 in
  for s = 1 to steps do
    kernel.Kernel.run ~params grids;
    if s mod 500 = 0 then begin
      let u = Grids.find grids "u" in
      let mid = nx / 2 in
      Printf.printf "t=%.3f  centre row temperatures:" (float_of_int s *. dt);
      List.iter
        (fun j -> Printf.printf " %.3f" (Mesh.get u [| mid; j |]))
        [ 2; 8; 14; 20; 26; 32 ];
      print_newline ()
    end
  done;

  (* steady state should be monotone from hot (1) to cold (0) along the
     midline, with a visible kink across the inclusion *)
  let u = Grids.find grids "u" in
  let mid = nx / 2 in
  let left = Mesh.get u [| mid; 2 |] and right = Mesh.get u [| mid; 32 |] in
  assert (left > right);
  assert (left > 0.5 && right < 0.5);
  Printf.printf
    "steady-ish state: T=%.3f near hot edge, %.3f near cold edge — heat \
     flowed through the heterogeneous plate.\n"
    left right
