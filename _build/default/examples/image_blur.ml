(* An image-processing pipeline — the domain Halide targets — written in
   Snowflake, to make the paper's §VI contrast concrete: a separable blur
   expressed as two stencils that the JIT can legally *fuse* (the paper's
   future-work optimisation, implemented in this repository), plus an
   unsharp-mask sharpening step.

     dune exec examples/image_blur.exe

   Pipeline: blur_x (1x3) → blur_y (3x1) → sharpen = img + k·(img − blur).
   The fusion pass collapses producer/consumer pairs when the consumer
   reads the producer only at offset zero — here blur_y reads blur_x at
   offsets, so the *first* pair must NOT fuse (the analysis refuses), while
   the final point-wise sharpen fuses with nothing upstream for the same
   reason.  We check the optimiser's decisions and that results match the
   unfused pipeline exactly. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

let shape = Ivec.of_list [ 66; 66 ]
let zero = Ivec.zero 2

let off a v =
  let o = Ivec.zero 2 in
  o.(a) <- v;
  o

let interior = Domain.interior 2 ~ghost:1

let blur_x =
  Stencil.make ~label:"blur_x" ~output:"bx"
    ~expr:
      Expr.(
        const (1. /. 3.)
        *: (read "img" (off 1 (-1)) +: read "img" zero +: read "img" (off 1 1)))
    ~domain:interior ()

let blur_y =
  Stencil.make ~label:"blur_y" ~output:"blur"
    ~expr:
      Expr.(
        const (1. /. 3.)
        *: (read "bx" (off 0 (-1)) +: read "bx" zero +: read "bx" (off 0 1)))
    ~domain:(Domain.interior 2 ~ghost:2)
    ()

(* point-wise: reads blur at offset zero — fusable with blur_y *)
let sharpen =
  Stencil.make ~label:"sharpen" ~output:"out"
    ~expr:
      Expr.(
        read "img" zero
        +: (param "amount" *: (read "img" zero -: read "blur" zero)))
    ~domain:(Domain.interior 2 ~ghost:2)
    ()

let pipeline = Group.make ~label:"unsharp" [ blur_x; blur_y; sharpen ]

let () =
  (* what the analysis decides about fusion legality *)
  let open Sf_analysis in
  Printf.printf "blur_x -> blur_y fusable: %b (reads at offsets: refused)\n"
    (Schedule.can_fuse ~shape blur_x blur_y);
  Printf.printf "blur_y -> sharpen fusable: %b (offset-zero read: allowed)\n"
    (Schedule.can_fuse ~shape blur_y sharpen);

  let test_image =
    Mesh.create_init shape (fun p ->
        (* checkerboard + gradient: plenty of high-frequency content *)
        let base = float_of_int ((p.(0) + p.(1)) mod 2) in
        base +. (0.01 *. float_of_int p.(0)))
  in
  let run config =
    let grids =
      Grids.of_list
        [
          ("img", Mesh.copy test_image);
          ("bx", Mesh.create shape);
          ("blur", Mesh.create shape);
          ("out", Mesh.create shape);
        ]
    in
    let kernel = Jit.compile ~config Jit.Compiled ~shape pipeline in
    kernel.Kernel.run ~params:[ ("amount", 1.5) ] grids;
    grids
  in
  let plain = run Config.default in
  let fused =
    run { Config.default with fuse = true; dce = Config.Dce [ "out" ] }
  in
  let d =
    Mesh.max_abs_diff (Grids.find plain "out") (Grids.find fused "out")
  in
  Printf.printf "fused vs unfused max diff: %.2e\n" d;
  assert (d < 1e-12);

  (* sanity: blurring smooths the checkerboard, sharpening restores
     contrast *)
  let out = Grids.find plain "out" in
  let blur = Grids.find plain "blur" in
  let contrast m =
    Float.abs (Mesh.get m [| 32; 32 |] -. Mesh.get m [| 32; 33 |])
  in
  Printf.printf "checkerboard contrast: input 1.00, blurred %.2f, sharpened %.2f\n"
    (contrast blur) (contrast out);
  assert (contrast blur < 0.5);
  assert (contrast out > contrast blur);
  print_endline "unsharp-mask pipeline OK (fusion preserved results)."
