(* Unions of rectangular domains — the AMR-flavoured feature (§II: "unions
   of rectangular domains (used in adaptive mesh refinement)").

     dune exec examples/amr_union_demo.exe

   A smoothing operator is applied only on a union of two refinement
   patches of a larger grid, while a different (cheap) operator covers the
   rest is skipped entirely.  The demo also shows what the finite-domain
   analysis buys: the two patch stencils are recognised as independent
   (they can share a wave) exactly because their concrete rectangles are
   disjoint — an infinite-domain analysis would have to serialise them. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
open Sf_backends

let shape = Ivec.of_list [ 64; 64 ]

let five_point grid =
  Component.to_expr ~grid
    (Weights.of_nested
       (Weights.A
          [
            A [ W 0.; W 0.25; W 0. ];
            A [ W 0.25; W 0.; W 0.25 ];
            A [ W 0.; W 0.25; W 0. ];
          ]))

(* two refinement patches, as one stencil over a DomainUnion *)
let patch_a = Domain.rect ~lo:[ 4; 4 ] ~hi:[ 20; 28 ] ()
let patch_b = Domain.rect ~lo:[ 36; 30 ] ~hi:[ 60; 58 ] ()

let union_smooth =
  Stencil.make ~label:"patch_smooth" ~output:"out" ~expr:(five_point "u")
    ~domain:Domain.(of_rect patch_a ++ of_rect patch_b)
    ()

(* the same two patches as separate stencils, to interrogate the analysis *)
let solo d label =
  Stencil.make ~label ~output:"out" ~expr:(five_point "u")
    ~domain:(Domain.of_rect d) ()

let () =
  (* the analysis facts *)
  let a = solo patch_a "patch_a" and b = solo patch_b "patch_b" in
  Printf.printf "patches independent (finite-domain analysis): %b\n"
    (Dependence.independent ~shape a b);
  Printf.printf "union is self-disjoint: %b\n"
    (Footprint.union_self_disjoint ~shape union_smooth);
  let waves =
    Schedule.greedy_waves ~shape (Group.make ~label:"patches" [ a; b ])
  in
  Printf.printf "both patches share wave 0: %b\n"
    (List.length waves = 1);

  (* overlapping patches would be caught *)
  let overlapping =
    Stencil.make ~label:"overlap" ~output:"out" ~expr:(five_point "u")
      ~domain:
        Domain.(
          of_rect (rect ~lo:[ 4; 4 ] ~hi:[ 20; 28 ] ())
          ++ of_rect (rect ~lo:[ 10; 10 ] ~hi:[ 24; 24 ] ()))
      ()
  in
  Printf.printf "overlapping union detected as unsafe: %b\n"
    (not (Footprint.union_self_disjoint ~shape overlapping));

  (* run it: only the patch cells are written *)
  let u = Mesh.random ~seed:5 shape in
  let out = Mesh.create shape in
  Mesh.fill out (-1.);
  let grids = Grids.of_list [ ("u", u); ("out", out) ] in
  let kernel =
    Jit.compile Jit.Openmp
      ~config:(Config.with_workers 2 Config.default)
      ~shape
      (Group.make [ union_smooth ])
  in
  kernel.Kernel.run grids;
  let inside = ref 0 and untouched = ref 0 in
  Mesh.iteri out (fun _ v ->
      if v = -1. then incr untouched else incr inside);
  let expected_inside = (16 * 24) + (24 * 28) in
  Printf.printf "cells written: %d (expected %d), untouched: %d\n" !inside
    expected_inside !untouched;
  assert (!inside = expected_inside);
  print_endline "AMR-style union-of-patches smoothing OK"
