(* The paper's flagship language example (Fig. 4): a variable-coefficient
   Gauss-Seidel red-black smoother with linear Dirichlet boundaries,
   written directly in the DSL and iterated to convergence on a 2-D
   Poisson problem.

     dune exec examples/redblack_poisson.exe

   This is the "complex smoothing" walk-through: colored strided domain
   unions, in-place updates, nested (variable-coefficient) components, and
   boundary stencils all in one StencilGroup — and the dependence analysis
   proving that each colour sweep is safe to run in parallel. *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_analysis
open Sf_backends

let n = 16
let shape = Ivec.of_list [ n + 2; n + 2 ]
let h = 1. /. float_of_int n
let zero = Ivec.zero 2

let off a v =
  let o = Ivec.zero 2 in
  o.(a) <- v;
  o

(* A_vc u = -∇·β∇u, flux form; beta_x/beta_y hold face coefficients. *)
let a_of u_grid =
  let b_lo a = Expr.read (if a = 0 then "beta_x" else "beta_y") zero in
  let b_hi a = Expr.read (if a = 0 then "beta_x" else "beta_y") (off a 1) in
  let u o = Expr.read u_grid o in
  let sum_b = Expr.sum [ b_lo 0; b_hi 0; b_lo 1; b_hi 1 ] in
  let flux =
    Expr.sum
      [
        Expr.(b_lo 0 *: u (off 0 (-1)));
        Expr.(b_hi 0 *: u (off 0 1));
        Expr.(b_lo 1 *: u (off 1 (-1)));
        Expr.(b_hi 1 *: u (off 1 1));
      ]
  in
  Expr.(param "inv_h2" *: ((sum_b *: u zero) -: flux))

(* lines 11-14 of the paper's Fig. 4: the red and black domains are unions
   of stride-2 rects; the update is in-place u += dinv (b - A u). *)
let color_sweep color =
  Stencil.make
    ~label:(if color = 0 then "red" else "black")
    ~output:"mesh"
    ~expr:
      Expr.(
        read "mesh" zero
        +: (read "dinv" zero *: (read "rhs" zero -: a_of "mesh")))
    ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
    ()

(* lines 16-17: Dirichlet-zero edges, ghost <- -interior ("rotationally
   equivalent" for the other three). *)
let boundaries =
  let mk label lo hi o =
    Stencil.make ~label ~output:"mesh"
      ~expr:(Expr.neg (Expr.read "mesh" o))
      ~domain:(Domain.of_rect (Domain.rect ~lo ~hi ()))
      ()
  in
  [
    mk "top" [ 0; 1 ] [ 1; -1 ] (off 0 1);
    mk "bottom" [ -1; 1 ] [ 0; -1 ] (off 0 (-1));
    mk "left" [ 1; 0 ] [ -1; 1 ] (off 1 1);
    mk "right" [ 1; -1 ] [ -1; 0 ] (off 1 (-1));
  ]

let smooth_group =
  Group.make ~label:"gsrb2d"
    (boundaries @ [ color_sweep 0 ] @ boundaries @ [ color_sweep 1 ])

let () =
  (* What the analysis sees: each colour is point-parallel despite being
     in-place, red and black must be separated by a barrier, and the four
     edges share a wave. *)
  List.iter
    (fun c ->
      Printf.printf "colour %d point-parallel: %b\n" c
        (Dependence.point_parallel ~shape (color_sweep c)))
    [ 0; 1 ];
  Format.printf "waves: %a@." Schedule.pp_waves
    (Schedule.greedy_waves ~shape smooth_group);

  (* problem setup: beta = 1 + x y (smooth, positive), manufactured rhs *)
  let beta x y = 1. +. (x *. y) in
  let face_mesh axis =
    Mesh.create_init shape (fun p ->
        let c a =
          if a = axis then float_of_int (p.(a) - 1) *. h
          else (float_of_int p.(a) -. 0.5) *. h
        in
        beta (c 0) (c 1))
  in
  let beta_x = face_mesh 0 and beta_y = face_mesh 1 in
  let inv_h2 = 1. /. (h *. h) in
  let dinv =
    Mesh.create_init shape (fun p ->
        if p.(0) >= 1 && p.(0) <= n && p.(1) >= 1 && p.(1) <= n then
          1.
          /. (inv_h2
             *. (Mesh.get beta_x p
                +. Mesh.get beta_x [| p.(0) + 1; p.(1) |]
                +. Mesh.get beta_y p
                +. Mesh.get beta_y [| p.(0); p.(1) + 1 |]))
        else 0.)
  in
  let rhs =
    Mesh.create_init shape (fun p ->
        let x = (float_of_int p.(0) -. 0.5) *. h
        and y = (float_of_int p.(1) -. 0.5) *. h in
        sin (Float.pi *. x) *. sin (Float.pi *. y))
  in
  let grids =
    Grids.of_list
      [
        ("mesh", Mesh.create shape);
        ("rhs", rhs);
        ("beta_x", beta_x);
        ("beta_y", beta_y);
        ("dinv", dinv);
      ]
  in

  let kernel = Jit.compile Jit.Openmp ~shape smooth_group in
  let params = [ ("inv_h2", inv_h2) ] in

  (* iterate GSRB and watch the residual fall *)
  let residual () =
    let r = ref 0. in
    for i = 1 to n do
      for j = 1 to n do
        let p = [| i; j |] in
        let au =
          Expr.eval (a_of "mesh")
            ~read:(fun g o ->
              Mesh.get (Grids.find grids g) (Affine.apply o p))
            ~params:(fun _ -> inv_h2)
        in
        let d = Mesh.get rhs p -. au in
        r := !r +. (d *. d)
      done
    done;
    sqrt !r
  in
  let r0 = residual () in
  Printf.printf "initial residual: %.4e\n" r0;
  let total = 600 in
  for it = 1 to total do
    kernel.Kernel.run ~params grids;
    if it mod 200 = 0 then
      Printf.printf "after %3d GSRB iterations: residual %.4e\n" it
        (residual ())
  done;
  assert (residual () < r0 /. 100.);
  print_endline "red-black Gauss-Seidel converged."
