test/test_program_io.ml: Affine Alcotest Component Domain Expr Grids Group Ivec List Mesh Program_io QCheck QCheck_alcotest Result Sexp Sf_backends Sf_mesh Sf_util Snowflake Stencil Weights
