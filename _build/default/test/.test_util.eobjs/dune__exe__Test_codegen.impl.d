test/test_codegen.ml: Affine Alcotest C_ast C_pp Component Cuda_emit Domain Expr Group Ivec List Lower Ocl_emit Omp_emit Seq_emit Sf_codegen Sf_hpgmg Sf_util Snowflake Stencil String Weights
