test/test_harness.ml: Alcotest Array Config Domain Expr Grids Group Ivec Jit Kernel List Mesh Sf_backends Sf_harness Sf_mesh Sf_util Snowflake Stencil Timer Tune
