test/test_roofline.ml: Alcotest Bound Domain Expr Float Ivec Machine Sf_hpgmg Sf_roofline Sf_util Snowflake Stencil Stream
