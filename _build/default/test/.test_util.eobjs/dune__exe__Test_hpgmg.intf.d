test/test_hpgmg.mli:
