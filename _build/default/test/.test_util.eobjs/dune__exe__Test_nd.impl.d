test/test_nd.ml: Alcotest Array Level List Mesh Mg Nd Printf Problem Sf_hpgmg Sf_mesh
