test/test_core.ml: Affine Alcotest Array Component Domain Dsl Expr Float Gen Grids Group Hashtbl Ivec List Mesh Option Printf QCheck QCheck_alcotest Sf_mesh Sf_util Snowflake Stencil String Weights
