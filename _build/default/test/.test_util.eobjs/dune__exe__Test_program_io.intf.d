test/test_program_io.mli:
