test/test_util.ml: Alcotest Float Hashc Ivec List Printf QCheck QCheck_alcotest Sf_util Stats String Tabular
