test/test_roofline.mli:
