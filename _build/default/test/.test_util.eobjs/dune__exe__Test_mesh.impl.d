test/test_mesh.ml: Alcotest Array Float Grids Hashtbl Ivec List Mesh QCheck QCheck_alcotest Sf_mesh Sf_util
