open Sf_util
open Snowflake
open Sf_codegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let iv = Ivec.of_list

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let count_occurrences haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub haystack i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* --------------------------------------------------------------- c_ast *)

let test_ast_folding () =
  check_bool "add 0" true (C_ast.add (C_ast.Int 0) (C_ast.Var "x") = C_ast.Var "x");
  check_bool "add ints" true (C_ast.add (C_ast.Int 2) (C_ast.Int 3) = C_ast.Int 5);
  check_bool "mul 0" true (C_ast.mul (C_ast.Int 0) (C_ast.Var "x") = C_ast.Int 0);
  check_bool "mul 1" true (C_ast.mul (C_ast.Var "x") (C_ast.Int 1) = C_ast.Var "x");
  check_bool "sum empty" true (C_ast.sum [] = C_ast.Int 0)

(* ---------------------------------------------------------------- c_pp *)

let test_pp_expr () =
  check_string "index" "a[(3 * i) + j]"
    (C_pp.expr_to_string
       C_ast.(
         Index
           ("a", Bin ("+", Bin ("*", Int 3, Var "i"), Var "j"))));
  check_string "negative literal parens" "x + (-1)"
    (C_pp.expr_to_string C_ast.(Bin ("+", Var "x", Int (-1))));
  check_string "float keeps point" "2.0"
    (C_pp.expr_to_string (C_ast.Float 2.));
  check_string "call" "get_global_id(0)"
    (C_pp.expr_to_string C_ast.(Call ("get_global_id", [ Int 0 ])))

let test_pp_for_loop () =
  let s =
    C_pp.stmt_to_string
      C_ast.(
        For
          {
            var = "i0";
            from_ = Int 1;
            below = Int 9;
            step = Int 2;
            body = [ Assign (Var "x", Int 0) ];
          })
  in
  check_bool "header" true
    (contains s "for (long i0 = 1; i0 < 9; i0 += 2) {");
  check_bool "body indented" true (contains s "  x = 0;")

let test_pp_func () =
  let f =
    C_ast.
      {
        qualifier = "";
        ret = "void";
        fname = "k";
        params = [ { ctype = "double *"; name = "u" } ];
        body = [ C_ast.Comment "hi" ];
      }
  in
  let s = C_pp.func_to_string f in
  check_bool "signature" true (contains s "void k(double * u) {");
  check_bool "comment" true (contains s "/* hi */")

(* --------------------------------------------------------------- lower *)

let test_sanitize () =
  check_string "dots" "beta_x" (Lower.sanitize "beta_x");
  check_string "weird" "a_b_c" (Lower.sanitize "a.b-c")

let test_flat_index () =
  let strides = iv [ 36; 6; 1 ] in
  let m = Affine.of_offset (iv [ 0; 1; -1 ]) in
  let point = [| C_ast.Var "i0"; C_ast.Var "i1"; C_ast.Var "i2" |] in
  let s = C_pp.expr_to_string (Lower.flat_index ~strides m point) in
  (* offsets fold into the coordinate expressions; no *1 or +0 noise *)
  check_bool "no mul by 1" true (not (contains s "* 1)"));
  check_bool "i0 unscaled inside" true (contains s "36 * i0");
  check_bool "i1 offset" true (contains s "i1 + 1")

let test_rect_loops_shape () =
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let rect = Domain.resolve_rect ~shape:(iv [ 10 ]) (List.hd s.Stencil.domain) in
  let stmts = Lower.rect_loops ~grid_strides:(fun _ -> iv [ 1 ]) s rect in
  let text = String.concat "\n" (List.map C_pp.stmt_to_string stmts) in
  check_bool "loop bounds" true (contains text "for (long i0 = 1; i0 < 9; i0 += 1)");
  check_bool "reads both taps" true
    (contains text "u[i0 + (-1)]" && contains text "u[i0 + 1]");
  check_bool "writes out" true (contains text "out[i0] =")

(* ------------------------------------------------------------ omp_emit *)

let gsrb_2d () =
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 0.25; W 0. ];
           A [ W 0.25; W 0.; W 0.25 ];
           A [ W 0.; W 0.25; W 0. ];
         ])
  in
  let mk color =
    Stencil.make
      ~label:(if color = 0 then "red" else "black")
      ~output:"mesh"
      ~expr:(Component.to_expr ~grid:"mesh" w)
      ~domain:(Domain.colored 2 ~ghost:1 ~color ~ncolors:2)
      ()
  in
  Group.make ~label:"gsrb2d" [ mk 0; mk 1 ]

let test_omp_emit_structure () =
  let shape = iv [ 10; 10 ] in
  let src = Omp_emit.emit ~shape ~grid_shapes:(fun _ -> shape) (gsrb_2d ()) in
  check_bool "include" true (contains src "#include <omp.h>");
  check_bool "parallel region" true (contains src "#pragma omp parallel");
  check_bool "tasks" true (contains src "#pragma omp task");
  (* two waves (red then black) => two taskwaits *)
  check_int "barriers" 2 (count_occurrences src "#pragma omp taskwait");
  check_bool "function named after group" true
    (contains src "void gsrb2d(double * restrict mesh)");
  (* red is scheduled before black *)
  let index_of sub =
    let nn = String.length sub in
    let rec go i =
      if i + nn > String.length src then -1
      else if String.sub src i nn = sub then i
      else go (i + 1)
    in
    go 0
  in
  let ired = index_of "stencil red" and iblack = index_of "stencil black" in
  check_bool "red before black" true (ired >= 0 && iblack > ired)

let test_omp_emit_scalar_params () =
  let s =
    Stencil.make ~label:"scaled" ~output:"out"
      ~expr:Expr.(read "u" (iv [ 0 ]) *: param "lambda")
      ~domain:(Domain.interior 1 ~ghost:0)
      ()
  in
  let shape = iv [ 8 ] in
  let src =
    Omp_emit.emit ~shape ~grid_shapes:(fun _ -> shape)
      (Group.make ~label:"g" [ s ])
  in
  check_bool "param in signature" true (contains src "const double lambda");
  check_bool "param used" true (contains src "* lambda")

let test_omp_emit_sequential_fallback () =
  (* a full-domain in-place Gauss-Seidel cannot be tasked per tile *)
  let s =
    Stencil.make ~label:"gs" ~output:"u"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  let shape = iv [ 32 ] in
  let src =
    Omp_emit.emit ~shape ~grid_shapes:(fun _ -> shape)
      (Group.make ~label:"g" [ s ])
  in
  check_bool "flagged sequential" true
    (contains src "sequential: loop-carried dependence")

(* ------------------------------------------------------------ ocl_emit *)

let test_ocl_emit_structure () =
  let shape = iv [ 10; 10 ] in
  let src = Ocl_emit.emit ~shape ~grid_shapes:(fun _ -> shape) (gsrb_2d ()) in
  check_bool "fp64 pragma" true (contains src "cl_khr_fp64");
  (* 2 colours x 2 rects each = 4 kernels *)
  check_int "kernel count" 4 (count_occurrences src "__kernel void");
  check_bool "global ids" true (contains src "get_global_id(0)");
  check_bool "guard" true (contains src "if (");
  check_bool "global qualifier" true (contains src "__global double");
  check_bool "host driver" true (contains src "clEnqueueNDRangeKernel");
  check_int "enqueues" 4 (count_occurrences src "clEnqueueNDRangeKernel")

let test_ocl_rank_limit () =
  let s =
    Stencil.make ~label:"r4" ~output:"o"
      ~expr:(Expr.read "u" (iv [ 0; 0; 0; 0 ]))
      ~domain:(Domain.interior 4 ~ghost:0)
      ()
  in
  let shape = iv [ 4; 4; 4; 4 ] in
  try
    ignore
      (Ocl_emit.emit ~shape ~grid_shapes:(fun _ -> shape)
         (Group.make ~label:"g" [ s ]));
    Alcotest.fail "rank 4 accepted"
  with Invalid_argument _ -> ()

let test_emitted_index_arithmetic () =
  (* the 2-D red rect at shape 8x8 must index mesh[8*i0 + i1] *)
  let shape = iv [ 8; 8 ] in
  let src = Omp_emit.emit ~shape ~grid_shapes:(fun _ -> shape) (gsrb_2d ()) in
  check_bool "row stride literal" true (contains src "mesh[(8 * i0) + i1]");
  check_bool "neighbour index" true (contains src "mesh[(8 * (i0 + (-1))) + i1]")

(* ------------------------------------------------------------ seq_emit *)

let test_seq_emit () =
  let shape = iv [ 10; 10 ] in
  let src = Seq_emit.emit ~shape ~grid_shapes:(fun _ -> shape) (gsrb_2d ()) in
  check_bool "no pragmas" true (not (contains src "#pragma omp"));
  check_bool "one function" true (contains src "void gsrb2d(");
  check_bool "both stencils" true
    (contains src "stencil red" && contains src "stencil black");
  check_int "four loop nests (2 colours x 2 rects)" 4
    (count_occurrences src "for (long i0");
  check_bool "strided loops" true (contains src "i0 += 2")

(* ----------------------------------------------------------- cuda_emit *)

let test_cuda_emit () =
  let shape = iv [ 10; 10 ] in
  let src = Cuda_emit.emit ~shape ~grid_shapes:(fun _ -> shape) (gsrb_2d ()) in
  check_int "kernel count" 4 (count_occurrences src "__global__ void");
  check_bool "thread mapping" true
    (contains src "blockIdx.x * blockDim.x) + threadIdx.x");
  check_bool "outer axis on y" true (contains src "threadIdx.y");
  check_bool "guard" true (contains src "if (");
  check_bool "launch sketch" true (contains src "<<<");
  check_bool "runtime header" true (contains src "cuda_runtime.h")

let test_cuda_rank_limit () =
  let s =
    Stencil.make ~label:"r4" ~output:"o"
      ~expr:(Expr.read "u" (iv [ 0; 0; 0; 0 ]))
      ~domain:(Domain.interior 4 ~ghost:0)
      ()
  in
  let shape = iv [ 4; 4; 4; 4 ] in
  try
    ignore
      (Cuda_emit.emit ~shape ~grid_shapes:(fun _ -> shape)
         (Group.make ~label:"g" [ s ]));
    Alcotest.fail "rank 4 accepted"
  with Invalid_argument _ -> ()

(* every emitter handles the full HPGMG smoother without raising, and the
   outputs stay consistent in their read taps *)
let test_emitters_on_hpgmg_gsrb () =
  let shape = iv [ 10; 10; 10 ] in
  let grid_shapes _ = shape in
  let group = Sf_hpgmg.Operators.gsrb_smooth in
  let seq = Seq_emit.emit ~shape ~grid_shapes group in
  let omp = Omp_emit.emit ~shape ~grid_shapes group in
  let ocl = Ocl_emit.emit ~shape ~grid_shapes group in
  let cuda = Cuda_emit.emit ~shape ~grid_shapes group in
  List.iter
    (fun (name, src) ->
      check_bool (name ^ " mentions beta_x") true (contains src "beta_x");
      check_bool (name ^ " mentions dinv") true (contains src "dinv");
      check_bool (name ^ " scalar param") true (contains src "inv_h2"))
    [ ("seq", seq); ("omp", omp); ("ocl", ocl); ("cuda", cuda) ]

let () =
  Alcotest.run "sf_codegen"
    [
      ("c_ast", [ Alcotest.test_case "folding" `Quick test_ast_folding ]);
      ( "c_pp",
        [
          Alcotest.test_case "expr" `Quick test_pp_expr;
          Alcotest.test_case "for loop" `Quick test_pp_for_loop;
          Alcotest.test_case "func" `Quick test_pp_func;
        ] );
      ( "lower",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "flat index" `Quick test_flat_index;
          Alcotest.test_case "rect loops" `Quick test_rect_loops_shape;
        ] );
      ( "omp",
        [
          Alcotest.test_case "structure" `Quick test_omp_emit_structure;
          Alcotest.test_case "scalar params" `Quick
            test_omp_emit_scalar_params;
          Alcotest.test_case "sequential fallback" `Quick
            test_omp_emit_sequential_fallback;
          Alcotest.test_case "index arithmetic" `Quick
            test_emitted_index_arithmetic;
        ] );
      ( "ocl",
        [
          Alcotest.test_case "structure" `Quick test_ocl_emit_structure;
          Alcotest.test_case "rank limit" `Quick test_ocl_rank_limit;
        ] );
      ("seq", [ Alcotest.test_case "structure" `Quick test_seq_emit ]);
      ( "cuda",
        [
          Alcotest.test_case "structure" `Quick test_cuda_emit;
          Alcotest.test_case "rank limit" `Quick test_cuda_rank_limit;
        ] );
      ( "cross-emitter",
        [
          Alcotest.test_case "hpgmg smoother" `Quick
            test_emitters_on_hpgmg_gsrb;
        ] );
    ]
