open Sf_util
open Snowflake
open Sf_roofline

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let iv = Ivec.of_list

let test_machines () =
  check_float "i7 bandwidth" 22.2 Machine.i7_4765t.Machine.bandwidth_gbs;
  check_float "k20c bandwidth" 127. Machine.k20c.Machine.bandwidth_gbs;
  check_bool "i7 is cpu" true (Machine.i7_4765t.Machine.kind = `Cpu);
  check_bool "k20c is gpu" true (Machine.k20c.Machine.kind = `Gpu);
  let h = Machine.host ~bandwidth_gbs:12.5 () in
  check_float "host bw" 12.5 h.Machine.bandwidth_gbs

let test_stream_dot () =
  let a = Float.Array.of_list [ 1.; 2.; 3. ] in
  let b = Float.Array.of_list [ 4.; 5.; 6. ] in
  check_float "dot" 32. (Stream.dot a b);
  (* mismatched lengths: uses the shorter prefix *)
  let c = Float.Array.of_list [ 1.; 1. ] in
  check_float "prefix dot" 3. (Stream.dot a c)

let test_stream_measure () =
  let bw = Stream.measure ~n:200_000 ~trials:2 () in
  check_bool "positive bandwidth" true (bw > 0.01);
  check_bool "below 10 TB/s sanity" true (bw < 10_000.)

let test_paper_byte_counts () =
  check_float "cc 7pt" 24. Bound.bytes_cc_7pt;
  check_float "jacobi" 40. Bound.bytes_cc_jacobi;
  check_float "gsrb" 64. Bound.bytes_vc_gsrb

let test_bytes_of_stencil () =
  (* out-of-place single-input stencil: 8 read + 16 write = paper's 24 *)
  let lap =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:Expr.(read "u" (iv [ -1 ]) +: read "u" (iv [ 1 ]))
      ~domain:(Domain.interior 1 ~ghost:1)
      ()
  in
  check_float "cc stencil traffic" 24. (Bound.bytes_of_stencil lap);
  (* in-place: no separate write-allocate *)
  let inplace = Stencil.rename_output lap "u" in
  check_float "in-place traffic" 16. (Bound.bytes_of_stencil inplace);
  (* GSRB reads 6 grids and writes one of them: 6*8 + 8 *)
  let gsrb = Sf_hpgmg.Operators.gsrb_color ~color:0 in
  check_float "gsrb traffic" 56. (Bound.bytes_of_stencil gsrb)

let test_bounds_arithmetic () =
  let machine = Machine.host ~bandwidth_gbs:24. () in
  check_float "stencils/s" 1e9
    (Bound.stencils_per_second ~machine ~bytes_per_stencil:24.);
  check_float "sweep time" 1e-3
    (Bound.sweep_time ~machine ~bytes_per_stencil:24. ~points:1_000_000);
  check_float "derate doubles time" 2e-3
    (Bound.predict_time ~machine ~derate:2. ~bytes_per_stencil:24.
       ~points:1_000_000 ());
  (* paper's headline bound: K20c at 64 B/stencil ≈ 1.98 Gstencil/s *)
  let k20_gsrb =
    Bound.stencils_per_second ~machine:Machine.k20c ~bytes_per_stencil:64.
  in
  check_bool "k20 gsrb bound ~2G" true
    (k20_gsrb > 1.9e9 && k20_gsrb < 2.1e9)

let () =
  Alcotest.run "sf_roofline"
    [
      ( "machines",
        [ Alcotest.test_case "presets" `Quick test_machines ] );
      ( "stream",
        [
          Alcotest.test_case "dot" `Quick test_stream_dot;
          Alcotest.test_case "measure" `Quick test_stream_measure;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "paper byte counts" `Quick
            test_paper_byte_counts;
          Alcotest.test_case "bytes of stencil" `Quick test_bytes_of_stencil;
          Alcotest.test_case "arithmetic" `Quick test_bounds_arithmetic;
        ] );
    ]
