open Sf_mesh
open Sf_hpgmg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_axis_names () =
  Alcotest.(check string) "x" "x" (Nd.axis_name 0);
  Alcotest.(check string) "w" "w" (Nd.axis_name 3);
  Alcotest.(check string) "a5" "a5" (Nd.axis_name 5);
  Alcotest.(check string) "beta" "beta_z" (Nd.beta_name 2)

let test_group_shapes () =
  (* 2·dims boundary stencils; 2^dims interpolation parities *)
  List.iter
    (fun dims ->
      check_int
        (Printf.sprintf "%d-d boundaries" dims)
        (2 * dims)
        (List.length (Nd.boundaries ~dims ~grid:"u"));
      check_int
        (Printf.sprintf "%d-d parities" dims)
        (1 lsl dims)
        (List.length (Nd.interpolation ~dims)))
    [ 1; 2; 3; 4 ]

let solve_poisson ~dims ~n ~cycles =
  let solver = Nd.Solver.create ~dims ~n () in
  let finest = Nd.Solver.finest solver in
  Nd.Level.fill_interior (Nd.Level.f finest) finest (Nd.rhs_sine ~dims);
  let norms = Nd.Solver.solve ~cycles solver in
  let err =
    Nd.Level.error_vs finest (Nd.Level.u finest) Nd.exact_sine
  in
  (norms, err)

let test_1d_poisson () =
  (* piecewise-constant interpolation is weak in 1-D (per-cycle factor
     ≈0.35 rather than ≈0.07) — the solver still converges, it just needs
     more cycles; the error must still reach the discretisation floor *)
  let norms, err = solve_poisson ~dims:1 ~n:32 ~cycles:20 in
  check_bool "converged" true (norms.(20) < norms.(0) *. 1e-6);
  check_bool (Printf.sprintf "error %.2e" err) true (err < 2e-3)

let test_2d_poisson_convergence_and_order () =
  let _, e16 = solve_poisson ~dims:2 ~n:16 ~cycles:8 in
  let norms, e32 = solve_poisson ~dims:2 ~n:32 ~cycles:8 in
  check_bool "converged" true (norms.(8) < norms.(0) *. 1e-8);
  check_bool
    (Printf.sprintf "O(h^2) ratio %.2f" (e16 /. e32))
    true
    (e16 /. e32 > 3. && e16 /. e32 < 5.)

let test_4d_poisson () =
  (* rank-4 iteration spaces exercise the generic machinery beyond what
     any emitter supports *)
  let norms, err = solve_poisson ~dims:4 ~n:8 ~cycles:6 in
  check_bool "4-d converged" true (norms.(6) < norms.(0) *. 1e-6);
  check_bool (Printf.sprintf "4-d error %.2e" err) true (err < 0.1)

let test_3d_matches_specialised_solver () =
  (* the generic dims=3 solver and the dedicated Mg solver perform the
     same algorithm; starting from the same state they must agree to
     rounding *)
  let n = 8 in
  let generic = Nd.Solver.create ~dims:3 ~n () in
  let dedicated = Mg.create ~n () in
  let gf = Nd.Solver.finest generic in
  Nd.Level.fill_interior (Nd.Level.f gf) gf (Nd.rhs_sine ~dims:3);
  Problem.setup_poisson (Mg.finest dedicated);
  for _ = 1 to 3 do
    Nd.Solver.vcycle generic;
    Mg.vcycle dedicated
  done;
  let d =
    Mesh.max_abs_diff (Nd.Level.u gf) (Level.u (Mg.finest dedicated))
  in
  check_bool (Printf.sprintf "solvers agree (diff %.2e)" d) true (d < 1e-11)

let test_variable_coefficients_2d () =
  let solver = Nd.Solver.create ~dims:2 ~n:16 () in
  Nd.Solver.set_beta solver (fun c ->
      1. +. (0.4 *. sin (6. *. c.(0)) *. cos (5. *. c.(1))));
  let finest = Nd.Solver.finest solver in
  Nd.Level.fill_interior (Nd.Level.f finest) finest (fun c ->
      c.(0) -. c.(1));
  let norms = Nd.Solver.solve ~cycles:6 solver in
  check_bool "vc 2-d converged" true (norms.(6) < norms.(0) *. 1e-6)

let test_level_dof () =
  check_int "2d dof" 256 (Nd.Level.dof (Nd.Level.create ~dims:2 ~n:16));
  check_int "4d dof" 4096 (Nd.Level.dof (Nd.Level.create ~dims:4 ~n:8))

let () =
  Alcotest.run "sf_hpgmg_nd"
    [
      ( "structure",
        [
          Alcotest.test_case "axis names" `Quick test_axis_names;
          Alcotest.test_case "group shapes" `Quick test_group_shapes;
          Alcotest.test_case "level dof" `Quick test_level_dof;
        ] );
      ( "solver",
        [
          Alcotest.test_case "1-d poisson" `Quick test_1d_poisson;
          Alcotest.test_case "2-d poisson + order" `Quick
            test_2d_poisson_convergence_and_order;
          Alcotest.test_case "4-d poisson" `Quick test_4d_poisson;
          Alcotest.test_case "3-d generic = dedicated" `Quick
            test_3d_matches_specialised_solver;
          Alcotest.test_case "2-d variable coefficients" `Quick
            test_variable_coefficients_2d;
        ] );
    ]
