open Sf_util
open Snowflake

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))
let iv = Ivec.of_list

(* -------------------------------------------------------------- Affine *)

let test_affine_basic () =
  let id = Affine.identity 2 in
  check_bool "identity" true (Affine.is_identity id);
  Alcotest.(check (list int)) "apply id" [ 3; 4 ]
    (Ivec.to_list (Affine.apply id (iv [ 3; 4 ])));
  let m = Affine.make ~scale:(iv [ 2; 2 ]) ~offset:(iv [ 1; 0 ]) in
  Alcotest.(check (list int)) "apply scaled" [ 7; 8 ]
    (Ivec.to_list (Affine.apply m (iv [ 3; 4 ])));
  check_bool "not identity" false (Affine.is_identity m);
  check_bool "not unit scale" false (Affine.is_unit_scale m)

let test_affine_shift () =
  let m = Affine.make ~scale:(iv [ 2 ]) ~offset:(iv [ 1 ]) in
  let shifted = Affine.shift m (iv [ 3 ]) in
  (* x ↦ m(x+3) = 2x + 7 *)
  Alcotest.(check (list int)) "shift composes" [ 7 ]
    (Ivec.to_list (Affine.apply shifted (iv [ 0 ])));
  Alcotest.(check (list int)) "shift composes at 1" [ 9 ]
    (Ivec.to_list (Affine.apply shifted (iv [ 1 ])))

let test_affine_invalid () =
  (try
     ignore (Affine.make ~scale:(iv [ -1 ]) ~offset:(iv [ 0 ]));
     Alcotest.fail "negative scale accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Affine.make ~scale:(iv [ 1; 1 ]) ~offset:(iv [ 0 ]));
    Alcotest.fail "rank mismatch accepted"
  with Invalid_argument _ -> ()

(* ---------------------------------------------------------------- Expr *)

let test_expr_eval () =
  let open Expr in
  let e = (read "a" (iv [ 1 ]) +: const 2.) *: param "k" in
  let read _ m = float_of_int m.Affine.offset.(0) in
  let params = function "k" -> 10. | _ -> 0. in
  check_float "eval" 30. (eval e ~read ~params)

let test_expr_simplify () =
  let open Expr in
  let r = read "a" (iv [ 0 ]) in
  check_bool "x+0" true (equal (simplify (r +: const 0.)) r);
  check_bool "0+x" true (equal (simplify (const 0. +: r)) r);
  check_bool "x*1" true (equal (simplify (r *: const 1.)) r);
  check_bool "x*0" true (equal (simplify (r *: const 0.)) (const 0.));
  check_bool "x*-1" true (equal (simplify (r *: const (-1.))) (neg r));
  check_bool "--x" true (equal (simplify (neg (neg r))) r);
  check_bool "const fold" true
    (equal (simplify (const 2. +: const 3.)) (const 5.));
  check_bool "x-0" true (equal (simplify (r -: const 0.)) r);
  check_bool "x/1" true (equal (simplify (r /: const 1.)) r)

let test_expr_shift () =
  let open Expr in
  let e = read "a" (iv [ 1; 0 ]) +: read "b" (iv [ 0; 0 ]) in
  let shifted = shift (iv [ 0; 1 ]) e in
  match reads shifted with
  | [ ("a", ma); ("b", mb) ] ->
      Alcotest.(check (list int)) "a shifted" [ 1; 1 ]
        (Ivec.to_list ma.Affine.offset);
      Alcotest.(check (list int)) "b shifted" [ 0; 1 ]
        (Ivec.to_list mb.Affine.offset)
  | _ -> Alcotest.fail "unexpected reads"

let test_expr_queries () =
  let open Expr in
  let e =
    (read "b" (iv [ 0 ]) *: param "alpha") +: (read "a" (iv [ 1 ]) -: param "beta")
  in
  Alcotest.(check (list string)) "grids" [ "a"; "b" ] (grids e);
  Alcotest.(check (list string)) "params" [ "alpha"; "beta" ] (params e);
  check_int "dims" 1 (Option.get (dims e));
  check_int "reads count" 2 (List.length (reads e));
  (* duplicate reads deduplicate *)
  let e2 = read "a" (iv [ 1 ]) +: read "a" (iv [ 1 ]) in
  check_int "dedup" 1 (List.length (reads e2))

let test_expr_hash_equal () =
  let open Expr in
  let e1 = read "a" (iv [ 1 ]) +: const 2. in
  let e2 = read "a" (iv [ 1 ]) +: const 2. in
  check_bool "structural equal" true (equal e1 e2);
  check_int "hash equal" (hash e1) (hash e2);
  check_bool "different" false (equal e1 (read "a" (iv [ 2 ]) +: const 2.))

(* ------------------------------------------------------------- Weights *)

let test_weights_1d () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  check_int "npoints" 3 (Weights.npoints w);
  check_int "dims" 1 (Weights.dims w);
  check_int "radius" 1 (Weights.radius w);
  Alcotest.(check (list (list int))) "support" [ [ -1 ]; [ 0 ]; [ 1 ] ]
    (List.map Ivec.to_list (Weights.support w))

let test_weights_2d () =
  (* 3x3 with zero corners: the 5-point stencil *)
  let w =
    Weights.of_nested
      (Weights.A
         [
           A [ W 0.; W 1.; W 0. ];
           A [ W 1.; W (-4.); W 1. ];
           A [ W 0.; W 1.; W 0. ];
         ])
  in
  check_int "zeros dropped" 5 (Weights.npoints w);
  check_int "dims" 2 (Weights.dims w);
  (match Weights.find w (iv [ 0; 0 ]) with
  | Some (Expr.Const c) -> check_float "center" (-4.) c
  | _ -> Alcotest.fail "center missing");
  check_bool "corner dropped" true (Weights.find w (iv [ 1; 1 ]) = None)

let test_weights_ragged () =
  try
    ignore (Weights.of_nested (Weights.A [ A [ W 1. ]; A [ W 1.; W 2. ] ]));
    Alcotest.fail "ragged accepted"
  with Invalid_argument _ -> ()

let test_weights_sparse () =
  let w =
    Weights.of_alist
      [ ([ 0; 0 ], Expr.const 2.); ([ 0; 0 ], Expr.const 3.); ([ 1; 0 ], Expr.const 1.) ]
  in
  check_int "merged npoints" 2 (Weights.npoints w);
  match Weights.find w (iv [ 0; 0 ]) with
  | Some (Expr.Const c) -> check_float "duplicates summed" 5. c
  | _ -> Alcotest.fail "missing entry"

let test_weights_add () =
  let a = Weights.of_alist [ ([ 0 ], Expr.const 1.) ] in
  let b = Weights.of_alist [ ([ 0 ], Expr.const (-1.)); ([ 1 ], Expr.const 2.) ] in
  let c = Weights.add a b in
  (* 0-offset entries cancel to zero and are dropped *)
  check_int "cancelled" 1 (Weights.npoints c);
  check_bool "kept" true (Weights.find c (iv [ 1 ]) <> None)

let test_weights_even_extent_center () =
  (* extent 2 → centre index 1: offsets -1 and 0 *)
  let w = Weights.of_nested (Weights.A [ W 1.; W 2. ]) in
  Alcotest.(check (list (list int))) "support" [ [ -1 ]; [ 0 ] ]
    (List.map Ivec.to_list (Weights.support w))

(* ----------------------------------------------------------- Component *)

let test_component_expr () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  let e = Component.to_expr ~grid:"u" w in
  let read _ m = float_of_int (10 + m.Affine.offset.(0)) in
  (* 9 - 2*10 + 11 = 0 *)
  check_float "laplacian of linear" 0.
    (Expr.eval e ~read ~params:(fun _ -> 0.))

let test_component_nested_variable_coefficient () =
  (* flux-style: weight at +1 is itself a component reading beta — the beta
     read must be shifted to the neighbour. *)
  let beta_here = Component.to_expr ~grid:"beta" (Weights.scalar 1. 1) in
  let w =
    Weights.of_alist [ ([ 1 ], beta_here) ]
  in
  let e = Component.to_expr ~grid:"u" w in
  (* e at x = beta(x+1) * u(x+1) *)
  match Expr.reads e with
  | reads ->
      let beta_read =
        List.find (fun (g, _) -> g = "beta") reads |> snd
      in
      Alcotest.(check (list int)) "beta read shifted" [ 1 ]
        (Ivec.to_list beta_read.Affine.offset)

(* -------------------------------------------------------------- Domain *)

let test_domain_resolve () =
  let r = Domain.rect ~lo:[ 1; 1 ] ~hi:[ -1; -1 ] () in
  let res = Domain.resolve_rect ~shape:(iv [ 6; 8 ]) r in
  Alcotest.(check (list int)) "lo" [ 1; 1 ] (Ivec.to_list res.Domain.rlo);
  Alcotest.(check (list int)) "hi" [ 5; 7 ] (Ivec.to_list res.Domain.rhi);
  check_int "npoints" 24 (Domain.npoints res)

let test_domain_stride_counts () =
  let r = Domain.rect ~stride:[ 2 ] ~lo:[ 1 ] ~hi:[ -1 ] () in
  let res = Domain.resolve_rect ~shape:(iv [ 8 ]) r in
  (* points 1 3 5 *)
  check_int "count" 3 (Domain.npoints res);
  Alcotest.(check (list (list int))) "points" [ [ 1 ]; [ 3 ]; [ 5 ] ]
    (List.map Ivec.to_list (Domain.to_list res))

let test_domain_mem () =
  let r = Domain.rect ~stride:[ 2; 1 ] ~lo:[ 1; 0 ] ~hi:[ 6; 3 ] () in
  let res = Domain.resolve_rect ~shape:(iv [ 10; 10 ]) r in
  check_bool "mem yes" true (Domain.mem res (iv [ 3; 2 ]));
  check_bool "mem wrong stride" false (Domain.mem res (iv [ 2; 2 ]));
  check_bool "mem out of range" false (Domain.mem res (iv [ 7; 2 ]))

let test_domain_iter_matches_to_list () =
  let r = Domain.rect ~stride:[ 2; 3 ] ~lo:[ 0; 1 ] ~hi:[ 5; 9 ] () in
  let res = Domain.resolve_rect ~shape:(iv [ 10; 10 ]) r in
  let count = ref 0 in
  Domain.iter res (fun p ->
      incr count;
      if not (Domain.mem res p) then Alcotest.fail "iter escaped lattice");
  check_int "iter count = npoints" (Domain.npoints res) !count

let test_domain_negative_bounds_empty () =
  (* lo resolves above hi → empty, not an error *)
  let r = Domain.rect ~lo:[ 3 ] ~hi:[ 2 ] () in
  let res = Domain.resolve_rect ~shape:(iv [ 8 ]) r in
  check_bool "empty" true (Domain.is_empty res)

let test_domain_escape_rejected () =
  let r = Domain.rect ~lo:[ -9 ] ~hi:[ 4 ] () in
  try
    ignore (Domain.resolve_rect ~shape:(iv [ 4 ]) r);
    Alcotest.fail "escape accepted"
  with Invalid_argument _ -> ()

let test_domain_colored_partition () =
  (* red+black over the interior must partition it exactly *)
  let shape = iv [ 7; 9 ] in
  let interior = Domain.interior 2 ~ghost:1 in
  let red = Domain.colored 2 ~ghost:1 ~color:0 ~ncolors:2 in
  let black = Domain.colored 2 ~ghost:1 ~color:1 ~ncolors:2 in
  let n_int =
    Domain.npoints_union (Domain.resolve ~shape interior)
  in
  let n_red = Domain.npoints_union (Domain.resolve ~shape red) in
  let n_black = Domain.npoints_union (Domain.resolve ~shape black) in
  check_int "partition size" n_int (n_red + n_black);
  (* every red point has even coordinate sum *)
  List.iter
    (fun rect ->
      Domain.iter rect (fun p ->
          if (p.(0) + p.(1)) mod 2 <> 0 then
            Alcotest.fail "red point with odd colour"))
    (Domain.resolve ~shape red);
  List.iter
    (fun rect ->
      Domain.iter rect (fun p ->
          if (p.(0) + p.(1)) mod 2 <> 1 then
            Alcotest.fail "black point with even colour"))
    (Domain.resolve ~shape black)

let test_domain_colored_3d_four_colors () =
  let shape = iv [ 9; 9; 9 ] in
  let total = ref 0 in
  for color = 0 to 3 do
    let d = Domain.colored 3 ~ghost:1 ~color ~ncolors:4 in
    List.iter
      (fun rect ->
        Domain.iter rect (fun p ->
            let s = p.(0) + p.(1) + p.(2) in
            if ((s mod 4) + 4) mod 4 <> color then
              Alcotest.fail "wrong colour class");
        total := !total + Domain.npoints rect)
      (Domain.resolve ~shape d)
  done;
  check_int "4-colour partition" (7 * 7 * 7) !total

let test_domain_union_translate () =
  let d =
    Domain.(of_rect (rect ~lo:[ 0 ] ~hi:[ 2 ] ()) ++ of_rect (rect ~lo:[ 4 ] ~hi:[ 6 ] ()))
  in
  check_int "union length" 2 (List.length d);
  let t = Domain.translate (iv [ 1 ]) d in
  let res = Domain.resolve ~shape:(iv [ 10 ]) t in
  Alcotest.(check (list (list int))) "translated" [ [ 1 ]; [ 2 ] ]
    (List.map Ivec.to_list (Domain.to_list (List.hd res)))

(* ------------------------------------------------------------- Stencil *)

let laplace_1d () =
  let w = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  Stencil.make ~label:"lap1d" ~output:"out"
    ~expr:(Component.to_expr ~grid:"u" w)
    ~domain:(Domain.interior 1 ~ghost:1)
    ()

let test_stencil_queries () =
  let s = laplace_1d () in
  check_int "dims" 1 (Stencil.dims s);
  check_int "radius" 1 (Stencil.radius s);
  check_bool "out of place" false (Stencil.is_in_place s);
  Alcotest.(check (list string)) "grids" [ "out"; "u" ] (Stencil.grids s);
  let in_place = Stencil.rename_output s "u" in
  check_bool "in place" true (Stencil.is_in_place in_place)

let test_stencil_rank_mismatch () =
  try
    ignore
      (Stencil.make ~output:"o"
         ~expr:(Expr.read "u" (iv [ 0; 0 ]))
         ~domain:(Domain.interior 1 ~ghost:0)
         ());
    Alcotest.fail "rank mismatch accepted"
  with Invalid_argument _ -> ()

let test_stencil_empty_domain () =
  try
    ignore (Stencil.make ~output:"o" ~expr:(Expr.const 0.) ~domain:[] ());
    Alcotest.fail "empty domain accepted"
  with Invalid_argument _ -> ()

let test_group () =
  let s = laplace_1d () in
  let g = Group.make ~label:"g" [ s; Stencil.rename_output s "u" ] in
  check_int "length" 2 (Group.length g);
  check_int "dims" 1 (Group.dims g);
  Alcotest.(check (list string)) "grids" [ "out"; "u" ] (Group.grids g);
  let g2 = Group.append g g in
  check_int "append" 4 (Group.length g2)

(* ----------------------------------------------------------------- Dsl *)

let test_dsl_weights () =
  check_int "star taps" 5 (Weights.npoints (Dsl.star_weights ~dims:2 ~center:1. ~arm:2.));
  check_int "laplacian taps 3d" 7 (Weights.npoints (Dsl.laplacian_weights ~dims:3));
  (match Weights.find (Dsl.laplacian_weights ~dims:3) (iv [ 0; 0; 0 ]) with
  | Some (Expr.Const c) -> check_float "center" (-6.) c
  | _ -> Alcotest.fail "no center");
  check_int "box taps" 27 (Weights.npoints (Dsl.box_weights ~dims:3 ~radius:1 ~weight:1.));
  (* blur weights sum to 1 *)
  let total =
    List.fold_left
      (fun acc (_, e) ->
        match e with Expr.Const c -> acc +. c | _ -> acc)
      0.
      (Weights.entries (Dsl.box_blur_weights ~dims:2 ~radius:1))
  in
  check_float "blur normalised" 1. total;
  check_int "offsets_within" 25 (List.length (Dsl.offsets_within ~dims:2 ~radius:2))

let run_faces_2d stencils grid_value =
  let open Sf_mesh in
  let shape = iv [ 6; 6 ] in
  let m = Mesh.create_init shape grid_value in
  let grids = Grids.of_list [ ("g", m) ] in
  List.iter
    (fun s ->
      List.iter
        (fun rect ->
          Domain.iter rect (fun p ->
              let v =
                Expr.eval s.Stencil.expr
                  ~read:(fun name map ->
                    Mesh.get (Grids.find grids name) (Affine.apply map p))
                  ~params:(fun _ -> 0.)
              in
              Mesh.set m (Affine.apply s.Stencil.out_map p) v))
        (Domain.resolve ~shape s.Stencil.domain))
    stencils;
  m

let test_dsl_boundary_families () =
  let open Sf_mesh in
  let base p = float_of_int ((10 * p.(0)) + p.(1)) in
  (* periodic: ghost row 0 must equal interior row 4 *)
  let m =
    run_faces_2d (Dsl.periodic_faces ~dims:2 ~interior:4 ~grid:"g") base
  in
  check_float "periodic low wraps" (base [| 4; 2 |]) (Mesh.get m [| 0; 2 |]);
  check_float "periodic high wraps" (base [| 1; 3 |]) (Mesh.get m [| 5; 3 |]);
  check_float "periodic axis 1" (base [| 2; 4 |]) (Mesh.get m [| 2; 0 |]);
  (* neumann: ghost equals first interior *)
  let m = run_faces_2d (Dsl.neumann_faces ~dims:2 ~grid:"g") base in
  check_float "neumann" (base [| 1; 2 |]) (Mesh.get m [| 0; 2 |]);
  (* dirichlet: ghost = -interior *)
  let m = run_faces_2d (Dsl.dirichlet_faces ~dims:2 ~grid:"g") base in
  check_float "dirichlet" (-.base [| 1; 2 |]) (Mesh.get m [| 0; 2 |])

let test_dsl_star_equals_component_laplacian () =
  (* the Dsl laplacian weights and a hand-built component must denote the
     same expression semantics *)
  let w1 = Dsl.laplacian_weights ~dims:1 in
  let w2 = Weights.of_nested (Weights.A [ W 1.; W (-2.); W 1. ]) in
  check_bool "1-d laplacian weights equal" true (Weights.equal w1 w2)

(* ------------------------------------------------ qcheck properties *)

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        (float_range (-4.) 4. >|= fun c -> Expr.Const c);
        ( pair (oneofl [ "u"; "v" ]) (pair (int_range (-2) 2) (int_range (-2) 2))
        >|= fun (g, (a, b)) -> Expr.read g (iv [ a; b ]) );
        (oneofl [ "p"; "q" ] >|= fun p -> Expr.Param p);
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            let* a = go (depth - 1) and* b = go (depth - 1) in
            oneofl Expr.[ a +: b; a -: b; a *: b; a /: b ] );
          (1, go (depth - 1) >|= Expr.neg);
        ]
  in
  go 3

let expr_arb = QCheck.make ~print:Expr.to_string expr_gen

let read_value g (m : Affine.t) =
  float_of_int ((Hashtbl.hash (g, Ivec.to_list m.Affine.offset) land 255) - 128)
  /. 64.

let param_value p = if p = "p" then 1.25 else -0.5

let core_props =
  [
    QCheck.Test.make ~name:"simplify preserves evaluation" ~count:800 expr_arb
      (fun e ->
        let v1 = Expr.eval e ~read:read_value ~params:param_value in
        let v2 =
          Expr.eval (Expr.simplify e) ~read:read_value ~params:param_value
        in
        (Float.is_nan v1 && Float.is_nan v2)
        || v1 = v2
        || Float.abs (v1 -. v2) /. Float.max 1. (Float.abs v1) < 1e-12);
    QCheck.Test.make ~name:"simplify is idempotent" ~count:400 expr_arb
      (fun e ->
        let s = Expr.simplify e in
        Expr.equal s (Expr.simplify s));
    QCheck.Test.make ~name:"rename_grids composes" ~count:300 expr_arb
      (fun e ->
        let f g = g ^ "!" in
        let renamed = Expr.rename_grids f e in
        List.for_all
          (fun (g, _) -> String.length g > 0 && g.[String.length g - 1] = '!')
          (Expr.reads renamed)
        && Expr.equal
             (Expr.rename_grids (fun g -> g) e)
             e);
    QCheck.Test.make ~name:"shift composes additively" ~count:300
      (QCheck.pair expr_arb
         (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
      (fun (e, (a, b)) ->
        Expr.equal
          (Expr.shift (iv [ a; b ]) e)
          (Expr.shift (iv [ a; 0 ]) (Expr.shift (iv [ 0; b ]) e)));
    QCheck.Test.make ~name:"colored classes partition the interior"
      ~count:200
      QCheck.(
        make
          ~print:(fun (d, nc, g, e) ->
            Printf.sprintf "dims=%d ncolors=%d ghost=%d extent=%d" d nc g e)
          Gen.(
            let* d = int_range 1 3 in
            let* nc = int_range 1 3 in
            let* g = int_range 0 2 in
            let* e = int_range (2 * (g + 1)) 9 in
            return (d, nc, g, e)))
      (fun (d, nc, ghost, extent) ->
        let shape = Ivec.make d extent in
        let interior_pts =
          Domain.npoints_union (Domain.resolve ~shape (Domain.interior d ~ghost))
        in
        let class_pts =
          List.init nc (fun color ->
              Domain.npoints_union
                (Domain.resolve ~shape (Domain.colored d ~ghost ~color ~ncolors:nc)))
        in
        (* classes are disjoint by residue, so sizes must sum to the
           interior *)
        List.fold_left ( + ) 0 class_pts = interior_pts);
    QCheck.Test.make ~name:"weights: nested = alist for constant taps"
      ~count:200
      QCheck.(
        make
          ~print:(fun ws -> String.concat "," (List.map string_of_float ws))
          Gen.(list_size (return 9) (float_range (-2.) 2.)))
      (fun ws ->
        let arr = Array.of_list ws in
        let nested =
          Weights.of_nested
            (Weights.A
               (List.init 3 (fun i ->
                    Weights.A
                      (List.init 3 (fun j -> Weights.W arr.((3 * i) + j))))))
        in
        let alist =
          Weights.of_alist
            (List.concat_map
               (fun i ->
                 List.map
                   (fun j ->
                     ([ i - 1; j - 1 ], Expr.const arr.((3 * i) + j)))
                   [ 0; 1; 2 ])
               [ 0; 1; 2 ])
        in
        Weights.equal nested alist);
  ]

let () =
  Alcotest.run "snowflake-core"
    [
      ( "affine",
        [
          Alcotest.test_case "basic" `Quick test_affine_basic;
          Alcotest.test_case "shift" `Quick test_affine_shift;
          Alcotest.test_case "invalid" `Quick test_affine_invalid;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "simplify" `Quick test_expr_simplify;
          Alcotest.test_case "shift" `Quick test_expr_shift;
          Alcotest.test_case "queries" `Quick test_expr_queries;
          Alcotest.test_case "hash/equal" `Quick test_expr_hash_equal;
        ] );
      ( "weights",
        [
          Alcotest.test_case "1d" `Quick test_weights_1d;
          Alcotest.test_case "2d" `Quick test_weights_2d;
          Alcotest.test_case "ragged" `Quick test_weights_ragged;
          Alcotest.test_case "sparse" `Quick test_weights_sparse;
          Alcotest.test_case "add" `Quick test_weights_add;
          Alcotest.test_case "even extent" `Quick
            test_weights_even_extent_center;
        ] );
      ( "component",
        [
          Alcotest.test_case "laplacian" `Quick test_component_expr;
          Alcotest.test_case "nested VC" `Quick
            test_component_nested_variable_coefficient;
        ] );
      ( "domain",
        [
          Alcotest.test_case "resolve" `Quick test_domain_resolve;
          Alcotest.test_case "stride counts" `Quick test_domain_stride_counts;
          Alcotest.test_case "mem" `Quick test_domain_mem;
          Alcotest.test_case "iter" `Quick test_domain_iter_matches_to_list;
          Alcotest.test_case "empty" `Quick test_domain_negative_bounds_empty;
          Alcotest.test_case "escape rejected" `Quick
            test_domain_escape_rejected;
          Alcotest.test_case "red-black partition" `Quick
            test_domain_colored_partition;
          Alcotest.test_case "4-colour 3d" `Quick
            test_domain_colored_3d_four_colors;
          Alcotest.test_case "union/translate" `Quick
            test_domain_union_translate;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "queries" `Quick test_stencil_queries;
          Alcotest.test_case "rank mismatch" `Quick test_stencil_rank_mismatch;
          Alcotest.test_case "empty domain" `Quick test_stencil_empty_domain;
        ] );
      ("group", [ Alcotest.test_case "basic" `Quick test_group ]);
      ( "dsl",
        [
          Alcotest.test_case "weight constructors" `Quick test_dsl_weights;
          Alcotest.test_case "boundary families" `Quick
            test_dsl_boundary_families;
          Alcotest.test_case "laplacian weights" `Quick
            test_dsl_star_equals_component_laplacian;
        ] );
      ("core-props", List.map QCheck_alcotest.to_alcotest core_props);
    ]
