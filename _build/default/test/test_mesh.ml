open Sf_util
open Sf_mesh

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))
let iv = Ivec.of_list

let test_create () =
  let m = Mesh.create (iv [ 3; 4 ]) in
  check_int "size" 12 (Mesh.size m);
  check_int "dims" 2 (Mesh.dims m);
  Alcotest.(check (list int)) "shape" [ 3; 4 ] (Ivec.to_list (Mesh.shape m));
  Alcotest.(check (list int)) "strides" [ 4; 1 ]
    (Ivec.to_list (Mesh.strides m));
  check_float "zero init" 0. (Mesh.get m (iv [ 2; 3 ]))

let test_create_invalid () =
  Alcotest.check_raises "empty shape"
    (Invalid_argument "Mesh.create: empty shape") (fun () ->
      ignore (Mesh.create [||]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Mesh.create: non-positive extent") (fun () ->
      ignore (Mesh.create (iv [ 3; 0 ])))

let test_get_set () =
  let m = Mesh.create (iv [ 2; 3; 4 ]) in
  Mesh.set m (iv [ 1; 2; 3 ]) 42.;
  check_float "readback" 42. (Mesh.get m (iv [ 1; 2; 3 ]));
  check_int "flat index" 23 (Mesh.flat_index m (iv [ 1; 2; 3 ]));
  check_float "flat readback" 42. (Mesh.get_flat m 23);
  check_bool "in bounds" true (Mesh.in_bounds m (iv [ 1; 2; 3 ]));
  check_bool "out of bounds" false (Mesh.in_bounds m (iv [ 1; 2; 4 ]));
  check_bool "negative oob" false (Mesh.in_bounds m (iv [ -1; 0; 0 ]))

let test_bounds_checked () =
  let m = Mesh.create (iv [ 2; 2 ]) in
  (try
     ignore (Mesh.get m (iv [ 2; 0 ]));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    Mesh.set m (iv [ 0; -1 ]) 0.;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_fill_with () =
  let m =
    Mesh.create_init (iv [ 3; 3 ]) (fun p -> float_of_int ((10 * p.(0)) + p.(1)))
  in
  check_float "corner" 0. (Mesh.get m (iv [ 0; 0 ]));
  check_float "mid" 11. (Mesh.get m (iv [ 1; 1 ]));
  check_float "last" 22. (Mesh.get m (iv [ 2; 2 ]))

let test_iteri_order () =
  let m = Mesh.create_init (iv [ 2; 2 ]) (fun p -> float_of_int ((2 * p.(0)) + p.(1))) in
  let seen = ref [] in
  Mesh.iteri m (fun _ v -> seen := v :: !seen);
  Alcotest.(check (list (float 0.))) "row major" [ 0.; 1.; 2.; 3. ]
    (List.rev !seen)

let test_copy_blit () =
  let a = Mesh.random ~seed:7 (iv [ 4; 4 ]) in
  let b = Mesh.copy a in
  check_bool "copy equal" true (Mesh.equal_approx a b);
  Mesh.set b (iv [ 0; 0 ]) 99.;
  check_bool "copy independent" false (Mesh.equal_approx a b);
  let c = Mesh.create (iv [ 4; 4 ]) in
  Mesh.blit ~src:a ~dst:c;
  check_bool "blit equal" true (Mesh.equal_approx a c)

let test_reductions () =
  let a = Mesh.create_init (iv [ 2; 2 ]) (fun p -> float_of_int (p.(0) + p.(1))) in
  (* values 0 1 1 2 *)
  check_float "sum" 4. (Mesh.sum a);
  check_float "mean" 1. (Mesh.mean a);
  check_float "linf" 2. (Mesh.norm_linf a);
  check_float "l2" (sqrt 6.) (Mesh.norm_l2 a);
  check_float "dot self" 6. (Mesh.dot a a)

let test_axpy_scale () =
  let x = Mesh.create_init (iv [ 3 ]) (fun p -> float_of_int p.(0)) in
  let y = Mesh.create_init (iv [ 3 ]) (fun _ -> 1.) in
  Mesh.axpy ~alpha:2. ~x ~y;
  check_float "axpy" 5. (Mesh.get y (iv [ 2 ]));
  Mesh.scale_inplace y 0.5;
  check_float "scale" 2.5 (Mesh.get y (iv [ 2 ]))

let test_max_abs_diff () =
  let a = Mesh.create (iv [ 2; 2 ]) and b = Mesh.create (iv [ 2; 2 ]) in
  Mesh.set b (iv [ 1; 1 ]) 0.5;
  check_float "diff" 0.5 (Mesh.max_abs_diff a b);
  check_bool "tol pass" true (Mesh.equal_approx ~tol:0.6 a b);
  check_bool "tol fail" false (Mesh.equal_approx ~tol:0.4 a b)

let test_random_deterministic () =
  let a = Mesh.random ~seed:3 (iv [ 5; 5 ]) in
  let b = Mesh.random ~seed:3 (iv [ 5; 5 ]) in
  check_bool "same seed same mesh" true (Mesh.equal_approx a b);
  let c = Mesh.random ~seed:4 (iv [ 5; 5 ]) in
  check_bool "different seed" false (Mesh.equal_approx a c)

let test_grids () =
  let g = Grids.create () in
  Grids.add g "mesh" (Mesh.create (iv [ 2; 2 ]));
  Grids.add g "rhs" (Mesh.create (iv [ 2; 2 ]));
  check_bool "mem" true (Grids.mem g "mesh");
  check_bool "not mem" false (Grids.mem g "nope");
  Alcotest.(check (list string)) "names" [ "mesh"; "rhs" ] (Grids.names g);
  (try
     ignore (Grids.find g "nope");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let g2 = Grids.copy g in
  Mesh.set (Grids.find g2 "mesh") (iv [ 0; 0 ]) 5.;
  check_float "deep copy isolated" 0.
    (Mesh.get (Grids.find g "mesh") (iv [ 0; 0 ]))

let mesh_props =
  let shape_gen =
    QCheck.Gen.(list_size (int_range 1 3) (int_range 1 6) >|= Ivec.of_list)
  in
  let arb =
    QCheck.make
      ~print:(fun s -> Ivec.to_string s)
      shape_gen
  in
  [
    QCheck.Test.make ~name:"flat index bijective" ~count:100 arb (fun shape ->
        let m = Mesh.create shape in
        let seen = Hashtbl.create 64 in
        let ok = ref true in
        Mesh.iteri m (fun p _ ->
            let f = Mesh.flat_index m p in
            if Hashtbl.mem seen f then ok := false;
            Hashtbl.replace seen f ();
            if f < 0 || f >= Mesh.size m then ok := false);
        !ok && Hashtbl.length seen = Mesh.size m);
    QCheck.Test.make ~name:"sum matches iteri accumulation" ~count:50 arb
      (fun shape ->
        let m = Mesh.random ~seed:(Ivec.hash shape land 0xffff) shape in
        let acc = ref 0. in
        Mesh.iteri m (fun _ v -> acc := !acc +. v);
        Float.abs (!acc -. Mesh.sum m) < 1e-9);
  ]

let () =
  Alcotest.run "sf_mesh"
    [
      ( "mesh",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
          Alcotest.test_case "fill_with" `Quick test_fill_with;
          Alcotest.test_case "iteri order" `Quick test_iteri_order;
          Alcotest.test_case "copy/blit" `Quick test_copy_blit;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "axpy/scale" `Quick test_axpy_scale;
          Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
          Alcotest.test_case "random deterministic" `Quick
            test_random_deterministic;
        ] );
      ("grids", [ Alcotest.test_case "bindings" `Quick test_grids ]);
      ("mesh-props", List.map QCheck_alcotest.to_alcotest mesh_props);
    ]
