open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends
open Sf_harness

let check_bool = Alcotest.(check bool)

let test_timer () =
  let count = ref 0 in
  let t = Timer.time ~warmup:2 ~repeats:3 (fun () -> incr count) in
  Alcotest.(check int) "warmup + repeats" 5 !count;
  check_bool "non-negative" true (t >= 0.);
  let samples = Timer.time_all ~warmup:0 ~repeats:4 (fun () -> ()) in
  Alcotest.(check int) "sample count" 4 (Array.length samples)

let test_tile_candidates () =
  let cs = Tune.tile_candidates ~dims:3 ~n:16 in
  check_bool "includes default" true (List.mem None cs);
  List.iter
    (fun c ->
      match c with
      | None -> ()
      | Some tile ->
          Alcotest.(check int) "rank" 3 (List.length tile);
          check_bool "fits extent" true (List.for_all (fun t -> t <= 16) tile))
    cs

let test_tune_picks_a_config () =
  let shape = Ivec.of_list [ 18; 18 ] in
  let s =
    Stencil.make ~label:"lap" ~output:"out"
      ~expr:
        Expr.(
          read "u" (Ivec.of_list [ -1; 0 ])
          +: read "u" (Ivec.of_list [ 1; 0 ])
          +: read "u" (Ivec.of_list [ 0; -1 ])
          +: read "u" (Ivec.of_list [ 0; 1 ])
          -: (const 4. *: read "u" (Ivec.of_list [ 0; 0 ])))
      ~domain:(Domain.interior 2 ~ghost:1)
      ()
  in
  let group = Group.make ~label:"lap" [ s ] in
  let grids =
    Grids.of_list [ ("u", Mesh.random shape); ("out", Mesh.create shape) ]
  in
  let result =
    Tune.best ~repeats:1 ~backend:Jit.Openmp ~shape ~params:[] ~grids group
  in
  check_bool "positive time" true (result.Tune.time > 0.);
  (* the winning config must actually run *)
  let kernel = Jit.compile ~config:result.Tune.config Jit.Openmp ~shape group in
  kernel.Kernel.run grids;
  (* explicit candidate list: the returned config is from the list *)
  let candidates =
    [ Config.default; { Config.default with tile = Some [ 4; 4 ] } ]
  in
  let r2 =
    Tune.best ~candidates ~repeats:1 ~backend:Jit.Compiled ~shape ~params:[]
      ~grids group
  in
  check_bool "config from candidates" true (List.mem r2.Tune.config candidates)

let () =
  Alcotest.run "sf_harness"
    [
      ("timer", [ Alcotest.test_case "basics" `Quick test_timer ]);
      ( "tune",
        [
          Alcotest.test_case "candidates" `Quick test_tile_candidates;
          Alcotest.test_case "best" `Quick test_tune_picks_a_config;
        ] );
    ]
