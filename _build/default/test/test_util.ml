open Sf_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

(* ---------------------------------------------------------------- Ivec *)

let test_ivec_basic () =
  let a = Ivec.of_list [ 1; 2; 3 ] and b = Ivec.of_list [ 4; 5; 6 ] in
  check_bool "equal self" true (Ivec.equal a a);
  check_bool "not equal" false (Ivec.equal a b);
  Alcotest.(check (list int)) "add" [ 5; 7; 9 ] (Ivec.to_list (Ivec.add a b));
  Alcotest.(check (list int)) "sub" [ -3; -3; -3 ] (Ivec.to_list (Ivec.sub a b));
  Alcotest.(check (list int)) "neg" [ -1; -2; -3 ] (Ivec.to_list (Ivec.neg a));
  Alcotest.(check (list int)) "scale" [ 2; 4; 6 ] (Ivec.to_list (Ivec.scale 2 a));
  Alcotest.(check (list int)) "mul" [ 4; 10; 18 ] (Ivec.to_list (Ivec.mul a b));
  check_int "dot" 32 (Ivec.dot a b);
  check_int "product" 6 (Ivec.product a);
  check_int "l1" 6 (Ivec.l1_norm (Ivec.of_list [ 1; -2; 3 ]));
  check_int "linf" 3 (Ivec.linf_norm (Ivec.of_list [ 1; -2; 3 ]));
  check_bool "is_zero yes" true (Ivec.is_zero (Ivec.zero 3));
  check_bool "is_zero no" false (Ivec.is_zero a)

let test_ivec_compare () =
  let a = Ivec.of_list [ 1; 2 ] and b = Ivec.of_list [ 1; 3 ] in
  check_bool "lex lt" true (Ivec.compare a b < 0);
  check_bool "lex gt" true (Ivec.compare b a > 0);
  check_int "lex eq" 0 (Ivec.compare a a);
  (* shorter vectors sort first *)
  check_bool "rank order" true (Ivec.compare (Ivec.zero 1) (Ivec.zero 2) < 0)

let test_ivec_rank_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Ivec: rank mismatch") (fun () ->
      ignore (Ivec.add (Ivec.zero 2) (Ivec.zero 3)))

let test_ivec_minmax () =
  let a = Ivec.of_list [ 1; 5 ] and b = Ivec.of_list [ 3; 2 ] in
  Alcotest.(check (list int)) "max2" [ 3; 5 ] (Ivec.to_list (Ivec.max2 a b));
  Alcotest.(check (list int)) "min2" [ 1; 2 ] (Ivec.to_list (Ivec.min2 a b))

let test_ivec_to_string () =
  Alcotest.(check string) "pp" "(1, -2)" (Ivec.to_string (Ivec.of_list [ 1; -2 ]))

let ivec_qcheck =
  let gen =
    QCheck.Gen.(list_size (int_range 1 4) (int_range (-50) 50) >|= Ivec.of_list)
  in
  let arb = QCheck.make ~print:Ivec.to_string gen in
  [
    QCheck.Test.make ~name:"ivec add commutative" ~count:200
      (QCheck.pair arb arb) (fun (a, b) ->
        QCheck.assume (Ivec.dims a = Ivec.dims b);
        Ivec.equal (Ivec.add a b) (Ivec.add b a));
    QCheck.Test.make ~name:"ivec sub then add roundtrip" ~count:200
      (QCheck.pair arb arb) (fun (a, b) ->
        QCheck.assume (Ivec.dims a = Ivec.dims b);
        Ivec.equal (Ivec.add (Ivec.sub a b) b) a);
    QCheck.Test.make ~name:"ivec hash respects equality" ~count:200 arb
      (fun a -> Ivec.hash a = Ivec.hash (Ivec.of_list (Ivec.to_list a)));
    QCheck.Test.make ~name:"ivec compare total order antisymmetry" ~count:200
      (QCheck.pair arb arb) (fun (a, b) ->
        Ivec.compare a b = -Ivec.compare b a);
  ]

(* --------------------------------------------------------------- Stats *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "median even" 2.5 (Stats.median xs);
  check_float "median odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  check_float "min" 1. (Stats.minimum xs);
  check_float "max" 4. (Stats.maximum xs);
  check_float "variance" (5. /. 3.) (Stats.variance xs);
  check_float "stddev" (sqrt (5. /. 3.)) (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "p0" 10. (Stats.percentile 0. xs);
  check_float "p50" 30. (Stats.percentile 50. xs);
  check_float "p100" 50. (Stats.percentile 100. xs);
  check_float "p25" 20. (Stats.percentile 25. xs)

let test_stats_degenerate () =
  check_bool "mean empty is nan" true (Float.is_nan (Stats.mean [||]));
  check_float "variance singleton" 0. (Stats.variance [| 7. |]);
  check_float "percentile singleton" 7. (Stats.percentile 90. [| 7. |])

(* ------------------------------------------------------------- Tabular *)

let test_tabular_render () =
  let t = Tabular.create ~headers:[ "name"; "v" ] in
  Tabular.add_row t [ "a"; "1" ];
  Tabular.add_row t [ "bb"; "22" ];
  let s = Tabular.render t in
  check_bool "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  (* all lines same width *)
  let lines = String.split_on_char '\n' s in
  check_int "line count" 4 (List.length lines);
  let widths = List.map String.length lines in
  check_bool "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_tabular_mismatch () =
  let t = Tabular.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Tabular.add_row: row width mismatch") (fun () ->
      Tabular.add_row t [ "only-one" ])

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_tabular_float_row () =
  let t = Tabular.create ~headers:[ "k"; "x"; "y" ] in
  Tabular.add_float_row t ~fmt:(Printf.sprintf "%.2f") "r" [ 1.; 2. ];
  let s = Tabular.render t in
  check_bool "contains 1.00" true (contains_substring s "1.00")

(* --------------------------------------------------------------- Hashc *)

let test_hashc () =
  check_bool "combine differs from inputs" true
    (Hashc.combine 1 2 <> 1 && Hashc.combine 1 2 <> 2);
  check_bool "order sensitive" true (Hashc.combine 1 2 <> Hashc.combine 2 1);
  check_int "list deterministic"
    (Hashc.list Hashc.int [ 1; 2; 3 ])
    (Hashc.list Hashc.int [ 1; 2; 3 ]);
  check_bool "list order sensitive" true
    (Hashc.list Hashc.int [ 1; 2 ] <> Hashc.list Hashc.int [ 2; 1 ])

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest ivec_qcheck in
  Alcotest.run "sf_util"
    [
      ( "ivec",
        [
          Alcotest.test_case "basic ops" `Quick test_ivec_basic;
          Alcotest.test_case "compare" `Quick test_ivec_compare;
          Alcotest.test_case "rank mismatch" `Quick test_ivec_rank_mismatch;
          Alcotest.test_case "min/max" `Quick test_ivec_minmax;
          Alcotest.test_case "to_string" `Quick test_ivec_to_string;
        ] );
      ("ivec-props", qsuite);
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "degenerate" `Quick test_stats_degenerate;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "mismatch" `Quick test_tabular_mismatch;
          Alcotest.test_case "float row" `Quick test_tabular_float_row;
        ] );
      ("hashc", [ Alcotest.test_case "combine" `Quick test_hashc ]);
    ]
