(* The Fig. 6 modified-STREAM benchmark as a standalone tool. *)

open Cmdliner
open Sf_roofline

let run n trials =
  let bw = Stream.measure ~n ~trials () in
  Printf.printf
    "modified STREAM (dot product), %d doubles x2, best of %d: %.2f GB/s\n" n
    trials bw;
  Printf.printf "paper reference points: %s %.1f GB/s, %s %.1f GB/s\n"
    Machine.i7_4765t.Machine.name Machine.i7_4765t.Machine.bandwidth_gbs
    Machine.k20c.Machine.name Machine.k20c.Machine.bandwidth_gbs

let n_arg =
  Arg.(value & opt int 4_000_000 & info [ "n" ] ~doc:"Elements per array.")

let trials_arg =
  Arg.(value & opt int 5 & info [ "trials" ] ~doc:"Number of timed trials.")

let cmd =
  Cmd.v
    (Cmd.info "stream_bench" ~doc:"Measure read-dominated memory bandwidth")
    Term.(const run $ n_arg $ trials_arg)

let () = exit (Cmd.eval cmd)
