bin/codegen_dump.mli:
