bin/stencil_bench.ml: Arg Baseline Bound Cmd Cmdliner Config Jit Kernel Level List Machine Operators Printf Problem Sf_backends Sf_harness Sf_hpgmg Sf_roofline Snowflake Stream String Term
