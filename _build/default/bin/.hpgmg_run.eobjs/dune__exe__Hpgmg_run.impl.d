bin/hpgmg_run.ml: Arg Array Cmd Cmdliner Config Jit Level List Mg Printf Problem Sf_backends Sf_hpgmg Term Unix
