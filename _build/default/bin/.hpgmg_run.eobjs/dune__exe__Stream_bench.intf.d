bin/stream_bench.mli:
