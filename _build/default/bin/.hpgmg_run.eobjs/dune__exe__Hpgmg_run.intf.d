bin/hpgmg_run.mli:
