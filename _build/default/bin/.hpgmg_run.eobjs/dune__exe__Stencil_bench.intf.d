bin/stencil_bench.mli:
