bin/codegen_dump.ml: Arg Cmd Cmdliner Ivec List Operators Printf Sf_analysis Sf_backends Sf_codegen Sf_hpgmg Sf_util Snowflake String Term
