bin/stream_bench.ml: Arg Cmd Cmdliner Machine Printf Sf_roofline Stream Term
