(* Dump the C/OpenMP or OpenCL source a micro-compiler emits for one of
   the built-in stencil groups — the inspectable artefact of the paper's
   "rendered into the configured performance language" step. *)

open Cmdliner
open Sf_util
open Sf_hpgmg

let groups =
  [
    ("gsrb", Operators.gsrb_smooth);
    ("jacobi", Operators.jacobi_smooth);
    ( "cc7pt",
      Snowflake.Group.make ~label:"cc_7pt"
        (Operators.boundaries ~grid:"u"
        @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ]) );
    ( "residual",
      Snowflake.Group.make ~label:"residual"
        (Operators.boundaries ~grid:"u" @ [ Operators.residual_vc ]) );
    ("restrict", Snowflake.Group.make ~label:"restrict" [ Operators.restriction ]);
  ]

let run group_name lang n workers file =
  let group =
    match file with
    | Some path -> (
        let text =
          let ic = open_in path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        match Snowflake.Program_io.group_of_string text with
        | Ok g -> g
        | Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 2)
    | None -> (
        match List.assoc_opt group_name groups with
        | Some g -> g
        | None ->
            Printf.eprintf "unknown group %S (%s)\n" group_name
              (String.concat "|" (List.map fst groups));
            exit 2)
  in
  let dims = Snowflake.Group.dims group in
  let e = n + 2 in
  let shape = Ivec.of_list (List.init dims (fun _ -> e)) in
  let grid_shapes name =
    (* restriction reads a grid twice the size of the iteration space *)
    if String.length name >= 5 && String.sub name 0 5 = "fine_" then
      Ivec.of_list (List.init dims (fun _ -> (2 * n) + 2))
    else shape
  in
  let config = Sf_backends.Config.with_workers workers Sf_backends.Config.default in
  (* static diagnostics first, as the JIT front-end would report them *)
  let issues =
    Sf_analysis.Validate.group ~shape ~grid_shape:grid_shapes group
  in
  List.iter
    (fun i -> Printf.eprintf "// %s\n" (Sf_analysis.Validate.issue_to_string i))
    issues;
  if List.exists Sf_analysis.Validate.is_error issues then exit 1;
  match lang with
  | "c" | "seq" ->
      print_string (Sf_codegen.Seq_emit.emit ~shape ~grid_shapes group)
  | "openmp" ->
      print_string (Sf_codegen.Omp_emit.emit ~config ~shape ~grid_shapes group)
  | "opencl" ->
      print_string (Sf_codegen.Ocl_emit.emit ~config ~shape ~grid_shapes group)
  | "cuda" ->
      print_string (Sf_codegen.Cuda_emit.emit ~config ~shape ~grid_shapes group)
  | other ->
      Printf.eprintf "unknown language %S (c|openmp|opencl|cuda)\n" other;
      exit 2

let group_arg =
  Arg.(value & pos 0 string "gsrb" & info [] ~docv:"GROUP" ~doc:"Stencil group to compile.")

let lang_arg =
  Arg.(value & opt string "openmp" & info [ "lang" ] ~doc:"c | openmp | opencl | cuda")

let n_arg = Arg.(value & opt int 8 & info [ "n"; "size" ] ~doc:"Interior size per axis.")
let workers_arg = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker count baked into the plan.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~doc:"Read the stencil group from an s-expression program file instead of using a built-in group.")

let cmd =
  Cmd.v
    (Cmd.info "codegen_dump" ~doc:"Print micro-compiler C/OpenCL output")
    Term.(const run $ group_arg $ lang_arg $ n_arg $ workers_arg $ file_arg)

let () = exit (Cmd.eval cmd)
