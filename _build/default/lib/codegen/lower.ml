open Sf_util
open Snowflake

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let loop_var i = Printf.sprintf "i%d" i

let flat_index ~strides (m : Affine.t) point =
  let n = Ivec.dims strides in
  let terms =
    List.init n (fun i ->
        let coord =
          C_ast.add
            (C_ast.mul (C_ast.Int m.Affine.scale.(i)) point.(i))
            (C_ast.Int m.Affine.offset.(i))
        in
        C_ast.mul (C_ast.Int strides.(i)) coord)
  in
  C_ast.sum terms

let rec expr_to_c ~grid_strides ~point = function
  | Expr.Const c -> C_ast.Float c
  | Expr.Param p -> C_ast.Var (sanitize p)
  | Expr.Read (g, m) ->
      C_ast.Index (sanitize g, flat_index ~strides:(grid_strides g) m point)
  | Expr.Neg a -> C_ast.Un ("-", expr_to_c ~grid_strides ~point a)
  | Expr.Add (a, b) ->
      C_ast.Bin
        ("+", expr_to_c ~grid_strides ~point a, expr_to_c ~grid_strides ~point b)
  | Expr.Sub (a, b) ->
      C_ast.Bin
        ("-", expr_to_c ~grid_strides ~point a, expr_to_c ~grid_strides ~point b)
  | Expr.Mul (a, b) ->
      C_ast.Bin
        ("*", expr_to_c ~grid_strides ~point a, expr_to_c ~grid_strides ~point b)
  | Expr.Div (a, b) ->
      C_ast.Bin
        ("/", expr_to_c ~grid_strides ~point a, expr_to_c ~grid_strides ~point b)

let rect_loops ~grid_strides (s : Stencil.t) (rect : Domain.resolved) =
  let n = Ivec.dims rect.Domain.rlo in
  let point = Array.init n (fun i -> C_ast.Var (loop_var i)) in
  let body =
    [
      C_ast.Assign
        ( C_ast.Index
            ( sanitize s.Stencil.output,
              flat_index
                ~strides:(grid_strides s.Stencil.output)
                s.Stencil.out_map point ),
          expr_to_c ~grid_strides ~point s.Stencil.expr );
    ]
  in
  let rec nest i inner =
    if i < 0 then inner
    else
      nest (i - 1)
        [
          C_ast.For
            {
              var = loop_var i;
              from_ = C_ast.Int rect.Domain.rlo.(i);
              below = C_ast.Int rect.Domain.rhi.(i);
              step = C_ast.Int rect.Domain.rstride.(i);
              body = inner;
            };
        ]
  in
  nest (n - 1) body

let grid_param_names group = List.map sanitize (Group.grids group)
let scalar_param_names group = List.map sanitize (Group.params group)

let func_params group ~output_grids =
  let outputs = List.map sanitize output_grids in
  let grids =
    List.map
      (fun g ->
        let ctype =
          if List.mem g outputs then "double * restrict"
          else "const double * restrict"
        in
        C_ast.{ ctype; name = g })
      (grid_param_names group)
  in
  let scalars =
    List.map
      (fun p -> C_ast.{ ctype = "const double"; name = p })
      (scalar_param_names group)
  in
  grids @ scalars
