(** A miniature C abstract syntax, sufficient for stencil loop nests.

    The micro-compilers build this AST and {!C_pp} renders it; keeping a real
    AST (rather than string pasting) is what lets tests assert on structure —
    loop bounds, pragma placement, index arithmetic — and keeps the two
    emitters (OpenMP and OpenCL) sharing their lowering. *)

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr  (** [arr[e]] *)
  | Bin of string * expr * expr  (** infix operator by symbol *)
  | Un of string * expr
  | Call of string * expr list

type stmt =
  | Decl of string * string * expr option  (** ctype, name, initialiser *)
  | Assign of expr * expr
  | For of { var : string; from_ : expr; below : expr; step : expr; body : stmt list }
      (** [for (long var = from_; var < below; var += step)] *)
  | If of expr * stmt list
  | Pragma of string
  | Expr_stmt of expr
  | Comment of string
  | Block of stmt list

type param = { ctype : string; name : string }

type func = {
  qualifier : string;  (** e.g. "" or "__kernel" *)
  ret : string;
  fname : string;
  params : param list;
  body : stmt list;
}

val add : expr -> expr -> expr
(** Constant-folding sum: drops zero terms, folds [Int]s. *)

val mul : expr -> expr -> expr
(** Constant-folding product: collapses with 0 and 1. *)

val sum : expr list -> expr
(** [sum []] is [Int 0]. *)
