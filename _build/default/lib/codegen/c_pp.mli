(** Rendering of the miniature C AST to source text. *)

val expr_to_string : C_ast.expr -> string

val stmt_to_string : ?indent:int -> C_ast.stmt -> string

val func_to_string : C_ast.func -> string

val file_to_string :
  ?includes:string list -> ?prelude:string list -> C_ast.func list -> string
(** A complete translation unit: [#include]s, raw prelude lines, then the
    functions in order. *)
