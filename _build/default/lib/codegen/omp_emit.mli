(** C + OpenMP source emission (paper §IV.A).

    Produces a complete C99 translation unit for a stencil group: one
    function whose body is the wave schedule — each stencil tile an
    [#pragma omp task], each inter-wave barrier an [#pragma omp taskwait].
    The plan (waves, tiles, sequential fallbacks) is the *same one* the
    executable OpenMP backend runs, so the emitted code is a faithful
    transcription of what this repository actually executes and measures. *)

open Sf_util
open Snowflake

val emit :
  ?config:Sf_backends.Config.t ->
  shape:Ivec.t ->
  grid_shapes:(string -> Ivec.t) ->
  Group.t ->
  string
(** [shape] is the iteration-space shape; [grid_shapes] gives each grid's
    allocated shape (for stride literals). *)
