(** Lowering stencils to C loop nests — shared by both source emitters.

    Lowering is done against concrete grid shapes (the JIT situation in the
    paper: shapes are known when [compile] runs), so strides appear as
    integer literals and the affine index arithmetic constant-folds. *)

open Sf_util
open Snowflake

val sanitize : string -> string
(** Grid/parameter name → valid C identifier. *)

val loop_var : int -> string
(** ["i0"], ["i1"], ... *)

val flat_index :
  strides:Ivec.t -> Affine.t -> C_ast.expr array -> C_ast.expr
(** Flat offset of [map(point)] in a row-major array with the given strides,
    where [point] is given per-axis as C expressions. *)

val expr_to_c :
  grid_strides:(string -> Ivec.t) -> point:C_ast.expr array -> Expr.t ->
  C_ast.expr
(** The stencil expression at a symbolic point; [Param p] becomes
    [Var (sanitize p)]. *)

val rect_loops :
  grid_strides:(string -> Ivec.t) ->
  Stencil.t ->
  Domain.resolved ->
  C_ast.stmt list
(** The full loop nest executing one resolved rect of the stencil. *)

val grid_param_names : Group.t -> string list
(** Sanitised grid names in sorted order (the pointer arguments). *)

val scalar_param_names : Group.t -> string list

val func_params : Group.t -> output_grids:string list -> C_ast.param list
(** [double * restrict] for written grids, [const double * restrict] for
    read-only ones, then [const double] scalars. *)
