type expr =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr
  | Bin of string * expr * expr
  | Un of string * expr
  | Call of string * expr list

type stmt =
  | Decl of string * string * expr option
  | Assign of expr * expr
  | For of {
      var : string;
      from_ : expr;
      below : expr;
      step : expr;
      body : stmt list;
    }
  | If of expr * stmt list
  | Pragma of string
  | Expr_stmt of expr
  | Comment of string
  | Block of stmt list

type param = { ctype : string; name : string }

type func = {
  qualifier : string;
  ret : string;
  fname : string;
  params : param list;
  body : stmt list;
}

let add a b =
  match (a, b) with
  | Int 0, e | e, Int 0 -> e
  | Int x, Int y -> Int (x + y)
  | _ -> Bin ("+", a, b)

let mul a b =
  match (a, b) with
  | Int 0, _ | _, Int 0 -> Int 0
  | Int 1, e | e, Int 1 -> e
  | Int x, Int y -> Int (x * y)
  | _ -> Bin ("*", a, b)

let sum = function [] -> Int 0 | e :: es -> List.fold_left add e es
