(** CUDA C emission — the micro-compiler the paper lists as future work
    (§VII: "explore the creation of CUDA, OpenACC, or OpenMP 4
    micro-compilers"), demonstrating that the narrow front-end/back-end
    interface makes a new target an emitter-sized job.

    One [__global__] kernel per (stencil, rect); thread indices map to
    lattice coordinates through [blockIdx * blockDim + threadIdx] with a
    range guard; a host launcher sketch records the launch order (one
    stream, so consecutive launches are ordered, mirroring the barrier
    placement).  Rank ≤ 3 (CUDA grid limit). *)

open Sf_util
open Snowflake

val emit :
  ?config:Sf_backends.Config.t ->
  shape:Ivec.t ->
  grid_shapes:(string -> Ivec.t) ->
  Group.t ->
  string
