(** OpenCL C source emission (paper §IV.B).

    Each (stencil, rect) pair becomes one [__kernel]: the NDRange enumerates
    the rect's lattice points per axis, the kernel maps global ids back to
    lattice coordinates ([lo + gid*stride]) and guards the tail.  A host
    driver sketch (enqueue order, global/local sizes with the tall-skinny
    local shape, and the barriers implied by the in-order queue) is emitted
    as a trailing comment so the generated file is self-describing.

    Supports iteration ranks 1–3 (OpenCL NDRange limit); higher ranks raise
    [Invalid_argument]. *)

open Sf_util
open Snowflake

val emit :
  ?config:Sf_backends.Config.t ->
  shape:Ivec.t ->
  grid_shapes:(string -> Ivec.t) ->
  Group.t ->
  string
