lib/codegen/ocl_emit.ml: Array C_ast C_pp Config Domain Group Ivec List Lower Printf Sf_backends Sf_util Snowflake Stencil String
