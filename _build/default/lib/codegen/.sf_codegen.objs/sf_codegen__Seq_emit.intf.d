lib/codegen/seq_emit.mli: Group Ivec Sf_util Snowflake
