lib/codegen/ocl_emit.mli: Group Ivec Sf_backends Sf_util Snowflake
