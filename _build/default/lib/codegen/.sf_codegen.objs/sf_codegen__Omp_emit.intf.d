lib/codegen/omp_emit.mli: Group Ivec Sf_backends Sf_util Snowflake
