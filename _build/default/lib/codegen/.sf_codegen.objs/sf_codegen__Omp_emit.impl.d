lib/codegen/omp_emit.ml: Array C_ast C_pp Config Group Ivec List Lower Openmp_backend Printf Sf_backends Sf_util Snowflake Stencil String
