lib/codegen/lower.mli: Affine C_ast Domain Expr Group Ivec Sf_util Snowflake Stencil
