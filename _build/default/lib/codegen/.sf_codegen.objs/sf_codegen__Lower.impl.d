lib/codegen/lower.ml: Affine Array C_ast Domain Expr Group Ivec List Printf Sf_util Snowflake Stencil String
