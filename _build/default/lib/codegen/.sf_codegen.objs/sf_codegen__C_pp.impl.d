lib/codegen/c_pp.ml: C_ast List Printf String
