lib/codegen/c_pp.mli: C_ast
