lib/codegen/seq_emit.ml: Array C_ast C_pp Domain Group Ivec List Lower Printf Sf_util Snowflake Stencil String
