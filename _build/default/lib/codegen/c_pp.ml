open C_ast

(* Precedence-light printing: parenthesise every compound operand.  The
   output is for a C compiler, not a human diff, so redundant parentheses
   are preferable to a precedence table bug. *)
let rec expr_to_string = function
  | Int i -> string_of_int i
  | Float f ->
      let s = Printf.sprintf "%.17g" f in
      if
        String.contains s '.'
        || String.contains s 'e'
        || String.contains s 'n' (* nan/inf *)
      then s
      else s ^ ".0"
  | Var v -> v
  | Index (arr, e) -> Printf.sprintf "%s[%s]" arr (expr_to_string e)
  | Bin (op, a, b) ->
      Printf.sprintf "%s %s %s" (atom a) op (atom b)
  | Un (op, a) -> Printf.sprintf "%s%s" op (atom a)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (List.map expr_to_string args))

and atom e =
  match e with
  | Int i when i < 0 -> "(" ^ string_of_int i ^ ")"
  | Int _ | Float _ | Var _ | Index _ | Call _ -> expr_to_string e
  | Bin _ | Un _ -> "(" ^ expr_to_string e ^ ")"

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Decl (ctype, name, None) -> [ Printf.sprintf "%s%s %s;" pad ctype name ]
  | Decl (ctype, name, Some e) ->
      [ Printf.sprintf "%s%s %s = %s;" pad ctype name (expr_to_string e) ]
  | Assign (lhs, rhs) ->
      [
        Printf.sprintf "%s%s = %s;" pad (expr_to_string lhs)
          (expr_to_string rhs);
      ]
  | For { var; from_; below; step; body } ->
      let header =
        Printf.sprintf "%sfor (long %s = %s; %s < %s; %s += %s) {" pad var
          (expr_to_string from_) var (expr_to_string below) var
          (expr_to_string step)
      in
      (header :: List.concat_map (stmt_lines (indent + 2)) body)
      @ [ pad ^ "}" ]
  | If (cond, body) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string cond)
      :: List.concat_map (stmt_lines (indent + 2)) body)
      @ [ pad ^ "}" ]
  | Pragma p -> [ Printf.sprintf "%s#pragma %s" pad p ]
  | Expr_stmt e -> [ Printf.sprintf "%s%s;" pad (expr_to_string e) ]
  | Comment c -> [ Printf.sprintf "%s/* %s */" pad c ]
  | Block body ->
      ((pad ^ "{") :: List.concat_map (stmt_lines (indent + 2)) body)
      @ [ pad ^ "}" ]

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)

let func_to_string f =
  let params =
    String.concat ", "
      (List.map (fun p -> Printf.sprintf "%s %s" p.ctype p.name) f.params)
  in
  let qualifier = if f.qualifier = "" then "" else f.qualifier ^ " " in
  let header = Printf.sprintf "%s%s %s(%s) {" qualifier f.ret f.fname params in
  String.concat "\n"
    ((header :: List.concat_map (stmt_lines 2) f.body) @ [ "}" ])

let file_to_string ?(includes = []) ?(prelude = []) funcs =
  let incl = List.map (Printf.sprintf "#include <%s>") includes in
  String.concat "\n\n"
    (List.filter
       (fun s -> s <> "")
       [
         String.concat "\n" incl;
         String.concat "\n" prelude;
         String.concat "\n\n" (List.map func_to_string funcs);
       ])
  ^ "\n"
