(** Plain sequential C99 emission — the paper's "sequential C"
    micro-compiler.  Stencils run in program order, rects in union order;
    no pragmas, no tiling: the reference translation a user can read
    top-to-bottom and the baseline the parallel emitters are diffed
    against in tests. *)

open Sf_util
open Snowflake

val emit :
  shape:Ivec.t -> grid_shapes:(string -> Ivec.t) -> Group.t -> string
