(** The modified STREAM benchmark of Fig. 6.

    The paper measures the read-dominated bandwidth of each platform with a
    dot product ([beta += a[j] * b[j]]) because stencil sweeps are
    read-heavy.  This is the same kernel in OCaml over [floatarray]s. *)

val dot : floatarray -> floatarray -> float
(** The measured kernel itself (returns the dot product so the compiler
    cannot discard the loads). *)

val measure : ?n:int -> ?trials:int -> unit -> float
(** Measured bandwidth in GB/s: two arrays of [n] doubles (default 4 M
    each, far beyond cache), best of [trials] (default 5) timings, counting
    16 bytes of traffic per iteration. *)
