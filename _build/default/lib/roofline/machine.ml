type t = {
  name : string;
  bandwidth_gbs : float;
  kind : [ `Cpu | `Gpu ];
  note : string;
}

let i7_4765t =
  {
    name = "Core i7-4765T";
    bandwidth_gbs = 22.2;
    kind = `Cpu;
    note = "paper testbed; STREAM Triad 22.2 GB/s, 4 cores @ 2.0 GHz";
  }

let k20c =
  {
    name = "K20c GPU";
    bandwidth_gbs = 127.;
    kind = `Gpu;
    note = "paper testbed; Empirical Roofline Toolkit 127 GB/s";
  }

let host ?(bandwidth_gbs = 10.) () =
  {
    name = "host";
    bandwidth_gbs;
    kind = `Cpu;
    note = "this container; bandwidth from the Stream.measure dot benchmark";
  }
