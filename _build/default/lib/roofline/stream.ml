let dot a b =
  let n = min (Float.Array.length a) (Float.Array.length b) in
  let acc = ref 0. in
  for j = 0 to n - 1 do
    acc := !acc +. (Float.Array.unsafe_get a j *. Float.Array.unsafe_get b j)
  done;
  !acc

let measure ?(n = 4_000_000) ?(trials = 5) () =
  let a = Float.Array.init n (fun i -> float_of_int (i land 7)) in
  let b = Float.Array.init n (fun i -> float_of_int ((i lxor 5) land 7)) in
  let sink = ref 0. in
  (* warmup *)
  sink := !sink +. dot a b;
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    sink := !sink +. dot a b;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  ignore (Sys.opaque_identity !sink);
  let bytes = 16. *. float_of_int n in
  bytes /. !best /. 1e9
