(** Roofline performance bounds for stencil sweeps (paper §V.B).

    For a memory-bound stencil the speed-of-light rate is
    bandwidth / bytes-per-stencil; the paper's asymptotic compulsory
    traffic figures per operator are reproduced here, together with a
    first-principles traffic estimator derived from a stencil's grid
    footprint under write-allocate assumptions. *)

open Snowflake

val bytes_cc_7pt : float
(** 24 B: stream u in, write-allocate + write out. *)

val bytes_cc_jacobi : float
(** 40 B: u, f in; write-allocate + write; ping-pong. *)

val bytes_vc_gsrb : float
(** 64 B: u, f, dinv, three betas in; u written (paper §V.B). *)

val bytes_of_stencil : Stencil.t -> float
(** First-principles estimate: 8 B per distinct grid read (each streamed
    once per sweep, perfect reuse of neighbouring taps), plus 8 B
    write-allocate and 8 B write-back for the output unless it is one of
    the read grids (in-place stencils don't pay write-allocate twice). *)

val stencils_per_second : machine:Machine.t -> bytes_per_stencil:float -> float
(** The DRAM roofline bound of Fig. 7, in stencils/s. *)

val sweep_time : machine:Machine.t -> bytes_per_stencil:float -> points:int -> float
(** Bound on one sweep over [points] stencil applications, in seconds
    (the roofline line of Fig. 8). *)

val predict_time :
  machine:Machine.t -> ?derate:float -> bytes_per_stencil:float -> points:int ->
  unit -> float
(** Performance-model time for a platform this container cannot execute on:
    the roofline bound divided by an efficiency factor ([derate] ≥ 1;
    e.g. ~2 for the paper's OpenCL backend on the K20c). *)
