lib/roofline/stream.ml: Float Sys Unix
