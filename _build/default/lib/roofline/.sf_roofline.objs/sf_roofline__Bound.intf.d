lib/roofline/bound.mli: Machine Snowflake Stencil
