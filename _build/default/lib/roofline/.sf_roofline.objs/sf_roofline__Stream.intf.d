lib/roofline/stream.mli:
