lib/roofline/bound.ml: List Machine Snowflake Stencil
