lib/roofline/machine.ml:
