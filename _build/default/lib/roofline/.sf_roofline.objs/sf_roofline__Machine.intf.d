lib/roofline/machine.mli:
