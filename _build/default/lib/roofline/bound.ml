open Snowflake

let bytes_cc_7pt = 24.
let bytes_cc_jacobi = 40.
let bytes_vc_gsrb = 64.

let bytes_of_stencil (s : Stencil.t) =
  let read_grids = Stencil.grids_read s in
  let reads = 8. *. float_of_int (List.length read_grids) in
  let write =
    (* write-back is always paid; write-allocate only if the output was not
       already streamed in as a read *)
    if List.mem s.Stencil.output read_grids then 8. else 16.
  in
  reads +. write

let stencils_per_second ~(machine : Machine.t) ~bytes_per_stencil =
  machine.Machine.bandwidth_gbs *. 1e9 /. bytes_per_stencil

let sweep_time ~machine ~bytes_per_stencil ~points =
  float_of_int points /. stencils_per_second ~machine ~bytes_per_stencil

let predict_time ~machine ?(derate = 1.) ~bytes_per_stencil ~points () =
  derate *. sweep_time ~machine ~bytes_per_stencil ~points
