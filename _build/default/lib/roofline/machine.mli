(** Machine descriptions for the Roofline model (paper §V.B).

    The paper's two testbeds are reproduced as fixed descriptions; the host
    this repository actually runs on is described by a measured STREAM
    bandwidth (see {!Stream}). *)

type t = {
  name : string;
  bandwidth_gbs : float;  (** read-dominated STREAM bandwidth, GB/s *)
  kind : [ `Cpu | `Gpu ];
  note : string;
}

val i7_4765t : t
(** Intel Core i7-4765T: 22.2 GB/s STREAM triad (paper §V.A). *)

val k20c : t
(** NVIDIA K20c: 127 GB/s Empirical Roofline Toolkit bandwidth. *)

val host : ?bandwidth_gbs:float -> unit -> t
(** The container this code runs on; bandwidth should come from
    {!Stream.measure} (a default of 10 GB/s is used if not supplied). *)
