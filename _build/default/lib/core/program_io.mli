(** Textual (s-expression) form of stencil programs.

    Gives a [Group] a stable, human-writable on-disk representation so
    stencil programs can be artifacts — checked into repositories, passed
    to the CLIs ([bin/codegen_dump.exe --file]), diffed in golden tests —
    mirroring the paper's workflow split between the scientist who writes
    the stencils and the tooling that compiles them (Fig. 5).

    Grammar (see docs/LANGUAGE.md for the data model):

    {v
    group    ::= (group NAME stencil...)
    stencil  ::= (stencil NAME (output GRID) [(out-map map)]
                   (domain rect...) (expr e))
    rect     ::= (rect (lo INT...) (hi INT...) [(stride INT...)])
    map      ::= ((scale INT...) (offset INT...))
    e        ::= (const NUM) | (param NAME)
               | (read GRID (INT...))           ; unit-scale offset
               | (read* GRID map)               ; affine read
               | (neg e) | (OP e e...)   with OP one of + - "*" /
    v}

    [+] and multiplication accept two or more operands (folded left);
    [-] and [/] exactly two. *)



val expr_to_sexp : Expr.t -> Sexp.t
val expr_of_sexp : Sexp.t -> (Expr.t, string) result
val domain_to_sexp : Domain.t -> Sexp.t list
val domain_of_sexps : Sexp.t list -> (Domain.t, string) result
val stencil_to_sexp : Stencil.t -> Sexp.t
val stencil_of_sexp : Sexp.t -> (Stencil.t, string) result
val group_to_sexp : Group.t -> Sexp.t
val group_of_sexp : Sexp.t -> (Group.t, string) result

val group_to_string : Group.t -> string
(** Indented rendering. *)

val group_of_string : string -> (Group.t, string) result
(** Parse + decode, with positioned error messages from the reader. *)
