open Sf_util

type t = { label : string; stencils : Stencil.t list }

let counter = ref 0

let make ?label stencils =
  (match stencils with
  | [] -> invalid_arg "Group.make: empty group"
  | s0 :: rest ->
      let n = Stencil.dims s0 in
      List.iter
        (fun s ->
          if Stencil.dims s <> n then
            invalid_arg "Group.make: stencils of differing rank")
        rest);
  let label =
    match label with
    | Some l -> l
    | None ->
        incr counter;
        Printf.sprintf "group_%d" !counter
  in
  { label; stencils }

let stencils t = t.stencils
let length t = List.length t.stencils

let dims t =
  match t.stencils with s :: _ -> Stencil.dims s | [] -> assert false

let append a b = make ~label:(a.label ^ "+" ^ b.label) (a.stencils @ b.stencils)

let grids t =
  List.concat_map Stencil.grids t.stencils |> List.sort_uniq String.compare

let params t =
  List.concat_map (fun s -> Expr.params s.Stencil.expr) t.stencils
  |> List.sort_uniq String.compare

let equal a b =
  List.length a.stencils = List.length b.stencils
  && List.for_all2 Stencil.equal a.stencils b.stencils

let hash t = Hashc.list Stencil.hash t.stencils

let pp ppf t =
  Format.fprintf ppf "@[<v 2>group %s:@ %a@]" t.label
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Stencil.pp)
    t.stencils
