(** Stencil groups: a sequence of stencils executed consecutively.

    The group is the unit over which Snowflake performs cross-stencil
    dependence analysis and barrier placement, and the unit the JIT compiles
    into one callable (paper Table I, §IV). *)

type t = private { label : string; stencils : Stencil.t list }

val make : ?label:string -> Stencil.t list -> t
(** Raises [Invalid_argument] on an empty list or mixed-rank stencils. *)

val stencils : t -> Stencil.t list
val length : t -> int
val dims : t -> int

val append : t -> t -> t
(** Sequential composition. *)

val grids : t -> string list
(** All grids touched by any member stencil, sorted, deduplicated. *)

val params : t -> string list

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
