type t = Atom of string | List of t list

let atom s = Atom s
let list xs = List xs
let int i = Atom (string_of_int i)

let float f =
  (* shortest representation that round-trips *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then Atom s else Atom (Printf.sprintf "%.17g" f)

let as_atom = function
  | Atom a -> Ok a
  | List _ -> Error "expected an atom, got a list"

let as_int = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "expected an integer, got %S" a))
  | List _ -> Error "expected an integer, got a list"

let as_float = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "expected a number, got %S" a))
  | List _ -> Error "expected a number, got a list"

(* ------------------------------------------------------------- parser *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | Some ';' ->
      while peek c <> None && peek c <> Some '\n' do
        c.pos <- c.pos + 1
      done;
      skip_ws c
  | _ -> ()

let is_atom_char ch =
  match ch with
  | '(' | ')' | ' ' | '\t' | '\n' | '\r' | ';' -> false
  | _ -> true

exception Parse_error of string

let rec parse_one c =
  skip_ws c;
  match peek c with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '(' ->
      c.pos <- c.pos + 1;
      let items = ref [] in
      let rec loop () =
        skip_ws c;
        match peek c with
        | Some ')' -> c.pos <- c.pos + 1
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
            items := parse_one c :: !items;
            loop ()
      in
      loop ();
      List (List.rev !items)
  | Some ')' -> raise (Parse_error "unexpected ')'")
  | Some _ ->
      let start = c.pos in
      while match peek c with Some ch -> is_atom_char ch | None -> false do
        c.pos <- c.pos + 1
      done;
      Atom (String.sub c.text start (c.pos - start))

let parse text =
  let c = { text; pos = 0 } in
  match parse_one c with
  | sexp ->
      skip_ws c;
      if c.pos < String.length text then
        Error
          (Printf.sprintf "trailing input at offset %d" c.pos)
      else Ok sexp
  | exception Parse_error msg -> Error msg

let parse_many text =
  let c = { text; pos = 0 } in
  let acc = ref [] in
  let rec loop () =
    skip_ws c;
    if c.pos >= String.length text then Ok (List.rev !acc)
    else
      match parse_one c with
      | sexp ->
          acc := sexp :: !acc;
          loop ()
      | exception Parse_error msg -> Error msg
  in
  loop ()

(* ------------------------------------------------------------ printer *)

let rec to_string = function
  | Atom a -> a
  | List xs -> "(" ^ String.concat " " (List.map to_string xs) ^ ")"

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List xs ->
      Format.fprintf ppf "@[<hov 1>(%a)@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        xs
