open Sf_util

let offsets_within ~dims ~radius =
  let r = List.init ((2 * radius) + 1) (fun i -> i - radius) in
  let rec go = function
    | 0 -> [ [] ]
    | d -> List.concat_map (fun rest -> List.map (fun v -> v :: rest) r) (go (d - 1))
  in
  List.map Ivec.of_list (go dims)

let star_weights ~dims ~center ~arm =
  let taps =
    (List.init dims (fun _ -> 0), Expr.const center)
    :: List.concat_map
         (fun a ->
           List.map
             (fun v ->
               (List.init dims (fun i -> if i = a then v else 0), Expr.const arm))
             [ -1; 1 ])
         (List.init dims Fun.id)
  in
  Weights.of_alist taps

let laplacian_weights ~dims =
  star_weights ~dims ~center:(float_of_int (-2 * dims)) ~arm:1.

let box_weights ~dims ~radius ~weight =
  Weights.of_alist
    (List.map
       (fun o -> (Ivec.to_list o, Expr.const weight))
       (offsets_within ~dims ~radius))

let box_blur_weights ~dims ~radius =
  let count = ref 1 in
  for _ = 1 to dims do
    count := !count * ((2 * radius) + 1)
  done;
  box_weights ~dims ~radius ~weight:(1. /. float_of_int !count)

let off dims a v =
  let o = Ivec.zero dims in
  o.(a) <- v;
  o

(* one face plane of the ghost ring, interior extent on the other axes *)
let face_domain dims axis side =
  let lo = Array.make dims 1 and hi = Array.make dims (-1) in
  (match side with
  | `Low ->
      lo.(axis) <- 0;
      hi.(axis) <- 1
  | `High ->
      lo.(axis) <- -1;
      hi.(axis) <- 0);
  Domain.of_rect (Domain.rect ~lo:(Ivec.to_list lo) ~hi:(Ivec.to_list hi) ())

let faces ~dims ~grid ~kind ~expr_of =
  List.concat_map
    (fun axis ->
      List.map
        (fun side ->
          let side_name = match side with `Low -> "lo" | `High -> "hi" in
          Stencil.make
            ~label:(Printf.sprintf "%s_%s_%d_%s" kind grid axis side_name)
            ~output:grid
            ~expr:(expr_of axis side)
            ~domain:(face_domain dims axis side)
            ())
        [ `Low; `High ])
    (List.init dims Fun.id)

let dirichlet_faces ~dims ~grid =
  faces ~dims ~grid ~kind:"bc" ~expr_of:(fun axis side ->
      let v = match side with `Low -> 1 | `High -> -1 in
      Expr.neg (Expr.read grid (off dims axis v)))

let neumann_faces ~dims ~grid =
  faces ~dims ~grid ~kind:"neumann" ~expr_of:(fun axis side ->
      let v = match side with `Low -> 1 | `High -> -1 in
      Expr.read grid (off dims axis v))

let periodic_faces ~dims ~interior ~grid =
  faces ~dims ~grid ~kind:"periodic" ~expr_of:(fun axis side ->
      (* low ghost (index 0) mirrors the high interior plane (index n):
         offset +n; high ghost (n+1) mirrors index 1: offset -n *)
      let v = match side with `Low -> interior | `High -> -interior in
      Expr.read grid (off dims axis v))

let copy ~dims ?(ghost = 1) ~out ~input () =
  Stencil.make
    ~label:(Printf.sprintf "copy_%s_to_%s" input out)
    ~output:out
    ~expr:(Expr.read input (Ivec.zero dims))
    ~domain:(Domain.interior dims ~ghost)
    ()

let scale ~dims ?(ghost = 1) ~out ~input ~factor () =
  Stencil.make
    ~label:(Printf.sprintf "scale_%s_to_%s" input out)
    ~output:out
    ~expr:
      (let z = Ivec.zero dims in
       Expr.(const factor *: read input z))
    ~domain:(Domain.interior dims ~ghost)
    ()
