(** Iteration domains: strided hyper-rectangles and their unions.

    A {!rect} is the paper's [RectDomain]: per-dimension start, end and
    stride.  Start/end entries may be negative, in which case they are
    resolved relative to the grid shape at execution time ([-k] means
    [extent - k]); the end is exclusive.  A {!t} is a [DomainUnion] — any
    finite union of rects, in order.  Boundaries, red/black colourings and
    AMR patch unions are all built from these. *)

open Sf_util

type rect = private { lo : Ivec.t; hi : Ivec.t; stride : Ivec.t }

type t = rect list
(** A union of rects.  The empty list is the empty domain. *)

val rect : ?stride:int list -> lo:int list -> hi:int list -> unit -> rect
(** Stride defaults to all-ones.  Raises [Invalid_argument] on rank mismatch
    or non-positive stride. *)

val of_rect : rect -> t
val union : t -> t -> t

val ( ++ ) : t -> t -> t
(** Alias for {!union}, mirroring the paper's [+] on domains. *)

val interior : int -> ghost:int -> t
(** [interior n ~ghost] is the unit-stride domain covering every point at
    least [ghost] away from each face, in [n] dimensions. *)

val colored : int -> ghost:int -> color:int -> ncolors:int -> t
(** [colored n ~ghost ~color ~ncolors] is the sub-lattice of the interior
    whose coordinate sum is congruent to [color] modulo [ncolors], built as a
    union of stride-[ncolors] rects along the innermost axis — the paper's
    red-black ([ncolors = 2]) and 4-colour patterns.  [color] must lie in
    [0, ncolors). *)

val translate : Ivec.t -> t -> t
(** Shift every rect; only meaningful for rects with non-negative bounds. *)

val dims : t -> int option
(** Rank of the union, or [None] when empty; raises [Invalid_argument] if
    member rects disagree. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {2 Resolved domains}

    Resolution pins the relative bounds of a rect against a concrete grid
    shape, yielding an iterable integer lattice. *)

type resolved = { rlo : Ivec.t; rhi : Ivec.t; rstride : Ivec.t }
(** Concrete bounds; [rhi] exclusive; lattice points are
    [rlo + k * rstride] componentwise with [0 <= k] and point < [rhi]. *)

val resolve_rect : shape:Ivec.t -> rect -> resolved
(** Raises [Invalid_argument] if the resolved bounds fall outside
    [[0, shape)] on any axis (a domain escaping the grid is a bug in the
    stencil program, caught here rather than at kernel runtime). *)

val resolve : shape:Ivec.t -> t -> resolved list

val counts : resolved -> Ivec.t
(** Number of lattice points along each axis (0 when empty). *)

val npoints : resolved -> int
val is_empty : resolved -> bool
val mem : resolved -> Ivec.t -> bool
val iter : resolved -> (Ivec.t -> unit) -> unit
(** Row-major iteration; the visited vector is reused between calls (copy it
    if you retain it). *)

val to_list : resolved -> Ivec.t list
val npoints_union : resolved list -> int
(** Sum of {!npoints} — correct when member rects are disjoint, which
    Snowflake's analysis verifies separately. *)
